// retrust_server — the long-running multi-tenant repair service binary.
//
//   retrust_server [--port N] [--workers W] [--queue-depth D]
//                  [--tenant-cap C] [--session-threads S]
//                  [--snapshot-dir DIR] [--max-tenant-bytes B]
//                  [--tenant NAME=FILE.csv:FD[;FD...]]...
//                  [--tenant-snapshot NAME=FILE.snap]...
//
// Listens on 127.0.0.1:<port> (default 7423; 0 picks an ephemeral port)
// and speaks newline-delimited JSON: one request object per line, one
// response per line (wire format in src/service/wire.h — verbs:
// load_tenant, load_snapshot_tenant, repair, sweep, apply_delta,
// save_snapshot, unload_tenant, stats, shutdown).
//
// Warm restart: `--tenant-snapshot` registers a tenant whose first
// request restores a src/persist/ snapshot instead of rebuilding from
// CSV; `--snapshot-dir` lets unload_tenant (and the `--max-tenant-bytes`
// budget eviction) auto-save dirty tenants to "<dir>/<name>.snap" before
// releasing their memory. Prints
//
//   retrust_server listening on 127.0.0.1:<port>
//
// once the socket is ready, so wrappers (CI's service smoke) can parse
// the chosen port. Each connection is served by its own thread and
// handled request-by-request; concurrency comes from concurrent
// connections feeding the shared admission-controlled queue, which is
// exactly the multi-tenant path the service layer exists for.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/service/server.h"
#include "src/service/wire.h"

using namespace retrust;
using namespace retrust::service;

namespace {

std::atomic<bool> g_shutdown{false};
int g_listen_fd = -1;
/// Open connection sockets, so shutdown can force idle recv()s to return
/// (a connection blocked in recv would otherwise outlive the Server).
std::mutex g_conn_mu;
std::vector<int> g_conn_fds;

/// Splits "NAME=FILE.csv:FD[;FD...]". FDs are ';'-separated because ','
/// already separates the attributes of a compound LHS ("City,State->Zip").
bool ParseTenantSpec(const std::string& spec, std::string* name,
                     std::string* path, std::vector<std::string>* fds) {
  size_t eq = spec.find('=');
  size_t colon = spec.find(':', eq == std::string::npos ? 0 : eq);
  if (eq == std::string::npos || colon == std::string::npos || eq == 0) {
    return false;
  }
  *name = spec.substr(0, eq);
  *path = spec.substr(eq + 1, colon - eq - 1);
  std::string fd_list = spec.substr(colon + 1);
  size_t start = 0;
  while (start <= fd_list.size()) {
    size_t end = fd_list.find(';', start);
    if (end == std::string::npos) end = fd_list.size();
    if (end > start) fds->push_back(fd_list.substr(start, end - start));
    start = end + 1;
  }
  return !fds->empty();
}

bool SendLine(int fd, std::string line) {
  line.push_back('\n');
  size_t sent = 0;
  while (sent < line.size()) {
    ssize_t n = ::send(fd, line.data() + sent, line.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// One request line -> one response line. Synchronous per connection by
/// design: pipelined concurrency comes from multiple connections.
/// `request_shutdown` is set (not acted on) by the shutdown verb: the
/// caller tears the process down only AFTER the reply reached the wire.
std::string HandleLine(Server& server, const std::string& line,
                       bool* request_shutdown) {
  Result<Json> parsed = ParseJson(line);
  if (!parsed.ok()) return ErrorJson(parsed.status()).Dump();
  const Json& req = *parsed;
  // The optional "id" is echoed verbatim on EVERY reply to a parseable
  // request — op errors included — so pipelining clients never lose the
  // request/response correlation.
  auto with_id = [&req](Json reply) {
    if (const Json* id = req.Get("id")) {
      reply.MutableObject()["id"] = *id;
    }
    return reply.Dump();
  };
  const Json* op = req.Get("op");
  if (op == nullptr || !op->is_string()) {
    return with_id(ErrorJson(Status::Error(StatusCode::kInvalidArgument,
                                           "request needs a string 'op'")));
  }
  auto tenant_of = [&req]() -> std::string {
    const Json* tenant = req.Get("tenant");
    return tenant != nullptr && tenant->is_string() ? tenant->AsString() : "";
  };
  const std::string verb = op->AsString();
  Client client = server.client();

  if (verb == "load_tenant") {
    const Json* csv = req.Get("csv");
    const Json* fds = req.Get("fds");
    std::string tenant = tenant_of();
    if (tenant.empty() || csv == nullptr || !csv->is_string() ||
        fds == nullptr || !fds->is_array()) {
      return with_id(ErrorJson(Status::Error(
          StatusCode::kInvalidArgument,
          "load_tenant needs 'tenant', 'csv' and 'fds'")));
    }
    std::vector<std::string> fd_texts;
    for (const Json& fd : fds->AsArray()) {
      if (!fd.is_string()) {
        return with_id(ErrorJson(Status::Error(StatusCode::kInvalidArgument,
                                               "'fds' must be strings")));
      }
      fd_texts.push_back(fd.AsString());
    }
    Status status =
        server.LoadCsvTenant(tenant, csv->AsString(), std::move(fd_texts));
    if (!status.ok()) return with_id(ErrorJson(status));
    Json::Object obj;
    obj["ok"] = Json(true);
    obj["tenant"] = Json(tenant);
    return with_id(Json(std::move(obj)));
  }

  if (verb == "repair") {
    Result<RepairRequest> repair = RepairRequestFromJson(req);
    if (!repair.ok()) return with_id(ErrorJson(repair.status()));
    std::string tenant = tenant_of();
    auto submitted = client.Repair(tenant, *repair);
    Result<RepairResponse> response = submitted.future.get();
    if (!response.ok()) return with_id(ErrorJson(response.status()));
    // The schema reference is safe: the tenant resolved (the repair ran).
    Result<std::shared_ptr<Session>> session = server.tenants().Get(tenant);
    return with_id(ToJson(*response, (*session)->schema()));
  }

  if (verb == "sweep") {
    const Json* requests = req.Get("requests");
    if (requests == nullptr || !requests->is_array() ||
        requests->AsArray().empty()) {
      return with_id(ErrorJson(Status::Error(
          StatusCode::kInvalidArgument,
          "sweep needs a non-empty 'requests' array")));
    }
    std::vector<RepairRequest> batch;
    for (const Json& r : requests->AsArray()) {
      Result<RepairRequest> repair = RepairRequestFromJson(r);
      if (!repair.ok()) return with_id(ErrorJson(repair.status()));
      batch.push_back(*repair);
    }
    std::string tenant = tenant_of();
    auto submitted = client.Sweep(tenant, std::move(batch));
    std::vector<Result<RepairResponse>> replies = submitted.future.get();
    Result<std::shared_ptr<Session>> session = server.tenants().Get(tenant);
    Json::Array results;
    for (const Result<RepairResponse>& r : replies) {
      if (r.ok() && session.ok()) {
        results.push_back(ToJson(*r, (*session)->schema()));
      } else {
        results.push_back(ErrorJson(r.ok() ? session.status() : r.status()));
      }
    }
    Json::Object obj;
    obj["ok"] = Json(true);
    obj["results"] = Json(std::move(results));
    return with_id(Json(std::move(obj)));
  }

  if (verb == "apply_delta") {
    std::string tenant = tenant_of();
    // The schema is needed to parse the delta's values, so the tenant must
    // resolve first (this is what makes lazy tenants load on first use).
    Result<std::shared_ptr<Session>> session = server.tenants().Get(tenant);
    if (!session.ok()) return with_id(ErrorJson(session.status()));
    Result<DeltaBatch> delta = DeltaBatchFromJson(req, (*session)->schema());
    if (!delta.ok()) return with_id(ErrorJson(delta.status()));
    auto submitted = client.Apply(tenant, std::move(*delta));
    Result<ApplyStats> stats = submitted.future.get();
    if (!stats.ok()) return with_id(ErrorJson(stats.status()));
    return with_id(ToJson(*stats));
  }

  if (verb == "stats") {
    const Json* tenant = req.Get("tenant");
    if (tenant != nullptr && tenant->is_string()) {
      Result<TenantStats> stats = server.TenantStatsFor(tenant->AsString());
      if (!stats.ok()) return with_id(ErrorJson(stats.status()));
      return with_id(ToJson(*stats));
    }
    Json reply = ToJson(server.Stats());
    Json::Array tenants;
    for (const std::string& name : server.TenantNames()) {
      tenants.push_back(Json(name));
    }
    reply.MutableObject()["tenants"] = Json(std::move(tenants));
    return with_id(reply);
  }

  if (verb == "load_snapshot_tenant") {
    const Json* snapshot = req.Get("snapshot");
    std::string tenant = tenant_of();
    if (tenant.empty() || snapshot == nullptr || !snapshot->is_string()) {
      return with_id(ErrorJson(Status::Error(
          StatusCode::kInvalidArgument,
          "load_snapshot_tenant needs 'tenant' and 'snapshot'")));
    }
    Status status = server.LoadSnapshotTenant(tenant, snapshot->AsString());
    if (!status.ok()) return with_id(ErrorJson(status));
    Json::Object obj;
    obj["ok"] = Json(true);
    obj["tenant"] = Json(tenant);
    return with_id(Json(std::move(obj)));
  }

  if (verb == "save_snapshot") {
    const Json* path = req.Get("path");
    std::string tenant = tenant_of();
    if (tenant.empty() || path == nullptr || !path->is_string()) {
      return with_id(ErrorJson(Status::Error(
          StatusCode::kInvalidArgument,
          "save_snapshot needs 'tenant' and 'path'")));
    }
    auto submitted = client.SaveSnapshot(tenant, path->AsString());
    Result<std::string> saved = submitted.future.get();
    if (!saved.ok()) return with_id(ErrorJson(saved.status()));
    Json::Object obj;
    obj["ok"] = Json(true);
    obj["tenant"] = Json(tenant);
    obj["path"] = Json(*saved);
    return with_id(Json(std::move(obj)));
  }

  if (verb == "unload_tenant") {
    std::string tenant = tenant_of();
    if (tenant.empty()) {
      return with_id(ErrorJson(Status::Error(
          StatusCode::kInvalidArgument, "unload_tenant needs 'tenant'")));
    }
    auto submitted = client.UnloadTenant(tenant);
    Result<bool> unloaded = submitted.future.get();
    if (!unloaded.ok()) return with_id(ErrorJson(unloaded.status()));
    Json::Object obj;
    obj["ok"] = Json(true);
    obj["tenant"] = Json(tenant);
    obj["unloaded"] = Json(true);
    return with_id(Json(std::move(obj)));
  }

  if (verb == "shutdown") {
    *request_shutdown = true;
    Json::Object obj;
    obj["ok"] = Json(true);
    obj["stopping"] = Json(true);
    return with_id(Json(std::move(obj)));
  }

  return with_id(ErrorJson(Status::Error(
      StatusCode::kInvalidArgument, "unknown op '" + verb + "'")));
}

void ServeConnection(Server* server, int fd) {
  std::string buffer;
  char chunk[4096];
  bool alive = true;
  while (alive && !g_shutdown.load()) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    while (alive) {
      size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      bool request_shutdown = false;
      alive = SendLine(fd, HandleLine(*server, line, &request_shutdown));
      if (request_shutdown) {
        // Reply is on the wire; now break the accept loop.
        g_shutdown.store(true);
        if (g_listen_fd >= 0) ::shutdown(g_listen_fd, SHUT_RDWR);
        alive = false;
      }
      alive = alive && !g_shutdown.load();
    }
    buffer.erase(0, start);
  }
  {
    std::lock_guard<std::mutex> lock(g_conn_mu);
    g_conn_fds.erase(std::find(g_conn_fds.begin(), g_conn_fds.end(), fd));
  }
  ::close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  int port = 7423;
  ServerOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 1024;
  std::vector<std::string> tenant_specs;
  std::vector<std::string> snapshot_specs;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) { std::fprintf(stderr, "--port needs a value\n"); return 2; }
      port = std::atoi(v);
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) { std::fprintf(stderr, "--workers needs a value\n"); return 2; }
      opts.workers = std::atoi(v);
    } else if (arg == "--queue-depth") {
      const char* v = next();
      if (v == nullptr) { std::fprintf(stderr, "--queue-depth needs a value\n"); return 2; }
      opts.queue_capacity = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--tenant-cap") {
      const char* v = next();
      if (v == nullptr) { std::fprintf(stderr, "--tenant-cap needs a value\n"); return 2; }
      opts.per_tenant_inflight = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--session-threads") {
      const char* v = next();
      if (v == nullptr) { std::fprintf(stderr, "--session-threads needs a value\n"); return 2; }
      opts.session_threads = std::atoi(v);
    } else if (arg == "--snapshot-dir") {
      const char* v = next();
      if (v == nullptr) { std::fprintf(stderr, "--snapshot-dir needs a value\n"); return 2; }
      opts.snapshot_dir = v;
    } else if (arg == "--max-tenant-bytes") {
      const char* v = next();
      if (v == nullptr) { std::fprintf(stderr, "--max-tenant-bytes needs a value\n"); return 2; }
      opts.max_loaded_tenant_bytes = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--tenant") {
      const char* v = next();
      if (v == nullptr) { std::fprintf(stderr, "--tenant needs NAME=FILE.csv:FD[;FD]\n"); return 2; }
      tenant_specs.emplace_back(v);
    } else if (arg == "--tenant-snapshot") {
      const char* v = next();
      if (v == nullptr) { std::fprintf(stderr, "--tenant-snapshot needs NAME=FILE.snap\n"); return 2; }
      snapshot_specs.emplace_back(v);
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  std::signal(SIGPIPE, SIG_IGN);
  Server server(opts);

  for (const std::string& spec : tenant_specs) {
    std::string name, path;
    std::vector<std::string> fds;
    if (!ParseTenantSpec(spec, &name, &path, &fds)) {
      std::fprintf(stderr, "bad --tenant spec '%s'\n", spec.c_str());
      return 2;
    }
    Status status = server.LoadCsvTenant(name, path, fds);
    if (!status.ok()) {
      std::fprintf(stderr, "tenant '%s': %s\n", name.c_str(),
                   status.ToString().c_str());
      return 2;
    }
  }

  for (const std::string& spec : snapshot_specs) {
    size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
      std::fprintf(stderr, "bad --tenant-snapshot spec '%s'\n", spec.c_str());
      return 2;
    }
    std::string name = spec.substr(0, eq);
    Status status = server.LoadSnapshotTenant(name, spec.substr(eq + 1));
    if (!status.ok()) {
      std::fprintf(stderr, "tenant '%s': %s\n", name.c_str(),
                   status.ToString().c_str());
      return 2;
    }
  }

  g_listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (g_listen_fd < 0) { std::perror("socket"); return 1; }
  int one = 1;
  ::setsockopt(g_listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(g_listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    std::perror("bind");
    return 1;
  }
  if (::listen(g_listen_fd, 64) != 0) { std::perror("listen"); return 1; }
  socklen_t len = sizeof(addr);
  ::getsockname(g_listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  std::printf("retrust_server listening on 127.0.0.1:%d\n",
              ntohs(addr.sin_port));
  std::fflush(stdout);

  // Joinable (never detached) so no handler can outlive the Server; the
  // handles of finished connections are reaped only at shutdown, which
  // is fine at this tool's connection scale (one per driving client).
  std::vector<std::thread> connections;
  while (!g_shutdown.load()) {
    int fd = ::accept(g_listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (g_shutdown.load()) break;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(g_conn_mu);
      g_conn_fds.push_back(fd);
    }
    connections.emplace_back(ServeConnection, &server, fd);
  }
  ::close(g_listen_fd);

  // Force idle connections out of recv(), then wait for every handler to
  // finish its current reply before tearing the service down.
  {
    std::lock_guard<std::mutex> lock(g_conn_mu);
    for (int fd : g_conn_fds) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& conn : connections) conn.join();
  server.Stop();
  std::printf("retrust_server stopped\n");
  return 0;
}
