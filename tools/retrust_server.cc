// retrust_server — the long-running multi-tenant repair service binary.
//
//   retrust_server [--port N] [--workers W] [--queue-depth D]
//                  [--tenant-cap C] [--session-threads S]
//                  [--snapshot-dir DIR] [--max-tenant-bytes B]
//                  [--reader-threads R] [--pipeline-depth P]
//                  [--quota-rate TOKENS_PER_SEC] [--quota-burst TOKENS]
//                  [--metrics-dump-interval SECONDS]
//                  [--slow-request-seconds SECONDS]
//                  [--flight-records N] [--no-observability]
//                  [--tenant NAME=FILE.csv:FD[;FD...]]...
//                  [--tenant-snapshot NAME=FILE.snap]...
//
// Listens on 127.0.0.1:<port> (default 7423; 0 picks an ephemeral port)
// and speaks newline-delimited JSON: one request object per line, one
// response per line (wire format in src/service/wire.h — verbs:
// load_tenant, load_snapshot_tenant, repair, sweep, apply_delta,
// save_snapshot, unload_tenant, stats, shutdown).
//
// Connections are served by the event-driven loop in
// src/service/event_loop.h: every connection may PIPELINE many requests
// (replies correlate by the echoed "id" and may arrive out of order), so
// one socket saturates the worker pool — no thread per connection, no
// connection per request. `--quota-rate`/`--quota-burst` set the default
// per-tenant token-bucket admission quota (0 = unlimited); per-tenant
// overrides ride on the load_tenant verb ("quota_rate"/"quota_burst").
//
// Warm restart: `--tenant-snapshot` registers a tenant whose first
// request restores a src/persist/ snapshot instead of rebuilding from
// CSV; `--snapshot-dir` lets unload_tenant (and the `--max-tenant-bytes`
// budget eviction) auto-save dirty tenants to "<dir>/<name>.snap" before
// releasing their memory. Prints
//
//   retrust_server listening on 127.0.0.1:<port>
//
// once the socket is ready, so wrappers (CI's service smoke) can parse
// the chosen port.
//
// Observability (src/obs/): the `metrics` verb serves the process
// registry's exposition text, `dump_recent` dumps the flight recorder,
// and repairs with `"trace": true` return their span tree inline.
// `--metrics-dump-interval N` additionally prints the exposition to
// stderr every N seconds (0 = off, the default); `--slow-request-seconds`
// logs requests over the threshold with their span tree;
// `--flight-records` sizes the recorder ring; `--no-observability`
// disables all of it (the overhead A/B baseline).

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/service/event_loop.h"
#include "src/service/server.h"

using namespace retrust;
using namespace retrust::service;

namespace {

/// Splits "NAME=FILE.csv:FD[;FD...]". FDs are ';'-separated because ','
/// already separates the attributes of a compound LHS ("City,State->Zip").
bool ParseTenantSpec(const std::string& spec, std::string* name,
                     std::string* path, std::vector<std::string>* fds) {
  size_t eq = spec.find('=');
  size_t colon = spec.find(':', eq == std::string::npos ? 0 : eq);
  if (eq == std::string::npos || colon == std::string::npos || eq == 0) {
    return false;
  }
  *name = spec.substr(0, eq);
  *path = spec.substr(eq + 1, colon - eq - 1);
  std::string fd_list = spec.substr(colon + 1);
  size_t start = 0;
  while (start <= fd_list.size()) {
    size_t end = fd_list.find(';', start);
    if (end == std::string::npos) end = fd_list.size();
    if (end > start) fds->push_back(fd_list.substr(start, end - start));
    start = end + 1;
  }
  return !fds->empty();
}

}  // namespace

int main(int argc, char** argv) {
  ServerOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 1024;
  EventLoop::Options loop_opts;
  std::vector<std::string> tenant_specs;
  std::vector<std::string> snapshot_specs;
  double metrics_dump_interval = 0.0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) { std::fprintf(stderr, "--port needs a value\n"); return 2; }
      loop_opts.port = std::atoi(v);
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) { std::fprintf(stderr, "--workers needs a value\n"); return 2; }
      opts.workers = std::atoi(v);
    } else if (arg == "--queue-depth") {
      const char* v = next();
      if (v == nullptr) { std::fprintf(stderr, "--queue-depth needs a value\n"); return 2; }
      opts.queue_capacity = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--tenant-cap") {
      const char* v = next();
      if (v == nullptr) { std::fprintf(stderr, "--tenant-cap needs a value\n"); return 2; }
      opts.per_tenant_inflight = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--session-threads") {
      const char* v = next();
      if (v == nullptr) { std::fprintf(stderr, "--session-threads needs a value\n"); return 2; }
      opts.session_threads = std::atoi(v);
    } else if (arg == "--snapshot-dir") {
      const char* v = next();
      if (v == nullptr) { std::fprintf(stderr, "--snapshot-dir needs a value\n"); return 2; }
      opts.snapshot_dir = v;
    } else if (arg == "--max-tenant-bytes") {
      const char* v = next();
      if (v == nullptr) { std::fprintf(stderr, "--max-tenant-bytes needs a value\n"); return 2; }
      opts.max_loaded_tenant_bytes = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--reader-threads") {
      const char* v = next();
      if (v == nullptr) { std::fprintf(stderr, "--reader-threads needs a value\n"); return 2; }
      loop_opts.reader_threads = std::atoi(v);
    } else if (arg == "--pipeline-depth") {
      const char* v = next();
      if (v == nullptr) { std::fprintf(stderr, "--pipeline-depth needs a value\n"); return 2; }
      loop_opts.max_pipeline_depth = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--quota-rate") {
      const char* v = next();
      if (v == nullptr) { std::fprintf(stderr, "--quota-rate needs a value\n"); return 2; }
      opts.default_quota.rate = std::atof(v);
    } else if (arg == "--quota-burst") {
      const char* v = next();
      if (v == nullptr) { std::fprintf(stderr, "--quota-burst needs a value\n"); return 2; }
      opts.default_quota.burst = std::atof(v);
    } else if (arg == "--metrics-dump-interval") {
      const char* v = next();
      if (v == nullptr) { std::fprintf(stderr, "--metrics-dump-interval needs a value\n"); return 2; }
      metrics_dump_interval = std::atof(v);
    } else if (arg == "--slow-request-seconds") {
      const char* v = next();
      if (v == nullptr) { std::fprintf(stderr, "--slow-request-seconds needs a value\n"); return 2; }
      opts.slow_request_seconds = std::atof(v);
    } else if (arg == "--flight-records") {
      const char* v = next();
      if (v == nullptr) { std::fprintf(stderr, "--flight-records needs a value\n"); return 2; }
      opts.flight_recorder_capacity = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--no-observability") {
      opts.observability = false;
    } else if (arg == "--tenant") {
      const char* v = next();
      if (v == nullptr) { std::fprintf(stderr, "--tenant needs NAME=FILE.csv:FD[;FD]\n"); return 2; }
      tenant_specs.emplace_back(v);
    } else if (arg == "--tenant-snapshot") {
      const char* v = next();
      if (v == nullptr) { std::fprintf(stderr, "--tenant-snapshot needs NAME=FILE.snap\n"); return 2; }
      snapshot_specs.emplace_back(v);
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  std::signal(SIGPIPE, SIG_IGN);
  Server server(opts);

  for (const std::string& spec : tenant_specs) {
    std::string name, path;
    std::vector<std::string> fds;
    if (!ParseTenantSpec(spec, &name, &path, &fds)) {
      std::fprintf(stderr, "bad --tenant spec '%s'\n", spec.c_str());
      return 2;
    }
    Status status = server.LoadCsvTenant(name, path, fds);
    if (!status.ok()) {
      std::fprintf(stderr, "tenant '%s': %s\n", name.c_str(),
                   status.ToString().c_str());
      return 2;
    }
  }

  for (const std::string& spec : snapshot_specs) {
    size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
      std::fprintf(stderr, "bad --tenant-snapshot spec '%s'\n", spec.c_str());
      return 2;
    }
    std::string name = spec.substr(0, eq);
    Status status = server.LoadSnapshotTenant(name, spec.substr(eq + 1));
    if (!status.ok()) {
      std::fprintf(stderr, "tenant '%s': %s\n", name.c_str(),
                   status.ToString().c_str());
      return 2;
    }
  }

  EventLoop loop(&server, loop_opts);
  Status started = loop.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("retrust_server listening on 127.0.0.1:%d\n", loop.port());
  std::fflush(stdout);

  // Periodic exposition dump to stderr, for deployments scraped by log
  // collectors instead of a pull endpoint.
  std::thread dump_thread;
  std::mutex dump_mu;
  std::condition_variable dump_cv;
  bool dump_stop = false;
  if (metrics_dump_interval > 0.0 && server.metrics() != nullptr) {
    dump_thread = std::thread([&] {
      std::unique_lock<std::mutex> lock(dump_mu);
      const auto interval =
          std::chrono::duration<double>(metrics_dump_interval);
      while (!dump_cv.wait_for(lock, interval, [&] { return dump_stop; })) {
        std::string text = server.metrics()->ExpositionText();
        std::fprintf(stderr, "[retrust metrics]\n%s", text.c_str());
        std::fflush(stderr);
      }
    });
  }

  loop.WaitForShutdownRequest();
  if (dump_thread.joinable()) {
    {
      std::lock_guard<std::mutex> lock(dump_mu);
      dump_stop = true;
    }
    dump_cv.notify_all();
    dump_thread.join();
  }
  // Order matters: the LOOP drains and stops first (pending replies reach
  // the wire), THEN the server joins its workers — so every in-flight
  // done-callback has fired before anything it touches is torn down.
  loop.Stop();
  server.Stop();
  std::printf("retrust_server stopped\n");
  return 0;
}
