// Figure 13: generating multiple repairs for a τr range — Range-Repair
// (Algorithm 6, one search reused across the range) vs Sampling-Repair
// (independent Algorithm-2 runs at sampled τr values, step 1.7% as in the
// paper). Expected shape: Range-Repair wins, increasingly so for wide
// ranges (~3.8x at [0, 30%] in the paper).

#include "bench/bench_common.h"
#include "src/eval/experiment.h"
#include "src/repair/multi_repair.h"
#include "src/util/timer.h"

using namespace retrust;

int main() {
  bench::Banner("Figure 13",
                "multi-repair: Range-Repair (Alg 6) vs Sampling-Repair");

  CensusConfig gen;
  gen.num_tuples = bench::ScaledN(1500);
  gen.num_attrs = 16;
  gen.planted_lhs_sizes = {6};
  gen.seed = 42;
  PerturbOptions perturb;
  perturb.fd_error_rate = 0.5;
  perturb.data_error_rate = 0.02;
  perturb.seed = 7;
  ExperimentData data = PrepareExperiment(gen, perturb);

  std::printf("root deltaP = %lld\n\n",
              static_cast<long long>(data.root_delta_p));
  std::printf("%10s %16s %16s %10s %12s %12s\n", "max tau_r",
              "Range-time(s)", "Sample-time(s)", "speedup", "Range-reps",
              "Sample-reps");
  for (double max_tr : {0.10, 0.17, 0.23, 0.30}) {
    int64_t tau_hi = TauFromRelative(max_tr, data.root_delta_p);
    int64_t step = std::max<int64_t>(
        1, TauFromRelative(0.017, data.root_delta_p));  // paper's 1.7%

    Timer t1;
    MultiRepairResult range = FindRepairsFds(data.context(), 0, tau_hi);
    double range_time = t1.ElapsedSeconds();

    Timer t2;
    MultiRepairResult sample = SamplingRepairs(data.context(), 0, tau_hi, step);
    double sample_time = t2.ElapsedSeconds();

    std::printf("%9.0f%% %16.3f %16.3f %9.2fx %12zu %12zu\n", max_tr * 100,
                range_time, sample_time,
                range_time > 0 ? sample_time / range_time : 0.0,
                range.repairs.size(), sample.repairs.size());
  }
  return 0;
}
