// Figure 7: repair quality (combined F-score) vs relative trust τr, at four
// FD-error / data-error mixes. The paper's shape: with FD errors only the
// peak sits at τr = 0; as data errors take over the peak moves right,
// reaching τr = 100% for data errors only.

#include "bench/bench_common.h"
#include "src/eval/experiment.h"

using namespace retrust;

int main() {
  bench::Banner("Figure 7", "combined F-score vs tau_r at four error mixes");

  struct Mix {
    double fd_err;
    double data_err;
  };
  const Mix mixes[] = {{0.8, 0.0}, {0.5, 0.05}, {0.3, 0.05}, {0.0, 0.05}};
  const double taus[] = {0.0, 0.125, 0.25, 0.375, 0.5,
                         0.625, 0.75, 0.875, 1.0};

  std::printf("%-22s", "mix (FD%%, data%%)");
  for (double t : taus) std::printf(" tau=%3.0f%%", t * 100);
  std::printf("\n");

  for (const Mix& mix : mixes) {
    CensusConfig gen;
    gen.num_tuples = bench::ScaledN(1500);
    gen.num_attrs = 16;
    gen.planted_lhs_sizes = {6};
    gen.seed = 42;
    PerturbOptions perturb;
    perturb.fd_error_rate = mix.fd_err;
    perturb.data_error_rate = mix.data_err;
    perturb.seed = 7;
    ExperimentData data = PrepareExperiment(gen, perturb);

    std::printf("%3.0f%% FD, %3.0f%% data    ", mix.fd_err * 100,
                mix.data_err * 100);
    for (double t : taus) {
      ExperimentRun run = RunRepairAt(data, t);
      if (run.repaired) {
        std::printf("    %.3f", run.quality.CombinedF());
      } else {
        std::printf("        -");  // no repair within this tau (cf. §8.3.4)
      }
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: peak at tau=0 for the FD-only mix, moving "
              "right as data errors dominate, peak at tau=100%% for the "
              "data-only mix.\n");
  return 0;
}
