// Difference-set index construction vs tuple count (ROADMAP item 1).
//
// The naive builder walks all C(n,2) tuple pairs; the blocked builder
// (BuildDifferenceSetIndexBlocked) only enumerates pairs INSIDE
// per-attribute equivalence classes and counts the disagree-everywhere
// remainder without materializing it, so its work scales with
// Σ_classes |c|² instead of n². This bench measures both:
//
//   * a blocked-only scaling sweep at n = 10k/100k/500k (·scale) with the
//     per-phase breakdown and the candidate-vs-all-pairs ratio that shows
//     the enumeration staying sub-quadratic;
//   * a head-to-head blocked-vs-naive comparison at n = 50k (·scale),
//     asserting the two indexes are bit-identical — the naive path stays
//     available behind DiffSetBuildMode::kNaive exactly so it can serve as
//     this oracle.
//
// Writes BENCH_diffset.json; CI's Release smoke step asserts the headline
// speedup_x >= 5.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/eval/generator.h"
#include "src/eval/perturb.h"
#include "src/fd/difference_set.h"
#include "src/util/timer.h"

using namespace retrust;

namespace {

struct Dataset {
  EncodedInstance encoded;
  FDSet sigma;
};

/// Census-like data tuned to the regime the blocked build targets: every
/// attribute informative (no flag-like noise columns), near-uniform value
/// popularity, and a domain that grows with n — so per-attribute classes
/// stay around dup_factor·archetype size instead of Θ(n). Entity clusters
/// still guarantee plenty of wide-agreement (materialized) pairs.
Dataset MakeDataset(int n, uint64_t seed) {
  CensusConfig gen;
  gen.num_tuples = n;
  gen.num_attrs = 8;
  gen.planted_lhs_sizes = {2, 2};
  gen.num_base_attrs = 6;  // base + derived = 8: no low-cardinality noise
  gen.domain_size = std::max(64, n / 8);
  gen.zipf_s = 0.15;
  gen.seed = seed;
  GeneratedData clean = GenerateCensusLike(gen);
  PerturbOptions perturb;
  perturb.data_error_rate = 0.01;
  perturb.fd_error_rate = 0.5;
  PerturbedData dirty = Perturb(clean.instance, clean.planted_fds, perturb);
  return {EncodedInstance(dirty.data), std::move(dirty.fds)};
}

struct Row {
  int n = 0;
  DiffSetBuildStats stats;
  int64_t groups = 0;
};

Row MeasureBlocked(int n, int reps) {
  Dataset data = MakeDataset(n, /*seed=*/42);
  Row row;
  row.n = n;
  row.stats.total_seconds = 1e100;
  for (int r = 0; r < reps; ++r) {
    DiffSetBuildStats stats;
    DifferenceSetIndex index = BuildDifferenceSetIndex(
        data.encoded, data.sigma, {}, DiffSetBuildMode::kBlocked, &stats);
    if (stats.total_seconds < row.stats.total_seconds) {
      row.stats = stats;
      row.groups = index.size();
    }
  }
  return row;
}

void ExpectIdentical(const DifferenceSetIndex& a, const DifferenceSetIndex& b) {
  bool same = a.size() == b.size();
  for (int g = 0; same && g < a.size(); ++g) {
    same = a.group(g).diff.bits() == b.group(g).diff.bits() &&
           a.group(g).counted == b.group(g).counted &&
           a.group(g).edges == b.group(g).edges;
  }
  if (!same) {
    std::fprintf(stderr,
                 "FATAL: blocked and naive builders disagree (oracle check "
                 "failed)\n");
    std::exit(1);
  }
}

}  // namespace

int main() {
  bench::Banner("diffset-scaling",
                "blocked vs naive difference-set construction");

  // Blocked-only sweep: the naive builder would take minutes at these n.
  const std::vector<int> sizes = {bench::ScaledN(10000),
                                  bench::ScaledN(100000),
                                  bench::ScaledN(500000)};
  std::printf("%9s %11s %11s %11s %11s %14s %13s %13s\n", "n", "total(s)",
              "part(s)", "enum(s)", "group(s)", "candidates", "materialized",
              "counted");
  std::vector<Row> rows;
  for (int n : sizes) {
    Row row = MeasureBlocked(n, /*reps=*/n <= 100000 ? 3 : 1);
    rows.push_back(row);
    std::printf("%9d %11.3f %11.3f %11.3f %11.3f %14lld %13lld %13lld\n",
                row.n, row.stats.total_seconds, row.stats.partition_seconds,
                row.stats.enumerate_seconds, row.stats.group_seconds,
                static_cast<long long>(row.stats.pairs_candidate),
                static_cast<long long>(row.stats.pairs_materialized),
                static_cast<long long>(row.stats.pairs_counted));
  }

  // Head-to-head at a size where the naive build is still bearable.
  const int n_head = bench::ScaledN(50000);
  Dataset head = MakeDataset(n_head, /*seed=*/7);
  double blocked_s = 1e100;
  DifferenceSetIndex blocked;
  for (int r = 0; r < 3; ++r) {
    DiffSetBuildStats stats;
    blocked = BuildDifferenceSetIndex(head.encoded, head.sigma, {},
                                      DiffSetBuildMode::kBlocked, &stats);
    blocked_s = std::min(blocked_s, stats.total_seconds);
  }
  DiffSetBuildStats naive_stats;
  DifferenceSetIndex naive =
      BuildDifferenceSetIndex(head.encoded, head.sigma, {},
                              DiffSetBuildMode::kNaive, &naive_stats);
  ExpectIdentical(blocked, naive);
  const double naive_s = naive_stats.total_seconds;
  const double speedup = blocked_s > 0 ? naive_s / blocked_s : 0.0;
  std::printf("\nhead-to-head at n = %d (indexes bit-identical):\n", n_head);
  std::printf("  blocked %.3fs   naive %.3fs   speedup %.1fx\n", blocked_s,
              naive_s, speedup);

  FILE* json = bench::OpenBenchJson("diffset");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"n_headline\": %d,\n"
                 "  \"blocked_seconds\": %.6f,\n"
                 "  \"naive_seconds\": %.6f,\n"
                 "  \"speedup_x\": %.2f,\n"
                 "  \"rows\": [\n",
                 n_head, blocked_s, naive_s, speedup);
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      const long long all_pairs =
          static_cast<long long>(r.n) * (r.n - 1) / 2;
      std::fprintf(
          json,
          "    {\"n\": %d, \"total_seconds\": %.6f, "
          "\"partition_seconds\": %.6f, \"enumerate_seconds\": %.6f, "
          "\"group_seconds\": %.6f, \"pairs_all\": %lld, "
          "\"pairs_candidate\": %lld, \"pairs_materialized\": %lld, "
          "\"pairs_counted\": %lld, \"groups\": %lld}%s\n",
          r.n, r.stats.total_seconds, r.stats.partition_seconds,
          r.stats.enumerate_seconds, r.stats.group_seconds, all_pairs,
          static_cast<long long>(r.stats.pairs_candidate),
          static_cast<long long>(r.stats.pairs_materialized),
          static_cast<long long>(r.stats.pairs_counted),
          static_cast<long long>(r.groups),
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
  }
  return 0;
}
