// Service-layer throughput: requests/sec and tail latency of the
// multi-tenant Server across worker counts and tenant counts.
//
// Models the ROADMAP's target traffic shape: many independent repair
// requests (mixed τr grid points, the Fig. 12 workload) arriving for one
// or several datasets, drained by a shared worker pool with fair
// round-robin across tenants. The interesting numbers are the scaling of
// requests/sec with workers (cross-request parallelism — every Session
// verb itself runs serially) and the p99 latency under a full queue.
//
// Prints a table over workers ∈ {1, 2, 4, 8} × tenants ∈ {1, 4} and
// writes BENCH_service.json with every row plus the headline (8 workers,
// 4 tenants).
//
// A second section measures the WIRE itself: the same in-process Server
// behind the event-driven loop, driven by 64 concurrent clients in two
// modes — one request per fresh TCP connection (the pre-pipelining
// behavior) vs 64 persistent pipelined connections. The ratio is the
// payoff of connection-level pipelining and is CI-gated at ≥ 3×
// ("pipeline_speedup_x" in BENCH_service.json).

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/eval/generator.h"
#include "src/eval/perturb.h"
#include "src/obs/metrics.h"
#include "src/service/client.h"
#include "src/service/event_loop.h"
#include "src/service/server.h"
#include "src/util/timer.h"

using namespace retrust;
using namespace retrust::service;

namespace {

struct Row {
  int workers = 0;
  int tenants = 0;
  int requests = 0;
  double seconds = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;

  double rps() const { return seconds > 0 ? requests / seconds : 0.0; }
};

Instance TenantData(int n, uint64_t seed) {
  CensusConfig gen;
  gen.num_tuples = n;
  gen.num_attrs = 8;
  gen.planted_lhs_sizes = {2, 2};
  gen.seed = seed;
  PerturbOptions perturb;
  perturb.data_error_rate = 0.02;
  perturb.fd_error_rate = 0.5;
  perturb.seed = seed + 1;
  GeneratedData clean = GenerateCensusLike(gen);
  return Perturb(clean.instance, clean.planted_fds, perturb).data;
}

std::vector<std::string> TenantFds(int n, uint64_t seed) {
  CensusConfig gen;
  gen.num_tuples = n;
  gen.num_attrs = 8;
  gen.planted_lhs_sizes = {2, 2};
  gen.seed = seed;
  GeneratedData clean = GenerateCensusLike(gen);
  std::vector<std::string> texts;
  Schema schema = clean.instance.schema();
  for (const FD& fd : clean.planted_fds.fds()) {
    texts.push_back(fd.ToString(schema));
  }
  return texts;
}

Row Measure(int workers, int num_tenants, int requests_per_tenant, int n) {
  ServerOptions opts;
  opts.workers = workers;
  opts.queue_capacity = 16384;
  Server server(opts);

  for (int t = 0; t < num_tenants; ++t) {
    uint64_t seed = 100 + static_cast<uint64_t>(t) * 17;
    Status status = server.LoadTenant("tenant" + std::to_string(t),
                                      TenantData(n, seed), TenantFds(n, seed));
    if (!status.ok()) {
      std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
      std::exit(1);
    }
  }
  // Warm every tenant's weight memos outside the timed window, like a
  // live service that has answered at least one request per dataset.
  // Directly against the Session, NOT through the queue: warm-up samples
  // must not land in the latency histogram the p50/p99 columns report.
  Client client = server.client();
  for (int t = 0; t < num_tenants; ++t) {
    Result<std::shared_ptr<Session>> session =
        server.tenants().Get("tenant" + std::to_string(t));
    (void)(*session)->Repair(RepairRequest::AtRelative(1.0));
  }

  const std::vector<double> taus_r = {0.25, 0.5, 0.75, 1.0};
  Row row;
  row.workers = workers;
  row.tenants = num_tenants;

  Timer timer;
  std::vector<Submitted<Result<RepairResponse>>> pending;
  for (int i = 0; i < requests_per_tenant; ++i) {
    for (int t = 0; t < num_tenants; ++t) {
      RepairRequest req =
          RepairRequest::AtRelative(taus_r[static_cast<size_t>(i) % taus_r.size()]);
      req.seed = static_cast<uint64_t>(i) + 1;
      pending.push_back(
          client.Repair("tenant" + std::to_string(t), req));
    }
  }
  for (auto& p : pending) {
    Result<RepairResponse> response = p.future.get();
    if (!response.ok() &&
        response.status().code() != StatusCode::kNoRepairWithinTau) {
      std::fprintf(stderr, "request failed: %s\n",
                   response.status().ToString().c_str());
      std::exit(1);
    }
  }
  row.seconds = timer.ElapsedSeconds();
  row.requests = static_cast<int>(pending.size());

  ServerStats stats = client.Stats();
  row.p50 = stats.p50_latency_seconds;
  row.p99 = stats.p99_latency_seconds;
  if (stats.rejected() != 0) {
    std::fprintf(stderr, "unexpected rejections under capacity: %llu\n",
                 static_cast<unsigned long long>(stats.rejected()));
    std::exit(1);
  }
  return row;
}

// --- wire modes: pipelined vs one-request-per-connection -----------------

struct WireRow {
  int connections = 0;
  int requests = 0;
  double seconds = 0.0;
  double rps() const { return seconds > 0 ? requests / seconds : 0.0; }
};

/// The cheap request both wire modes send: per-tenant `stats` costs
/// microseconds to serve and a small reply to parse, so the measured
/// difference is wire overhead (connection setup, framing, turnaround),
/// which is exactly what pipelining removes.
const char kStatsLine[] = "{\"op\":\"stats\",\"tenant\":\"wire\"}\n";

/// One request per fresh TCP connection: connect, send, await the reply,
/// close — `connections` clients doing that in parallel.
WireRow MeasureSerialConn(int port, int connections, int requests_per_conn) {
  Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(connections));
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([port, requests_per_conn] {
      for (int i = 0; i < requests_per_conn; ++i) {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) std::exit(1);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(static_cast<uint16_t>(port));
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0) {
          std::perror("connect");
          std::exit(1);
        }
        if (::send(fd, kStatsLine, sizeof(kStatsLine) - 1, MSG_NOSIGNAL) <=
            0) {
          std::exit(1);
        }
        char chunk[4096];
        bool done = false;
        while (!done) {
          ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
          if (n <= 0) std::exit(1);
          done = std::memchr(chunk, '\n', static_cast<size_t>(n)) != nullptr;
        }
        ::close(fd);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  WireRow row;
  row.connections = connections;
  row.requests = connections * requests_per_conn;
  row.seconds = timer.ElapsedSeconds();
  return row;
}

/// Persistent pipelined connections: each client keeps one socket and many
/// requests in flight (chunks of 128, under the loop's pipeline depth).
WireRow MeasurePipelined(int port, int connections, int requests_per_conn) {
  Timer timer;  // connection setup included — it is amortized, that's the point
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(connections));
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([port, requests_per_conn] {
      auto client = WireClient::Connect(port);
      if (!client.ok()) {
        std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
        std::exit(1);
      }
      int remaining = requests_per_conn;
      while (remaining > 0) {
        const int burst = remaining < 128 ? remaining : 128;
        std::vector<std::future<Result<Json>>> pending;
        pending.reserve(static_cast<size_t>(burst));
        for (int i = 0; i < burst; ++i) {
          Json::Object req;
          req["op"] = Json("stats");
          req["tenant"] = Json("wire");
          pending.push_back((*client)->Call(Json(std::move(req))));
        }
        for (auto& p : pending) {
          Result<Json> reply = p.get();
          if (!reply.ok()) {
            std::fprintf(stderr, "%s\n", reply.status().ToString().c_str());
            std::exit(1);
          }
        }
        remaining -= burst;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  WireRow row;
  row.connections = connections;
  row.requests = connections * requests_per_conn;
  row.seconds = timer.ElapsedSeconds();
  return row;
}

/// One observability A/B arm: a fresh server + loop with the obs layer on
/// or off (private registry, so arms and trials never share counters),
/// driven by the pipelined stats workload. Requests carry no trace in
/// either arm — this measures what observability costs requests that did
/// NOT ask for it, the ≤5% contract CI gates.
WireRow MeasureObsMode(bool observability, int connections,
                       int requests_per_conn) {
  obs::MetricsRegistry registry;
  ServerOptions opts;
  opts.workers = 4;
  opts.queue_capacity = 0;
  opts.observability = observability;
  opts.metrics = &registry;
  Server server(opts);
  uint64_t seed = 900;
  Status status =
      server.LoadTenant("wire", TenantData(50, seed), TenantFds(50, seed));
  if (!status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }
  EventLoop::Options loop_opts;
  loop_opts.port = 0;
  loop_opts.reader_threads = 4;
  EventLoop loop(&server, loop_opts);
  Status started = loop.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    std::exit(1);
  }
  WireRow row = MeasurePipelined(loop.port(), connections, requests_per_conn);
  loop.Stop();
  server.Stop();
  return row;
}

}  // namespace

int main() {
  const int n = bench::ScaledN(400);
  const int requests_per_tenant = bench::ScaledN(24);

  bench::Banner("service", "multi-tenant Server throughput");
  std::printf("n = %d tuples/tenant, %d requests/tenant\n\n", n,
              requests_per_tenant);
  std::printf("%8s %8s %10s %10s %12s %12s\n", "workers", "tenants",
              "requests", "req/s", "p50 (ms)", "p99 (ms)");

  std::vector<Row> rows;
  for (int tenants : {1, 4}) {
    for (int workers : {1, 2, 4, 8}) {
      Row row = Measure(workers, tenants, requests_per_tenant, n);
      std::printf("%8d %8d %10d %10.1f %12.2f %12.2f\n", row.workers,
                  row.tenants, row.requests, row.rps(), row.p50 * 1e3,
                  row.p99 * 1e3);
      rows.push_back(row);
    }
  }

  // Wire section: same Server, event-driven front end, 64 concurrent
  // clients in both modes.
  const int kConnections = 64;
  const int serial_requests_per_conn = bench::ScaledN(16);
  const int pipelined_requests_per_conn = bench::ScaledN(512);
  WireRow serial_conn, pipelined;
  {
    ServerOptions wire_opts;
    wire_opts.workers = 4;
    wire_opts.queue_capacity = 0;
    Server server(wire_opts);
    {
      uint64_t seed = 900;
      Status status =
          server.LoadTenant("wire", TenantData(50, seed), TenantFds(50, seed));
      if (!status.ok()) {
        std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
        return 1;
      }
    }
    EventLoop::Options loop_opts;
    loop_opts.port = 0;
    loop_opts.reader_threads = 4;
    EventLoop loop(&server, loop_opts);
    Status started = loop.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    serial_conn =
        MeasureSerialConn(loop.port(), kConnections, serial_requests_per_conn);
    pipelined = MeasurePipelined(loop.port(), kConnections,
                                 pipelined_requests_per_conn);
    loop.Stop();
    server.Stop();
  }
  const double speedup =
      serial_conn.rps() > 0 ? pipelined.rps() / serial_conn.rps() : 0.0;
  std::printf("\nwire, %d concurrent clients (stats verb):\n", kConnections);
  std::printf("  one request per connection: %10.0f req/s (%d requests)\n",
              serial_conn.rps(), serial_conn.requests);
  std::printf("  pipelined persistent conns: %10.0f req/s (%d requests)\n",
              pipelined.rps(), pipelined.requests);
  std::printf("  pipeline speedup:           %10.2fx\n", speedup);

  // Observability A/B: same binary, obs off vs on, untraced requests.
  // Three interleaved trials, best rps per arm, so a noise spike in one
  // trial can't fail the CI gate (obs_overhead_ratio >= 0.95).
  const int kObsConnections = 32;
  const int obs_requests_per_conn = bench::ScaledN(256);
  double obs_off_rps = 0.0, obs_on_rps = 0.0;
  int obs_requests = 0;
  for (int trial = 0; trial < 3; ++trial) {
    WireRow off = MeasureObsMode(false, kObsConnections, obs_requests_per_conn);
    WireRow on = MeasureObsMode(true, kObsConnections, obs_requests_per_conn);
    if (off.rps() > obs_off_rps) obs_off_rps = off.rps();
    if (on.rps() > obs_on_rps) obs_on_rps = on.rps();
    obs_requests = on.requests;
  }
  const double obs_ratio = obs_off_rps > 0 ? obs_on_rps / obs_off_rps : 0.0;
  std::printf("\nobservability overhead, %d pipelined clients x %d requests "
              "(best of 3):\n",
              kObsConnections, obs_requests_per_conn);
  std::printf("  observability off:          %10.0f req/s\n", obs_off_rps);
  std::printf("  observability on, untraced: %10.0f req/s\n", obs_on_rps);
  std::printf("  on/off throughput ratio:    %10.3f\n", obs_ratio);

  const Row& headline = rows.back();  // 8 workers x 4 tenants
  FILE* json = bench::OpenBenchJson("service");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(json,
                   "    {\"workers\": %d, \"tenants\": %d, \"requests\": %d, "
                   "\"seconds\": %.6f, \"rps\": %.2f, "
                   "\"p50_seconds\": %.6f, \"p99_seconds\": %.6f}%s\n",
                   r.workers, r.tenants, r.requests, r.seconds, r.rps(),
                   r.p50, r.p99, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n"
                 "  \"headline_workers\": %d,\n"
                 "  \"headline_tenants\": %d,\n"
                 "  \"headline_rps\": %.2f,\n"
                 "  \"headline_p99_seconds\": %.6f,\n"
                 "  \"wire_connections\": %d,\n"
                 "  \"serial_conn_requests\": %d,\n"
                 "  \"serial_conn_rps\": %.2f,\n"
                 "  \"pipelined_requests\": %d,\n"
                 "  \"pipelined_rps\": %.2f,\n"
                 "  \"pipeline_speedup_x\": %.2f,\n"
                 "  \"obs_requests\": %d,\n"
                 "  \"obs_off_rps\": %.2f,\n"
                 "  \"obs_on_rps\": %.2f,\n"
                 "  \"obs_overhead_ratio\": %.4f\n"
                 "}\n",
                 headline.workers, headline.tenants, headline.rps(),
                 headline.p99, kConnections, serial_conn.requests,
                 serial_conn.rps(), pipelined.requests, pipelined.rps(),
                 speedup, obs_requests, obs_off_rps, obs_on_rps, obs_ratio);
    std::fclose(json);
  }
  return 0;
}
