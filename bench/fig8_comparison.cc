// Figure 8 (table): the maximum quality achievable by relative-trust-aware
// repairing vs the unified-cost baseline [5], at four error mixes.
//
// For our algorithm the best combined F-score over a τr grid is reported
// (the paper likewise picks the best parameter setting per algorithm); the
// unified-cost baseline has no τ — its trade-off is fixed by its cost model.

#include "bench/bench_common.h"
#include "src/eval/experiment.h"

using namespace retrust;

namespace {

void PrintRow(const char* algo, double fd_err, double data_err,
              const ExperimentRun& run) {
  std::printf("%-24s %5.0f%% %6.0f%%   %9.2f %8.2f %10.2f %9.2f %10.3f\n",
              algo, fd_err * 100, data_err * 100, run.quality.fd.precision,
              run.quality.fd.recall, run.quality.data.precision,
              run.quality.data.recall, run.quality.CombinedF());
}

}  // namespace

int main() {
  bench::Banner("Figure 8",
                "best achievable quality: Uniform-Cost [5] vs Relative-Trust");

  struct Mix {
    double fd_err;
    double data_err;
  };
  const Mix mixes[] = {{0.8, 0.0}, {0.5, 0.05}, {0.3, 0.05}, {0.0, 0.05}};

  std::printf("%-24s %6s %7s   %9s %8s %10s %9s %10s\n", "algorithm",
              "FDerr", "dataerr", "FDprec", "FDrec", "dataprec", "datarec",
              "combinedF");

  for (const Mix& mix : mixes) {
    CensusConfig gen;
    gen.num_tuples = bench::ScaledN(1500);
    gen.num_attrs = 16;
    gen.planted_lhs_sizes = {6};
    gen.seed = 42;
    PerturbOptions perturb;
    perturb.fd_error_rate = mix.fd_err;
    perturb.data_error_rate = mix.data_err;
    perturb.seed = 7;
    ExperimentData data = PrepareExperiment(gen, perturb);

    ExperimentRun uniform = RunUnifiedCost(data);
    PrintRow("Uniform-Cost [5]", mix.fd_err, mix.data_err, uniform);

    ExperimentRun best;
    double best_f = -1;
    for (double t : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
      ExperimentRun run = RunRepairAt(data, t);
      if (run.repaired && run.quality.CombinedF() > best_f) {
        best_f = run.quality.CombinedF();
        best = std::move(run);
      }
    }
    PrintRow("Relative-Trust (best)", mix.fd_err, mix.data_err, best);
    std::printf("\n");
  }
  std::printf("Expected shape: the unified model's trade-off is fixed a "
              "priori, so it cannot adapt to the actual error mix; "
              "Relative-Trust (choosing the right tau per mix) dominates "
              "its combined F-score on every mix, most dramatically when "
              "FD errors dominate (paper Figure 8).\n");
  return 0;
}
