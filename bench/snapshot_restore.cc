// Snapshot persistence: warm restart vs cold rebuild.
//
// The service restart story the persistence subsystem exists for: a
// process dies (deploy, OOM, host move) and the replacement must answer
// requests again. Cold start pays Session::Open's O(n²) difference-set /
// conflict-graph build; a warm start reads the src/persist/ snapshot —
// a linear scan plus cheap index reconstruction — and comes back with the
// cover memo already warm. Answers are bit-identical either way, so the
// only difference a client can observe is the time to the first reply.
//
// Prints a table over several n and writes BENCH_snapshot.json with the
// headline row (n = 5000·scale) that CI's Release smoke step asserts:
// speedup_x >= 10.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/api/session.h"
#include "src/eval/generator.h"
#include "src/eval/perturb.h"
#include "src/util/timer.h"

using namespace retrust;

namespace {

struct Row {
  int n = 0;
  double load_seconds = 0.0;
  double rebuild_seconds = 0.0;
  size_t snapshot_bytes = 0;

  double speedup() const {
    return load_seconds > 0 ? rebuild_seconds / load_seconds : 0.0;
  }
};

/// Best-of-`reps` timing of Session::OpenSnapshot against a from-scratch
/// Session::Open over the same data, with a bit-identity spot check.
Row Measure(const Instance& data, const FDSet& sigma,
            const std::string& path, int reps) {
  Row row;
  row.n = data.NumTuples();
  row.load_seconds = 1e100;
  row.rebuild_seconds = 1e100;

  {
    Result<Session> session = Session::Open(data, sigma);
    if (!session.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   session.status().ToString().c_str());
      std::exit(1);
    }
    // Warm the cover memo like a live service before the save, so the
    // snapshot carries a realistic warm state, not an empty one.
    (void)session->Repair(RepairRequest::AtRelative(1.0));
    Status saved = session->SaveSnapshot(path);
    if (!saved.ok()) {
      std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
      std::exit(1);
    }
  }
  if (FILE* f = std::fopen(path.c_str(), "rb")) {
    std::fseek(f, 0, SEEK_END);
    row.snapshot_bytes = static_cast<size_t>(std::ftell(f));
    std::fclose(f);
  }

  int64_t rebuilt_root = 0;
  for (int r = 0; r < reps; ++r) {
    Timer rebuild_timer;
    Result<Session> rebuilt = Session::Open(data, sigma);
    double rebuild = rebuild_timer.ElapsedSeconds();
    if (!rebuilt.ok()) {
      std::fprintf(stderr, "rebuild failed: %s\n",
                   rebuilt.status().ToString().c_str());
      std::exit(1);
    }
    rebuilt_root = rebuilt->RootDeltaP();
    row.rebuild_seconds = std::min(row.rebuild_seconds, rebuild);

    Timer load_timer;
    Result<Session> loaded = Session::OpenSnapshot(path);
    double load = load_timer.ElapsedSeconds();
    if (!loaded.ok() || loaded->RootDeltaP() != rebuilt_root) {
      std::fprintf(stderr, "restore mismatch: snapshot and from-scratch "
                           "sessions disagree\n");
      std::exit(1);
    }
    row.load_seconds = std::min(row.load_seconds, load);
  }
  return row;
}

}  // namespace

int main() {
  const int headline_n = bench::ScaledN(5000);
  const std::vector<int> sizes = {headline_n / 4, headline_n / 2,
                                  headline_n};

  bench::Banner("snapshot", "Session::OpenSnapshot vs full rebuild");

  CensusConfig gen;
  gen.num_tuples = headline_n;
  gen.num_attrs = 8;
  gen.planted_lhs_sizes = {2, 2};
  gen.seed = 42;
  GeneratedData clean = GenerateCensusLike(gen);
  PerturbOptions perturb;
  perturb.data_error_rate = 0.01;
  perturb.fd_error_rate = 0.5;
  PerturbedData dirty = Perturb(clean.instance, clean.planted_fds, perturb);

  std::printf("%8s %14s %14s %10s %14s\n", "n", "load (ms)",
              "rebuild (ms)", "speedup", "file (KiB)");

  Row headline;
  for (int n : sizes) {
    Instance subset(dirty.data.schema());
    for (TupleId t = 0; t < n; ++t) subset.AddTuple(dirty.data.row(t));
    const std::string path =
        "BENCH_snapshot_" + std::to_string(n) + ".snap";
    Row row = Measure(subset, dirty.fds, path, /*reps=*/5);
    std::remove(path.c_str());
    std::printf("%8d %14.2f %14.2f %9.1fx %14.1f\n", row.n,
                row.load_seconds * 1e3, row.rebuild_seconds * 1e3,
                row.speedup(), row.snapshot_bytes / 1024.0);
    if (n == headline_n) headline = row;
  }

  FILE* json = bench::OpenBenchJson("snapshot");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"n\": %d,\n"
                 "  \"load_seconds\": %.6f,\n"
                 "  \"rebuild_seconds\": %.6f,\n"
                 "  \"speedup_x\": %.2f,\n"
                 "  \"snapshot_bytes\": %zu\n"
                 "}\n",
                 headline.n, headline.load_seconds,
                 headline.rebuild_seconds, headline.speedup(),
                 headline.snapshot_bytes);
    std::fclose(json);
  }
  return 0;
}
