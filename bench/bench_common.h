// Shared helpers for the figure-reproduction bench binaries.
//
// Every binary prints the series/rows of one paper figure or table. Sizes
// default to laptop-friendly values; set RETRUST_BENCH_SCALE (a float,
// default 1.0) to scale tuple counts up toward the paper's sizes.

#ifndef RETRUST_BENCH_BENCH_COMMON_H_
#define RETRUST_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace retrust::bench {

/// RETRUST_BENCH_SCALE env var (default 1.0, clamped to [0.05, 100]).
inline double Scale() {
  const char* s = std::getenv("RETRUST_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  double v = std::atof(s);
  if (v < 0.05) v = 0.05;
  if (v > 100) v = 100;
  return v;
}

/// Scaled tuple count.
inline int ScaledN(int base) { return static_cast<int>(base * Scale()); }

/// Prints a banner naming the figure being reproduced.
inline void Banner(const char* figure, const char* what) {
  std::printf("=== %s: %s ===\n", figure, what);
  std::printf("(scale=%.2f via RETRUST_BENCH_SCALE; shapes, not absolute "
              "numbers, are the reproduction target)\n\n",
              Scale());
}

/// Path of the machine-readable output BENCH_<name>.json: the current
/// directory, or $RETRUST_BENCH_JSON_DIR when set. Every bench binary that
/// tracks the perf trajectory (micro_core, fig12_tau) writes one.
inline std::string BenchJsonPath(const char* name) {
  std::string dir = ".";
  if (const char* d = std::getenv("RETRUST_BENCH_JSON_DIR")) dir = d;
  return dir + "/BENCH_" + name + ".json";
}

/// Opens BENCH_<name>.json for writing (nullptr on failure, with a note);
/// callers fprintf JSON into it.
inline FILE* OpenBenchJson(const char* name) {
  std::string path = BenchJsonPath(name);
  FILE* f = std::fopen(path.c_str(), "w");
  std::printf(f != nullptr ? "\nwriting %s\n" : "\ncannot write %s\n",
              path.c_str());
  return f;
}

}  // namespace retrust::bench

#endif  // RETRUST_BENCH_BENCH_COMMON_H_
