// Figure 11: scalability with the number of FDs. As in the paper, a single
// FD is replicated to grow |Σ| (the state space is exponential in |Σ|);
// τr = 1%. Best-first did not terminate within 24h beyond 2 FDs in the
// paper — here it hits the state cap instead.

#include "bench/bench_common.h"
#include "src/api/session.h"
#include "src/eval/experiment.h"
#include "src/util/timer.h"

using namespace retrust;

int main() {
  bench::Banner("Figure 11", "time vs #FDs (replicated FD), tau_r = 2%");

  const int64_t kBestFirstCap = 40000;

  std::printf("%8s %14s %14s %16s %16s\n", "FDs", "A*-time(s)",
              "BF-time(s)", "A*-states", "BF-states");
  for (int z = 1; z <= 4; ++z) {
    CensusConfig gen;
    gen.num_tuples = bench::ScaledN(1500);
    gen.num_attrs = 16;
    gen.planted_lhs_sizes = {5};
    gen.seed = 42;
    PerturbOptions perturb;
    perturb.fd_error_rate = 0.4;
    perturb.data_error_rate = 0.0;
    perturb.seed = 7;

    // Prepare once, then replicate the (perturbed) FD z times, exactly as
    // the paper simulates larger Σ.
    GeneratedData clean = GenerateCensusLike(gen);
    PerturbedData dirty = Perturb(clean.instance, clean.planted_fds, perturb);
    std::vector<FD> fds;
    for (int i = 0; i < z; ++i) fds.push_back(dirty.fds.fd(0));
    FDSet sigma(fds);
    Result<Session> session = Session::Open(dirty.data, sigma);
    if (!session.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   session.status().ToString().c_str());
      return 1;
    }
    int64_t tau = TauFromRelative(0.02, session->RootDeltaP());

    double times[2];
    int64_t states[2];
    bool capped[2] = {false, false};
    const SearchMode modes[] = {SearchMode::kAStar, SearchMode::kBestFirst};
    for (int k = 0; k < 2; ++k) {
      RepairRequest req = RepairRequest::At(tau);
      req.mode = modes[k];
      // Cap both modes (single-core safety); '+' marks capped runs.
      req.budget = kBestFirstCap *
                   ((modes[k] == SearchMode::kBestFirst) ? 1 : 2);
      Timer timer;
      Result<SearchProbe> probe = session->Search(req);
      if (!probe.ok()) {
        std::fprintf(stderr, "probe failed: %s\n",
                     probe.status().ToString().c_str());
        return 1;
      }
      times[k] = timer.ElapsedSeconds();
      states[k] = probe->result.stats.states_visited;
      capped[k] = !probe->result.repair.has_value() &&
                  probe->result.termination ==
                      SearchTermination::kVisitBudget;
    }
    std::printf("%8d %14.3f %14.3f %15lld%s %15lld%s\n", z, times[0],
                times[1], static_cast<long long>(states[0]), capped[0] ? "+" : " ",
                static_cast<long long>(states[1]), capped[1] ? "+" : " ");
  }
  std::printf("\n('+' = best-first hit the %lld-state cap — the paper's "
              ">24h non-termination analogue)\n",
              static_cast<long long>(kBestFirstCap));
  return 0;
}
