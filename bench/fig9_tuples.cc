// Figure 9: scalability with the number of tuples — (a) running time,
// (b) number of visited states — for A*-Repair vs Best-First-Repair.
// Two FDs, τr = 1%.
//
// The paper's shape: A* visits orders of magnitude fewer states; both
// curves rise while distinct difference sets accumulate, then A*'s drops
// once difference-set frequencies grow and the gc bounds tighten.

#include "bench/bench_common.h"
#include "src/eval/experiment.h"
#include "src/util/timer.h"

using namespace retrust;

int main() {
  bench::Banner("Figure 9", "time and visited states vs #tuples, 2 FDs, "
                            "tau_r = 2%");

  const int bases[] = {500, 1000, 2500, 5000};
  const int64_t kBestFirstCap = 60000;

  std::printf("%8s %14s %14s %16s %16s\n", "tuples", "A*-time(s)",
              "BF-time(s)", "A*-states", "BF-states");
  for (int base : bases) {
    CensusConfig gen;
    gen.num_tuples = bench::ScaledN(base);
    gen.num_attrs = 20;
    gen.planted_lhs_sizes = {5, 5};
    gen.seed = 42;
    PerturbOptions perturb;
    perturb.fd_error_rate = 0.4;
    perturb.data_error_rate = 0.0;
    perturb.seed = 7;
    ExperimentData data = PrepareExperiment(gen, perturb);

    double times[2];
    int64_t states[2];
    bool capped[2] = {false, false};
    const SearchMode modes[] = {SearchMode::kAStar, SearchMode::kBestFirst};
    for (int k = 0; k < 2; ++k) {
      ModifyFdsOptions opts;
      opts.mode = modes[k];
      // Cap both modes (single-core safety); '+' marks capped runs.
      opts.max_visited = kBestFirstCap *
                         ((modes[k] == SearchMode::kBestFirst) ? 1 : 2);
      int64_t tau = TauFromRelative(0.02, data.root_delta_p);
      Timer timer;
      ModifyFdsResult r = ModifyFds(data.context(), tau, opts);
      times[k] = timer.ElapsedSeconds();
      states[k] = r.stats.states_visited;
      capped[k] = !r.repair.has_value() && states[k] >= opts.max_visited;
    }
    std::printf("%8d %14.3f %14.3f %15lld%s %15lld%s\n", gen.num_tuples,
                times[0], times[1], static_cast<long long>(states[0]), capped[0] ? "+" : " ",
                static_cast<long long>(states[1]), capped[1] ? "+" : " ");
  }
  std::printf("\n('+' = best-first hit the %lld-state safety cap before "
              "finding the goal)\n",
              static_cast<long long>(kBestFirstCap));
  return 0;
}
