// Ablation: tuple-by-tuple data repair (Algorithm 4, bounded by Theorem 3)
// vs the cell-by-cell sampler in the style of reference [3]. The paper's §6
// motivates cleaning tuple-wise precisely to obtain a change bound that is
// independent of the FD set being mutated; this bench quantifies the gap.

#include "bench/bench_common.h"
#include "src/eval/experiment.h"
#include "src/repair/cell_sampler.h"
#include "src/util/timer.h"

using namespace retrust;

int main() {
  bench::Banner("Ablation",
                "data repair: tuple-wise (Alg 4) vs cell-wise sampler [3]");

  std::printf("%6s %14s %14s %12s %12s %12s %12s\n", "seed",
              "Alg4-cells", "Sampler-cells", "Alg4-bound", "Alg4-time",
              "Sampler-time", "both-valid");
  for (uint64_t seed = 0; seed < 5; ++seed) {
    CensusConfig gen;
    gen.num_tuples = bench::ScaledN(1200);
    gen.num_attrs = 12;
    gen.planted_lhs_sizes = {5};
    gen.seed = 42 + seed;
    PerturbOptions perturb;
    perturb.fd_error_rate = 0.4;
    perturb.data_error_rate = 0.02;
    perturb.seed = 7 + seed;
    ExperimentData data = PrepareExperiment(gen, perturb);

    Rng rng_a(seed);
    Timer t1;
    DataRepairResult alg4 = RepairData(data.encoded(), data.dirty.fds, &rng_a);
    double alg4_time = t1.ElapsedSeconds();

    Rng rng_b(seed);
    Timer t2;
    DataRepairResult sampler =
        CellSamplerRepair(data.encoded(), data.dirty.fds, &rng_b);
    double sampler_time = t2.ElapsedSeconds();

    bool valid = Satisfies(alg4.repaired, data.dirty.fds) &&
                 Satisfies(sampler.repaired, data.dirty.fds);
    std::printf("%6llu %14zu %14zu %12lld %11.3fs %11.3fs %12s\n",
                static_cast<unsigned long long>(seed),
                alg4.changed_cells.size(), sampler.changed_cells.size(),
                static_cast<long long>(alg4.change_bound), alg4_time,
                sampler_time, valid ? "yes" : "NO");
  }
  std::printf("\nExpected shape: Algorithm 4 stays within its bound; the "
              "unbounded sampler typically edits more cells (and its edits "
              "are less localized).\n");
  return 0;
}
