// Quality-vs-time frontier of the search policies (src/search/engine.cc).
//
// For several schema scales |Σ| the bench runs the same τ-constrained
// FD-modification search under every policy and reports:
//
//   * time-to-FIRST-repair (the anytime/greedy headline: how long until a
//     τ-feasible repair is in hand) vs the exact policy's full runtime
//     (exact only answers once optimality is proven);
//   * the final cost each policy settles on, the proven suboptimality
//     bound, and the incumbent count — the quality side of the trade;
//   * the engine's pruning counters (expansions, δP-floor prunes).
//
// Writes BENCH_search.json; CI's Release gate asserts the headline
// anytime (w = 2) first-repair latency is at most 0.5× the exact runtime
// at the largest scale (speedup_x >= 2).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/eval/generator.h"
#include "src/eval/perturb.h"
#include "src/repair/modify_fds.h"
#include "src/util/timer.h"

using namespace retrust;

namespace {

struct Dataset {
  EncodedInstance encoded;
  FDSet sigma;
};

/// Census-like data with |planted| FDs of LHS width 4: every extra FD
/// multiplies the LHS-extension branching the search must order, which is
/// exactly the regime where exact's optimality scan gets expensive and
/// the anytime frontier pays off.
Dataset MakeDataset(int n, int num_fds, uint64_t seed) {
  CensusConfig gen;
  gen.num_tuples = n;
  gen.num_attrs = 12;
  gen.planted_lhs_sizes.assign(num_fds, 4);
  gen.seed = seed;
  GeneratedData clean = GenerateCensusLike(gen);
  PerturbOptions perturb;
  perturb.fd_error_rate = 0.5;
  perturb.data_error_rate = 0.02;
  perturb.seed = seed + 1;
  PerturbedData dirty = Perturb(clean.instance, clean.planted_fds, perturb);
  return {EncodedInstance(dirty.data), std::move(dirty.fds)};
}

struct PolicyRun {
  const char* label = "";
  double seconds = 0.0;            ///< full policy runtime
  double first_repair_seconds = 0.0;
  double distc = 0.0;
  double suboptimality_bound = 0.0;
  int64_t expansions = 0;
  int64_t lb_prunes = 0;
  int64_t incumbents = 0;
  bool found = false;
};

PolicyRun RunPolicy(const FdSearchContext& ctx, int64_t tau,
                    const ModifyFdsOptions& opts, const char* label) {
  // One run per policy: the search is deterministic and the largest scale
  // runs for seconds, so the between-run noise is in the percents — far
  // below the 2x the gate asserts.
  ModifyFdsResult r = ModifyFds(ctx, tau, opts);
  PolicyRun run;
  run.label = label;
  run.seconds = r.stats.seconds;
  run.first_repair_seconds = r.stats.first_repair_seconds;
  run.suboptimality_bound = r.stats.suboptimality_bound;
  run.expansions = r.stats.expansions;
  run.lb_prunes = r.stats.lb_prunes;
  run.incumbents = r.stats.incumbent_improvements;
  run.found = r.repair.has_value();
  run.distc = r.repair.has_value() ? r.repair->distc : -1.0;
  return run;
}

}  // namespace

int main() {
  bench::Banner("search frontier",
                "first-repair latency and final cost across policies");

  const std::vector<int> fd_counts = {1, 2, 3, 4};
  const int n = bench::ScaledN(400);

  FILE* json = bench::OpenBenchJson("search");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"rows\": [\n");
  }

  double gate_exact_seconds = 0.0;
  double gate_anytime_first = 0.0;
  bool first_row = true;
  for (int num_fds : fd_counts) {
    Dataset data = MakeDataset(n, num_fds, /*seed=*/7);
    DistinctCountWeight weights(data.encoded);
    FdSearchContext ctx(data.sigma, data.encoded, weights);
    const int64_t tau = ctx.RootDeltaP() / 4;

    std::vector<PolicyRun> runs;
    {
      ModifyFdsOptions opts;
      runs.push_back(RunPolicy(ctx, tau, opts, "exact"));
    }
    for (double w : {1.5, 2.0, 3.0}) {
      ModifyFdsOptions opts;
      opts.policy.policy = search::SearchPolicy::kAnytime;
      opts.policy.weighting_factor = w;
      char label[32];
      std::snprintf(label, sizeof label, "anytime_w%.1f", w);
      PolicyRun run = RunPolicy(ctx, tau, opts, "anytime");
      std::printf("|Sigma| = %d  %-12s first repair %8.2f ms  total "
                  "%8.2f ms  distc %6.1f  bound %.2fx  expansions %lld  "
                  "lb prunes %lld\n",
                  num_fds, label, run.first_repair_seconds * 1e3,
                  run.seconds * 1e3, run.distc, run.suboptimality_bound,
                  static_cast<long long>(run.expansions),
                  static_cast<long long>(run.lb_prunes));
      if (w == 2.0) runs.push_back(run);
    }
    {
      ModifyFdsOptions opts;
      opts.policy.policy = search::SearchPolicy::kGreedy;
      runs.push_back(RunPolicy(ctx, tau, opts, "greedy"));
    }

    const PolicyRun& exact = runs[0];
    const PolicyRun& anytime = runs[1];
    const PolicyRun& greedy = runs[2];
    std::printf("|Sigma| = %d  %-12s first repair %8.2f ms  total "
                "%8.2f ms  distc %6.1f  (optimal)\n",
                num_fds, "exact", exact.first_repair_seconds * 1e3,
                exact.seconds * 1e3, exact.distc);
    std::printf("|Sigma| = %d  %-12s first repair %8.2f ms  total "
                "%8.2f ms  distc %6.1f  (no claim)\n\n",
                num_fds, "greedy", greedy.first_repair_seconds * 1e3,
                greedy.seconds * 1e3, greedy.distc);

    // The gate reads the LARGEST scale: that is where the anytime payoff
    // must show.
    gate_exact_seconds = exact.seconds;
    gate_anytime_first = anytime.first_repair_seconds;

    if (json != nullptr) {
      for (const PolicyRun& run : runs) {
        std::fprintf(json,
                     "%s    {\"num_fds\": %d, \"policy\": \"%s\", "
                     "\"seconds\": %.6f, \"first_repair_seconds\": %.6f, "
                     "\"distc\": %.3f, \"suboptimality_bound\": %.3f, "
                     "\"expansions\": %lld, \"lb_prunes\": %lld, "
                     "\"incumbents\": %lld, \"found\": %s}",
                     first_row ? "" : ",\n", num_fds, run.label,
                     run.seconds, run.first_repair_seconds, run.distc,
                     run.suboptimality_bound,
                     static_cast<long long>(run.expansions),
                     static_cast<long long>(run.lb_prunes),
                     static_cast<long long>(run.incumbents),
                     run.found ? "true" : "false");
        first_row = false;
      }
    }
  }

  const double speedup =
      gate_anytime_first > 0 ? gate_exact_seconds / gate_anytime_first : 0;
  std::printf("headline (|Sigma| = %d): exact %.2f ms, anytime(w=2) first "
              "repair %.2f ms -> speedup_x %.1f\n",
              fd_counts.back(), gate_exact_seconds * 1e3,
              gate_anytime_first * 1e3, speedup);

  if (json != nullptr) {
    std::fprintf(json,
                 "\n  ],\n  \"exact_seconds\": %.6f,\n"
                 "  \"anytime_first_repair_seconds\": %.6f,\n"
                 "  \"speedup_x\": %.2f\n}\n",
                 gate_exact_seconds, gate_anytime_first, speedup);
    std::fclose(json);
  }
  return 0;
}
