// Thread-scaling of the two parallelized hot paths:
//   (a) violation detection — conflict graph + difference-set index over a
//       10k-tuple generated instance (sharded via src/exec/), and
//   (b) a τ-sweep — many ModifyFds searches over one shared context
//       (exec::Sweep).
// Reports wall-clock and speedup at 1/2/4/8 threads and cross-checks that
// every thread count produced the identical result (the exec/ determinism
// contract).
//
//   build/bench/bench_scaling_threads

#include <cinttypes>

#include "bench/bench_common.h"
#include "src/eval/experiment.h"
#include "src/exec/parallel_for.h"
#include "src/exec/sweep.h"
#include "src/util/timer.h"

using namespace retrust;

namespace {

// One pass of violation detection; returns a structural checksum.
uint64_t DetectViolations(const EncodedInstance& inst, const FDSet& fds,
                          exec::ThreadPool* pool, double* seconds) {
  Timer timer;
  ConflictGraph cg = BuildConflictGraph(inst, fds, pool);
  DifferenceSetIndex index(inst, cg, pool);
  *seconds = timer.ElapsedSeconds();
  uint64_t checksum = cg.num_edges();
  for (const auto& mask : cg.edge_fd_mask) checksum = checksum * 31 + mask;
  for (const DiffSetGroup& g : index.groups()) {
    checksum = checksum * 31 + g.diff.bits();
    checksum = checksum * 31 + static_cast<uint64_t>(g.edges.size());
  }
  return checksum;
}

}  // namespace

int main() {
  bench::Banner("Thread scaling",
                "violation detection and tau-sweep at 1/2/4/8 threads");

  CensusConfig gen;
  gen.num_tuples = bench::ScaledN(10000);
  gen.num_attrs = 14;
  gen.planted_lhs_sizes = {5};
  gen.seed = 42;
  PerturbOptions perturb;
  perturb.fd_error_rate = 0.4;
  perturb.data_error_rate = 0.02;
  perturb.seed = 7;
  ExperimentData data = PrepareExperiment(gen, perturb);

  const int thread_counts[] = {1, 2, 4, 8};

  std::printf("--- violation detection (%d tuples, %zu conflict edges) ---\n",
              data.encoded().NumTuples(),
              BuildConflictGraph(data.encoded(), data.dirty.fds).num_edges());
  std::printf("%8s %12s %10s\n", "threads", "time(s)", "speedup");
  double serial_seconds = 0.0;
  uint64_t serial_checksum = 0;
  for (int t : thread_counts) {
    std::unique_ptr<exec::ThreadPool> pool = exec::MakePool({t});
    double seconds = 0.0;
    uint64_t checksum =
        DetectViolations(data.encoded(), data.dirty.fds, pool.get(), &seconds);
    if (t == 1) {
      serial_seconds = seconds;
      serial_checksum = checksum;
    } else if (checksum != serial_checksum) {
      std::printf("DETERMINISM VIOLATION at %d threads "
                  "(checksum %" PRIu64 " vs %" PRIu64 ")\n",
                  t, checksum, serial_checksum);
      return 1;
    }
    std::printf("%8d %12.3f %9.2fx\n", t, seconds,
                seconds > 0 ? serial_seconds / seconds : 0.0);
  }

  std::vector<int64_t> taus = exec::TauGridFromRelative(
      {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
      data.root_delta_p);
  // Warm the context's shared memo caches (weight function) so the timed
  // thread-count comparison measures scheduling, not first-run memoization.
  exec::Sweep(data.context(), data.encoded(), {1}).RunSearches(taus);
  std::printf("\n--- tau-sweep (%zu searches, shared context) ---\n",
              taus.size());
  std::printf("%8s %12s %10s\n", "threads", "time(s)", "speedup");
  double serial_sweep = 0.0;
  int64_t serial_visited = -1;
  for (int t : thread_counts) {
    exec::Sweep sweep(data.context(), data.encoded(), {t});
    Timer timer;
    std::vector<ModifyFdsResult> results = sweep.RunSearches(taus);
    double seconds = timer.ElapsedSeconds();
    int64_t visited = 0;
    for (const ModifyFdsResult& r : results) visited += r.stats.states_visited;
    if (t == 1) {
      serial_sweep = seconds;
      serial_visited = visited;
    } else if (visited != serial_visited) {
      std::printf("DETERMINISM VIOLATION at %d threads "
                  "(%lld visited vs %lld)\n",
                  t, static_cast<long long>(visited),
                  static_cast<long long>(serial_visited));
      return 1;
    }
    std::printf("%8d %12.3f %9.2fx\n", t, seconds,
                seconds > 0 ? serial_sweep / seconds : 0.0);
  }

  std::printf("\nExpected shape: near-linear violation-detection speedup up "
              "to the physical core count (>= 2x at 4 threads on a 4-core "
              "machine); sweep speedup bounded by its longest single "
              "search.\n");
  return 0;
}
