// Google-benchmark micro suite for the hot kernels: encoding, conflict
// graph construction (serial and sharded), vertex cover, difference-set
// indexing, the δP evaluation pipeline (violation table + memoized
// covers), heuristic evaluation, the data-repair pass, and the τ-sweep
// scheduler.
//
// Besides the console table, the run writes machine-readable results to
// BENCH_micro_core.json (google-benchmark's JSON schema; per-benchmark
// timings plus the cover-memo effectiveness counters below), so the perf
// trajectory is tracked across PRs. CI's Release bench-smoke step asserts
// on the counters.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/eval/experiment.h"
#include "src/exec/sweep.h"

using namespace retrust;

namespace {

ExperimentData& SharedData(int n) {
  static std::map<int, ExperimentData> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    CensusConfig gen;
    gen.num_tuples = n;
    gen.num_attrs = 14;
    gen.planted_lhs_sizes = {5};
    gen.seed = 42;
    PerturbOptions perturb;
    perturb.fd_error_rate = 0.4;
    perturb.data_error_rate = 0.02;
    perturb.seed = 7;
    it = cache.emplace(n, PrepareExperiment(gen, perturb)).first;
  }
  return it->second;
}

void BM_Encode(benchmark::State& state) {
  ExperimentData& d = SharedData(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    EncodedInstance enc(d.dirty_instance());
    benchmark::DoNotOptimize(enc.NumTuples());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Encode)->Arg(1000)->Arg(4000);

void BM_BuildConflictGraph(benchmark::State& state) {
  ExperimentData& d = SharedData(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ConflictGraph cg = BuildConflictGraph(d.encoded(), d.dirty.fds);
    benchmark::DoNotOptimize(cg.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildConflictGraph)->Arg(1000)->Arg(4000);

void BM_GreedyVertexCover(benchmark::State& state) {
  ExperimentData& d = SharedData(static_cast<int>(state.range(0)));
  ConflictGraph cg = BuildConflictGraph(d.encoded(), d.dirty.fds);
  for (auto _ : state) {
    auto cover = GreedyVertexCover(cg.graph);
    benchmark::DoNotOptimize(cover.size());
  }
}
BENCHMARK(BM_GreedyVertexCover)->Arg(1000)->Arg(4000);

void BM_DiffSetIndex(benchmark::State& state) {
  ExperimentData& d = SharedData(static_cast<int>(state.range(0)));
  ConflictGraph cg = BuildConflictGraph(d.encoded(), d.dirty.fds);
  for (auto _ : state) {
    DifferenceSetIndex idx(d.encoded(), cg);
    benchmark::DoNotOptimize(idx.size());
  }
}
BENCHMARK(BM_DiffSetIndex)->Arg(1000)->Arg(4000);

// Sharded violation detection (conflict graph + index) vs thread count;
// threads=1 exercises the serial fast path of the same entry points.
void BM_ViolationDetectionSharded(benchmark::State& state) {
  ExperimentData& d = SharedData(4000);
  std::unique_ptr<exec::ThreadPool> pool =
      exec::MakePool({static_cast<int>(state.range(0))});
  for (auto _ : state) {
    ConflictGraph cg = BuildConflictGraph(d.encoded(), d.dirty.fds,
                                          pool.get());
    DifferenceSetIndex idx(d.encoded(), cg, pool.get());
    benchmark::DoNotOptimize(idx.size());
  }
}
BENCHMARK(BM_ViolationDetectionSharded)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// τ-sweep through the facade: 8 grid points per Session::SearchMany batch,
// at 1..8 sweep threads (a fresh Session per thread count so the pool size
// matches, sharing the warm dataset).
void BM_TauSweep(benchmark::State& state) {
  ExperimentData& d = SharedData(1000);
  SessionOptions sopts;
  sopts.exec.num_threads = static_cast<int>(state.range(0));
  Result<Session> session =
      Session::Open(d.dirty_instance(), d.dirty.fds, sopts);
  if (!session.ok()) {
    state.SkipWithError(session.status().ToString().c_str());
    return;
  }
  std::vector<RepairRequest> batch;
  for (double tr : {0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.75, 0.9}) {
    batch.push_back(RepairRequest::AtRelative(tr));
  }
  for (auto _ : state) {
    auto results = session->SearchMany(batch);
    benchmark::DoNotOptimize(results.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_TauSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_GcHeuristicRoot(benchmark::State& state) {
  ExperimentData& d = SharedData(4000);
  SearchState root = SearchState::Root(d.dirty.fds.size());
  int64_t tau = TauFromRelative(0.2, d.root_delta_p);
  SearchStats stats;
  for (auto _ : state) {
    double gc = d.context().heuristic().Compute(root, tau, &stats);
    benchmark::DoNotOptimize(gc);
  }
}
BENCHMARK(BM_GcHeuristicRoot);

void BM_RepairData(benchmark::State& state) {
  ExperimentData& d = SharedData(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Rng rng(1);
    DataRepairResult r = RepairData(d.encoded(), d.dirty.fds, &rng);
    benchmark::DoNotOptimize(r.changed_cells.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RepairData)->Arg(1000)->Arg(4000);

void BM_DistinctCountWeight(benchmark::State& state) {
  ExperimentData& d = SharedData(4000);
  AttrSet y{0, 3, 7};
  for (auto _ : state) {
    DistinctCountWeight w(d.encoded());  // cold cache each iteration
    benchmark::DoNotOptimize(w.Weight(y));
  }
}
BENCHMARK(BM_DistinctCountWeight);

// Attaches the δP-pipeline effectiveness counters of one search's stats:
// the legacy path recomputed a cover for every evaluation
// (covers_legacy = vc_computations + vc_memo_hits of the new path), so
// cover_reuse_x = covers_legacy / covers_computed is the recomputation
// reduction delivered by the memoized evaluation layer.
void SetCoverMemoCounters(benchmark::State& state, const SearchStats& stats) {
  double computed = static_cast<double>(stats.vc_computations);
  double legacy = computed + static_cast<double>(stats.vc_memo_hits);
  state.counters["covers_computed"] = computed;
  state.counters["covers_legacy"] = legacy;
  state.counters["cover_reuse_x"] = computed > 0 ? legacy / computed : 0.0;
  state.counters["memo_hit_rate"] =
      legacy > 0 ? static_cast<double>(stats.vc_memo_hits) / legacy : 0.0;
}

void BM_ModifyFdsAStar(benchmark::State& state) {
  ExperimentData& d = SharedData(2000);
  int64_t tau = TauFromRelative(0.25, d.root_delta_p);
  // Cold-context run for the memo counters: one search probe on a fresh
  // session (fresh evaluation layer), no cross-iteration warmth. Computed
  // once — the framework re-invokes this function while calibrating, and
  // the counters are deterministic.
  static const SearchStats cold_stats = [&] {
    Result<Session> cold = Session::Open(d.dirty_instance(), d.dirty.fds);
    if (!cold.ok()) return SearchStats{};
    Result<SearchProbe> probe = cold->Search(RepairRequest::At(tau));
    return probe.ok() ? probe->result.stats : SearchStats{};
  }();
  SetCoverMemoCounters(state, cold_stats);
  for (auto _ : state) {
    Result<SearchProbe> probe = d.session->Search(RepairRequest::At(tau));
    if (!probe.ok()) {
      state.SkipWithError(probe.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(probe->result.stats.states_visited);
  }
}
BENCHMARK(BM_ModifyFdsAStar);

// One full τ-sweep on a COLD session per iteration: the cross-job memo
// sharing (one ViolationTable + cover memo for all grid points of a
// Session::SearchMany batch) is part of what is being measured.
void BM_TauSweepColdContext(benchmark::State& state) {
  ExperimentData& d = SharedData(1000);
  std::vector<RepairRequest> batch;
  for (double tr : {0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.75, 0.9}) {
    batch.push_back(RepairRequest::AtRelative(tr));
  }
  SessionOptions sopts;
  sopts.exec.num_threads = static_cast<int>(state.range(0));
  SearchStats total;
  for (auto _ : state) {
    state.PauseTiming();
    Result<Session> session =
        Session::Open(d.dirty_instance(), d.dirty.fds, sopts);
    if (!session.ok()) {
      state.SkipWithError(session.status().ToString().c_str());
      return;
    }
    state.ResumeTiming();
    std::vector<Result<SearchProbe>> results = session->SearchMany(batch);
    benchmark::DoNotOptimize(results.size());
    state.PauseTiming();
    for (const Result<SearchProbe>& r : results) {
      if (r.ok()) total.Accumulate(r->result.stats);
    }
    state.ResumeTiming();
  }
  SetCoverMemoCounters(state, total);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_TauSweepColdContext)->Arg(1)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  // Console for humans, BENCH_micro_core.json for the perf trajectory:
  // default --benchmark_out to the canonical path unless the caller set
  // their own.
  std::string out_flag =
      "--benchmark_out=" + retrust::bench::BenchJsonPath("micro_core");
  std::string fmt_flag = "--benchmark_out_format=json";
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (!has_out) {
    std::printf("wrote %s\n",
                retrust::bench::BenchJsonPath("micro_core").c_str());
  }
  benchmark::Shutdown();
  return 0;
}
