// Ablation: how the gc heuristic's difference-set budget (|Ds|) and the
// strict-vs-lenient unresolved-group check affect A* effort. DESIGN.md
// calls these the two tuning decisions of Algorithm 3; the paper fixes
// them implicitly ("Ds is selected such that ... large numbers of edges
// are favored", strict '<' in line 8).

#include "bench/bench_common.h"
#include "src/eval/experiment.h"
#include "src/util/timer.h"

using namespace retrust;

int main() {
  bench::Banner("Ablation", "gc heuristic: diff-set budget and leave-check");

  CensusConfig gen;
  gen.num_tuples = bench::ScaledN(2000);
  gen.num_attrs = 16;
  gen.planted_lhs_sizes = {6};
  gen.seed = 42;
  PerturbOptions perturb;
  perturb.fd_error_rate = 0.5;
  perturb.data_error_rate = 0.02;
  perturb.seed = 7;

  std::printf("%12s %8s %14s %12s %12s %10s\n", "max_diffsets", "strict",
              "time(s)", "states", "gc-calls", "distc");
  for (int budget : {1, 2, 4, 8}) {
    for (bool strict : {true, false}) {
      HeuristicOptions hopts;
      hopts.max_diffsets = budget;
      hopts.strict_leave_check = strict;
      ExperimentData data = PrepareExperiment(
          gen, perturb, WeightKind::kDistinctCount, hopts);
      int64_t tau = TauFromRelative(0.2, data.root_delta_p);
      ModifyFdsOptions opts;
      opts.heuristic = hopts;
      Timer timer;
      ModifyFdsResult r = ModifyFds(data.context(), tau, opts);
      std::printf("%12d %8s %14.3f %12lld %12lld %10.0f\n", budget,
                  strict ? "yes" : "no", timer.ElapsedSeconds(),
                  static_cast<long long>(r.stats.states_visited),
                  static_cast<long long>(r.stats.heuristic_calls),
                  r.repair.has_value() ? r.repair->distc : -1.0);
    }
  }
  std::printf("\nLarger budgets tighten gc (fewer states) at higher per-call "
              "cost; all settings must agree on distc (optimality is "
              "budget-independent).\n");
  return 0;
}
