// Incremental update engine: apply-delta vs full rebuild.
//
// Simulates the append-heavy service workload the ROADMAP targets: a
// session is open over n tuples, Δ new rows arrive, and the service must
// answer the next repair. Before this engine that meant a full rebuild —
// re-encode the instance, re-enumerate every violating pair, re-derive
// every difference set, cold caches. With Session::Apply the index stack
// is patched by comparing only the Δ dirty tuples against the relation
// (O(Δ·n)) and everything outside the blast radius stays warm.
//
// Prints a table over several Δ and writes BENCH_incremental.json with the
// headline row (n = 5000·scale, Δ = 50) that CI's Release smoke step
// asserts: speedup_x >= 5.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/api/session.h"
#include "src/eval/generator.h"
#include "src/eval/perturb.h"
#include "src/util/timer.h"

using namespace retrust;

namespace {

struct Row {
  int delta_rows = 0;
  double apply_seconds = 0.0;
  double rebuild_seconds = 0.0;
  ApplyStats stats;

  double speedup() const {
    return apply_seconds > 0 ? rebuild_seconds / apply_seconds : 0.0;
  }
};

/// Best-of-`reps` timing of one append of `delta.inserts` onto a fresh
/// session over `base`, against a from-scratch Session::Open over the
/// grown instance (what the service had to do before Session::Apply).
Row Measure(const Instance& base, const Instance& grown, const FDSet& sigma,
            const DeltaBatch& delta, int reps) {
  Row row;
  row.delta_rows = static_cast<int>(delta.inserts.size());
  row.apply_seconds = 1e100;
  row.rebuild_seconds = 1e100;
  for (int r = 0; r < reps; ++r) {
    Result<Session> session = Session::Open(base, sigma);
    if (!session.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   session.status().ToString().c_str());
      std::exit(1);
    }
    // Warm the context like a live service: one answered request.
    (void)session->Repair(RepairRequest::AtRelative(1.0));

    Timer apply_timer;
    Result<ApplyStats> stats = session->Apply(delta);
    double apply = apply_timer.ElapsedSeconds();
    if (!stats.ok()) {
      std::fprintf(stderr, "apply failed: %s\n",
                   stats.status().ToString().c_str());
      std::exit(1);
    }
    row.apply_seconds = std::min(row.apply_seconds, apply);
    row.stats = *stats;

    Timer rebuild_timer;
    Result<Session> rebuilt = Session::Open(grown, sigma);
    double rebuild = rebuild_timer.ElapsedSeconds();
    if (!rebuilt.ok() ||
        rebuilt->RootDeltaP() != session->RootDeltaP()) {
      std::fprintf(stderr, "rebuild mismatch: incremental and from-scratch "
                           "sessions disagree\n");
      std::exit(1);
    }
    row.rebuild_seconds = std::min(row.rebuild_seconds, rebuild);
  }
  return row;
}

}  // namespace

int main() {
  const int n = bench::ScaledN(5000);
  const int headline_delta = 50;
  const std::vector<int> deltas = {10, headline_delta, 200};
  const int max_delta = *std::max_element(deltas.begin(), deltas.end());

  bench::Banner("incremental", "Session::Apply vs full rebuild");

  // One generated+perturbed dataset; the final max_delta rows are held
  // back as the arriving traffic.
  CensusConfig gen;
  gen.num_tuples = n + max_delta;
  gen.num_attrs = 8;
  gen.planted_lhs_sizes = {2, 2};
  gen.seed = 42;
  GeneratedData clean = GenerateCensusLike(gen);
  PerturbOptions perturb;
  perturb.data_error_rate = 0.01;
  perturb.fd_error_rate = 0.5;
  PerturbedData dirty = Perturb(clean.instance, clean.planted_fds, perturb);

  Instance base(dirty.data.schema());
  for (TupleId t = 0; t < n; ++t) base.AddTuple(dirty.data.row(t));

  std::printf("n = %d tuples, %d attrs, %d FDs\n\n", n,
              dirty.data.NumAttrs(), dirty.fds.size());
  std::printf("%8s %14s %14s %10s %12s %12s\n", "delta", "apply (ms)",
              "rebuild (ms)", "speedup", "reuse", "covers kept");

  Row headline;
  for (int delta_rows : deltas) {
    DeltaBatch delta;
    for (int i = 0; i < delta_rows; ++i) {
      delta.Insert(dirty.data.row(n + i));
    }
    Instance grown = base;
    for (const Tuple& t : delta.inserts) grown.AddTuple(t);

    Row row = Measure(base, grown, dirty.fds, delta, /*reps=*/5);
    std::printf("%8d %14.2f %14.2f %9.1fx %11.0f%% %12zu\n", row.delta_rows,
                row.apply_seconds * 1e3, row.rebuild_seconds * 1e3,
                row.speedup(), row.stats.reuse_ratio() * 100,
                row.stats.covers_kept);
    if (delta_rows == headline_delta) headline = row;
  }

  FILE* json = bench::OpenBenchJson("incremental");
  if (json != nullptr) {
    std::fprintf(
        json,
        "{\n"
        "  \"n\": %d,\n"
        "  \"delta\": %d,\n"
        "  \"apply_seconds\": %.6f,\n"
        "  \"rebuild_seconds\": %.6f,\n"
        "  \"speedup_x\": %.2f,\n"
        "  \"reuse_ratio\": %.4f,\n"
        "  \"groups_preserved\": %d,\n"
        "  \"groups_changed\": %d,\n"
        "  \"edges_added\": %lld,\n"
        "  \"covers_kept\": %zu,\n"
        "  \"covers_dropped\": %zu,\n"
        "  \"contexts_patched\": %d\n"
        "}\n",
        n, headline.delta_rows, headline.apply_seconds,
        headline.rebuild_seconds, headline.speedup(),
        headline.stats.reuse_ratio(), headline.stats.groups_preserved,
        headline.stats.groups_changed,
        static_cast<long long>(headline.stats.edges_added),
        headline.stats.covers_kept, headline.stats.covers_dropped,
        headline.stats.contexts_patched);
    std::fclose(json);
  }
  return 0;
}
