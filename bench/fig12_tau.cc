// Figure 12: effect of the relative trust threshold τr on (a) running time
// and (b) visited states, for A* vs best-first. One FD with a wide LHS,
// heavily perturbed, as in the paper (appended attributes range from many
// at small τr down to one near τr = 100%; below some τr no repair exists).
//
// Runs entirely through the public facade: per-mode grid points are
// Session::Search probes, the concurrent grid is one Session::SearchMany
// batch on the session's sweep pool.

#include "bench/bench_common.h"
#include "src/eval/experiment.h"
#include "src/util/timer.h"

using namespace retrust;

int main() {
  bench::Banner("Figure 12", "time and visited states vs tau_r, 1 FD");

  CensusConfig gen;
  gen.num_tuples = bench::ScaledN(1500);
  gen.num_attrs = 16;
  gen.planted_lhs_sizes = {6};
  gen.seed = 42;
  PerturbOptions perturb;
  perturb.fd_error_rate = 0.5;
  perturb.data_error_rate = 0.02;
  perturb.seed = 7;
  // The batched grid fans out on RETRUST_THREADS (default = hardware).
  exec::Options eopts;
  eopts.num_threads = 0;
  if (const char* env = std::getenv("RETRUST_THREADS")) {
    eopts.num_threads = std::atoi(env);
  }
  Timer prepare_timer;
  ExperimentData data = PrepareExperiment(gen, perturb,
                                          WeightKind::kDistinctCount,
                                          HeuristicOptions{}, eopts);
  Session& session = *data.session;
  double prepare_seconds = prepare_timer.ElapsedSeconds();
  const int64_t kBestFirstCap = 60000;
  const std::vector<double> kTauGrid = {0.05, 0.10, 0.17, 0.25,
                                        0.40, 0.55, 0.75, 0.99};

  struct GridRow {
    double tau_r = 0.0;
    int64_t tau = 0;
    double seconds[2] = {0.0, 0.0};  // A*, best-first
    int64_t states[2] = {0, 0};
    int appended = -1;  // -1 = no repair
  };
  std::vector<GridRow> rows;

  std::printf("root deltaP = %lld\n\n",
              static_cast<long long>(data.root_delta_p));
  std::printf("%8s %8s %14s %14s %14s %14s\n", "tau_r", "appended",
              "A*-time(s)", "BF-time(s)", "A*-states", "BF-states");
  Timer grid_timer;
  for (double tr : kTauGrid) {
    GridRow row;
    row.tau_r = tr;
    const SearchMode modes[] = {SearchMode::kAStar, SearchMode::kBestFirst};
    for (int k = 0; k < 2; ++k) {
      RepairRequest req = RepairRequest::AtRelative(tr);
      req.mode = modes[k];
      req.budget = (modes[k] == SearchMode::kBestFirst) ? kBestFirstCap : 0;
      Timer timer;
      Result<SearchProbe> probe = session.Search(req);
      if (!probe.ok()) {
        std::fprintf(stderr, "probe failed: %s\n",
                     probe.status().ToString().c_str());
        return 1;
      }
      row.tau = probe->tau;
      row.seconds[k] = timer.ElapsedSeconds();
      row.states[k] = probe->result.stats.states_visited;
      if (k == 0 && probe->result.repair.has_value()) {
        row.appended = probe->result.repair->state.TotalAppended();
      }
    }
    if (row.appended < 0) {
      std::printf("%7.0f%% %8s %14.3f %14.3f %14lld %14lld   (no repair)\n",
                  tr * 100, "-", row.seconds[0], row.seconds[1],
                  static_cast<long long>(row.states[0]),
                  static_cast<long long>(row.states[1]));
    } else {
      std::printf("%7.0f%% %8d %14.3f %14.3f %14lld %14lld\n", tr * 100,
                  row.appended, row.seconds[0], row.seconds[1],
                  static_cast<long long>(row.states[0]),
                  static_cast<long long>(row.states[1]));
    }
    rows.push_back(row);
  }
  double grid_seconds = grid_timer.ElapsedSeconds();
  std::printf("\nExpected shape: A* far cheaper than best-first at small "
              "tau_r; the gap narrows as tau_r grows (goal states get "
              "shallow for both).\n");

  // The same τr grid as one batched request: all grid points run
  // concurrently on the session's sweep pool and share one violation
  // table + cover memo.
  std::vector<RepairRequest> batch;
  for (double tr : kTauGrid) batch.push_back(RepairRequest::AtRelative(tr));
  Timer sweep_timer;
  std::vector<Result<SearchProbe>> swept = session.SearchMany(batch);
  double sweep_seconds = sweep_timer.ElapsedSeconds();
  double serial_seconds = 0.0;
  for (const Result<SearchProbe>& probe : swept) {
    if (probe.ok()) serial_seconds += probe->result.stats.seconds;
  }
  std::printf("\nbatched-request API: %zu grid points in %.3fs wall at %d "
              "threads (sum of per-search times: %.3fs)\n",
              swept.size(), sweep_seconds, eopts.ResolvedThreads(),
              serial_seconds);

  // Machine-readable trajectory: per-phase timings and the δP pipeline's
  // cover-memo effectiveness over the whole run.
  CoverMemo::Stats memo = session.context().evaluator().memo().stats();
  if (FILE* f = bench::OpenBenchJson("fig12_tau")) {
    std::fprintf(f, "{\n  \"bench\": \"fig12_tau\",\n");
    std::fprintf(f, "  \"scale\": %.3f,\n", bench::Scale());
    std::fprintf(f, "  \"root_delta_p\": %lld,\n",
                 static_cast<long long>(data.root_delta_p));
    std::fprintf(f,
                 "  \"phases\": {\"prepare_seconds\": %.6f, "
                 "\"grid_seconds\": %.6f, \"sweep_seconds\": %.6f},\n",
                 prepare_seconds, grid_seconds, sweep_seconds);
    std::fprintf(f, "  \"grid\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const GridRow& r = rows[i];
      std::fprintf(f,
                   "    {\"tau_r\": %.2f, \"tau\": %lld, \"appended\": %d, "
                   "\"astar_seconds\": %.6f, \"bf_seconds\": %.6f, "
                   "\"astar_states\": %lld, \"bf_states\": %lld}%s\n",
                   r.tau_r, static_cast<long long>(r.tau), r.appended,
                   r.seconds[0], r.seconds[1],
                   static_cast<long long>(r.states[0]),
                   static_cast<long long>(r.states[1]),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"sweep\": {\"threads\": %d, \"wall_seconds\": %.6f, "
                 "\"sum_job_seconds\": %.6f},\n",
                 eopts.ResolvedThreads(), sweep_seconds, serial_seconds);
    std::fprintf(f,
                 "  \"cover_memo\": {\"hits\": %lld, \"misses\": %lld, "
                 "\"hit_rate\": %.6f, \"groups_scanned\": %lld, "
                 "\"groups_resumed\": %lld}\n}\n",
                 static_cast<long long>(memo.hits),
                 static_cast<long long>(memo.misses), memo.HitRate(),
                 static_cast<long long>(memo.groups_scanned),
                 static_cast<long long>(memo.groups_resumed));
    std::fclose(f);
  }
  return 0;
}
