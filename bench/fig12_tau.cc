// Figure 12: effect of the relative trust threshold τr on (a) running time
// and (b) visited states, for A* vs best-first. One FD with a wide LHS,
// heavily perturbed, as in the paper (appended attributes range from many
// at small τr down to one near τr = 100%; below some τr no repair exists).

#include "bench/bench_common.h"
#include "src/eval/experiment.h"
#include "src/exec/sweep.h"
#include "src/util/timer.h"

using namespace retrust;

int main() {
  bench::Banner("Figure 12", "time and visited states vs tau_r, 1 FD");

  CensusConfig gen;
  gen.num_tuples = bench::ScaledN(1500);
  gen.num_attrs = 16;
  gen.planted_lhs_sizes = {6};
  gen.seed = 42;
  PerturbOptions perturb;
  perturb.fd_error_rate = 0.5;
  perturb.data_error_rate = 0.02;
  perturb.seed = 7;
  ExperimentData data = PrepareExperiment(gen, perturb);
  const int64_t kBestFirstCap = 60000;

  std::printf("root deltaP = %lld\n\n",
              static_cast<long long>(data.root_delta_p));
  std::printf("%8s %8s %14s %14s %14s %14s\n", "tau_r", "appended",
              "A*-time(s)", "BF-time(s)", "A*-states", "BF-states");
  for (double tr : {0.05, 0.10, 0.17, 0.25, 0.40, 0.55, 0.75, 0.99}) {
    int64_t tau = TauFromRelative(tr, data.root_delta_p);
    double times[2];
    int64_t states[2];
    int appended = -1;
    bool found = false;
    const SearchMode modes[] = {SearchMode::kAStar, SearchMode::kBestFirst};
    for (int k = 0; k < 2; ++k) {
      ModifyFdsOptions opts;
      opts.mode = modes[k];
      opts.max_visited =
          (modes[k] == SearchMode::kBestFirst) ? kBestFirstCap : 0;
      Timer timer;
      ModifyFdsResult r = ModifyFds(*data.context, tau, opts);
      times[k] = timer.ElapsedSeconds();
      states[k] = r.stats.states_visited;
      if (k == 0 && r.repair.has_value()) {
        found = true;
        appended = r.repair->state.TotalAppended();
      }
    }
    if (!found) {
      std::printf("%7.0f%% %8s %14.3f %14.3f %14lld %14lld   (no repair)\n",
                  tr * 100, "-", times[0], times[1],
                  static_cast<long long>(states[0]),
                  static_cast<long long>(states[1]));
    } else {
      std::printf("%7.0f%% %8d %14.3f %14.3f %14lld %14lld\n", tr * 100,
                  appended, times[0], times[1],
                  static_cast<long long>(states[0]),
                  static_cast<long long>(states[1]));
    }
  }
  std::printf("\nExpected shape: A* far cheaper than best-first at small "
              "tau_r; the gap narrows as tau_r grows (goal states get "
              "shallow for both).\n");

  // The same τr grid as one exec::Sweep over the shared context: all grid
  // points run concurrently (RETRUST_THREADS, default = hardware).
  exec::Options eopts;
  eopts.num_threads = 0;
  if (const char* env = std::getenv("RETRUST_THREADS")) {
    eopts.num_threads = std::atoi(env);
  }
  std::vector<int64_t> taus = exec::TauGridFromRelative(
      {0.05, 0.10, 0.17, 0.25, 0.40, 0.55, 0.75, 0.99}, data.root_delta_p);
  exec::Sweep sweep(*data.context, *data.encoded, eopts);
  Timer sweep_timer;
  std::vector<ModifyFdsResult> swept = sweep.RunSearches(taus);
  double sweep_seconds = sweep_timer.ElapsedSeconds();
  double serial_seconds = 0.0;
  for (const ModifyFdsResult& r : swept) serial_seconds += r.stats.seconds;
  std::printf("\ntau-sweep API: %zu grid points in %.3fs wall at %d threads "
              "(sum of per-search times: %.3fs)\n",
              swept.size(), sweep_seconds, eopts.ResolvedThreads(),
              serial_seconds);
  return 0;
}
