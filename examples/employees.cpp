// The paper's Example 1 (Figure 1): an employee relation collected from
// several sources, with the asserted FD
//     Surname, GivenName -> Income.
// The FD is right for Western names but wrong for the Chinese names in the
// data (t6/t9, t8/t10 are different people), while t3/t5 carry a genuine
// data error. Sweeping the relative trust exposes exactly the paper's
// spectrum of fixes: extend the FD by BirthDate (and Phone), or edit
// incomes, or a mix.
//
//   build/examples/example_employees

#include <cstdio>

#include "src/api/session.h"

using namespace retrust;

namespace {

Instance EmployeeInstance() {
  Schema schema(std::vector<Attribute>{
      {"GivenName", AttrType::kString},
      {"Surname", AttrType::kString},
      {"BirthDate", AttrType::kString},
      {"Gender", AttrType::kString},
      {"Phone", AttrType::kString},
      {"Income", AttrType::kString}});
  Instance inst(schema);
  auto add = [&](const char* g, const char* s, const char* b, const char* ge,
                 const char* p, const char* i) {
    inst.AddTuple({Value(g), Value(s), Value(b), Value(ge), Value(p),
                   Value(i)});
  };
  add("Jack", "White", "5 Jan 1980", "Male", "923-234-4532", "60k");
  add("Sam", "McCarthy", "19 Jul 1945", "Male", "989-321-4232", "92k");
  add("Danielle", "Blake", "9 Dec 1970", "Female", "817-213-1211", "120k");
  add("Matthew", "Webb", "23 Aug 1985", "Male", "246-481-0992", "87k");
  add("Danielle", "Blake", "9 Dec 1970", "Female", "817-988-9211", "100k");
  add("Hong", "Li", "27 Oct 1972", "Female", "591-977-1244", "90k");
  add("Jian", "Zhang", "14 Apr 1990", "Male", "912-143-4981", "55k");
  add("Ning", "Wu", "3 Nov 1982", "Male", "313-134-9241", "90k");
  add("Hong", "Li", "8 Mar 1979", "Female", "498-214-5822", "84k");
  add("Ning", "Wu", "8 Nov 1982", "Male", "323-456-3452", "95k");
  return inst;
}

}  // namespace

int main() {
  Instance inst = EmployeeInstance();
  std::printf("Employees (Figure 1):\n%s\n", inst.ToTable().c_str());

  SessionOptions opts;
  opts.weights = WeightModel::kCardinality;  // count appended attributes
  Result<Session> session = Session::Open(
      std::move(inst), {"Surname,GivenName->Income"}, opts);
  if (!session.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  const Schema& schema = session->schema();
  std::printf("Asserted FD: %s\n\n",
              session->fds().ToString(schema).c_str());

  int64_t root = session->RootDeltaP();
  std::printf("deltaP(Sigma, I) = %lld (tau_r = 100%%)\n\n",
              static_cast<long long>(root));

  // The full relative-trust spectrum in one search (Algorithm 6).
  Result<MultiRepairResult> multi = session->EnumerateRepairs(0, root);
  if (!multi.ok()) {
    std::fprintf(stderr, "enumerate failed: %s\n",
                 multi.status().ToString().c_str());
    return 1;
  }
  std::printf("Distinct minimal FD repairs across tau in [0, %lld]:\n",
              static_cast<long long>(root));
  for (const RangedFdRepair& r : multi->repairs) {
    std::printf("  tau in [%lld, %lld]: Sigma' = %s (distc = %.0f)\n",
                static_cast<long long>(r.tau_lo),
                static_cast<long long>(r.tau_hi),
                r.repair.sigma_prime.ToString(schema).c_str(),
                r.repair.distc);
  }

  // Materialize the two extremes plus a middle point — one batched call,
  // fanned out on the session's sweep pool over the shared context.
  std::vector<RepairRequest> requests;
  for (int64_t tau : {int64_t{0}, root / 2, root}) {
    requests.push_back(RepairRequest::At(tau));
  }
  std::vector<Result<RepairResponse>> responses =
      session->RepairMany(requests);
  for (const Result<RepairResponse>& response : responses) {
    if (!response.ok()) {
      std::printf("\n%s\n", response.status().ToString().c_str());
      continue;
    }
    const Repair& repair = response->repair;
    std::printf("\n--- tau = %lld ---\n",
                static_cast<long long>(response->tau));
    std::printf("Sigma' = %s\n", repair.sigma_prime.ToString(schema).c_str());
    std::printf("cells changed: %zu\n", repair.changed_cells.size());
    for (const CellRef& c : repair.changed_cells) {
      std::printf("  t%d[%s]: %s -> %s\n", c.tuple + 1,
                  schema.name(c.attr).c_str(),
                  session->instance().At(c.tuple, c.attr).ToString().c_str(),
                  repair.data.DecodeCell(c.tuple, c.attr)
                      .ToString(schema.name(c.attr))
                      .c_str());
    }
  }
  return 0;
}
