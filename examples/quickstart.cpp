// Quickstart: repair a small inconsistent table under an FD at different
// relative-trust levels.
//
//   build/examples/example_quickstart
//
// The table violates City -> Zip. With high trust in the data (tau = 0) the
// FD is relaxed; with high trust in the FD (large tau) cells are repaired.

#include <cstdio>

#include "src/repair/repair_driver.h"

using namespace retrust;

int main() {
  // 1. Describe the relation and the data.
  Schema schema(std::vector<Attribute>{{"Name", AttrType::kString},
                                       {"City", AttrType::kString},
                                       {"Zip", AttrType::kString}});
  Instance inst(schema);
  inst.AddTuple({Value("Alice"), Value("Springfield"), Value("11111")});
  inst.AddTuple({Value("Bob"), Value("Springfield"), Value("11111")});
  inst.AddTuple({Value("Carol"), Value("Springfield"), Value("22222")});
  inst.AddTuple({Value("Dave"), Value("Shelbyville"), Value("33333")});

  // 2. State the intended semantics.
  FDSet sigma = FDSet::Parse({"City->Zip"}, schema);

  std::printf("Input (violates %s):\n%s\n",
              sigma.ToString(schema).c_str(), inst.ToTable().c_str());

  // 3. Repair at several trust levels. tau bounds the number of cell
  //    changes; tau = 0 trusts the data completely.
  EncodedInstance encoded(inst);
  DistinctCountWeight weights(encoded);
  for (int64_t tau : {int64_t{0}, int64_t{2}}) {
    auto repair = RepairDataAndFds(sigma, encoded, tau, weights);
    std::printf("--- tau = %lld ---\n", static_cast<long long>(tau));
    if (!repair.has_value()) {
      std::printf("no repair within %lld cell changes\n\n",
                  static_cast<long long>(tau));
      continue;
    }
    std::printf("Sigma' = %s   (distc = %.0f)\n",
                repair->sigma_prime.ToString(schema).c_str(), repair->distc);
    std::printf("changed cells: %zu\n%s\n", repair->changed_cells.size(),
                repair->data.Decode().ToTable().c_str());
  }
  return 0;
}
