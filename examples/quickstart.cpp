// Quickstart: repair a small inconsistent table under an FD at different
// relative-trust levels, through the public facade (retrust::Session).
//
//   build/examples/example_quickstart
//
// The table violates City -> Zip. With high trust in the data (tau = 0) the
// FD is relaxed; with high trust in the FD (large tau) cells are repaired.

#include <cstdio>

#include "src/api/session.h"

using namespace retrust;

int main() {
  // 1. Describe the relation and the data.
  Schema schema(std::vector<Attribute>{{"Name", AttrType::kString},
                                       {"City", AttrType::kString},
                                       {"Zip", AttrType::kString}});
  Instance inst(schema);
  inst.AddTuple({Value("Alice"), Value("Springfield"), Value("11111")});
  inst.AddTuple({Value("Bob"), Value("Springfield"), Value("11111")});
  inst.AddTuple({Value("Carol"), Value("Springfield"), Value("22222")});
  inst.AddTuple({Value("Dave"), Value("Shelbyville"), Value("33333")});

  std::printf("Input (violates City->Zip):\n%s\n", inst.ToTable().c_str());

  // 2. Open a session: the dataset plus the intended semantics. All
  //    failures come back as a Status — no exceptions to catch.
  Result<Session> session = Session::Open(std::move(inst), {"City->Zip"});
  if (!session.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }

  // 3. Repair at several trust levels. tau bounds the number of cell
  //    changes; tau = 0 trusts the data completely.
  for (int64_t tau : {int64_t{0}, int64_t{2}}) {
    Result<RepairResponse> response =
        session->Repair(RepairRequest::At(tau));
    std::printf("--- tau = %lld ---\n", static_cast<long long>(tau));
    if (!response.ok()) {
      std::printf("%s\n\n", response.status().ToString().c_str());
      continue;
    }
    const Repair& repair = response->repair;
    std::printf("Sigma' = %s   (distc = %.0f)\n",
                repair.sigma_prime.ToString(session->schema()).c_str(),
                repair.distc);
    std::printf("changed cells: %zu\n%s\n", repair.changed_cells.size(),
                repair.data.Decode().ToTable().c_str());
  }
  return 0;
}
