// FD discovery + repair round trip: discover the FDs that hold on a clean
// data set (as the paper's experimental setup does), perturb the data, and
// watch the repair restore consistency under the discovered FDs.
//
//   build/examples/example_discovery_clean

#include <cstdio>

#include "src/api/session.h"
#include "src/eval/generator.h"
#include "src/eval/perturb.h"
#include "src/fd/discovery.h"

using namespace retrust;

int main() {
  CensusConfig gen;
  gen.num_tuples = 800;
  gen.num_attrs = 8;
  gen.planted_lhs_sizes = {3};
  gen.seed = 5;
  GeneratedData data = GenerateCensusLike(gen);
  const Schema& schema = data.instance.schema();

  // Discover the minimal exact FDs with small LHSs (paper §8.1).
  EncodedInstance clean_enc(data.instance);
  DiscoveryOptions dopts;
  dopts.max_lhs = 3;
  FDSet discovered = DiscoverFDs(clean_enc, dopts);
  std::printf("planted FD  : %s\n",
              data.planted_fds.ToString(schema).c_str());
  std::printf("discovered  : %d minimal FDs with LHS <= %d\n",
              discovered.size(), dopts.max_lhs);
  bool found_planted = false;
  for (const FD& fd : discovered.fds()) {
    if (fd == data.planted_fds.fd(0)) found_planted = true;
  }
  std::printf("planted FD %s the discovered set\n",
              found_planted ? "is in" : "is implied by");

  // Perturb the data only, then repair under the planted FD.
  PerturbOptions popts;
  popts.data_error_rate = 0.03;
  popts.fd_error_rate = 0.0;
  PerturbedData dirty = Perturb(data.instance, data.planted_fds, popts);
  std::printf("\ninjected %zu erroneous cells\n",
              dirty.perturbed_cells.size());

  Result<Session> session = Session::Open(dirty.data, dirty.fds);
  if (!session.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  int64_t root = session->RootDeltaP();
  Result<RepairResponse> response =
      session->Repair(RepairRequest::At(root));
  if (!response.ok()) {
    std::printf("unexpected: %s\n", response.status().ToString().c_str());
    return 1;
  }
  const Repair& repair = response->repair;
  std::printf("repair at tau = %lld: Sigma' = %s, %zu cells changed\n",
              static_cast<long long>(root),
              repair.sigma_prime.ToString(schema).c_str(),
              repair.changed_cells.size());
  std::printf("repaired instance satisfies Sigma': %s\n",
              Satisfies(repair.data, repair.sigma_prime) ? "yes" : "no");
  return 0;
}
