// Explore the Pareto frontier of data-vs-FD repairs on a census-like
// workload: generate clean data with planted FDs, perturb both the cells
// and the FDs, then enumerate every distinct minimal FD repair across the
// whole trust range (Algorithm 6) and materialize + score each one — the
// materializations run concurrently through the exec::Sweep τ-sweep API.
//
//   build/examples/example_tradeoff_explorer

#include <cstdio>

#include "src/eval/experiment.h"
#include "src/exec/sweep.h"
#include "src/repair/multi_repair.h"

using namespace retrust;

int main() {
  CensusConfig gen;
  gen.num_tuples = 1500;
  gen.num_attrs = 12;
  gen.planted_lhs_sizes = {5};
  gen.seed = 11;

  PerturbOptions perturb;
  perturb.fd_error_rate = 0.4;   // 2 of 5 LHS attributes dropped
  perturb.data_error_rate = 0.02;
  perturb.seed = 23;

  ExperimentData data = PrepareExperiment(gen, perturb);
  const Schema& schema = data.dirty_instance.schema();

  std::printf("clean FDs : %s\n",
              data.clean.planted_fds.ToString(schema).c_str());
  std::printf("given FDs : %s (after removing %d LHS attrs)\n",
              data.dirty.fds.ToString(schema).c_str(),
              data.dirty.removed_lhs[0].Count());
  std::printf("injected cell errors: %zu\n",
              data.dirty.perturbed_cells.size());
  std::printf("deltaP(Sigma_d, I_d) = %lld\n\n",
              static_cast<long long>(data.root_delta_p));

  MultiRepairResult frontier =
      FindRepairsFds(*data.context, 0, data.root_delta_p);

  // Materialize every frontier point concurrently: one sweep job per
  // distinct FD repair, at the τ that discovered it (0 = hardware threads).
  std::vector<exec::SweepJob> jobs;
  jobs.reserve(frontier.repairs.size());
  for (const RangedFdRepair& r : frontier.repairs) {
    exec::SweepJob job;
    job.tau = r.tau_hi;
    jobs.push_back(job);
  }
  exec::Options eopts;
  eopts.num_threads = 0;
  exec::Sweep sweep(*data.context, *data.encoded, eopts);
  std::vector<exec::SweepOutcome> outcomes = sweep.RunRepairs(jobs);

  std::printf("%-42s %10s %10s %10s %10s\n", "Sigma'", "distc", "tau range",
              "cells", "combinedF");
  for (size_t i = 0; i < frontier.repairs.size(); ++i) {
    const RangedFdRepair& r = frontier.repairs[i];
    const std::optional<Repair>& repair = outcomes[i].repair;
    if (!repair.has_value()) continue;
    RepairQuality q = ScoreRepair(data, *repair);
    char range[32];
    std::snprintf(range, sizeof(range), "[%lld,%lld]",
                  static_cast<long long>(r.tau_lo),
                  static_cast<long long>(r.tau_hi));
    std::printf("%-42s %10.0f %10s %10zu %10.3f\n",
                r.repair.sigma_prime.ToString(schema).c_str(),
                r.repair.distc, range, repair->changed_cells.size(),
                q.CombinedF());
  }
  std::printf("\n(states visited by the range search: %lld)\n",
              static_cast<long long>(frontier.stats.states_visited));
  return 0;
}
