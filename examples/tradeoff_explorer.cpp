// Explore the Pareto frontier of data-vs-FD repairs on a census-like
// workload: generate clean data with planted FDs, perturb both the cells
// and the FDs, then enumerate every distinct minimal FD repair across the
// whole trust range (Algorithm 6) and materialize + score each one — the
// materializations run as one batched Session::RepairMany, fanned out on
// the session's sweep pool over the shared search context.
//
//   build/examples/example_tradeoff_explorer

#include <cstdio>

#include "src/eval/experiment.h"

using namespace retrust;

int main() {
  CensusConfig gen;
  gen.num_tuples = 1500;
  gen.num_attrs = 12;
  gen.planted_lhs_sizes = {5};
  gen.seed = 11;

  PerturbOptions perturb;
  perturb.fd_error_rate = 0.4;   // 2 of 5 LHS attributes dropped
  perturb.data_error_rate = 0.02;
  perturb.seed = 23;

  // Batched requests fan out on all hardware threads.
  exec::Options eopts;
  eopts.num_threads = 0;
  ExperimentData data = PrepareExperiment(gen, perturb,
                                          WeightKind::kDistinctCount,
                                          HeuristicOptions{}, eopts);
  Session& session = *data.session;
  const Schema& schema = data.dirty_instance().schema();

  std::printf("clean FDs : %s\n",
              data.clean.planted_fds.ToString(schema).c_str());
  std::printf("given FDs : %s (after removing %d LHS attrs)\n",
              data.dirty.fds.ToString(schema).c_str(),
              data.dirty.removed_lhs[0].Count());
  std::printf("injected cell errors: %zu\n",
              data.dirty.perturbed_cells.size());
  std::printf("deltaP(Sigma_d, I_d) = %lld\n\n",
              static_cast<long long>(data.root_delta_p));

  Result<MultiRepairResult> frontier =
      session.EnumerateRepairs(0, data.root_delta_p);
  if (!frontier.ok()) {
    std::fprintf(stderr, "enumerate failed: %s\n",
                 frontier.status().ToString().c_str());
    return 1;
  }

  // Materialize every frontier point concurrently: one request per
  // distinct FD repair, at the τ that discovered it.
  std::vector<RepairRequest> requests;
  requests.reserve(frontier->repairs.size());
  for (const RangedFdRepair& r : frontier->repairs) {
    requests.push_back(RepairRequest::At(r.tau_hi));
  }
  std::vector<Result<RepairResponse>> responses =
      session.RepairMany(requests);

  std::printf("%-42s %10s %10s %10s %10s\n", "Sigma'", "distc", "tau range",
              "cells", "combinedF");
  for (size_t i = 0; i < frontier->repairs.size(); ++i) {
    const RangedFdRepair& r = frontier->repairs[i];
    if (!responses[i].ok()) continue;
    const Repair& repair = responses[i]->repair;
    RepairQuality q = ScoreRepair(data, repair);
    char range[32];
    std::snprintf(range, sizeof(range), "[%lld,%lld]",
                  static_cast<long long>(r.tau_lo),
                  static_cast<long long>(r.tau_hi));
    std::printf("%-42s %10.0f %10s %10zu %10.3f\n",
                r.repair.sigma_prime.ToString(schema).c_str(),
                r.repair.distc, range, repair.changed_cells.size(),
                q.CombinedF());
  }
  std::printf("\n(states visited by the range search: %lld)\n",
              static_cast<long long>(frontier->stats.states_visited));
  return 0;
}
