// A small command-line cleaner over CSV files — the "downstream user"
// entry point to the library.
//
//   example_csv_repair_tool <file.csv> <tau_r> <fd> [<fd> ...]
//
//   file.csv  header + rows; column types are inferred
//   tau_r     relative trust in [0, 1]: 0 = trust the data fully
//             (only the FDs may change), 1 = trust the FDs fully
//   fd        e.g. "City->Zip" or "Surname,GivenName->Income"
//
// Prints the chosen FD relaxation, the cell edits, and the repaired table.
// Run with no arguments for a built-in demo.

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/relational/csv.h"
#include "src/repair/repair_driver.h"

using namespace retrust;

namespace {

int RunRepair(const Instance& inst, const std::vector<std::string>& fd_texts,
              double tau_r) {
  const Schema& schema = inst.schema();
  FDSet sigma;
  try {
    sigma = FDSet::Parse(fd_texts, schema);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad FD: %s\n", e.what());
    return 2;
  }

  EncodedInstance encoded(inst);
  DistinctCountWeight weights(encoded);
  FdSearchContext ctx(sigma, encoded, weights);
  int64_t root = ctx.RootDeltaP();
  int64_t tau = TauFromRelative(tau_r, root);

  std::printf("tuples: %d   FDs: %s\n", inst.NumTuples(),
              sigma.ToString(schema).c_str());
  std::printf("cell-change budget: tau = %lld (tau_r = %.0f%% of deltaP = "
              "%lld)\n\n",
              static_cast<long long>(tau), tau_r * 100,
              static_cast<long long>(root));

  auto repair = RepairDataAndFds(ctx, encoded, tau);
  if (!repair.has_value()) {
    std::printf("No repair exists within %lld cell changes — the remaining "
                "violations differ only on right-hand sides. Raise tau_r.\n",
                static_cast<long long>(tau));
    return 1;
  }

  std::printf("Sigma' = %s   (distc = %.1f)\n",
              repair->sigma_prime.ToString(schema).c_str(), repair->distc);
  std::printf("cell edits: %zu\n", repair->changed_cells.size());
  Instance repaired = repair->data.Decode();
  for (const CellRef& c : repair->changed_cells) {
    std::printf("  row %d, %s: %s -> %s\n", c.tuple + 1,
                schema.name(c.attr).c_str(),
                inst.At(c.tuple, c.attr).ToString().c_str(),
                repaired.At(c.tuple, c.attr)
                    .ToString(schema.name(c.attr))
                    .c_str());
  }
  std::printf("\nrepaired table ('?Attr<i>' marks \"any fresh value\"):\n%s",
              repaired.ToTable().c_str());
  return 0;
}

int Demo() {
  std::printf("(no arguments: running the built-in demo; usage: "
              "csv_repair_tool <file.csv> <tau_r> <fd> [...])\n\n");
  std::istringstream csv(
      "Name,City,Zip\n"
      "Alice,Springfield,11111\n"
      "Bob,Springfield,11111\n"
      "Carol,Springfield,22222\n"
      "Dave,Shelbyville,33333\n");
  Instance inst = ReadCsv(csv);
  return RunRepair(inst, {"City->Zip"}, 1.0);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return Demo();
  double tau_r = std::atof(argv[2]);
  std::vector<std::string> fds;
  for (int i = 3; i < argc; ++i) fds.emplace_back(argv[i]);
  try {
    Instance inst = ReadCsvFile(argv[1]);
    return RunRepair(inst, fds, tau_r);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
