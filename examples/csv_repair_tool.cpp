// A small command-line cleaner over CSV files — the "downstream user"
// entry point to the library, built entirely on the public facade
// (retrust::Session + Status/Result).
//
//   example_csv_repair_tool <file.csv> <tau_r> <fd> [<fd> ...]
//
//   file.csv  header + rows; column types are inferred
//   tau_r     relative trust in [0, 1]: 0 = trust the data fully
//             (only the FDs may change), 1 = trust the FDs fully
//   fd        e.g. "City->Zip" or "Surname,GivenName->Income"
//
// Prints the chosen FD relaxation, the cell edits, and the repaired table.
// Run with no arguments for a built-in demo.
//
// Exit codes (one per failure class, so scripts can branch):
//   0  repaired
//   1  no repair within the budget (raise tau_r)
//   2  bad FD (parse error or schema mismatch)
//   3  I/O error (file missing/malformed CSV)
//   4  bad arguments (tau_r out of range, ...)

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/api/session.h"
#include "src/relational/csv.h"

using namespace retrust;

namespace {

/// Maps a Status to the tool's exit-code classes above.
int ExitCodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return 0;
    case StatusCode::kNoRepairWithinTau:
    case StatusCode::kBudgetExceeded: return 1;
    case StatusCode::kInvalidFd:
    case StatusCode::kSchemaMismatch: return 2;
    case StatusCode::kIoError: return 3;
    default: return 4;
  }
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return ExitCodeFor(status);
}

int RunRepair(Result<Session> session, double tau_r) {
  if (!session.ok()) return Fail(session.status());
  const Schema& schema = session->schema();

  int64_t root = session->RootDeltaP();
  Result<int64_t> tau = CheckedTauFromRelative(tau_r, root);
  if (!tau.ok()) return Fail(tau.status());

  std::printf("tuples: %d   FDs: %s\n", session->instance().NumTuples(),
              session->fds().ToString(schema).c_str());
  std::printf("cell-change budget: tau = %lld (tau_r = %.0f%% of deltaP = "
              "%lld)\n\n",
              static_cast<long long>(*tau), tau_r * 100,
              static_cast<long long>(root));

  Result<RepairResponse> response =
      session->Repair(RepairRequest::At(*tau));
  if (!response.ok()) {
    if (response.status().code() == StatusCode::kNoRepairWithinTau) {
      std::printf("No repair exists within %lld cell changes — the "
                  "remaining violations differ only on right-hand sides. "
                  "Raise tau_r.\n",
                  static_cast<long long>(*tau));
      return 1;
    }
    return Fail(response.status());
  }

  const Repair& repair = response->repair;
  std::printf("Sigma' = %s   (distc = %.1f)\n",
              repair.sigma_prime.ToString(schema).c_str(), repair.distc);
  std::printf("cell edits: %zu\n", repair.changed_cells.size());
  Instance repaired = repair.data.Decode();
  const Instance& original = session->instance();
  for (const CellRef& c : repair.changed_cells) {
    std::printf("  row %d, %s: %s -> %s\n", c.tuple + 1,
                schema.name(c.attr).c_str(),
                original.At(c.tuple, c.attr).ToString().c_str(),
                repaired.At(c.tuple, c.attr)
                    .ToString(schema.name(c.attr))
                    .c_str());
  }
  std::printf("\nrepaired table ('?Attr<i>' marks \"any fresh value\"):\n%s",
              repaired.ToTable().c_str());
  return 0;
}

int Demo() {
  std::printf("(no arguments: running the built-in demo; usage: "
              "csv_repair_tool <file.csv> <tau_r> <fd> [...])\n\n");
  std::istringstream csv(
      "Name,City,Zip\n"
      "Alice,Springfield,11111\n"
      "Bob,Springfield,11111\n"
      "Carol,Springfield,22222\n"
      "Dave,Shelbyville,33333\n");
  Instance inst = ReadCsv(csv);
  return RunRepair(Session::Open(std::move(inst), {"City->Zip"}), 1.0);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return Demo();
  double tau_r = std::atof(argv[2]);
  std::vector<std::string> fds;
  for (int i = 3; i < argc; ++i) fds.emplace_back(argv[i]);
  return RunRepair(Session::OpenCsv(argv[1], fds), tau_r);
}
