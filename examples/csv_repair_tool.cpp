// A small command-line cleaner over CSV files — the "downstream user"
// entry point to the library, built entirely on the public facade
// (retrust::Session + Status/Result).
//
//   example_csv_repair_tool <file.csv> <tau_r> <fd> [<fd> ...]
//                           [--append <more.csv>]
//                           [--save-snapshot <file.snap>]
//                           [--policy exact|anytime|greedy] [--weight <w>]
//                           [--timing]
//   example_csv_repair_tool --from-snapshot <file.snap> <tau_r>
//
//   file.csv  header + rows; column types are inferred. The file is read
//             in streaming passes (one record in memory at a time), never
//             slurped into a raw-text copy.
//   tau_r     relative trust in [0, 1]: 0 = trust the data fully
//             (only the FDs may change), 1 = trust the FDs fully
//   fd        e.g. "City->Zip" or "Surname,GivenName->Income"
//   --append  stream the rows of a second CSV (same header arity) into
//             the session as chunked DeltaBatches via Session::Apply —
//             the incremental engine patches the indexes in place instead
//             of rebuilding them — then repair the grown dataset.
//   --save-snapshot  after loading (and appending), write the session —
//             data, FDs, difference sets, conflict graph, warm covers —
//             to a src/persist/ snapshot file before repairing.
//   --from-snapshot  restore a session from such a file instead of
//             building one from CSV: the O(n^2) context build is skipped,
//             so no <fd> arguments are taken — the FDs travel in the file.
//   --policy  search policy for the FD step (default exact): "anytime"
//             surfaces a first repair fast (within --weight times the
//             optimal cost) and refines it; "greedy" takes the first
//             feasible relaxation with no optimality claim.
//   --weight  weighted-A* factor w >= 1 for --policy anytime (default 2).
//   --timing  report the difference-set index build: per-phase wall times
//             (partition / enumerate / group) and how many conflict pairs
//             were materialized vs merely counted by the blocked builder.
//             Also prints the search's incumbent trajectory — when each
//             best-so-far repair was found, at what cost — and the proven
//             suboptimality bound (the anytime quality-vs-time curve).
//
// Prints the chosen FD relaxation, the cell edits, and the repaired table.
// Run with no arguments for a built-in demo.
//
// Exit codes (one per failure class, so scripts can branch):
//   0  repaired
//   1  no repair within the budget (raise tau_r)
//   2  bad FD (parse error or schema mismatch)
//   3  I/O error (file missing/malformed CSV/append row not parsing,
//      corrupt/truncated snapshot)
//   4  bad arguments (tau_r out of range, ...)
//   5  snapshot format version mismatch (file from a different build)
//   6  snapshot fingerprint mismatch (saved under a different Σ/weight
//      configuration than this tool uses)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/api/session.h"
#include "src/relational/csv.h"

using namespace retrust;

namespace {

/// Maps a Status to the tool's exit-code classes above.
int ExitCodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return 0;
    case StatusCode::kNoRepairWithinTau:
    case StatusCode::kBudgetExceeded: return 1;
    case StatusCode::kInvalidFd:
    case StatusCode::kSchemaMismatch: return 2;
    case StatusCode::kIoError: return 3;
    case StatusCode::kVersionMismatch: return 5;
    default: return 4;
  }
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return ExitCodeFor(status);
}

/// Like Fail, but for the snapshot-open phase, where kSchemaMismatch
/// means "the snapshot's fingerprint does not match this configuration"
/// (exit 6) rather than a CSV/FD schema problem (exit 2).
int FailSnapshotOpen(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  if (status.code() == StatusCode::kSchemaMismatch) return 6;
  return ExitCodeFor(status);
}

int FailIo(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 3;
}

/// Streams `path`'s rows into the session as chunked DeltaBatches through
/// Session::Apply. Returns 0 or an exit code.
int AppendRows(Session& session, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return FailIo("csv: cannot open " + path);
  const Schema& schema = session.schema();

  constexpr size_t kChunkRows = 256;
  // Rows, edges, and wall time are additive across batches; the group and
  // cover counts are per-batch snapshots of the index, so only the LAST
  // batch's snapshot describes the final state.
  int rows_appended = 0;
  long long edges_added = 0;
  double seconds = 0.0;
  int batches = 0;
  ApplyStats last;
  auto flush = [&](DeltaBatch& batch) -> int {
    if (batch.Empty()) return 0;
    Result<ApplyStats> stats = session.Apply(batch);
    if (!stats.ok()) return Fail(stats.status());
    rows_appended += stats->tuples_inserted;
    edges_added += stats->edges_added;
    seconds += stats->seconds;
    last = *stats;
    ++batches;
    batch = DeltaBatch{};
    return 0;
  };

  DeltaBatch batch;
  std::vector<std::string> fields;
  int line = 1;
  try {
    CsvReader reader(in);  // throws on a missing/empty header
    if (reader.num_fields() != schema.NumAttrs()) {
      return FailIo("append file has " +
                    std::to_string(reader.num_fields()) +
                    " columns, dataset has " +
                    std::to_string(schema.NumAttrs()));
    }
    while (reader.Next(&fields)) {
      ++line;
      Tuple t(schema.NumAttrs());
      for (AttrId a = 0; a < schema.NumAttrs(); ++a) {
        // The append file must conform to the base file's inferred types.
        if (!TryParseCsvField(fields[a], schema.type(a), &t[a])) {
          return FailIo(path + " row " + std::to_string(line) + ": '" +
                        fields[a] + "' is not a valid " + schema.name(a) +
                        " value");
        }
      }
      batch.Insert(std::move(t));
      if (batch.inserts.size() >= kChunkRows) {
        if (int rc = flush(batch); rc != 0) return rc;
      }
    }
  } catch (const std::exception& e) {
    return FailIo(e.what());
  }
  if (int rc = flush(batch); rc != 0) return rc;

  std::printf("appended %d rows in %d delta batch(es), %.1f ms total "
              "(index patched in place: %lld conflict edges added; last "
              "batch left %d/%d diff-set groups untouched, kept %zu warm "
              "covers)\n\n",
              rows_appended, batches, seconds * 1e3, edges_added,
              last.groups_preserved,
              last.groups_preserved + last.groups_changed,
              last.covers_kept);
  return 0;
}

int RunRepair(Result<Session> session, double tau_r,
              const std::string& append_path,
              const std::string& save_snapshot_path = {},
              bool from_snapshot = false, bool timing = false,
              search::SearchPolicy policy = search::SearchPolicy::kExact,
              double weight = 2.0) {
  if (!session.ok()) {
    return from_snapshot ? FailSnapshotOpen(session.status())
                         : Fail(session.status());
  }
  const Schema& schema = session->schema();

  if (!append_path.empty()) {
    if (int rc = AppendRows(*session, append_path); rc != 0) return rc;
  }

  if (timing) {
    // context() is the non-stable escape hatch; the stats describe the
    // build that produced the active context (zeros after a snapshot
    // restore, which skips the build on purpose).
    const DiffSetBuildStats& b = session->context().build_stats();
    if (b.total_seconds == 0.0) {
      std::printf("index build timing: n/a (context restored from a "
                  "snapshot; no difference-set build ran)\n\n");
    } else {
      std::printf(
          "index build: %.2f ms (partition %.2f ms, pair enumeration "
          "%.2f ms, group+rank %.2f ms)\n"
          "  pairs: %lld candidates in equivalence classes, %lld owned, "
          "%lld materialized as conflict edges, %lld counted without "
          "materialization\n\n",
          b.total_seconds * 1e3, b.partition_seconds * 1e3,
          b.enumerate_seconds * 1e3, b.group_seconds * 1e3,
          static_cast<long long>(b.pairs_candidate),
          static_cast<long long>(b.pairs_owned),
          static_cast<long long>(b.pairs_materialized),
          static_cast<long long>(b.pairs_counted));
    }
  }

  if (!save_snapshot_path.empty()) {
    Status saved = session->SaveSnapshot(save_snapshot_path);
    if (!saved.ok()) return Fail(saved);
    std::printf("snapshot saved to %s (restore with --from-snapshot)\n\n",
                save_snapshot_path.c_str());
  }

  int64_t root = session->RootDeltaP();
  Result<int64_t> tau = CheckedTauFromRelative(tau_r, root);
  if (!tau.ok()) return Fail(tau.status());

  std::printf("tuples: %d   FDs: %s\n", session->instance().NumTuples(),
              session->fds().ToString(schema).c_str());
  std::printf("cell-change budget: tau = %lld (tau_r = %.0f%% of deltaP = "
              "%lld)\n\n",
              static_cast<long long>(*tau), tau_r * 100,
              static_cast<long long>(root));

  RepairRequest request = RepairRequest::At(*tau);
  request.policy = policy;
  request.weight = weight;
  if (policy == search::SearchPolicy::kAnytime) {
    std::printf("search policy: anytime (w = %.2f)\n\n", weight);
  } else if (policy == search::SearchPolicy::kGreedy) {
    std::printf("search policy: greedy\n\n");
  }
  Result<RepairResponse> response = session->Repair(request);
  if (!response.ok()) {
    if (response.status().code() == StatusCode::kNoRepairWithinTau) {
      std::printf("No repair exists within %lld cell changes — the "
                  "remaining violations differ only on right-hand sides. "
                  "Raise tau_r.\n",
                  static_cast<long long>(*tau));
      return 1;
    }
    return Fail(response.status());
  }

  const Repair& repair = response->repair;
  if (timing && !repair.incumbents.empty()) {
    std::printf("incumbent trajectory (best repair over time):\n");
    for (const search::IncumbentPoint& p : repair.incumbents) {
      std::printf("  %8.3f ms  distc = %-6.1f deltaP = %-5lld after %lld "
                  "states\n",
                  p.seconds * 1e3, p.distc,
                  static_cast<long long>(p.delta_p),
                  static_cast<long long>(p.states_visited));
    }
    if (repair.stats.suboptimality_bound > 0) {
      std::printf("  proven cost within %.2fx of optimal\n",
                  repair.stats.suboptimality_bound);
    } else {
      std::printf("  no optimality claim (greedy policy)\n");
    }
    std::printf("\n");
  }
  std::printf("Sigma' = %s   (distc = %.1f)\n",
              repair.sigma_prime.ToString(schema).c_str(), repair.distc);
  std::printf("cell edits: %zu\n", repair.changed_cells.size());
  Instance repaired = repair.data.Decode();
  const Instance& original = session->instance();
  for (const CellRef& c : repair.changed_cells) {
    std::printf("  row %d, %s: %s -> %s\n", c.tuple + 1,
                schema.name(c.attr).c_str(),
                original.At(c.tuple, c.attr).ToString().c_str(),
                repaired.At(c.tuple, c.attr)
                    .ToString(schema.name(c.attr))
                    .c_str());
  }
  std::printf("\nrepaired table ('?Attr<i>' marks \"any fresh value\"):\n%s",
              repaired.ToTable().c_str());
  return 0;
}

int Demo() {
  std::printf("(no arguments: running the built-in demo; usage: "
              "csv_repair_tool <file.csv> <tau_r> <fd> [...] "
              "[--append <more.csv>])\n\n");
  std::istringstream csv(
      "Name,City,Zip\n"
      "Alice,Springfield,11111\n"
      "Bob,Springfield,11111\n"
      "Carol,Springfield,22222\n"
      "Dave,Shelbyville,33333\n");
  Instance inst = ReadCsv(csv);
  return RunRepair(Session::Open(std::move(inst), {"City->Zip"}), 1.0, "");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  std::string append_path;
  std::string save_snapshot_path;
  std::string from_snapshot_path;
  bool timing = false;
  search::SearchPolicy policy = search::SearchPolicy::kExact;
  double weight = 2.0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto flag_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a file argument\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--policy") {
      const char* v = flag_value("--policy");
      if (v == nullptr) return 4;
      if (!search::ParseSearchPolicy(v, &policy)) {
        std::fprintf(stderr,
                     "error: unknown policy '%s' (exact|anytime|greedy)\n",
                     v);
        return 4;
      }
    } else if (arg == "--weight") {
      const char* v = flag_value("--weight");
      if (v == nullptr) return 4;
      weight = std::atof(v);
      if (!(weight >= 1.0)) {
        std::fprintf(stderr, "error: --weight must be a number >= 1\n");
        return 4;
      }
    } else if (arg == "--append") {
      const char* v = flag_value("--append");
      if (v == nullptr) return 4;
      append_path = v;
    } else if (arg == "--save-snapshot") {
      const char* v = flag_value("--save-snapshot");
      if (v == nullptr) return 4;
      save_snapshot_path = v;
    } else if (arg == "--from-snapshot") {
      const char* v = flag_value("--from-snapshot");
      if (v == nullptr) return 4;
      from_snapshot_path = v;
    } else if (arg == "--timing") {
      timing = true;
    } else {
      args.emplace_back(std::move(arg));
    }
  }
  if (!from_snapshot_path.empty()) {
    // The snapshot carries the data AND the FDs, so only tau_r remains.
    if (args.size() != 1) {
      std::fprintf(stderr, "error: usage: --from-snapshot <file.snap> "
                           "<tau_r>\n");
      return 4;
    }
    double tau_r = std::atof(args[0].c_str());
    return RunRepair(Session::OpenSnapshot(from_snapshot_path), tau_r,
                     append_path, save_snapshot_path,
                     /*from_snapshot=*/true, timing, policy, weight);
  }
  if (args.size() < 3) {
    if (!append_path.empty() || !save_snapshot_path.empty()) {
      std::fprintf(stderr, "error: flags need the full positional "
                           "arguments too: <file.csv> <tau_r> <fd> [...]\n");
      return 4;
    }
    return Demo();
  }
  double tau_r = std::atof(args[1].c_str());
  std::vector<std::string> fds(args.begin() + 2, args.end());
  return RunRepair(Session::OpenCsv(args[0], fds), tau_r, append_path,
                   save_snapshot_path, /*from_snapshot=*/false, timing,
                   policy, weight);
}
