// The service layer: wire-format round trips, tenant registry (eager +
// lazy CSV), admission control (queue-full/tenant-cap -> kOverloaded,
// pre-expired deadlines rejected before enqueue, in-queue expiry),
// cancellation that never leaks pool work, the apply_delta barrier, and
// latency accounting. Everything here is named Service*/ExecSharedPool so
// CI's TSan job picks it up.
//
// Determinism trick used throughout: ServerOptions::start_paused freezes
// dispatch, so queue states (full, cancelled-while-queued, expired-in-
// queue) are constructed exactly, then Resume() drains them.

#include <chrono>
#include <fstream>
#include <thread>

#include <gtest/gtest.h>

#include "src/service/server.h"
#include "src/service/wire.h"

namespace retrust::service {
namespace {

Instance SmallInstance() {
  Schema schema(std::vector<Attribute>{{"Name", AttrType::kString},
                                       {"City", AttrType::kString},
                                       {"Zip", AttrType::kString}});
  Instance inst(schema);
  inst.AddTuple({Value("Alice"), Value("Springfield"), Value("11111")});
  inst.AddTuple({Value("Bob"), Value("Springfield"), Value("11111")});
  inst.AddTuple({Value("Carol"), Value("Springfield"), Value("22222")});
  inst.AddTuple({Value("Dave"), Value("Shelbyville"), Value("33333")});
  return inst;
}

std::vector<std::string> SmallFds() { return {"City->Zip"}; }

// --- wire format ---------------------------------------------------------

TEST(ServiceWire, JsonRoundTrip) {
  const std::string text =
      R"({"a":[1,2.5,"x\n",true,null],"b":{"nested":-3},"c":""})";
  Result<Json> parsed = ParseJson(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Dump(), text);

  Result<Json> reparsed = ParseJson(parsed->Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->Dump(), text);
}

TEST(ServiceWire, ParseRejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated",
        "{\"a\":1}x"}) {
    Result<Json> parsed = ParseJson(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << bad;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ServiceWire, RepairRequestParsing) {
  Result<Json> obj = ParseJson(
      R"({"op":"repair","tau":3,"mode":"best_first","seed":9,"budget":50,)"
      R"("deadline_seconds":1.5})");
  ASSERT_TRUE(obj.ok());
  Result<RepairRequest> req = RepairRequestFromJson(*obj);
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->tau, 3);
  EXPECT_EQ(req->mode, SearchMode::kBestFirst);
  EXPECT_EQ(req->seed, 9u);
  EXPECT_EQ(req->budget, 50);
  EXPECT_DOUBLE_EQ(req->deadline_seconds, 1.5);

  Result<Json> relative = ParseJson(R"({"tau_r":0.5})");
  ASSERT_TRUE(relative.ok());
  Result<RepairRequest> rel = RepairRequestFromJson(*relative);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->tau, -1);
  EXPECT_DOUBLE_EQ(rel->tau_r, 0.5);

  for (const char* bad :
       {R"({"op":"repair"})", R"({"tau":-2})", R"({"tau":1,"mode":"x"})"}) {
    Result<Json> parsed = ParseJson(bad);
    ASSERT_TRUE(parsed.ok());
    EXPECT_FALSE(RepairRequestFromJson(*parsed).ok()) << bad;
  }
}

TEST(ServiceWire, DeltaBatchParsing) {
  Schema schema = SmallInstance().schema();
  Result<Json> obj = ParseJson(
      R"({"inserts":[["Eve","Springfield","11111"]],)"
      R"("updates":[[2,"Zip","11111"],[0,1,"Shelbyville"]],"deletes":[3]})");
  ASSERT_TRUE(obj.ok());
  Result<DeltaBatch> batch = DeltaBatchFromJson(*obj, schema);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->inserts.size(), 1u);
  ASSERT_EQ(batch->updates.size(), 2u);
  EXPECT_EQ(batch->updates[0].tuple, 2);
  EXPECT_EQ(batch->updates[0].attr, 2);  // "Zip" by name
  EXPECT_EQ(batch->updates[1].attr, 1);  // index form
  EXPECT_EQ(batch->deletes.size(), 1u);

  for (const char* bad :
       {R"({})", R"({"inserts":[["one","two"]]})",
        R"({"updates":[[0,"NoSuchAttr","v"]]})", R"({"deletes":["x"]})"}) {
    Result<Json> parsed = ParseJson(bad);
    ASSERT_TRUE(parsed.ok());
    EXPECT_FALSE(DeltaBatchFromJson(*parsed, schema).ok()) << bad;
  }
}

// --- latency histogram ---------------------------------------------------

TEST(ServiceStats, LatencyHistogramPercentiles) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.Percentile(0.5), 0.0);
  for (int i = 0; i < 99; ++i) hist.Record(0.001);
  hist.Record(1.0);
  EXPECT_EQ(hist.count(), 100u);
  // Bucket upper bounds are conservative: p50 is near 1ms, p99+ sees the
  // outlier.
  EXPECT_LT(hist.Percentile(0.5), 0.01);
  EXPECT_GT(hist.Percentile(0.995), 0.5);
  EXPECT_LE(hist.Percentile(0.5), hist.Percentile(0.99));
}

// --- tenant registry -----------------------------------------------------

TEST(ServiceRegistry, EagerTenantAnswersAndDuplicateIsRejected) {
  Server server;
  ASSERT_TRUE(server.LoadTenant("t", SmallInstance(), SmallFds()).ok());
  Status dup = server.LoadTenant("t", SmallInstance(), SmallFds());
  EXPECT_EQ(dup.code(), StatusCode::kInvalidArgument);

  auto submitted = server.client().Repair("t", RepairRequest::AtRelative(1.0));
  Result<RepairResponse> response = submitted.future.get();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->repair.changed_cells.size(), 1u);
}

TEST(ServiceRegistry, LazyCsvLoadsOnFirstUse) {
  std::string path = testing::TempDir() + "/retrust_service_lazy.csv";
  {
    std::ofstream out(path);
    out << "Name,City,Zip\nAlice,Springfield,11111\nBob,Springfield,22222\n";
  }
  Server server;
  ASSERT_TRUE(server.LoadCsvTenant("lazy", path, SmallFds()).ok());

  Result<TenantStats> before = server.TenantStatsFor("lazy");
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(before->loaded);  // registration did not read the file

  auto submitted =
      server.client().Repair("lazy", RepairRequest::AtRelative(1.0));
  ASSERT_TRUE(submitted.future.get().ok());

  Result<TenantStats> after = server.TenantStatsFor("lazy");
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->loaded);
  EXPECT_EQ(after->num_tuples, 2);
  EXPECT_EQ(after->completed, 1u);
  EXPECT_EQ(after->cache.cached, 1u);
  ASSERT_EQ(after->cache.contexts.size(), 1u);
  EXPECT_TRUE(after->cache.contexts[0].active);
  EXPECT_GT(after->cache.bytes_estimate, 0u);
}

TEST(ServiceRegistry, MissingCsvSurfacesIoErrorOnRequest) {
  Server server;
  ASSERT_TRUE(
      server.LoadCsvTenant("ghost", "/nonexistent/ghost.csv", SmallFds())
          .ok());
  auto submitted =
      server.client().Repair("ghost", RepairRequest::AtRelative(1.0));
  Result<RepairResponse> response = submitted.future.get();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kIoError);
}

// --- admission control ---------------------------------------------------

TEST(ServiceAdmission, UnknownTenantRejectedBeforeEnqueue) {
  Server server;
  auto submitted =
      server.client().Repair("nope", RepairRequest::AtRelative(1.0));
  Result<RepairResponse> response = submitted.future.get();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.Stats().queue_depth, 0u);
}

TEST(ServiceAdmission, QueueFullIsOverloaded) {
  ServerOptions opts;
  opts.queue_capacity = 2;
  opts.start_paused = true;
  Server server(opts);
  ASSERT_TRUE(server.LoadTenant("t", SmallInstance(), SmallFds()).ok());
  Client client = server.client();

  auto a = client.Repair("t", RepairRequest::AtRelative(1.0));
  auto b = client.Repair("t", RepairRequest::AtRelative(1.0));
  auto c = client.Repair("t", RepairRequest::AtRelative(1.0));

  // Paused dispatch: exactly the first two hold the queue's two slots.
  Result<RepairResponse> shed = c.future.get();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kOverloaded);
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.queue_depth, 2u);
  EXPECT_EQ(stats.rejected_queue_full, 1u);

  server.Resume();
  EXPECT_TRUE(a.future.get().ok());
  EXPECT_TRUE(b.future.get().ok());
  EXPECT_EQ(server.Stats().rejected(), 1u);
}

TEST(ServiceAdmission, TenantCapShedsOnlyTheHotTenant) {
  ServerOptions opts;
  opts.per_tenant_inflight = 1;
  opts.start_paused = true;
  Server server(opts);
  ASSERT_TRUE(server.LoadTenant("hot", SmallInstance(), SmallFds()).ok());
  ASSERT_TRUE(server.LoadTenant("cold", SmallInstance(), SmallFds()).ok());
  Client client = server.client();

  auto hot1 = client.Repair("hot", RepairRequest::AtRelative(1.0));
  auto hot2 = client.Repair("hot", RepairRequest::AtRelative(1.0));
  auto cold1 = client.Repair("cold", RepairRequest::AtRelative(1.0));

  Result<RepairResponse> shed = hot2.future.get();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kOverloaded);
  EXPECT_EQ(server.Stats().rejected_tenant_cap, 1u);

  server.Resume();
  EXPECT_TRUE(hot1.future.get().ok());   // the capped tenant still serves
  EXPECT_TRUE(cold1.future.get().ok());  // other tenants were never affected
}

TEST(ServiceAdmission, PreExpiredDeadlineRejectedBeforeEnqueue) {
  ServerOptions opts;
  opts.start_paused = true;
  Server server(opts);
  ASSERT_TRUE(server.LoadTenant("t", SmallInstance(), SmallFds()).ok());

  RepairRequest req = RepairRequest::AtRelative(1.0);
  req.deadline_seconds = -1.0;  // expired before it was ever submitted
  auto submitted = server.client().Repair("t", req);
  Result<RepairResponse> response = submitted.future.get();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kBudgetExceeded);

  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.queue_depth, 0u);  // never enqueued
  EXPECT_EQ(stats.rejected_deadline, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(ServiceAdmission, DeadlineExpiringInQueueNeverReachesASession) {
  ServerOptions opts;
  opts.start_paused = true;
  Server server(opts);
  ASSERT_TRUE(server.LoadTenant("t", SmallInstance(), SmallFds()).ok());

  RepairRequest req = RepairRequest::AtRelative(1.0);
  req.deadline_seconds = 0.005;
  auto submitted = server.client().Repair("t", req);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.Resume();

  Result<RepairResponse> response = submitted.future.get();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kBudgetExceeded);
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.expired_in_queue, 1u);
  EXPECT_EQ(stats.completed, 0u);  // the session never saw it
}

TEST(ServiceAdmission, ClientOwnedCancelTokenIsInvalidArgument) {
  Server server;
  ASSERT_TRUE(server.LoadTenant("t", SmallInstance(), SmallFds()).ok());
  exec::CancelToken token;
  RepairRequest req = RepairRequest::AtRelative(1.0);
  req.cancel = &token;
  Result<RepairResponse> response =
      server.client().Repair("t", req).future.get();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

// --- cancellation --------------------------------------------------------

TEST(ServiceCancel, QueuedRequestCancelsWithoutLeakingPoolWork) {
  ServerOptions opts;
  opts.start_paused = true;
  opts.workers = 4;
  Server server(opts);
  ASSERT_TRUE(server.LoadTenant("t", SmallInstance(), SmallFds()).ok());
  Client client = server.client();

  auto doomed = client.Repair("t", RepairRequest::AtRelative(1.0));
  auto survivor = client.Repair("t", RepairRequest::AtRelative(1.0));
  EXPECT_TRUE(client.Cancel(doomed.id));
  server.Resume();

  Result<RepairResponse> cancelled = doomed.future.get();
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  EXPECT_TRUE(survivor.future.get().ok());

  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 1u);  // only the survivor executed
  // A finished request is no longer cancellable.
  EXPECT_FALSE(client.Cancel(doomed.id));
  EXPECT_FALSE(client.Cancel(999999));
}

TEST(ServiceCancel, SweepCancelsCooperatively) {
  Server server;
  ASSERT_TRUE(server.LoadTenant("t", SmallInstance(), SmallFds()).ok());
  Client client = server.client();
  std::vector<RepairRequest> reqs(4, RepairRequest::AtRelative(1.0));
  auto submitted = client.Sweep("t", reqs);
  client.Cancel(submitted.id);  // may land before, during, or after
  std::vector<Result<RepairResponse>> replies = submitted.future.get();
  ASSERT_EQ(replies.size(), 4u);
  for (const Result<RepairResponse>& r : replies) {
    EXPECT_TRUE(r.ok() || r.status().code() == StatusCode::kCancelled)
        << r.status().ToString();
  }
}

// --- sequential consistency: the apply_delta barrier ---------------------

TEST(ServiceServer, ApplyDeltaIsAPerTenantBarrier) {
  ServerOptions opts;
  opts.workers = 4;
  opts.start_paused = true;
  Server server(opts);
  ASSERT_TRUE(server.LoadTenant("t", SmallInstance(), SmallFds()).ok());
  Client client = server.client();

  // Session's root δP is 2 before the delta; deleting Carol (the only
  // City->Zip violation) drops it to 0.
  auto before = client.Repair("t", RepairRequest::AtRelative(1.0));
  DeltaBatch delta;
  delta.Delete(2);
  auto apply = client.Apply("t", delta);
  auto after = client.Repair("t", RepairRequest::AtRelative(1.0));
  server.Resume();

  Result<RepairResponse> r_before = before.future.get();
  ASSERT_TRUE(r_before.ok());
  EXPECT_EQ(r_before->tau, 2);  // resolved against the pre-delta root

  ASSERT_TRUE(apply.future.get().ok());
  Result<RepairResponse> r_after = after.future.get();
  ASSERT_TRUE(r_after.ok());
  EXPECT_EQ(r_after->tau, 0);  // resolved against the post-delta root
  EXPECT_TRUE(r_after->repair.changed_cells.empty());
}

// --- fairness and lane ordering (queue-level, fully deterministic) -------

std::shared_ptr<PendingRequest> QueueEntry(const std::string& tenant,
                                           bool is_write = false) {
  auto req = std::make_shared<PendingRequest>();
  static uint64_t next_id = 1;
  req->id = next_id++;
  req->tenant = tenant;
  req->is_write = is_write;
  req->submitted = std::chrono::steady_clock::now();
  req->execute = [](Session&, PendingRequest&) {};
  req->fail = [](const Status&) {};
  return req;
}

TEST(ServiceQueue, RoundRobinInterleavesAFloodingTenant) {
  AdmissionController admission({});
  RequestQueue queue(&admission);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(queue.Push(QueueEntry("hot")).ok());
  ASSERT_TRUE(queue.Push(QueueEntry("meek")).ok());

  // Pop order: hot flooded first, but the meek tenant's single request is
  // dispatched in the very first round-robin round — 16 queued hot
  // requests could not push it back any further.
  EXPECT_EQ(queue.Pop()->tenant, "hot");
  EXPECT_EQ(queue.Pop()->tenant, "meek");
  EXPECT_EQ(queue.Pop()->tenant, "hot");
  EXPECT_EQ(queue.Pop()->tenant, "hot");
  EXPECT_EQ(queue.Pop()->tenant, "hot");
  EXPECT_EQ(queue.Depth(), 0u);
}

TEST(ServiceQueue, WriteBarrierOrdersALane) {
  AdmissionController admission({});
  RequestQueue queue(&admission);
  auto read1 = QueueEntry("t");
  auto write = QueueEntry("t", /*is_write=*/true);
  auto read2 = QueueEntry("t");
  auto other = QueueEntry("u");
  ASSERT_TRUE(queue.Push(read1).ok());
  ASSERT_TRUE(queue.Push(write).ok());
  ASSERT_TRUE(queue.Push(read2).ok());
  ASSERT_TRUE(queue.Push(other).ok());

  // read1 dispatches; while it executes, t's head is the write — blocked
  // behind the in-flight read — so the other tenant's lane serves next.
  EXPECT_EQ(queue.Pop().get(), read1.get());
  EXPECT_EQ(queue.Pop().get(), other.get());
  auto [queued_t, executing_t] = queue.LaneLoad("t");
  EXPECT_EQ(queued_t, 2u);
  EXPECT_EQ(executing_t, 1u);

  // Once read1 drains, the write dispatches; read2 stays blocked behind
  // the running barrier until the write drains too.
  queue.OnFinished(*read1);
  EXPECT_EQ(queue.Pop().get(), write.get());
  queue.OnFinished(*write);
  EXPECT_EQ(queue.Pop().get(), read2.get());
  queue.OnFinished(*read2);
  queue.OnFinished(*other);
  EXPECT_EQ(queue.InFlight(), 0u);
}

TEST(ServiceServer, StopFailsQueuedRequests) {
  ServerOptions opts;
  opts.start_paused = true;
  Server server(opts);
  ASSERT_TRUE(server.LoadTenant("t", SmallInstance(), SmallFds()).ok());
  auto stuck = server.client().Repair("t", RepairRequest::AtRelative(1.0));
  server.Stop();
  Result<RepairResponse> response = stuck.future.get();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kCancelled);
  // Submissions after Stop fail fast instead of hanging.
  Result<RepairResponse> late =
      server.client().Repair("t", RepairRequest::AtRelative(1.0)).future.get();
  EXPECT_EQ(late.status().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace retrust::service
