// Unit surface of the observability layer (named Obs* so CI's TSan job
// runs it):
//   * Counter / MetricsRegistry — get-or-create identity, sharded adds
//     summing correctly under concurrency, sorted label rendering, probe
//     RAII (a released Registration stops being sampled).
//   * LatencyHistogram — Percentile clamps the bucket upper bound to the
//     maximum recorded value, so a single sample reports itself instead
//     of its bucket's geometric ceiling.
//   * TraceSpan — tree building, idempotent Finish, phase-total
//     conversion via AttachSearchPhases, RenderSpanTree shape.
//   * FlightRecorder — ring wrap, newest-first Recent with and without a
//     limit; SlowRequestLog threshold + rate limit.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/flight_recorder.h"
#include "src/obs/histogram.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace retrust::obs {
namespace {

// --- Counter / MetricsRegistry -------------------------------------------

TEST(ObsMetrics, GetCounterReturnsSameInstanceForSameSeries) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("requests", {{"verb", "repair"}});
  Counter& b = registry.GetCounter("requests", {{"verb", "repair"}});
  Counter& other = registry.GetCounter("requests", {{"verb", "stats"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);

  a.Add();
  b.Add(4);
  EXPECT_EQ(a.Value(), 5u);
  EXPECT_EQ(other.Value(), 0u);
}

TEST(ObsMetrics, ShardedCounterSumsConcurrentAdds) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST(ObsMetrics, RenderSeriesSortsLabelsAndHandlesEmpty) {
  EXPECT_EQ(MetricsRegistry::RenderSeries("up", {}), "up");
  EXPECT_EQ(MetricsRegistry::RenderSeries(
                "reqs", {{"verb", "repair"}, {"tenant", "a"}}),
            "reqs{tenant=\"a\",verb=\"repair\"}");
}

TEST(ObsMetrics, ExpositionTextIsSortedAndCoversCountersAndProbes) {
  MetricsRegistry registry;
  registry.GetCounter("zz_total").Add(3);
  registry.GetCounter("aa_total", {{"k", "v"}}).Add(1);
  MetricsRegistry::Registration probe =
      registry.RegisterProbe([](Collector& out) {
        out.Gauge("mm_depth", {}, 7.0);
        out.CounterSample("mm_done_total", {{"lane", "x"}}, 42);
      });

  std::string text = registry.ExpositionText();
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "aa_total{k=\"v\"} 1");
  EXPECT_EQ(lines[1], "mm_depth 7");
  EXPECT_EQ(lines[2], "mm_done_total{lane=\"x\"} 42");
  EXPECT_EQ(lines[3], "zz_total 3");
  EXPECT_EQ(registry.SeriesCount(), 4u);
}

TEST(ObsMetrics, ReleasedProbeStopsBeingSampled) {
  MetricsRegistry registry;
  {
    MetricsRegistry::Registration probe = registry.RegisterProbe(
        [](Collector& out) { out.Gauge("ephemeral", {}, 1.0); });
    EXPECT_NE(registry.ExpositionText().find("ephemeral"), std::string::npos);
  }
  EXPECT_EQ(registry.ExpositionText().find("ephemeral"), std::string::npos);
  EXPECT_EQ(registry.SeriesCount(), 0u);

  // Release() directly (not just destruction) and moved-from handles.
  MetricsRegistry::Registration a = registry.RegisterProbe(
      [](Collector& out) { out.Gauge("moved", {}, 2.0); });
  MetricsRegistry::Registration b = std::move(a);
  EXPECT_NE(registry.ExpositionText().find("moved"), std::string::npos);
  b.Release();
  EXPECT_EQ(registry.ExpositionText().find("moved"), std::string::npos);
}

TEST(ObsMetrics, HistogramSampleExpandsToQuantilesAndCount) {
  MetricsRegistry registry;
  LatencyHistogram hist;
  hist.Record(0.010);
  hist.Record(0.020);
  MetricsRegistry::Registration probe = registry.RegisterProbe(
      [&hist](Collector& out) { out.Histogram("lat_seconds", {}, hist); });

  std::string text = registry.ExpositionText();
  EXPECT_NE(text.find("lat_seconds{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 2"), std::string::npos);
}

// --- LatencyHistogram percentile clamp -----------------------------------

TEST(ObsHistogram, PercentileClampsBucketBoundToObservedMax) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.Percentile(0.5), 0.0);  // empty

  // One sample: every quantile IS that sample, not its bucket's geometric
  // upper bound (which for 1.0 s would be ~1.17 s).
  hist.Record(1.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.99), 1.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(1.0), 1.0);
  EXPECT_DOUBLE_EQ(hist.max_seconds(), 1.0);
}

TEST(ObsHistogram, PercentileStaysConservativeAcrossBuckets) {
  LatencyHistogram hist;
  for (int i = 0; i < 99; ++i) hist.Record(0.001);
  hist.Record(0.5);

  // p50 falls in the 1 ms bucket: at least the sample, at most its bucket
  // ceiling (one kRatio step above).
  double p50 = hist.Percentile(0.5);
  EXPECT_GE(p50, 0.001);
  EXPECT_LE(p50, 0.001 * 1.38 * 1.01);
  // p100 lands in the 0.5 s bucket but must clamp to the max sample.
  EXPECT_DOUBLE_EQ(hist.Percentile(1.0), 0.5);
}

TEST(ObsHistogram, ExtremeSamplesStayInRange) {
  LatencyHistogram hist;
  hist.Record(0.0);   // below the first bucket
  hist.Record(1e9);   // beyond the last bucket: saturates at its ceiling
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_DOUBLE_EQ(hist.max_seconds(), 1e9);
  double p100 = hist.Percentile(1.0);
  EXPECT_GT(p100, 100.0);  // the last bucket's bound, far above any sample
  EXPECT_LE(p100, 1e9);    // but never past the observed max
  EXPECT_GE(hist.Percentile(0.25), 0.0);
}

// --- TraceSpan -----------------------------------------------------------

TEST(ObsTrace, SpanTreeBuildsAndFinishIsIdempotent) {
  TraceSpan root("request");
  TraceSpan* child = root.StartChild("service");
  TraceSpan* grand = child->StartChild("session");
  grand->Finish();
  child->Finish();
  root.set_seconds(1.5);
  root.Finish();  // first set_seconds/Finish wins
  EXPECT_DOUBLE_EQ(root.seconds(), 1.5);
  ASSERT_EQ(root.children().size(), 1u);
  EXPECT_EQ(root.children()[0]->name(), "service");
  ASSERT_EQ(child->children().size(), 1u);
  EXPECT_GE(grand->seconds(), 0.0);
}

TEST(ObsTrace, AttachSearchPhasesEmitsOnlyNonEmptyPhases) {
  SearchPhaseStats phases;
  phases.expand_count = 10;
  phases.expand_seconds = 0.25;
  phases.cover_count = 3;
  phases.cover_seconds = 0.05;
  EXPECT_TRUE(phases.any());

  TraceSpan search("search");
  AttachSearchPhases(&search, phases);
  ASSERT_EQ(search.children().size(), 2u);
  EXPECT_EQ(search.children()[0]->name(), "expand");
  EXPECT_EQ(search.children()[0]->count(), 10u);
  EXPECT_DOUBLE_EQ(search.children()[0]->seconds(), 0.25);
  EXPECT_EQ(search.children()[1]->name(), "cover");
  EXPECT_EQ(search.children()[1]->count(), 3u);

  TraceSpan empty("search");
  AttachSearchPhases(&empty, SearchPhaseStats{});
  EXPECT_TRUE(empty.children().empty());
}

TEST(ObsTrace, SessionParentPrefersServiceSpan) {
  RequestTrace trace;
  EXPECT_EQ(trace.SessionParent(), &trace.root);
  trace.service = trace.root.StartChild("service");
  EXPECT_EQ(trace.SessionParent(), trace.service);
}

TEST(ObsTrace, RenderSpanTreeIndentsAndShowsCounts) {
  TraceSpan root("request");
  root.set_seconds(0.5);
  TraceSpan* service = root.StartChild("service");
  service->set_seconds(0.4);
  TraceSpan* expand = service->StartChild("expand");
  expand->set_seconds(0.1);
  expand->set_count(42);

  std::string text = RenderSpanTree(root);
  EXPECT_NE(text.find("request"), std::string::npos);
  EXPECT_NE(text.find("  service"), std::string::npos);
  EXPECT_NE(text.find("    expand"), std::string::npos);
  EXPECT_NE(text.find("x42"), std::string::npos);
}

// --- FlightRecorder ------------------------------------------------------

FlightRecord MakeRecord(uint64_t id, double total = 0.01) {
  FlightRecord record;
  record.id = id;
  record.tenant = "t";
  record.verb = "repair";
  record.status = "ok";
  record.total_seconds = total;
  return record;
}

TEST(ObsFlightRecorder, RingKeepsNewestAndWraps) {
  FlightRecorder recorder(3);
  EXPECT_EQ(recorder.capacity(), 3u);
  for (uint64_t id = 1; id <= 5; ++id) recorder.Record(MakeRecord(id));

  std::vector<FlightRecord> recent = recorder.Recent();
  ASSERT_EQ(recent.size(), 3u);  // 4 and 5 wrapped over 1 and 2
  EXPECT_EQ(recent[0].id, 5u);   // newest first
  EXPECT_EQ(recent[1].id, 4u);
  EXPECT_EQ(recent[2].id, 3u);
  EXPECT_EQ(recorder.TotalRecorded(), 5u);

  std::vector<FlightRecord> limited = recorder.Recent(2);
  ASSERT_EQ(limited.size(), 2u);
  EXPECT_EQ(limited[0].id, 5u);
  EXPECT_EQ(limited[1].id, 4u);
}

TEST(ObsFlightRecorder, PartialRingReturnsOnlyRecorded) {
  FlightRecorder recorder(8);
  recorder.Record(MakeRecord(1));
  recorder.Record(MakeRecord(2));
  std::vector<FlightRecord> recent = recorder.Recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].id, 2u);
  EXPECT_EQ(recent[1].id, 1u);
}

TEST(ObsFlightRecorder, ZeroCapacityStillHoldsOne) {
  FlightRecorder recorder(0);
  EXPECT_EQ(recorder.capacity(), 1u);
  recorder.Record(MakeRecord(1));
  recorder.Record(MakeRecord(2));
  std::vector<FlightRecord> recent = recorder.Recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].id, 2u);
}

TEST(ObsSlowLog, ThresholdGatesAndRateLimits) {
  SlowRequestLog log(/*threshold_seconds=*/0.1, /*min_interval_seconds=*/3600);
  EXPECT_FALSE(log.MaybeLog(MakeRecord(1, 0.05), nullptr));  // under
  EXPECT_EQ(log.SlowSeen(), 0u);

  EXPECT_TRUE(log.MaybeLog(MakeRecord(2, 0.5), nullptr));  // first slow logs
  // Second slow request inside the interval is counted but suppressed.
  EXPECT_FALSE(log.MaybeLog(MakeRecord(3, 0.5), nullptr));
  EXPECT_EQ(log.SlowSeen(), 2u);
}

TEST(ObsSlowLog, DisabledThresholdNeverLogs) {
  SlowRequestLog log(/*threshold_seconds=*/0.0, /*min_interval_seconds=*/0.0);
  EXPECT_FALSE(log.MaybeLog(MakeRecord(1, 100.0), nullptr));
  EXPECT_EQ(log.SlowSeen(), 0u);
}

}  // namespace
}  // namespace retrust::obs
