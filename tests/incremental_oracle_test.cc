// Oracle tests for the incremental update engine: after ANY interleaving
// of tuple inserts, cell updates, and deletes, the delta-maintained
// structures (difference-set index, violation table, cover memo answers,
// search results) must be BIT-IDENTICAL to a from-scratch rebuild over the
// mutated instance — for any thread count. Plus the snapshot-version
// contract: a delta cannot race an exec::Sweep (suites named Exec* run
// under CI's TSan job).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/api/session.h"
#include "src/exec/sweep.h"
#include "src/relational/delta.h"
#include "src/repair/modify_fds.h"

namespace retrust {
namespace {

Schema MakeSchema(int m) {
  std::vector<Attribute> attrs(m);
  for (int a = 0; a < m; ++a) {
    attrs[a] = {"A" + std::to_string(a), AttrType::kInt};
  }
  return Schema(std::move(attrs));
}

Tuple RandomTuple(std::mt19937_64& rng, int m, int domain) {
  Tuple t(m);
  for (int a = 0; a < m; ++a) {
    t[a] = Value(static_cast<int64_t>(rng() % domain));
  }
  return t;
}

/// Small domains per attribute so FDs are genuinely violated.
Instance RandomInstance(std::mt19937_64& rng, int n, int m, int domain) {
  Instance inst(MakeSchema(m));
  for (int t = 0; t < n; ++t) inst.AddTuple(RandomTuple(rng, m, domain));
  return inst;
}

FDSet TestSigma() {
  // A0 -> A1, A2 -> A3, {A0,A2} -> A4 over a 5-attribute schema.
  FDSet sigma;
  sigma.Add(FD{AttrSet{0}, 1});
  sigma.Add(FD{AttrSet{2}, 3});
  sigma.Add(FD{AttrSet{0, 2}, 4});
  return sigma;
}

/// A random mix of inserts, updates, and (distinct) deletes.
DeltaBatch RandomDelta(std::mt19937_64& rng, int n, int m, int domain) {
  DeltaBatch delta;
  const int inserts = static_cast<int>(rng() % 4);
  for (int i = 0; i < inserts; ++i) {
    delta.Insert(RandomTuple(rng, m, domain));
  }
  if (n > 0) {
    const int updates = static_cast<int>(rng() % 4);
    for (int i = 0; i < updates; ++i) {
      delta.Update(static_cast<TupleId>(rng() % n),
                   static_cast<AttrId>(rng() % m),
                   Value(static_cast<int64_t>(rng() % domain)));
    }
    const int deletes = static_cast<int>(rng() % 3);
    std::vector<TupleId> ids(n);
    for (int t = 0; t < n; ++t) ids[t] = t;
    std::shuffle(ids.begin(), ids.end(), rng);
    for (int i = 0; i < deletes && i < n; ++i) delta.Delete(ids[i]);
  }
  return delta;
}

void ExpectIndexEqual(const DifferenceSetIndex& got,
                      const DifferenceSetIndex& want) {
  ASSERT_EQ(got.size(), want.size());
  for (int g = 0; g < got.size(); ++g) {
    EXPECT_EQ(got.group(g).diff.bits(), want.group(g).diff.bits())
        << "group " << g;
    ASSERT_EQ(got.group(g).edges.size(), want.group(g).edges.size())
        << "group " << g;
    for (size_t e = 0; e < got.group(g).edges.size(); ++e) {
      EXPECT_EQ(got.group(g).edges[e], want.group(g).edges[e])
          << "group " << g << " edge " << e;
    }
  }
}

SearchState RandomState(std::mt19937_64& rng, const StateSpace& space) {
  SearchState s(space.num_fds());
  for (int i = 0; i < space.num_fds(); ++i) {
    s.ext[i] = AttrSet(rng() & space.allowed(i).bits());
  }
  return s;
}

// --- Delta-vs-rebuild bit-identity across 1-8 threads --------------------

class IncrementalOracle : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalOracle, RandomInterleavingsMatchRebuild) {
  const int threads = GetParam();
  const int m = 5;
  const int domain = 4;
  exec::Options eopts;
  eopts.num_threads = threads;
  CardinalityWeight weights;  // instance-independent: isolates the index

  std::mt19937_64 rng(0xbe5ca1e5 + threads);
  Instance inst = RandomInstance(rng, 40, m, domain);
  EncodedInstance enc(inst);
  FDSet sigma = TestSigma();
  FdSearchContext ctx(sigma, enc, weights, {}, eopts);
  const uint64_t version0 = ctx.version();

  for (int step = 0; step < 12; ++step) {
    DeltaBatch delta = RandomDelta(rng, enc.NumTuples(), m, domain);
    DeltaPlan plan = PlanDelta(delta, enc.NumTuples(), m);
    inst.ApplyDelta(delta, plan);
    enc.ApplyDelta(delta, plan);
    ctx.ApplyDelta(enc, plan.dirty, plan.remap, eopts);

    // The encoded instance mirrors the plain one positionally.
    ASSERT_EQ(enc.NumTuples(), inst.NumTuples());
    for (TupleId t = 0; t < inst.NumTuples(); ++t) {
      for (AttrId a = 0; a < m; ++a) {
        EXPECT_EQ(enc.DecodeCell(t, a), inst.At(t, a))
            << "step " << step << " cell (" << t << ", " << a << ")";
      }
    }

    // From-scratch rebuild over the SAME mutated encoded instance, serial.
    FdSearchContext fresh(sigma, enc, weights);
    ExpectIndexEqual(ctx.index(), fresh.index());
    EXPECT_EQ(ctx.RootDeltaP(), fresh.RootDeltaP()) << "step " << step;

    // Cover answers through the (remapped) memo match a cold evaluator.
    for (int probe = 0; probe < 15; ++probe) {
      SearchState s = RandomState(rng, ctx.space());
      EXPECT_EQ(ctx.CoverSize(s, nullptr), fresh.CoverSize(s, nullptr))
          << "step " << step << " probe " << probe;
    }

    // Full searches agree move for move (visit schedules included).
    for (int64_t tau : {int64_t{0}, ctx.RootDeltaP() / 2}) {
      ModifyFdsResult got = ModifyFds(ctx, tau);
      ModifyFdsResult want = ModifyFds(fresh, tau);
      ASSERT_EQ(got.repair.has_value(), want.repair.has_value())
          << "step " << step << " tau " << tau;
      EXPECT_EQ(got.stats.states_visited, want.stats.states_visited);
      if (got.repair.has_value()) {
        EXPECT_EQ(got.repair->state.ext, want.repair->state.ext);
        EXPECT_EQ(got.repair->distc, want.repair->distc);
        EXPECT_EQ(got.repair->delta_p, want.repair->delta_p);
      }
    }
  }
  EXPECT_EQ(ctx.version(), version0 + 12);
}

INSTANTIATE_TEST_SUITE_P(Threads, IncrementalOracle,
                         ::testing::Values(1, 2, 4, 8));

// --- Edge cases ----------------------------------------------------------

TEST(IncrementalEdge, EmptyDeltaIsANoOp) {
  std::mt19937_64 rng(7);
  Result<Session> session =
      Session::Open(RandomInstance(rng, 20, 5, 3), TestSigma());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  const uint64_t version = session->DataVersion();
  const int64_t root = session->RootDeltaP();

  Result<ApplyStats> stats = session->Apply(DeltaBatch{});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->contexts_patched, 0);
  EXPECT_EQ(session->DataVersion(), version);  // empty deltas don't bump
  EXPECT_EQ(session->RootDeltaP(), root);
  EXPECT_EQ(session->instance().NumTuples(), 20);
}

TEST(IncrementalEdge, DeleteEverything) {
  std::mt19937_64 rng(11);
  Instance inst = RandomInstance(rng, 15, 5, 3);
  Result<Session> session = Session::Open(std::move(inst), TestSigma());
  ASSERT_TRUE(session.ok());
  ASSERT_GT(session->RootDeltaP(), 0);

  DeltaBatch delta;
  for (TupleId t = 0; t < 15; ++t) delta.Delete(t);
  Result<ApplyStats> stats = session->Apply(delta);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->num_tuples, 0);
  EXPECT_EQ(session->instance().NumTuples(), 0);
  EXPECT_EQ(session->RootDeltaP(), 0);

  // An empty relation satisfies everything: tau = 0 repairs with no edits.
  Result<RepairResponse> repair = session->Repair(RepairRequest::At(0));
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  EXPECT_EQ(repair->repair.changed_cells.size(), 0u);

  // And the session keeps working: refill via inserts.
  DeltaBatch refill;
  for (int i = 0; i < 10; ++i) refill.Insert(RandomTuple(rng, 5, 2));
  ASSERT_TRUE(session->Apply(refill).ok());
  EXPECT_EQ(session->instance().NumTuples(), 10);
  Result<Session> fresh = Session::Open(session->instance(), TestSigma());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(session->RootDeltaP(), fresh->RootDeltaP());
}

TEST(IncrementalEdge, InvalidDeltasRejectedBeforeMutating) {
  std::mt19937_64 rng(13);
  Result<Session> session =
      Session::Open(RandomInstance(rng, 10, 5, 3), TestSigma());
  ASSERT_TRUE(session.ok());
  const int64_t root = session->RootDeltaP();
  const uint64_t version = session->DataVersion();

  DeltaBatch bad_delete;
  bad_delete.Delete(10);
  EXPECT_EQ(session->Apply(bad_delete).status().code(),
            StatusCode::kInvalidArgument);

  DeltaBatch dup_delete;
  dup_delete.Delete(3).Delete(3);
  EXPECT_EQ(session->Apply(dup_delete).status().code(),
            StatusCode::kInvalidArgument);

  DeltaBatch bad_update;
  bad_update.Update(2, 99, Value(int64_t{1}));
  EXPECT_EQ(session->Apply(bad_update).status().code(),
            StatusCode::kInvalidArgument);

  DeltaBatch bad_arity;
  bad_arity.Insert(Tuple(3));
  EXPECT_EQ(session->Apply(bad_arity).status().code(),
            StatusCode::kInvalidArgument);

  // A delta that mixes valid and invalid entries must not half-apply.
  DeltaBatch mixed;
  mixed.Insert(RandomTuple(rng, 5, 3)).Delete(42);
  EXPECT_EQ(session->Apply(mixed).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session->instance().NumTuples(), 10);
  EXPECT_EQ(session->RootDeltaP(), root);
  EXPECT_EQ(session->DataVersion(), version);
}

// --- Session-level oracle: Apply == fresh Open over the mutated data -----

TEST(IncrementalSession, ApplyMatchesFreshOpen) {
  std::mt19937_64 rng(0x5e55);
  Result<Session> session =
      Session::Open(RandomInstance(rng, 30, 5, 3), TestSigma());
  ASSERT_TRUE(session.ok());
  // Warm the context (memo entries that Apply must remap or drop).
  ASSERT_TRUE(session->Repair(RepairRequest::AtRelative(0.5)).ok());

  for (int step = 0; step < 6; ++step) {
    DeltaBatch delta =
        RandomDelta(rng, session->instance().NumTuples(), 5, 3);
    Result<ApplyStats> stats = session->Apply(delta);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();

    Result<Session> fresh = Session::Open(session->instance(), TestSigma());
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(session->RootDeltaP(), fresh->RootDeltaP()) << "step " << step;

    for (double tau_r : {0.0, 0.4, 1.0}) {
      Result<RepairResponse> got =
          session->Repair(RepairRequest::AtRelative(tau_r));
      Result<RepairResponse> want =
          fresh->Repair(RepairRequest::AtRelative(tau_r));
      ASSERT_EQ(got.ok(), want.ok())
          << "step " << step << " tau_r " << tau_r;
      if (!got.ok()) {
        EXPECT_EQ(got.status().code(), want.status().code());
        continue;
      }
      EXPECT_EQ(got->tau, want->tau);
      EXPECT_EQ(got->repair.sigma_prime.ToString(session->schema()),
                want->repair.sigma_prime.ToString(session->schema()));
      EXPECT_EQ(got->repair.distc, want->repair.distc);
      EXPECT_EQ(got->repair.delta_p, want->repair.delta_p);
      EXPECT_EQ(got->repair.data.Decode().ToTable(),
                want->repair.data.Decode().ToTable());
    }
  }
}

TEST(IncrementalSession, ApplyPatchesEveryCachedContext) {
  std::mt19937_64 rng(0xcafe);
  Result<Session> session =
      Session::Open(RandomInstance(rng, 25, 5, 3), TestSigma());
  ASSERT_TRUE(session.ok());
  // Cache a second context, then switch back: two live fingerprints.
  FDSet alt;
  alt.Add(FD{AttrSet{1}, 2});
  ASSERT_TRUE(session->SetFds(alt).ok());
  ASSERT_TRUE(session->SetFds(TestSigma()).ok());
  ASSERT_EQ(session->CachedContexts().cached, 2u);

  DeltaBatch delta;
  for (int i = 0; i < 5; ++i) delta.Insert(RandomTuple(rng, 5, 2));
  Result<ApplyStats> stats = session->Apply(delta);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->contexts_patched, 2);

  // BOTH contexts must answer for the post-delta data — switching Σ after
  // the delta reuses the patched cache, matching a fresh session.
  ASSERT_TRUE(session->SetFds(alt).ok());
  Result<Session> fresh = Session::Open(session->instance(), alt);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(session->RootDeltaP(), fresh->RootDeltaP());
  EXPECT_EQ(session->CachedContexts().cached, 2u);  // reused, not rebuilt
}

// --- Snapshot versioning vs exec::Sweep (Exec* => runs under TSan) -------

TEST(ExecIncrementalVersion, StaleSweepRefusesToRun) {
  std::mt19937_64 rng(3);
  Instance inst = RandomInstance(rng, 20, 5, 3);
  EncodedInstance enc(inst);
  CardinalityWeight weights;
  FDSet sigma = TestSigma();
  FdSearchContext ctx(sigma, enc, weights);
  exec::Sweep sweep(ctx, enc);
  ASSERT_EQ(sweep.pinned_version(), ctx.version());
  ASSERT_EQ(sweep.RunSearches({int64_t{0}, ctx.RootDeltaP()}).size(), 2u);

  DeltaBatch delta;
  delta.Insert(RandomTuple(rng, 5, 3));
  DeltaPlan plan = PlanDelta(delta, enc.NumTuples(), 5);
  inst.ApplyDelta(delta, plan);
  enc.ApplyDelta(delta, plan);
  ctx.ApplyDelta(enc, plan.dirty, plan.remap);

  // The sweep's pinned snapshot is gone: running would mix pre- and
  // post-delta state, so it must throw until Refresh() re-pins.
  EXPECT_THROW(sweep.RunSearches(std::vector<int64_t>{0}), std::logic_error);
  std::vector<exec::SweepJob> jobs(1);
  EXPECT_THROW(sweep.RunRepairs(jobs), std::logic_error);
  sweep.Refresh();
  EXPECT_EQ(sweep.RunSearches(std::vector<int64_t>{0}).size(), 1u);
}

TEST(ExecIncrementalVersion, SessionBatchesWorkAcrossApplies) {
  std::mt19937_64 rng(5);
  Result<Session> session =
      Session::Open(RandomInstance(rng, 20, 5, 3), TestSigma());
  ASSERT_TRUE(session.ok());
  std::vector<RepairRequest> reqs = {RepairRequest::AtRelative(1.0),
                                     RepairRequest::AtRelative(0.5)};
  for (int round = 0; round < 3; ++round) {
    // The facade refreshes every sweep pin inside Apply, so batches keep
    // running after each delta.
    for (const Result<RepairResponse>& r : session->RepairMany(reqs)) {
      ASSERT_TRUE(r.ok() ||
                  r.status().code() == StatusCode::kNoRepairWithinTau);
    }
    DeltaBatch delta = RandomDelta(rng, session->instance().NumTuples(),
                                   5, 3);
    ASSERT_TRUE(session->Apply(delta).ok());
  }
}

TEST(ExecIncrementalVersion, ConcurrentAppliesAndRequestsStayConsistent) {
  std::mt19937_64 rng(9);
  SessionOptions opts;
  opts.exec.num_threads = 2;
  Result<Session> session =
      Session::Open(RandomInstance(rng, 25, 5, 3), TestSigma(), opts);
  ASSERT_TRUE(session.ok());

  // Reader threads hammer batched requests while a writer thread applies
  // deltas: the snapshot lock serializes them, so every request must
  // observe a coherent state (no throws, no torn answers). Iteration
  // counts are fixed — glibc's shared_mutex favors readers, so an
  // unbounded reader loop could starve the writer indefinitely.
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int r = 0; r < 3; ++r) {
    workers.emplace_back([&] {
      std::vector<RepairRequest> reqs = {RepairRequest::AtRelative(1.0),
                                         RepairRequest::AtRelative(0.3)};
      for (int i = 0; i < 20; ++i) {
        for (const Result<RepairResponse>& resp : session->RepairMany(reqs)) {
          if (!resp.ok() &&
              resp.status().code() != StatusCode::kNoRepairWithinTau) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  workers.emplace_back([&] {
    std::mt19937_64 writer_rng(17);
    for (int step = 0; step < 10; ++step) {
      DeltaBatch delta = RandomDelta(writer_rng,
                                     session->instance().NumTuples(), 5, 3);
      Result<ApplyStats> stats = session->Apply(delta);
      if (!stats.ok()) failures.fetch_add(1);
    }
  });
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0);

  Result<Session> fresh = Session::Open(session->instance(), TestSigma());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(session->RootDeltaP(), fresh->RootDeltaP());
}

}  // namespace
}  // namespace retrust
