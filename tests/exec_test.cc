// Tests for the exec/ primitives: pool lifecycle, exception propagation,
// and ParallelFor static-chunking edge cases.

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "src/exec/parallel_for.h"
#include "src/exec/sweep.h"
#include "src/exec/thread_pool.h"

namespace retrust {
namespace {

TEST(ExecOptions, ResolvedThreads) {
  EXPECT_EQ(exec::Options{}.ResolvedThreads(), 1);
  EXPECT_EQ(exec::Options{4}.ResolvedThreads(), 4);
  EXPECT_GE(exec::Options{0}.ResolvedThreads(), 1);  // hardware concurrency
  EXPECT_EQ(exec::Options{-3}.ResolvedThreads(), 1);
  EXPECT_FALSE(exec::Options{1}.Parallel());
  EXPECT_TRUE(exec::Options{2}.Parallel());
}

TEST(ThreadPool, LifecycleRepeated) {
  // Construction spawns workers, destruction joins them; no tasks needed.
  for (int round = 0; round < 8; ++round) {
    exec::ThreadPool pool(3);
    EXPECT_EQ(pool.num_threads(), 3);
  }
}

TEST(ThreadPool, ClampsToAtLeastOneWorker) {
  exec::ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
}

TEST(ThreadPool, MakePoolSerialIsNull) {
  EXPECT_EQ(exec::MakePool({1}), nullptr);
  EXPECT_NE(exec::MakePool({2}), nullptr);
}

TEST(TaskGroup, RunsEveryTaskExactlyOnce) {
  exec::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  exec::TaskGroup group(&pool);
  for (int i = 0; i < 64; ++i) {
    group.Run([&hits, i] { ++hits[i]; });
  }
  group.Wait();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(TaskGroup, RethrowsEarliestSubmittedException) {
  exec::ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    exec::TaskGroup group(&pool);
    for (int i = 0; i < 16; ++i) {
      group.Run([i] {
        if (i == 3) throw std::runtime_error("task 3");
        if (i == 11) throw std::runtime_error("task 11");
      });
    }
    try {
      group.Wait();
      FAIL() << "expected Wait to rethrow";
    } catch (const std::runtime_error& e) {
      // Both tasks threw; the earliest submission index must win no matter
      // which worker finished first.
      EXPECT_STREQ(e.what(), "task 3");
    }
  }
}

TEST(TaskGroup, InlineWithoutPool) {
  exec::TaskGroup group(nullptr);
  int ran = 0;
  group.Run([&ran] { ++ran; });
  group.Wait();
  EXPECT_EQ(ran, 1);
}

TEST(ParallelFor, EmptyRangeNeverCallsBody) {
  exec::ThreadPool pool(4);
  std::atomic<int> calls{0};
  exec::ParallelFor(&pool, 0,
                    [&](int64_t, int64_t, int) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  exec::ChunkPlan plan = exec::PlanChunks(0, &pool);
  EXPECT_EQ(plan.num_chunks, 0);
}

TEST(ParallelFor, RangeSmallerThanThreads) {
  exec::ThreadPool pool(8);
  // 3 items on 8 threads: never more chunks than items, every index
  // covered exactly once.
  exec::ChunkPlan plan = exec::PlanChunks(3, &pool);
  EXPECT_LE(plan.num_chunks, 3);
  std::vector<std::atomic<int>> hits(3);
  exec::ParallelFor(&pool, plan, [&](int64_t begin, int64_t end, int) {
    for (int64_t i = begin; i < end; ++i) ++hits[i];
  });
  for (int i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, ChunksPartitionTheRange) {
  exec::ThreadPool pool(4);
  for (int64_t n : {1, 2, 7, 100, 1001}) {
    exec::ChunkPlan plan = exec::PlanChunks(n, &pool);
    ASSERT_GE(plan.num_chunks, 1);
    // Contiguous, disjoint, covering: chunk c ends where c+1 begins.
    EXPECT_EQ(plan.Begin(0), 0);
    EXPECT_EQ(plan.End(plan.num_chunks - 1), n);
    for (int c = 0; c + 1 < plan.num_chunks; ++c) {
      EXPECT_EQ(plan.End(c), plan.Begin(c + 1));
      EXPECT_LT(plan.Begin(c), plan.End(c));  // no empty chunks
    }
  }
}

TEST(ParallelFor, SerialOnNullPool) {
  std::vector<int> order;
  exec::ParallelFor(nullptr, 10, [&](int64_t begin, int64_t end, int chunk) {
    EXPECT_EQ(chunk, 0);  // serial fallback runs one chunk
    for (int64_t i = begin; i < end; ++i) order.push_back(static_cast<int>(i));
  });
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, PropagatesLowestChunkException) {
  exec::ThreadPool pool(4);
  try {
    exec::ParallelFor(&pool, exec::PlanChunks(100, &pool),
                      [&](int64_t, int64_t, int chunk) {
                        if (chunk >= 1) {
                          throw std::runtime_error(
                              "chunk " + std::to_string(chunk));
                        }
                      });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 1");
  }
}

TEST(ParallelFor, NestedCallRunsInlineWithoutDeadlock) {
  exec::ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  // Each outer chunk starts a nested ParallelFor on the same pool; the
  // nesting guard must run it inline instead of deadlocking on the queue.
  exec::ParallelFor(&pool, 4, [&](int64_t begin, int64_t end, int) {
    for (int64_t i = begin; i < end; ++i) {
      exec::ParallelFor(&pool, 5, [&](int64_t b, int64_t e, int) {
        inner_total += static_cast<int>(e - b);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 4 * 5);
}

}  // namespace
}  // namespace retrust
