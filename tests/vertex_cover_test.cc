#include "src/graph/vertex_cover.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace retrust {
namespace {

Graph Path4() {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  return g;
}

TEST(GreedyVertexCover, CoversEveryEdge) {
  Graph g = Path4();
  auto cover = GreedyVertexCover(g);
  EXPECT_TRUE(IsVertexCover(g, cover));
  // Matching-based: takes both endpoints of (0,1) and (2,3).
  EXPECT_EQ(cover, (std::vector<int32_t>{0, 1, 2, 3}));
}

TEST(GreedyVertexCover, EmptyGraph) {
  EXPECT_TRUE(GreedyVertexCover(Graph(5)).empty());
}

TEST(MaxDegreeVertexCover, PrefersHubs) {
  Graph star(5);
  for (int i = 1; i < 5; ++i) star.AddEdge(0, i);
  auto cover = MaxDegreeVertexCover(star);
  EXPECT_EQ(cover, std::vector<int32_t>{0});
  EXPECT_TRUE(IsVertexCover(star, cover));
}

TEST(MaxDegreeVertexCover, MatchesPaperFig3Covers) {
  // Path t1-t2-t3-t4: the paper's C2opt is {t2, t3}.
  auto cover = MaxDegreeVertexCover(Path4());
  EXPECT_EQ(cover, (std::vector<int32_t>{1, 2}));
  // Path t1-t2-t3: the paper's C2opt is {t2}.
  Graph p3(3);
  p3.AddEdge(0, 1);
  p3.AddEdge(1, 2);
  EXPECT_EQ(MaxDegreeVertexCover(p3), std::vector<int32_t>{1});
}

TEST(ExactMinVertexCover, SmallGraphs) {
  EXPECT_EQ(ExactMinVertexCoverSize(Path4()), 2);
  Graph star(5);
  for (int i = 1; i < 5; ++i) star.AddEdge(0, i);
  EXPECT_EQ(ExactMinVertexCoverSize(star), 1);
  Graph triangle(3);
  triangle.AddEdge(0, 1);
  triangle.AddEdge(1, 2);
  triangle.AddEdge(0, 2);
  EXPECT_EQ(ExactMinVertexCoverSize(triangle), 2);
  EXPECT_EQ(ExactMinVertexCoverSize(Graph(3)), 0);
  EXPECT_THROW(ExactMinVertexCoverSize(Graph(100)), std::invalid_argument);
}

TEST(MatchingCoverScratch, MatchesGreedyOnEdgeList) {
  Graph g = Path4();
  MatchingCoverScratch scratch(4);
  EXPECT_EQ(scratch.CoverSize(g.edges()), 4);
  // Two-list variant.
  std::vector<Edge> a = {Edge(0, 1)};
  std::vector<Edge> b = {Edge(2, 3)};
  EXPECT_EQ(scratch.CoverSize(a, b), 4);
  std::vector<Edge> overlapping = {Edge(0, 1), Edge(1, 2)};
  EXPECT_EQ(scratch.CoverSize(overlapping), 2);
  // Epoch reset: reusing the scratch does not leak coverage.
  EXPECT_EQ(scratch.CoverSize(overlapping), 2);
}

TEST(IsVertexCover, DetectsGaps) {
  Graph g = Path4();
  EXPECT_FALSE(IsVertexCover(g, {0}));
  EXPECT_TRUE(IsVertexCover(g, {1, 2}));
  EXPECT_TRUE(IsVertexCover(g, {0, 1, 2, 3}));
}

// Property: greedy cover is a cover and within 2x of the exact minimum.
class VertexCoverProperty : public ::testing::TestWithParam<int> {};

TEST_P(VertexCoverProperty, TwoApproximation) {
  Rng rng(GetParam());
  int n = 8 + static_cast<int>(rng.NextUint(8));
  Graph g(n);
  int edges = 5 + static_cast<int>(rng.NextUint(20));
  for (int i = 0; i < edges; ++i) {
    int u = static_cast<int>(rng.NextUint(n));
    int v = static_cast<int>(rng.NextUint(n));
    if (u != v) g.AddEdge(u, v);
  }
  auto greedy = GreedyVertexCover(g);
  auto maxdeg = MaxDegreeVertexCover(g);
  int32_t exact = ExactMinVertexCoverSize(g);
  EXPECT_TRUE(IsVertexCover(g, greedy));
  EXPECT_TRUE(IsVertexCover(g, maxdeg));
  EXPECT_GE(static_cast<int32_t>(greedy.size()), exact);
  EXPECT_LE(static_cast<int32_t>(greedy.size()), 2 * exact);
  EXPECT_GE(static_cast<int32_t>(maxdeg.size()), exact);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VertexCoverProperty,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace retrust
