#include "src/fd/violation.h"

#include <gtest/gtest.h>

namespace retrust {
namespace {

// Figure 2's instance: A B C D over 4 tuples.
Instance Fig2() {
  Instance inst(Schema::FromNames({"A", "B", "C", "D"}));
  auto add = [&](const char* a, const char* b, const char* c,
                 const char* d) {
    inst.AddTuple({Value(a), Value(b), Value(c), Value(d)});
  };
  add("1", "1", "1", "1");
  add("1", "2", "1", "3");
  add("2", "2", "1", "1");
  add("2", "3", "4", "3");
  return inst;
}

TEST(Violation, SatisfiesSingleFd) {
  EncodedInstance enc(Fig2());
  Schema s = Fig2().schema();
  EXPECT_FALSE(Satisfies(enc, FD::Parse("A->B", s)));
  EXPECT_FALSE(Satisfies(enc, FD::Parse("C->D", s)));
  EXPECT_TRUE(Satisfies(enc, FD::Parse("A,D->B", s)));
  EXPECT_TRUE(Satisfies(enc, FD::Parse("A,B->C", s)));
}

TEST(Violation, TrivialFdAlwaysSatisfied) {
  EncodedInstance enc(Fig2());
  EXPECT_TRUE(Satisfies(enc, FD(AttrSet{0, 1}, 0)));
}

TEST(Violation, EmptyLhsMeansConstantAttribute) {
  Instance inst(Schema::FromNames({"A", "B"}));
  inst.AddTuple({Value("1"), Value("x")});
  inst.AddTuple({Value("2"), Value("x")});
  EncodedInstance enc(inst);
  EXPECT_TRUE(Satisfies(enc, FD(AttrSet(), 1)));   // B constant
  EXPECT_FALSE(Satisfies(enc, FD(AttrSet(), 0)));  // A not constant
}

TEST(Violation, SatisfiesFdSet) {
  EncodedInstance enc(Fig2());
  Schema s = Fig2().schema();
  EXPECT_FALSE(Satisfies(enc, FDSet::Parse({"A,B->C", "A->B"}, s)));
  EXPECT_TRUE(Satisfies(enc, FDSet::Parse({"A,B->C", "A,D->B"}, s)));
  EXPECT_TRUE(Satisfies(enc, FDSet()));
}

TEST(Violation, ViolatingPairsMatchFig2) {
  EncodedInstance enc(Fig2());
  Schema s = Fig2().schema();
  // A->B is violated by (t1,t2) and (t3,t4): indices (0,1) and (2,3).
  EXPECT_EQ(ViolatingPairs(enc, FD::Parse("A->B", s)),
            (std::vector<Edge>{{0, 1}, {2, 3}}));
  // C->D is violated by (t1,t2), (t2,t3): indices (0,1), (1,2).
  EXPECT_EQ(ViolatingPairs(enc, FD::Parse("C->D", s)),
            (std::vector<Edge>{{0, 1}, {1, 2}}));
  EXPECT_TRUE(ViolatingPairs(enc, FD::Parse("A,D->B", s)).empty());
}

TEST(Violation, VariablesNeverMatchConstantsInLhs) {
  Instance inst(Schema::FromNames({"A", "B"}));
  inst.AddTuple({Value("1"), Value("x")});
  inst.AddTuple({inst.NewVariable(0), Value("y")});
  EncodedInstance enc(inst);
  // The variable A-value matches nothing, so A->B holds.
  EXPECT_TRUE(Satisfies(enc, FD(AttrSet{0}, 1)));
}

TEST(Violation, SharedVariableMatchesItself) {
  Instance inst(Schema::FromNames({"A", "B"}));
  Value v = inst.NewVariable(0);
  inst.AddTuple({v, Value("x")});
  inst.AddTuple({v, Value("y")});
  EncodedInstance enc(inst);
  // Both tuples hold the SAME variable: they agree on A, differ on B.
  EXPECT_FALSE(Satisfies(enc, FD(AttrSet{0}, 1)));
}

TEST(Violation, VariableRhsCountsAsDifferent) {
  Instance inst(Schema::FromNames({"A", "B"}));
  inst.AddTuple({Value("1"), Value("x")});
  inst.AddTuple({Value("1"), inst.NewVariable(1)});
  EncodedInstance enc(inst);
  // Same LHS, RHS variable != constant: violation.
  EXPECT_FALSE(Satisfies(enc, FD(AttrSet{0}, 1)));
}

TEST(Violation, CountViolatingTuples) {
  EncodedInstance enc(Fig2());
  Schema s = Fig2().schema();
  // A->B involves t1,t2,t3,t4; C->D involves t1,t2,t3.
  EXPECT_EQ(CountViolatingTuples(enc, FDSet::Parse({"A->B"}, s)), 4);
  EXPECT_EQ(CountViolatingTuples(enc, FDSet::Parse({"C->D"}, s)), 3);
  EXPECT_EQ(CountViolatingTuples(enc, FDSet::Parse({"A->B", "C->D"}, s)), 4);
  EXPECT_EQ(CountViolatingTuples(enc, FDSet::Parse({"A,D->B"}, s)), 0);
}

}  // namespace
}  // namespace retrust
