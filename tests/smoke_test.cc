// End-to-end smoke test: the paper's running example (Figure 2) from raw
// values to a τ-constrained repair.

#include <gtest/gtest.h>

#include "src/eval/experiment.h"

namespace retrust {
namespace {

// The 4-tuple instance of Figure 2 with Σ = {A->B, C->D}.
Instance Fig2Instance() {
  Schema schema(std::vector<Attribute>{{"A", AttrType::kInt},
                                       {"B", AttrType::kInt},
                                       {"C", AttrType::kInt},
                                       {"D", AttrType::kInt}});
  Instance inst(schema);
  inst.AddTuple({Value(int64_t{1}), Value(int64_t{1}), Value(int64_t{1}),
                 Value(int64_t{1})});
  inst.AddTuple({Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{1}),
                 Value(int64_t{3})});
  inst.AddTuple({Value(int64_t{2}), Value(int64_t{2}), Value(int64_t{1}),
                 Value(int64_t{1})});
  inst.AddTuple({Value(int64_t{2}), Value(int64_t{3}), Value(int64_t{4}),
                 Value(int64_t{3})});
  return inst;
}

TEST(Smoke, Fig2EndToEnd) {
  Instance inst = Fig2Instance();
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, inst.schema());
  EncodedInstance enc(inst);
  EXPECT_FALSE(Satisfies(enc, sigma));

  CardinalityWeight w;
  auto repair = RepairDataAndFds(sigma, enc, /*tau=*/2, w);
  ASSERT_TRUE(repair.has_value());
  EXPECT_TRUE(Satisfies(repair->data, repair->sigma_prime));
  EXPECT_LE(static_cast<int64_t>(repair->changed_cells.size()), 2);
}

}  // namespace
}  // namespace retrust
