#include "src/fd/conflict_graph.h"

#include <gtest/gtest.h>

#include "src/graph/vertex_cover.h"

namespace retrust {
namespace {

Instance Fig2() {
  Instance inst(Schema::FromNames({"A", "B", "C", "D"}));
  auto add = [&](const char* a, const char* b, const char* c,
                 const char* d) {
    inst.AddTuple({Value(a), Value(b), Value(c), Value(d)});
  };
  add("1", "1", "1", "1");
  add("1", "2", "1", "3");
  add("2", "2", "1", "1");
  add("2", "3", "4", "3");
  return inst;
}

TEST(ConflictGraph, Fig2EdgesAndLabels) {
  EncodedInstance enc(Fig2());
  Schema s = Fig2().schema();
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, s);
  ConflictGraph cg = BuildConflictGraph(enc, sigma);
  // Figure 2: edges (t1,t2), (t2,t3), (t3,t4).
  ASSERT_EQ(cg.num_edges(), 3u);
  EXPECT_EQ(cg.graph.edges()[0], Edge(0, 1));
  EXPECT_EQ(cg.graph.edges()[1], Edge(1, 2));
  EXPECT_EQ(cg.graph.edges()[2], Edge(2, 3));
  // Labels: (t1,t2) violates both; (t2,t3) violates C->D; (t3,t4) A->B.
  EXPECT_EQ(cg.edge_fd_mask[0], 0b11u);
  EXPECT_EQ(cg.edge_fd_mask[1], 0b10u);
  EXPECT_EQ(cg.edge_fd_mask[2], 0b01u);
}

// The Figure 3 table: per relaxation Σ', the conflict-graph edges, the
// 2-approximate cover, and δP(Σ', I) with α = min(|R|-1, |Σ|) = 2.
struct Fig3Row {
  std::vector<std::string> fds;
  std::vector<Edge> edges;
  int64_t cover_size;
  int64_t delta_p;
};

class Fig3Table : public ::testing::TestWithParam<Fig3Row> {};

TEST_P(Fig3Table, MatchesPaper) {
  EncodedInstance enc(Fig2());
  Schema s = Fig2().schema();
  FDSet sigma = FDSet::Parse(GetParam().fds, s);
  ConflictGraph cg = BuildConflictGraph(enc, sigma);
  EXPECT_EQ(cg.graph.edges(), GetParam().edges);
  auto cover = GreedyVertexCover(cg.graph);
  EXPECT_EQ(static_cast<int64_t>(cover.size()), GetParam().cover_size);
  int64_t alpha = std::min<int64_t>(4 - 1, 2);
  EXPECT_EQ(alpha * static_cast<int64_t>(cover.size()), GetParam().delta_p);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, Fig3Table,
    ::testing::Values(
        // Σ' rows and edge sets exactly as in Figure 3. Cover sizes differ
        // from the paper's table: the paper's worked example shows optimal
        // covers ({t2,t3}, {t2}, ...) as produced by a max-degree greedy,
        // while the matching-based greedy (the one carrying the
        // 2-approximation guarantee of [7], used by the algorithms here)
        // takes both endpoints of each matched edge. See DESIGN.md.
        Fig3Row{{"A->B", "C->D"}, {{0, 1}, {1, 2}, {2, 3}}, 4, 8},
        Fig3Row{{"C,A->B", "C->D"}, {{0, 1}, {1, 2}}, 2, 4},
        Fig3Row{{"D,A->B", "C->D"}, {{0, 1}, {1, 2}}, 2, 4},
        Fig3Row{{"A->B", "A,C->D"}, {{0, 1}, {2, 3}}, 4, 8},
        Fig3Row{{"A->B", "B,C->D"}, {{0, 1}, {1, 2}, {2, 3}}, 4, 8},
        Fig3Row{{"C,A->B", "A,C->D"}, {{0, 1}}, 2, 4}));

TEST(ConflictGraph, RelaxationNeverAddsEdges) {
  EncodedInstance enc(Fig2());
  Schema s = Fig2().schema();
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, s);
  ConflictGraph base = BuildConflictGraph(enc, sigma);
  for (const char* ext_fd :
       {"C,A->B", "D,A->B"}) {
    FDSet relaxed = FDSet::Parse({ext_fd, "C->D"}, s);
    ConflictGraph cg = BuildConflictGraph(enc, relaxed);
    for (const Edge& e : cg.graph.edges()) {
      bool in_base = false;
      for (const Edge& b : base.graph.edges()) in_base |= (b == e);
      EXPECT_TRUE(in_base) << "relaxation introduced edge";
    }
  }
}

TEST(ConflictGraph, EmptyWhenSatisfied) {
  EncodedInstance enc(Fig2());
  Schema s = Fig2().schema();
  ConflictGraph cg =
      BuildConflictGraph(enc, FDSet::Parse({"A,D->B"}, s));
  EXPECT_EQ(cg.num_edges(), 0u);
}

TEST(ConflictGraph, RejectsTooManyFds) {
  EncodedInstance enc(Fig2());
  std::vector<FD> many(65, FD(AttrSet{0}, 1));
  EXPECT_THROW(BuildConflictGraph(enc, FDSet(many)), std::invalid_argument);
}

}  // namespace
}  // namespace retrust
