#include "src/relational/schema.h"

#include <gtest/gtest.h>

namespace retrust {
namespace {

Schema Abc() {
  return Schema({{"A", AttrType::kInt},
                 {"B", AttrType::kString},
                 {"C", AttrType::kDouble}});
}

TEST(Schema, BasicAccessors) {
  Schema s = Abc();
  EXPECT_EQ(s.NumAttrs(), 3);
  EXPECT_EQ(s.name(0), "A");
  EXPECT_EQ(s.name(2), "C");
  EXPECT_EQ(s.type(0), AttrType::kInt);
  EXPECT_EQ(s.type(1), AttrType::kString);
  EXPECT_EQ(s.Names(), (std::vector<std::string>{"A", "B", "C"}));
}

TEST(Schema, Find) {
  Schema s = Abc();
  EXPECT_EQ(s.Find("A"), 0);
  EXPECT_EQ(s.Find("C"), 2);
  EXPECT_EQ(s.Find("missing"), -1);
}

TEST(Schema, Resolve) {
  Schema s = Abc();
  EXPECT_EQ(s.Resolve({"A", "C"}), (AttrSet{0, 2}));
  EXPECT_EQ(s.Resolve({}), AttrSet());
  EXPECT_THROW(s.Resolve({"nope"}), std::invalid_argument);
}

TEST(Schema, Universe) {
  EXPECT_EQ(Abc().Universe(), AttrSet::Universe(3));
}

TEST(Schema, FromNamesDefaultsToString) {
  Schema s = Schema::FromNames({"x", "y"});
  EXPECT_EQ(s.NumAttrs(), 2);
  EXPECT_EQ(s.type(0), AttrType::kString);
}

TEST(Schema, RejectsDuplicateNames) {
  EXPECT_THROW(Schema::FromNames({"a", "a"}), std::invalid_argument);
}

TEST(Schema, RejectsTooManyAttrs) {
  std::vector<std::string> names;
  for (int i = 0; i < 65; ++i) names.push_back("a" + std::to_string(i));
  EXPECT_THROW(Schema::FromNames(names), std::invalid_argument);
}

TEST(Schema, Equality) {
  EXPECT_TRUE(Abc() == Abc());
  Schema other({{"A", AttrType::kInt}, {"B", AttrType::kString}});
  EXPECT_FALSE(Abc() == other);
  Schema type_diff({{"A", AttrType::kDouble},
                    {"B", AttrType::kString},
                    {"C", AttrType::kDouble}});
  EXPECT_FALSE(Abc() == type_diff);
}

}  // namespace
}  // namespace retrust
