#include "src/fd/partition.h"

#include <gtest/gtest.h>

namespace retrust {
namespace {

Instance Sample() {
  // A B C
  // 1 1 1
  // 1 2 1
  // 2 2 1
  // 2 2 2
  Instance inst(Schema::FromNames({"A", "B", "C"}));
  auto add = [&](const char* a, const char* b, const char* c) {
    inst.AddTuple({Value(a), Value(b), Value(c)});
  };
  add("1", "1", "1");
  add("1", "2", "1");
  add("2", "2", "1");
  add("2", "2", "2");
  return inst;
}

TEST(Partition, ByOneAttribute) {
  EncodedInstance enc(Sample());
  Partition p = PartitionBy(enc, AttrSet{0});
  EXPECT_EQ(p.num_classes, 2);
  EXPECT_EQ(p.labels[0], p.labels[1]);
  EXPECT_EQ(p.labels[2], p.labels[3]);
  EXPECT_NE(p.labels[0], p.labels[2]);
  EXPECT_EQ(p.Error(), 2);  // 4 tuples - 2 classes
}

TEST(Partition, ByEmptySetIsSingleClass) {
  EncodedInstance enc(Sample());
  Partition p = PartitionBy(enc, AttrSet());
  EXPECT_EQ(p.num_classes, 1);
  EXPECT_EQ(p.Error(), 3);
}

TEST(Partition, ByAllAttributes) {
  EncodedInstance enc(Sample());
  Partition p = PartitionBy(enc, AttrSet{0, 1, 2});
  EXPECT_EQ(p.num_classes, 4);
  EXPECT_EQ(p.Error(), 0);
}

TEST(Partition, RefineMatchesDirectPartition) {
  EncodedInstance enc(Sample());
  Partition pa = PartitionBy(enc, AttrSet{0});
  Partition pab = Refine(enc, pa, 1);
  Partition direct = PartitionBy(enc, AttrSet{0, 1});
  EXPECT_EQ(pab.num_classes, direct.num_classes);
  EXPECT_EQ(pab.Error(), direct.Error());
}

TEST(Partition, StrippedClassesDropSingletons) {
  EncodedInstance enc(Sample());
  Partition p = PartitionBy(enc, AttrSet{0, 1});
  // Classes: {t0}, {t1}, {t2,t3} -> stripped keeps one class of size 2.
  auto stripped = p.StrippedClasses();
  ASSERT_EQ(stripped.size(), 1u);
  EXPECT_EQ(stripped[0], (std::vector<TupleId>{2, 3}));
}

TEST(Partition, HoldsExactly) {
  EncodedInstance enc(Sample());
  // A -> C? classes of A: {t0,t1} C=1,1 ok; {t2,t3} C=1,2 no.
  EXPECT_FALSE(HoldsExactly(enc, AttrSet{0}, 2));
  // AB -> C? {t2,t3} still split: no.
  EXPECT_FALSE(HoldsExactly(enc, AttrSet{0, 1}, 2));
  // C -> A? C=1: A=1,1,2 no.
  EXPECT_FALSE(HoldsExactly(enc, AttrSet{2}, 0));
  // A -> nothing else holds; but AC -> B? classes {t0,t1} (A=1,C=1): B=1,2
  // no. Try B -> ... B=2: A=1,2,2 no. AB -> itself trivially: skip.
  // ABC superkey: ABC -> anything holds.
  EXPECT_TRUE(HoldsExactly(enc, AttrSet{0, 1, 2}, 0));
  // Planted: attribute C equals 1 unless (A,B) = (2,2)&row4 — no clean FD
  // here; verify one that DOES hold: does B=1 only when A=1? B -> A fails
  // (checked); A -> B fails; but {A,C} -> B? classes: (1,1):{t0,t1} B=1,2
  // fails. So assert a known-true one on a constant column:
  Instance with_const(Schema::FromNames({"X", "Y"}));
  with_const.AddTuple({Value("1"), Value("k")});
  with_const.AddTuple({Value("2"), Value("k")});
  EncodedInstance enc2(with_const);
  EXPECT_TRUE(HoldsExactly(enc2, AttrSet(), 1));   // Y is constant
  EXPECT_FALSE(HoldsExactly(enc2, AttrSet(), 0));  // X is not
  EXPECT_TRUE(HoldsExactly(enc2, AttrSet{0}, 1));
}

}  // namespace
}  // namespace retrust
