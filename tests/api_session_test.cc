// retrust::Session — the public facade: open/validation errors, the oracle
// equivalence against the internal RepairDataAndFds layer, context-cache
// reuse across SetFds switches, batched requests, budgets, and cooperative
// cancellation.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "src/api/session.h"
#include "src/eval/generator.h"
#include "src/eval/perturb.h"

namespace retrust {
namespace {

/// The quickstart table: City -> Zip violated by Carol's Zip.
Instance SmallInstance() {
  Schema schema(std::vector<Attribute>{{"Name", AttrType::kString},
                                       {"City", AttrType::kString},
                                       {"Zip", AttrType::kString}});
  Instance inst(schema);
  inst.AddTuple({Value("Alice"), Value("Springfield"), Value("11111")});
  inst.AddTuple({Value("Bob"), Value("Springfield"), Value("11111")});
  inst.AddTuple({Value("Carol"), Value("Springfield"), Value("22222")});
  inst.AddTuple({Value("Dave"), Value("Shelbyville"), Value("33333")});
  return inst;
}

/// A perturbed census-like workload plus everything the INTERNAL layer
/// needs to serve as the oracle for the facade.
struct OracleData {
  Instance dirty;
  FDSet sigma;
  std::unique_ptr<EncodedInstance> encoded;
  std::unique_ptr<DistinctCountWeight> weights;
  std::unique_ptr<FdSearchContext> context;
};

OracleData MakeOracleData(int num_tuples = 300) {
  CensusConfig gen;
  gen.num_tuples = num_tuples;
  gen.num_attrs = 10;
  gen.planted_lhs_sizes = {4};
  gen.seed = 13;
  PerturbOptions perturb;
  perturb.fd_error_rate = 0.5;
  perturb.data_error_rate = 0.03;
  perturb.seed = 29;
  GeneratedData clean = GenerateCensusLike(gen);
  PerturbedData dirty = Perturb(clean.instance, clean.planted_fds, perturb);

  OracleData data;
  data.dirty = dirty.data;
  data.sigma = dirty.fds;
  data.encoded = std::make_unique<EncodedInstance>(data.dirty);
  data.weights = std::make_unique<DistinctCountWeight>(*data.encoded);
  data.context = std::make_unique<FdSearchContext>(data.sigma, *data.encoded,
                                                   *data.weights);
  return data;
}

std::string Fingerprint(const Repair& repair, const Schema& schema) {
  std::string fp = repair.sigma_prime.ToString(schema);
  fp += "|distc=" + std::to_string(repair.distc);
  fp += "|deltaP=" + std::to_string(repair.delta_p);
  for (const AttrSet& ext : repair.extensions) fp += "|" + ext.ToString();
  fp += "|cells:";
  for (const CellRef& c : repair.changed_cells) {
    fp += std::to_string(c.tuple) + "," + std::to_string(c.attr) + ";";
  }
  fp += "|data:" + repair.data.Decode().ToTable();
  return fp;
}

// --- Open / validation ---------------------------------------------------

TEST(SessionOpen, ParsesFdsAndBuildsContext) {
  Result<Session> session = Session::Open(SmallInstance(), {"City->Zip"});
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(session->fds().size(), 1);
  EXPECT_GT(session->RootDeltaP(), 0);
  EXPECT_EQ(session->CachedContexts().cached, 1u);
}

TEST(SessionOpen, BadFdTextIsInvalidFd) {
  Result<Session> session = Session::Open(SmallInstance(), {"City->>Zip"});
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidFd);
}

TEST(SessionOpen, UnknownAttributeIsInvalidFd) {
  Result<Session> session = Session::Open(SmallInstance(), {"City->Country"});
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidFd);
  EXPECT_NE(session.status().message().find("Country"), std::string::npos);
}

TEST(SessionOpen, OutOfSchemaFdIsSchemaMismatch) {
  FDSet sigma(std::vector<FD>{FD(AttrSet{0}, /*rhs=*/7)});
  Result<Session> session = Session::Open(SmallInstance(), sigma);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kSchemaMismatch);
}

TEST(SessionOpen, TrivialFdIsInvalidFd) {
  FDSet sigma(std::vector<FD>{FD(AttrSet{1, 2}, /*rhs=*/2)});
  Result<Session> session = Session::Open(SmallInstance(), sigma);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidFd);
}

TEST(SessionOpen, MissingCsvIsIoError) {
  Result<Session> session =
      Session::OpenCsv("/nonexistent/data.csv", {"City->Zip"});
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kIoError);
}

// --- Request validation --------------------------------------------------

TEST(SessionRepair, RequestWithoutTauIsInvalidArgument) {
  Result<Session> session = Session::Open(SmallInstance(), {"City->Zip"});
  ASSERT_TRUE(session.ok());
  Result<RepairResponse> r = session->Repair(RepairRequest{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionRepair, OutOfRangeTauRIsInvalidArgument) {
  Result<Session> session = Session::Open(SmallInstance(), {"City->Zip"});
  ASSERT_TRUE(session.ok());
  Result<RepairResponse> r = session->Repair(RepairRequest::AtRelative(1.5));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// --- Error codes from the search -----------------------------------------

TEST(SessionRepair, NoRepairWithinTau) {
  // Two tuples agreeing on City and differing only on Zip: no LHS
  // extension can resolve the violation, so tau = 0 is infeasible.
  Schema schema(std::vector<Attribute>{{"City", AttrType::kString},
                                       {"Zip", AttrType::kString}});
  Instance inst(schema);
  inst.AddTuple({Value("Springfield"), Value("11111")});
  inst.AddTuple({Value("Springfield"), Value("22222")});
  Result<Session> session = Session::Open(std::move(inst), {"City->Zip"});
  ASSERT_TRUE(session.ok());
  Result<RepairResponse> r = session->Repair(RepairRequest::At(0));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNoRepairWithinTau);
  // The same budget expressed relatively resolves identically.
  Result<RepairResponse> rel =
      session->Repair(RepairRequest::AtRelative(0.0));
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kNoRepairWithinTau);
}

TEST(SessionRepair, VisitBudgetIsBudgetExceeded) {
  Result<Session> session = Session::Open(SmallInstance(), {"City->Zip"});
  ASSERT_TRUE(session.ok());
  // tau = 0 forces relaxation; the root state is not a goal, so a 1-state
  // budget stops before any goal is reached.
  RepairRequest req = RepairRequest::At(0);
  req.budget = 1;
  Result<RepairResponse> r = session->Repair(req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBudgetExceeded);
  // Without the budget the same request succeeds.
  EXPECT_TRUE(session->Repair(RepairRequest::At(0)).ok());
}

TEST(SessionRepair, DeadlineIsBudgetExceeded) {
  OracleData oracle = MakeOracleData();
  Result<Session> session = Session::Open(oracle.dirty, oracle.sigma);
  ASSERT_TRUE(session.ok());
  RepairRequest req = RepairRequest::At(0);
  req.deadline_seconds = 1e-12;  // expires before the first pop
  Result<RepairResponse> r = session->Repair(req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBudgetExceeded);
}

// --- Oracle equivalence --------------------------------------------------

// Acceptance criterion: Session::Repair output is bit-identical to the
// internal RepairDataAndFds for the same (Σ, I, τ, seed).
TEST(SessionOracle, RepairMatchesRepairDataAndFds) {
  OracleData oracle = MakeOracleData();
  Result<Session> session = Session::Open(oracle.dirty, oracle.sigma);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  const Schema& schema = oracle.dirty.schema();
  int64_t root = oracle.context->RootDeltaP();
  ASSERT_EQ(session->RootDeltaP(), root);

  for (double tau_r : {0.0, 0.2, 0.6, 1.0}) {
    int64_t tau = TauFromRelative(tau_r, root);
    for (uint64_t seed : {uint64_t{1}, uint64_t{99}}) {
      RepairOptions opts;
      opts.seed = seed;
      std::optional<Repair> want =
          RepairDataAndFds(*oracle.context, *oracle.encoded, tau, opts);
      RepairRequest req = RepairRequest::At(tau);
      req.seed = seed;
      Result<RepairResponse> got = session->Repair(req);
      ASSERT_EQ(got.ok(), want.has_value())
          << "tau=" << tau << " seed=" << seed;
      if (want.has_value()) {
        EXPECT_EQ(Fingerprint(got->repair, schema),
                  Fingerprint(*want, schema))
            << "tau=" << tau << " seed=" << seed;
        EXPECT_EQ(got->tau, tau);
      }
    }
  }
}

// --- Context caching -----------------------------------------------------

TEST(SessionCache, SameFingerprintReusesContext) {
  Result<Session> session = Session::Open(SmallInstance(), {"City->Zip"});
  ASSERT_TRUE(session.ok());
  const FdSearchContext* first = &session->context();
  uint64_t fp = session->ContextFingerprint();

  ASSERT_TRUE(session->SetFds({"Name->Zip"}).ok());
  EXPECT_NE(&session->context(), first);
  EXPECT_NE(session->ContextFingerprint(), fp);
  EXPECT_EQ(session->CachedContexts().cached, 2u);

  // Switching back lands on the SAME cached context, not a rebuild.
  ASSERT_TRUE(session->SetFds({"City->Zip"}).ok());
  EXPECT_EQ(&session->context(), first);
  EXPECT_EQ(session->ContextFingerprint(), fp);
  EXPECT_EQ(session->CachedContexts().cached, 2u);
}

TEST(SessionCache, WeightModelIsPartOfTheFingerprint) {
  Result<Session> session = Session::Open(SmallInstance(), {"City->Zip"});
  ASSERT_TRUE(session.ok());
  uint64_t fp = session->ContextFingerprint();
  ASSERT_TRUE(session->SetWeights(WeightModel::kCardinality).ok());
  EXPECT_NE(session->ContextFingerprint(), fp);
  EXPECT_EQ(session->CachedContexts().cached, 2u);
  ASSERT_TRUE(session->SetWeights(WeightModel::kDistinctCount).ok());
  EXPECT_EQ(session->ContextFingerprint(), fp);
  EXPECT_EQ(session->CachedContexts().cached, 2u);
}

// The cached context keeps its warm cover memo across Σ switches: repeated
// identical searches answer from the memo (vc_memo_hits), and the warmth
// carries over a SetFds round trip (same fingerprint → same underlying
// context, per the stats).
TEST(SessionCache, CoverMemoCarriesOverAcrossSwitches) {
  OracleData oracle = MakeOracleData(150);
  Result<Session> session = Session::Open(oracle.dirty, oracle.sigma);
  ASSERT_TRUE(session.ok());
  int64_t tau = TauFromRelative(0.3, session->RootDeltaP());

  Result<SearchProbe> cold = session->Search(RepairRequest::At(tau));
  ASSERT_TRUE(cold.ok());
  Result<SearchProbe> warm = session->Search(RepairRequest::At(tau));
  ASSERT_TRUE(warm.ok());
  // The warm run answers covers from the memo instead of recomputing.
  EXPECT_LT(warm->result.stats.vc_computations,
            cold->result.stats.vc_computations);
  EXPECT_GT(warm->result.stats.vc_memo_hits, 0);

  // Switch Σ away and back; the third run still sees the warm memo — a
  // rebuilt context would perform like the cold run again.
  FDSet other(std::vector<FD>{FD(AttrSet{0}, /*rhs=*/1)});
  ASSERT_TRUE(session->SetFds(other).ok());
  ASSERT_TRUE(session->SetFds(oracle.sigma).ok());
  Result<SearchProbe> back = session->Search(RepairRequest::At(tau));
  ASSERT_TRUE(back.ok());
  EXPECT_LE(back->result.stats.vc_computations,
            warm->result.stats.vc_computations);
  EXPECT_LT(back->result.stats.vc_computations,
            cold->result.stats.vc_computations);
  EXPECT_GE(back->result.stats.vc_memo_hits,
            warm->result.stats.vc_memo_hits);
}

// --- Batched requests ----------------------------------------------------

TEST(SessionBatch, RepairManyMatchesSequentialRepairs) {
  OracleData oracle = MakeOracleData(200);
  SessionOptions opts;
  opts.exec.num_threads = 4;
  Result<Session> session = Session::Open(oracle.dirty, oracle.sigma, opts);
  ASSERT_TRUE(session.ok());
  const Schema& schema = oracle.dirty.schema();
  int64_t root = session->RootDeltaP();

  std::vector<RepairRequest> reqs;
  for (double tau_r : {0.9, 0.0, 0.4}) {  // deliberately unsorted
    reqs.push_back(RepairRequest::AtRelative(tau_r));
  }
  reqs.push_back(RepairRequest::AtRelative(2.0));  // invalid, slot 3

  std::vector<Result<RepairResponse>> batch = session->RepairMany(reqs);
  ASSERT_EQ(batch.size(), reqs.size());
  for (size_t i = 0; i < 3; ++i) {
    Result<RepairResponse> single = session->Repair(reqs[i]);
    ASSERT_EQ(batch[i].ok(), single.ok()) << i;
    if (single.ok()) {
      EXPECT_EQ(batch[i]->tau, TauFromRelative(reqs[i].tau_r, root)) << i;
      EXPECT_EQ(Fingerprint(batch[i]->repair, schema),
                Fingerprint(single->repair, schema))
          << i;
    }
  }
  ASSERT_FALSE(batch[3].ok());
  EXPECT_EQ(batch[3].status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionBatch, SearchManyReportsStatsForInfeasibleTaus) {
  Schema schema(std::vector<Attribute>{{"City", AttrType::kString},
                                       {"Zip", AttrType::kString}});
  Instance inst(schema);
  inst.AddTuple({Value("Springfield"), Value("11111")});
  inst.AddTuple({Value("Springfield"), Value("22222")});
  Result<Session> session = Session::Open(std::move(inst), {"City->Zip"});
  ASSERT_TRUE(session.ok());
  std::vector<RepairRequest> reqs = {RepairRequest::At(0),
                                     RepairRequest::AtRelative(1.0)};
  std::vector<Result<SearchProbe>> probes = session->SearchMany(reqs);
  ASSERT_EQ(probes.size(), 2u);
  // τ = 0 is infeasible here, but the probe still reports the proof.
  ASSERT_TRUE(probes[0].ok());
  EXPECT_FALSE(probes[0]->result.repair.has_value());
  EXPECT_EQ(probes[0]->result.termination, SearchTermination::kCompleted);
  EXPECT_GT(probes[0]->result.stats.states_generated, 0);
  ASSERT_TRUE(probes[1].ok());
  EXPECT_TRUE(probes[1]->result.repair.has_value());
}

// --- Cancellation --------------------------------------------------------

TEST(SessionCancel, PreCancelledRequestReturnsCancelled) {
  OracleData oracle = MakeOracleData(150);
  Result<Session> session = Session::Open(oracle.dirty, oracle.sigma);
  ASSERT_TRUE(session.ok());
  exec::CancelToken token;
  token.Cancel();
  RepairRequest req = RepairRequest::At(0);
  req.cancel = &token;
  Result<RepairResponse> r = session->Repair(req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  // The session is fully serviceable afterwards.
  EXPECT_TRUE(session->Repair(RepairRequest::AtRelative(1.0)).ok());
}

// Cancelling a batch mid-flight: every outcome is either a finished repair
// or kCancelled, the call returns (nothing hangs), and the pool serves
// later batches — no leaked work.
TEST(SessionCancel, MidBatchCancellationDrainsCleanly) {
  OracleData oracle = MakeOracleData(250);
  SessionOptions opts;
  opts.exec.num_threads = 2;
  Result<Session> session = Session::Open(oracle.dirty, oracle.sigma, opts);
  ASSERT_TRUE(session.ok());
  int64_t root = session->RootDeltaP();

  exec::CancelToken token;
  std::vector<RepairRequest> reqs;
  for (int i = 0; i < 12; ++i) {
    RepairRequest req = RepairRequest::At(root / (i + 1));
    req.cancel = &token;
    reqs.push_back(req);
  }
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    token.Cancel();
  });
  std::vector<Result<RepairResponse>> batch = session->RepairMany(reqs);
  canceller.join();
  ASSERT_EQ(batch.size(), reqs.size());
  for (const Result<RepairResponse>& r : batch) {
    // Small τ grid points may be genuinely infeasible; what must NOT
    // appear is a hang or an unexplained failure.
    EXPECT_TRUE(r.ok() || r.status().code() == StatusCode::kCancelled ||
                r.status().code() == StatusCode::kNoRepairWithinTau)
        << r.status().ToString();
  }
  // Queued jobs were drained, not leaked: the next batch runs clean
  // (τ = root is always feasible — the root state itself is a goal).
  RepairRequest second = RepairRequest::At(root);
  second.seed = 7;
  std::vector<RepairRequest> again = {RepairRequest::At(root), second};
  for (const Result<RepairResponse>& r : session->RepairMany(again)) {
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
}

// --- Context-cache eviction (SessionOptions::max_cached_contexts) --------

TEST(SessionEviction, LruBoundEvictsColdestContext) {
  SessionOptions opts;
  opts.max_cached_contexts = 2;
  Result<Session> session =
      Session::Open(SmallInstance(), {"City->Zip"}, opts);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->CachedContexts().cached, 1u);

  ASSERT_TRUE(session->SetFds({"Name->Zip"}).ok());
  EXPECT_EQ(session->CachedContexts().cached, 2u);
  EXPECT_EQ(session->CachedContexts().evictions, 0u);

  // Third distinct Σ: the coldest ("City->Zip", least recently used)
  // must make room.
  ASSERT_TRUE(session->SetFds({"Name->City"}).ok());
  ContextCacheStats stats = session->CachedContexts();
  EXPECT_EQ(stats.cached, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.misses, 3u);

  // Revisiting the evicted fingerprint is a rebuild, not a hit ...
  ASSERT_TRUE(session->SetFds({"City->Zip"}).ok());
  stats = session->CachedContexts();
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.cached, 2u);

  // ... while a still-cached one is a hit ("Name->City" stayed warm).
  ASSERT_TRUE(session->SetFds({"Name->City"}).ok());
  stats = session->CachedContexts();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.cached, 2u);
}

TEST(SessionEviction, ActiveContextIsNeverEvicted) {
  SessionOptions opts;
  opts.max_cached_contexts = 1;
  Result<Session> session =
      Session::Open(SmallInstance(), {"City->Zip"}, opts);
  ASSERT_TRUE(session.ok());
  for (const char* fd : {"Name->Zip", "Name->City", "City->Zip"}) {
    ASSERT_TRUE(session->SetFds({fd}).ok());
    // The freshly activated context survives its own eviction pass and
    // answers requests.
    EXPECT_EQ(session->CachedContexts().cached, 1u);
    EXPECT_GE(session->RootDeltaP(), 0);
  }
  EXPECT_EQ(session->CachedContexts().evictions, 3u);
}

TEST(SessionEviction, UnboundedByDefault) {
  Result<Session> session = Session::Open(SmallInstance(), {"City->Zip"});
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->SetFds({"Name->Zip"}).ok());
  ASSERT_TRUE(session->SetFds({"Name->City"}).ok());
  ContextCacheStats stats = session->CachedContexts();
  EXPECT_EQ(stats.cached, 3u);
  EXPECT_EQ(stats.evictions, 0u);
}

// --- Byte-accurate cache sizing and per-context observability ------------

TEST(SessionEviction, ByteBoundWeighsContextsByEdgeCount) {
  SessionOptions opts;
  opts.max_cached_bytes = 1;  // below any context's estimate
  Result<Session> session =
      Session::Open(SmallInstance(), {"City->Zip"}, opts);
  ASSERT_TRUE(session.ok());
  // The single (active) context is exempt even over the byte budget.
  ContextCacheStats stats = session->CachedContexts();
  EXPECT_EQ(stats.cached, 1u);
  EXPECT_GT(stats.bytes_estimate, 1u);

  // A second Σ activates; the cold context must be evicted to chase the
  // (unreachable) byte budget.
  ASSERT_TRUE(session->SetFds({"Name->Zip"}).ok());
  stats = session->CachedContexts();
  EXPECT_EQ(stats.cached, 1u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(SessionEviction, LargeByteBudgetKeepsEverything) {
  SessionOptions opts;
  opts.max_cached_bytes = 64 * 1024 * 1024;
  Result<Session> session =
      Session::Open(SmallInstance(), {"City->Zip"}, opts);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->SetFds({"Name->Zip"}).ok());
  ASSERT_TRUE(session->SetFds({"Name->City"}).ok());
  ContextCacheStats stats = session->CachedContexts();
  EXPECT_EQ(stats.cached, 3u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(SessionCache, PerContextInfoReportsFingerprintAgeAndHits) {
  Result<Session> session = Session::Open(SmallInstance(), {"City->Zip"});
  ASSERT_TRUE(session.ok());
  ContextCacheStats stats = session->CachedContexts();
  ASSERT_EQ(stats.contexts.size(), 1u);
  EXPECT_TRUE(stats.contexts[0].active);
  EXPECT_EQ(stats.contexts[0].fingerprint, session->ContextFingerprint());
  EXPECT_EQ(stats.contexts[0].hits, 0u);
  EXPECT_EQ(stats.contexts[0].age, 0u);
  EXPECT_GT(stats.contexts[0].edges, 0);
  EXPECT_GT(stats.contexts[0].bytes_estimate, 0u);
  EXPECT_EQ(stats.bytes_estimate, stats.contexts[0].bytes_estimate);

  // Re-activating the same Σ is a hit on the same context...
  ASSERT_TRUE(session->SetFds({"City->Zip"}).ok());
  stats = session->CachedContexts();
  ASSERT_EQ(stats.contexts.size(), 1u);
  EXPECT_EQ(stats.contexts[0].hits, 1u);

  // ...and a second Σ leaves the first one colder (positive LRU age),
  // with the active row tracking the live fingerprint.
  ASSERT_TRUE(session->SetFds({"Name->Zip"}).ok());
  stats = session->CachedContexts();
  ASSERT_EQ(stats.contexts.size(), 2u);
  int active_rows = 0;
  for (const CachedContextInfo& info : stats.contexts) {
    if (info.active) {
      ++active_rows;
      EXPECT_EQ(info.fingerprint, session->ContextFingerprint());
      EXPECT_EQ(info.age, 0u);
    } else {
      EXPECT_GT(info.age, 0u);
    }
  }
  EXPECT_EQ(active_rows, 1);
}

// --- Shared pool (service-style multi-session processes) -----------------

TEST(ExecSharedPool, SessionResultsMatchPrivatePool) {
  OracleData oracle = MakeOracleData(200);

  SessionOptions private_opts;
  private_opts.exec.num_threads = 4;
  Result<Session> private_session =
      Session::Open(oracle.dirty, oracle.sigma, private_opts);
  ASSERT_TRUE(private_session.ok());

  exec::ThreadPool pool(4);
  SessionOptions shared_opts;
  shared_opts.exec.num_threads = 4;
  shared_opts.shared_pool = &pool;
  Result<Session> shared_session =
      Session::Open(oracle.dirty, oracle.sigma, shared_opts);
  ASSERT_TRUE(shared_session.ok());

  std::vector<RepairRequest> reqs;
  for (double tr : {0.0, 0.25, 0.5, 1.0}) {
    reqs.push_back(RepairRequest::AtRelative(tr));
  }
  std::vector<Result<RepairResponse>> a = private_session->RepairMany(reqs);
  std::vector<Result<RepairResponse>> b = shared_session->RepairMany(reqs);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].ok(), b[i].ok()) << i;
    if (!a[i].ok()) {
      EXPECT_EQ(a[i].status().code(), b[i].status().code());
      continue;
    }
    EXPECT_EQ(Fingerprint(a[i]->repair, oracle.dirty.schema()),
              Fingerprint(b[i]->repair, oracle.dirty.schema()))
        << i;
  }

  // Deltas also run on the shared pool; both sessions must agree after.
  DeltaBatch delta;
  for (int i = 0; i < 3; ++i) delta.Insert(oracle.dirty.row(i));
  ASSERT_TRUE(private_session->Apply(delta).ok());
  ASSERT_TRUE(shared_session->Apply(delta).ok());
  EXPECT_EQ(private_session->RootDeltaP(), shared_session->RootDeltaP());
}

// --- Range enumeration ---------------------------------------------------

TEST(SessionEnumerate, MatchesInternalRangeRepair) {
  OracleData oracle = MakeOracleData(150);
  Result<Session> session = Session::Open(oracle.dirty, oracle.sigma);
  ASSERT_TRUE(session.ok());
  int64_t root = session->RootDeltaP();
  Result<MultiRepairResult> got = session->EnumerateRepairs(0, root);
  ASSERT_TRUE(got.ok());
  MultiRepairResult want = FindRepairsFds(*oracle.context, 0, root);
  ASSERT_EQ(got->repairs.size(), want.repairs.size());
  for (size_t i = 0; i < want.repairs.size(); ++i) {
    EXPECT_EQ(got->repairs[i].repair.state, want.repairs[i].repair.state);
    EXPECT_EQ(got->repairs[i].tau_lo, want.repairs[i].tau_lo);
    EXPECT_EQ(got->repairs[i].tau_hi, want.repairs[i].tau_hi);
  }
  EXPECT_EQ(session->EnumerateRepairs(5, 3).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session->EnumerateRepairs(-1, 3).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace retrust
