// The Status/Result error model and the checked τr resolution.

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "src/api/session.h"

namespace retrust {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
  EXPECT_TRUE(Status::Ok().ok());
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::Error(StatusCode::kInvalidFd, "bad FD");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidFd);
  EXPECT_EQ(s.message(), "bad FD");
  EXPECT_EQ(s.ToString(), "invalid_fd: bad FD");
}

TEST(Status, EveryCodeHasAName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kInvalidFd,
        StatusCode::kSchemaMismatch, StatusCode::kNoRepairWithinTau,
        StatusCode::kBudgetExceeded, StatusCode::kCancelled,
        StatusCode::kIoError, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "unknown");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsStatus) {
  Result<int> r = Status::Error(StatusCode::kCancelled, "stop");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST(Result, MoveOnlyValueTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, 7);
  std::unique_ptr<int> taken = std::move(r.value());
  EXPECT_EQ(*taken, 7);
}

// --- CheckedTauFromRelative (the Result-model τr resolution) -------------

TEST(CheckedTauFromRelative, Boundaries) {
  Result<int64_t> zero = CheckedTauFromRelative(0.0, 100);
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(*zero, 0);

  Result<int64_t> one = CheckedTauFromRelative(1.0, 100);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(*one, 100);

  Result<int64_t> half = CheckedTauFromRelative(0.5, 101);
  ASSERT_TRUE(half.ok());
  EXPECT_EQ(*half, TauFromRelative(0.5, 101));
}

TEST(CheckedTauFromRelative, RejectsOutOfRange) {
  EXPECT_EQ(CheckedTauFromRelative(-0.01, 100).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CheckedTauFromRelative(1.01, 100).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CheckedTauFromRelative(std::nan(""), 100).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CheckedTauFromRelative(0.5, -1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CheckedTauFromRelative, ZeroRootMapsEverythingToZero) {
  for (double tau_r : {0.0, 0.3, 1.0}) {
    Result<int64_t> tau = CheckedTauFromRelative(tau_r, 0);
    ASSERT_TRUE(tau.ok()) << tau_r;
    EXPECT_EQ(*tau, 0) << tau_r;
  }
}

// The clamping (non-Result) variant must never produce a nonsense τ, even
// on NaN or a negative root bound.
TEST(TauFromRelative, ClampsInsteadOfOvershooting) {
  EXPECT_EQ(TauFromRelative(-0.5, 100), 0);
  EXPECT_EQ(TauFromRelative(1.5, 100), 100);
  EXPECT_EQ(TauFromRelative(std::nan(""), 100), 0);
  EXPECT_EQ(TauFromRelative(0.5, -7), 0);
  EXPECT_EQ(TauFromRelative(0.0, 0), 0);
  EXPECT_EQ(TauFromRelative(1.0, 0), 0);
}

}  // namespace
}  // namespace retrust
