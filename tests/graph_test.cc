#include "src/graph/graph.h"

#include <gtest/gtest.h>

namespace retrust {
namespace {

TEST(Edge, NormalizesEndpointOrder) {
  Edge e(5, 2);
  EXPECT_EQ(e.u, 2);
  EXPECT_EQ(e.v, 5);
  EXPECT_EQ(Edge(2, 5), Edge(5, 2));
}

TEST(Edge, Ordering) {
  EXPECT_TRUE(Edge(0, 1) < Edge(0, 2));
  EXPECT_TRUE(Edge(0, 9) < Edge(1, 2));
  EXPECT_FALSE(Edge(1, 2) < Edge(1, 2));
}

TEST(Graph, AddEdgeValidation) {
  Graph g(3);
  g.AddEdge(0, 1);
  EXPECT_THROW(g.AddEdge(1, 1), std::invalid_argument);
  EXPECT_THROW(g.AddEdge(0, 3), std::out_of_range);
  EXPECT_THROW(g.AddEdge(-1, 0), std::out_of_range);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, Adjacency) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, 0);
  g.AddEdge(1, 3);
  auto adj = g.BuildAdjacency();
  EXPECT_EQ(adj[0], (std::vector<int32_t>{1, 2}));
  EXPECT_EQ(adj[1], (std::vector<int32_t>{0, 3}));
  EXPECT_EQ(adj[3], (std::vector<int32_t>{1}));
}

TEST(Graph, Degrees) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  EXPECT_EQ(g.Degrees(), (std::vector<int32_t>{3, 1, 1, 1}));
}

}  // namespace
}  // namespace retrust
