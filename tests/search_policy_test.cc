// The search engine's policy contract (src/search/engine.cc):
//
//  - kExact is BIT-IDENTICAL to the pre-engine ModifyFds loop — checked
//    against an in-test reimplementation of the legacy serial loop (the
//    oracle), at 1/2/4/8 successor-evaluation threads;
//  - kAnytime always returns a τ-feasible repair costing at most
//    w·optimal, and proves cost-optimality when run to completion;
//  - kGreedy returns a τ-feasible repair with no optimality claim;
//  - interruptions (visit budget) return the best incumbent instead of
//    failing once one exists, with a finite suboptimality bound;
//  - the δP floor (src/search/bound.h) never exceeds the true δP of a
//    state or any of its tree descendants (admissibility);
//  - the service wire parses the policy knobs.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <queue>

#include "src/api/session.h"
#include "src/eval/generator.h"
#include "src/eval/perturb.h"
#include "src/repair/modify_fds.h"
#include "src/search/bound.h"
#include "src/service/wire.h"
#include "src/util/rng.h"

namespace retrust {
namespace {

struct Workload {
  Instance dirty;
  FDSet sigma;
  EncodedInstance enc;
};

Workload Make(uint64_t seed) {
  CensusConfig cfg;
  cfg.num_tuples = 350;
  cfg.num_attrs = 10;
  cfg.planted_lhs_sizes = {4};
  cfg.seed = seed;
  GeneratedData data = GenerateCensusLike(cfg);
  PerturbOptions popts;
  popts.fd_error_rate = 0.5;
  popts.data_error_rate = 0.02;
  popts.seed = seed + 1;
  PerturbedData dirty = Perturb(data.instance, data.planted_fds, popts);
  return {dirty.data, dirty.fds, EncodedInstance(dirty.data)};
}

// ------------------------------------------------------- legacy oracle

struct LegacyEntry {
  double priority;
  double cost;
  int64_t seq;
  bool evaluated;
  SearchState state;

  bool operator<(const LegacyEntry& o) const {
    if (priority != o.priority) return priority > o.priority;
    if (cost != o.cost) return cost > o.cost;
    return seq > o.seq;
  }
};

// The pre-engine ModifyFds loop, verbatim (serial path: no speculation,
// gc/cover computed inline). The engine's kExact policy must reproduce
// its repair AND its visit schedule exactly.
ModifyFdsResult LegacyModifyFds(const FdSearchContext& ctx, int64_t tau,
                                const ModifyFdsOptions& opts) {
  ModifyFdsResult result;
  SearchStats& stats = result.stats;
  const bool astar = opts.mode == SearchMode::kAStar;

  std::priority_queue<LegacyEntry> pq;
  int64_t seq = 0;
  SearchState root = SearchState::Root(ctx.sigma().size());
  pq.push({root.Cost(ctx.weights()), root.Cost(ctx.weights()), seq++,
           !astar, root});
  ++stats.states_generated;

  std::optional<FdRepair> best;
  while (!pq.empty()) {
    LegacyEntry top = pq.top();
    pq.pop();

    if (!top.evaluated) {
      double gc = ctx.heuristic().Compute(top.state, tau, &stats);
      if (gc == GcHeuristic::kInfinity) continue;
      top.priority = std::max(gc, top.cost);
      top.evaluated = true;
      if (!pq.empty() && pq.top().priority < top.priority) {
        pq.push(std::move(top));
        continue;
      }
    }

    ++stats.states_visited;
    if (opts.max_visited > 0 && stats.states_visited > opts.max_visited) {
      result.termination = SearchTermination::kVisitBudget;
      break;
    }

    if (best.has_value()) {
      bool can_tie = opts.tie_break_delta &&
                     top.cost <= best->distc + opts.cost_epsilon;
      if (top.priority > best->distc + opts.cost_epsilon) break;
      if (!can_tie && top.cost > best->distc + opts.cost_epsilon) continue;
    }

    int64_t cover = ctx.CoverSize(top.state, &stats);
    int64_t delta_p = ctx.alpha() * cover;
    if (delta_p <= tau) {
      double cost = top.state.Cost(ctx.weights());
      if (!best.has_value()) {
        best = FdRepair{top.state, top.state.Apply(ctx.sigma()), cost,
                        cover, delta_p};
        if (!opts.tie_break_delta) break;
        continue;
      }
      if (cost <= best->distc + opts.cost_epsilon &&
          delta_p < best->delta_p) {
        best = FdRepair{top.state, top.state.Apply(ctx.sigma()), cost,
                        cover, delta_p};
      }
      continue;
    }

    std::vector<SearchState> children = ctx.space().Children(top.state);
    for (size_t i = 0; i < children.size(); ++i) {
      double child_cost = children[i].Cost(ctx.weights());
      double lower = std::max(top.priority, child_cost);
      if (best.has_value() && lower > best->distc + opts.cost_epsilon) {
        continue;
      }
      pq.push({lower, child_cost, seq++, !astar, std::move(children[i])});
      ++stats.states_generated;
    }
  }

  result.repair = std::move(best);
  return result;
}

void ExpectSameRepair(const ModifyFdsResult& got,
                      const ModifyFdsResult& want, const char* label) {
  ASSERT_EQ(got.repair.has_value(), want.repair.has_value()) << label;
  if (!want.repair.has_value()) return;
  EXPECT_EQ(got.repair->state, want.repair->state) << label;
  EXPECT_EQ(got.repair->distc, want.repair->distc) << label;  // bitwise
  EXPECT_EQ(got.repair->cover_size, want.repair->cover_size) << label;
  EXPECT_EQ(got.repair->delta_p, want.repair->delta_p) << label;
}

TEST(SearchPolicyOracle, ExactBitIdenticalToLegacyAcrossThreads) {
  for (uint64_t seed : {101u, 202u, 303u}) {
    Workload wl = Make(seed);
    DistinctCountWeight w(wl.enc);
    int64_t tau;
    {
      FdSearchContext probe(wl.sigma, wl.enc, w);
      tau = probe.RootDeltaP() / 4;
    }
    for (SearchMode mode : {SearchMode::kAStar, SearchMode::kBestFirst}) {
      ModifyFdsOptions opts;
      opts.mode = mode;
      // Fresh context per run: the shared cover memo would otherwise shift
      // the hit/miss split between runs (values never change, counters do).
      FdSearchContext legacy_ctx(wl.sigma, wl.enc, w);
      ModifyFdsResult legacy = LegacyModifyFds(legacy_ctx, tau, opts);
      for (int threads : {1, 2, 4, 8}) {
        ModifyFdsOptions topts = opts;
        topts.exec.num_threads = threads;
        FdSearchContext ctx(wl.sigma, wl.enc, w);
        ModifyFdsResult got = ModifyFds(ctx, tau, topts);
        std::string label = "seed " + std::to_string(seed) + " mode " +
                            std::to_string(static_cast<int>(mode)) +
                            " threads " + std::to_string(threads);
        ExpectSameRepair(got, legacy, label.c_str());
        EXPECT_EQ(got.stats.states_visited, legacy.stats.states_visited)
            << label;
        EXPECT_EQ(got.stats.states_generated, legacy.stats.states_generated)
            << label;
        EXPECT_EQ(got.termination, legacy.termination) << label;
        if (threads == 1) {
          // Serial runs do no speculative work, so even the evaluation
          // counters must match the legacy loop exactly.
          EXPECT_EQ(got.stats.heuristic_calls, legacy.stats.heuristic_calls)
              << label;
          EXPECT_EQ(got.stats.vc_computations, legacy.stats.vc_computations)
              << label;
          EXPECT_EQ(got.stats.vc_memo_hits, legacy.stats.vc_memo_hits)
              << label;
        }
        if (got.repair.has_value()) {
          // Incumbent bookkeeping rides along without touching the path.
          EXPECT_GE(got.stats.incumbent_improvements, 1) << label;
          EXPECT_EQ(static_cast<int64_t>(got.incumbents.size()),
                    got.stats.incumbent_improvements)
              << label;
          EXPECT_EQ(got.stats.suboptimality_bound, 1.0) << label;
        }
      }
    }
  }
}

// ---------------------------------------------------- anytime / greedy

TEST(SearchPolicyAnytime, FeasibleAndWithinWeightOfOptimal) {
  for (uint64_t seed : {111u, 222u}) {
    Workload wl = Make(seed);
    DistinctCountWeight w(wl.enc);
    FdSearchContext ctx(wl.sigma, wl.enc, w);
    int64_t tau = ctx.RootDeltaP() / 4;
    ModifyFdsResult exact = ModifyFds(ctx, tau, {});
    ASSERT_TRUE(exact.repair.has_value());
    for (double weight : {1.5, 2.0, 3.0}) {
      ModifyFdsOptions opts;
      opts.policy.policy = search::SearchPolicy::kAnytime;
      opts.policy.weighting_factor = weight;
      ModifyFdsResult any = ModifyFds(ctx, tau, opts);
      ASSERT_TRUE(any.repair.has_value()) << "w " << weight;
      EXPECT_LE(any.repair->delta_p, tau) << "w " << weight;
      // Every incumbent along the trajectory already satisfied the w-bound;
      // the final one is the strongest.
      ASSERT_FALSE(any.incumbents.empty());
      EXPECT_LE(any.incumbents.front().distc,
                weight * exact.repair->distc + 1e-9)
          << "w " << weight;
      EXPECT_LE(any.repair->distc, weight * exact.repair->distc + 1e-9)
          << "w " << weight;
      // Run to completion, the anytime refinement closes on the optimum.
      ASSERT_EQ(any.termination, SearchTermination::kCompleted);
      EXPECT_NEAR(any.repair->distc, exact.repair->distc, 1e-9)
          << "w " << weight;
      EXPECT_EQ(any.stats.suboptimality_bound, 1.0) << "w " << weight;
      // Trajectory is recorded, timestamped, and monotone in cost.
      EXPECT_EQ(static_cast<int64_t>(any.incumbents.size()),
                any.stats.incumbent_improvements);
      EXPECT_GT(any.stats.first_repair_seconds, 0.0);
      for (size_t i = 1; i < any.incumbents.size(); ++i) {
        EXPECT_LE(any.incumbents[i].distc,
                  any.incumbents[i - 1].distc + 1e-9);
      }
    }
  }
}

TEST(SearchPolicyGreedy, FirstFeasibleRepairIsValid) {
  Workload wl = Make(333);
  DistinctCountWeight w(wl.enc);
  FdSearchContext ctx(wl.sigma, wl.enc, w);
  int64_t tau = ctx.RootDeltaP() / 4;
  ModifyFdsResult exact = ModifyFds(ctx, tau, {});
  ASSERT_TRUE(exact.repair.has_value());

  ModifyFdsOptions opts;
  opts.policy.policy = search::SearchPolicy::kGreedy;
  ModifyFdsResult greedy = ModifyFds(ctx, tau, opts);
  ASSERT_TRUE(greedy.repair.has_value());
  EXPECT_LE(greedy.repair->delta_p, tau);
  // A valid repair can cost more than the optimum, never less.
  EXPECT_GE(greedy.repair->distc, exact.repair->distc - 1e-9);
  // Greedy makes no optimality claim.
  EXPECT_EQ(greedy.stats.suboptimality_bound, 0.0);
  EXPECT_EQ(greedy.termination, SearchTermination::kCompleted);
}

TEST(SearchPolicyInterrupt, BudgetReturnsBestIncumbentNotFailure) {
  // Scan seeds for a run where the search keeps working after the first
  // incumbent — that refinement phase is what this test cuts with the
  // visit budget. The search is deterministic, so cutting right after the
  // first incumbent was recorded must reproduce that incumbent.
  bool exercised = false;
  for (uint64_t seed : {444u, 445u, 446u, 447u}) {
    Workload wl = Make(seed);
    DistinctCountWeight w(wl.enc);
    FdSearchContext ctx(wl.sigma, wl.enc, w);
    int64_t tau = ctx.RootDeltaP() / 4;

    ModifyFdsOptions opts;
    opts.policy.policy = search::SearchPolicy::kAnytime;
    ModifyFdsResult full = ModifyFds(ctx, tau, opts);
    ASSERT_TRUE(full.repair.has_value()) << "seed " << seed;
    ASSERT_FALSE(full.incumbents.empty()) << "seed " << seed;
    const search::IncumbentPoint& first = full.incumbents.front();
    if (first.states_visited >= full.stats.states_visited) continue;
    exercised = true;

    ModifyFdsOptions cut = opts;
    cut.max_visited = first.states_visited;
    ModifyFdsResult interrupted = ModifyFds(ctx, tau, cut);
    EXPECT_EQ(interrupted.termination, SearchTermination::kVisitBudget)
        << "seed " << seed;
    ASSERT_TRUE(interrupted.repair.has_value())
        << "an interruption with an incumbent in hand returns it (seed "
        << seed << ")";
    EXPECT_NEAR(interrupted.repair->distc, first.distc, 1e-9)
        << "seed " << seed;
    // The interrupted claim is finite and no stronger than the w-bound.
    EXPECT_GE(interrupted.stats.suboptimality_bound, 1.0) << "seed " << seed;
    EXPECT_LE(interrupted.stats.suboptimality_bound,
              opts.policy.weighting_factor + 1e-9)
        << "seed " << seed;
  }
  EXPECT_TRUE(exercised)
      << "no seed produced refinement after the first incumbent";
}

TEST(SearchPolicyInterrupt, SessionSurfacesTruncatedRepairs) {
  bool exercised = false;
  for (uint64_t seed : {555u, 556u, 557u, 558u}) {
    Workload wl = Make(seed);
    Result<Session> session = Session::Open(wl.dirty, wl.sigma);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    int64_t tau = session->RootDeltaP() / 4;

    RepairRequest req = RepairRequest::At(tau);
    req.policy = search::SearchPolicy::kAnytime;
    Result<SearchProbe> full = session->Search(req);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    ASSERT_TRUE(full->result.repair.has_value()) << "seed " << seed;
    ASSERT_FALSE(full->result.incumbents.empty()) << "seed " << seed;
    if (full->result.incumbents.front().states_visited >=
        full->result.stats.states_visited) {
      continue;
    }
    exercised = true;

    RepairRequest cut = req;
    cut.budget = full->result.incumbents.front().states_visited;
    // The probe reports the truncation; the repair verb still succeeds
    // (best-so-far, not kBudgetExceeded) because an incumbent exists.
    Result<SearchProbe> probe = session->Search(cut);
    ASSERT_TRUE(probe.ok());
    EXPECT_EQ(probe->result.termination, SearchTermination::kVisitBudget)
        << "seed " << seed;
    EXPECT_TRUE(probe->result.repair.has_value()) << "seed " << seed;
    Result<RepairResponse> response = session->Repair(cut);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->termination, SearchTermination::kVisitBudget)
        << "seed " << seed;
    EXPECT_FALSE(response->repair.incumbents.empty()) << "seed " << seed;
  }
  EXPECT_TRUE(exercised)
      << "no seed produced refinement after the first incumbent";
}

// -------------------------------------------------------- lower bound

TEST(SearchPolicyBound, DeltaPFloorAdmissibleOnTreeDescendants) {
  for (uint64_t seed : {666u, 777u}) {
    Workload wl = Make(seed);
    DistinctCountWeight w(wl.enc);
    FdSearchContext ctx(wl.sigma, wl.enc, w);
    search::CoverLowerBound bound(ctx);
    Rng rng(seed);
    // Random root-to-leaf walks through Children(): at every state on the
    // walk, the floor must lower-bound the state's own δP and the δP of
    // every deeper state on the SAME walk (they are its tree descendants).
    for (int walk = 0; walk < 20; ++walk) {
      SearchState s = SearchState::Root(ctx.sigma().size());
      std::vector<int64_t> floors;
      std::vector<int64_t> deltas;
      while (true) {
        floors.push_back(bound.DeltaPFloor(s, nullptr));
        deltas.push_back(ctx.DeltaP(s, nullptr));
        std::vector<SearchState> children = ctx.space().Children(s);
        if (children.empty()) break;
        s = children[rng.NextUint(children.size())];
      }
      for (size_t i = 0; i < floors.size(); ++i) {
        for (size_t j = i; j < deltas.size(); ++j) {
          ASSERT_LE(floors[i], deltas[j])
              << "seed " << seed << " walk " << walk << " ancestor " << i
              << " descendant " << j;
        }
      }
    }
  }
}

// --------------------------------------------------------------- wire

TEST(SearchPolicyWire, ParsesPolicyKnobs) {
  using service::Json;
  using service::ParseJson;
  using service::RepairRequestFromJson;
  Result<Json> obj = ParseJson(
      R"({"tau":3,"policy":"anytime","weight":2.5,"upper_bound":7.0})");
  ASSERT_TRUE(obj.ok());
  Result<RepairRequest> req = RepairRequestFromJson(*obj);
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->policy, search::SearchPolicy::kAnytime);
  EXPECT_DOUBLE_EQ(req->weight, 2.5);
  EXPECT_DOUBLE_EQ(req->upper_bound, 7.0);

  Result<Json> plain = ParseJson(R"({"tau":3})");
  ASSERT_TRUE(plain.ok());
  Result<RepairRequest> defaulted = RepairRequestFromJson(*plain);
  ASSERT_TRUE(defaulted.ok());
  EXPECT_EQ(defaulted->policy, search::SearchPolicy::kExact);

  for (const char* bad :
       {R"({"tau":1,"policy":"fast"})", R"({"tau":1,"policy":3})",
        R"({"tau":1,"weight":0.5})", R"({"tau":1,"upper_bound":-1})"}) {
    Result<Json> parsed = ParseJson(bad);
    ASSERT_TRUE(parsed.ok());
    EXPECT_FALSE(RepairRequestFromJson(*parsed).ok()) << bad;
  }
}

}  // namespace
}  // namespace retrust
