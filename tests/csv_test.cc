#include "src/relational/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace retrust {
namespace {

TEST(Csv, ReadsHeaderAndRowsWithTypeInference) {
  std::istringstream in("id,name,score\n1,alice,1.5\n2,bob,2\n");
  Instance inst = ReadCsv(in);
  EXPECT_EQ(inst.NumAttrs(), 3);
  EXPECT_EQ(inst.NumTuples(), 2);
  EXPECT_EQ(inst.schema().type(0), AttrType::kInt);
  EXPECT_EQ(inst.schema().type(1), AttrType::kString);
  EXPECT_EQ(inst.schema().type(2), AttrType::kDouble);
  EXPECT_EQ(inst.At(0, 0), Value(int64_t{1}));
  EXPECT_EQ(inst.At(1, 1), Value("bob"));
  EXPECT_EQ(inst.At(1, 2), Value(2.0));
}

TEST(Csv, QuotedFieldsWithCommasAndQuotes) {
  std::istringstream in("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
  Instance inst = ReadCsv(in);
  EXPECT_EQ(inst.At(0, 0), Value("x,y"));
  EXPECT_EQ(inst.At(0, 1), Value("he said \"hi\""));
}

TEST(Csv, EmptyFieldsBecomeNull) {
  std::istringstream in("a,b\n1,\n,2\n");
  Instance inst = ReadCsv(in);
  EXPECT_TRUE(inst.At(0, 1).is_null());
  EXPECT_TRUE(inst.At(1, 0).is_null());
}

TEST(Csv, CrLfLineEndings) {
  std::istringstream in("a,b\r\n1,2\r\n");
  Instance inst = ReadCsv(in);
  EXPECT_EQ(inst.NumTuples(), 1);
  EXPECT_EQ(inst.At(0, 1), Value(int64_t{2}));
}

TEST(Csv, RejectsArityMismatch) {
  std::istringstream in("a,b\n1\n");
  EXPECT_THROW(ReadCsv(in), std::runtime_error);
}

TEST(Csv, RejectsEmptyInput) {
  std::istringstream in("");
  EXPECT_THROW(ReadCsv(in), std::runtime_error);
}

TEST(Csv, RoundTrip) {
  std::istringstream in("a,b,c\n1,x y,3.5\n2,\"q,r\",4.5\n");
  Instance inst = ReadCsv(in);
  std::ostringstream out;
  WriteCsv(inst, out);
  std::istringstream in2(out.str());
  Instance again = ReadCsv(in2);
  EXPECT_EQ(inst.DistdTo(again), 0);
}

TEST(Csv, WriteEscapesSpecialCharacters) {
  Instance inst(Schema({{"a", AttrType::kString}}));
  inst.AddTuple({Value("needs,quote")});
  inst.AddTuple({Value("has\"quote")});
  std::ostringstream out;
  WriteCsv(inst, out);
  EXPECT_NE(out.str().find("\"needs,quote\""), std::string::npos);
  EXPECT_NE(out.str().find("\"has\"\"quote\""), std::string::npos);
}

TEST(Csv, FileRoundTrip) {
  Instance inst(Schema({{"a", AttrType::kInt}, {"b", AttrType::kString}}));
  inst.AddTuple({Value(int64_t{5}), Value("hello")});
  std::string path = testing::TempDir() + "/retrust_csv_test.csv";
  WriteCsvFile(inst, path);
  Instance back = ReadCsvFile(path);
  EXPECT_EQ(inst.DistdTo(back), 0);
  EXPECT_THROW(ReadCsvFile("/nonexistent/nope.csv"), std::runtime_error);
}

TEST(Csv, NegativeNumbersInferred) {
  std::istringstream in("a\n-3\n7\n");
  Instance inst = ReadCsv(in);
  EXPECT_EQ(inst.schema().type(0), AttrType::kInt);
  EXPECT_EQ(inst.At(0, 0), Value(int64_t{-3}));
}

}  // namespace
}  // namespace retrust
