#include "src/eval/experiment.h"

#include <gtest/gtest.h>

namespace retrust {
namespace {

ExperimentData Prepare(double fd_err, double data_err,
                       WeightKind wk = WeightKind::kDistinctCount) {
  CensusConfig gen;
  gen.num_tuples = 500;
  gen.num_attrs = 12;
  gen.planted_lhs_sizes = {5};
  gen.seed = 71;
  PerturbOptions perturb;
  perturb.fd_error_rate = fd_err;
  perturb.data_error_rate = data_err;
  perturb.seed = 72;
  return PrepareExperiment(gen, perturb, wk);
}

TEST(Experiment, PrepareWiresEverything) {
  ExperimentData data = Prepare(0.4, 0.02);
  EXPECT_EQ(data.encoded().NumTuples(), 500);
  EXPECT_GT(data.root_delta_p, 0);
  ASSERT_NE(data.session, nullptr);
  EXPECT_EQ(data.session->RootDeltaP(), data.root_delta_p);
  EXPECT_FALSE(data.dirty.perturbed_cells.empty());
  EXPECT_GT(data.dirty.removed_lhs[0].Count(), 0);
}

TEST(Experiment, FullTrustInFdsRepairsData) {
  // Data-errors only; tau = 100% lets the algorithm keep Σ and fix cells.
  ExperimentData data = Prepare(0.0, 0.03);
  ExperimentRun run = RunRepairAt(data, 1.0);
  ASSERT_TRUE(run.repaired);
  EXPECT_EQ(run.distc, 0.0);                  // FDs untouched
  EXPECT_GT(run.cells_changed, 0);
  EXPECT_DOUBLE_EQ(run.quality.fd.precision, 1.0);
  EXPECT_DOUBLE_EQ(run.quality.fd.recall, 1.0);  // nothing was removed
}

TEST(Experiment, FullTrustInDataRepairsFds) {
  // FD-errors only; tau = 0 forbids cell changes.
  ExperimentData data = Prepare(0.4, 0.0);
  ExperimentRun run = RunRepairAt(data, 0.0);
  ASSERT_TRUE(run.repaired);
  EXPECT_EQ(run.cells_changed, 0);
  EXPECT_GT(run.distc, 0.0);
  // The appended attributes are exactly the removed ones (high precision
  // workload: the removed attrs are the cheapest way to re-separate).
  EXPECT_GT(run.quality.fd.recall, 0.0);
}

TEST(Experiment, QualityScoresWithinRange) {
  ExperimentData data = Prepare(0.4, 0.02);
  for (double tr : {0.0, 0.5, 1.0}) {
    ExperimentRun run = RunRepairAt(data, tr);
    if (!run.repaired) continue;
    for (double v :
         {run.quality.data.precision, run.quality.data.recall,
          run.quality.fd.precision, run.quality.fd.recall,
          run.quality.CombinedF()}) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(Experiment, UnifiedCostRuns) {
  ExperimentData data = Prepare(0.4, 0.02);
  ExperimentRun run = RunUnifiedCost(data);
  EXPECT_TRUE(run.repaired);
  ASSERT_TRUE(run.repair.has_value());
  EXPECT_TRUE(Satisfies(run.repair->data, run.repair->sigma_prime));
}

TEST(Experiment, WeightKindsAllWork) {
  for (WeightKind wk : {WeightKind::kDistinctCount, WeightKind::kCardinality,
                        WeightKind::kEntropy}) {
    ExperimentData data = Prepare(0.4, 0.0, wk);
    ExperimentRun run = RunRepairAt(data, 0.5);
    EXPECT_TRUE(run.repaired);
  }
}

TEST(Experiment, ModesAgreeOnCost) {
  ExperimentData data = Prepare(0.4, 0.01);
  ExperimentRun a = RunRepairAt(data, 0.3, SearchMode::kAStar);
  ExperimentRun b = RunRepairAt(data, 0.3, SearchMode::kBestFirst);
  ASSERT_EQ(a.repaired, b.repaired);
  if (a.repaired) EXPECT_NEAR(a.distc, b.distc, 1e-6);
}

}  // namespace
}  // namespace retrust
