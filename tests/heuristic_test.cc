#include "src/repair/heuristic.h"

#include <gtest/gtest.h>

#include "src/eval/generator.h"
#include "src/eval/perturb.h"
#include "src/repair/modify_fds.h"

namespace retrust {
namespace {

Instance Fig2() {
  Instance inst(Schema::FromNames({"A", "B", "C", "D"}));
  auto add = [&](const char* a, const char* b, const char* c,
                 const char* d) {
    inst.AddTuple({Value(a), Value(b), Value(c), Value(d)});
  };
  add("1", "1", "1", "1");
  add("1", "2", "1", "3");
  add("2", "2", "1", "1");
  add("2", "3", "4", "3");
  return inst;
}

TEST(RepairAlpha, MinOfAttrsMinusOneAndFds) {
  EXPECT_EQ(RepairAlpha(4, 2), 2);
  EXPECT_EQ(RepairAlpha(3, 7), 2);
  EXPECT_EQ(RepairAlpha(10, 1), 1);
}

TEST(GcHeuristic, RootEstimateNeverAboveCheapestGoal) {
  // Exhaustively verify admissibility on the Figure 2 space with the
  // cardinality weight: gc(S) <= cost of the cheapest goal state that
  // extends S (goal test via the context's CoverSize).
  EncodedInstance enc(Fig2());
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, Fig2().schema());
  CardinalityWeight w;
  FdSearchContext ctx(sigma, enc, w);
  StateSpace space(sigma, Fig2().schema());

  for (int64_t tau : {0, 2, 4, 8}) {
    for (const SearchState& s : space.EnumerateAll()) {
      SearchStats stats;
      double gc = ctx.heuristic().Compute(s, tau, &stats);
      // Cheapest goal extending s (exhaustive oracle).
      double cheapest = GcHeuristic::kInfinity;
      for (const SearchState& t : space.EnumerateAll()) {
        if (!t.Extends(s)) continue;
        if (ctx.DeltaP(t, nullptr) <= tau) {
          cheapest = std::min(cheapest, t.Cost(w));
        }
      }
      if (cheapest == GcHeuristic::kInfinity) {
        // No goal below s: gc may be anything >= cost(s); infinity is the
        // informative answer but not required (subset of diffsets).
        continue;
      }
      EXPECT_LE(gc, cheapest + 1e-9)
          << "overestimate at " << s.ToString() << " tau=" << tau;
      EXPECT_GE(gc, s.Cost(w) - 1e-9);
    }
  }
}

TEST(GcHeuristic, GoalStateHasGcEqualToOwnCost) {
  EncodedInstance enc(Fig2());
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, Fig2().schema());
  CardinalityWeight w;
  FdSearchContext ctx(sigma, enc, w);
  // Fully-extended state that satisfies everything within tau=100.
  SearchStats stats;
  SearchState root = SearchState::Root(2);
  double gc = ctx.heuristic().Compute(root, 100, &stats);
  EXPECT_DOUBLE_EQ(gc, 0.0);  // root itself is a goal at large tau
}

TEST(GcHeuristic, InfinityWhenNoGoalExists) {
  // Tuples differing ONLY on the RHS cannot be fixed by any LHS extension;
  // with tau = 0 no goal state exists anywhere.
  Instance inst(Schema::FromNames({"A", "B", "C"}));
  inst.AddTuple({Value("1"), Value("1"), Value("x")});
  inst.AddTuple({Value("1"), Value("1"), Value("y")});
  EncodedInstance enc(inst);
  FDSet sigma = FDSet::Parse({"A->C"}, inst.schema());
  CardinalityWeight w;
  FdSearchContext ctx(sigma, enc, w);
  SearchStats stats;
  EXPECT_EQ(ctx.heuristic().Compute(SearchState::Root(1), 0, &stats),
            GcHeuristic::kInfinity);
  // With tau large enough to absorb the repair, the root is a goal.
  EXPECT_EQ(ctx.heuristic().Compute(SearchState::Root(1), 10, &stats), 0.0);
}

TEST(GcHeuristic, MonotoneInTau) {
  // Smaller tau can only raise gc (fewer groups may stay unresolved).
  CensusConfig cfg;
  cfg.num_tuples = 400;
  cfg.num_attrs = 10;
  cfg.planted_lhs_sizes = {4};
  cfg.seed = 9;
  GeneratedData data = GenerateCensusLike(cfg);
  PerturbOptions popts;
  popts.fd_error_rate = 0.5;
  popts.data_error_rate = 0.02;
  popts.seed = 3;
  PerturbedData dirty = Perturb(data.instance, data.planted_fds, popts);
  EncodedInstance enc(dirty.data);
  DistinctCountWeight w(enc);
  FdSearchContext ctx(dirty.fds, enc, w);
  SearchStats stats;
  SearchState root = SearchState::Root(dirty.fds.size());
  double prev = -1;
  for (int64_t tau : {400, 200, 100, 50, 20, 5, 0}) {
    double gc = ctx.heuristic().Compute(root, tau, &stats);
    if (prev >= 0 && gc != GcHeuristic::kInfinity) {
      EXPECT_GE(gc, prev - 1e-9) << "gc must grow as tau shrinks";
    }
    if (gc != GcHeuristic::kInfinity) prev = gc;
  }
}

TEST(GcHeuristic, UncappedAtLeastAsTightAsCapped) {
  CensusConfig cfg;
  cfg.num_tuples = 400;
  cfg.num_attrs = 10;
  cfg.planted_lhs_sizes = {4};
  cfg.seed = 10;
  GeneratedData data = GenerateCensusLike(cfg);
  PerturbOptions popts;
  popts.fd_error_rate = 0.5;
  popts.data_error_rate = 0.0;
  popts.seed = 4;
  PerturbedData dirty = Perturb(data.instance, data.planted_fds, popts);
  EncodedInstance enc(dirty.data);
  DistinctCountWeight w(enc);
  HeuristicOptions small;
  small.max_diffsets = 1;
  FdSearchContext ctx_small(dirty.fds, enc, w, small);
  FdSearchContext ctx_big(dirty.fds, enc, w, HeuristicOptions{});
  SearchStats stats;
  SearchState root = SearchState::Root(dirty.fds.size());
  int64_t tau = 10;
  double loose = ctx_small.heuristic().Compute(root, tau, &stats);
  double tight = ctx_big.heuristic().ComputeUncapped(root, tau, &stats);
  if (loose != GcHeuristic::kInfinity && tight != GcHeuristic::kInfinity) {
    EXPECT_LE(loose, tight + 1e-9);
  }
}

}  // namespace
}  // namespace retrust
