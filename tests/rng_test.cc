#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <numeric>

namespace retrust {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint(1000), b.NextUint(1000));
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint(1000000) == b.NextUint(1000000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextUintInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextUint(17), 17u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextUint(1), 0u);
}

TEST(Rng, NextIntInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBoolRespectsProbability) {
  Rng rng(11);
  int yes = 0;
  for (int i = 0; i < 10000; ++i) yes += rng.NextBool(0.2);
  EXPECT_NEAR(yes / 10000.0, 0.2, 0.03);
  EXPECT_FALSE(Rng(1).NextBool(0.0));
  EXPECT_TRUE(Rng(1).NextBool(1.0));
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.NextZipf(10, 1.0)];
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], counts[9]);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 20000);
  EXPECT_EQ(Rng(1).NextZipf(1, 1.0), 0u);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(17);
  std::vector<int> v(20);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);  // same multiset
  EXPECT_NE(v, orig);       // overwhelmingly likely
}

TEST(Rng, PickIndexWithinBounds) {
  Rng rng(19);
  std::vector<int> v(5);
  for (int i = 0; i < 200; ++i) EXPECT_LT(rng.PickIndex(v), v.size());
}

}  // namespace
}  // namespace retrust
