#include "src/repair/weights.h"

#include <gtest/gtest.h>

namespace retrust {
namespace {

Instance Sample() {
  Instance inst(Schema::FromNames({"A", "B", "C"}));
  auto add = [&](const char* a, const char* b, const char* c) {
    inst.AddTuple({Value(a), Value(b), Value(c)});
  };
  add("1", "1", "1");
  add("1", "2", "1");
  add("2", "2", "1");
  add("2", "2", "2");
  return inst;
}

TEST(CardinalityWeight, CountsAttributes) {
  CardinalityWeight w;
  EXPECT_EQ(w.Weight(AttrSet()), 0);
  EXPECT_EQ(w.Weight(AttrSet{3}), 1);
  EXPECT_EQ(w.Weight(AttrSet{0, 5, 9}), 3);
}

TEST(DistinctCountWeight, MatchesProjectionCounts) {
  EncodedInstance enc(Sample());
  DistinctCountWeight w(enc);
  EXPECT_EQ(w.Weight(AttrSet()), 0.0);  // required: w(empty) = 0
  EXPECT_EQ(w.Weight(AttrSet{0}), 2.0);
  EXPECT_EQ(w.Weight(AttrSet{1}), 2.0);
  EXPECT_EQ(w.Weight(AttrSet{0, 1}), 3.0);
  EXPECT_EQ(w.Weight(AttrSet{0, 1, 2}), 4.0);
  // Memoized second read.
  EXPECT_EQ(w.Weight(AttrSet{0, 1}), 3.0);
}

TEST(EntropyWeight, BasicProperties) {
  EncodedInstance enc(Sample());
  EntropyWeight w(enc);
  EXPECT_EQ(w.Weight(AttrSet()), 0.0);
  // A splits 2-2: H = 1 bit.
  EXPECT_NEAR(w.Weight(AttrSet{0}), 1.0, 1e-9);
  // C splits 3-1: H = 0.811 bits.
  EXPECT_NEAR(w.Weight(AttrSet{2}), 0.8112781, 1e-6);
}

// Monotonicity property (required by the paper for all weights): adding an
// attribute never lowers the weight.
class WeightMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(WeightMonotonicity, AllWeightsMonotone) {
  EncodedInstance enc(Sample());
  DistinctCountWeight dc(enc);
  EntropyWeight ent(enc);
  CardinalityWeight card;
  const WeightFunction* fns[] = {&dc, &ent, &card};
  uint64_t bits = static_cast<uint64_t>(GetParam());
  AttrSet y(bits & 0x7);
  for (const WeightFunction* w : fns) {
    EXPECT_GE(w->Weight(y), 0.0);
    for (AttrId a = 0; a < 3; ++a) {
      AttrSet bigger = y;
      bigger.Add(a);
      EXPECT_GE(w->Weight(bigger), w->Weight(y));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSubsets, WeightMonotonicity,
                         ::testing::Range(0, 8));

TEST(WeightFunction, CostSumsExtensions) {
  EncodedInstance enc(Sample());
  DistinctCountWeight w(enc);
  EXPECT_EQ(w.Cost({AttrSet{0}, AttrSet{1}}), 4.0);
  EXPECT_EQ(w.Cost({AttrSet(), AttrSet()}), 0.0);
  EXPECT_EQ(w.Cost({}), 0.0);
}

TEST(DistinctCountWeight, VariablesCountAsDistinct) {
  Instance inst(Schema::FromNames({"A"}));
  inst.AddTuple({inst.NewVariable(0)});
  inst.AddTuple({inst.NewVariable(0)});
  inst.AddTuple({Value("x")});
  EncodedInstance enc(inst);
  DistinctCountWeight w(enc);
  EXPECT_EQ(w.Weight(AttrSet{0}), 3.0);
}

}  // namespace
}  // namespace retrust
