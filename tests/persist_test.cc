// The persistence subsystem (src/persist/): snapshot round trips that are
// bit-identical at any thread count, hostile-bytes handling (truncation,
// bit flips, future format versions, foreign fingerprints — every failure
// a clean Status, never a crash), the delta journal's encode/replay
// oracle and torn-tail tolerance, and the tenant registry's snapshot-
// backed unload/reload lifecycle with byte-budget eviction.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/session.h"
#include "src/eval/generator.h"
#include "src/eval/perturb.h"
#include "src/persist/io.h"
#include "src/persist/journal.h"
#include "src/persist/snapshot.h"
#include "src/service/tenant_registry.h"

namespace retrust {
namespace {

/// The quickstart table: City -> Zip violated by Carol's Zip.
Instance SmallInstance() {
  Schema schema(std::vector<Attribute>{{"Name", AttrType::kString},
                                       {"City", AttrType::kString},
                                       {"Zip", AttrType::kString}});
  Instance inst(schema);
  inst.AddTuple({Value("Alice"), Value("Springfield"), Value("11111")});
  inst.AddTuple({Value("Bob"), Value("Springfield"), Value("11111")});
  inst.AddTuple({Value("Carol"), Value("Springfield"), Value("22222")});
  inst.AddTuple({Value("Dave"), Value("Shelbyville"), Value("33333")});
  return inst;
}

/// A perturbed census-like workload — big enough that the search makes
/// real choices (variable allocation, cover memoization) a sloppy
/// serializer would get wrong.
struct WorkloadData {
  Instance dirty;
  FDSet sigma;
};

WorkloadData MakeWorkload(int num_tuples = 200) {
  CensusConfig gen;
  gen.num_tuples = num_tuples;
  gen.num_attrs = 8;
  gen.planted_lhs_sizes = {3};
  gen.seed = 17;
  PerturbOptions perturb;
  perturb.fd_error_rate = 0.5;
  perturb.data_error_rate = 0.03;
  perturb.seed = 23;
  GeneratedData clean = GenerateCensusLike(gen);
  PerturbedData dirty = Perturb(clean.instance, clean.planted_fds, perturb);
  return {dirty.data, dirty.fds};
}

std::string Fingerprint(const Repair& repair, const Schema& schema) {
  std::string fp = repair.sigma_prime.ToString(schema);
  fp += "|distc=" + std::to_string(repair.distc);
  fp += "|deltaP=" + std::to_string(repair.delta_p);
  for (const AttrSet& ext : repair.extensions) fp += "|" + ext.ToString();
  fp += "|cells:";
  for (const CellRef& c : repair.changed_cells) {
    fp += std::to_string(c.tuple) + "," + std::to_string(c.attr) + ";";
  }
  fp += "|data:" + repair.data.Decode().ToTable();
  return fp;
}

std::string TempPath(const std::string& name) {
  std::string path = testing::TempDir() + "/" + name;
  // Paths are reused across test-binary runs; a leftover journal from a
  // previous run would (correctly) fail EnableJournal's continuity check.
  std::remove(path.c_str());
  return path;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// The τ-grid every oracle comparison runs: both endpoints plus interior
/// points where the FD/data trade-off actually pivots.
std::vector<RepairRequest> OracleRequests() {
  std::vector<RepairRequest> reqs;
  for (double tau_r : {0.0, 0.3, 0.7, 1.0}) {
    reqs.push_back(RepairRequest::AtRelative(tau_r));
  }
  return reqs;
}

void ExpectSameAnswers(Session& want, Session& got, const char* label) {
  ASSERT_EQ(want.RootDeltaP(), got.RootDeltaP()) << label;
  ASSERT_EQ(want.NumTuples(), got.NumTuples()) << label;
  std::vector<RepairRequest> reqs = OracleRequests();
  std::vector<Result<RepairResponse>> a = want.RepairMany(reqs);
  std::vector<Result<RepairResponse>> b = got.RepairMany(reqs);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].ok(), b[i].ok()) << label << " slot " << i;
    if (!a[i].ok()) {
      EXPECT_EQ(a[i].status().code(), b[i].status().code()) << label;
      continue;
    }
    EXPECT_EQ(Fingerprint(a[i]->repair, want.schema()),
              Fingerprint(b[i]->repair, got.schema()))
        << label << " slot " << i;
  }
}

// --- Snapshot round trip --------------------------------------------------

// Acceptance criterion: a session opened from a snapshot answers the τ
// grid bit-identically to the session that saved it, at EVERY thread
// count — the snapshot fingerprint excludes execution configuration by
// design.
TEST(SnapshotRoundTrip, BitIdenticalAtEveryThreadCount) {
  WorkloadData data = MakeWorkload();
  Result<Session> original = Session::Open(data.dirty, data.sigma);
  ASSERT_TRUE(original.ok()) << original.status().ToString();
  const std::string path = TempPath("roundtrip.snap");
  ASSERT_TRUE(original->SaveSnapshot(path).ok());

  for (int threads : {1, 2, 4, 8}) {
    SessionOptions opts;
    opts.exec.num_threads = threads;
    Result<Session> restored = Session::OpenSnapshot(path, opts);
    ASSERT_TRUE(restored.ok())
        << threads << ": " << restored.status().ToString();
    // The restore adopted ONE context without a build-from-scratch pass.
    EXPECT_EQ(restored->CachedContexts().cached, 1u);
    ExpectSameAnswers(*original, *restored,
                      ("threads=" + std::to_string(threads)).c_str());
  }
}

// A restored session is fully live, not read-only: deltas apply on top of
// it and the post-delta answers still match a never-persisted session
// that took the same path.
TEST(SnapshotRoundTrip, RestoredSessionAcceptsDeltas) {
  WorkloadData data = MakeWorkload(120);
  Result<Session> original = Session::Open(data.dirty, data.sigma);
  ASSERT_TRUE(original.ok());
  const std::string path = TempPath("live_restore.snap");
  ASSERT_TRUE(original->SaveSnapshot(path).ok());
  Result<Session> restored = Session::OpenSnapshot(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  DeltaBatch delta;
  delta.Insert(data.dirty.row(0)).Insert(data.dirty.row(5));
  delta.Update(3, 1, data.dirty.At(7, 1));
  delta.Delete(11);
  ASSERT_TRUE(original->Apply(delta).ok());
  ASSERT_TRUE(restored->Apply(delta).ok());
  EXPECT_EQ(restored->DataVersion(), original->DataVersion());
  ExpectSameAnswers(*original, *restored, "post-delta");
}

// DataVersion travels with the snapshot: a session that applied deltas
// before saving restores at the same version, so journals and the tenant
// registry's dirty tracking stay consistent across a reload.
TEST(SnapshotRoundTrip, DataVersionSurvivesTheFile) {
  Result<Session> session = Session::Open(SmallInstance(), {"City->Zip"});
  ASSERT_TRUE(session.ok());
  DeltaBatch delta;
  delta.Insert({Value("Erin"), Value("Shelbyville"), Value("33333")});
  ASSERT_TRUE(session->Apply(delta).ok());
  const uint64_t version = session->DataVersion();
  EXPECT_GT(version, 1u);

  const std::string path = TempPath("versioned.snap");
  ASSERT_TRUE(session->SaveSnapshot(path).ok());
  Result<Session> restored = Session::OpenSnapshot(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->DataVersion(), version);
  EXPECT_EQ(restored->NumTuples(), 5);
}

// --- Hostile bytes --------------------------------------------------------

class SnapshotCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<Session> session = Session::Open(SmallInstance(), {"City->Zip"});
    ASSERT_TRUE(session.ok());
    path_ = TempPath("corrupt.snap");
    ASSERT_TRUE(session->SaveSnapshot(path_).ok());
    bytes_ = ReadAll(path_);
    ASSERT_GT(bytes_.size(), 16u);
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(SnapshotCorruption, MissingFileIsIoError) {
  Result<Session> r = Session::OpenSnapshot(TempPath("nonexistent.snap"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(SnapshotCorruption, NotASnapshotIsIoError) {
  WriteAll(path_, "Name,City,Zip\nAlice,Springfield,11111\n");
  Result<Session> r = Session::OpenSnapshot(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(SnapshotCorruption, TruncationIsIoError) {
  for (size_t keep : {bytes_.size() - 1, bytes_.size() / 2, size_t{4}}) {
    WriteAll(path_, bytes_.substr(0, keep));
    Result<Session> r = Session::OpenSnapshot(path_);
    ASSERT_FALSE(r.ok()) << "kept " << keep;
    EXPECT_EQ(r.status().code(), StatusCode::kIoError) << "kept " << keep;
  }
}

TEST_F(SnapshotCorruption, BitFlipAnywhereIsIoError) {
  // A flip in the header, early payload, middle, and trailing checksum —
  // every position must be caught by the CRC (or the magic check).
  for (size_t pos : {size_t{2}, size_t{20}, bytes_.size() / 2,
                     bytes_.size() - 2}) {
    std::string flipped = bytes_;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x40);
    WriteAll(path_, flipped);
    Result<Session> r = Session::OpenSnapshot(path_);
    ASSERT_FALSE(r.ok()) << "pos " << pos;
    EXPECT_EQ(r.status().code(), StatusCode::kIoError) << "pos " << pos;
  }
}

TEST_F(SnapshotCorruption, FutureFormatVersionIsVersionMismatch) {
  // Patch the version field and RE-COMPUTE the checksum, so the only
  // thing wrong with the file is the version — the reader must classify
  // it as kVersionMismatch, not generic corruption.
  std::string patched = bytes_;
  const uint32_t future = persist::kSnapshotFormatVersion + 1;
  for (int i = 0; i < 4; ++i) {
    patched[8 + i] = static_cast<char>((future >> (8 * i)) & 0xff);
  }
  const uint32_t crc = persist::Crc32(patched.data(), patched.size() - 4);
  for (int i = 0; i < 4; ++i) {
    patched[patched.size() - 4 + i] =
        static_cast<char>((crc >> (8 * i)) & 0xff);
  }
  WriteAll(path_, patched);
  Result<Session> r = Session::OpenSnapshot(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kVersionMismatch);
}

TEST_F(SnapshotCorruption, ForeignConfigurationIsSchemaMismatch) {
  // The file is intact; the CALLER's configuration differs (weight
  // model). Session::OpenSnapshot owns the fingerprint policy.
  SessionOptions opts;
  opts.weights = WeightModel::kCardinality;
  Result<Session> r = Session::OpenSnapshot(path_, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kSchemaMismatch);

  SessionOptions heuristic_opts;
  heuristic_opts.heuristic.max_diffsets =
      heuristic_opts.heuristic.max_diffsets / 2 + 1;
  Result<Session> h = Session::OpenSnapshot(path_, heuristic_opts);
  ASSERT_FALSE(h.ok());
  EXPECT_EQ(h.status().code(), StatusCode::kSchemaMismatch);
}

// --- Delta journal --------------------------------------------------------

TEST(Journal, DeltaBatchEncodingRoundTrips) {
  DeltaBatch batch;
  batch.Insert({Value("Erin"), Value("Ogdenville"), Value("44444")});
  batch.Insert({Value(int64_t{7}), Value(2.5), Value()});
  batch.Update(3, 1, Value("Shelbyville"));
  batch.Update(0, 2, Value(VarRef{2, 9}));
  batch.Delete(1).Delete(4);

  std::string payload = persist::EncodeDeltaBatch(batch);
  Result<DeltaBatch> decoded = persist::DecodeDeltaBatch(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->inserts.size(), batch.inserts.size());
  for (size_t i = 0; i < batch.inserts.size(); ++i) {
    EXPECT_EQ(decoded->inserts[i], batch.inserts[i]) << i;
  }
  ASSERT_EQ(decoded->updates.size(), batch.updates.size());
  for (size_t i = 0; i < batch.updates.size(); ++i) {
    EXPECT_EQ(decoded->updates[i].tuple, batch.updates[i].tuple);
    EXPECT_EQ(decoded->updates[i].attr, batch.updates[i].attr);
    EXPECT_EQ(decoded->updates[i].value, batch.updates[i].value);
  }
  EXPECT_EQ(decoded->deletes, batch.deletes);

  // Hostile payloads: truncation and garbage decode to errors, not UB.
  EXPECT_FALSE(
      persist::DecodeDeltaBatch(payload.substr(0, payload.size() / 2)).ok());
  EXPECT_FALSE(persist::DecodeDeltaBatch("not a delta batch").ok());
}

// Acceptance criterion: base snapshot + journal replay reconstructs a
// session bit-identical to one that was built from the original data and
// had the same batches applied directly.
TEST(Journal, ReplayOracleMatchesDirectApplication) {
  WorkloadData data = MakeWorkload(150);
  Result<Session> writer = Session::Open(data.dirty, data.sigma);
  ASSERT_TRUE(writer.ok());
  const std::string snap = TempPath("journal_base.snap");
  const std::string journal = TempPath("journal_base.journal");
  ASSERT_TRUE(writer->SaveSnapshot(snap).ok());
  ASSERT_TRUE(writer->EnableJournal(journal).ok());

  std::vector<DeltaBatch> batches(3);
  batches[0].Insert(data.dirty.row(2)).Insert(data.dirty.row(9));
  batches[1].Update(4, 2, data.dirty.At(8, 2)).Delete(13);
  batches[2].Insert(data.dirty.row(1)).Update(0, 3, data.dirty.At(6, 3));
  for (const DeltaBatch& batch : batches) {
    ASSERT_TRUE(writer->Apply(batch).ok());
  }

  Result<Session> replayed = Session::OpenSnapshot(snap);
  ASSERT_TRUE(replayed.ok());
  Result<int> applied = replayed->ReplayJournal(journal);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(*applied, 3);
  EXPECT_EQ(replayed->DataVersion(), writer->DataVersion());
  ExpectSameAnswers(*writer, *replayed, "journal replay");

  // The replayed session can now continue the SAME journal — version
  // continuity holds — and a further delta round-trips through it.
  ASSERT_TRUE(replayed->EnableJournal(journal).ok());
  DeltaBatch more;
  more.Insert(data.dirty.row(4));
  ASSERT_TRUE(replayed->Apply(more).ok());
  ASSERT_TRUE(writer->Apply(more).ok());
  Result<Session> again = Session::OpenSnapshot(snap);
  ASSERT_TRUE(again.ok());
  Result<int> reapplied = again->ReplayJournal(journal);
  ASSERT_TRUE(reapplied.ok());
  EXPECT_EQ(*reapplied, 4);
  ExpectSameAnswers(*writer, *again, "continued journal");
}

TEST(Journal, TornTailIsToleratedAndTruncatedOnAppend) {
  Result<Session> session = Session::Open(SmallInstance(), {"City->Zip"});
  ASSERT_TRUE(session.ok());
  const std::string snap = TempPath("torn.snap");
  const std::string journal = TempPath("torn.journal");
  ASSERT_TRUE(session->SaveSnapshot(snap).ok());
  ASSERT_TRUE(session->EnableJournal(journal).ok());
  DeltaBatch batch;
  batch.Insert({Value("Erin"), Value("Ogdenville"), Value("44444")});
  ASSERT_TRUE(session->Apply(batch).ok());

  // Simulate a crash mid-append: a length prefix promising more bytes
  // than exist. Readers keep the complete prefix and flag the tear.
  std::string bytes = ReadAll(journal);
  std::string torn = bytes + std::string("\x40\x00\x00\x00half", 8);
  WriteAll(journal, torn);
  Result<persist::JournalContents> contents =
      persist::ReadJournalFile(journal);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_TRUE(contents->torn_tail);
  ASSERT_EQ(contents->batches.size(), 1u);

  // Replay sees only the complete record...
  Result<Session> replayed = Session::OpenSnapshot(snap);
  ASSERT_TRUE(replayed.ok());
  Result<int> applied = replayed->ReplayJournal(journal);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 1);
  // ...and re-attaching truncates the tear before the next append.
  ASSERT_TRUE(replayed->EnableJournal(journal).ok());
  DeltaBatch next;
  next.Insert({Value("Frank"), Value("Ogdenville"), Value("44444")});
  ASSERT_TRUE(replayed->Apply(next).ok());
  contents = persist::ReadJournalFile(journal);
  ASSERT_TRUE(contents.ok());
  EXPECT_FALSE(contents->torn_tail);
  EXPECT_EQ(contents->batches.size(), 2u);
}

TEST(Journal, CorruptCompleteRecordIsIoError) {
  Result<Session> session = Session::Open(SmallInstance(), {"City->Zip"});
  ASSERT_TRUE(session.ok());
  const std::string journal = TempPath("flip.journal");
  ASSERT_TRUE(session->EnableJournal(journal).ok());
  DeltaBatch batch;
  batch.Insert({Value("Erin"), Value("Ogdenville"), Value("44444")});
  ASSERT_TRUE(session->Apply(batch).ok());

  // A bit flip INSIDE a complete record is corruption, not a torn write.
  std::string bytes = ReadAll(journal);
  bytes[bytes.size() - 10] = static_cast<char>(bytes[bytes.size() - 10] ^ 1);
  WriteAll(journal, bytes);
  Result<persist::JournalContents> contents =
      persist::ReadJournalFile(journal);
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kIoError);
}

TEST(Journal, MismatchedBaseIsRejected) {
  Result<Session> session = Session::Open(SmallInstance(), {"City->Zip"});
  ASSERT_TRUE(session.ok());
  const std::string journal = TempPath("foreign.journal");

  // Fingerprint from a different configuration → kSchemaMismatch.
  persist::JournalHeader header;
  header.fingerprint = 0xdeadbeef;
  header.base_stamp = 0;
  header.base_version = session->DataVersion();
  ASSERT_TRUE(persist::JournalWriter::Create(journal, header).ok());
  Result<int> replayed = session->ReplayJournal(journal);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kSchemaMismatch);

  // Replay is refused while a journal is attached (it would re-log).
  const std::string attached = TempPath("attached.journal");
  ASSERT_TRUE(session->EnableJournal(attached).ok());
  Result<int> blocked = session->ReplayJournal(attached);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kInvalidArgument);
}

// --- Tenant registry lifecycle --------------------------------------------

std::string WriteSmallCsv(const std::string& name) {
  std::string path = TempPath(name);
  std::ofstream out(path);
  out << "Name,City,Zip\n"
         "Alice,Springfield,11111\n"
         "Bob,Springfield,11111\n"
         "Carol,Springfield,22222\n"
         "Dave,Shelbyville,33333\n";
  return path;
}

TEST(RegistryLifecycle, SnapshotBackedTenantRestoresLazily) {
  Result<Session> origin = Session::Open(SmallInstance(), {"City->Zip"});
  ASSERT_TRUE(origin.ok());
  const std::string snap = TempPath("tenant.snap");
  ASSERT_TRUE(origin->SaveSnapshot(snap).ok());

  service::TenantRegistry registry(SessionOptions{}, nullptr);
  ASSERT_TRUE(registry.AddSnapshot("t", snap).ok());
  Result<service::TenantStats> before = registry.StatsFor("t");
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(before->loaded);  // registration did not read the file

  Result<std::shared_ptr<Session>> session = registry.Get("t");
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ((*session)->RootDeltaP(), origin->RootDeltaP());
  EXPECT_GT(registry.LoadedBytes(), 0u);
}

TEST(RegistryLifecycle, SaveUnloadReloadRoundTrip) {
  service::TenantRegistry registry(SessionOptions{}, nullptr);
  ASSERT_TRUE(
      registry.Add("t", SmallInstance(), {"City->Zip"}).ok());

  // Eager tenants have no reload spec, so unloading them would strand
  // their state — refused until a snapshot gives them one.
  Status refused = registry.Unload("t");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kInvalidArgument);

  const std::string snap = TempPath("reloadable.snap");
  ASSERT_TRUE(registry.SaveSnapshot("t", snap).ok());
  int64_t root = 0;
  {
    Result<std::shared_ptr<Session>> session = registry.Get("t");
    ASSERT_TRUE(session.ok());
    root = (*session)->RootDeltaP();
  }
  ASSERT_TRUE(registry.Unload("t").ok());
  Result<service::TenantStats> unloaded = registry.StatsFor("t");
  ASSERT_TRUE(unloaded.ok());
  EXPECT_FALSE(unloaded->loaded);
  EXPECT_EQ(registry.LoadedBytes(), 0u);

  // The next Get transparently restores from the snapshot.
  Result<std::shared_ptr<Session>> reloaded = registry.Get("t");
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ((*reloaded)->RootDeltaP(), root);
}

TEST(RegistryLifecycle, DirtyUnloadRefusedWithoutSnapshotDir) {
  service::TenantRegistry registry(SessionOptions{}, nullptr);
  ASSERT_TRUE(
      registry.AddCsv("t", WriteSmallCsv("dirty.csv"), {"City->Zip"}).ok());
  {
    Result<std::shared_ptr<Session>> session = registry.Get("t");
    ASSERT_TRUE(session.ok());
    DeltaBatch delta;
    delta.Insert({Value("Erin"), Value("Ogdenville"), Value("44444")});
    ASSERT_TRUE((*session)->Apply(delta).ok());
  }
  // The CSV cannot reproduce the applied delta; without an auto-save
  // directory the unload must refuse rather than silently lose it.
  Status refused = registry.Unload("t");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kInvalidArgument);
  Result<service::TenantStats> stats = registry.StatsFor("t");
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->loaded);
}

TEST(RegistryLifecycle, DirtyUnloadAutoSavesWithSnapshotDir) {
  service::TenantRegistry registry(SessionOptions{}, nullptr,
                                   testing::TempDir());
  ASSERT_TRUE(
      registry.AddCsv("auto", WriteSmallCsv("auto.csv"), {"City->Zip"}).ok());
  uint64_t version = 0;
  {
    Result<std::shared_ptr<Session>> session = registry.Get("auto");
    ASSERT_TRUE(session.ok());
    DeltaBatch delta;
    delta.Insert({Value("Erin"), Value("Ogdenville"), Value("44444")});
    ASSERT_TRUE((*session)->Apply(delta).ok());
    version = (*session)->DataVersion();
  }
  ASSERT_TRUE(registry.Unload("auto").ok());

  // The reload comes from the auto-saved snapshot: the delta survived.
  Result<std::shared_ptr<Session>> reloaded = registry.Get("auto");
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ((*reloaded)->DataVersion(), version);
  EXPECT_EQ((*reloaded)->NumTuples(), 5);
}

TEST(RegistryLifecycle, ByteBudgetEvictsIdleTenants) {
  // A 1-byte budget is unreachable, so every load must evict the other,
  // idle tenant — previously both would stay resident forever.
  service::TenantRegistry registry(SessionOptions{}, nullptr,
                                   testing::TempDir(), /*max_loaded_bytes=*/1);
  ASSERT_TRUE(
      registry.AddCsv("a", WriteSmallCsv("budget_a.csv"), {"City->Zip"}).ok());
  ASSERT_TRUE(
      registry.AddCsv("b", WriteSmallCsv("budget_b.csv"), {"City->Zip"}).ok());

  ASSERT_TRUE(registry.Get("a").ok());  // shared_ptr dropped: "a" is idle
  ASSERT_TRUE(registry.Get("b").ok());
  Result<service::TenantStats> a = registry.StatsFor("a");
  Result<service::TenantStats> b = registry.StatsFor("b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a->loaded);  // LRU victim of b's load
  EXPECT_TRUE(b->loaded);   // the tenant being served is exempt

  // The evicted tenant is not gone — the next request reloads it (and
  // evicts "b" in turn).
  ASSERT_TRUE(registry.Get("a").ok());
  a = registry.StatsFor("a");
  b = registry.StatsFor("b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->loaded);
  EXPECT_FALSE(b->loaded);
}

}  // namespace
}  // namespace retrust
