// The event-driven wire & quotas PR's test surface (named Service* so
// CI's TSan job runs it):
//   * LineDecoder — partial frames split at EVERY byte boundary decode to
//     the same lines; oversized lines are discarded in bounded memory and
//     surface exactly once; the decoder resyncs on the next line.
//   * QuotaManager — token-bucket refill/burst semantics under a fake
//     clock, per-tenant overrides.
//   * Quota admission — an exhausted tenant gets kOverloaded WITHOUT its
//     request ever entering the queue.
//   * Wire pipelining — replies complete out of submission order and are
//     matched back by the echoed "id"; an oversized request line gets a
//     bounded error reply and the connection keeps working.
//   * The PR 5 oracle extended over the wire: pipelined connections
//     produce replies bit-identical to serial per-Session execution at
//     workers 1/2/4/8.
//   * Sweep policy-aware scheduling — greedy-first seeding never changes
//     an exact job's result (stats included).

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/eval/generator.h"
#include "src/eval/perturb.h"
#include "src/service/client.h"
#include "src/service/event_loop.h"
#include "src/service/quota.h"
#include "src/service/server.h"
#include "src/service/wire.h"

namespace retrust::service {
namespace {

// --- LineDecoder ---------------------------------------------------------

std::vector<LineDecoder::Line> DrainDecoder(LineDecoder* decoder) {
  std::vector<LineDecoder::Line> lines;
  LineDecoder::Line line;
  while (decoder->Pop(&line)) lines.push_back(line);
  return lines;
}

TEST(ServiceLineDecoder, SplitAtEveryByteBoundaryDecodesIdentically) {
  const std::string stream = "{\"op\":\"a\"}\r\n\n{\"op\":\"bb\"}\n{\"x\":1}\n";
  // Reference: the whole stream in one Feed.
  std::vector<std::string> expected;
  {
    LineDecoder decoder(1 << 10);
    decoder.Feed(stream.data(), stream.size());
    for (const LineDecoder::Line& l : DrainDecoder(&decoder)) {
      ASSERT_FALSE(l.oversized);
      expected.push_back(l.text);
    }
  }
  ASSERT_EQ(expected.size(), 3u);  // the empty line is dropped
  EXPECT_EQ(expected[0], "{\"op\":\"a\"}");  // '\r' stripped

  // Every split point: bytes [0, cut) then [cut, end).
  for (size_t cut = 0; cut <= stream.size(); ++cut) {
    LineDecoder decoder(1 << 10);
    decoder.Feed(stream.data(), cut);
    decoder.Feed(stream.data() + cut, stream.size() - cut);
    std::vector<std::string> got;
    for (const LineDecoder::Line& l : DrainDecoder(&decoder)) {
      ASSERT_FALSE(l.oversized);
      got.push_back(l.text);
    }
    EXPECT_EQ(got, expected) << "split at byte " << cut;
  }
}

TEST(ServiceLineDecoder, OversizedLineIsBoundedAndResyncs) {
  LineDecoder decoder(8);
  const std::string big(1000, 'x');
  // Streamed in tiny chunks: the decoder must not buffer the blown line.
  for (size_t i = 0; i < big.size(); i += 7) {
    decoder.Feed(big.data() + i, std::min<size_t>(7, big.size() - i));
    EXPECT_LE(decoder.partial_bytes(), 8u);
  }
  EXPECT_TRUE(DrainDecoder(&decoder).empty());  // marker waits for the \n
  const std::string tail = "\nok\n";
  decoder.Feed(tail.data(), tail.size());
  std::vector<LineDecoder::Line> lines = DrainDecoder(&decoder);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(lines[0].oversized);   // exactly one marker per blown line
  EXPECT_FALSE(lines[1].oversized);  // resynced on the next line
  EXPECT_EQ(lines[1].text, "ok");
}

// --- QuotaManager --------------------------------------------------------

TEST(ServiceQuota, TokenBucketRefillsAtRateUpToBurst) {
  double now = 0.0;
  QuotaLimits limits;
  limits.rate = 2.0;   // tokens per second
  limits.burst = 3.0;  // bucket capacity
  QuotaManager quota(limits, [&now] { return now; });

  // Bucket starts FULL: exactly `burst` requests pass, then exhaustion.
  EXPECT_TRUE(quota.TryAcquire("t"));
  EXPECT_TRUE(quota.TryAcquire("t"));
  EXPECT_TRUE(quota.TryAcquire("t"));
  EXPECT_FALSE(quota.TryAcquire("t"));

  now += 0.5;  // refills rate * dt = 1 token
  EXPECT_TRUE(quota.TryAcquire("t"));
  EXPECT_FALSE(quota.TryAcquire("t"));

  now += 100.0;  // refill caps at burst, not rate * dt
  EXPECT_TRUE(quota.TryAcquire("t"));
  EXPECT_TRUE(quota.TryAcquire("t"));
  EXPECT_TRUE(quota.TryAcquire("t"));
  EXPECT_FALSE(quota.TryAcquire("t"));
}

TEST(ServiceQuota, PerTenantOverridesAndUnlimitedDefault) {
  double now = 0.0;
  QuotaManager quota(QuotaLimits{}, [&now] { return now; });  // unlimited

  for (int i = 0; i < 100; ++i) EXPECT_TRUE(quota.TryAcquire("free"));

  QuotaLimits tight;
  tight.rate = 1.0;
  tight.burst = 1.0;
  quota.SetLimits("metered", tight);
  EXPECT_TRUE(quota.TryAcquire("metered"));
  EXPECT_FALSE(quota.TryAcquire("metered"));
  // The other tenant is untouched by the override.
  EXPECT_TRUE(quota.TryAcquire("free"));

  // Lifting the override back to unlimited clears the throttle.
  quota.SetLimits("metered", QuotaLimits{});
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(quota.TryAcquire("metered"));
}

// --- shared tenant fixture ----------------------------------------------

struct WireTenant {
  std::string name;
  Instance data;
  std::vector<std::string> fd_texts;
};

WireTenant MakeWireTenant(int index) {
  CensusConfig gen;
  gen.num_tuples = 90 + 10 * index;
  gen.num_attrs = 8;
  gen.planted_lhs_sizes = {2, 2};
  gen.seed = 60 + static_cast<uint64_t>(index) * 7;
  PerturbOptions perturb;
  perturb.data_error_rate = 0.02;
  perturb.fd_error_rate = 0.5;
  perturb.seed = gen.seed + 1;
  GeneratedData clean = GenerateCensusLike(gen);
  PerturbedData dirty = Perturb(clean.instance, clean.planted_fds, perturb);

  WireTenant tenant;
  tenant.name = "tenant" + std::to_string(index);
  Schema schema = dirty.data.schema();
  for (const FD& fd : dirty.fds.fds()) {
    tenant.fd_texts.push_back(fd.ToString(schema));
  }
  tenant.data = dirty.data;
  return tenant;
}

// --- quota admission through the Server ---------------------------------

TEST(ServiceQuota, ExhaustedTenantIsRejectedWithoutEnqueue) {
  auto now = std::make_shared<double>(0.0);
  ServerOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 0;  // unbounded: only the quota can reject here
  opts.default_quota.rate = 1.0;
  opts.default_quota.burst = 1.0;
  opts.quota_clock = [now] { return *now; };
  Server server(opts);
  WireTenant tenant = MakeWireTenant(0);
  ASSERT_TRUE(server.LoadTenant(tenant.name, tenant.data, tenant.fd_texts).ok());
  Client client = server.client();

  RepairRequest req = RepairRequest::AtRelative(0.5);
  auto first = client.Repair(tenant.name, req);
  auto second = client.Repair(tenant.name, req);   // token already spent
  auto third = client.Repair(tenant.name, req);

  Result<RepairResponse> r2 = second.future.get();
  Result<RepairResponse> r3 = third.future.get();
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kOverloaded);
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), StatusCode::kOverloaded);
  EXPECT_TRUE(first.future.get().ok());

  *now = 1.0;  // one token refilled
  EXPECT_TRUE(client.Repair(tenant.name, req).future.get().ok());

  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.rejected_quota, 2u);
  EXPECT_EQ(stats.completed, 2u);  // the rejected pair never entered a lane
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
}

// --- wire-level pipelining ----------------------------------------------

/// Everything wall-clock or correlation-only stripped, recursively — what
/// remains must be bit-identical across runs.
Json StripVolatile(const Json& value) {
  if (value.is_object()) {
    Json::Object out;
    for (const auto& [key, member] : value.AsObject()) {
      if (key == "seconds" || key == "first_repair_seconds" || key == "id") {
        continue;
      }
      out[key] = StripVolatile(member);
    }
    return Json(std::move(out));
  }
  if (value.is_array()) {
    Json::Array out;
    for (const Json& member : value.AsArray()) {
      out.push_back(StripVolatile(member));
    }
    return Json(std::move(out));
  }
  return value;
}

Json RepairJson(const std::string& tenant, double tau_r, uint64_t seed) {
  Json::Object obj;
  obj["op"] = Json("repair");
  obj["tenant"] = Json(tenant);
  obj["tau_r"] = Json(tau_r);
  obj["seed"] = Json(seed);
  return Json(std::move(obj));
}

TEST(ServiceWire, RepliesCompleteOutOfOrderAndMatchIds) {
  ServerOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 0;
  opts.start_paused = true;  // repairs park in the queue until Resume
  Server server(opts);
  WireTenant tenant = MakeWireTenant(0);
  ASSERT_TRUE(server.LoadTenant(tenant.name, tenant.data, tenant.fd_texts).ok());

  EventLoop::Options loop_opts;
  loop_opts.port = 0;
  EventLoop loop(&server, loop_opts);
  ASSERT_TRUE(loop.Start().ok());

  auto client = WireClient::Connect(loop.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // First on the wire, parked behind the paused queue...
  std::future<Result<Json>> repair =
      (*client)->Call(RepairJson(tenant.name, 0.5, 7));
  // ...while stats (served inline off the reader thread) overtakes it.
  Json::Object stats_req;
  stats_req["op"] = Json("stats");
  std::future<Result<Json>> stats = (*client)->Call(Json(std::move(stats_req)));

  Result<Json> stats_reply = stats.get();
  ASSERT_TRUE(stats_reply.ok()) << stats_reply.status().ToString();
  const Json* ok = stats_reply->Get("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_TRUE(ok->AsBool());
  // The repair genuinely hasn't completed: its reply is still pending.
  EXPECT_EQ(repair.wait_for(std::chrono::milliseconds(50)),
            std::future_status::timeout);

  server.Resume();
  Result<Json> repair_reply = repair.get();
  ASSERT_TRUE(repair_reply.ok()) << repair_reply.status().ToString();
  const Json* distc = repair_reply->Get("distc");
  ASSERT_NE(distc, nullptr);  // matched to the REPAIR, not the stats reply

  loop.Stop();
  server.Stop();
}

TEST(ServiceWire, OversizedLineGetsBoundedErrorAndConnectionSurvives) {
  ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 0;
  Server server(opts);

  EventLoop::Options loop_opts;
  loop_opts.port = 0;
  loop_opts.max_line_bytes = 256;
  EventLoop loop(&server, loop_opts);
  ASSERT_TRUE(loop.Start().ok());

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(loop.port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  std::string giant = "{\"op\":\"" + std::string(4096, 'x') + "\"}\n";
  std::string follow = "{\"op\":\"stats\",\"id\":42}\n";
  std::string wire = giant + follow;
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));

  std::string buf;
  char chunk[4096];
  while (std::count(buf.begin(), buf.end(), '\n') < 2) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0) << "connection died instead of replying";
    buf.append(chunk, static_cast<size_t>(n));
  }
  size_t nl = buf.find('\n');
  Result<Json> first = ParseJson(buf.substr(0, nl));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->Get("ok")->AsBool());
  EXPECT_EQ(first->Get("error")->AsString(), "invalid_argument");
  EXPECT_EQ(first->Get("id"), nullptr);  // content (and id) were discarded

  Result<Json> second = ParseJson(buf.substr(nl + 1, buf.find('\n', nl + 1) - nl - 1));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->Get("ok")->AsBool());  // the connection resynced
  EXPECT_EQ(second->Get("id")->AsInt(), 42);

  ::close(fd);
  loop.Stop();
  server.Stop();
}

// --- the PR 5 oracle, extended over pipelined connections ----------------

/// The per-tenant request script, as wire JSON (ids left to the client).
std::vector<Json> WireScript(const WireTenant& tenant) {
  std::vector<Json> script;
  for (double tr : {0.0, 0.5, 1.0}) {
    script.push_back(RepairJson(tenant.name, tr, 1 + static_cast<uint64_t>(tr * 10)));
  }
  {
    Json::Object sweep;
    sweep["op"] = Json("sweep");
    sweep["tenant"] = Json(tenant.name);
    Json::Array reqs;
    reqs.push_back(RepairJson(tenant.name, 0.3, 2));
    reqs.push_back(RepairJson(tenant.name, 0.8, 3));
    sweep["requests"] = Json(std::move(reqs));
    script.push_back(Json(std::move(sweep)));
  }
  {
    Json::Object apply;
    apply["op"] = Json("apply_delta");
    apply["tenant"] = Json(tenant.name);
    Json::Array updates;
    Json::Array update;
    update.push_back(Json(3));
    update.push_back(Json(1));  // attr by index
    update.push_back(Json("90001"));
    updates.push_back(Json(std::move(update)));
    apply["updates"] = Json(std::move(updates));
    Json::Array deletes;
    deletes.push_back(Json(7));
    apply["deletes"] = Json(std::move(deletes));
    script.push_back(Json(std::move(apply)));
  }
  for (double tr : {0.25, 1.0}) {
    script.push_back(RepairJson(tenant.name, tr, 5));
  }
  return script;
}

/// Serial oracle: one private Session, the SAME wire objects decoded and
/// executed in script order, replies rendered by the same ToJson.
std::vector<std::string> SerialWireExpectation(const WireTenant& tenant) {
  Result<Session> session = Session::Open(tenant.data, tenant.fd_texts);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  const Schema& schema = session->schema();
  std::vector<std::string> fps;
  for (const Json& req : WireScript(tenant)) {
    const std::string op = req.Get("op")->AsString();
    if (op == "repair") {
      Result<RepairRequest> rr = RepairRequestFromJson(req);
      EXPECT_TRUE(rr.ok());
      Result<RepairResponse> r = session->Repair(*rr);
      fps.push_back(StripVolatile(r.ok() ? ToJson(*r, schema)
                                         : ErrorJson(r.status())).Dump());
    } else if (op == "sweep") {
      std::vector<RepairRequest> batch;
      for (const Json& r : req.Get("requests")->AsArray()) {
        Result<RepairRequest> rr = RepairRequestFromJson(r);
        EXPECT_TRUE(rr.ok());
        batch.push_back(*rr);
      }
      Json::Array results;
      for (const Result<RepairResponse>& r : session->RepairMany(batch)) {
        results.push_back(r.ok() ? ToJson(*r, schema) : ErrorJson(r.status()));
      }
      Json::Object obj;
      obj["ok"] = Json(true);
      obj["results"] = Json(std::move(results));
      fps.push_back(StripVolatile(Json(std::move(obj))).Dump());
    } else if (op == "apply_delta") {
      Result<DeltaBatch> delta = DeltaBatchFromJson(req, schema);
      EXPECT_TRUE(delta.ok());
      Result<ApplyStats> r = session->Apply(*delta);
      fps.push_back(StripVolatile(r.ok() ? ToJson(*r)
                                         : ErrorJson(r.status())).Dump());
    } else {
      ADD_FAILURE() << "unexpected op " << op;
    }
  }
  return fps;
}

TEST(ServiceWireOracle, PipelinedConnectionsMatchSerialSessions) {
  const int kNumTenants = 2;
  std::vector<WireTenant> tenants;
  std::vector<std::vector<std::string>> expected;
  for (int t = 0; t < kNumTenants; ++t) {
    tenants.push_back(MakeWireTenant(t));
    expected.push_back(SerialWireExpectation(tenants[t]));
  }

  for (int workers : {1, 2, 4, 8}) {
    ServerOptions opts;
    opts.workers = workers;
    opts.queue_capacity = 0;
    Server server(opts);
    for (const WireTenant& tenant : tenants) {
      ASSERT_TRUE(
          server.LoadTenant(tenant.name, tenant.data, tenant.fd_texts).ok());
    }
    EventLoop::Options loop_opts;
    loop_opts.port = 0;
    EventLoop loop(&server, loop_opts);
    ASSERT_TRUE(loop.Start().ok());

    // One pipelined connection per tenant; the full script goes out
    // before any reply is awaited, interleaved across tenants so the
    // queue holds a genuinely mixed stream.
    std::vector<std::unique_ptr<WireClient>> clients;
    for (int t = 0; t < kNumTenants; ++t) {
      auto c = WireClient::Connect(loop.port());
      ASSERT_TRUE(c.ok()) << c.status().ToString();
      clients.push_back(std::move(*c));
    }
    std::vector<std::vector<Json>> scripts;
    for (const WireTenant& tenant : tenants) {
      scripts.push_back(WireScript(tenant));
    }
    std::vector<std::vector<std::future<Result<Json>>>> futures(kNumTenants);
    for (size_t step = 0; step < scripts[0].size(); ++step) {
      for (int t = 0; t < kNumTenants; ++t) {
        futures[t].push_back(clients[t]->Call(scripts[t][step]));
      }
    }
    for (int t = 0; t < kNumTenants; ++t) {
      for (size_t i = 0; i < futures[t].size(); ++i) {
        Result<Json> reply = futures[t][i].get();
        ASSERT_TRUE(reply.ok()) << reply.status().ToString();
        EXPECT_EQ(StripVolatile(*reply).Dump(), expected[t][i])
            << "workers=" << workers << " tenant=" << t << " request=" << i;
      }
    }
    EXPECT_EQ(server.Stats().rejected(), 0u);
    clients.clear();
    loop.Stop();
    server.Stop();
  }
}

// --- policy-aware sweep scheduling ---------------------------------------

TEST(ServiceSweepSeeding, GreedyFirstNeverChangesExactResults) {
  WireTenant tenant = MakeWireTenant(1);
  Result<Session> session = Session::Open(tenant.data, tenant.fd_texts);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  const Schema& schema = session->schema();

  auto request = [](double tau_r, search::SearchPolicy policy) {
    RepairRequest req = RepairRequest::AtRelative(tau_r);
    req.policy = policy;
    req.seed = 11;
    return req;
  };

  // Exact-only baseline vs the same exact jobs inside a mixed batch whose
  // greedy wave seeds everyone's upper bound.
  std::vector<RepairRequest> exact_only = {
      request(0.5, search::SearchPolicy::kExact),
      request(1.0, search::SearchPolicy::kExact)};
  std::vector<RepairRequest> mixed = {
      request(0.2, search::SearchPolicy::kGreedy),
      request(0.5, search::SearchPolicy::kExact),
      request(0.7, search::SearchPolicy::kAnytime),
      request(1.0, search::SearchPolicy::kExact)};

  auto fingerprint = [&](const Result<RepairResponse>& r) {
    return StripVolatile(r.ok() ? ToJson(*r, schema) : ErrorJson(r.status()))
        .Dump();
  };

  std::vector<Result<RepairResponse>> base = session->RepairMany(exact_only);
  std::vector<Result<RepairResponse>> seeded = session->RepairMany(mixed);
  ASSERT_EQ(base.size(), 2u);
  ASSERT_EQ(seeded.size(), 4u);
  EXPECT_EQ(fingerprint(seeded[1]), fingerprint(base[0]));
  EXPECT_EQ(fingerprint(seeded[3]), fingerprint(base[1]));
  // The seeded anytime job still finds a repair: the engine prunes only
  // STRICTLY above the seed, so the greedy incumbent's cost stays in play.
  ASSERT_TRUE(seeded[2].ok()) << seeded[2].status().ToString();

  // Same property through SearchMany (the RunSearches wave path): exact
  // probes — stats included — are bit-identical with and without the
  // greedy wave.
  std::vector<RepairRequest> probe_exact = {
      request(0.6, search::SearchPolicy::kExact)};
  std::vector<RepairRequest> probe_mixed = {
      request(0.1, search::SearchPolicy::kGreedy),
      request(0.6, search::SearchPolicy::kExact)};
  std::vector<Result<SearchProbe>> probes_base =
      session->SearchMany(probe_exact);
  std::vector<Result<SearchProbe>> probes_mixed =
      session->SearchMany(probe_mixed);
  ASSERT_EQ(probes_base.size(), 1u);
  ASSERT_EQ(probes_mixed.size(), 2u);
  auto probe_fp = [](const Result<SearchProbe>& r) {
    return StripVolatile(r.ok() ? ToJson(*r) : ErrorJson(r.status())).Dump();
  };
  EXPECT_EQ(probe_fp(probes_mixed[1]), probe_fp(probes_base[0]));
}

}  // namespace
}  // namespace retrust::service
