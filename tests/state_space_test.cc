#include "src/repair/state_space.h"

#include <gtest/gtest.h>

#include <set>

namespace retrust {
namespace {

// Figure 4: R = {A,B,C,D,E,F}, Σ = {A -> F}; extensions draw from
// {B,C,D,E} (A is the LHS, F the RHS).
TEST(StateSpace, AllowedExcludesLhsAndRhs) {
  Schema s = Schema::FromNames({"A", "B", "C", "D", "E", "F"});
  FDSet sigma = FDSet::Parse({"A->F"}, s);
  StateSpace space(sigma, s);
  EXPECT_EQ(space.allowed(0), (AttrSet{1, 2, 3, 4}));
}

TEST(StateSpace, Fig4TreeHas16States) {
  Schema s = Schema::FromNames({"A", "B", "C", "D", "E", "F"});
  FDSet sigma = FDSet::Parse({"A->F"}, s);
  StateSpace space(sigma, s);
  auto all = space.EnumerateAll();
  EXPECT_EQ(all.size(), 16u);  // 2^4 subsets of {B,C,D,E}
  EXPECT_EQ(space.SpaceSize(), 16.0);
  // Each state appears exactly once (the tree covers the lattice).
  std::set<uint64_t> masks;
  for (const auto& st : all) masks.insert(st.ext[0].bits());
  EXPECT_EQ(masks.size(), 16u);
}

// Figure 5: R = {A,B,C,D}, Σ = {A->B, C->D}.
TEST(StateSpace, Fig5SpaceAndRootChildren) {
  Schema s = Schema::FromNames({"A", "B", "C", "D"});
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, s);
  StateSpace space(sigma, s);
  EXPECT_EQ(space.allowed(0), (AttrSet{2, 3}));  // {C,D}
  EXPECT_EQ(space.allowed(1), (AttrSet{0, 1}));  // {A,B}
  auto all = space.EnumerateAll();
  EXPECT_EQ(all.size(), 16u);  // 4 x 4 as in Figure 5

  SearchState root = SearchState::Root(2);
  auto children = space.Children(root);
  // Exactly (C,φ), (D,φ), (φ,A), (φ,B).
  EXPECT_EQ(children.size(), 4u);
}

TEST(StateSpace, ParentChildInverse) {
  Schema s = Schema::FromNames({"A", "B", "C", "D"});
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, s);
  StateSpace space(sigma, s);
  for (const SearchState& st : space.EnumerateAll()) {
    for (const SearchState& child : space.Children(st)) {
      EXPECT_TRUE(space.Valid(child));
      EXPECT_EQ(space.Parent(child), st);
      EXPECT_TRUE(child.Extends(st));
      EXPECT_EQ(child.TotalAppended(), st.TotalAppended() + 1);
    }
  }
}

TEST(StateSpace, ParentOfRootThrows) {
  Schema s = Schema::FromNames({"A", "B", "C"});
  FDSet sigma = FDSet::Parse({"A->B"}, s);
  StateSpace space(sigma, s);
  EXPECT_THROW(space.Parent(SearchState::Root(1)), std::invalid_argument);
}

TEST(StateSpace, ParentRemovesGreatestAttrFromLastComponent) {
  Schema s = Schema::FromNames({"A", "B", "C", "D", "E"});
  FDSet sigma = FDSet::Parse({"A->B", "A->C"}, s);
  StateSpace space(sigma, s);
  // State ({D}, {D}): greatest attr D appears in components 0 and 1; the
  // parent removes it from the LAST one.
  SearchState st({AttrSet{3}, AttrSet{3}});
  EXPECT_EQ(space.Parent(st), SearchState({AttrSet{3}, AttrSet()}));
}

TEST(StateSpace, Valid) {
  Schema s = Schema::FromNames({"A", "B", "C", "D"});
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, s);
  StateSpace space(sigma, s);
  EXPECT_TRUE(space.Valid(SearchState({AttrSet{2}, AttrSet{0}})));
  // A (attr 0) is FD 0's LHS: not allowed in its extension.
  EXPECT_FALSE(space.Valid(SearchState({AttrSet{0}, AttrSet()})));
  // B (attr 1) is FD 0's RHS.
  EXPECT_FALSE(space.Valid(SearchState({AttrSet{1}, AttrSet()})));
  // Wrong arity.
  EXPECT_FALSE(space.Valid(SearchState(1)));
}

// Property: the unique-parent tree enumerates the full cross product of
// extension subsets exactly once, for varied shapes.
struct SpaceShape {
  std::vector<std::string> fds;
  int num_attrs;
};

class StateSpaceCoverage : public ::testing::TestWithParam<SpaceShape> {};

TEST_P(StateSpaceCoverage, TreeCoversLatticeExactlyOnce) {
  std::vector<std::string> names;
  for (int i = 0; i < GetParam().num_attrs; ++i) {
    names.push_back(std::string(1, static_cast<char>('A' + i)));
  }
  Schema s = Schema::FromNames(names);
  FDSet sigma = FDSet::Parse(GetParam().fds, s);
  StateSpace space(sigma, s);
  auto all = space.EnumerateAll();
  EXPECT_EQ(static_cast<double>(all.size()), space.SpaceSize());
  std::set<std::vector<uint64_t>> seen;
  for (const auto& st : all) {
    std::vector<uint64_t> key;
    for (AttrSet y : st.ext) key.push_back(y.bits());
    EXPECT_TRUE(seen.insert(key).second) << "duplicate state";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StateSpaceCoverage,
    ::testing::Values(SpaceShape{{"A->B"}, 4},
                      SpaceShape{{"A->B", "C->D"}, 4},
                      SpaceShape{{"A->B", "B->C", "C->A"}, 5},
                      SpaceShape{{"A,B->C"}, 6},
                      SpaceShape{{"A->B", "A->B"}, 4}));  // duplicate FDs

}  // namespace
}  // namespace retrust
