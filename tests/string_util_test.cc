#include "src/util/string_util.h"

#include <gtest/gtest.h>

namespace retrust {
namespace {

TEST(Split, Basic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Trim, Basic) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
}

TEST(Join, Basic) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(ParseInt64, AcceptsFullIntegers) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
}

TEST(ParseInt64, RejectsPartialOrEmpty) {
  int64_t v = 0;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("4x", &v));
  EXPECT_FALSE(ParseInt64("x4", &v));
  EXPECT_FALSE(ParseInt64("4.5", &v));
}

TEST(ParseDouble, AcceptsFullDoubles) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("1.5", &v));
  EXPECT_EQ(v, 1.5);
  EXPECT_TRUE(ParseDouble("-2e3", &v));
  EXPECT_EQ(v, -2000.0);
  EXPECT_TRUE(ParseDouble("7", &v));
  EXPECT_EQ(v, 7.0);
}

TEST(ParseDouble, RejectsPartialOrEmpty) {
  double v = 0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
}

}  // namespace
}  // namespace retrust
