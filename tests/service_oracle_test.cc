// The service-layer determinism oracle (acceptance criterion of the
// service PR): N tenants × M interleaved repair/sweep/search/apply_delta
// requests through one Server produce responses BIT-IDENTICAL to serial
// per-Session execution in submission order, for workers ∈ {1, 2, 4, 8}.
//
// Why this holds by construction: per-tenant lanes are FIFO, only lane
// heads dispatch, reads commute (Session's const surface is thread-safe
// and deterministic), and an apply_delta is a lane barrier — so every
// tenant observes its own requests in submission order with deltas fully
// ordered against reads, while tenants run concurrently against each
// other. The worker count can then only change wall-clock, never a byte
// of any response. (Named Service* so CI's TSan job runs it.)

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/eval/generator.h"
#include "src/eval/perturb.h"
#include "src/service/server.h"

namespace retrust::service {
namespace {

struct TenantWorkload {
  std::string name;
  Instance data;
  std::vector<std::string> fd_texts;
  DeltaBatch delta;  ///< applied mid-script
};

TenantWorkload MakeTenant(int index) {
  CensusConfig gen;
  gen.num_tuples = 120 + 10 * index;  // distinct shapes per tenant
  gen.num_attrs = 8;
  gen.planted_lhs_sizes = {2, 2};
  gen.seed = 40 + static_cast<uint64_t>(index) * 7;
  PerturbOptions perturb;
  perturb.data_error_rate = 0.02;
  perturb.fd_error_rate = 0.5;
  perturb.seed = gen.seed + 1;
  GeneratedData clean = GenerateCensusLike(gen);
  PerturbedData dirty = Perturb(clean.instance, clean.planted_fds, perturb);

  TenantWorkload tenant;
  tenant.name = "tenant" + std::to_string(index);
  Schema schema = dirty.data.schema();
  for (const FD& fd : dirty.fds.fds()) {
    tenant.fd_texts.push_back(fd.ToString(schema));
  }
  // Hold the last rows back as the delta traffic; also update one cell and
  // delete one tuple so all three mutation kinds cross the barrier.
  const int held_back = 4;
  const int n = dirty.data.NumTuples() - held_back;
  Instance base(schema);
  for (TupleId t = 0; t < n; ++t) base.AddTuple(dirty.data.row(t));
  tenant.data = std::move(base);
  for (int i = 0; i < held_back; ++i) {
    tenant.delta.Insert(dirty.data.row(n + i));
  }
  tenant.delta.Update(3, 1, Value(static_cast<int64_t>(90000 + index)));
  tenant.delta.Delete(7);
  return tenant;
}

/// The deterministic payload of a reply (everything except wall-clock).
std::string Fingerprint(const Result<RepairResponse>& r,
                        const Schema& schema) {
  if (!r.ok()) return std::string("error:") + StatusCodeName(r.status().code());
  const Repair& repair = r->repair;
  std::string fp = "tau=" + std::to_string(r->tau);
  fp += "|sigma=" + repair.sigma_prime.ToString(schema);
  fp += "|distc=" + std::to_string(repair.distc);
  fp += "|deltaP=" + std::to_string(repair.delta_p);
  fp += "|cells:";
  for (const CellRef& c : repair.changed_cells) {
    fp += std::to_string(c.tuple) + "," + std::to_string(c.attr) + ";";
  }
  fp += "|data:" + repair.data.Decode().ToTable();
  return fp;
}

std::string Fingerprint(const Result<SearchProbe>& r) {
  if (!r.ok()) return std::string("error:") + StatusCodeName(r.status().code());
  std::string fp = "tau=" + std::to_string(r->tau);
  fp += "|found=" + std::to_string(r->result.repair.has_value());
  if (r->result.repair.has_value()) {
    fp += "|distc=" + std::to_string(r->result.repair->distc);
    fp += "|deltaP=" + std::to_string(r->result.repair->delta_p);
  }
  fp += "|visited=" + std::to_string(r->result.stats.states_visited);
  return fp;
}

std::string Fingerprint(const Result<ApplyStats>& r) {
  if (!r.ok()) return std::string("error:") + StatusCodeName(r.status().code());
  return "n=" + std::to_string(r->num_tuples) +
         "|v=" + std::to_string(r->data_version) +
         "|groups=" + std::to_string(r->groups_preserved) + "/" +
         std::to_string(r->groups_changed);
}

/// Per-tenant script, mirrored on both sides. Phase 1: mixed reads;
/// phase 2: the delta; phase 3: reads again (post-delta answers).
const std::vector<double> kTausR = {0.0, 0.3, 1.0};

std::vector<RepairRequest> ReadPhase(uint64_t seed_base) {
  std::vector<RepairRequest> reqs;
  for (double tr : kTausR) {
    RepairRequest req = RepairRequest::AtRelative(tr);
    req.seed = seed_base + static_cast<uint64_t>(tr * 10);
    reqs.push_back(req);
  }
  return reqs;
}

/// Serial oracle: one private Session per tenant, script in order.
std::vector<std::string> SerialExpectation(const TenantWorkload& tenant) {
  std::vector<std::string> fps;
  Result<Session> session = Session::Open(tenant.data, tenant.fd_texts);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  const Schema& schema = session->schema();

  for (const RepairRequest& req : ReadPhase(1)) {
    fps.push_back(Fingerprint(session->Repair(req), schema));
  }
  {  // the sweep runs the batch through RepairMany, like the service verb
    std::vector<RepairRequest> batch = ReadPhase(2);
    for (const Result<RepairResponse>& r : session->RepairMany(batch)) {
      fps.push_back(Fingerprint(r, schema));
    }
  }
  fps.push_back(Fingerprint(session->Search(RepairRequest::AtRelative(0.5))));
  fps.push_back(Fingerprint(session->Apply(tenant.delta)));
  for (const RepairRequest& req : ReadPhase(3)) {
    fps.push_back(Fingerprint(session->Repair(req), schema));
  }
  return fps;
}

/// Service run: every tenant's full script submitted up-front, tenants
/// interleaved request-by-request, then futures collected in script order.
std::vector<std::vector<std::string>> ServiceRun(
    const std::vector<TenantWorkload>& tenants, int workers) {
  ServerOptions opts;
  opts.workers = workers;
  opts.queue_capacity = 0;  // unbounded: this test is about ordering
  Server server(opts);
  std::vector<const Schema*> schemas;
  for (const TenantWorkload& tenant : tenants) {
    EXPECT_TRUE(
        server.LoadTenant(tenant.name, tenant.data, tenant.fd_texts).ok());
    schemas.push_back(
        &(*server.tenants().Get(tenant.name))->schema());
  }
  Client client = server.client();

  struct TenantFutures {
    std::vector<Submitted<Result<RepairResponse>>> repairs1;
    Submitted<std::vector<Result<RepairResponse>>> sweep;
    Submitted<Result<SearchProbe>> search;
    Submitted<Result<ApplyStats>> apply;
    std::vector<Submitted<Result<RepairResponse>>> repairs2;
  };
  std::vector<TenantFutures> futures(tenants.size());

  // Interleave ACROSS tenants per submission step, so the queue holds a
  // genuinely mixed request stream.
  for (const RepairRequest& req : ReadPhase(1)) {
    for (size_t t = 0; t < tenants.size(); ++t) {
      futures[t].repairs1.push_back(client.Repair(tenants[t].name, req));
    }
  }
  for (size_t t = 0; t < tenants.size(); ++t) {
    futures[t].sweep = client.Sweep(tenants[t].name, ReadPhase(2));
  }
  for (size_t t = 0; t < tenants.size(); ++t) {
    futures[t].search =
        client.Search(tenants[t].name, RepairRequest::AtRelative(0.5));
  }
  for (size_t t = 0; t < tenants.size(); ++t) {
    futures[t].apply = client.Apply(tenants[t].name, tenants[t].delta);
  }
  for (const RepairRequest& req : ReadPhase(3)) {
    for (size_t t = 0; t < tenants.size(); ++t) {
      futures[t].repairs2.push_back(client.Repair(tenants[t].name, req));
    }
  }

  std::vector<std::vector<std::string>> fps(tenants.size());
  for (size_t t = 0; t < tenants.size(); ++t) {
    const Schema& schema = *schemas[t];
    for (auto& f : futures[t].repairs1) {
      fps[t].push_back(Fingerprint(f.future.get(), schema));
    }
    for (const Result<RepairResponse>& r : futures[t].sweep.future.get()) {
      fps[t].push_back(Fingerprint(r, schema));
    }
    fps[t].push_back(Fingerprint(futures[t].search.future.get()));
    fps[t].push_back(Fingerprint(futures[t].apply.future.get()));
    for (auto& f : futures[t].repairs2) {
      fps[t].push_back(Fingerprint(f.future.get(), schema));
    }
  }

  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.rejected(), 0u) << "rejections under unbounded capacity";
  return fps;
}

TEST(ServiceOracle, ConcurrentMultiTenantMatchesSerialPerSession) {
  const int kNumTenants = 3;
  std::vector<TenantWorkload> tenants;
  std::vector<std::vector<std::string>> expected;
  for (int t = 0; t < kNumTenants; ++t) {
    tenants.push_back(MakeTenant(t));
    expected.push_back(SerialExpectation(tenants.back()));
  }

  for (int workers : {1, 2, 4, 8}) {
    std::vector<std::vector<std::string>> got = ServiceRun(tenants, workers);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t t = 0; t < got.size(); ++t) {
      ASSERT_EQ(got[t].size(), expected[t].size()) << "tenant " << t;
      for (size_t i = 0; i < got[t].size(); ++i) {
        EXPECT_EQ(got[t][i], expected[t][i])
            << "workers=" << workers << " tenant=" << t << " request=" << i;
      }
    }
  }
}

/// Same property with the shared session pool enabled: tenant Sessions
/// scheduling sweeps and deltas on one process-wide pool must not change
/// a byte either.
TEST(ServiceOracle, SharedSessionPoolIsBitIdentical) {
  std::vector<TenantWorkload> tenants;
  std::vector<std::vector<std::string>> expected;
  for (int t = 0; t < 2; ++t) {
    tenants.push_back(MakeTenant(t));
    expected.push_back(SerialExpectation(tenants.back()));
  }

  ServerOptions opts;
  opts.workers = 4;
  opts.session_threads = 4;
  opts.queue_capacity = 0;
  Server server(opts);
  std::vector<const Schema*> schemas;
  for (const TenantWorkload& tenant : tenants) {
    ASSERT_TRUE(
        server.LoadTenant(tenant.name, tenant.data, tenant.fd_texts).ok());
    schemas.push_back(&(*server.tenants().Get(tenant.name))->schema());
  }
  Client client = server.client();

  for (size_t t = 0; t < tenants.size(); ++t) {
    std::vector<std::string> fps;
    const Schema& schema = *schemas[t];
    for (const RepairRequest& req : ReadPhase(1)) {
      fps.push_back(
          Fingerprint(client.Repair(tenants[t].name, req).future.get(),
                      schema));
    }
    for (const Result<RepairResponse>& r :
         client.Sweep(tenants[t].name, ReadPhase(2)).future.get()) {
      fps.push_back(Fingerprint(r, schema));
    }
    fps.push_back(Fingerprint(
        client.Search(tenants[t].name, RepairRequest::AtRelative(0.5))
            .future.get()));
    fps.push_back(
        Fingerprint(client.Apply(tenants[t].name, tenants[t].delta)
                        .future.get()));
    for (const RepairRequest& req : ReadPhase(3)) {
      fps.push_back(
          Fingerprint(client.Repair(tenants[t].name, req).future.get(),
                      schema));
    }
    ASSERT_EQ(fps.size(), expected[t].size());
    for (size_t i = 0; i < fps.size(); ++i) {
      EXPECT_EQ(fps[i], expected[t][i]) << "tenant=" << t << " request=" << i;
    }
  }
}

}  // namespace
}  // namespace retrust::service
