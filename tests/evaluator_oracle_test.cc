// Oracle tests for the δP evaluation pipeline (ViolationTable → group
// bitset → CoverMemo; DESIGN.md): every fast path must be BIT-IDENTICAL to
// the legacy per-state FD-set scan it replaced, across randomized
// instances, states, thread counts, and τ values. The suite is named
// Exec* so CI's TSan job exercises the memo's concurrency too.

#include <gtest/gtest.h>

#include "src/eval/experiment.h"
#include "src/exec/sweep.h"
#include "src/fd/violation_table.h"
#include "src/graph/cover_memo.h"
#include "src/repair/evaluation.h"
#include "src/util/rng.h"

namespace retrust {
namespace {

ExperimentData MakeData(uint64_t seed, int num_tuples = 300) {
  CensusConfig gen;
  gen.num_tuples = num_tuples;
  gen.num_attrs = 12;
  gen.planted_lhs_sizes = {4};
  gen.seed = seed;
  PerturbOptions perturb;
  perturb.fd_error_rate = 0.5;
  perturb.data_error_rate = 0.03;
  perturb.seed = seed + 1;
  return PrepareExperiment(gen, perturb);
}

// The pre-refactor violation test, verbatim: difference set d violates FD
// i of the relaxation iff A_i ∈ d and (X_i ∪ Y_i) ∩ d = ∅.
bool LegacyGroupViolated(const FDSet& sigma, AttrSet diff,
                         const SearchState& s) {
  for (int i = 0; i < sigma.size(); ++i) {
    const FD& fd = sigma.fd(i);
    if (diff.Contains(fd.rhs) && !fd.lhs.Union(s.ext[i]).Intersects(diff)) {
      return true;
    }
  }
  return false;
}

// The pre-refactor FdSearchContext::CoverSize, verbatim: concatenate the
// edges of violated groups in canonical index order, greedy matching.
int64_t LegacyCoverSize(const FdSearchContext& ctx, const SearchState& s) {
  std::vector<Edge> edges;
  for (const DiffSetGroup& g : ctx.index().groups()) {
    if (LegacyGroupViolated(ctx.sigma(), g.diff, s)) {
      edges.insert(edges.end(), g.edges.begin(), g.edges.end());
    }
  }
  MatchingCoverScratch scratch(ctx.num_tuples());
  return scratch.CoverSize(edges);
}

// A mix of states: the root, random walks down the unique-parent tree
// (realistic search states), and uniformly random extension vectors within
// allowed() (adversarial coverage).
std::vector<SearchState> RandomStates(const FdSearchContext& ctx, Rng* rng,
                                      size_t count) {
  std::vector<SearchState> out;
  out.push_back(SearchState::Root(ctx.sigma().size()));
  while (out.size() < count / 2) {
    SearchState s = SearchState::Root(ctx.sigma().size());
    int depth = static_cast<int>(rng->NextInt(1, 4));
    for (int d = 0; d < depth; ++d) {
      std::vector<SearchState> kids = ctx.space().Children(s);
      if (kids.empty()) break;
      s = kids[rng->PickIndex(kids)];
    }
    out.push_back(std::move(s));
  }
  while (out.size() < count) {
    SearchState s(ctx.sigma().size());
    for (int i = 0; i < ctx.sigma().size(); ++i) {
      for (AttrId a : ctx.space().allowed(i)) {
        if (rng->NextBool(0.25)) s.ext[i].Add(a);
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

TEST(ExecEvaluationOracle, ViolationTableMatchesLegacyScan) {
  for (uint64_t seed : {11u, 42u, 99u}) {
    ExperimentData data = MakeData(seed);
    const FdSearchContext& ctx = data.context();
    const ViolationTable& table = ctx.evaluator().table();
    ASSERT_EQ(table.num_groups(), ctx.index().size());
    ASSERT_EQ(table.num_fds(), ctx.sigma().size());
    Rng rng(seed);
    for (const SearchState& s : RandomStates(ctx, &rng, 40)) {
      GroupBitset bits;
      table.ViolatedGroups(s.ext, &bits);
      for (int g = 0; g < ctx.index().size(); ++g) {
        bool legacy =
            LegacyGroupViolated(ctx.sigma(), ctx.index().group(g).diff, s);
        EXPECT_EQ(table.GroupViolated(g, s.ext), legacy)
            << "group " << g << " state " << s.ToString();
        EXPECT_EQ(bits.Test(g), legacy)
            << "bitset group " << g << " state " << s.ToString();
      }
    }
  }
}

TEST(ExecEvaluationOracle, MemoizedCoverMatchesLegacyScan) {
  for (uint64_t seed : {7u, 23u}) {
    ExperimentData data = MakeData(seed);
    const FdSearchContext& ctx = data.context();
    Rng rng(seed);
    std::vector<SearchState> states = RandomStates(ctx, &rng, 30);
    SearchStats stats;
    std::vector<int64_t> first_pass;
    for (const SearchState& s : states) {
      int64_t got = ctx.CoverSize(s, &stats);
      EXPECT_EQ(got, LegacyCoverSize(ctx, s)) << s.ToString();
      first_pass.push_back(got);
    }
    // Second pass re-evaluates every state: answers must be identical and
    // now come (at least partly) from the memo.
    int64_t hits_before = stats.vc_memo_hits;
    for (size_t i = 0; i < states.size(); ++i) {
      EXPECT_EQ(ctx.CoverSize(states[i], &stats), first_pass[i]);
    }
    EXPECT_GT(stats.vc_memo_hits, hits_before);
  }
}

TEST(ExecEvaluationOracle, OrderedCoverMatchesOrderSensitiveConcat) {
  ExperimentData data = MakeData(5);
  const FdSearchContext& ctx = data.context();
  const DeltaPEvaluator& ev = ctx.evaluator();
  int n = ctx.index().size();
  ASSERT_GT(n, 1);
  Rng rng(5);
  for (int trial = 0; trial < 60; ++trial) {
    // A random subset of group ids in a random ORDER — the order is part
    // of the semantics (greedy matching is order-sensitive).
    std::vector<int> groups;
    for (int g = 0; g < n; ++g) {
      if (rng.NextBool(0.3)) groups.push_back(g);
    }
    rng.Shuffle(&groups);
    int32_t got = ev.CoverOfGroups(groups, nullptr);
    std::vector<Edge> edges;
    for (int g : groups) {
      const auto& ge = ctx.index().group(g).edges;
      edges.insert(edges.end(), ge.begin(), ge.end());
    }
    MatchingCoverScratch scratch(ctx.num_tuples());
    EXPECT_EQ(got, scratch.CoverSize(edges));
    // Memo hit path answers the same.
    EXPECT_EQ(ev.CoverOfGroups(groups, nullptr), got);
  }
}

TEST(ExecEvaluationOracle, GcMatchesLegacyHeuristicPath) {
  for (uint64_t seed : {13u, 57u}) {
    ExperimentData data = MakeData(seed);
    const FdSearchContext& ctx = data.context();
    // A standalone GcHeuristic (no evaluator) keeps the pre-refactor scan
    // path; the context's heuristic runs through the table + cover memo.
    // Identical inputs must give EXACTLY identical gc values.
    GcHeuristic legacy(ctx.sigma(), ctx.space(), ctx.weights(), ctx.index(),
                       ctx.num_tuples());
    Rng rng(seed);
    std::vector<SearchState> states = RandomStates(ctx, &rng, 16);
    for (double tau_r : {0.0, 0.2, 0.6, 1.0}) {
      int64_t tau = TauFromRelative(tau_r, data.root_delta_p);
      for (const SearchState& s : states) {
        SearchStats st_new;
        SearchStats st_old;
        EXPECT_EQ(ctx.heuristic().Compute(s, tau, &st_new),
                  legacy.Compute(s, tau, &st_old))
            << "tau_r=" << tau_r << " state " << s.ToString();
      }
    }
  }
}

TEST(ExecEvaluationOracle, ModifyFdsBitIdenticalAcrossThreadsAndTaus) {
  for (uint64_t seed : {3u, 21u}) {
    ExperimentData data = MakeData(seed);
    for (double tau_r : {0.0, 0.1, 0.3, 0.7, 1.0}) {
      int64_t tau = TauFromRelative(tau_r, data.root_delta_p);
      // Warm-memo serial run on the shared context...
      ModifyFdsResult serial = ModifyFds(data.context(), tau);
      // ...must equal a cold-memo run on a fresh context (cache contents
      // can never change results)...
      FdSearchContext fresh(data.dirty.fds, data.encoded(), data.weights());
      ModifyFdsResult cold = ModifyFds(fresh, tau);
      // ...and speculative parallel runs at any thread count.
      for (int threads : {2, 8}) {
        ModifyFdsOptions opts;
        opts.exec.num_threads = threads;
        ModifyFdsResult parallel = ModifyFds(data.context(), tau, opts);
        for (const ModifyFdsResult* r : {&cold, &parallel}) {
          EXPECT_EQ(r->stats.states_visited, serial.stats.states_visited);
          EXPECT_EQ(r->stats.states_generated, serial.stats.states_generated);
          ASSERT_EQ(r->repair.has_value(), serial.repair.has_value());
          if (serial.repair.has_value()) {
            EXPECT_EQ(r->repair->state, serial.repair->state);
            EXPECT_EQ(r->repair->distc, serial.repair->distc);
            EXPECT_EQ(r->repair->cover_size, serial.repair->cover_size);
            EXPECT_EQ(r->repair->delta_p, serial.repair->delta_p);
          }
        }
      }
    }
  }
}

TEST(ExecEvaluationOracle, RepairDataShardedBitIdentical) {
  ExperimentData data = MakeData(31);
  Rng rng_serial(9);
  DataRepairResult serial = RepairData(data.encoded(), data.dirty.fds,
                                       &rng_serial);
  for (int threads : {2, 8}) {
    Rng rng(9);
    exec::Options eopts;
    eopts.num_threads = threads;
    DataRepairResult sharded =
        RepairData(data.encoded(), data.dirty.fds, &rng, eopts);
    EXPECT_EQ(sharded.cover_size, serial.cover_size) << threads;
    EXPECT_EQ(sharded.change_bound, serial.change_bound) << threads;
    ASSERT_EQ(sharded.changed_cells.size(), serial.changed_cells.size());
    for (size_t i = 0; i < serial.changed_cells.size(); ++i) {
      EXPECT_EQ(sharded.changed_cells[i].tuple, serial.changed_cells[i].tuple);
      EXPECT_EQ(sharded.changed_cells[i].attr, serial.changed_cells[i].attr);
    }
    EXPECT_EQ(sharded.repaired.Decode().ToTable(),
              serial.repaired.Decode().ToTable());
  }
}

// The sweep shares ONE evaluation layer across τ jobs: states visited by
// several jobs pay for their cover once. Checked behaviorally (results
// identical to independent serial runs — exec_determinism_test covers the
// rest) plus via the memo's effectiveness counters.
TEST(ExecEvaluationOracle, SweepSharesCoverMemoAcrossTauJobs) {
  ExperimentData data = MakeData(47, 250);
  std::vector<int64_t> taus = exec::TauGridFromRelative(
      {0.1, 0.3, 0.5, 0.7, 0.9}, data.root_delta_p);
  CoverMemo::Stats before = data.context().evaluator().memo().stats();
  exec::Sweep sweep(data.context(), data.encoded(), {4});
  std::vector<ModifyFdsResult> swept = sweep.RunSearches(taus);
  CoverMemo::Stats after = data.context().evaluator().memo().stats();
  ASSERT_EQ(swept.size(), taus.size());
  EXPECT_GT(after.hits, before.hits);  // cross-job (and in-job) reuse
  for (size_t i = 0; i < taus.size(); ++i) {
    FdSearchContext fresh(data.dirty.fds, data.encoded(), data.weights());
    ModifyFdsResult serial = ModifyFds(fresh, taus[i]);
    EXPECT_EQ(swept[i].stats.states_visited, serial.stats.states_visited);
    ASSERT_EQ(swept[i].repair.has_value(), serial.repair.has_value());
    if (serial.repair.has_value()) {
      EXPECT_EQ(swept[i].repair->state, serial.repair->state);
      EXPECT_EQ(swept[i].repair->delta_p, serial.repair->delta_p);
    }
  }
}

}  // namespace
}  // namespace retrust
