#include "src/fd/fd.h"

#include <gtest/gtest.h>

namespace retrust {
namespace {

Schema Abcde() { return Schema::FromNames({"A", "B", "C", "D", "E"}); }

TEST(FD, Trivial) {
  EXPECT_TRUE(FD(AttrSet{0, 1}, 1).IsTrivial());
  EXPECT_FALSE(FD(AttrSet{0, 1}, 2).IsTrivial());
}

TEST(FD, ViolatedByDiffSet) {
  FD fd(AttrSet{0, 1}, 2);  // AB -> C
  // Pair disagrees on C, agrees on A and B: violated.
  EXPECT_TRUE(fd.ViolatedByDiffSet(AttrSet{2}));
  EXPECT_TRUE(fd.ViolatedByDiffSet(AttrSet{2, 3}));
  // Pair disagrees on an LHS attribute: not violated.
  EXPECT_FALSE(fd.ViolatedByDiffSet(AttrSet{0, 2}));
  EXPECT_FALSE(fd.ViolatedByDiffSet(AttrSet{1, 2, 4}));
  // Pair agrees on C: not violated.
  EXPECT_FALSE(fd.ViolatedByDiffSet(AttrSet{3, 4}));
  EXPECT_FALSE(fd.ViolatedByDiffSet(AttrSet()));
}

TEST(FD, ParseAndPrint) {
  Schema s = Abcde();
  FD fd = FD::Parse("A,B->C", s);
  EXPECT_EQ(fd.lhs, (AttrSet{0, 1}));
  EXPECT_EQ(fd.rhs, 2);
  EXPECT_EQ(fd.ToString(s), "A,B->C");
  EXPECT_EQ(FD::Parse(" A , D -> E ", s).lhs, (AttrSet{0, 3}));
}

TEST(FD, ParseRejectsBadInput) {
  Schema s = Abcde();
  EXPECT_THROW(FD::Parse("A,B", s), std::invalid_argument);
  EXPECT_THROW(FD::Parse("A->Z", s), std::invalid_argument);
  EXPECT_THROW(FD::Parse("Z->A", s), std::invalid_argument);
}

TEST(FD, EqualityAndOrdering) {
  FD a(AttrSet{0}, 1);
  FD b(AttrSet{0}, 1);
  FD c(AttrSet{0, 2}, 1);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(a < c || c < a);
}

}  // namespace
}  // namespace retrust
