#include "src/relational/dictionary.h"

#include <gtest/gtest.h>

namespace retrust {
namespace {

Instance Mixed() {
  Instance inst(Schema({{"A", AttrType::kInt}, {"B", AttrType::kString}}));
  inst.AddTuple({Value(int64_t{1}), Value("x")});
  inst.AddTuple({Value(int64_t{1}), Value("y")});
  inst.AddTuple({Value(int64_t{2}), Value("x")});
  return inst;
}

TEST(Dictionary, InternIsIdempotent) {
  Dictionary d;
  int32_t c1 = d.Intern(Value("a"));
  int32_t c2 = d.Intern(Value("b"));
  EXPECT_NE(c1, c2);
  EXPECT_EQ(d.Intern(Value("a")), c1);
  EXPECT_EQ(d.size(), 2);
  EXPECT_EQ(d.value(c2), Value("b"));
  EXPECT_EQ(d.Lookup(Value("a")), c1);
  EXPECT_EQ(d.Lookup(Value("zzz")), -1);
}

TEST(VariableCode, RoundTrip) {
  for (int32_t i : {0, 1, 5, 1000}) {
    int32_t code = VariableCode(i);
    EXPECT_TRUE(IsVariableCode(code));
    EXPECT_EQ(VariableIndexOfCode(code), i);
  }
  EXPECT_FALSE(IsVariableCode(0));
  EXPECT_FALSE(IsVariableCode(42));
}

TEST(EncodedInstance, CodesReflectEquality) {
  EncodedInstance enc(Mixed());
  EXPECT_EQ(enc.At(0, 0), enc.At(1, 0));  // both 1
  EXPECT_NE(enc.At(0, 0), enc.At(2, 0));
  EXPECT_EQ(enc.At(0, 1), enc.At(2, 1));  // both "x"
  EXPECT_NE(enc.At(0, 1), enc.At(1, 1));
}

TEST(EncodedInstance, VariablesEncodeNegative) {
  Instance inst(Schema({{"A", AttrType::kInt}}));
  inst.AddTuple({Value::Variable(0, 0)});
  inst.AddTuple({Value::Variable(0, 1)});
  inst.AddTuple({Value(int64_t{7})});
  EncodedInstance enc(inst);
  EXPECT_TRUE(IsVariableCode(enc.At(0, 0)));
  EXPECT_TRUE(IsVariableCode(enc.At(1, 0)));
  EXPECT_NE(enc.At(0, 0), enc.At(1, 0));
  EXPECT_FALSE(IsVariableCode(enc.At(2, 0)));
  // Fresh variables continue after the existing ones.
  int32_t fresh = enc.NewVariableCode(0);
  EXPECT_EQ(VariableIndexOfCode(fresh), 2);
}

TEST(EncodedInstance, DecodeRoundTrips) {
  Instance orig = Mixed();
  orig.Set(1, 1, orig.NewVariable(1));
  EncodedInstance enc(orig);
  Instance back = enc.Decode();
  EXPECT_EQ(orig.DistdTo(back), 0);
  EXPECT_EQ(back.At(1, 1), orig.At(1, 1));
}

TEST(EncodedInstance, SetFreshVariableChangesCell) {
  EncodedInstance enc(Mixed());
  int32_t before = enc.At(0, 0);
  int32_t v = enc.SetFreshVariable(0, 0);
  EXPECT_TRUE(IsVariableCode(v));
  EXPECT_EQ(enc.At(0, 0), v);
  EXPECT_NE(enc.At(0, 0), before);
  // Decoding yields a variable value.
  EXPECT_TRUE(enc.DecodeCell(0, 0).is_variable());
}

TEST(EncodedInstance, MoveKeepsSchemaValid) {
  // Regression: EncodedInstance used to hold a self-referential schema
  // pointer that dangled after move.
  EncodedInstance enc(Mixed());
  EncodedInstance moved = std::move(enc);
  EXPECT_EQ(moved.schema().name(0), "A");
  EncodedInstance assigned;
  assigned = std::move(moved);
  EXPECT_EQ(assigned.schema().name(1), "B");
  EXPECT_EQ(assigned.NumTuples(), 3);
}

TEST(EncodedInstance, CountDistinctProjection) {
  EncodedInstance enc(Mixed());
  EXPECT_EQ(enc.CountDistinctProjection(AttrSet{0}), 2);
  EXPECT_EQ(enc.CountDistinctProjection(AttrSet{1}), 2);
  EXPECT_EQ(enc.CountDistinctProjection(AttrSet{0, 1}), 3);
  EXPECT_EQ(enc.CountDistinctProjection(AttrSet()), 1);
}

TEST(EncodedInstance, CountDistinctTreatsVariablesAsDistinct) {
  Instance inst(Schema({{"A", AttrType::kInt}}));
  inst.AddTuple({Value::Variable(0, 0)});
  inst.AddTuple({Value::Variable(0, 1)});
  inst.AddTuple({Value(int64_t{1})});
  EncodedInstance enc(inst);
  EXPECT_EQ(enc.CountDistinctProjection(AttrSet{0}), 3);
}

TEST(EncodedInstance, DiffCells) {
  EncodedInstance a(Mixed());
  EncodedInstance b(Mixed());
  EXPECT_EQ(a.DistdTo(b), 0);
  b.SetCode(2, 0, b.At(0, 0));
  EXPECT_EQ(a.DistdTo(b), 1);
  auto cells = a.DiffCells(b);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].tuple, 2);
  EXPECT_EQ(cells[0].attr, 0);
}

TEST(EncodedInstance, DictionarySize) {
  EncodedInstance enc(Mixed());
  EXPECT_EQ(enc.DictionarySize(0), 2);
  EXPECT_EQ(enc.DictionarySize(1), 2);
}

}  // namespace
}  // namespace retrust
