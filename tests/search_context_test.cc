#include <gtest/gtest.h>

#include "src/eval/generator.h"
#include "src/eval/perturb.h"
#include "src/fd/conflict_graph.h"
#include "src/repair/modify_fds.h"
#include "src/repair/repair_data.h"

namespace retrust {
namespace {

Instance Fig2() {
  Instance inst(Schema::FromNames({"A", "B", "C", "D"}));
  auto add = [&](const char* a, const char* b, const char* c,
                 const char* d) {
    inst.AddTuple({Value(a), Value(b), Value(c), Value(d)});
  };
  add("1", "1", "1", "1");
  add("1", "2", "1", "3");
  add("2", "2", "1", "1");
  add("2", "3", "4", "3");
  return inst;
}

TEST(FdSearchContext, AlphaAndRootDeltaP) {
  EncodedInstance enc(Fig2());
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, Fig2().schema());
  CardinalityWeight w;
  FdSearchContext ctx(sigma, enc, w);
  EXPECT_EQ(ctx.alpha(), 2);  // min(|R|-1=3, |Σ|=2)
  EXPECT_EQ(ctx.num_tuples(), 4);
  EXPECT_GT(ctx.RootDeltaP(), 0);
}

TEST(FdSearchContext, CoverSizeFiltersRelaxedGroups) {
  EncodedInstance enc(Fig2());
  Schema s = Fig2().schema();
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, s);
  CardinalityWeight w;
  FdSearchContext ctx(sigma, enc, w);
  SearchStats stats;
  // Fully-relaxed state: appending D to A->B and A,B to C->D resolves all
  // Figure 2 diffsets.
  SearchState full({AttrSet{3}, AttrSet{0, 1}});
  EXPECT_EQ(ctx.CoverSize(full, &stats), 0);
  EXPECT_EQ(ctx.DeltaP(full, &stats), 0);
  // The root keeps everything.
  SearchState root = SearchState::Root(2);
  EXPECT_GT(ctx.CoverSize(root, &stats), 0);
  EXPECT_GT(stats.vc_computations, 0);
}

// Theorem-2 consistency across the pipeline: the cover RepairData uses has
// exactly the size the search certified (same canonical edge order).
TEST(FdSearchContext, DeltaPMatchesRepairDataCover) {
  CensusConfig cfg;
  cfg.num_tuples = 400;
  cfg.num_attrs = 10;
  cfg.planted_lhs_sizes = {4};
  cfg.seed = 81;
  GeneratedData data = GenerateCensusLike(cfg);
  PerturbOptions popts;
  popts.fd_error_rate = 0.5;
  popts.data_error_rate = 0.02;
  popts.seed = 82;
  PerturbedData dirty = Perturb(data.instance, data.planted_fds, popts);
  EncodedInstance enc(dirty.data);
  DistinctCountWeight w(enc);
  FdSearchContext ctx(dirty.fds, enc, w);

  // Root state: context cover vs RepairData cover for Σ' = Σ.
  SearchState root = SearchState::Root(dirty.fds.size());
  int64_t ctx_cover = ctx.CoverSize(root, nullptr);
  Rng rng(1);
  DataRepairResult r = RepairData(enc, dirty.fds, &rng);
  EXPECT_EQ(r.cover_size, ctx_cover);
}

TEST(FdSearchContext, CoverSizeMonotoneUnderExtension) {
  // Extending a state can only remove violated groups, never add them.
  EncodedInstance enc(Fig2());
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, Fig2().schema());
  CardinalityWeight w;
  FdSearchContext ctx(sigma, enc, w);
  StateSpace space(sigma, Fig2().schema());
  for (const SearchState& s : space.EnumerateAll()) {
    for (const SearchState& child : space.Children(s)) {
      // Not literally monotone in cover size (matching artifacts), but the
      // violated-edge SET shrinks; spot-check via delta_p at extremes.
      EXPECT_GE(ctx.CoverSize(s, nullptr) + 2,
                ctx.CoverSize(child, nullptr))
          << "child cover exploded";
    }
  }
}

}  // namespace
}  // namespace retrust
