// Property tests for the paper's formal claims (Theorems 1-3, Lemma 2,
// Definition 4/5 semantics), swept over randomized census-like workloads.

#include <gtest/gtest.h>

#include "src/eval/generator.h"
#include "src/eval/perturb.h"
#include "src/graph/vertex_cover.h"
#include "src/fd/conflict_graph.h"
#include "src/repair/multi_repair.h"
#include "src/repair/repair_driver.h"

namespace retrust {
namespace {

struct Workload {
  Instance dirty;
  FDSet sigma;
  EncodedInstance enc;
};

Workload Make(uint64_t seed, double fd_err, double data_err) {
  CensusConfig cfg;
  cfg.num_tuples = 300;
  cfg.num_attrs = 9;
  cfg.planted_lhs_sizes = {4};
  cfg.seed = seed;
  GeneratedData data = GenerateCensusLike(cfg);
  PerturbOptions popts;
  popts.fd_error_rate = fd_err;
  popts.data_error_rate = data_err;
  popts.seed = seed + 1000;
  PerturbedData dirty = Perturb(data.instance, data.planted_fds, popts);
  Workload w{dirty.data, dirty.fds, EncodedInstance(dirty.data)};
  return w;
}

class TheoremSweep : public ::testing::TestWithParam<int> {};

// Theorem 2 / Definition 5: the driver's repair satisfies Σ', stays within
// tau cell changes, and its Σ' is δP-minimal among the relaxations the
// search certified (spot-checked against the tie-break-free optimum).
TEST_P(TheoremSweep, DriverProducesValidTauConstrainedRepair) {
  Workload wl = Make(GetParam(), 0.5, 0.02);
  DistinctCountWeight w(wl.enc);
  FdSearchContext ctx(wl.sigma, wl.enc, w);
  int64_t root = ctx.RootDeltaP();
  for (double tr : {0.2, 0.6, 1.0}) {
    int64_t tau = TauFromRelative(tr, root);
    auto repair = RepairDataAndFds(ctx, wl.enc, tau, RepairOptions{});
    if (!repair.has_value()) continue;
    EXPECT_TRUE(Satisfies(repair->data, repair->sigma_prime));
    EXPECT_LE(static_cast<int64_t>(repair->changed_cells.size()), tau);
    EXPECT_LE(repair->delta_p, tau);
  }
}

// Theorem 3: |Δd| <= |C2opt| · min(|R|-1, |Σ|), and the repair touches only
// cover tuples.
TEST_P(TheoremSweep, Theorem3ChangeBound) {
  Workload wl = Make(GetParam() + 100, 0.25, 0.03);
  Rng rng(GetParam());
  DataRepairResult r = RepairData(wl.enc, wl.sigma, &rng);
  EXPECT_TRUE(Satisfies(r.repaired, wl.sigma));
  EXPECT_LE(static_cast<int64_t>(r.changed_cells.size()), r.change_bound);
}

// Theorem 1 flavor: the Algorithm-6 frontier is strictly monotone — as tau
// shrinks, distc strictly increases (each recorded repair is the unique
// cheapest for its tau interval), i.e. the repairs are Pareto-incomparable.
TEST_P(TheoremSweep, FrontierIsPareto) {
  Workload wl = Make(GetParam() + 200, 0.5, 0.02);
  DistinctCountWeight w(wl.enc);
  FdSearchContext ctx(wl.sigma, wl.enc, w);
  MultiRepairResult multi = FindRepairsFds(ctx, 0, ctx.RootDeltaP());
  for (size_t i = 0; i + 1 < multi.repairs.size(); ++i) {
    EXPECT_LT(multi.repairs[i].repair.distc,
              multi.repairs[i + 1].repair.distc + 1e-9);
    EXPECT_GT(multi.repairs[i].repair.delta_p,
              multi.repairs[i + 1].repair.delta_p);
  }
}

// Lemma 2 completeness oracle: whenever Find_Assignment (via RepairData)
// commits a repair, grounding it yields a concrete consistent instance —
// i.e. the V-instance never encodes an unsatisfiable assignment.
TEST_P(TheoremSweep, VInstanceGroundsConsistently) {
  Workload wl = Make(GetParam() + 300, 0.4, 0.03);
  Rng rng(GetParam() * 31 + 7);
  DataRepairResult r = RepairData(wl.enc, wl.sigma, &rng);
  EncodedInstance grounded(r.repaired.Decode().Ground());
  EXPECT_TRUE(Satisfies(grounded, wl.sigma));
}

// δP really is an upper bound certificate: a repair materialized for Σ'
// never changes more cells than α·|C2opt(Σ', I)| computed up front.
TEST_P(TheoremSweep, DeltaPIsUpperBoundCertificate) {
  Workload wl = Make(GetParam() + 400, 0.5, 0.01);
  DistinctCountWeight w(wl.enc);
  FdSearchContext ctx(wl.sigma, wl.enc, w);
  MultiRepairResult multi = FindRepairsFds(ctx, 0, ctx.RootDeltaP());
  for (const RangedFdRepair& r : multi.repairs) {
    Rng rng(GetParam());
    DataRepairResult data = RepairData(wl.enc, r.repair.sigma_prime, &rng);
    EXPECT_LE(static_cast<int64_t>(data.changed_cells.size()),
              r.repair.delta_p);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace retrust
