#include "src/relational/value.h"

#include <gtest/gtest.h>

namespace retrust {
namespace {

TEST(Value, KindsAndAccessors) {
  EXPECT_EQ(Value().kind(), Value::Kind::kNull);
  EXPECT_EQ(Value(int64_t{7}).kind(), Value::Kind::kInt);
  EXPECT_EQ(Value(1.5).kind(), Value::Kind::kDouble);
  EXPECT_EQ(Value("x").kind(), Value::Kind::kString);
  EXPECT_EQ(Value::Variable(2, 3).kind(), Value::Kind::kVariable);
  EXPECT_EQ(Value(int64_t{7}).AsInt(), 7);
  EXPECT_EQ(Value(1.5).AsDouble(), 1.5);
  EXPECT_EQ(Value("x").AsString(), "x");
  EXPECT_EQ(Value::Variable(2, 3).AsVariable().attr, 2);
  EXPECT_EQ(Value::Variable(2, 3).AsVariable().index, 3);
}

TEST(Value, ConstantEquality) {
  EXPECT_EQ(Value(int64_t{5}), Value(int64_t{5}));
  EXPECT_NE(Value(int64_t{5}), Value(int64_t{6}));
  EXPECT_EQ(Value("abc"), Value("abc"));
  EXPECT_NE(Value("abc"), Value("abd"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(Value, CrossKindInequality) {
  // int 5 and double 5.0 and string "5" are all distinct values.
  EXPECT_NE(Value(int64_t{5}), Value(5.0));
  EXPECT_NE(Value(int64_t{5}), Value("5"));
  EXPECT_NE(Value::Null(), Value(int64_t{0}));
  EXPECT_NE(Value::Null(), Value(""));
}

TEST(Value, VInstanceVariableSemantics) {
  Value v1 = Value::Variable(0, 1);
  Value v1_again = Value::Variable(0, 1);
  Value v2 = Value::Variable(0, 2);
  Value other_attr = Value::Variable(1, 1);
  // A variable equals exactly itself.
  EXPECT_EQ(v1, v1_again);
  // Distinct variables are never equal (they instantiate distinctly).
  EXPECT_NE(v1, v2);
  EXPECT_NE(v1, other_attr);
  // A variable never equals a constant.
  EXPECT_NE(v1, Value(int64_t{1}));
  EXPECT_NE(v1, Value("v1"));
  EXPECT_NE(v1, Value::Null());
}

TEST(Value, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{42}).Hash(), Value(int64_t{42}).Hash());
  EXPECT_EQ(Value("q").Hash(), Value("q").Hash());
  EXPECT_EQ(Value::Variable(3, 4).Hash(), Value::Variable(3, 4).Hash());
  // Not required, but catches degenerate implementations:
  EXPECT_NE(Value(int64_t{1}).Hash(), Value(int64_t{2}).Hash());
  EXPECT_NE(Value::Variable(0, 0).Hash(), Value::Variable(0, 1).Hash());
}

TEST(Value, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{3}).ToString(), "3");
  EXPECT_EQ(Value("hi").ToString(), "hi");
  EXPECT_EQ(Value::Variable(2, 5).ToString(), "?2_5");
  EXPECT_EQ(Value::Variable(2, 5).ToString("Zip"), "?Zip5");
  EXPECT_EQ(Value("hi").ToString("Zip"), "hi");
}

}  // namespace
}  // namespace retrust
