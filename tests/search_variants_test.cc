// Cross-variant checks: best-first vs A* in the range scan, the paper's
// strict Algorithm-3 boundary rule, heuristic budgets, and max-degree
// covers — the configurations the ablation bench sweeps.

#include <gtest/gtest.h>

#include "src/eval/generator.h"
#include "src/eval/perturb.h"
#include "src/repair/multi_repair.h"
#include "src/repair/repair_driver.h"

namespace retrust {
namespace {

struct Workload {
  Instance dirty;
  FDSet sigma;
  EncodedInstance enc;
};

Workload Make(uint64_t seed) {
  CensusConfig cfg;
  cfg.num_tuples = 350;
  cfg.num_attrs = 10;
  cfg.planted_lhs_sizes = {4};
  cfg.seed = seed;
  GeneratedData data = GenerateCensusLike(cfg);
  PerturbOptions popts;
  popts.fd_error_rate = 0.5;
  popts.data_error_rate = 0.02;
  popts.seed = seed + 1;
  PerturbedData dirty = Perturb(data.instance, data.planted_fds, popts);
  return {dirty.data, dirty.fds, EncodedInstance(dirty.data)};
}

TEST(SearchVariants, RangeScanModesAgreeOnFrontierCosts) {
  Workload wl = Make(91);
  DistinctCountWeight w(wl.enc);
  FdSearchContext ctx(wl.sigma, wl.enc, w);
  int64_t root = ctx.RootDeltaP();
  ModifyFdsOptions astar, bf;
  astar.mode = SearchMode::kAStar;
  bf.mode = SearchMode::kBestFirst;
  MultiRepairResult a = FindRepairsFds(ctx, 0, root, astar);
  MultiRepairResult b = FindRepairsFds(ctx, 0, root, bf);
  ASSERT_EQ(a.repairs.size(), b.repairs.size());
  for (size_t i = 0; i < a.repairs.size(); ++i) {
    EXPECT_NEAR(a.repairs[i].repair.distc, b.repairs[i].repair.distc, 1e-6);
    EXPECT_EQ(a.repairs[i].repair.delta_p, b.repairs[i].repair.delta_p);
  }
}

TEST(SearchVariants, HeuristicBudgetsAgreeOnOptimum) {
  Workload wl = Make(92);
  DistinctCountWeight w(wl.enc);
  int64_t tau = 0;
  {
    FdSearchContext probe(wl.sigma, wl.enc, w);
    tau = probe.RootDeltaP() / 4;
  }
  double reference = -1;
  for (int budget : {1, 2, 4, 8}) {
    HeuristicOptions hopts;
    hopts.max_diffsets = budget;
    FdSearchContext ctx(wl.sigma, wl.enc, w, hopts);
    ModifyFdsOptions opts;
    opts.heuristic = hopts;
    ModifyFdsResult r = ModifyFds(ctx, tau, opts);
    ASSERT_TRUE(r.repair.has_value()) << "budget " << budget;
    if (reference < 0) {
      reference = r.repair->distc;
    } else {
      EXPECT_NEAR(r.repair->distc, reference, 1e-6)
          << "optimality must be budget-independent (budget " << budget
          << ")";
    }
  }
}

TEST(SearchVariants, StrictBoundaryRuleStillFindsValidRepairs) {
  // The paper's literal '<' rule may overestimate gc at the δP = τ
  // boundary; the search then possibly returns a costlier (but still
  // valid) repair. It must never return an invalid one.
  Workload wl = Make(93);
  DistinctCountWeight w(wl.enc);
  HeuristicOptions strict;
  strict.strict_leave_check = true;
  FdSearchContext ctx_strict(wl.sigma, wl.enc, w, strict);
  FdSearchContext ctx_default(wl.sigma, wl.enc, w);
  int64_t root = ctx_default.RootDeltaP();
  for (double tr : {0.25, 0.75}) {
    int64_t tau = static_cast<int64_t>(tr * root);
    ModifyFdsOptions opts;
    opts.heuristic = strict;
    ModifyFdsResult rs = ModifyFds(ctx_strict, tau, opts);
    ModifyFdsResult rd = ModifyFds(ctx_default, tau, ModifyFdsOptions{});
    ASSERT_TRUE(rd.repair.has_value());
    if (rs.repair.has_value()) {
      EXPECT_LE(rs.repair->delta_p, tau);
      EXPECT_GE(rs.repair->distc, rd.repair->distc - 1e-9);
    }
  }
}

TEST(SearchVariants, DuplicateFdsInSigma) {
  // Figure 11 replicates an FD to grow |Σ|; every component must cope
  // with duplicates (the paper explicitly allows |Σ'| duplicates).
  Workload wl = Make(94);
  std::vector<FD> fds = {wl.sigma.fd(0), wl.sigma.fd(0)};
  FDSet sigma(fds);
  DistinctCountWeight w(wl.enc);
  FdSearchContext ctx(sigma, wl.enc, w);
  int64_t root = ctx.RootDeltaP();
  auto repair = RepairDataAndFds(ctx, wl.enc, root, RepairOptions{});
  ASSERT_TRUE(repair.has_value());
  EXPECT_TRUE(Satisfies(repair->data, repair->sigma_prime));
  // And at a mid trust level.
  auto mid = RepairDataAndFds(ctx, wl.enc, root / 2, RepairOptions{});
  if (mid.has_value()) {
    EXPECT_TRUE(Satisfies(mid->data, mid->sigma_prime));
    EXPECT_LE(static_cast<int64_t>(mid->changed_cells.size()), root / 2);
  }
}

}  // namespace
}  // namespace retrust
