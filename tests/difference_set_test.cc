#include "src/fd/difference_set.h"

#include <gtest/gtest.h>

namespace retrust {
namespace {

Instance Fig2() {
  Instance inst(Schema::FromNames({"A", "B", "C", "D"}));
  auto add = [&](const char* a, const char* b, const char* c,
                 const char* d) {
    inst.AddTuple({Value(a), Value(b), Value(c), Value(d)});
  };
  add("1", "1", "1", "1");
  add("1", "2", "1", "3");
  add("2", "2", "1", "1");
  add("2", "3", "4", "3");
  return inst;
}

TEST(DiffSetOfPair, MatchesPaperExamples) {
  EncodedInstance enc(Fig2());
  // §5.2: difference sets for (t1,t2), (t2,t3), (t3,t4) are BD, AD, BCD.
  EXPECT_EQ(DiffSetOfPair(enc, 0, 1), (AttrSet{1, 3}));
  EXPECT_EQ(DiffSetOfPair(enc, 1, 2), (AttrSet{0, 3}));
  EXPECT_EQ(DiffSetOfPair(enc, 2, 3), (AttrSet{1, 2, 3}));
  EXPECT_EQ(DiffSetOfPair(enc, 0, 0), AttrSet());
}

TEST(DiffSetOfPair, VariablesDifferFromEverything) {
  Instance inst(Schema::FromNames({"A"}));
  inst.AddTuple({Value("1")});
  inst.AddTuple({inst.NewVariable(0)});
  inst.AddTuple({inst.NewVariable(0)});
  EncodedInstance enc(inst);
  EXPECT_EQ(DiffSetOfPair(enc, 0, 1), AttrSet{0});
  EXPECT_EQ(DiffSetOfPair(enc, 1, 2), AttrSet{0});
}

TEST(DifferenceSetIndex, GroupsAndOrdersByFrequency) {
  EncodedInstance enc(Fig2());
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, Fig2().schema());
  ConflictGraph cg = BuildConflictGraph(enc, sigma);
  DifferenceSetIndex index(enc, cg);
  ASSERT_EQ(index.size(), 3);  // BD, AD, BCD — all singleton groups
  int64_t total_edges = 0;
  for (const DiffSetGroup& g : index.groups()) {
    total_edges += g.frequency();
    EXPECT_EQ(g.edges.size(), 1u);
  }
  EXPECT_EQ(total_edges, 3);
  // Frequency-sorted (ties by mask): all freq 1 here, so ascending mask:
  // AD (1001=9) < BD (1010=10) < BCD (1110=14).
  EXPECT_EQ(index.group(0).diff, (AttrSet{0, 3}));
  EXPECT_EQ(index.group(1).diff, (AttrSet{1, 3}));
  EXPECT_EQ(index.group(2).diff, (AttrSet{1, 2, 3}));
}

TEST(DifferenceSetIndex, MergesEqualDiffSets) {
  Instance inst(Schema::FromNames({"A", "B"}));
  // Three tuples with A=1 and distinct Bs: all 3 pairs have diffset {B}.
  inst.AddTuple({Value("1"), Value("x")});
  inst.AddTuple({Value("1"), Value("y")});
  inst.AddTuple({Value("1"), Value("z")});
  EncodedInstance enc(inst);
  FDSet sigma = FDSet::Parse({"A->B"}, inst.schema());
  ConflictGraph cg = BuildConflictGraph(enc, sigma);
  DifferenceSetIndex index(enc, cg);
  ASSERT_EQ(index.size(), 1);
  EXPECT_EQ(index.group(0).frequency(), 3);
  EXPECT_EQ(index.group(0).diff, AttrSet{1});
}

TEST(DiffSetViolates, PerFdSemantics) {
  Schema s = Schema::FromNames({"A", "B", "C", "D"});
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, s);
  // BD violates both FDs; AD violates only C->D; BCD only A->B (paper §5.2).
  EXPECT_TRUE(sigma.fd(0).ViolatedByDiffSet(AttrSet{1, 3}));
  EXPECT_TRUE(sigma.fd(1).ViolatedByDiffSet(AttrSet{1, 3}));
  EXPECT_FALSE(sigma.fd(0).ViolatedByDiffSet(AttrSet{0, 3}));
  EXPECT_TRUE(sigma.fd(1).ViolatedByDiffSet(AttrSet{0, 3}));
  EXPECT_TRUE(sigma.fd(0).ViolatedByDiffSet(AttrSet{1, 2, 3}));
  EXPECT_FALSE(sigma.fd(1).ViolatedByDiffSet(AttrSet{1, 2, 3}));
  EXPECT_TRUE(DiffSetViolates(AttrSet{0, 3}, sigma));
  EXPECT_FALSE(DiffSetViolates(AttrSet{0}, sigma));
}

TEST(DifferenceSetIndex, ViolatingGroupsFiltersByRelaxation) {
  EncodedInstance enc(Fig2());
  Schema s = Fig2().schema();
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, s);
  ConflictGraph cg = BuildConflictGraph(enc, sigma);
  DifferenceSetIndex index(enc, cg);
  // Under {CA->B, C->D}: BCD resolved (C in LHS of the first FD);
  // AD and BD still violate C->D.
  FDSet relaxed = FDSet::Parse({"C,A->B", "C->D"}, s);
  auto violating = index.ViolatingGroups(relaxed);
  EXPECT_EQ(violating.size(), 2u);
  // Fully satisfied relaxation: nothing violates.
  FDSet resolved = FDSet::Parse({"D,A->B", "A,B,C->D"}, s);
  // (AD: first FD sees D in diff->resolved? AD has A... A in LHS, diff
  //  has A -> pair disagrees on LHS -> resolved; check via the index.)
  auto left = index.ViolatingGroups(resolved);
  for (int g : left) {
    EXPECT_TRUE(DiffSetViolates(index.group(g).diff, resolved));
  }
}

TEST(DifferenceSetIndex, ToStringListsGroups) {
  EncodedInstance enc(Fig2());
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, Fig2().schema());
  DifferenceSetIndex index(enc, BuildConflictGraph(enc, sigma));
  std::string text = index.ToString(Fig2().schema());
  EXPECT_NE(text.find("{B,D} x1"), std::string::npos);
  EXPECT_NE(text.find("{B,C,D} x1"), std::string::npos);
}

}  // namespace
}  // namespace retrust
