// The exec/ determinism contract: every parallel code path produces output
// BIT-IDENTICAL to serial execution for any thread count — sharded
// violation detection, speculative successor evaluation in ModifyFds, and
// whole repairs through RepairDataAndFds, on a generated instance.

#include <string>

#include <gtest/gtest.h>

#include "src/eval/experiment.h"
#include "src/exec/sweep.h"

namespace retrust {
namespace {

ExperimentData MakeData(int num_tuples = 400) {
  CensusConfig gen;
  gen.num_tuples = num_tuples;
  gen.num_attrs = 12;
  gen.planted_lhs_sizes = {4};
  gen.seed = 42;
  PerturbOptions perturb;
  perturb.fd_error_rate = 0.5;
  perturb.data_error_rate = 0.03;
  perturb.seed = 7;
  return PrepareExperiment(gen, perturb);
}

// Full structural fingerprint of a Repair; two repairs with equal
// fingerprints are byte-identical for every field the API exposes.
std::string Fingerprint(const std::optional<Repair>& repair,
                        const Schema& schema) {
  if (!repair.has_value()) return "(none)";
  std::string fp = repair->sigma_prime.ToString(schema);
  fp += "|distc=" + std::to_string(repair->distc);
  fp += "|deltaP=" + std::to_string(repair->delta_p);
  for (const AttrSet& ext : repair->extensions) {
    fp += "|" + ext.ToString();
  }
  fp += "|cells:";
  for (const CellRef& c : repair->changed_cells) {
    fp += std::to_string(c.tuple) + "," + std::to_string(c.attr) + ";";
  }
  fp += "|data:" + repair->data.Decode().ToTable();
  return fp;
}

TEST(ExecDeterminism, ViolationDetectionShardedBitIdentical) {
  ExperimentData data = MakeData();
  ConflictGraph serial = BuildConflictGraph(data.encoded(), data.dirty.fds);
  DifferenceSetIndex serial_index(data.encoded(), serial);
  for (int threads : {2, 3, 8}) {
    std::unique_ptr<exec::ThreadPool> pool = exec::MakePool({threads});
    ASSERT_NE(pool, nullptr);
    ConflictGraph sharded =
        BuildConflictGraph(data.encoded(), data.dirty.fds, pool.get());
    EXPECT_EQ(sharded.graph.edges(), serial.graph.edges()) << threads;
    EXPECT_EQ(sharded.edge_fd_mask, serial.edge_fd_mask) << threads;

    DifferenceSetIndex index(data.encoded(), sharded, pool.get());
    ASSERT_EQ(index.size(), serial_index.size()) << threads;
    for (int g = 0; g < index.size(); ++g) {
      EXPECT_EQ(index.group(g).diff, serial_index.group(g).diff) << threads;
      EXPECT_EQ(index.group(g).edges, serial_index.group(g).edges) << threads;
    }
  }
}

TEST(ExecDeterminism, ViolatingPairsShardedBitIdentical) {
  ExperimentData data = MakeData();
  for (const FD& fd : data.dirty.fds.fds()) {
    std::vector<Edge> serial = ViolatingPairs(data.encoded(), fd);
    for (int threads : {2, 8}) {
      std::unique_ptr<exec::ThreadPool> pool = exec::MakePool({threads});
      EXPECT_EQ(ViolatingPairs(data.encoded(), fd, pool.get()), serial)
          << fd.ToString() << " at " << threads << " threads";
    }
  }
}

// The acceptance-criteria test: RepairDataAndFds output is byte-identical
// at 1, 2, and 8 threads, across several trust levels (including τ values
// where the search must relax FDs and where it must repair cells).
TEST(ExecDeterminism, RepairDataAndFdsIdenticalAcrossThreadCounts) {
  ExperimentData data = MakeData();
  const Schema& schema = data.dirty_instance().schema();
  for (double tau_r : {0.0, 0.15, 0.5, 1.0}) {
    int64_t tau = TauFromRelative(tau_r, data.root_delta_p);
    RepairOptions serial_opts;
    std::optional<Repair> serial =
        RepairDataAndFds(data.context(), data.encoded(), tau, serial_opts);
    std::string want = Fingerprint(serial, schema);
    for (int threads : {2, 8}) {
      RepairOptions opts;
      opts.search.exec.num_threads = threads;
      std::optional<Repair> parallel =
          RepairDataAndFds(data.context(), data.encoded(), tau, opts);
      EXPECT_EQ(Fingerprint(parallel, schema), want)
          << "tau_r=" << tau_r << " threads=" << threads;
    }
  }
}

// Search-internal determinism: the speculative engine must visit the exact
// same states in the exact same order as the lazy serial engine — checked
// via the visited/generated counters, which count main-loop events only.
TEST(ExecDeterminism, SearchScheduleIdenticalAcrossThreadCounts) {
  ExperimentData data = MakeData();
  int64_t tau = TauFromRelative(0.2, data.root_delta_p);
  for (SearchMode mode : {SearchMode::kAStar, SearchMode::kBestFirst}) {
    ModifyFdsOptions serial_opts;
    serial_opts.mode = mode;
    ModifyFdsResult serial = ModifyFds(data.context(), tau, serial_opts);
    for (int threads : {2, 8}) {
      ModifyFdsOptions opts;
      opts.mode = mode;
      opts.exec.num_threads = threads;
      ModifyFdsResult parallel = ModifyFds(data.context(), tau, opts);
      EXPECT_EQ(parallel.stats.states_visited, serial.stats.states_visited);
      EXPECT_EQ(parallel.stats.states_generated,
                serial.stats.states_generated);
      ASSERT_EQ(parallel.repair.has_value(), serial.repair.has_value());
      if (serial.repair.has_value()) {
        EXPECT_EQ(parallel.repair->state, serial.repair->state);
        EXPECT_EQ(parallel.repair->distc, serial.repair->distc);
        EXPECT_EQ(parallel.repair->delta_p, serial.repair->delta_p);
      }
    }
  }
}

TEST(ExecDeterminism, SweepMatchesIndependentSerialRuns) {
  ExperimentData data = MakeData(250);
  std::vector<int64_t> taus = exec::TauGridFromRelative(
      {0.0, 0.1, 0.3, 0.6, 0.9}, data.root_delta_p);

  std::vector<ModifyFdsResult> serial;
  for (int64_t tau : taus) {
    serial.push_back(ModifyFds(data.context(), tau));
  }

  for (int threads : {1, 4}) {
    exec::Sweep sweep(data.context(), data.encoded(), {threads});
    std::vector<ModifyFdsResult> swept = sweep.RunSearches(taus);
    ASSERT_EQ(swept.size(), serial.size());
    for (size_t i = 0; i < taus.size(); ++i) {
      ASSERT_EQ(swept[i].repair.has_value(), serial[i].repair.has_value())
          << "tau=" << taus[i] << " threads=" << threads;
      EXPECT_EQ(swept[i].stats.states_visited,
                serial[i].stats.states_visited);
      if (serial[i].repair.has_value()) {
        EXPECT_EQ(swept[i].repair->state, serial[i].repair->state);
        EXPECT_EQ(swept[i].repair->delta_p, serial[i].repair->delta_p);
      }
    }
  }
}

TEST(ExecDeterminism, SweepRepairsReturnedInJobOrder) {
  ExperimentData data = MakeData(250);
  std::vector<exec::SweepJob> jobs;
  for (double tau_r : {0.9, 0.1, 0.5}) {  // deliberately unsorted
    exec::SweepJob job;
    job.tau = TauFromRelative(tau_r, data.root_delta_p);
    jobs.push_back(job);
  }
  exec::Sweep sweep(data.context(), data.encoded(), {4});
  std::vector<exec::SweepOutcome> outcomes = sweep.RunRepairs(jobs);
  ASSERT_EQ(outcomes.size(), jobs.size());
  const Schema& schema = data.dirty_instance().schema();
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(outcomes[i].tau, jobs[i].tau);
    RepairOptions opts;
    std::optional<Repair> serial =
        RepairDataAndFds(data.context(), data.encoded(), jobs[i].tau, opts);
    EXPECT_EQ(Fingerprint(outcomes[i].repair, schema),
              Fingerprint(serial, schema));
  }
}

TEST(ExecDeterminism, ContextConstructionShardedBitIdentical) {
  ExperimentData data = MakeData(250);
  FdSearchContext serial_ctx(data.dirty.fds, data.encoded(), data.weights());
  exec::Options eight;
  eight.num_threads = 8;
  FdSearchContext sharded_ctx(data.dirty.fds, data.encoded(), data.weights(),
                              HeuristicOptions{}, eight);
  ASSERT_EQ(sharded_ctx.index().size(), serial_ctx.index().size());
  for (int g = 0; g < serial_ctx.index().size(); ++g) {
    EXPECT_EQ(sharded_ctx.index().group(g).diff,
              serial_ctx.index().group(g).diff);
    EXPECT_EQ(sharded_ctx.index().group(g).edges,
              serial_ctx.index().group(g).edges);
  }
  EXPECT_EQ(sharded_ctx.RootDeltaP(), serial_ctx.RootDeltaP());
}

}  // namespace
}  // namespace retrust
