#include "src/eval/metrics.h"

#include <gtest/gtest.h>

namespace retrust {
namespace {

Instance Base() {
  Instance inst(Schema::FromNames({"A", "B"}));
  inst.AddTuple({Value("1"), Value("x")});
  inst.AddTuple({Value("2"), Value("y")});
  inst.AddTuple({Value("3"), Value("z")});
  return inst;
}

TEST(DataMetrics, PerfectRepair) {
  Instance clean = Base();
  Instance dirty = Base();
  dirty.Set(0, 0, Value("err"));
  Instance repaired = Base();  // restores the clean value
  PrecisionRecall pr = EvaluateDataRepair(clean, dirty, repaired);
  EXPECT_EQ(pr.correct, 1);
  EXPECT_EQ(pr.proposed, 1);
  EXPECT_EQ(pr.truth, 1);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_DOUBLE_EQ(pr.F(), 1.0);
}

TEST(DataMetrics, VariableCountsAsCorrect) {
  Instance clean = Base();
  Instance dirty = Base();
  dirty.Set(1, 1, Value("err"));
  Instance repaired = Base();
  repaired.Set(1, 1, Value::Variable(1, 0));
  PrecisionRecall pr = EvaluateDataRepair(clean, dirty, repaired);
  EXPECT_EQ(pr.correct, 1);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
}

TEST(DataMetrics, WrongCellModificationHurtsPrecision) {
  Instance clean = Base();
  Instance dirty = Base();
  dirty.Set(0, 0, Value("err"));
  Instance repaired = dirty;  // error untouched...
  repaired.Set(2, 1, Value("w"));  // ...unrelated clean cell broken
  PrecisionRecall pr = EvaluateDataRepair(clean, dirty, repaired);
  EXPECT_EQ(pr.correct, 0);
  EXPECT_EQ(pr.proposed, 1);
  EXPECT_EQ(pr.truth, 1);
  EXPECT_DOUBLE_EQ(pr.precision, 0.0);
  EXPECT_DOUBLE_EQ(pr.recall, 0.0);
  EXPECT_DOUBLE_EQ(pr.F(), 0.0);
}

TEST(DataMetrics, WrongValueOnErroneousCellNotCorrect) {
  Instance clean = Base();
  Instance dirty = Base();
  dirty.Set(0, 0, Value("err"));
  Instance repaired = dirty;
  repaired.Set(0, 0, Value("still-wrong"));
  PrecisionRecall pr = EvaluateDataRepair(clean, dirty, repaired);
  EXPECT_EQ(pr.correct, 0);
  EXPECT_EQ(pr.proposed, 1);
}

TEST(DataMetrics, EmptyDenominatorConventions) {
  Instance clean = Base();
  // No errors, no modifications: both default to 1 (Figure 8 convention).
  PrecisionRecall pr = EvaluateDataRepair(clean, clean, clean);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  // No errors but spurious modifications: precision 0, recall 1.
  Instance repaired = Base();
  repaired.Set(0, 0, Value("w"));
  pr = EvaluateDataRepair(clean, clean, repaired);
  EXPECT_DOUBLE_EQ(pr.precision, 0.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
}

TEST(DataMetrics, RequiresAlignedInstances) {
  Instance clean = Base();
  Instance shorter(clean.schema());
  EXPECT_THROW(EvaluateDataRepair(clean, shorter, clean),
               std::invalid_argument);
}

TEST(FdMetrics, ExactMatch) {
  PrecisionRecall pr =
      EvaluateFdRepair({AttrSet{1, 2}}, {AttrSet{1, 2}});
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
}

TEST(FdMetrics, PartialOverlap) {
  // Appended {1,3}, removed {1,2}: one of two appends correct; one of two
  // removals recovered.
  PrecisionRecall pr = EvaluateFdRepair({AttrSet{1, 3}}, {AttrSet{1, 2}});
  EXPECT_DOUBLE_EQ(pr.precision, 0.5);
  EXPECT_DOUBLE_EQ(pr.recall, 0.5);
  EXPECT_DOUBLE_EQ(pr.F(), 0.5);
}

TEST(FdMetrics, MultipleFdsAggregate) {
  PrecisionRecall pr = EvaluateFdRepair(
      {AttrSet{1}, AttrSet{4, 5}}, {AttrSet{1, 2}, AttrSet{4}});
  EXPECT_EQ(pr.correct, 2);
  EXPECT_EQ(pr.proposed, 3);
  EXPECT_EQ(pr.truth, 3);
}

TEST(FdMetrics, EmptyDenominatorConventions) {
  // Nothing appended, nothing removed: perfect.
  PrecisionRecall pr = EvaluateFdRepair({AttrSet()}, {AttrSet()});
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  // Nothing appended but attributes were removed: recall 0 (Figure 8's
  // Uniform-Cost rows).
  pr = EvaluateFdRepair({AttrSet()}, {AttrSet{1}});
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 0.0);
  EXPECT_DOUBLE_EQ(pr.F(), 0.0);
}

TEST(FdMetrics, RequiresAlignment) {
  EXPECT_THROW(EvaluateFdRepair({AttrSet()}, {}), std::invalid_argument);
}

TEST(RepairQuality, CombinedFAveragesBothSides) {
  RepairQuality q;
  q.data.precision = 1.0;
  q.data.recall = 1.0;
  q.fd.precision = 0.0;
  q.fd.recall = 0.0;
  EXPECT_DOUBLE_EQ(q.CombinedF(), 0.5);
}

}  // namespace
}  // namespace retrust
