// End-to-end integration: clean → discover → perturb → repair → score, and
// the paper's Example 1 as a full pipeline.

#include <gtest/gtest.h>

#include <sstream>

#include "src/eval/experiment.h"
#include "src/fd/discovery.h"
#include "src/relational/csv.h"
#include "src/repair/multi_repair.h"

namespace retrust {
namespace {

TEST(Integration, DiscoverPerturbRepairRoundTrip) {
  CensusConfig cfg;
  cfg.num_tuples = 500;
  cfg.num_attrs = 8;
  cfg.planted_lhs_sizes = {3};
  cfg.seed = 101;
  GeneratedData data = GenerateCensusLike(cfg);

  // Discover FDs on the clean instance (the planted one must be implied).
  EncodedInstance clean_enc(data.instance);
  DiscoveryOptions dopts;
  dopts.max_lhs = 3;
  FDSet discovered = DiscoverFDs(clean_enc, dopts);
  const FD& planted = data.planted_fds.fd(0);
  bool planted_covered = false;
  for (const FD& fd : discovered.fds()) {
    if (fd.rhs == planted.rhs && fd.lhs.SubsetOf(planted.lhs)) {
      planted_covered = true;
    }
  }
  EXPECT_TRUE(planted_covered);

  // Perturb data only; repair at full FD trust restores consistency.
  PerturbOptions popts;
  popts.fd_error_rate = 0.0;
  popts.data_error_rate = 0.03;
  popts.seed = 102;
  PerturbedData dirty = Perturb(data.instance, data.planted_fds, popts);
  EncodedInstance enc(dirty.data);
  DistinctCountWeight w(enc);
  FdSearchContext ctx(dirty.fds, enc, w);
  auto repair = RepairDataAndFds(ctx, enc, ctx.RootDeltaP());
  ASSERT_TRUE(repair.has_value());
  EXPECT_TRUE(Satisfies(repair->data, repair->sigma_prime));
  EXPECT_EQ(repair->distc, 0.0);  // FDs were correct: only cells change
}

TEST(Integration, Example1SpectrumViaCsv) {
  // The paper's Example 1 ingested through the CSV reader, swept with
  // Algorithm 6 — the full user path of the README.
  std::istringstream csv(
      "GivenName,Surname,BirthDate,Gender,Phone,Income\n"
      "Jack,White,5 Jan 1980,Male,923-234-4532,60k\n"
      "Sam,McCarthy,19 Jul 1945,Male,989-321-4232,92k\n"
      "Danielle,Blake,9 Dec 1970,Female,817-213-1211,120k\n"
      "Matthew,Webb,23 Aug 1985,Male,246-481-0992,87k\n"
      "Danielle,Blake,9 Dec 1970,Female,817-988-9211,100k\n"
      "Hong,Li,27 Oct 1972,Female,591-977-1244,90k\n"
      "Jian,Zhang,14 Apr 1990,Male,912-143-4981,55k\n"
      "Ning,Wu,3 Nov 1982,Male,313-134-9241,90k\n"
      "Hong,Li,8 Mar 1979,Female,498-214-5822,84k\n"
      "Ning,Wu,8 Nov 1982,Male,323-456-3452,95k\n");
  Instance inst = ReadCsv(csv);
  const Schema& schema = inst.schema();
  FDSet sigma = FDSet::Parse({"Surname,GivenName->Income"}, schema);
  EncodedInstance enc(inst);
  CardinalityWeight w;
  FdSearchContext ctx(sigma, enc, w);
  MultiRepairResult multi = FindRepairsFds(ctx, 0, ctx.RootDeltaP());

  // The spectrum the paper describes: keep the FD (data-only repair),
  // extend by BirthDate (mid trust), extend by Phone (full data trust).
  AttrId birthdate = schema.Find("BirthDate");
  AttrId phone = schema.Find("Phone");
  bool keeps_fd = false, adds_birthdate = false, adds_phone = false;
  for (const RangedFdRepair& r : multi.repairs) {
    AttrSet ext = r.repair.state.ext[0];
    if (ext.Empty()) keeps_fd = true;
    if (ext == AttrSet::Single(birthdate)) adds_birthdate = true;
    if (ext == AttrSet::Single(phone)) adds_phone = true;
  }
  EXPECT_TRUE(keeps_fd);
  EXPECT_TRUE(adds_birthdate);
  EXPECT_TRUE(adds_phone);

  // Materialize the full-FD-trust end: incomes get reconciled.
  auto fd_trust = RepairDataAndFds(ctx, enc, ctx.RootDeltaP());
  ASSERT_TRUE(fd_trust.has_value());
  EXPECT_TRUE(fd_trust->sigma_prime == sigma);
  EXPECT_GT(fd_trust->changed_cells.size(), 0u);
  // And the full-data-trust end: zero cell changes.
  auto data_trust = RepairDataAndFds(ctx, enc, 0);
  ASSERT_TRUE(data_trust.has_value());
  EXPECT_TRUE(data_trust->changed_cells.empty());
}

TEST(Integration, RepairedCsvRoundTripsThroughWriter) {
  std::istringstream csv(
      "City,Zip\nSpringfield,11111\nSpringfield,22222\nShelbyville,3\n");
  Instance inst = ReadCsv(csv);
  FDSet sigma = FDSet::Parse({"City->Zip"}, inst.schema());
  EncodedInstance enc(inst);
  CardinalityWeight w;
  auto repair = RepairDataAndFds(sigma, enc, /*tau=*/2, w);
  ASSERT_TRUE(repair.has_value());
  std::ostringstream out;
  WriteCsv(repair->data.Decode(), out);
  std::istringstream back(out.str());
  Instance again = ReadCsv(back);
  EXPECT_EQ(again.NumTuples(), 3);
}

}  // namespace
}  // namespace retrust
