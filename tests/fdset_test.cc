#include "src/fd/fdset.h"

#include <gtest/gtest.h>

namespace retrust {
namespace {

Schema Abcde() { return Schema::FromNames({"A", "B", "C", "D", "E"}); }

TEST(FDSet, ParseMultiple) {
  FDSet fds = FDSet::Parse({"A->B", "B,C->D"}, Abcde());
  EXPECT_EQ(fds.size(), 2);
  EXPECT_EQ(fds.fd(1).lhs, (AttrSet{1, 2}));
  EXPECT_EQ(fds.fd(1).rhs, 3);
}

TEST(FDSet, Closure) {
  FDSet fds = FDSet::Parse({"A->B", "B->C", "C,D->E"}, Abcde());
  EXPECT_EQ(fds.Closure(AttrSet{0}), (AttrSet{0, 1, 2}));
  EXPECT_EQ(fds.Closure(AttrSet{0, 3}), (AttrSet{0, 1, 2, 3, 4}));
  EXPECT_EQ(fds.Closure(AttrSet{3}), AttrSet{3});
  EXPECT_EQ(fds.Closure(AttrSet()), AttrSet());
}

TEST(FDSet, Implies) {
  FDSet fds = FDSet::Parse({"A->B", "B->C"}, Abcde());
  EXPECT_TRUE(fds.Implies(FD::Parse("A->C", Abcde())));
  EXPECT_TRUE(fds.Implies(FD::Parse("A,D->C", Abcde())));
  EXPECT_FALSE(fds.Implies(FD::Parse("C->A", Abcde())));
}

TEST(FDSet, IsMinimal) {
  EXPECT_TRUE(FDSet::Parse({"A->B", "B->C"}, Abcde()).IsMinimal());
  // Redundant FD (implied by transitivity).
  EXPECT_FALSE(
      FDSet::Parse({"A->B", "B->C", "A->C"}, Abcde()).IsMinimal());
  // Extraneous LHS attribute.
  EXPECT_FALSE(FDSet::Parse({"A->B", "A,B->C"}, Abcde()).IsMinimal());
  // Trivial FD.
  EXPECT_FALSE(FDSet(std::vector<FD>{FD(AttrSet{0}, 0)}).IsMinimal());
}

TEST(FDSet, MinimizeRemovesRedundancy) {
  FDSet fds = FDSet::Parse({"A->B", "B->C", "A->C"}, Abcde());
  FDSet min = fds.Minimize();
  EXPECT_TRUE(min.IsMinimal());
  EXPECT_EQ(min.size(), 2);
  // Equivalent: closures agree.
  for (int a = 0; a < 5; ++a) {
    EXPECT_EQ(min.Closure(AttrSet::Single(a)),
              fds.Closure(AttrSet::Single(a)));
  }
}

TEST(FDSet, MinimizeShrinksLhs) {
  FDSet fds = FDSet::Parse({"A->B", "A,B->C"}, Abcde());
  FDSet min = fds.Minimize();
  EXPECT_TRUE(min.IsMinimal());
  // A,B->C reduces to A->C.
  bool found = false;
  for (const FD& fd : min.fds()) {
    if (fd.rhs == 2) {
      EXPECT_EQ(fd.lhs, AttrSet{0});
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(FDSet, ExtendAppendsToLhs) {
  FDSet fds = FDSet::Parse({"A->B", "C->D"}, Abcde());
  FDSet ext = fds.Extend({AttrSet{2}, AttrSet{0, 1}});
  EXPECT_EQ(ext.fd(0).lhs, (AttrSet{0, 2}));
  EXPECT_EQ(ext.fd(0).rhs, 1);
  EXPECT_EQ(ext.fd(1).lhs, (AttrSet{0, 1, 2}));
}

TEST(FDSet, ExtendValidation) {
  FDSet fds = FDSet::Parse({"A->B"}, Abcde());
  EXPECT_THROW(fds.Extend({}), std::invalid_argument);
  // May not append the FD's own RHS.
  EXPECT_THROW(fds.Extend({AttrSet{1}}), std::invalid_argument);
}

TEST(FDSet, ExtensionsToRoundTrip) {
  FDSet fds = FDSet::Parse({"A->B", "C->D"}, Abcde());
  std::vector<AttrSet> ext = {AttrSet{4}, AttrSet{0}};
  FDSet relaxed = fds.Extend(ext);
  EXPECT_EQ(fds.ExtensionsTo(relaxed), ext);
  EXPECT_THROW(fds.ExtensionsTo(FDSet::Parse({"A->B"}, Abcde())),
               std::invalid_argument);
}

TEST(FDSet, RelaxationIsLogicallyWeaker) {
  // Any instance satisfying the original satisfies the extension
  // (checked logically here: the original implies the extension).
  FDSet fds = FDSet::Parse({"A->B"}, Abcde());
  FDSet relaxed = fds.Extend({AttrSet{2, 3}});
  EXPECT_TRUE(fds.Implies(relaxed.fd(0)));
  EXPECT_FALSE(relaxed.Implies(fds.fd(0)));
}

TEST(FDSet, ToString) {
  FDSet fds = FDSet::Parse({"A->B", "C->D"}, Abcde());
  EXPECT_EQ(fds.ToString(Abcde()), "{A->B; C->D}");
}

}  // namespace
}  // namespace retrust
