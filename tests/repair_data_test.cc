#include "src/repair/repair_data.h"

#include <gtest/gtest.h>

#include "src/eval/generator.h"
#include "src/eval/perturb.h"
#include "src/fd/conflict_graph.h"
#include "src/fd/violation.h"
#include "src/graph/vertex_cover.h"

namespace retrust {
namespace {

Instance Fig6() {
  // Figure 6's instance (same as Figure 2).
  Instance inst(Schema::FromNames({"A", "B", "C", "D"}));
  auto add = [&](const char* a, const char* b, const char* c,
                 const char* d) {
    inst.AddTuple({Value(a), Value(b), Value(c), Value(d)});
  };
  add("1", "1", "1", "1");
  add("1", "2", "1", "3");
  add("2", "2", "1", "1");
  add("2", "3", "4", "3");
  return inst;
}

TEST(RepairData, OutputSatisfiesSigmaPrime) {
  EncodedInstance enc(Fig6());
  // Figure 6 repairs under Σ' = {CA->B, C->D}.
  FDSet sigma = FDSet::Parse({"C,A->B", "C->D"}, Fig6().schema());
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    DataRepairResult r = RepairData(enc, sigma, &rng);
    EXPECT_TRUE(Satisfies(r.repaired, sigma)) << "seed " << seed;
    EXPECT_LE(static_cast<int64_t>(r.changed_cells.size()),
              r.change_bound);
  }
}

TEST(RepairData, NoChangesWhenAlreadyConsistent) {
  EncodedInstance enc(Fig6());
  FDSet sigma = FDSet::Parse({"A,B->C"}, Fig6().schema());
  Rng rng(1);
  DataRepairResult r = RepairData(enc, sigma, &rng);
  EXPECT_TRUE(r.changed_cells.empty());
  EXPECT_EQ(r.cover_size, 0);
  EXPECT_EQ(enc.DistdTo(r.repaired), 0);
}

TEST(RepairData, OnlyCoverTuplesChange) {
  EncodedInstance enc(Fig6());
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, Fig6().schema());
  ConflictGraph cg = BuildConflictGraph(enc, sigma);
  auto cover = GreedyVertexCover(cg.graph);
  std::vector<char> in_cover(enc.NumTuples(), 0);
  for (int32_t t : cover) in_cover[t] = 1;
  Rng rng(3);
  DataRepairResult r = RepairData(enc, sigma, &rng);
  for (const CellRef& c : r.changed_cells) {
    EXPECT_TRUE(in_cover[c.tuple])
        << "changed non-cover tuple t" << c.tuple;
  }
}

TEST(RepairData, GroundedRepairStillSatisfies) {
  // V-instance semantics: instantiating the variables with fresh values
  // must preserve satisfaction.
  EncodedInstance enc(Fig6());
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, Fig6().schema());
  Rng rng(7);
  DataRepairResult r = RepairData(enc, sigma, &rng);
  Instance grounded = r.repaired.Decode().Ground();
  EncodedInstance genc(grounded);
  EXPECT_TRUE(Satisfies(genc, sigma));
}

TEST(RepairData, PerTupleChangesBoundedByAlpha) {
  EncodedInstance enc(Fig6());
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, Fig6().schema());
  int64_t per_tuple = std::min<int64_t>(enc.NumAttrs() - 1, sigma.size());
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    DataRepairResult r = RepairData(enc, sigma, &rng);
    std::vector<int> changes_per_tuple(enc.NumTuples(), 0);
    for (const CellRef& c : r.changed_cells) ++changes_per_tuple[c.tuple];
    for (int c : changes_per_tuple) {
      EXPECT_LE(c, per_tuple) << "seed " << seed;
    }
  }
}

TEST(FindAssignment, ForcesRhsFromCleanWitness) {
  // Clean tuple (1, x); repairing t1 = (1, y) with A fixed forces B = x.
  Instance inst(Schema::FromNames({"A", "B"}));
  inst.AddTuple({Value("1"), Value("x")});
  inst.AddTuple({Value("1"), Value("y")});
  EncodedInstance enc(inst);
  FDSet sigma = FDSet::Parse({"A->B"}, inst.schema());
  internal::CleanIndex clean(enc, sigma);
  clean.Insert(enc, 0);
  auto tc = internal::FindAssignment(&enc, 1, AttrSet{0}, sigma, clean);
  ASSERT_TRUE(tc.has_value());
  EXPECT_EQ((*tc)[0], enc.At(1, 0));
  EXPECT_EQ((*tc)[1], enc.At(0, 1));  // forced to the witness's B
}

TEST(FindAssignment, FailsWhenForcedValueConflictsWithFixed) {
  Instance inst(Schema::FromNames({"A", "B"}));
  inst.AddTuple({Value("1"), Value("x")});
  inst.AddTuple({Value("1"), Value("y")});
  EncodedInstance enc(inst);
  FDSet sigma = FDSet::Parse({"A->B"}, inst.schema());
  internal::CleanIndex clean(enc, sigma);
  clean.Insert(enc, 0);
  // Both cells fixed: B is pinned to y but the clean witness forces x.
  auto tc = internal::FindAssignment(&enc, 1, AttrSet{0, 1}, sigma, clean);
  EXPECT_FALSE(tc.has_value());
}

TEST(FindAssignment, FreshVariablesAvoidSpuriousMatches) {
  Instance inst(Schema::FromNames({"A", "B"}));
  inst.AddTuple({Value("1"), Value("x")});
  inst.AddTuple({Value("2"), Value("y")});
  EncodedInstance enc(inst);
  FDSet sigma = FDSet::Parse({"A->B"}, inst.schema());
  internal::CleanIndex clean(enc, sigma);
  clean.Insert(enc, 0);
  // Only B fixed: A becomes a fresh variable that matches no clean key.
  auto tc = internal::FindAssignment(&enc, 1, AttrSet{1}, sigma, clean);
  ASSERT_TRUE(tc.has_value());
  EXPECT_TRUE(IsVariableCode((*tc)[0]));
  EXPECT_EQ((*tc)[1], enc.At(1, 1));
}

TEST(FindAssignment, ChasesTransitiveFds) {
  // Σ' = {A->B, B->C}; fixing A forces B, which forces C.
  Instance inst(Schema::FromNames({"A", "B", "C"}));
  inst.AddTuple({Value("1"), Value("b"), Value("c")});
  inst.AddTuple({Value("1"), Value("z"), Value("w")});
  EncodedInstance enc(inst);
  FDSet sigma = FDSet::Parse({"A->B", "B->C"}, inst.schema());
  internal::CleanIndex clean(enc, sigma);
  clean.Insert(enc, 0);
  auto tc = internal::FindAssignment(&enc, 1, AttrSet{0}, sigma, clean);
  ASSERT_TRUE(tc.has_value());
  EXPECT_EQ((*tc)[1], enc.At(0, 1));
  EXPECT_EQ((*tc)[2], enc.At(0, 2));
}

// Property sweep: on perturbed census workloads, the repair always
// satisfies Σ' and respects the Theorem 3 change bound.
class RepairDataProperty : public ::testing::TestWithParam<int> {};

TEST_P(RepairDataProperty, SatisfiesAndBounded) {
  CensusConfig cfg;
  cfg.num_tuples = 300;
  cfg.num_attrs = 8;
  cfg.planted_lhs_sizes = {3};
  cfg.seed = static_cast<uint64_t>(GetParam()) * 13 + 1;
  GeneratedData data = GenerateCensusLike(cfg);
  PerturbOptions popts;
  popts.fd_error_rate = 0.34;
  popts.data_error_rate = 0.03;
  popts.seed = static_cast<uint64_t>(GetParam()) * 7 + 2;
  PerturbedData dirty = Perturb(data.instance, data.planted_fds, popts);
  EncodedInstance enc(dirty.data);
  Rng rng(static_cast<uint64_t>(GetParam()));
  DataRepairResult r = RepairData(enc, dirty.fds, &rng);
  EXPECT_TRUE(Satisfies(r.repaired, dirty.fds));
  EXPECT_LE(static_cast<int64_t>(r.changed_cells.size()), r.change_bound);
  // Cells not reported as changed are truly unchanged.
  int diff = enc.DistdTo(r.repaired);
  EXPECT_EQ(diff, static_cast<int>(r.changed_cells.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairDataProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace retrust
