// Observability through the service stack (named Obs* so CI's TSan job
// runs it):
//   * A traced repair over a pipelined wire connection returns a
//     multi-level span tree — decode / queue_wait / service → session →
//     search (with phase children) — whose measured pieces fit inside the
//     root's wall time.
//   * BIT-IDENTITY — an untraced wire reply carries no "trace" key and is
//     byte-identical (volatile fields stripped) to serial per-Session
//     execution; a traced reply minus its "trace" key is the same bytes,
//     so tracing never changes the repair itself.
//   * The `metrics` verb exposes the registry (>= 15 series spanning the
//     wire, queue, session-cache, and search layers) and errors cleanly
//     when the server runs with observability off.
//   * The flight recorder remembers completed AND failed requests,
//     `dump_recent` returns them newest first, and the slow-request log
//     counts over-threshold requests.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/session.h"
#include "src/eval/generator.h"
#include "src/eval/perturb.h"
#include "src/obs/metrics.h"
#include "src/service/client.h"
#include "src/service/event_loop.h"
#include "src/service/server.h"
#include "src/service/wire.h"

namespace retrust::service {
namespace {

struct ObsTenant {
  std::string name;
  Instance data;
  std::vector<std::string> fd_texts;
};

ObsTenant MakeObsTenant() {
  CensusConfig gen;
  gen.num_tuples = 90;
  gen.num_attrs = 8;
  gen.planted_lhs_sizes = {2, 2};
  gen.seed = 91;
  PerturbOptions perturb;
  perturb.data_error_rate = 0.02;
  perturb.fd_error_rate = 0.5;
  perturb.seed = gen.seed + 1;
  GeneratedData clean = GenerateCensusLike(gen);
  PerturbedData dirty = Perturb(clean.instance, clean.planted_fds, perturb);

  ObsTenant tenant;
  tenant.name = "obs";
  Schema schema = dirty.data.schema();
  for (const FD& fd : dirty.fds.fds()) {
    tenant.fd_texts.push_back(fd.ToString(schema));
  }
  tenant.data = dirty.data;
  return tenant;
}

Json RepairJson(const std::string& tenant, double tau_r, uint64_t seed,
                bool traced) {
  Json::Object obj;
  obj["op"] = Json("repair");
  obj["tenant"] = Json(tenant);
  obj["tau_r"] = Json(tau_r);
  obj["seed"] = Json(seed);
  if (traced) obj["trace"] = Json(true);
  return Json(std::move(obj));
}

/// Wall-clock, correlation, and trace fields stripped, recursively — what
/// remains must be bit-identical regardless of tracing.
Json StripVolatile(const Json& value) {
  if (value.is_object()) {
    Json::Object out;
    for (const auto& [key, member] : value.AsObject()) {
      if (key == "seconds" || key == "first_repair_seconds" || key == "id" ||
          key == "trace") {
        continue;
      }
      out[key] = StripVolatile(member);
    }
    return Json(std::move(out));
  }
  if (value.is_array()) {
    Json::Array out;
    for (const Json& member : value.AsArray()) {
      out.push_back(StripVolatile(member));
    }
    return Json(std::move(out));
  }
  return value;
}

const Json* FindSpan(const Json& span, const std::string& name) {
  const Json* spans = span.Get("spans");
  if (spans == nullptr) return nullptr;
  for (const Json& child : spans->AsArray()) {
    const Json* child_name = child.Get("name");
    if (child_name != nullptr && child_name->AsString() == name) {
      return &child;
    }
  }
  return nullptr;
}

struct WireHarness {
  explicit WireHarness(ServerOptions opts) : server(std::move(opts)) {
    ObsTenant tenant = MakeObsTenant();
    Status loaded =
        server.LoadTenant(tenant.name, tenant.data, tenant.fd_texts);
    EXPECT_TRUE(loaded.ok()) << loaded.ToString();
    EventLoop::Options loop_opts;
    loop_opts.port = 0;
    loop = std::make_unique<EventLoop>(&server, loop_opts);
    Status started = loop->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    Result<std::unique_ptr<WireClient>> connected =
        WireClient::Connect(loop->port());
    EXPECT_TRUE(connected.ok()) << connected.status().ToString();
    client = std::move(*connected);
  }

  ~WireHarness() {
    client.reset();
    loop->Stop();
    server.Stop();
  }

  Json Call(Json request) {
    Result<Json> reply = client->Call(std::move(request)).get();
    EXPECT_TRUE(reply.ok()) << reply.status().ToString();
    return reply.ok() ? *reply : Json();
  }

  Server server;
  std::unique_ptr<EventLoop> loop;
  std::unique_ptr<WireClient> client;
};

ServerOptions ObsServerOptions(obs::MetricsRegistry* registry) {
  ServerOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 0;
  opts.metrics = registry;  // private registry: no cross-test pollution
  return opts;
}

// --- traced span tree over the wire --------------------------------------

TEST(ObsServiceTrace, TracedRepairReturnsMultiLevelSpanTree) {
  obs::MetricsRegistry registry;
  WireHarness wire(ObsServerOptions(&registry));

  Json reply = wire.Call(RepairJson("obs", 0.5, 7, /*traced=*/true));
  ASSERT_NE(reply.Get("ok"), nullptr);
  ASSERT_TRUE(reply.Get("ok")->AsBool());

  const Json* trace = reply.Get("trace");
  ASSERT_NE(trace, nullptr) << "traced request lost its span tree";
  EXPECT_EQ(trace->Get("name")->AsString(), "request");
  const double total = trace->Get("seconds")->AsNumber();
  EXPECT_GT(total, 0.0);

  // Level 1: the wire/queue spans.
  ASSERT_NE(FindSpan(*trace, "decode"), nullptr);
  const Json* queue_wait = FindSpan(*trace, "queue_wait");
  ASSERT_NE(queue_wait, nullptr);
  const Json* service = FindSpan(*trace, "service");
  ASSERT_NE(service, nullptr);

  // queue_wait and service both elapse inside the root's window.
  const double accounted = queue_wait->Get("seconds")->AsNumber() +
                           service->Get("seconds")->AsNumber();
  EXPECT_LE(accounted, total + 0.001);

  // Levels 2-4: service → session → search → phases.
  const Json* session = FindSpan(*service, "session");
  ASSERT_NE(session, nullptr);
  const Json* search = FindSpan(*session, "search");
  ASSERT_NE(search, nullptr);
  const Json* expand = FindSpan(*search, "expand");
  ASSERT_NE(expand, nullptr) << "search ran without phase accounting";
  // "count" is serialized only when != 1; absent means exactly one.
  const Json* expand_count = expand->Get("count");
  EXPECT_TRUE(expand_count == nullptr || expand_count->AsInt() > 1);

  // Phase totals accumulate INSIDE the engine's search wall time.
  double phase_seconds = 0.0;
  for (const Json& phase : search->Get("spans")->AsArray()) {
    phase_seconds += phase.Get("seconds")->AsNumber();
  }
  EXPECT_LE(phase_seconds, search->Get("seconds")->AsNumber() + 0.05);
}

// --- bit-identity --------------------------------------------------------

TEST(ObsServiceTrace, UntracedReplyIsBitIdenticalToSerialSession) {
  obs::MetricsRegistry registry;
  WireHarness wire(ObsServerOptions(&registry));

  Json untraced = wire.Call(RepairJson("obs", 0.5, 7, /*traced=*/false));
  EXPECT_EQ(untraced.Get("trace"), nullptr);
  Json traced = wire.Call(RepairJson("obs", 0.5, 7, /*traced=*/true));
  ASSERT_NE(traced.Get("trace"), nullptr);

  // Serial oracle: the same request through a private Session, rendered by
  // the same ToJson.
  ObsTenant tenant = MakeObsTenant();
  Result<Session> session = Session::Open(tenant.data, tenant.fd_texts);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  Result<RepairRequest> req =
      RepairRequestFromJson(RepairJson("obs", 0.5, 7, /*traced=*/false));
  ASSERT_TRUE(req.ok());
  Result<RepairResponse> response = session->Repair(*req);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const std::string oracle =
      StripVolatile(ToJson(*response, session->schema())).Dump();

  EXPECT_EQ(StripVolatile(untraced).Dump(), oracle);
  // Tracing changed the reply ONLY by adding the "trace" key.
  EXPECT_EQ(StripVolatile(traced).Dump(), oracle);
}

// --- metrics verb --------------------------------------------------------

TEST(ObsServiceMetrics, VerbExposesSeriesAcrossLayers) {
  obs::MetricsRegistry registry;
  WireHarness wire(ObsServerOptions(&registry));

  for (uint64_t seed : {1u, 2u, 3u}) {
    Json reply = wire.Call(RepairJson("obs", 0.5, seed, /*traced=*/false));
    ASSERT_TRUE(reply.Get("ok")->AsBool());
  }

  Json::Object req;
  req["op"] = Json("metrics");
  Json reply = wire.Call(Json(std::move(req)));
  ASSERT_TRUE(reply.Get("ok")->AsBool());
  EXPECT_GE(reply.Get("series")->AsInt(), 15);

  const std::string text = reply.Get("text")->AsString();
  // One representative series per layer: wire, queue, request latency,
  // session cache, search engine.
  for (const char* needle :
       {"retrust_wire_requests_total{verb=\"repair\"} 3",
        "retrust_requests_submitted_total 3",
        "retrust_requests_completed_total 3", "retrust_queue_depth",
        "retrust_request_latency_seconds{quantile=\"0.99\"}",
        "retrust_request_latency_seconds_count 3",
        "retrust_context_cache_entries", "retrust_search_expansions_total",
        "retrust_flight_records_total 3"}) {
    EXPECT_NE(text.find(needle), std::string::npos)
        << "missing series: " << needle << "\n"
        << text;
  }

  // Counters are monotone across scrapes.
  Json reply2 = [&] {
    Json::Object again;
    again["op"] = Json("metrics");
    return wire.Call(Json(std::move(again)));
  }();
  EXPECT_NE(reply2.Get("text")->AsString().find(
                "retrust_wire_requests_total{verb=\"metrics\"} 2"),
            std::string::npos);
}

TEST(ObsServiceMetrics, DisabledObservabilityErrorsCleanly) {
  ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 0;
  opts.observability = false;
  WireHarness wire(std::move(opts));

  Json::Object req;
  req["op"] = Json("metrics");
  Json reply = wire.Call(Json(std::move(req)));
  ASSERT_NE(reply.Get("ok"), nullptr);
  EXPECT_FALSE(reply.Get("ok")->AsBool());
  EXPECT_EQ(reply.Get("error")->AsString(), "invalid_argument");

  // The service itself is untouched by running dark.
  Json repair = wire.Call(RepairJson("obs", 0.5, 7, /*traced=*/false));
  EXPECT_TRUE(repair.Get("ok")->AsBool());
}

// --- flight recorder + slow log ------------------------------------------

TEST(ObsServiceFlight, DumpRecentReturnsNewestFirstIncludingFailures) {
  obs::MetricsRegistry registry;
  ServerOptions opts = ObsServerOptions(&registry);
  opts.flight_recorder_capacity = 8;
  opts.slow_request_seconds = 1e-9;  // everything counts as slow
  WireHarness wire(std::move(opts));

  for (uint64_t seed : {1u, 2u}) {
    ASSERT_TRUE(
        wire.Call(RepairJson("obs", 0.5, seed, false)).Get("ok")->AsBool());
  }
  // An already-expired deadline fails through the queue's terminal fail
  // path — the recorder must remember failures, not just completions.
  Json expired_req = RepairJson("obs", 0.5, 3, false);
  expired_req.MutableObject()["deadline_seconds"] = Json(1e-9);
  Json failed = wire.Call(std::move(expired_req));
  ASSERT_FALSE(failed.Get("ok")->AsBool());

  Json::Object req;
  req["op"] = Json("dump_recent");
  Json reply = wire.Call(Json(std::move(req)));
  ASSERT_TRUE(reply.Get("ok")->AsBool());
  const Json::Array& records = reply.Get("records")->AsArray();
  ASSERT_EQ(records.size(), 3u);
  // Newest first: the expired request leads.
  EXPECT_NE(records[0].Get("status")->AsString(), "ok");
  EXPECT_EQ(records[1].Get("tenant")->AsString(), "obs");
  EXPECT_EQ(records[1].Get("verb")->AsString(), "repair");
  EXPECT_EQ(records[1].Get("status")->AsString(), "ok");
  EXPECT_GT(records[1].Get("total_seconds")->AsNumber(), 0.0);
  EXPECT_GT(records[1].Get("search_states_visited")->AsInt(), 0);

  // A limit caps the dump; a bad limit is rejected.
  Json::Object limited;
  limited["op"] = Json("dump_recent");
  limited["limit"] = Json(1);
  Json one = wire.Call(Json(std::move(limited)));
  EXPECT_EQ(one.Get("records")->AsArray().size(), 1u);

  Json::Object bad;
  bad["op"] = Json("dump_recent");
  bad["limit"] = Json(-1);
  Json rejected = wire.Call(Json(std::move(bad)));
  EXPECT_FALSE(rejected.Get("ok")->AsBool());

  // The in-process accessors agree, and the slow log saw the repairs.
  EXPECT_EQ(wire.server.RecentRequests().size(), 3u);
  EXPECT_EQ(wire.server.RecentRequests(2).size(), 2u);
  EXPECT_GE(wire.server.SlowRequestsSeen(), 2u);
}

}  // namespace
}  // namespace retrust::service
