#include "src/repair/repair_driver.h"

#include <gtest/gtest.h>

#include "src/eval/generator.h"
#include "src/eval/perturb.h"

namespace retrust {
namespace {

Instance Fig2() {
  Instance inst(Schema::FromNames({"A", "B", "C", "D"}));
  auto add = [&](const char* a, const char* b, const char* c,
                 const char* d) {
    inst.AddTuple({Value(a), Value(b), Value(c), Value(d)});
  };
  add("1", "1", "1", "1");
  add("1", "2", "1", "3");
  add("2", "2", "1", "1");
  add("2", "3", "4", "3");
  return inst;
}

TEST(RepairDriver, RepairSatisfiesSigmaPrimeAndTau) {
  EncodedInstance enc(Fig2());
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, Fig2().schema());
  CardinalityWeight w;
  for (int64_t tau : {0, 2, 4, 100}) {
    auto repair = RepairDataAndFds(sigma, enc, tau, w);
    ASSERT_TRUE(repair.has_value()) << "tau=" << tau;
    EXPECT_TRUE(Satisfies(repair->data, repair->sigma_prime));
    // Theorem 2 consistency: actual cell changes bounded by tau.
    EXPECT_LE(static_cast<int64_t>(repair->changed_cells.size()), tau)
        << "tau=" << tau;
    // Σ' is a positional LHS extension of Σ.
    auto ext = sigma.ExtensionsTo(repair->sigma_prime);
    EXPECT_EQ(ext, repair->extensions);
  }
}

TEST(RepairDriver, NoRepairPropagates) {
  Instance inst(Schema::FromNames({"A", "B"}));
  inst.AddTuple({Value("1"), Value("x")});
  inst.AddTuple({Value("1"), Value("y")});
  EncodedInstance enc(inst);
  FDSet sigma = FDSet::Parse({"A->B"}, inst.schema());
  CardinalityWeight w;
  EXPECT_FALSE(RepairDataAndFds(sigma, enc, 0, w).has_value());
  // δopt is 1, but the PTIME bound is δP = α·|C2opt| = 1·2 = 2: the
  // P-approximate driver needs tau >= 2 (Definition 5's approximation).
  EXPECT_FALSE(RepairDataAndFds(sigma, enc, 1, w).has_value());
  auto repair = RepairDataAndFds(sigma, enc, 2, w);
  ASSERT_TRUE(repair.has_value());
  EXPECT_LE(repair->changed_cells.size(), 2u);
  EXPECT_GE(repair->changed_cells.size(), 1u);
  EXPECT_TRUE(Satisfies(repair->data, repair->sigma_prime));
}

TEST(RepairDriver, DeterministicGivenSeed) {
  EncodedInstance enc(Fig2());
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, Fig2().schema());
  CardinalityWeight w;
  RepairOptions opts;
  opts.seed = 99;
  auto r1 = RepairDataAndFds(sigma, enc, 4, w, opts);
  auto r2 = RepairDataAndFds(sigma, enc, 4, w, opts);
  ASSERT_TRUE(r1.has_value() && r2.has_value());
  EXPECT_EQ(r1->data.DistdTo(r2->data), 0);
  EXPECT_EQ(r1->changed_cells.size(), r2->changed_cells.size());
  EXPECT_TRUE(r1->sigma_prime == r2->sigma_prime);
}

TEST(RepairDriver, TauFromRelative) {
  EXPECT_EQ(TauFromRelative(0.0, 100), 0);
  EXPECT_EQ(TauFromRelative(1.0, 100), 100);
  EXPECT_EQ(TauFromRelative(0.5, 100), 50);
  EXPECT_EQ(TauFromRelative(0.17, 100), 17);
  // Clamped.
  EXPECT_EQ(TauFromRelative(-0.2, 100), 0);
  EXPECT_EQ(TauFromRelative(1.7, 100), 100);
}

// Pareto property (Theorem 1 flavor): sweeping tau yields repairs whose
// (distc, cells-changed) pairs are mutually non-dominated.
TEST(RepairDriver, SweepYieldsNonDominatedRepairs) {
  CensusConfig cfg;
  cfg.num_tuples = 400;
  cfg.num_attrs = 10;
  cfg.planted_lhs_sizes = {4};
  cfg.seed = 31;
  GeneratedData data = GenerateCensusLike(cfg);
  PerturbOptions popts;
  popts.fd_error_rate = 0.5;
  popts.data_error_rate = 0.02;
  popts.seed = 6;
  PerturbedData dirty = Perturb(data.instance, data.planted_fds, popts);
  EncodedInstance enc(dirty.data);
  DistinctCountWeight w(enc);
  FdSearchContext ctx(dirty.fds, enc, w);
  int64_t root = ctx.RootDeltaP();

  struct Point {
    double distc;
    int64_t delta_p;
  };
  std::vector<Point> points;
  for (double tr : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    auto repair =
        RepairDataAndFds(ctx, enc, TauFromRelative(tr, root), RepairOptions{});
    if (repair.has_value()) {
      points.push_back({repair->distc, repair->delta_p});
    }
  }
  ASSERT_GE(points.size(), 2u);
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = 0; j < points.size(); ++j) {
      if (i == j) continue;
      bool dominates = points[i].distc <= points[j].distc &&
                       points[i].delta_p <= points[j].delta_p &&
                       (points[i].distc < points[j].distc ||
                        points[i].delta_p < points[j].delta_p);
      EXPECT_FALSE(dominates)
          << "repair " << i << " dominates repair " << j;
    }
  }
}

}  // namespace
}  // namespace retrust
