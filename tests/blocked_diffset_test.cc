// Oracle tests for the blocked difference-set builder (ROADMAP item 1):
// the partition-blocked build must be BIT-IDENTICAL to the naive all-pairs
// build — same groups (difference set, edge order, counted field), same
// root δP, same full search traces — at any thread count, and the counted
// full-disagreement representation must stay invisible to every consumer.

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <vector>

#include "src/fd/difference_set.h"
#include "src/relational/delta.h"
#include "src/repair/modify_fds.h"
#include "src/repair/weights.h"

namespace retrust {
namespace {

Schema MakeSchema(int m) {
  std::vector<Attribute> attrs(m);
  for (int a = 0; a < m; ++a) {
    attrs[a] = {"A" + std::to_string(a), AttrType::kInt};
  }
  return Schema(std::move(attrs));
}

Tuple RandomTuple(std::mt19937_64& rng, int m, int domain) {
  Tuple t(m);
  for (int a = 0; a < m; ++a) {
    t[a] = Value(static_cast<int64_t>(rng() % domain));
  }
  return t;
}

Instance RandomInstance(std::mt19937_64& rng, int n, int m, int domain) {
  Instance inst(MakeSchema(m));
  for (int t = 0; t < n; ++t) inst.AddTuple(RandomTuple(rng, m, domain));
  return inst;
}

FDSet TestSigma() {
  FDSet sigma;
  sigma.Add(FD{AttrSet{0}, 1});
  sigma.Add(FD{AttrSet{2}, 3});
  sigma.Add(FD{AttrSet{0, 2}, 4});
  return sigma;
}

/// Σ with an empty-LHS FD — the degenerate "Case B" regime where pairs
/// disagreeing on EVERY attribute are conflict edges and the blocked build
/// carries them as a counted group.
FDSet EmptyLhsSigma() {
  FDSet sigma;
  sigma.Add(FD{AttrSet{}, 0});
  sigma.Add(FD{AttrSet{0}, 1});
  return sigma;
}

/// Full structural equality, including the counted field — the blocked and
/// naive front doors must agree on the exact representation, not just on
/// the logical pair population.
void ExpectIndexIdentical(const DifferenceSetIndex& got,
                          const DifferenceSetIndex& want) {
  ASSERT_EQ(got.size(), want.size());
  for (int g = 0; g < got.size(); ++g) {
    EXPECT_EQ(got.group(g).diff.bits(), want.group(g).diff.bits())
        << "group " << g;
    EXPECT_EQ(got.group(g).counted, want.group(g).counted) << "group " << g;
    ASSERT_EQ(got.group(g).edges.size(), want.group(g).edges.size())
        << "group " << g;
    for (size_t e = 0; e < got.group(g).edges.size(); ++e) {
      EXPECT_EQ(got.group(g).edges[e], want.group(g).edges[e])
          << "group " << g << " edge " << e;
    }
  }
}

void ExpectSameSearch(const ModifyFdsResult& got, const ModifyFdsResult& want) {
  ASSERT_EQ(got.repair.has_value(), want.repair.has_value());
  if (got.repair.has_value()) {
    ASSERT_EQ(got.repair->state.ext.size(), want.repair->state.ext.size());
    for (size_t i = 0; i < got.repair->state.ext.size(); ++i) {
      EXPECT_EQ(got.repair->state.ext[i].bits(), want.repair->state.ext[i].bits());
    }
    EXPECT_DOUBLE_EQ(got.repair->distc, want.repair->distc);
    EXPECT_EQ(got.repair->cover_size, want.repair->cover_size);
    EXPECT_EQ(got.repair->delta_p, want.repair->delta_p);
  }
  EXPECT_EQ(got.stats.states_visited, want.stats.states_visited);
  EXPECT_EQ(got.stats.states_generated, want.stats.states_generated);
  EXPECT_EQ(got.termination, want.termination);
}

// --- Blocked == naive, randomized, across thread counts ------------------

class BlockedOracle : public ::testing::TestWithParam<int> {};

TEST_P(BlockedOracle, RandomInstancesMatchNaive) {
  const int threads = GetParam();
  exec::Options eopts;
  eopts.num_threads = threads;
  std::mt19937_64 rng(0xb10cced + threads);
  for (int round = 0; round < 8; ++round) {
    const int n = 5 + static_cast<int>(rng() % 60);
    const int m = 2 + static_cast<int>(rng() % 5);
    const int domain = 2 + static_cast<int>(rng() % 5);
    Instance inst = RandomInstance(rng, n, m, domain);
    EncodedInstance enc(inst);
    FDSet sigma;
    sigma.Add(FD{AttrSet{0}, 1});
    if (m >= 4) sigma.Add(FD{AttrSet{2}, 3});

    DiffSetBuildStats blocked_stats;
    DiffSetBuildStats naive_stats;
    DifferenceSetIndex blocked = BuildDifferenceSetIndex(
        enc, sigma, eopts, DiffSetBuildMode::kBlocked, &blocked_stats);
    DifferenceSetIndex naive = BuildDifferenceSetIndex(
        enc, sigma, eopts, DiffSetBuildMode::kNaive, &naive_stats);
    ExpectIndexIdentical(blocked, naive);

    // The two front doors must agree on the logical pair population even
    // though they count different things along the way.
    EXPECT_EQ(blocked_stats.pairs_materialized, naive_stats.pairs_materialized)
        << "round " << round;
    EXPECT_EQ(naive_stats.pairs_candidate,
              static_cast<int64_t>(n) * (n - 1) / 2);
    // Ownership: every candidate pair is owned by at most one attribute.
    EXPECT_LE(blocked_stats.pairs_owned, blocked_stats.pairs_candidate);
    EXPECT_LE(blocked_stats.pairs_materialized, blocked_stats.pairs_owned);
  }
}

TEST_P(BlockedOracle, SearchTracesMatchNaive) {
  const int threads = GetParam();
  exec::Options eopts;
  eopts.num_threads = threads;
  CardinalityWeight weights;
  std::mt19937_64 rng(0x5ea2c4 + threads);
  for (int round = 0; round < 4; ++round) {
    Instance inst = RandomInstance(rng, 30, 5, 3);
    EncodedInstance enc(inst);
    FDSet sigma = TestSigma();
    FdSearchContext blocked(sigma, enc, weights, {}, eopts,
                            DiffSetBuildMode::kBlocked);
    FdSearchContext naive(sigma, enc, weights, {}, eopts,
                          DiffSetBuildMode::kNaive);
    ASSERT_EQ(blocked.RootDeltaP(), naive.RootDeltaP());
    for (int64_t tau :
         {int64_t{0}, blocked.RootDeltaP() / 2, blocked.RootDeltaP()}) {
      ExpectSameSearch(ModifyFds(blocked, tau), ModifyFds(naive, tau));
    }
  }
}

TEST_P(BlockedOracle, EmptyLhsSigmaMatchesNaive) {
  const int threads = GetParam();
  exec::Options eopts;
  eopts.num_threads = threads;
  CardinalityWeight weights;
  std::mt19937_64 rng(0xca5eb + threads);
  for (int round = 0; round < 4; ++round) {
    Instance inst = RandomInstance(rng, 20, 3, 2 + round);
    EncodedInstance enc(inst);
    FDSet sigma = EmptyLhsSigma();
    DifferenceSetIndex blocked =
        BuildDifferenceSetIndex(enc, sigma, eopts, DiffSetBuildMode::kBlocked);
    DifferenceSetIndex naive =
        BuildDifferenceSetIndex(enc, sigma, eopts, DiffSetBuildMode::kNaive);
    ExpectIndexIdentical(blocked, naive);

    // Search answers (which materialize the counted group through the
    // cover path) must also agree.
    FdSearchContext bctx(sigma, enc, weights, {}, eopts,
                         DiffSetBuildMode::kBlocked);
    FdSearchContext nctx(sigma, enc, weights, {}, eopts,
                         DiffSetBuildMode::kNaive);
    ASSERT_EQ(bctx.RootDeltaP(), nctx.RootDeltaP());
    ExpectSameSearch(ModifyFds(bctx, bctx.RootDeltaP() / 2),
                     ModifyFds(nctx, nctx.RootDeltaP() / 2));
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, BlockedOracle,
                         ::testing::Values(1, 2, 4, 8));

// --- Counted-group edge cases --------------------------------------------

TEST(CountedGroups, AllDistinctWithoutEmptyLhsProducesEmptyIndex) {
  // Every pair disagrees everywhere; without an empty-LHS FD such pairs
  // violate nothing, so they are counted in stats but produce NO group.
  Instance inst(MakeSchema(2));
  for (int t = 0; t < 6; ++t) {
    inst.AddTuple({Value(static_cast<int64_t>(t)),
                   Value(static_cast<int64_t>(t + 100))});
  }
  EncodedInstance enc(inst);
  FDSet sigma;
  sigma.Add(FD{AttrSet{0}, 1});
  DiffSetBuildStats stats;
  DifferenceSetIndex index = BuildDifferenceSetIndex(
      enc, sigma, {}, DiffSetBuildMode::kBlocked, &stats);
  EXPECT_TRUE(index.empty());
  EXPECT_FALSE(index.HasCountedGroups());
  EXPECT_EQ(stats.pairs_counted, 15);  // C(6,2), none materialized
  EXPECT_EQ(stats.pairs_materialized, 0);
}

TEST(CountedGroups, AllDistinctWithEmptyLhsIsOneCountedGroup) {
  Instance inst(MakeSchema(2));
  for (int t = 0; t < 5; ++t) {
    inst.AddTuple({Value(static_cast<int64_t>(t)),
                   Value(static_cast<int64_t>(t + 100))});
  }
  EncodedInstance enc(inst);
  DifferenceSetIndex index =
      BuildDifferenceSetIndex(enc, EmptyLhsSigma(), {});
  ASSERT_EQ(index.size(), 1);
  EXPECT_TRUE(index.HasCountedGroups());
  EXPECT_EQ(index.group(0).diff.bits(), AttrSet::Universe(2).bits());
  EXPECT_EQ(index.group(0).counted, 10);
  EXPECT_TRUE(index.group(0).edges.empty());
  EXPECT_EQ(index.group(0).frequency(), 10);

  // Unbound counted groups refuse to materialize...
  EXPECT_THROW(index.EdgesForCover(0), std::logic_error);
  // ...and bound ones produce the exact ascending pair list the naive
  // build would have stored.
  index.BindInstance(&enc);
  const std::vector<Edge>& edges = index.EdgesForCover(0);
  ASSERT_EQ(edges.size(), 10u);
  size_t k = 0;
  for (TupleId u = 0; u < 5; ++u) {
    for (TupleId v = u + 1; v < 5; ++v) {
      EXPECT_EQ(edges[k], Edge(u, v));
      ++k;
    }
  }

  // Counted groups cannot be delta-patched in place.
  EXPECT_THROW(index.ApplyDelta(enc, EmptyLhsSigma(), {}, {}, nullptr),
               std::logic_error);
}

TEST(CountedGroups, AllDuplicateTuplesProduceNoConflicts) {
  Instance inst(MakeSchema(3));
  for (int t = 0; t < 8; ++t) {
    inst.AddTuple({Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{3})});
  }
  EncodedInstance enc(inst);
  DiffSetBuildStats stats;
  DifferenceSetIndex index = BuildDifferenceSetIndex(
      enc, EmptyLhsSigma(), {}, DiffSetBuildMode::kBlocked, &stats);
  EXPECT_TRUE(index.empty());
  EXPECT_EQ(stats.pairs_counted, 0);  // every pair agrees somewhere
  EXPECT_EQ(stats.pairs_materialized, 0);
}

TEST(CountedGroups, SingleAttributeInstance) {
  // m = 1: the universe is {A0}; with Σ = {∅ -> A0}, unequal pairs form
  // one counted group and equal pairs vanish.
  Instance inst(MakeSchema(1));
  for (int64_t v : {0, 1, 0, 2, 1}) inst.AddTuple({Value(v)});
  EncodedInstance enc(inst);
  FDSet sigma;
  sigma.Add(FD{AttrSet{}, 0});
  DifferenceSetIndex blocked =
      BuildDifferenceSetIndex(enc, sigma, {}, DiffSetBuildMode::kBlocked);
  DifferenceSetIndex naive =
      BuildDifferenceSetIndex(enc, sigma, {}, DiffSetBuildMode::kNaive);
  ExpectIndexIdentical(blocked, naive);
  ASSERT_EQ(blocked.size(), 1);
  EXPECT_EQ(blocked.group(0).counted, 8);  // C(5,2) minus two equal pairs
}

TEST(CountedGroups, CopiedIndexMaterializesIndependently) {
  Instance inst(MakeSchema(2));
  for (int t = 0; t < 4; ++t) {
    inst.AddTuple({Value(static_cast<int64_t>(t)),
                   Value(static_cast<int64_t>(t + 10))});
  }
  EncodedInstance enc(inst);
  DifferenceSetIndex index =
      BuildDifferenceSetIndex(enc, EmptyLhsSigma(), {});
  index.BindInstance(&enc);
  ASSERT_EQ(index.EdgesForCover(0).size(), 6u);
  DifferenceSetIndex copy = index;  // copies start with a cold lazy cache
  copy.BindInstance(&enc);
  EXPECT_EQ(copy.EdgesForCover(0).size(), 6u);
}

// --- Delta maintenance over the columnar layout --------------------------

TEST(ColumnarDelta, PatchedContextMatchesFreshBlockedBuild) {
  exec::Options eopts;
  eopts.num_threads = 4;
  CardinalityWeight weights;
  std::mt19937_64 rng(0xc01a);
  const int m = 5;
  const int domain = 3;
  Instance inst = RandomInstance(rng, 25, m, domain);
  EncodedInstance enc(inst);
  FDSet sigma = TestSigma();
  FdSearchContext ctx(sigma, enc, weights, {}, eopts);

  for (int step = 0; step < 6; ++step) {
    DeltaBatch delta;
    delta.Insert(RandomTuple(rng, m, domain));
    if (enc.NumTuples() > 0) {
      delta.Update(static_cast<TupleId>(rng() % enc.NumTuples()),
                   static_cast<AttrId>(rng() % m),
                   Value(static_cast<int64_t>(rng() % domain)));
      delta.Delete(static_cast<TupleId>(rng() % enc.NumTuples()));
    }
    DeltaPlan plan = PlanDelta(delta, enc.NumTuples(), m);
    inst.ApplyDelta(delta, plan);
    enc.ApplyDelta(delta, plan);
    ctx.ApplyDelta(enc, plan.dirty, plan.remap, eopts);

    // Column-major mutation must decode back to the mutated rows (codes
    // themselves are encounter-ordered, so only values are comparable
    // against a re-encode), and the columns must agree with the cells.
    ASSERT_EQ(enc.NumTuples(), inst.NumTuples());
    const std::vector<int32_t> row_major = enc.RowMajorCodes();
    for (TupleId t = 0; t < inst.NumTuples(); ++t) {
      for (AttrId a = 0; a < m; ++a) {
        ASSERT_EQ(enc.DecodeCell(t, a), inst.At(t, a))
            << "t=" << t << " a=" << a;
        ASSERT_EQ(enc.column(a)[t], enc.At(t, a));
        ASSERT_EQ(row_major[static_cast<size_t>(t) * m + a], enc.At(t, a));
      }
    }

    FdSearchContext fresh(sigma, enc, weights, {}, eopts);
    ExpectIndexIdentical(ctx.index(), fresh.index());
    EXPECT_EQ(ctx.RootDeltaP(), fresh.RootDeltaP());
    ExpectSameSearch(ModifyFds(ctx, ctx.RootDeltaP() / 2),
                     ModifyFds(fresh, fresh.RootDeltaP() / 2));
  }
}

TEST(ColumnarDelta, EmptyLhsDeltaRebuildsAndMatchesFresh) {
  // In the Case-B regime FdSearchContext::ApplyDelta rebuilds instead of
  // patching; the result must still match a fresh context — including the
  // delta that creates the FIRST full-disagreement pair.
  exec::Options eopts;
  eopts.num_threads = 2;
  CardinalityWeight weights;
  FDSet sigma = EmptyLhsSigma();

  // Start with tuples that all agree on attribute 1: no counted group.
  Instance inst(MakeSchema(2));
  for (int64_t v : {0, 1, 2}) inst.AddTuple({Value(v), Value(int64_t{7})});
  EncodedInstance enc(inst);
  FdSearchContext ctx(sigma, enc, weights, {}, eopts);
  ASSERT_FALSE(ctx.index().HasCountedGroups());

  // The insert disagrees with everyone everywhere: the first counted pair.
  DeltaBatch delta;
  delta.Insert({Value(int64_t{9}), Value(int64_t{8})});
  DeltaPlan plan = PlanDelta(delta, enc.NumTuples(), 2);
  inst.ApplyDelta(delta, plan);
  enc.ApplyDelta(delta, plan);
  ctx.ApplyDelta(enc, plan.dirty, plan.remap, eopts);

  FdSearchContext fresh(sigma, enc, weights, {}, eopts);
  EXPECT_TRUE(ctx.index().HasCountedGroups());
  ExpectIndexIdentical(ctx.index(), fresh.index());
  EXPECT_EQ(ctx.RootDeltaP(), fresh.RootDeltaP());
  ExpectSameSearch(ModifyFds(ctx, 0), ModifyFds(fresh, 0));

  // And further deltas (update + delete) keep matching.
  DeltaBatch delta2;
  delta2.Update(0, 1, Value(int64_t{8}));
  delta2.Delete(2);
  DeltaPlan plan2 = PlanDelta(delta2, enc.NumTuples(), 2);
  inst.ApplyDelta(delta2, plan2);
  enc.ApplyDelta(delta2, plan2);
  ctx.ApplyDelta(enc, plan2.dirty, plan2.remap, eopts);
  FdSearchContext fresh2(sigma, enc, weights, {}, eopts);
  ExpectIndexIdentical(ctx.index(), fresh2.index());
  EXPECT_EQ(ctx.RootDeltaP(), fresh2.RootDeltaP());
}

}  // namespace
}  // namespace retrust
