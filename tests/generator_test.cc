#include "src/eval/generator.h"

#include <gtest/gtest.h>

#include "src/fd/violation.h"

namespace retrust {
namespace {

TEST(Generator, ShapeMatchesConfig) {
  CensusConfig cfg;
  cfg.num_tuples = 200;
  cfg.num_attrs = 12;
  cfg.planted_lhs_sizes = {4, 3};
  cfg.seed = 1;
  GeneratedData data = GenerateCensusLike(cfg);
  EXPECT_EQ(data.instance.NumTuples(), 200);
  EXPECT_EQ(data.instance.NumAttrs(), 12);
  EXPECT_EQ(data.planted_fds.size(), 2);
  EXPECT_EQ(data.planted_fds.fd(0).lhs.Count(), 4);
  EXPECT_EQ(data.planted_fds.fd(1).lhs.Count(), 3);
}

TEST(Generator, PlantedFdsHoldExactly) {
  for (uint64_t seed : {1u, 7u, 42u}) {
    CensusConfig cfg;
    cfg.num_tuples = 500;
    cfg.num_attrs = 14;
    cfg.planted_lhs_sizes = {5, 4};
    cfg.seed = seed;
    GeneratedData data = GenerateCensusLike(cfg);
    EncodedInstance enc(data.instance);
    EXPECT_TRUE(Satisfies(enc, data.planted_fds)) << "seed " << seed;
  }
}

TEST(Generator, DeterministicGivenSeed) {
  CensusConfig cfg;
  cfg.num_tuples = 100;
  cfg.num_attrs = 10;
  cfg.seed = 5;
  GeneratedData a = GenerateCensusLike(cfg);
  GeneratedData b = GenerateCensusLike(cfg);
  EXPECT_EQ(a.instance.DistdTo(b.instance), 0);
  cfg.seed = 6;
  GeneratedData c = GenerateCensusLike(cfg);
  EXPECT_GT(a.instance.DistdTo(c.instance), 0);
}

TEST(Generator, DuplicateClustersExist) {
  // The entity model must produce tuple pairs agreeing on ALL base
  // attributes (the precondition for RHS-violation injection).
  CensusConfig cfg;
  cfg.num_tuples = 400;
  cfg.num_attrs = 10;
  cfg.planted_lhs_sizes = {4};
  cfg.dup_factor = 4;
  cfg.seed = 9;
  GeneratedData data = GenerateCensusLike(cfg);
  EncodedInstance enc(data.instance);
  const FD& fd = data.planted_fds.fd(0);
  // Count tuples sharing their full-LHS key with another tuple.
  int64_t distinct = enc.CountDistinctProjection(fd.lhs);
  EXPECT_LT(distinct, data.instance.NumTuples());
}

TEST(Generator, UsesCensusNames) {
  CensusConfig cfg;
  cfg.num_tuples = 10;
  cfg.num_attrs = 8;
  cfg.planted_lhs_sizes = {3};
  GeneratedData data = GenerateCensusLike(cfg);
  EXPECT_EQ(data.instance.schema().name(0), CensusAttributeNames()[0]);
  EXPECT_EQ(CensusAttributeNames().size(), 40u);
}

TEST(Generator, RejectsImpossibleConfigs) {
  CensusConfig too_narrow;
  too_narrow.num_attrs = 5;
  too_narrow.planted_lhs_sizes = {6};  // LHS wider than schema
  EXPECT_THROW(GenerateCensusLike(too_narrow), std::invalid_argument);

  CensusConfig too_wide;
  too_wide.num_attrs = 64;  // beyond the 40 named attributes
  EXPECT_THROW(GenerateCensusLike(too_wide), std::invalid_argument);

  CensusConfig base_overflow;
  base_overflow.num_attrs = 8;
  base_overflow.planted_lhs_sizes = {4};
  base_overflow.num_base_attrs = 8;  // no room for the derived attribute
  EXPECT_THROW(GenerateCensusLike(base_overflow), std::invalid_argument);
}

TEST(Generator, PlantedRhsOutsideBaseAttrs) {
  CensusConfig cfg;
  cfg.num_tuples = 50;
  cfg.num_attrs = 10;
  cfg.planted_lhs_sizes = {3, 3};
  GeneratedData data = GenerateCensusLike(cfg);
  for (const FD& fd : data.planted_fds.fds()) {
    EXPECT_FALSE(fd.lhs.Contains(fd.rhs));
    for (AttrId a : fd.lhs) EXPECT_LT(a, fd.rhs);
  }
}

}  // namespace
}  // namespace retrust
