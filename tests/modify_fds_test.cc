#include "src/repair/modify_fds.h"

#include <gtest/gtest.h>

#include "src/eval/generator.h"
#include "src/eval/perturb.h"

namespace retrust {
namespace {

Instance Fig2() {
  Instance inst(Schema::FromNames({"A", "B", "C", "D"}));
  auto add = [&](const char* a, const char* b, const char* c,
                 const char* d) {
    inst.AddTuple({Value(a), Value(b), Value(c), Value(d)});
  };
  add("1", "1", "1", "1");
  add("1", "2", "1", "3");
  add("2", "2", "1", "1");
  add("2", "3", "4", "3");
  return inst;
}

TEST(ModifyFds, RootIsGoalAtLargeTau) {
  EncodedInstance enc(Fig2());
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, Fig2().schema());
  CardinalityWeight w;
  ModifyFdsResult r = ModifyFds(sigma, enc, /*tau=*/100, w);
  ASSERT_TRUE(r.repair.has_value());
  EXPECT_TRUE(r.repair->state.IsRoot());
  EXPECT_EQ(r.repair->distc, 0.0);
  // Root δP on Fig 2: the canonical (diff-set-group-ordered) matching
  // picks edge (t2,t3) first, covering all three path edges with 2
  // tuples; α = 2, so δP = 4 (matching the paper's worked value).
  EXPECT_EQ(r.repair->delta_p, 4);
}

TEST(ModifyFds, TauZeroNeedsFullResolution) {
  EncodedInstance enc(Fig2());
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, Fig2().schema());
  CardinalityWeight w;
  ModifyFdsResult r = ModifyFds(sigma, enc, /*tau=*/0, w);
  ASSERT_TRUE(r.repair.has_value());
  // All Figure 2 diffsets (BD, AD, BCD) are resolvable by extensions, so a
  // zero-violation relaxation exists. Resolving BD needs D on A->B and B
  // on C->D; resolving AD additionally needs A on C->D: 3 appends total.
  EXPECT_EQ(r.repair->delta_p, 0);
  EXPECT_EQ(r.repair->distc, 3.0);
  EXPECT_TRUE(Satisfies(enc, r.repair->sigma_prime));
}

TEST(ModifyFds, NoRepairWhenRhsOnlyDiffAndTauZero) {
  Instance inst(Schema::FromNames({"A", "B"}));
  inst.AddTuple({Value("1"), Value("x")});
  inst.AddTuple({Value("1"), Value("y")});
  EncodedInstance enc(inst);
  FDSet sigma = FDSet::Parse({"A->B"}, inst.schema());
  CardinalityWeight w;
  ModifyFdsResult r = ModifyFds(sigma, enc, 0, w);
  EXPECT_FALSE(r.repair.has_value());
}

TEST(ModifyFds, ResultSatisfiesDeltaPBound) {
  EncodedInstance enc(Fig2());
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, Fig2().schema());
  CardinalityWeight w;
  for (int64_t tau : {0, 2, 4, 6, 8, 20}) {
    ModifyFdsResult r = ModifyFds(sigma, enc, tau, w);
    if (r.repair.has_value()) {
      EXPECT_LE(r.repair->delta_p, tau) << "tau=" << tau;
    }
  }
}

TEST(ModifyFds, AStarMatchesBestFirstCost) {
  // Both searches are exact w.r.t. the δP goal test, so they must agree on
  // the optimal distc (possibly via different states).
  CensusConfig cfg;
  cfg.num_tuples = 500;
  cfg.num_attrs = 10;
  cfg.planted_lhs_sizes = {4};
  cfg.seed = 21;
  GeneratedData data = GenerateCensusLike(cfg);
  PerturbOptions popts;
  popts.fd_error_rate = 0.5;
  popts.data_error_rate = 0.01;
  popts.seed = 5;
  PerturbedData dirty = Perturb(data.instance, data.planted_fds, popts);
  EncodedInstance enc(dirty.data);
  DistinctCountWeight w(enc);
  FdSearchContext ctx(dirty.fds, enc, w);
  int64_t root_dp = ctx.RootDeltaP();
  for (double tr : {0.1, 0.3, 0.6}) {
    int64_t tau = static_cast<int64_t>(tr * root_dp);
    ModifyFdsOptions astar, bf;
    astar.mode = SearchMode::kAStar;
    bf.mode = SearchMode::kBestFirst;
    ModifyFdsResult ra = ModifyFds(ctx, tau, astar);
    ModifyFdsResult rb = ModifyFds(ctx, tau, bf);
    ASSERT_EQ(ra.repair.has_value(), rb.repair.has_value());
    if (ra.repair.has_value()) {
      EXPECT_NEAR(ra.repair->distc, rb.repair->distc, 1e-6)
          << "tau=" << tau;
      EXPECT_LE(ra.stats.states_visited, rb.stats.states_visited * 2);
    }
  }
}

TEST(ModifyFds, TieBreakPrefersSmallerDeltaP) {
  // Employees example (paper Example 1): at tau between the two
  // single-attribute goals, the tie on distc breaks toward smaller δP
  // (closer to the data) — Phone (δP = 0) over BirthDate (δP = 2).
  Instance inst(Schema::FromNames(
      {"GivenName", "Surname", "BirthDate", "Gender", "Phone", "Income"}));
  auto add = [&](const char* g, const char* s, const char* b,
                 const char* ge, const char* p, const char* i) {
    inst.AddTuple(
        {Value(g), Value(s), Value(b), Value(ge), Value(p), Value(i)});
  };
  add("Jack", "White", "d1", "M", "p1", "60k");
  add("Danielle", "Blake", "d2", "F", "p2", "120k");
  add("Danielle", "Blake", "d2", "F", "p3", "100k");
  add("Hong", "Li", "d3", "F", "p4", "90k");
  add("Hong", "Li", "d4", "F", "p5", "84k");
  EncodedInstance enc(inst);
  FDSet sigma = FDSet::Parse({"Surname,GivenName->Income"}, inst.schema());
  CardinalityWeight w;
  ModifyFdsResult r = ModifyFds(sigma, enc, /*tau=*/2, w);
  ASSERT_TRUE(r.repair.has_value());
  EXPECT_EQ(r.repair->distc, 1.0);
  // Phone resolves everything: δP must be 0.
  EXPECT_EQ(r.repair->delta_p, 0);
  EXPECT_TRUE(
      r.repair->sigma_prime.fd(0).lhs.Contains(inst.schema().Find("Phone")));
}

TEST(ModifyFds, MaxVisitedCapStopsSearch) {
  EncodedInstance enc(Fig2());
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, Fig2().schema());
  CardinalityWeight w;
  ModifyFdsOptions opts;
  opts.mode = SearchMode::kBestFirst;
  opts.max_visited = 1;
  ModifyFdsResult r = ModifyFds(sigma, enc, 0, w, opts);
  EXPECT_LE(r.stats.states_visited, 2);
}

TEST(ModifyFds, EmptySigmaTriviallyRepaired) {
  EncodedInstance enc(Fig2());
  CardinalityWeight w;
  ModifyFdsResult r = ModifyFds(FDSet(), enc, 0, w);
  ASSERT_TRUE(r.repair.has_value());
  EXPECT_EQ(r.repair->distc, 0.0);
  EXPECT_EQ(r.repair->delta_p, 0);
}

TEST(ModifyFds, StatsArePopulated) {
  EncodedInstance enc(Fig2());
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, Fig2().schema());
  CardinalityWeight w;
  ModifyFdsResult r = ModifyFds(sigma, enc, 2, w);
  EXPECT_GT(r.stats.states_visited, 0);
  EXPECT_GT(r.stats.states_generated, 0);
  EXPECT_GE(r.stats.seconds, 0.0);
}

}  // namespace
}  // namespace retrust
