#include "src/repair/cell_sampler.h"

#include <gtest/gtest.h>

#include "src/eval/generator.h"
#include "src/eval/perturb.h"
#include "src/fd/violation.h"

namespace retrust {
namespace {

Instance Fig2() {
  Instance inst(Schema::FromNames({"A", "B", "C", "D"}));
  auto add = [&](const char* a, const char* b, const char* c,
                 const char* d) {
    inst.AddTuple({Value(a), Value(b), Value(c), Value(d)});
  };
  add("1", "1", "1", "1");
  add("1", "2", "1", "3");
  add("2", "2", "1", "1");
  add("2", "3", "4", "3");
  return inst;
}

TEST(CellSampler, RepairsToConsistency) {
  EncodedInstance enc(Fig2());
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, Fig2().schema());
  for (uint64_t seed = 0; seed < 15; ++seed) {
    Rng rng(seed);
    DataRepairResult r = CellSamplerRepair(enc, sigma, &rng);
    EXPECT_TRUE(Satisfies(r.repaired, sigma)) << "seed " << seed;
    EXPECT_GT(r.changed_cells.size(), 0u);
  }
}

TEST(CellSampler, NoChangesWhenConsistent) {
  EncodedInstance enc(Fig2());
  FDSet sigma = FDSet::Parse({"A,B->C"}, Fig2().schema());
  Rng rng(1);
  DataRepairResult r = CellSamplerRepair(enc, sigma, &rng);
  EXPECT_TRUE(r.changed_cells.empty());
  EXPECT_EQ(enc.DistdTo(r.repaired), 0);
}

TEST(CellSampler, RhsOnlyFixesKeepConstants) {
  EncodedInstance enc(Fig2());
  FDSet sigma = FDSet::Parse({"A->B"}, Fig2().schema());
  CellSamplerOptions opts;
  opts.rhs_fix_share = 1.0;
  Rng rng(2);
  DataRepairResult r = CellSamplerRepair(enc, sigma, &rng, opts);
  EXPECT_TRUE(Satisfies(r.repaired, sigma));
  // With a pure-RHS policy (and an ample budget) every change lands on B.
  for (const CellRef& c : r.changed_cells) {
    EXPECT_EQ(c.attr, 1);
  }
}

TEST(CellSampler, VariableFixesBreakLhsMatches) {
  EncodedInstance enc(Fig2());
  FDSet sigma = FDSet::Parse({"A->B"}, Fig2().schema());
  CellSamplerOptions opts;
  opts.rhs_fix_share = 0.0;
  Rng rng(3);
  DataRepairResult r = CellSamplerRepair(enc, sigma, &rng, opts);
  EXPECT_TRUE(Satisfies(r.repaired, sigma));
  // All changes are fresh variables on the LHS attribute A.
  for (const CellRef& c : r.changed_cells) {
    EXPECT_EQ(c.attr, 0);
    EXPECT_TRUE(IsVariableCode(r.repaired.At(c.tuple, c.attr)));
  }
}

TEST(CellSampler, GroundedResultSatisfies) {
  EncodedInstance enc(Fig2());
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, Fig2().schema());
  Rng rng(4);
  DataRepairResult r = CellSamplerRepair(enc, sigma, &rng);
  EncodedInstance grounded(r.repaired.Decode().Ground());
  EXPECT_TRUE(Satisfies(grounded, sigma));
}

// Sweep: consistency on perturbed census workloads; compare change volume
// against Algorithm 4 (the sampler has no bound — usually it changes more).
class CellSamplerSweep : public ::testing::TestWithParam<int> {};

TEST_P(CellSamplerSweep, ConsistentOnPerturbedWorkloads) {
  CensusConfig cfg;
  cfg.num_tuples = 250;
  cfg.num_attrs = 8;
  cfg.planted_lhs_sizes = {3};
  cfg.seed = static_cast<uint64_t>(GetParam()) + 500;
  GeneratedData data = GenerateCensusLike(cfg);
  PerturbOptions popts;
  popts.fd_error_rate = 0.34;
  popts.data_error_rate = 0.03;
  popts.seed = static_cast<uint64_t>(GetParam()) + 600;
  PerturbedData dirty = Perturb(data.instance, data.planted_fds, popts);
  EncodedInstance enc(dirty.data);
  Rng rng(static_cast<uint64_t>(GetParam()));
  DataRepairResult sampler = CellSamplerRepair(enc, dirty.fds, &rng);
  EXPECT_TRUE(Satisfies(sampler.repaired, dirty.fds));

  Rng rng2(static_cast<uint64_t>(GetParam()));
  DataRepairResult tuplewise = RepairData(enc, dirty.fds, &rng2);
  // Algorithm 4 respects its Theorem-3 bound; the sampler need not.
  EXPECT_LE(static_cast<int64_t>(tuplewise.changed_cells.size()),
            tuplewise.change_bound);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CellSamplerSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace retrust
