#include "src/relational/attrset.h"

#include <gtest/gtest.h>

#include <set>

namespace retrust {
namespace {

TEST(AttrSet, EmptyByDefault) {
  AttrSet s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0);
  EXPECT_EQ(s.Min(), -1);
  EXPECT_EQ(s.Max(), -1);
}

TEST(AttrSet, AddRemoveContains) {
  AttrSet s;
  s.Add(3);
  s.Add(7);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(7));
  EXPECT_FALSE(s.Contains(5));
  EXPECT_EQ(s.Count(), 2);
  s.Remove(3);
  EXPECT_FALSE(s.Contains(3));
  EXPECT_EQ(s.Count(), 1);
  s.Remove(3);  // idempotent
  EXPECT_EQ(s.Count(), 1);
}

TEST(AttrSet, InitializerList) {
  AttrSet s{1, 4, 63};
  EXPECT_EQ(s.Count(), 3);
  EXPECT_TRUE(s.Contains(63));
  EXPECT_EQ(s.Min(), 1);
  EXPECT_EQ(s.Max(), 63);
}

TEST(AttrSet, Single) {
  AttrSet s = AttrSet::Single(9);
  EXPECT_EQ(s.Count(), 1);
  EXPECT_TRUE(s.Contains(9));
}

TEST(AttrSet, Universe) {
  EXPECT_EQ(AttrSet::Universe(0).Count(), 0);
  EXPECT_EQ(AttrSet::Universe(5).Count(), 5);
  EXPECT_EQ(AttrSet::Universe(64).Count(), 64);
  EXPECT_TRUE(AttrSet::Universe(5).Contains(4));
  EXPECT_FALSE(AttrSet::Universe(5).Contains(5));
}

TEST(AttrSet, SetAlgebra) {
  AttrSet a{1, 2, 3};
  AttrSet b{3, 4};
  EXPECT_EQ(a.Union(b), (AttrSet{1, 2, 3, 4}));
  EXPECT_EQ(a.Intersect(b), AttrSet{3});
  EXPECT_EQ(a.Minus(b), (AttrSet{1, 2}));
  EXPECT_EQ(b.Minus(a), AttrSet{4});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(AttrSet{5}));
}

TEST(AttrSet, SubsetRelations) {
  AttrSet a{1, 2};
  AttrSet b{1, 2, 3};
  EXPECT_TRUE(a.SubsetOf(b));
  EXPECT_TRUE(a.SubsetOf(a));
  EXPECT_TRUE(a.ProperSubsetOf(b));
  EXPECT_FALSE(a.ProperSubsetOf(a));
  EXPECT_FALSE(b.SubsetOf(a));
  EXPECT_TRUE(AttrSet().SubsetOf(a));
}

TEST(AttrSet, IterationInIncreasingOrder) {
  AttrSet s{9, 0, 44, 17};
  std::vector<AttrId> got;
  for (AttrId a : s) got.push_back(a);
  EXPECT_EQ(got, (std::vector<AttrId>{0, 9, 17, 44}));
  EXPECT_EQ(s.ToVector(), got);
}

TEST(AttrSet, MinMax) {
  AttrSet s{5, 12, 33};
  EXPECT_EQ(s.Min(), 5);
  EXPECT_EQ(s.Max(), 33);
}

TEST(AttrSet, ToStringWithAndWithoutNames) {
  AttrSet s{0, 2};
  EXPECT_EQ(s.ToString(), "{0,2}");
  EXPECT_EQ(s.ToString({"A", "B", "C"}), "{A,C}");
  EXPECT_EQ(AttrSet().ToString(), "{}");
}

TEST(AttrSet, HashDistinguishesSets) {
  AttrSetHash h;
  std::set<size_t> hashes;
  for (int i = 0; i < 64; ++i) hashes.insert(h(AttrSet::Single(i)));
  EXPECT_EQ(hashes.size(), 64u);
}

TEST(AttrSet, OrderingIsTotal) {
  AttrSet a{1};
  AttrSet b{2};
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
}

}  // namespace
}  // namespace retrust
