#include "src/repair/unified_cost.h"

#include <gtest/gtest.h>

#include "src/eval/generator.h"
#include "src/eval/perturb.h"
#include "src/fd/violation.h"

namespace retrust {
namespace {

TEST(UnifiedCost, AlwaysReturnsConsistentRepair) {
  CensusConfig cfg;
  cfg.num_tuples = 300;
  cfg.num_attrs = 9;
  cfg.planted_lhs_sizes = {4};
  cfg.seed = 61;
  GeneratedData data = GenerateCensusLike(cfg);
  PerturbOptions popts;
  popts.fd_error_rate = 0.5;
  popts.data_error_rate = 0.02;
  popts.seed = 8;
  PerturbedData dirty = Perturb(data.instance, data.planted_fds, popts);
  EncodedInstance enc(dirty.data);
  DistinctCountWeight w(enc);
  Repair repair = UnifiedCostRepair(dirty.fds, enc, w);
  EXPECT_TRUE(Satisfies(repair.data, repair.sigma_prime));
  // Σ' is a positional relaxation of Σd.
  EXPECT_NO_THROW(dirty.fds.ExtensionsTo(repair.sigma_prime));
}

TEST(UnifiedCost, HighLambdaForbidsFdChanges) {
  CensusConfig cfg;
  cfg.num_tuples = 300;
  cfg.num_attrs = 9;
  cfg.planted_lhs_sizes = {4};
  cfg.seed = 62;
  GeneratedData data = GenerateCensusLike(cfg);
  PerturbOptions popts;
  popts.fd_error_rate = 0.5;
  popts.data_error_rate = 0.0;
  popts.seed = 9;
  PerturbedData dirty = Perturb(data.instance, data.planted_fds, popts);
  EncodedInstance enc(dirty.data);
  DistinctCountWeight w(enc);
  UnifiedCostOptions opts;
  opts.lambda = 1e9;  // FD changes prohibitively expensive
  Repair repair = UnifiedCostRepair(dirty.fds, enc, w, opts);
  for (AttrSet y : repair.extensions) EXPECT_TRUE(y.Empty());
  EXPECT_EQ(repair.distc, 0.0);
  EXPECT_TRUE(Satisfies(repair.data, repair.sigma_prime));
}

TEST(UnifiedCost, TinyLambdaPrefersFdChanges) {
  // With near-free FD changes and violations that extensions CAN resolve,
  // the climber should relax rather than edit data.
  Instance inst(Schema::FromNames({"A", "B", "C"}));
  inst.AddTuple({Value("1"), Value("1"), Value("x")});
  inst.AddTuple({Value("1"), Value("2"), Value("y")});
  inst.AddTuple({Value("1"), Value("2"), Value("z")});
  EncodedInstance enc(inst);
  FDSet sigma = FDSet::Parse({"A->B"}, inst.schema());
  CardinalityWeight w;
  UnifiedCostOptions opts;
  opts.lambda = 1e-6;
  Repair repair = UnifiedCostRepair(sigma, enc, w, opts);
  EXPECT_FALSE(repair.extensions[0].Empty());
  EXPECT_TRUE(repair.changed_cells.empty());
}

TEST(UnifiedCost, SingleAttrRestrictionRespected) {
  CensusConfig cfg;
  cfg.num_tuples = 300;
  cfg.num_attrs = 9;
  cfg.planted_lhs_sizes = {4};
  cfg.seed = 63;
  GeneratedData data = GenerateCensusLike(cfg);
  PerturbOptions popts;
  popts.fd_error_rate = 0.5;
  popts.data_error_rate = 0.0;
  popts.seed = 10;
  PerturbedData dirty = Perturb(data.instance, data.planted_fds, popts);
  EncodedInstance enc(dirty.data);
  DistinctCountWeight w(enc);
  UnifiedCostOptions opts;
  opts.lambda = 0.01;
  opts.single_attr_per_fd = true;
  Repair repair = UnifiedCostRepair(dirty.fds, enc, w, opts);
  for (AttrSet y : repair.extensions) EXPECT_LE(y.Count(), 1);

  opts.single_attr_per_fd = false;
  Repair multi = UnifiedCostRepair(dirty.fds, enc, w, opts);
  // The unconstrained space can only do at least as well on the score.
  EXPECT_LE(multi.delta_p + opts.lambda * multi.distc,
            repair.delta_p + opts.lambda * repair.distc + 1e-9);
}

TEST(UnifiedCost, CleanInputUntouched) {
  Instance inst(Schema::FromNames({"A", "B"}));
  inst.AddTuple({Value("1"), Value("x")});
  inst.AddTuple({Value("2"), Value("y")});
  EncodedInstance enc(inst);
  FDSet sigma = FDSet::Parse({"A->B"}, inst.schema());
  CardinalityWeight w;
  Repair repair = UnifiedCostRepair(sigma, enc, w);
  EXPECT_TRUE(repair.changed_cells.empty());
  EXPECT_EQ(repair.distc, 0.0);
}

}  // namespace
}  // namespace retrust
