#include "src/repair/state.h"

#include <gtest/gtest.h>

namespace retrust {
namespace {

Schema Abcde() { return Schema::FromNames({"A", "B", "C", "D", "E"}); }

TEST(SearchState, RootIsEmpty) {
  SearchState root = SearchState::Root(3);
  EXPECT_TRUE(root.IsRoot());
  EXPECT_EQ(root.ext.size(), 3u);
  EXPECT_TRUE(root.UnionExt().Empty());
  EXPECT_EQ(root.TotalAppended(), 0);
}

TEST(SearchState, UnionAndCount) {
  SearchState s({AttrSet{1, 2}, AttrSet{2, 4}});
  EXPECT_FALSE(s.IsRoot());
  EXPECT_EQ(s.UnionExt(), (AttrSet{1, 2, 4}));
  EXPECT_EQ(s.TotalAppended(), 4);
}

TEST(SearchState, ExtendsPartialOrder) {
  SearchState a({AttrSet{1}, AttrSet()});
  SearchState b({AttrSet{1, 2}, AttrSet()});
  SearchState c({AttrSet{1}, AttrSet{3}});
  EXPECT_TRUE(b.Extends(a));
  EXPECT_TRUE(c.Extends(a));
  EXPECT_FALSE(a.Extends(b));
  EXPECT_FALSE(b.Extends(c));
  EXPECT_TRUE(a.Extends(a));
  EXPECT_TRUE(a.Extends(SearchState::Root(2)));
}

TEST(SearchState, CostViaWeights) {
  CardinalityWeight w;
  SearchState s({AttrSet{1, 2}, AttrSet{4}});
  EXPECT_EQ(s.Cost(w), 3.0);
  EXPECT_EQ(SearchState::Root(2).Cost(w), 0.0);
}

TEST(SearchState, ApplyExtendsSigma) {
  FDSet sigma = FDSet::Parse({"A->B", "C->D"}, Abcde());
  SearchState s({AttrSet{2}, AttrSet{0}});
  FDSet ext = s.Apply(sigma);
  EXPECT_EQ(ext.fd(0).lhs, (AttrSet{0, 2}));
  EXPECT_EQ(ext.fd(1).lhs, (AttrSet{0, 2}));
}

TEST(SearchState, EqualityAndHash) {
  SearchState a({AttrSet{1}, AttrSet{2}});
  SearchState b({AttrSet{1}, AttrSet{2}});
  SearchState c({AttrSet{2}, AttrSet{1}});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  SearchStateHash h;
  EXPECT_EQ(h(a), h(b));
  EXPECT_NE(h(a), h(c));  // overwhelmingly likely
}

TEST(SearchState, ToString) {
  SearchState s({AttrSet{0}, AttrSet()});
  EXPECT_EQ(s.ToString(), "({0}, φ)");
  EXPECT_EQ(s.ToString(Abcde()), "({A}, φ)");
}

TEST(SearchStats, Accumulate) {
  SearchStats a, b;
  a.states_visited = 3;
  a.seconds = 1.5;
  b.states_visited = 4;
  b.heuristic_calls = 7;
  b.seconds = 0.5;
  a.Accumulate(b);
  EXPECT_EQ(a.states_visited, 7);
  EXPECT_EQ(a.heuristic_calls, 7);
  EXPECT_DOUBLE_EQ(a.seconds, 2.0);
}

}  // namespace
}  // namespace retrust
