// Cross-checks FDSet::Closure/Implies against instance-level semantics via
// Armstrong witness instances: for any attribute set X, the two-tuple
// instance agreeing EXACTLY on closure(X) satisfies Σ, and it violates
// Y -> A precisely when Y ⊆ closure(X) and A ∉ closure(X) — so logical
// implication and Satisfies() must agree everywhere.

#include <gtest/gtest.h>

#include "src/fd/violation.h"
#include "src/util/rng.h"

namespace retrust {
namespace {

Instance WitnessInstance(const Schema& schema, AttrSet agree) {
  Instance inst(schema);
  Tuple t1(schema.NumAttrs()), t2(schema.NumAttrs());
  for (AttrId a = 0; a < schema.NumAttrs(); ++a) {
    t1[a] = Value(int64_t{0});
    t2[a] = agree.Contains(a) ? Value(int64_t{0}) : Value(int64_t{1});
  }
  inst.AddTuple(std::move(t1));
  inst.AddTuple(std::move(t2));
  return inst;
}

FDSet RandomSigma(Rng* rng, int m, int count) {
  std::vector<FD> fds;
  for (int i = 0; i < count; ++i) {
    AttrSet lhs;
    int width = 1 + static_cast<int>(rng->NextUint(3));
    for (int k = 0; k < width; ++k) {
      lhs.Add(static_cast<AttrId>(rng->NextUint(m)));
    }
    AttrId rhs = static_cast<AttrId>(rng->NextUint(m));
    if (lhs.Contains(rhs)) continue;  // skip trivial
    fds.emplace_back(lhs, rhs);
  }
  return FDSet(fds);
}

class ImplicationSweep : public ::testing::TestWithParam<int> {};

TEST_P(ImplicationSweep, ClosureMatchesArmstrongWitness) {
  Rng rng(GetParam() * 977 + 13);
  const int m = 6;
  Schema schema = Schema::FromNames({"A", "B", "C", "D", "E", "F"});
  FDSet sigma = RandomSigma(&rng, m, 4);

  for (uint64_t bits = 0; bits < (1u << m); ++bits) {
    AttrSet x(bits);
    AttrSet closure = sigma.Closure(x);
    EXPECT_TRUE(x.SubsetOf(closure));

    // The witness agreeing exactly on closure(X) must satisfy Σ: if some
    // FD Y -> A had Y ⊆ closure and A ∉ closure, closure wouldn't be a
    // fixpoint.
    EncodedInstance witness{EncodedInstance(WitnessInstance(schema, closure))};
    EXPECT_TRUE(Satisfies(witness, sigma))
        << "closure not closed for X=" << x.ToString();

    // Implication agrees with the witness semantics for every single FD.
    for (AttrId a = 0; a < m; ++a) {
      FD probe(x, a);
      if (x.Contains(a)) continue;
      bool implied = sigma.Implies(probe);
      bool witness_satisfies = Satisfies(witness, probe);
      // witness agrees on closure ⊇ X; it satisfies X->A iff A ∈ closure.
      EXPECT_EQ(implied, closure.Contains(a));
      EXPECT_EQ(witness_satisfies, closure.Contains(a));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImplicationSweep, ::testing::Range(0, 10));

TEST(Implication, MinimizePreservesSemantics) {
  Rng rng(4242);
  Schema schema = Schema::FromNames({"A", "B", "C", "D", "E", "F"});
  for (int round = 0; round < 20; ++round) {
    FDSet sigma = RandomSigma(&rng, 6, 5);
    FDSet minimized = sigma.Minimize();
    EXPECT_TRUE(minimized.IsMinimal());
    for (uint64_t bits = 0; bits < (1u << 6); ++bits) {
      AttrSet x(bits);
      EXPECT_EQ(sigma.Closure(x), minimized.Closure(x))
          << "round " << round << " X=" << x.ToString();
    }
  }
}

}  // namespace
}  // namespace retrust
