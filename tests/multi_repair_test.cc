#include "src/repair/multi_repair.h"

#include <gtest/gtest.h>

#include "src/eval/generator.h"
#include "src/eval/perturb.h"
#include "src/repair/repair_driver.h"

namespace retrust {
namespace {

struct Workload {
  Instance instance;
  FDSet sigma;
  EncodedInstance encoded;
};

Workload MakeWorkload(uint64_t seed) {
  CensusConfig cfg;
  cfg.num_tuples = 400;
  cfg.num_attrs = 10;
  cfg.planted_lhs_sizes = {4};
  cfg.seed = seed;
  GeneratedData data = GenerateCensusLike(cfg);
  PerturbOptions popts;
  popts.fd_error_rate = 0.5;
  popts.data_error_rate = 0.02;
  popts.seed = seed + 1;
  PerturbedData dirty = Perturb(data.instance, data.planted_fds, popts);
  Workload w;
  w.instance = dirty.data;
  w.sigma = dirty.fds;
  w.encoded = EncodedInstance(w.instance);
  return w;
}

TEST(MultiRepair, RangeRepairCoversWholeRange) {
  Workload wl = MakeWorkload(51);
  DistinctCountWeight w(wl.encoded);
  FdSearchContext ctx(wl.sigma, wl.encoded, w);
  int64_t root = ctx.RootDeltaP();
  MultiRepairResult multi = FindRepairsFds(ctx, 0, root);
  ASSERT_FALSE(multi.repairs.empty());
  // First repair covers tau_hi = root; ranges descend and abut:
  // next.tau_hi == current.tau_lo - 1.
  EXPECT_EQ(multi.repairs.front().tau_hi, root);
  for (size_t i = 0; i < multi.repairs.size(); ++i) {
    const RangedFdRepair& r = multi.repairs[i];
    EXPECT_LE(r.tau_lo, r.tau_hi);
    EXPECT_EQ(r.tau_lo, r.repair.delta_p);
    if (i + 1 < multi.repairs.size()) {
      EXPECT_EQ(multi.repairs[i + 1].tau_hi, r.tau_lo - 1);
    }
  }
}

TEST(MultiRepair, RangeMatchesIndependentSearches) {
  // Every tau in the range must get the same optimal distc from Algorithm 6
  // as from an independent Algorithm 2 run.
  Workload wl = MakeWorkload(52);
  DistinctCountWeight w(wl.encoded);
  FdSearchContext ctx(wl.sigma, wl.encoded, w);
  int64_t root = ctx.RootDeltaP();
  MultiRepairResult multi = FindRepairsFds(ctx, 0, root);
  for (const RangedFdRepair& r : multi.repairs) {
    for (int64_t tau : {r.tau_lo, r.tau_hi}) {
      ModifyFdsOptions opts;
      opts.tie_break_delta = false;  // compare plain optima
      ModifyFdsResult single = ModifyFds(ctx, tau, opts);
      ASSERT_TRUE(single.repair.has_value()) << "tau=" << tau;
      EXPECT_NEAR(single.repair->distc, r.repair.distc, 1e-6)
          << "tau=" << tau;
    }
  }
}

TEST(MultiRepair, CostsDecreaseWithLargerTau) {
  // Along the frontier: larger tau (more data trust) => cheaper FD repair.
  Workload wl = MakeWorkload(53);
  DistinctCountWeight w(wl.encoded);
  FdSearchContext ctx(wl.sigma, wl.encoded, w);
  MultiRepairResult multi = FindRepairsFds(ctx, 0, ctx.RootDeltaP());
  for (size_t i = 0; i + 1 < multi.repairs.size(); ++i) {
    // repairs are ordered by descending tau_hi.
    EXPECT_LE(multi.repairs[i].repair.distc,
              multi.repairs[i + 1].repair.distc + 1e-9);
    EXPECT_GT(multi.repairs[i].repair.delta_p,
              multi.repairs[i + 1].repair.delta_p);
  }
}

TEST(MultiRepair, SamplingFindsSubsetOfRangeRepairs) {
  Workload wl = MakeWorkload(54);
  DistinctCountWeight w(wl.encoded);
  FdSearchContext ctx(wl.sigma, wl.encoded, w);
  int64_t root = ctx.RootDeltaP();
  MultiRepairResult range = FindRepairsFds(ctx, 0, root);
  MultiRepairResult sample = SamplingRepairs(ctx, 0, root, root / 7 + 1);
  EXPECT_LE(sample.repairs.size(), range.repairs.size());
  // Every sampled repair cost appears on the range frontier.
  for (const RangedFdRepair& s : sample.repairs) {
    bool found = false;
    for (const RangedFdRepair& r : range.repairs) {
      if (std::abs(r.repair.distc - s.repair.distc) < 1e-9) found = true;
    }
    EXPECT_TRUE(found) << "sampled repair missing from range frontier";
  }
}

TEST(MultiRepair, SamplingWithStepOneFindsEverything) {
  Workload wl = MakeWorkload(55);
  DistinctCountWeight w(wl.encoded);
  FdSearchContext ctx(wl.sigma, wl.encoded, w);
  int64_t root = std::min<int64_t>(ctx.RootDeltaP(), 60);
  MultiRepairResult range = FindRepairsFds(ctx, 0, root);
  MultiRepairResult sample = SamplingRepairs(ctx, 0, root, 1);
  // Same frontier (deduplicated), up to tie-breaking among equal-cost
  // states: compare the multisets of distc values.
  std::vector<double> a, b;
  for (const auto& r : range.repairs) a.push_back(r.repair.distc);
  for (const auto& r : sample.repairs) b.push_back(r.repair.distc);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a.size(), b.size());
  for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-9);
  }
}

TEST(MultiRepair, EmptyRangeWhenTauLoExceedsTauHi) {
  Workload wl = MakeWorkload(56);
  DistinctCountWeight w(wl.encoded);
  FdSearchContext ctx(wl.sigma, wl.encoded, w);
  MultiRepairResult multi = FindRepairsFds(ctx, 100, 50);
  EXPECT_TRUE(multi.repairs.empty());
}

}  // namespace
}  // namespace retrust
