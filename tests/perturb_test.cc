#include "src/eval/perturb.h"

#include <gtest/gtest.h>

#include "src/eval/generator.h"
#include "src/fd/violation.h"

namespace retrust {
namespace {

GeneratedData Clean(uint64_t seed) {
  CensusConfig cfg;
  cfg.num_tuples = 400;
  cfg.num_attrs = 10;
  cfg.planted_lhs_sizes = {4};
  cfg.seed = seed;
  return GenerateCensusLike(cfg);
}

TEST(Perturb, FdErrorRemovesLhsAttributes) {
  GeneratedData data = Clean(1);
  PerturbOptions opts;
  opts.fd_error_rate = 0.5;
  opts.data_error_rate = 0.0;
  opts.seed = 2;
  PerturbedData dirty = Perturb(data.instance, data.planted_fds, opts);
  // 50% of 4 LHS slots = 2 removed.
  EXPECT_EQ(dirty.removed_lhs[0].Count(), 2);
  EXPECT_EQ(dirty.fds.fd(0).lhs.Count(), 2);
  // Removed ∪ remaining = original LHS.
  EXPECT_EQ(dirty.fds.fd(0).lhs.Union(dirty.removed_lhs[0]),
            data.planted_fds.fd(0).lhs);
  // Data untouched.
  EXPECT_EQ(data.instance.DistdTo(dirty.data), 0);
  EXPECT_TRUE(dirty.perturbed_cells.empty());
}

TEST(Perturb, NeverEmptiesLhs) {
  GeneratedData data = Clean(2);
  PerturbOptions opts;
  opts.fd_error_rate = 1.0;
  opts.data_error_rate = 0.0;
  opts.seed = 3;
  PerturbedData dirty = Perturb(data.instance, data.planted_fds, opts);
  EXPECT_GE(dirty.fds.fd(0).lhs.Count(), 1);
}

TEST(Perturb, DataErrorsCreateViolations) {
  GeneratedData data = Clean(3);
  PerturbOptions opts;
  opts.fd_error_rate = 0.0;
  opts.data_error_rate = 0.05;
  opts.seed = 4;
  PerturbedData dirty = Perturb(data.instance, data.planted_fds, opts);
  EXPECT_FALSE(dirty.perturbed_cells.empty());
  EncodedInstance enc(dirty.data);
  // The clean FDs are now violated (every injected error violates one).
  EXPECT_FALSE(Satisfies(enc, data.planted_fds));
  // Reported cells are exactly the changed cells.
  auto diff = data.instance.DiffCells(dirty.data);
  EXPECT_EQ(diff.size(), dirty.perturbed_cells.size());
}

TEST(Perturb, ErrorCountTracksRate) {
  GeneratedData data = Clean(4);
  PerturbOptions opts;
  opts.fd_error_rate = 0.0;
  opts.data_error_rate = 0.04;
  opts.seed = 5;
  PerturbedData dirty = Perturb(data.instance, data.planted_fds, opts);
  // 4% of 400 tuples = 16 errors (the generator may fall short only when
  // it runs out of injectable pairs).
  EXPECT_LE(dirty.perturbed_cells.size(), 16u);
  EXPECT_GE(dirty.perturbed_cells.size(), 12u);
}

TEST(Perturb, EachTupleTouchedAtMostOnce) {
  GeneratedData data = Clean(5);
  PerturbOptions opts;
  opts.fd_error_rate = 0.0;
  opts.data_error_rate = 0.08;
  opts.seed = 6;
  PerturbedData dirty = Perturb(data.instance, data.planted_fds, opts);
  std::set<TupleId> tuples;
  for (const CellRef& c : dirty.perturbed_cells) {
    EXPECT_TRUE(tuples.insert(c.tuple).second)
        << "tuple perturbed twice: t" << c.tuple;
  }
}

TEST(Perturb, RhsOnlyInjection) {
  GeneratedData data = Clean(6);
  PerturbOptions opts;
  opts.fd_error_rate = 0.0;
  opts.data_error_rate = 0.03;
  opts.rhs_violation_share = 1.0;
  opts.seed = 7;
  PerturbedData dirty = Perturb(data.instance, data.planted_fds, opts);
  // All perturbed cells are on the FD's RHS attribute.
  for (const CellRef& c : dirty.perturbed_cells) {
    EXPECT_EQ(c.attr, data.planted_fds.fd(0).rhs);
  }
}

TEST(Perturb, LhsOnlyInjection) {
  GeneratedData data = Clean(7);
  PerturbOptions opts;
  opts.fd_error_rate = 0.0;
  opts.data_error_rate = 0.03;
  opts.rhs_violation_share = 0.0;
  opts.seed = 8;
  PerturbedData dirty = Perturb(data.instance, data.planted_fds, opts);
  for (const CellRef& c : dirty.perturbed_cells) {
    if (data.planted_fds.fd(0).lhs.Contains(c.attr)) continue;
    // Fallback to RHS injection is allowed when LHS pairs run dry; at this
    // small rate we expect LHS cells predominantly.
  }
  // At least one LHS-attribute perturbation occurred.
  bool any_lhs = false;
  for (const CellRef& c : dirty.perturbed_cells) {
    any_lhs |= data.planted_fds.fd(0).lhs.Contains(c.attr);
  }
  EXPECT_TRUE(any_lhs);
}

TEST(Perturb, DeterministicGivenSeed) {
  GeneratedData data = Clean(8);
  PerturbOptions opts;
  opts.fd_error_rate = 0.4;
  opts.data_error_rate = 0.03;
  opts.seed = 11;
  PerturbedData a = Perturb(data.instance, data.planted_fds, opts);
  PerturbedData b = Perturb(data.instance, data.planted_fds, opts);
  EXPECT_EQ(a.data.DistdTo(b.data), 0);
  EXPECT_TRUE(a.fds == b.fds);
  EXPECT_EQ(a.perturbed_cells.size(), b.perturbed_cells.size());
}

TEST(Perturb, NoFdsMeansNoDataErrors) {
  GeneratedData data = Clean(9);
  PerturbOptions opts;
  opts.data_error_rate = 0.1;
  opts.seed = 12;
  PerturbedData dirty = Perturb(data.instance, FDSet(), opts);
  EXPECT_TRUE(dirty.perturbed_cells.empty());
  EXPECT_EQ(data.instance.DistdTo(dirty.data), 0);
}

}  // namespace
}  // namespace retrust
