#include "src/relational/instance.h"

#include <gtest/gtest.h>

namespace retrust {
namespace {

Instance Small() {
  Instance inst(Schema({{"A", AttrType::kInt}, {"B", AttrType::kString}}));
  inst.AddTuple({Value(int64_t{1}), Value("x")});
  inst.AddTuple({Value(int64_t{2}), Value("y")});
  return inst;
}

TEST(Instance, AddAndAccess) {
  Instance inst = Small();
  EXPECT_EQ(inst.NumTuples(), 2);
  EXPECT_EQ(inst.NumAttrs(), 2);
  EXPECT_EQ(inst.At(0, 0), Value(int64_t{1}));
  EXPECT_EQ(inst.At(1, 1), Value("y"));
}

TEST(Instance, RejectsWrongArity) {
  Instance inst = Small();
  EXPECT_THROW(inst.AddTuple({Value(int64_t{3})}), std::invalid_argument);
}

TEST(Instance, SetCell) {
  Instance inst = Small();
  inst.Set(0, 1, Value("z"));
  EXPECT_EQ(inst.At(0, 1), Value("z"));
}

TEST(Instance, NewVariableIncrementsPerAttribute) {
  Instance inst = Small();
  Value v0 = inst.NewVariable(0);
  Value v1 = inst.NewVariable(0);
  Value w0 = inst.NewVariable(1);
  EXPECT_NE(v0, v1);
  EXPECT_EQ(v0.AsVariable().index, 0);
  EXPECT_EQ(v1.AsVariable().index, 1);
  EXPECT_EQ(w0.AsVariable().index, 0);
  EXPECT_EQ(w0.AsVariable().attr, 1);
}

TEST(Instance, VariableCountersRespectInsertedTuples) {
  Instance inst(Schema({{"A", AttrType::kInt}}));
  inst.AddTuple({Value::Variable(0, 5)});
  EXPECT_EQ(inst.NewVariable(0).AsVariable().index, 6);
}

TEST(Instance, DiffCellsAndDistd) {
  Instance a = Small();
  Instance b = Small();
  EXPECT_TRUE(a.DiffCells(b).empty());
  b.Set(1, 0, Value(int64_t{9}));
  auto diff = a.DiffCells(b);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0].tuple, 1);
  EXPECT_EQ(diff[0].attr, 0);
  EXPECT_EQ(a.DistdTo(b), 1);
}

TEST(Instance, DiffCellsRequiresSameShape) {
  Instance a = Small();
  Instance b(a.schema());
  EXPECT_THROW(a.DiffCells(b), std::invalid_argument);
}

TEST(Instance, VariableVsConstantIsADiff) {
  Instance a = Small();
  Instance b = Small();
  b.Set(0, 0, Value::Variable(0, 0));
  EXPECT_EQ(a.DistdTo(b), 1);
}

TEST(Instance, IsGround) {
  Instance a = Small();
  EXPECT_TRUE(a.IsGround());
  a.Set(0, 0, a.NewVariable(0));
  EXPECT_FALSE(a.IsGround());
}

TEST(Instance, GroundInstantiatesVariablesDistinctAndFresh) {
  Instance inst(Schema({{"A", AttrType::kInt}, {"B", AttrType::kString}}));
  inst.AddTuple({Value(int64_t{10}), Value("u")});
  inst.AddTuple({inst.NewVariable(0), inst.NewVariable(1)});
  inst.AddTuple({inst.NewVariable(0), Value("v")});
  Instance g = inst.Ground();
  EXPECT_TRUE(g.IsGround());
  // Fresh: not colliding with the active domain.
  EXPECT_NE(g.At(1, 0), Value(int64_t{10}));
  EXPECT_NE(g.At(1, 1), Value("u"));
  EXPECT_NE(g.At(1, 1), Value("v"));
  // Distinct variables -> distinct constants.
  EXPECT_NE(g.At(1, 0), g.At(2, 0));
  // Unchanged cells stay put.
  EXPECT_EQ(g.At(0, 0), Value(int64_t{10}));
  EXPECT_EQ(g.At(2, 1), Value("v"));
}

TEST(Instance, ToTableContainsHeaderAndValues) {
  std::string table = Small().ToTable();
  EXPECT_NE(table.find("A"), std::string::npos);
  EXPECT_NE(table.find("y"), std::string::npos);
}

}  // namespace
}  // namespace retrust
