#include "src/fd/discovery.h"

#include <gtest/gtest.h>

#include "src/eval/generator.h"
#include "src/fd/violation.h"
#include "src/util/rng.h"

namespace retrust {
namespace {

TEST(Discovery, FindsPlantedFd) {
  Instance inst(Schema::FromNames({"A", "B", "C"}));
  // C = f(A): plant A -> C; B random-ish.
  auto add = [&](const char* a, const char* b, const char* c) {
    inst.AddTuple({Value(a), Value(b), Value(c)});
  };
  add("1", "x", "p");
  add("1", "y", "p");
  add("2", "x", "q");
  add("2", "z", "q");
  add("3", "y", "r");
  EncodedInstance enc(inst);
  DiscoveryOptions opts;
  opts.max_lhs = 2;
  FDSet found = DiscoverFDs(enc, opts);
  bool has_a_to_c = false;
  for (const FD& fd : found.fds()) {
    if (fd.lhs == AttrSet{0} && fd.rhs == 2) has_a_to_c = true;
  }
  EXPECT_TRUE(has_a_to_c);
}

TEST(Discovery, AllReportedFdsHoldExactly) {
  CensusConfig cfg;
  cfg.num_tuples = 300;
  cfg.num_attrs = 7;
  cfg.planted_lhs_sizes = {3};
  cfg.seed = 3;
  GeneratedData data = GenerateCensusLike(cfg);
  EncodedInstance enc(data.instance);
  DiscoveryOptions opts;
  opts.max_lhs = 3;
  FDSet found = DiscoverFDs(enc, opts);
  for (const FD& fd : found.fds()) {
    EXPECT_TRUE(Satisfies(enc, fd)) << fd.ToString(data.instance.schema());
  }
}

TEST(Discovery, ReportedFdsAreMinimal) {
  CensusConfig cfg;
  cfg.num_tuples = 300;
  cfg.num_attrs = 7;
  cfg.planted_lhs_sizes = {3};
  cfg.seed = 4;
  GeneratedData data = GenerateCensusLike(cfg);
  EncodedInstance enc(data.instance);
  DiscoveryOptions opts;
  opts.max_lhs = 3;
  FDSet found = DiscoverFDs(enc, opts);
  // No reported FD's LHS strictly contains another reported LHS with the
  // same RHS, and no proper subset of any LHS determines the RHS.
  for (const FD& fd : found.fds()) {
    for (AttrId drop : fd.lhs) {
      AttrSet smaller = fd.lhs;
      smaller.Remove(drop);
      EXPECT_FALSE(HoldsExactly(enc, smaller, fd.rhs))
          << "non-minimal: " << fd.ToString(data.instance.schema());
    }
  }
}

TEST(Discovery, FindsPlantedWideFd) {
  CensusConfig cfg;
  cfg.num_tuples = 600;
  cfg.num_attrs = 9;
  cfg.planted_lhs_sizes = {4};
  cfg.seed = 5;
  GeneratedData data = GenerateCensusLike(cfg);
  EncodedInstance enc(data.instance);
  DiscoveryOptions opts;
  opts.max_lhs = 4;
  FDSet found = DiscoverFDs(enc, opts);
  const FD& planted = data.planted_fds.fd(0);
  // The planted FD (or a smaller FD implying it on this instance) must be
  // discovered: check that SOME found FD has the planted RHS with LHS
  // contained in the planted LHS.
  bool covered = false;
  for (const FD& fd : found.fds()) {
    if (fd.rhs == planted.rhs && fd.lhs.SubsetOf(planted.lhs)) {
      covered = true;
    }
  }
  EXPECT_TRUE(covered);
}

TEST(Discovery, RespectsCandidateAttrs) {
  Instance inst(Schema::FromNames({"A", "B", "C"}));
  inst.AddTuple({Value("1"), Value("1"), Value("1")});
  inst.AddTuple({Value("1"), Value("1"), Value("2")});
  EncodedInstance enc(inst);
  DiscoveryOptions opts;
  opts.max_lhs = 2;
  opts.candidate_attrs = AttrSet{0, 1};
  FDSet found = DiscoverFDs(enc, opts);
  for (const FD& fd : found.fds()) {
    EXPECT_TRUE(fd.lhs.SubsetOf(AttrSet{0, 1}));
    EXPECT_NE(fd.rhs, 2);
  }
}

TEST(Discovery, ConstantAttributeFoundAtLevelZero) {
  Instance inst(Schema::FromNames({"A", "B"}));
  inst.AddTuple({Value("1"), Value("k")});
  inst.AddTuple({Value("2"), Value("k")});
  EncodedInstance enc(inst);
  DiscoveryOptions opts;
  opts.max_lhs = 1;
  FDSet found = DiscoverFDs(enc, opts);
  bool has_const_b = false;
  for (const FD& fd : found.fds()) {
    if (fd.lhs.Empty() && fd.rhs == 1) has_const_b = true;
  }
  EXPECT_TRUE(has_const_b);
}

}  // namespace
}  // namespace retrust
