#include "src/fd/difference_set.h"

#include <algorithm>
#include <iterator>
#include <unordered_map>

#include "src/exec/parallel_for.h"

namespace retrust {

AttrSet DiffSetOfPair(const EncodedInstance& inst, TupleId t1, TupleId t2) {
  AttrSet diff;
  for (AttrId a = 0; a < inst.NumAttrs(); ++a) {
    if (inst.At(t1, a) != inst.At(t2, a)) diff.Add(a);
  }
  return diff;
}

DifferenceSetIndex::DifferenceSetIndex(const EncodedInstance& inst,
                                       const ConflictGraph& cg)
    : DifferenceSetIndex(inst, cg, nullptr) {}

DifferenceSetIndex::DifferenceSetIndex(const EncodedInstance& inst,
                                       const ConflictGraph& cg,
                                       exec::ThreadPool* pool) {
  const std::vector<Edge>& edges = cg.graph.edges();

  // Sharded O(E·m) phase: the difference set of each edge, written by edge
  // index (disjoint slots, trivially deterministic).
  std::vector<AttrSet> diffs(edges.size());
  exec::ParallelFor(pool, static_cast<int64_t>(edges.size()),
                    [&](int64_t begin, int64_t end, int /*chunk*/) {
                      for (int64_t i = begin; i < end; ++i) {
                        diffs[i] = DiffSetOfPair(inst, edges[i].u, edges[i].v);
                      }
                    });

  // Serial grouping in the graph's canonical edge order: group creation
  // order and each group's internal edge order match the serial build
  // exactly.
  std::unordered_map<AttrSet, int, AttrSetHash> index;
  for (size_t i = 0; i < edges.size(); ++i) {
    auto [it, inserted] =
        index.emplace(diffs[i], static_cast<int>(groups_.size()));
    if (inserted) groups_.push_back({diffs[i], {}});
    groups_[it->second].edges.push_back(edges[i]);
  }
  std::sort(groups_.begin(), groups_.end(),
            [](const DiffSetGroup& a, const DiffSetGroup& b) {
              if (a.edges.size() != b.edges.size()) {
                return a.edges.size() > b.edges.size();
              }
              return a.diff < b.diff;
            });
}

IndexPatch DifferenceSetIndex::ApplyDelta(const EncodedInstance& inst,
                                          const FDSet& sigma,
                                          const std::vector<TupleId>& dirty,
                                          const std::vector<TupleId>& remap,
                                          exec::ThreadPool* pool) {
  IndexPatch patch;
  const int new_n = inst.NumTuples();
  std::vector<char> is_dirty(new_n, 0);
  for (TupleId t : dirty) is_dirty[t] = 1;

  // 1. Filter: drop every edge with a deleted or dirty endpoint. Relocated
  // tuples are dirty by construction (delta.h), so every kept edge's
  // endpoints still carry their old ids and the kept lists stay sorted.
  struct Work {
    AttrSet diff;
    std::vector<Edge> edges;
    int old_id = -1;
    bool changed = false;
  };
  std::vector<Work> work;
  work.reserve(groups_.size());
  for (size_t g = 0; g < groups_.size(); ++g) {
    Work w;
    w.diff = groups_[g].diff;
    w.old_id = static_cast<int>(g);
    w.edges.reserve(groups_[g].edges.size());
    for (const Edge& e : groups_[g].edges) {
      if (remap[e.u] < 0 || remap[e.v] < 0 || is_dirty[remap[e.u]] ||
          is_dirty[remap[e.v]]) {
        ++patch.edges_removed;
        w.changed = true;
      } else {
        w.edges.push_back(e);
      }
    }
    work.push_back(std::move(w));
  }

  // 2. Discover the edges in the delta's blast radius: every pair with a
  // dirty endpoint, each unordered pair examined exactly once. Sharded
  // over the relation; the canonical sort below erases chunk boundaries,
  // so the result is identical for any thread count.
  std::vector<std::pair<Edge, AttrSet>> found;
  {
    exec::ChunkPlan chunks = exec::PlanChunks(new_n, pool);
    std::vector<std::vector<std::pair<Edge, AttrSet>>> per_chunk(
        std::max(chunks.num_chunks, 1));
    exec::ParallelFor(pool, chunks,
                      [&](int64_t begin, int64_t end, int chunk) {
                        auto& out = per_chunk[chunk];
                        for (int64_t s = begin; s < end; ++s) {
                          for (TupleId t : dirty) {
                            if (is_dirty[s] && s >= t) continue;
                            AttrSet diff = DiffSetOfPair(
                                inst, t, static_cast<TupleId>(s));
                            if (DiffSetViolates(diff, sigma)) {
                              out.emplace_back(
                                  Edge(t, static_cast<TupleId>(s)), diff);
                            }
                          }
                        }
                      });
    for (auto& buf : per_chunk) {
      found.insert(found.end(), buf.begin(), buf.end());
    }
    std::sort(found.begin(), found.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  patch.edges_added = static_cast<int64_t>(found.size());

  // 3. Merge the new edges into their groups (kept and new lists are both
  // sorted, and all pairs are distinct, so the merge reproduces the
  // canonical ascending edge order of a from-scratch build).
  std::unordered_map<AttrSet, int, AttrSetHash> by_diff;
  by_diff.reserve(work.size());
  for (size_t i = 0; i < work.size(); ++i) by_diff.emplace(work[i].diff, i);
  std::vector<std::vector<Edge>> added(work.size());
  for (const auto& [edge, diff] : found) {
    auto [it, inserted] = by_diff.emplace(diff, static_cast<int>(work.size()));
    if (inserted) {
      work.push_back(Work{diff, {}, -1, true});
      added.emplace_back();
    }
    work[it->second].changed = true;
    added[it->second].push_back(edge);
  }
  for (size_t i = 0; i < work.size(); ++i) {
    if (added[i].empty()) continue;
    std::vector<Edge> merged;
    merged.reserve(work[i].edges.size() + added[i].size());
    std::merge(work[i].edges.begin(), work[i].edges.end(), added[i].begin(),
               added[i].end(), std::back_inserter(merged));
    work[i].edges = std::move(merged);
  }

  // 4. Re-rank in the canonical (frequency desc, diff asc) order and
  // translate preserved group ids.
  work.erase(std::remove_if(work.begin(), work.end(),
                            [](const Work& w) { return w.edges.empty(); }),
             work.end());
  std::sort(work.begin(), work.end(), [](const Work& a, const Work& b) {
    if (a.edges.size() != b.edges.size()) {
      return a.edges.size() > b.edges.size();
    }
    return a.diff < b.diff;
  });
  patch.old_to_new.assign(groups_.size(), -1);
  groups_.clear();
  groups_.reserve(work.size());
  for (size_t i = 0; i < work.size(); ++i) {
    if (work[i].old_id >= 0 && !work[i].changed) {
      patch.old_to_new[work[i].old_id] = static_cast<int32_t>(i);
      ++patch.groups_preserved;
    }
    groups_.push_back({work[i].diff, std::move(work[i].edges)});
  }
  patch.groups_changed = static_cast<int>(groups_.size()) -
                         patch.groups_preserved;
  return patch;
}

std::vector<int> DifferenceSetIndex::ViolatingGroups(const FDSet& fds) const {
  std::vector<int> out;
  for (int i = 0; i < size(); ++i) {
    if (DiffSetViolates(groups_[i].diff, fds)) out.push_back(i);
  }
  return out;
}

std::string DifferenceSetIndex::ToString(const Schema& schema) const {
  std::string out;
  for (const DiffSetGroup& g : groups_) {
    out += g.diff.ToString(schema.Names());
    out += " x" + std::to_string(g.edges.size()) + "\n";
  }
  return out;
}

DifferenceSetIndex BuildDifferenceSetIndex(const EncodedInstance& inst,
                                           const FDSet& sigma,
                                           const exec::Options& eopts) {
  std::unique_ptr<exec::ThreadPool> pool = exec::MakePool(eopts);
  return DifferenceSetIndex(inst, BuildConflictGraph(inst, sigma, pool.get()),
                            pool.get());
}

bool DiffSetViolates(AttrSet diff, const FDSet& fds) {
  for (const FD& fd : fds.fds()) {
    if (fd.ViolatedByDiffSet(diff)) return true;
  }
  return false;
}

}  // namespace retrust
