#include "src/fd/difference_set.h"

#include <algorithm>
#include <unordered_map>

#include "src/exec/parallel_for.h"

namespace retrust {

AttrSet DiffSetOfPair(const EncodedInstance& inst, TupleId t1, TupleId t2) {
  AttrSet diff;
  for (AttrId a = 0; a < inst.NumAttrs(); ++a) {
    if (inst.At(t1, a) != inst.At(t2, a)) diff.Add(a);
  }
  return diff;
}

DifferenceSetIndex::DifferenceSetIndex(const EncodedInstance& inst,
                                       const ConflictGraph& cg)
    : DifferenceSetIndex(inst, cg, nullptr) {}

DifferenceSetIndex::DifferenceSetIndex(const EncodedInstance& inst,
                                       const ConflictGraph& cg,
                                       exec::ThreadPool* pool) {
  const std::vector<Edge>& edges = cg.graph.edges();

  // Sharded O(E·m) phase: the difference set of each edge, written by edge
  // index (disjoint slots, trivially deterministic).
  std::vector<AttrSet> diffs(edges.size());
  exec::ParallelFor(pool, static_cast<int64_t>(edges.size()),
                    [&](int64_t begin, int64_t end, int /*chunk*/) {
                      for (int64_t i = begin; i < end; ++i) {
                        diffs[i] = DiffSetOfPair(inst, edges[i].u, edges[i].v);
                      }
                    });

  // Serial grouping in the graph's canonical edge order: group creation
  // order and each group's internal edge order match the serial build
  // exactly.
  std::unordered_map<AttrSet, int, AttrSetHash> index;
  for (size_t i = 0; i < edges.size(); ++i) {
    auto [it, inserted] =
        index.emplace(diffs[i], static_cast<int>(groups_.size()));
    if (inserted) groups_.push_back({diffs[i], {}});
    groups_[it->second].edges.push_back(edges[i]);
  }
  std::sort(groups_.begin(), groups_.end(),
            [](const DiffSetGroup& a, const DiffSetGroup& b) {
              if (a.edges.size() != b.edges.size()) {
                return a.edges.size() > b.edges.size();
              }
              return a.diff < b.diff;
            });
}

std::vector<int> DifferenceSetIndex::ViolatingGroups(const FDSet& fds) const {
  std::vector<int> out;
  for (int i = 0; i < size(); ++i) {
    if (DiffSetViolates(groups_[i].diff, fds)) out.push_back(i);
  }
  return out;
}

std::string DifferenceSetIndex::ToString(const Schema& schema) const {
  std::string out;
  for (const DiffSetGroup& g : groups_) {
    out += g.diff.ToString(schema.Names());
    out += " x" + std::to_string(g.edges.size()) + "\n";
  }
  return out;
}

DifferenceSetIndex BuildDifferenceSetIndex(const EncodedInstance& inst,
                                           const FDSet& sigma,
                                           const exec::Options& eopts) {
  std::unique_ptr<exec::ThreadPool> pool = exec::MakePool(eopts);
  return DifferenceSetIndex(inst, BuildConflictGraph(inst, sigma, pool.get()),
                            pool.get());
}

bool DiffSetViolates(AttrSet diff, const FDSet& fds) {
  for (const FD& fd : fds.fds()) {
    if (fd.ViolatedByDiffSet(diff)) return true;
  }
  return false;
}

}  // namespace retrust
