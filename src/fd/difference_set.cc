#include "src/fd/difference_set.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <stdexcept>

#include "src/exec/parallel_for.h"
#include "src/fd/partition.h"

namespace retrust {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The canonical group order: descending logical frequency, ties broken by
/// the smaller attribute mask. Shared by every builder and by ApplyDelta.
void RankGroups(std::vector<DiffSetGroup>* groups) {
  std::sort(groups->begin(), groups->end(),
            [](const DiffSetGroup& a, const DiffSetGroup& b) {
              if (a.frequency() != b.frequency()) {
                return a.frequency() > b.frequency();
              }
              return a.diff < b.diff;
            });
}

/// Groups (edge, diff) records — already in canonical ascending edge
/// order — into DiffSetGroups, preserving that order inside each group.
/// Pre-sizes the map and each group's edge vector (one counting pass) so
/// the serial phase never rehashes or reallocates on large inputs.
std::vector<DiffSetGroup> GroupEdges(
    const std::vector<std::pair<Edge, AttrSet>>& records) {
  std::unordered_map<AttrSet, int64_t, AttrSetHash> freq;
  freq.reserve(64);
  for (const auto& [edge, diff] : records) ++freq[diff];

  std::vector<DiffSetGroup> groups;
  groups.reserve(freq.size());
  std::unordered_map<AttrSet, int, AttrSetHash> index;
  index.reserve(freq.size());
  for (const auto& [edge, diff] : records) {
    auto [it, inserted] = index.emplace(diff, static_cast<int>(groups.size()));
    if (inserted) {
      groups.push_back({diff, {}, 0});
      groups.back().edges.reserve(static_cast<size_t>(freq[diff]));
    }
    groups[it->second].edges.push_back(edge);
  }
  return groups;
}

}  // namespace

AttrSet DiffSetOfPair(const EncodedInstance& inst, TupleId t1, TupleId t2) {
  const int m = inst.NumAttrs();
  const AttrSet universe = AttrSet::Universe(m);
  AttrSet diff;
  for (AttrId a = 0; a < m; ++a) {
    if (inst.At(t1, a) != inst.At(t2, a)) {
      diff.Add(a);
      if (diff == universe) break;
    }
  }
  return diff;
}

AttrSet DiffSetOfPair(const int32_t* const* cols, int num_attrs, TupleId t1,
                      TupleId t2) {
  const AttrSet universe = AttrSet::Universe(num_attrs);
  AttrSet diff;
  for (AttrId a = 0; a < num_attrs; ++a) {
    if (cols[a][t1] != cols[a][t2]) {
      diff.Add(a);
      if (diff == universe) break;
    }
  }
  return diff;
}

DifferenceSetIndex::DifferenceSetIndex(const EncodedInstance& inst,
                                       const ConflictGraph& cg)
    : DifferenceSetIndex(inst, cg, nullptr) {}

DifferenceSetIndex::DifferenceSetIndex(const EncodedInstance& inst,
                                       const ConflictGraph& cg,
                                       exec::ThreadPool* pool) {
  const std::vector<Edge>& edges = cg.graph.edges();

  // Sharded O(E·m) phase: the difference set of each edge, written by edge
  // index (disjoint slots, trivially deterministic).
  std::vector<AttrSet> diffs(edges.size());
  exec::ParallelFor(pool, static_cast<int64_t>(edges.size()),
                    [&](int64_t begin, int64_t end, int /*chunk*/) {
                      for (int64_t i = begin; i < end; ++i) {
                        diffs[i] = DiffSetOfPair(inst, edges[i].u, edges[i].v);
                      }
                    });

  // Serial grouping in the graph's canonical edge order: group creation
  // order and each group's internal edge order match the serial build
  // exactly. Pre-sized (satellite): one counting pass reserves the map
  // and every group's edge vector up front.
  std::unordered_map<AttrSet, int64_t, AttrSetHash> freq;
  freq.reserve(64);
  for (const AttrSet diff : diffs) ++freq[diff];
  std::unordered_map<AttrSet, int, AttrSetHash> index;
  index.reserve(freq.size());
  groups_.reserve(freq.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    auto [it, inserted] =
        index.emplace(diffs[i], static_cast<int>(groups_.size()));
    if (inserted) {
      groups_.push_back({diffs[i], {}, 0});
      groups_.back().edges.reserve(static_cast<size_t>(freq[diffs[i]]));
    }
    groups_[it->second].edges.push_back(edges[i]);
  }
  CanonicalizeCountedGroups(inst.NumAttrs());
  RankGroups(&groups_);
  if (HasCountedGroups()) lazy_ = std::make_unique<LazyEdges>();
}

DifferenceSetIndex::DifferenceSetIndex(std::vector<DiffSetGroup> groups)
    : groups_(std::move(groups)) {
  if (HasCountedGroups()) lazy_ = std::make_unique<LazyEdges>();
}

DifferenceSetIndex::DifferenceSetIndex(const DifferenceSetIndex& o)
    : groups_(o.groups_), bound_(o.bound_) {
  // The lazy cache is derived state; a copy starts cold.
  if (HasCountedGroups()) lazy_ = std::make_unique<LazyEdges>();
}

DifferenceSetIndex& DifferenceSetIndex::operator=(
    const DifferenceSetIndex& o) {
  if (this == &o) return *this;
  groups_ = o.groups_;
  bound_ = o.bound_;
  lazy_ = HasCountedGroups() ? std::make_unique<LazyEdges>() : nullptr;
  return *this;
}

void DifferenceSetIndex::CanonicalizeCountedGroups(int num_attrs) {
  // The full-disagreement group (diff = every attribute) is stored in
  // counted form so the naive and blocked builders emit identical indexes:
  // its pairs only ever become conflict edges under a degenerate empty-LHS
  // FD, and even then δP and the heuristic need only the count.
  const AttrSet universe = AttrSet::Universe(num_attrs);
  if (universe.Empty()) return;
  for (DiffSetGroup& g : groups_) {
    if (g.diff == universe && !g.edges.empty()) {
      g.counted += static_cast<int64_t>(g.edges.size());
      g.edges.clear();
      g.edges.shrink_to_fit();
    }
  }
}

bool DifferenceSetIndex::HasCountedGroups() const {
  for (const DiffSetGroup& g : groups_) {
    if (g.counted > 0) return true;
  }
  return false;
}

const std::vector<Edge>& DifferenceSetIndex::EdgesForCover(int g) const {
  const DiffSetGroup& grp = groups_[g];
  if (grp.counted == 0) return grp.edges;
  if (bound_ == nullptr) {
    throw std::logic_error(
        "counted difference-set group touched before BindInstance");
  }
  std::lock_guard<std::mutex> lock(lazy_->mu);
  auto it = lazy_->by_group.find(g);
  if (it != lazy_->by_group.end()) return it->second;

  // Materialize the full-disagreement pairs in ascending (u, v) order —
  // the exact order the naive build would have stored them in.
  const int n = bound_->NumTuples();
  const int m = bound_->NumAttrs();
  std::vector<const int32_t*> cols(m);
  for (AttrId a = 0; a < m; ++a) cols[a] = bound_->ColumnData(a);
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(grp.counted));
  for (TupleId u = 0; u < n; ++u) {
    for (TupleId v = u + 1; v < n; ++v) {
      bool all_differ = true;
      for (AttrId a = 0; a < m; ++a) {
        if (cols[a][u] == cols[a][v]) {
          all_differ = false;
          break;
        }
      }
      if (all_differ) edges.emplace_back(u, v);
    }
  }
  if (static_cast<int64_t>(edges.size()) != grp.counted) {
    throw std::logic_error(
        "counted group does not match the bound instance (stale bind?)");
  }
  return lazy_->by_group.emplace(g, std::move(edges)).first->second;
}

IndexPatch DifferenceSetIndex::ApplyDelta(const EncodedInstance& inst,
                                          const FDSet& sigma,
                                          const std::vector<TupleId>& dirty,
                                          const std::vector<TupleId>& remap,
                                          exec::ThreadPool* pool) {
  if (HasCountedGroups()) {
    throw std::logic_error(
        "DifferenceSetIndex::ApplyDelta cannot patch counted groups; "
        "rebuild with the blocked builder (FdSearchContext does)");
  }
  IndexPatch patch;
  const int new_n = inst.NumTuples();
  std::vector<char> is_dirty(new_n, 0);
  for (TupleId t : dirty) is_dirty[t] = 1;

  // 1. Filter: drop every edge with a deleted or dirty endpoint. Relocated
  // tuples are dirty by construction (delta.h), so every kept edge's
  // endpoints still carry their old ids and the kept lists stay sorted.
  struct Work {
    AttrSet diff;
    std::vector<Edge> edges;
    int old_id = -1;
    bool changed = false;
  };
  std::vector<Work> work;
  work.reserve(groups_.size());
  for (size_t g = 0; g < groups_.size(); ++g) {
    Work w;
    w.diff = groups_[g].diff;
    w.old_id = static_cast<int>(g);
    w.edges.reserve(groups_[g].edges.size());
    for (const Edge& e : groups_[g].edges) {
      if (remap[e.u] < 0 || remap[e.v] < 0 || is_dirty[remap[e.u]] ||
          is_dirty[remap[e.v]]) {
        ++patch.edges_removed;
        w.changed = true;
      } else {
        w.edges.push_back(e);
      }
    }
    work.push_back(std::move(w));
  }

  // 2. Discover the edges in the delta's blast radius: every pair with a
  // dirty endpoint, each unordered pair examined exactly once. Sharded
  // over the relation; the canonical sort below erases chunk boundaries,
  // so the result is identical for any thread count.
  const int m = inst.NumAttrs();
  std::vector<const int32_t*> cols(m);
  for (AttrId a = 0; a < m; ++a) cols[a] = inst.ColumnData(a);
  std::vector<std::pair<Edge, AttrSet>> found;
  {
    exec::ChunkPlan chunks = exec::PlanChunks(new_n, pool);
    std::vector<std::vector<std::pair<Edge, AttrSet>>> per_chunk(
        std::max(chunks.num_chunks, 1));
    exec::ParallelFor(pool, chunks,
                      [&](int64_t begin, int64_t end, int chunk) {
                        auto& out = per_chunk[chunk];
                        for (int64_t s = begin; s < end; ++s) {
                          for (TupleId t : dirty) {
                            if (is_dirty[s] && s >= t) continue;
                            AttrSet diff = DiffSetOfPair(
                                cols.data(), m, t, static_cast<TupleId>(s));
                            if (DiffSetViolates(diff, sigma)) {
                              out.emplace_back(
                                  Edge(t, static_cast<TupleId>(s)), diff);
                            }
                          }
                        }
                      });
    for (auto& buf : per_chunk) {
      found.insert(found.end(), buf.begin(), buf.end());
    }
    std::sort(found.begin(), found.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  patch.edges_added = static_cast<int64_t>(found.size());

  // 3. Merge the new edges into their groups (kept and new lists are both
  // sorted, and all pairs are distinct, so the merge reproduces the
  // canonical ascending edge order of a from-scratch build).
  std::unordered_map<AttrSet, int, AttrSetHash> by_diff;
  by_diff.reserve(work.size());
  for (size_t i = 0; i < work.size(); ++i) by_diff.emplace(work[i].diff, i);
  std::vector<std::vector<Edge>> added(work.size());
  for (const auto& [edge, diff] : found) {
    auto [it, inserted] = by_diff.emplace(diff, static_cast<int>(work.size()));
    if (inserted) {
      work.push_back(Work{diff, {}, -1, true});
      added.emplace_back();
    }
    work[it->second].changed = true;
    added[it->second].push_back(edge);
  }
  for (size_t i = 0; i < work.size(); ++i) {
    if (added[i].empty()) continue;
    std::vector<Edge> merged;
    merged.reserve(work[i].edges.size() + added[i].size());
    std::merge(work[i].edges.begin(), work[i].edges.end(), added[i].begin(),
               added[i].end(), std::back_inserter(merged));
    work[i].edges = std::move(merged);
  }

  // 4. Re-rank in the canonical (frequency desc, diff asc) order and
  // translate preserved group ids.
  work.erase(std::remove_if(work.begin(), work.end(),
                            [](const Work& w) { return w.edges.empty(); }),
             work.end());
  std::sort(work.begin(), work.end(), [](const Work& a, const Work& b) {
    if (a.edges.size() != b.edges.size()) {
      return a.edges.size() > b.edges.size();
    }
    return a.diff < b.diff;
  });
  patch.old_to_new.assign(groups_.size(), -1);
  groups_.clear();
  groups_.reserve(work.size());
  for (size_t i = 0; i < work.size(); ++i) {
    if (work[i].old_id >= 0 && !work[i].changed) {
      patch.old_to_new[work[i].old_id] = static_cast<int32_t>(i);
      ++patch.groups_preserved;
    }
    groups_.push_back({work[i].diff, std::move(work[i].edges), 0});
  }
  patch.groups_changed = static_cast<int>(groups_.size()) -
                         patch.groups_preserved;
  return patch;
}

std::vector<int> DifferenceSetIndex::ViolatingGroups(const FDSet& fds) const {
  std::vector<int> out;
  for (int i = 0; i < size(); ++i) {
    if (DiffSetViolates(groups_[i].diff, fds)) out.push_back(i);
  }
  return out;
}

std::string DifferenceSetIndex::ToString(const Schema& schema) const {
  std::string out;
  for (const DiffSetGroup& g : groups_) {
    out += g.diff.ToString(schema.Names());
    out += " x" + std::to_string(g.frequency());
    if (g.counted > 0) out += " (counted)";
    out += "\n";
  }
  return out;
}

DifferenceSetIndex BuildDifferenceSetIndexBlocked(const EncodedInstance& inst,
                                                  const FDSet& sigma,
                                                  exec::ThreadPool* pool,
                                                  DiffSetBuildStats* stats) {
  if (sigma.size() > 64) {
    throw std::invalid_argument("conflict graph supports at most 64 FDs");
  }
  const auto t_start = std::chrono::steady_clock::now();
  const int n = inst.NumTuples();
  const int m = inst.NumAttrs();
  std::vector<const int32_t*> cols(m);
  for (AttrId a = 0; a < m; ++a) cols[a] = inst.ColumnData(a);

  // Phase 1 — blocking structure: one partition per attribute, stripped to
  // classes of >= 2 tuples. Work units are (attribute, class) spans in a
  // flat deterministic order: attributes ascending, classes in label
  // (first-occurrence) order, members ascending.
  struct Unit {
    AttrId attr;
    int32_t begin;  ///< span into members[attr]
    int32_t end;
  };
  std::vector<std::vector<TupleId>> members(m);
  std::vector<Unit> units;
  for (AttrId a = 0; a < m; ++a) {
    std::vector<std::vector<TupleId>> classes =
        PartitionBy(inst, AttrSet::Single(a)).StrippedClasses();
    size_t total = 0;
    for (const auto& c : classes) total += c.size();
    members[a].reserve(total);
    for (const auto& c : classes) {
      units.push_back({a, static_cast<int32_t>(members[a].size()),
                       static_cast<int32_t>(members[a].size() + c.size())});
      members[a].insert(members[a].end(), c.begin(), c.end());
    }
  }
  const double partition_seconds = SecondsSince(t_start);

  // Phase 2 — in-class pair enumeration, sharded over units. A pair inside
  // attribute a's class is OWNED by a iff the two tuples disagree on every
  // attribute before a (the first-agreeing-attribute rule): each pair that
  // agrees somewhere is emitted by exactly one unit, so the concatenated
  // chunk buffers hold globally distinct edges and one canonical sort makes
  // the order thread-count independent.
  const auto t_enumerate = std::chrono::steady_clock::now();
  struct ChunkOut {
    std::vector<std::pair<Edge, AttrSet>> records;
    int64_t candidate = 0;
    int64_t owned = 0;
  };
  exec::ChunkPlan plan =
      exec::PlanChunks(static_cast<int64_t>(units.size()), pool);
  std::vector<ChunkOut> per_chunk(
      static_cast<size_t>(std::max(plan.num_chunks, 1)));
  exec::ParallelFor(
      pool, plan, [&](int64_t begin, int64_t end, int chunk) {
        ChunkOut& out = per_chunk[chunk];
        for (int64_t ui = begin; ui < end; ++ui) {
          const Unit& unit = units[ui];
          const AttrId a = unit.attr;
          const TupleId* cls = members[a].data();
          for (int32_t i = unit.begin; i < unit.end; ++i) {
            const TupleId u = cls[i];
            for (int32_t j = i + 1; j < unit.end; ++j) {
              const TupleId v = cls[j];
              ++out.candidate;
              bool owned = true;
              for (AttrId b = 0; b < a; ++b) {
                if (cols[b][u] == cols[b][v]) {
                  owned = false;
                  break;
                }
              }
              if (!owned) continue;
              ++out.owned;
              // Ownership already proved every attribute before a differs
              // (and a itself agrees), so only the tail needs comparing.
              AttrSet diff = AttrSet::Universe(a);
              for (AttrId b = a + 1; b < m; ++b) {
                if (cols[b][u] != cols[b][v]) diff.Add(b);
              }
              if (DiffSetViolates(diff, sigma)) {
                out.records.emplace_back(Edge(u, v), diff);
              }
            }
          }
        }
      });
  std::vector<std::pair<Edge, AttrSet>> records;
  int64_t candidate = 0, owned = 0;
  {
    size_t total = 0;
    for (const ChunkOut& c : per_chunk) total += c.records.size();
    records.reserve(total);
    for (ChunkOut& c : per_chunk) {
      records.insert(records.end(), c.records.begin(), c.records.end());
      candidate += c.candidate;
      owned += c.owned;
    }
  }
  std::sort(records.begin(), records.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const double enumerate_seconds = SecondsSince(t_enumerate);

  // Phase 3 — group in canonical edge order, attach the counted
  // full-disagreement group, and rank. Every pair NOT owned by some
  // attribute disagrees everywhere; those k pairs share diff = universe
  // and enter the index only when a (degenerate, empty-LHS) FD makes the
  // universe diff violating at all.
  const auto t_group = std::chrono::steady_clock::now();
  std::vector<DiffSetGroup> groups = GroupEdges(records);
  const int64_t total_pairs = static_cast<int64_t>(n) * (n - 1) / 2;
  const int64_t full_disagreement = total_pairs - owned;
  const AttrSet universe = AttrSet::Universe(m);
  if (full_disagreement > 0 && DiffSetViolates(universe, sigma)) {
    groups.push_back({universe, {}, full_disagreement});
  }
  RankGroups(&groups);
  DifferenceSetIndex index(std::move(groups));
  const double group_seconds = SecondsSince(t_group);

  if (stats != nullptr) {
    stats->pairs_candidate = candidate;
    stats->pairs_owned = owned;
    stats->pairs_materialized = static_cast<int64_t>(records.size());
    stats->pairs_counted = full_disagreement;
    stats->partition_seconds = partition_seconds;
    stats->enumerate_seconds = enumerate_seconds;
    stats->group_seconds = group_seconds;
    stats->total_seconds = SecondsSince(t_start);
  }
  return index;
}

DifferenceSetIndex BuildDifferenceSetIndex(const EncodedInstance& inst,
                                           const FDSet& sigma,
                                           const exec::Options& eopts,
                                           DiffSetBuildMode mode,
                                           DiffSetBuildStats* stats) {
  std::unique_ptr<exec::ThreadPool> pool = exec::MakePool(eopts);
  if (mode == DiffSetBuildMode::kBlocked) {
    return BuildDifferenceSetIndexBlocked(inst, sigma, pool.get(), stats);
  }

  // kNaive: the quadratic oracle — a direct scan over all C(n,2) tuple
  // pairs, each difference set computed from the columns. Deliberately free
  // of the blocking machinery (partitions, ownership) so the blocked
  // builder has an independent witness and the scaling bench an honest
  // baseline; shares the grouping/ranking conventions of phase 3 so the two
  // builders emit bit-identical indexes.
  if (sigma.size() > 64) {
    throw std::invalid_argument("conflict graph supports at most 64 FDs");
  }
  const auto t_start = std::chrono::steady_clock::now();
  const int n = inst.NumTuples();
  const int m = inst.NumAttrs();
  std::vector<const int32_t*> cols(m);
  for (AttrId a = 0; a < m; ++a) cols[a] = inst.ColumnData(a);
  const AttrSet universe = AttrSet::Universe(m);

  struct ChunkOut {
    std::vector<std::pair<Edge, AttrSet>> records;
    int64_t full = 0;  ///< disagree-everywhere pairs (counted, never stored)
  };
  exec::ChunkPlan plan = exec::PlanChunks(n, pool.get());
  std::vector<ChunkOut> per_chunk(
      static_cast<size_t>(std::max(plan.num_chunks, 1)));
  exec::ParallelFor(
      pool.get(), plan, [&](int64_t begin, int64_t end, int chunk) {
    ChunkOut& out = per_chunk[chunk];
    for (TupleId u = static_cast<TupleId>(begin);
         u < static_cast<TupleId>(end); ++u) {
      for (TupleId v = u + 1; v < n; ++v) {
        AttrSet diff = DiffSetOfPair(cols.data(), m, u, v);
        if (diff == universe) {
          ++out.full;
          continue;
        }
        if (DiffSetViolates(diff, sigma)) {
          out.records.emplace_back(Edge(u, v), diff);
        }
      }
    }
  });
  // Chunks are contiguous u-ranges and each inner loop ascends, so plain
  // chunk-order concatenation is already the canonical ascending edge order.
  std::vector<std::pair<Edge, AttrSet>> records;
  int64_t full_disagreement = 0;
  {
    size_t total = 0;
    for (const ChunkOut& c : per_chunk) total += c.records.size();
    records.reserve(total);
    for (ChunkOut& c : per_chunk) {
      records.insert(records.end(), c.records.begin(), c.records.end());
      full_disagreement += c.full;
    }
  }
  const double enumerate_seconds = SecondsSince(t_start);

  const auto t_group = std::chrono::steady_clock::now();
  std::vector<DiffSetGroup> groups = GroupEdges(records);
  if (full_disagreement > 0 && DiffSetViolates(universe, sigma)) {
    groups.push_back({universe, {}, full_disagreement});
  }
  RankGroups(&groups);
  DifferenceSetIndex index(std::move(groups));
  const double group_seconds = SecondsSince(t_group);

  if (stats != nullptr) {
    *stats = DiffSetBuildStats{};
    stats->pairs_candidate = static_cast<int64_t>(n) * (n - 1) / 2;
    stats->pairs_owned = stats->pairs_candidate - full_disagreement;
    stats->pairs_materialized = static_cast<int64_t>(records.size());
    stats->pairs_counted = full_disagreement;
    stats->enumerate_seconds = enumerate_seconds;
    stats->group_seconds = group_seconds;
    stats->total_seconds = SecondsSince(t_start);
  }
  return index;
}

bool DiffSetViolates(AttrSet diff, const FDSet& fds) {
  for (const FD& fd : fds.fds()) {
    if (fd.ViolatedByDiffSet(diff)) return true;
  }
  return false;
}

}  // namespace retrust
