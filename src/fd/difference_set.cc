#include "src/fd/difference_set.h"

#include <algorithm>
#include <unordered_map>

namespace retrust {

AttrSet DiffSetOfPair(const EncodedInstance& inst, TupleId t1, TupleId t2) {
  AttrSet diff;
  for (AttrId a = 0; a < inst.NumAttrs(); ++a) {
    if (inst.At(t1, a) != inst.At(t2, a)) diff.Add(a);
  }
  return diff;
}

DifferenceSetIndex::DifferenceSetIndex(const EncodedInstance& inst,
                                       const ConflictGraph& cg) {
  std::unordered_map<AttrSet, int, AttrSetHash> index;
  for (const Edge& e : cg.graph.edges()) {
    AttrSet diff = DiffSetOfPair(inst, e.u, e.v);
    auto [it, inserted] =
        index.emplace(diff, static_cast<int>(groups_.size()));
    if (inserted) groups_.push_back({diff, {}});
    groups_[it->second].edges.push_back(e);
  }
  std::sort(groups_.begin(), groups_.end(),
            [](const DiffSetGroup& a, const DiffSetGroup& b) {
              if (a.edges.size() != b.edges.size()) {
                return a.edges.size() > b.edges.size();
              }
              return a.diff < b.diff;
            });
}

std::vector<int> DifferenceSetIndex::ViolatingGroups(const FDSet& fds) const {
  std::vector<int> out;
  for (int i = 0; i < size(); ++i) {
    if (DiffSetViolates(groups_[i].diff, fds)) out.push_back(i);
  }
  return out;
}

std::string DifferenceSetIndex::ToString(const Schema& schema) const {
  std::string out;
  for (const DiffSetGroup& g : groups_) {
    out += g.diff.ToString(schema.Names());
    out += " x" + std::to_string(g.edges.size()) + "\n";
  }
  return out;
}

bool DiffSetViolates(AttrSet diff, const FDSet& fds) {
  for (const FD& fd : fds.fds()) {
    if (fd.ViolatedByDiffSet(diff)) return true;
  }
  return false;
}

}  // namespace retrust
