#include "src/fd/fdset.h"

#include <stdexcept>

namespace retrust {

FDSet FDSet::Parse(const std::vector<std::string>& texts,
                   const Schema& schema) {
  std::vector<FD> fds;
  fds.reserve(texts.size());
  for (const auto& t : texts) fds.push_back(FD::Parse(t, schema));
  return FDSet(std::move(fds));
}

AttrSet FDSet::Closure(AttrSet x) const {
  AttrSet closure = x;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FD& fd : fds_) {
      if (fd.lhs.SubsetOf(closure) && !closure.Contains(fd.rhs)) {
        closure.Add(fd.rhs);
        changed = true;
      }
    }
  }
  return closure;
}

namespace {

// Closure of x under all FDs except index `skip`.
AttrSet ClosureExcept(const std::vector<FD>& fds, AttrSet x, int skip) {
  AttrSet closure = x;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = 0; i < static_cast<int>(fds.size()); ++i) {
      if (i == skip) continue;
      if (fds[i].lhs.SubsetOf(closure) && !closure.Contains(fds[i].rhs)) {
        closure.Add(fds[i].rhs);
        changed = true;
      }
    }
  }
  return closure;
}

}  // namespace

bool FDSet::IsMinimal() const {
  for (int i = 0; i < size(); ++i) {
    const FD& fd = fds_[i];
    if (fd.IsTrivial()) return false;
    // Extraneous LHS attribute: some B in X with (X \ B) -> A still implied.
    for (AttrId b : fd.lhs) {
      AttrSet reduced = fd.lhs;
      reduced.Remove(b);
      if (Closure(reduced).Contains(fd.rhs)) return false;
    }
    // Redundant FD: implied by the others.
    if (ClosureExcept(fds_, fd.lhs, i).Contains(fd.rhs)) return false;
  }
  return true;
}

FDSet FDSet::Minimize() const {
  // Step 1: remove extraneous LHS attributes (w.r.t. the full set).
  std::vector<FD> work = fds_;
  for (FD& fd : work) {
    bool shrunk = true;
    while (shrunk) {
      shrunk = false;
      for (AttrId b : fd.lhs) {
        AttrSet reduced = fd.lhs;
        reduced.Remove(b);
        FDSet tmp(work);
        if (tmp.Closure(reduced).Contains(fd.rhs)) {
          fd.lhs = reduced;
          shrunk = true;
          break;
        }
      }
    }
  }
  // Step 2: drop redundant FDs one at a time against the current cover.
  std::vector<FD> kept = work;
  for (size_t i = 0; i < kept.size();) {
    std::vector<FD> others = kept;
    others.erase(others.begin() + i);
    if (FDSet(others).Implies(kept[i])) {
      kept = std::move(others);
    } else {
      ++i;
    }
  }
  return FDSet(kept);
}

FDSet FDSet::Extend(const std::vector<AttrSet>& extensions) const {
  if (static_cast<int>(extensions.size()) != size()) {
    throw std::invalid_argument("extension vector arity mismatch");
  }
  std::vector<FD> out;
  out.reserve(fds_.size());
  for (int i = 0; i < size(); ++i) {
    const FD& fd = fds_[i];
    if (extensions[i].Contains(fd.rhs)) {
      throw std::invalid_argument("extension may not include the FD's RHS");
    }
    out.emplace_back(fd.lhs.Union(extensions[i]), fd.rhs);
  }
  return FDSet(std::move(out));
}

std::vector<AttrSet> FDSet::ExtensionsTo(const FDSet& relaxed) const {
  if (relaxed.size() != size()) {
    throw std::invalid_argument("FD set sizes differ");
  }
  std::vector<AttrSet> out(size());
  for (int i = 0; i < size(); ++i) {
    if (relaxed.fd(i).rhs != fds_[i].rhs ||
        !fds_[i].lhs.SubsetOf(relaxed.fd(i).lhs)) {
      throw std::invalid_argument("not a positional LHS extension");
    }
    out[i] = relaxed.fd(i).lhs.Minus(fds_[i].lhs);
  }
  return out;
}

std::string FDSet::ToString(const Schema& schema) const {
  std::string out = "{";
  for (int i = 0; i < size(); ++i) {
    if (i > 0) out += "; ";
    out += fds_[i].ToString(schema);
  }
  out += "}";
  return out;
}

}  // namespace retrust
