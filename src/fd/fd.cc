#include "src/fd/fd.h"

#include <stdexcept>

#include "src/util/string_util.h"

namespace retrust {

std::string FD::ToString(const Schema& schema) const {
  std::string out;
  bool first = true;
  for (AttrId a : lhs) {
    if (!first) out += ",";
    out += schema.name(a);
    first = false;
  }
  out += "->";
  out += rhs >= 0 ? schema.name(rhs) : "?";
  return out;
}

std::string FD::ToString() const {
  return lhs.ToString() + "->" + std::to_string(rhs);
}

FD FD::Parse(const std::string& text, const Schema& schema) {
  size_t arrow = text.find("->");
  if (arrow == std::string::npos) {
    throw std::invalid_argument("FD must contain '->': " + text);
  }
  std::string lhs_text = text.substr(0, arrow);
  std::string rhs_text(Trim(text.substr(arrow + 2)));
  AttrId rhs = schema.Find(rhs_text);
  if (rhs < 0) throw std::invalid_argument("unknown attribute: " + rhs_text);
  AttrSet lhs;
  for (const auto& part : Split(lhs_text, ',')) {
    std::string name(Trim(part));
    if (name.empty()) continue;
    AttrId a = schema.Find(name);
    if (a < 0) throw std::invalid_argument("unknown attribute: " + name);
    lhs.Add(a);
  }
  return FD(lhs, rhs);
}

}  // namespace retrust
