#include "src/fd/conflict_graph.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace retrust {

ConflictGraph BuildConflictGraph(const EncodedInstance& inst,
                                 const FDSet& fds) {
  return BuildConflictGraph(inst, fds, nullptr);
}

ConflictGraph BuildConflictGraph(const EncodedInstance& inst,
                                 const FDSet& fds, exec::ThreadPool* pool) {
  if (fds.size() > 64) {
    throw std::invalid_argument("conflict graph supports at most 64 FDs");
  }
  // Edge key (u << 32 | v, u < v) -> FD bitmask. The per-FD enumeration is
  // the sharded hot path; mask OR-merging is order-insensitive and the
  // final sort fixes the canonical edge order, so the result is identical
  // for any thread count.
  std::unordered_map<uint64_t, uint64_t> edge_masks;
  for (int i = 0; i < fds.size(); ++i) {
    for (const Edge& e : ViolatingPairs(inst, fds.fd(i), pool)) {
      uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(e.u)) << 32) |
                     static_cast<uint32_t>(e.v);
      edge_masks[key] |= uint64_t{1} << i;
    }
  }
  std::vector<std::pair<Edge, uint64_t>> edges;
  edges.reserve(edge_masks.size());
  for (const auto& [key, mask] : edge_masks) {
    edges.emplace_back(Edge(static_cast<int32_t>(key >> 32),
                            static_cast<int32_t>(key & 0xffffffffu)),
                       mask);
  }
  std::sort(edges.begin(), edges.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  ConflictGraph cg;
  cg.graph = Graph(inst.NumTuples());
  cg.edge_fd_mask.reserve(edges.size());
  for (const auto& [e, mask] : edges) {
    cg.graph.AddEdge(e.u, e.v);
    cg.edge_fd_mask.push_back(mask);
  }
  return cg;
}

}  // namespace retrust
