#include "src/fd/partition.h"

#include <unordered_map>

#include "src/util/hash.h"

namespace retrust {

std::vector<std::vector<TupleId>> Partition::StrippedClasses() const {
  std::vector<std::vector<TupleId>> classes(num_classes);
  for (TupleId t = 0; t < static_cast<TupleId>(labels.size()); ++t) {
    classes[labels[t]].push_back(t);
  }
  std::vector<std::vector<TupleId>> stripped;
  for (auto& c : classes) {
    if (c.size() >= 2) stripped.push_back(std::move(c));
  }
  return stripped;
}

Partition PartitionBy(const EncodedInstance& inst, AttrSet attrs) {
  Partition p;
  int n = inst.NumTuples();
  p.labels.resize(n);
  if (attrs.Empty()) {
    // Single class.
    std::fill(p.labels.begin(), p.labels.end(), 0);
    p.num_classes = n > 0 ? 1 : 0;
    return p;
  }
  // First attribute: dense labels straight off one contiguous column.
  // Labels are assigned in first-occurrence order, and every Refine pass
  // below also assigns in first-occurrence scan order, so the final labels
  // are identical to hashing the full key vector per tuple — at a fraction
  // of the hashing cost (one int32 per cell, streamed per column).
  auto it = attrs.begin();
  {
    const int32_t* col = inst.ColumnData(*it);
    std::unordered_map<int32_t, int32_t> index;
    index.reserve(static_cast<size_t>(n));
    for (TupleId t = 0; t < n; ++t) {
      auto [slot, inserted] = index.emplace(col[t], p.num_classes);
      if (inserted) ++p.num_classes;
      p.labels[t] = slot->second;
    }
  }
  for (++it; it != attrs.end(); ++it) {
    p = Refine(inst, p, *it);
  }
  return p;
}

Partition Refine(const EncodedInstance& inst, const Partition& base,
                 AttrId a) {
  Partition p;
  int n = inst.NumTuples();
  p.labels.resize(n);
  const int32_t* col = inst.ColumnData(a);
  // Key: (base label, code of a) -> new dense label.
  std::unordered_map<uint64_t, int32_t> index;
  index.reserve(static_cast<size_t>(n));
  for (TupleId t = 0; t < n; ++t) {
    uint64_t key = (static_cast<uint64_t>(base.labels[t]) << 32) |
                   static_cast<uint32_t>(col[t]);
    auto [it, inserted] = index.emplace(Mix64(key), p.num_classes);
    if (inserted) ++p.num_classes;
    p.labels[t] = it->second;
  }
  return p;
}

bool HoldsExactly(const EncodedInstance& inst, AttrSet x, AttrId a) {
  Partition px = PartitionBy(inst, x);
  Partition pxa = Refine(inst, px, a);
  return px.Error() == pxa.Error();
}

}  // namespace retrust
