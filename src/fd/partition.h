// Equivalence-class partitions of tuples under attribute-set projections —
// the workhorse of exact FD checking and TANE-style discovery (paper §8.1
// uses an FD discovery pass to seed the experiments).
//
// We use the "error" measure from TANE: e(X) = Σ over classes (|c| - 1)
// = n - #classes. X -> A holds exactly iff e(X) = e(X ∪ {A}), i.e.
// refining by A does not split any class.

#ifndef RETRUST_FD_PARTITION_H_
#define RETRUST_FD_PARTITION_H_

#include <cstdint>
#include <vector>

#include "src/relational/dictionary.h"

namespace retrust {

/// Partition of tuple ids by equality on an attribute set.
struct Partition {
  /// Dense class label per tuple, in [0, num_classes).
  std::vector<int32_t> labels;
  int32_t num_classes = 0;

  /// TANE error: number of tuples minus number of classes.
  int64_t Error() const {
    return static_cast<int64_t>(labels.size()) - num_classes;
  }

  /// Classes with >= 2 tuples (the "stripped" representation).
  std::vector<std::vector<TupleId>> StrippedClasses() const;
};

/// Partition of `inst` on `attrs` (empty set => single class).
Partition PartitionBy(const EncodedInstance& inst, AttrSet attrs);

/// Refines `base` (a partition on X) by attribute `a`, producing the
/// partition on X ∪ {a}. O(n).
Partition Refine(const EncodedInstance& inst, const Partition& base,
                 AttrId a);

/// True iff X -> A holds exactly on `inst` (via partition refinement).
bool HoldsExactly(const EncodedInstance& inst, AttrSet x, AttrId a);

}  // namespace retrust

#endif  // RETRUST_FD_PARTITION_H_
