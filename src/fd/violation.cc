#include "src/fd/violation.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/exec/parallel_for.h"
#include "src/fd/partition.h"

namespace retrust {
namespace {

// CSR view of one partition's classes of size >= 2, in label order (labels
// are assigned in first-occurrence order, so class k's smallest tuple id is
// ascending in k — a deterministic work-unit order for the sharded phase).
// `members` holds each class's tuple ids ascending, classes back to back.
struct StrippedCsr {
  std::vector<TupleId> members;
  std::vector<int32_t> offsets;  ///< offsets[i]..offsets[i+1) in members

  int num_classes() const { return static_cast<int>(offsets.size()) - 1; }
};

StrippedCsr StripClasses(const Partition& p) {
  const int n = static_cast<int>(p.labels.size());
  std::vector<int32_t> counts(p.num_classes, 0);
  for (int32_t label : p.labels) ++counts[label];

  // Dense class ids for the classes that survive the >= 2 filter.
  std::vector<int32_t> slot(p.num_classes, -1);
  StrippedCsr csr;
  csr.offsets.push_back(0);
  int32_t total = 0;
  for (int32_t label = 0; label < p.num_classes; ++label) {
    if (counts[label] < 2) continue;
    slot[label] = csr.num_classes();
    total += counts[label];
    csr.offsets.push_back(total);
  }
  csr.members.resize(total);
  std::vector<int32_t> fill(csr.num_classes(), 0);
  for (TupleId t = 0; t < n; ++t) {
    const int32_t s = slot[p.labels[t]];
    if (s < 0) continue;
    csr.members[csr.offsets[s] + fill[s]++] = t;
  }
  return csr;
}

// Emits all violating pairs of one LHS class: sub-partition on the RHS
// code, then all cross-group pairs.
void EmitClassPairs(const int32_t* rhs_col, const TupleId* tuples, int count,
                    std::vector<Edge>* out) {
  std::unordered_map<int32_t, std::vector<TupleId>> groups;
  for (int i = 0; i < count; ++i) {
    groups[rhs_col[tuples[i]]].push_back(tuples[i]);
  }
  if (groups.size() < 2) return;
  for (auto it = groups.begin(); it != groups.end(); ++it) {
    auto jt = it;
    for (++jt; jt != groups.end(); ++jt) {
      for (TupleId u : it->second) {
        for (TupleId v : jt->second) out->emplace_back(u, v);
      }
    }
  }
}

}  // namespace

bool Satisfies(const EncodedInstance& inst, const FD& fd) {
  if (fd.IsTrivial()) return true;
  Partition p = PartitionBy(inst, fd.lhs);
  const int32_t* rhs_col = inst.ColumnData(fd.rhs);
  // X -> A holds iff every X-class sees a single RHS code: one streaming
  // pass recording the first code per class.
  std::vector<int32_t> first(p.num_classes);
  std::vector<char> seen(p.num_classes, 0);
  for (TupleId t = 0; t < inst.NumTuples(); ++t) {
    const int32_t label = p.labels[t];
    if (!seen[label]) {
      seen[label] = 1;
      first[label] = rhs_col[t];
    } else if (first[label] != rhs_col[t]) {
      return false;
    }
  }
  return true;
}

bool Satisfies(const EncodedInstance& inst, const FDSet& fds) {
  for (const FD& fd : fds.fds()) {
    if (!Satisfies(inst, fd)) return false;
  }
  return true;
}

std::vector<Edge> ViolatingPairs(const EncodedInstance& inst, const FD& fd) {
  return ViolatingPairs(inst, fd, nullptr);
}

std::vector<Edge> ViolatingPairs(const EncodedInstance& inst, const FD& fd,
                                 exec::ThreadPool* pool) {
  std::vector<Edge> out;
  if (fd.IsTrivial()) return out;
  // The violating pairs of X -> A are exactly the same-X-class,
  // different-A pairs, so the partition machinery (partition.h) does the
  // heavy lifting: no pair outside an X-class is ever looked at.
  const StrippedCsr csr = StripClasses(PartitionBy(inst, fd.lhs));
  const int32_t* rhs_col = inst.ColumnData(fd.rhs);

  // Sharded quadratic phase over classes: each chunk emits into its own
  // buffer; buffers are concatenated in chunk order and the final sort
  // makes the output canonical for any thread count.
  exec::ChunkPlan plan =
      exec::PlanChunks(static_cast<int64_t>(csr.num_classes()), pool);
  std::vector<std::vector<Edge>> buffers(
      static_cast<size_t>(std::max(plan.num_chunks, 0)));
  exec::ParallelFor(pool, plan,
                    [&](int64_t begin, int64_t end, int chunk) {
                      for (int64_t c = begin; c < end; ++c) {
                        EmitClassPairs(rhs_col,
                                       csr.members.data() + csr.offsets[c],
                                       csr.offsets[c + 1] - csr.offsets[c],
                                       &buffers[chunk]);
                      }
                    });
  size_t total = 0;
  for (const auto& b : buffers) total += b.size();
  out.reserve(total);
  for (const auto& b : buffers) out.insert(out.end(), b.begin(), b.end());
  std::sort(out.begin(), out.end());
  return out;
}

int64_t CountViolatingTuples(const EncodedInstance& inst, const FDSet& fds) {
  std::unordered_set<TupleId> violating;
  for (const FD& fd : fds.fds()) {
    if (fd.IsTrivial()) continue;
    const StrippedCsr csr = StripClasses(PartitionBy(inst, fd.lhs));
    const int32_t* rhs_col = inst.ColumnData(fd.rhs);
    for (int c = 0; c < csr.num_classes(); ++c) {
      const TupleId* tuples = csr.members.data() + csr.offsets[c];
      const int count = csr.offsets[c + 1] - csr.offsets[c];
      bool mixed = false;
      for (int i = 1; i < count && !mixed; ++i) {
        mixed = rhs_col[tuples[i]] != rhs_col[tuples[0]];
      }
      if (mixed) {
        for (int i = 0; i < count; ++i) violating.insert(tuples[i]);
      }
    }
  }
  return static_cast<int64_t>(violating.size());
}

}  // namespace retrust
