#include "src/fd/violation.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/exec/parallel_for.h"
#include "src/util/hash.h"

namespace retrust {
namespace {

// Groups tuple ids by their LHS projection codes.
std::unordered_map<std::vector<int32_t>, std::vector<TupleId>, CodeVectorHash>
PartitionByLhs(const EncodedInstance& inst, const FD& fd) {
  std::vector<AttrId> cols = fd.lhs.ToVector();
  std::unordered_map<std::vector<int32_t>, std::vector<TupleId>,
                     CodeVectorHash>
      parts;
  parts.reserve(static_cast<size_t>(inst.NumTuples()));
  std::vector<int32_t> key(cols.size());
  for (TupleId t = 0; t < inst.NumTuples(); ++t) {
    for (size_t i = 0; i < cols.size(); ++i) key[i] = inst.At(t, cols[i]);
    parts[key].push_back(t);
  }
  return parts;
}

// Emits all violating pairs of one LHS class: sub-partition on the RHS
// code, then all cross-group pairs.
void EmitClassPairs(const EncodedInstance& inst, const FD& fd,
                    const std::vector<TupleId>& tuples,
                    std::vector<Edge>* out) {
  std::unordered_map<int32_t, std::vector<TupleId>> groups;
  for (TupleId t : tuples) groups[inst.At(t, fd.rhs)].push_back(t);
  if (groups.size() < 2) return;
  for (auto it = groups.begin(); it != groups.end(); ++it) {
    auto jt = it;
    for (++jt; jt != groups.end(); ++jt) {
      for (TupleId u : it->second) {
        for (TupleId v : jt->second) out->emplace_back(u, v);
      }
    }
  }
}

}  // namespace

bool Satisfies(const EncodedInstance& inst, const FD& fd) {
  if (fd.IsTrivial()) return true;
  auto parts = PartitionByLhs(inst, fd);
  for (const auto& [key, tuples] : parts) {
    if (tuples.size() < 2) continue;
    int32_t rhs = inst.At(tuples[0], fd.rhs);
    for (size_t i = 1; i < tuples.size(); ++i) {
      if (inst.At(tuples[i], fd.rhs) != rhs) return false;
    }
  }
  return true;
}

bool Satisfies(const EncodedInstance& inst, const FDSet& fds) {
  for (const FD& fd : fds.fds()) {
    if (!Satisfies(inst, fd)) return false;
  }
  return true;
}

std::vector<Edge> ViolatingPairs(const EncodedInstance& inst, const FD& fd) {
  return ViolatingPairs(inst, fd, nullptr);
}

std::vector<Edge> ViolatingPairs(const EncodedInstance& inst, const FD& fd,
                                 exec::ThreadPool* pool) {
  std::vector<Edge> out;
  if (fd.IsTrivial()) return out;
  auto parts = PartitionByLhs(inst, fd);

  // Pull the candidate classes (>= 2 tuples) out of the hash map. Sort them
  // by their smallest tuple id so the work-unit order is independent of the
  // map's iteration order; the final edge sort makes the OUTPUT canonical
  // either way, but a stable unit order keeps chunk contents reproducible
  // run to run, which makes scheduling bugs observable in tests.
  std::vector<std::vector<TupleId>> classes;
  for (auto& [key, tuples] : parts) {
    if (tuples.size() < 2) continue;
    classes.push_back(std::move(tuples));
  }
  std::sort(classes.begin(), classes.end(),
            [](const std::vector<TupleId>& a, const std::vector<TupleId>& b) {
              return a.front() < b.front();
            });

  // Sharded quadratic phase: each chunk of classes emits into its own
  // buffer; buffers are concatenated in chunk order.
  exec::ChunkPlan plan =
      exec::PlanChunks(static_cast<int64_t>(classes.size()), pool);
  std::vector<std::vector<Edge>> buffers(
      static_cast<size_t>(std::max(plan.num_chunks, 0)));
  exec::ParallelFor(pool, plan,
                    [&](int64_t begin, int64_t end, int chunk) {
                      for (int64_t c = begin; c < end; ++c) {
                        EmitClassPairs(inst, fd, classes[c], &buffers[chunk]);
                      }
                    });
  size_t total = 0;
  for (const auto& b : buffers) total += b.size();
  out.reserve(total);
  for (const auto& b : buffers) out.insert(out.end(), b.begin(), b.end());
  std::sort(out.begin(), out.end());
  return out;
}

int64_t CountViolatingTuples(const EncodedInstance& inst, const FDSet& fds) {
  std::unordered_set<TupleId> violating;
  for (const FD& fd : fds.fds()) {
    if (fd.IsTrivial()) continue;
    auto parts = PartitionByLhs(inst, fd);
    for (const auto& [key, tuples] : parts) {
      if (tuples.size() < 2) continue;
      std::unordered_map<int32_t, int> groups;
      for (TupleId t : tuples) ++groups[inst.At(t, fd.rhs)];
      if (groups.size() >= 2) {
        for (TupleId t : tuples) violating.insert(t);
      }
    }
  }
  return static_cast<int64_t>(violating.size());
}

}  // namespace retrust
