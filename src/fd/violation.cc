#include "src/fd/violation.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/util/hash.h"

namespace retrust {
namespace {

// Groups tuple ids by their LHS projection codes.
std::unordered_map<std::vector<int32_t>, std::vector<TupleId>, CodeVectorHash>
PartitionByLhs(const EncodedInstance& inst, const FD& fd) {
  std::vector<AttrId> cols = fd.lhs.ToVector();
  std::unordered_map<std::vector<int32_t>, std::vector<TupleId>,
                     CodeVectorHash>
      parts;
  parts.reserve(static_cast<size_t>(inst.NumTuples()));
  std::vector<int32_t> key(cols.size());
  for (TupleId t = 0; t < inst.NumTuples(); ++t) {
    for (size_t i = 0; i < cols.size(); ++i) key[i] = inst.At(t, cols[i]);
    parts[key].push_back(t);
  }
  return parts;
}

}  // namespace

bool Satisfies(const EncodedInstance& inst, const FD& fd) {
  if (fd.IsTrivial()) return true;
  auto parts = PartitionByLhs(inst, fd);
  for (const auto& [key, tuples] : parts) {
    if (tuples.size() < 2) continue;
    int32_t rhs = inst.At(tuples[0], fd.rhs);
    for (size_t i = 1; i < tuples.size(); ++i) {
      if (inst.At(tuples[i], fd.rhs) != rhs) return false;
    }
  }
  return true;
}

bool Satisfies(const EncodedInstance& inst, const FDSet& fds) {
  for (const FD& fd : fds.fds()) {
    if (!Satisfies(inst, fd)) return false;
  }
  return true;
}

std::vector<Edge> ViolatingPairs(const EncodedInstance& inst, const FD& fd) {
  std::vector<Edge> out;
  if (fd.IsTrivial()) return out;
  auto parts = PartitionByLhs(inst, fd);
  for (const auto& [key, tuples] : parts) {
    if (tuples.size() < 2) continue;
    // Sub-partition on the RHS code.
    std::unordered_map<int32_t, std::vector<TupleId>> groups;
    for (TupleId t : tuples) groups[inst.At(t, fd.rhs)].push_back(t);
    if (groups.size() < 2) continue;
    // Emit all cross-group pairs.
    for (auto it = groups.begin(); it != groups.end(); ++it) {
      auto jt = it;
      for (++jt; jt != groups.end(); ++jt) {
        for (TupleId u : it->second) {
          for (TupleId v : jt->second) out.emplace_back(u, v);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

int64_t CountViolatingTuples(const EncodedInstance& inst, const FDSet& fds) {
  std::unordered_set<TupleId> violating;
  for (const FD& fd : fds.fds()) {
    if (fd.IsTrivial()) continue;
    auto parts = PartitionByLhs(inst, fd);
    for (const auto& [key, tuples] : parts) {
      if (tuples.size() < 2) continue;
      std::unordered_map<int32_t, int> groups;
      for (TupleId t : tuples) ++groups[inst.At(t, fd.rhs)];
      if (groups.size() >= 2) {
        for (TupleId t : tuples) violating.insert(t);
      }
    }
  }
  return static_cast<int64_t>(violating.size());
}

}  // namespace retrust
