// Level-wise exact FD discovery (TANE-style), used to set up experiments
// exactly as the paper does (§8.1: "use an FD discovery algorithm to find
// all the minimal FDs with a relatively small number of attributes in the
// LHS (less than 6)").

#ifndef RETRUST_FD_DISCOVERY_H_
#define RETRUST_FD_DISCOVERY_H_

#include <vector>

#include "src/fd/fdset.h"
#include "src/fd/partition.h"

namespace retrust {

/// Options for FD discovery.
struct DiscoveryOptions {
  /// Maximum LHS size of reported FDs (paper uses < 6).
  int max_lhs = 5;
  /// Attributes to consider (both sides). Empty = all attributes.
  AttrSet candidate_attrs;
  /// When true, skip LHS candidates that are superkeys (every FD from a
  /// superkey holds trivially and is rarely a useful data semantic).
  bool skip_superkeys = true;
};

/// Discovers all minimal exact FDs X -> A with |X| <= max_lhs over the
/// candidate attributes. Minimality: no Y ⊂ X with Y -> A also exact.
/// Deterministic output order (by RHS, then LHS mask).
FDSet DiscoverFDs(const EncodedInstance& inst, const DiscoveryOptions& opts);

}  // namespace retrust

#endif  // RETRUST_FD_DISCOVERY_H_
