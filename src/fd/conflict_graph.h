// Conflict graphs (paper Definition 6): vertices are tuples, edges connect
// tuple pairs violating at least one FD. Each edge carries the bitmask of
// violating FDs (Σ indices), matching the edge labels of Figure 2.

#ifndef RETRUST_FD_CONFLICT_GRAPH_H_
#define RETRUST_FD_CONFLICT_GRAPH_H_

#include <cstdint>
#include <vector>

#include "src/fd/fdset.h"
#include "src/fd/violation.h"
#include "src/graph/graph.h"
#include "src/relational/dictionary.h"

namespace retrust {

/// Conflict graph of an instance w.r.t. an FD set.
struct ConflictGraph {
  Graph graph;
  /// Parallel to graph.edges(): bit i set iff the pair violates fds.fd(i).
  std::vector<uint64_t> edge_fd_mask;

  size_t num_edges() const { return graph.num_edges(); }
};

/// Builds the conflict graph of `inst` w.r.t. `fds` (at most 64 FDs).
/// Edges are deduplicated across FDs and sorted (u, v) ascending, so all
/// downstream algorithms (greedy vertex cover in particular) are
/// deterministic.
ConflictGraph BuildConflictGraph(const EncodedInstance& inst,
                                 const FDSet& fds);

/// Sharded variant: per-FD violating-pair enumeration runs on `pool`
/// (nullable = serial); the cross-FD mask merge and the canonical edge sort
/// are unchanged, so the graph is BIT-IDENTICAL to the serial overload for
/// any thread count.
ConflictGraph BuildConflictGraph(const EncodedInstance& inst,
                                 const FDSet& fds, exec::ThreadPool* pool);

}  // namespace retrust

#endif  // RETRUST_FD_CONFLICT_GRAPH_H_
