// Difference sets (paper §5.2): for a conflict-graph edge (t_i, t_j), the
// set of attributes on which the two tuples disagree.
//
// Key property (the gc heuristic's atomicity trick): whether an edge
// violates an FD X -> A depends only on its difference set d —
// the pair agrees on X iff X ∩ d = ∅ and disagrees on A iff A ∈ d.
// DifferenceSetIndex therefore groups conflict edges by difference set and
// treats each group atomically.
//
// Two builders produce the same index (DESIGN.md "Blocked difference-set
// construction"):
//   * naive  — all O(n²) pairs through the conflict graph (the oracle);
//   * blocked — per-attribute equivalence-class partitions enumerate only
//     pairs that agree on at least one attribute, deduped by the
//     first-agreeing-attribute ownership rule; the residual pairs that
//     disagree EVERYWHERE are carried as a counted full-disagreement group
//     (edges materialized lazily, and only when a degenerate empty-LHS FD
//     makes them conflict edges at all).
// Both are bit-identical at any thread count; blocked is the default.

#ifndef RETRUST_FD_DIFFERENCE_SET_H_
#define RETRUST_FD_DIFFERENCE_SET_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/exec/options.h"
#include "src/fd/conflict_graph.h"

namespace retrust {

/// Difference set of a tuple pair: attributes with unequal codes. Exits as
/// soon as the set reaches all attributes.
AttrSet DiffSetOfPair(const EncodedInstance& inst, TupleId t1, TupleId t2);

/// Column-pointer overload for the blocked build and delta discovery:
/// `cols[a]` is inst.ColumnData(a), so each cell test is one indexed load
/// with no Flat(t, a) multiply.
AttrSet DiffSetOfPair(const int32_t* const* cols, int num_attrs, TupleId t1,
                      TupleId t2);

/// One group of conflict edges sharing a difference set.
///
/// A group is either MATERIALIZED (`counted == 0`: the pairs live in
/// `edges`, canonical ascending order) or COUNTED (`counted > 0`,
/// `edges` empty): the blocked build's full-disagreement group, whose
/// `counted` pairs all share diff = the whole attribute universe and are
/// never stored. δP and the heuristic only ever need a group's diff and
/// frequency, so counted groups flow through search unchanged; the few
/// consumers that need actual pairs (greedy-matching covers, data repair)
/// go through DifferenceSetIndex::EdgesForCover, which materializes them
/// lazily from the bound instance.
struct DiffSetGroup {
  AttrSet diff;
  std::vector<Edge> edges;
  int64_t counted = 0;  ///< pairs represented without edges (0 = none)

  /// Logical number of conflict pairs in the group — the heuristic's
  /// ranking key, independent of materialization.
  int64_t frequency() const {
    return static_cast<int64_t>(edges.size()) + counted;
  }
};

/// Per-phase observability of one index build (the --timing surface of
/// csv_repair_tool and the scaling bench).
struct DiffSetBuildStats {
  int64_t pairs_candidate = 0;     ///< pairs enumerated inside classes
  int64_t pairs_owned = 0;         ///< pairs passing the ownership rule
  int64_t pairs_materialized = 0;  ///< conflict edges stored in groups
  int64_t pairs_counted = 0;       ///< full-disagreement pairs NOT stored
  double partition_seconds = 0.0;  ///< per-attribute partition phase
  double enumerate_seconds = 0.0;  ///< in-class pair enumeration phase
  double group_seconds = 0.0;      ///< merge + group + rank phase
  double total_seconds = 0.0;
};

/// Which front door BuildDifferenceSetIndex uses. kNaive (all pairs via
/// the conflict graph) stays available as the oracle the blocked build is
/// tested and benchmarked against.
enum class DiffSetBuildMode { kBlocked, kNaive };

/// How a delta landed on a DifferenceSetIndex: the group-id translation
/// consumers of the canonical group order (violation table, cover memo)
/// need to stay warm, plus blast-radius counters for observability.
struct IndexPatch {
  /// Pre-patch group id -> post-patch group id for groups whose difference
  /// set AND edge list survived the delta untouched; -1 for groups that
  /// gained/lost edges or were dropped. Preserved groups keep their
  /// relative order (the (frequency, diff) sort key is a total order and
  /// their keys did not change), which is what lets cover-memo entries
  /// over preserved groups be remapped instead of recomputed.
  std::vector<int32_t> old_to_new;
  int64_t edges_removed = 0;
  int64_t edges_added = 0;
  int groups_preserved = 0;  ///< old groups with old_to_new[g] >= 0
  int groups_changed = 0;    ///< post-patch groups that are new or changed
};

/// Conflict edges grouped by difference set, ordered by descending edge
/// frequency (ties: smaller attribute mask first) — the order in which the
/// heuristic prefers to pick them.
class DifferenceSetIndex {
 public:
  DifferenceSetIndex() = default;

  /// Builds the index from a conflict graph (the naive front door).
  DifferenceSetIndex(const EncodedInstance& inst, const ConflictGraph& cg);

  /// Sharded variant: per-edge difference sets are computed on `pool`
  /// (nullable = serial) by index, then grouped serially in the graph's
  /// canonical edge order — the index is BIT-IDENTICAL to the serial
  /// overload for any thread count.
  DifferenceSetIndex(const EncodedInstance& inst, const ConflictGraph& cg,
                     exec::ThreadPool* pool);

  /// Restores an index from its serialized groups (src/persist/). The
  /// groups must already be in the canonical (descending frequency,
  /// smaller mask) order a live index produced — snapshots save them in
  /// that order and the loader trusts it (the file checksum guards against
  /// corruption).
  explicit DifferenceSetIndex(std::vector<DiffSetGroup> groups);

  DifferenceSetIndex(const DifferenceSetIndex& o);
  DifferenceSetIndex& operator=(const DifferenceSetIndex& o);
  DifferenceSetIndex(DifferenceSetIndex&&) = default;
  DifferenceSetIndex& operator=(DifferenceSetIndex&&) = default;

  /// Incrementally maintains the index after `inst` had a delta applied
  /// (delta.h). `dirty` is the plan's post-delta dirty id set (ascending)
  /// and `remap` its old->new id map; the index must have been built over
  /// the pre-delta instance with the same `sigma`. Surviving clean edges
  /// are kept as-is, only pairs with a dirty endpoint are (re)examined —
  /// O(Δ·n·m) comparisons sharded on `pool` (nullable = serial) — and the
  /// result is BIT-IDENTICAL to BuildDifferenceSetIndex over the
  /// post-delta instance for any thread count (the index is a pure
  /// function of {pair -> difference set}, and the delta only changes
  /// pairs with a dirty endpoint).
  ///
  /// Precondition: no counted groups (throws std::logic_error otherwise).
  /// A counted group's pre-delta pair population is not recoverable from
  /// the post-delta instance, so in the degenerate empty-LHS-FD regime
  /// FdSearchContext::ApplyDelta rebuilds the index with the blocked
  /// builder instead of patching it.
  IndexPatch ApplyDelta(const EncodedInstance& inst, const FDSet& sigma,
                        const std::vector<TupleId>& dirty,
                        const std::vector<TupleId>& remap,
                        exec::ThreadPool* pool);

  int size() const { return static_cast<int>(groups_.size()); }
  bool empty() const { return groups_.empty(); }
  const DiffSetGroup& group(int i) const { return groups_[i]; }
  const std::vector<DiffSetGroup>& groups() const { return groups_; }

  /// True iff any group is counted (edges not materialized).
  bool HasCountedGroups() const;

  /// Binds the instance counted groups materialize their edges from.
  /// Must be called (with the instance the index was built over) before
  /// EdgesForCover touches a counted group; indexes without counted groups
  /// never need it. The instance must outlive the index's use and must not
  /// mutate while bound (a delta rebuilds the index, re-binding fresh).
  void BindInstance(const EncodedInstance* inst) { bound_ = inst; }

  /// The group's conflict pairs in canonical ascending order — for
  /// materialized groups a reference to `edges`; for counted groups the
  /// lazily materialized full-disagreement pair list (cached; O(n²·m) on
  /// first touch, which only happens in the degenerate empty-LHS-FD regime
  /// where the naive build was quadratic anyway). Thread-safe; the
  /// returned reference stays valid for the index's lifetime.
  const std::vector<Edge>& EdgesForCover(int g) const;

  /// Indices of groups whose difference set violates at least one FD of
  /// `fds` (i.e. groups still in conflict under a candidate Σ').
  std::vector<int> ViolatingGroups(const FDSet& fds) const;

  std::string ToString(const Schema& schema) const;

 private:
  /// Folds a naive build's universe-diff group (pairs disagreeing on every
  /// attribute) into counted form so both builders emit identical indexes.
  void CanonicalizeCountedGroups(int num_attrs);

  std::vector<DiffSetGroup> groups_;
  const EncodedInstance* bound_ = nullptr;
  /// Lazy edge lists for counted groups, keyed by group id. Heap-pinned so
  /// the index stays movable and EdgesForCover's references survive moves;
  /// allocated whenever the index holds a counted group.
  struct LazyEdges {
    std::mutex mu;
    std::unordered_map<int, std::vector<Edge>> by_group;
  };
  mutable std::unique_ptr<LazyEdges> lazy_;
};

/// True iff difference set `diff` violates at least one FD in `fds`.
bool DiffSetViolates(AttrSet diff, const FDSet& fds);

/// The blocked front door (ROADMAP item 1): per-attribute partitions
/// (PartitionBy) restrict pair enumeration to equivalence classes, the
/// first-agreeing-attribute ownership rule emits each agree-somewhere pair
/// exactly once, and the residual disagree-everywhere pairs are counted,
/// not materialized. Work is sharded over (attribute, class) units on
/// `pool` (nullable = serial) with canonical merge order — BIT-IDENTICAL
/// to the naive build for any thread count. O(Σ_classes |c|²·m) instead of
/// O(n²·m); sub-quadratic whenever per-attribute classes stay small.
DifferenceSetIndex BuildDifferenceSetIndexBlocked(
    const EncodedInstance& inst, const FDSet& sigma, exec::ThreadPool* pool,
    DiffSetBuildStats* stats = nullptr);

/// Builds the difference-set index of (inst, sigma), sharded on a
/// short-lived pool per `eopts` (serial options spin up no pool). The
/// result is BIT-IDENTICAL for any thread count and for either build mode.
/// Shared by the FD-modification search and Algorithm 4's data-repair
/// pass. `stats`, when non-null, receives the build's per-phase breakdown.
DifferenceSetIndex BuildDifferenceSetIndex(
    const EncodedInstance& inst, const FDSet& sigma,
    const exec::Options& eopts,
    DiffSetBuildMode mode = DiffSetBuildMode::kBlocked,
    DiffSetBuildStats* stats = nullptr);

}  // namespace retrust

#endif  // RETRUST_FD_DIFFERENCE_SET_H_
