// Difference sets (paper §5.2): for a conflict-graph edge (t_i, t_j), the
// set of attributes on which the two tuples disagree.
//
// Key property (the gc heuristic's atomicity trick): whether an edge
// violates an FD X -> A depends only on its difference set d —
// the pair agrees on X iff X ∩ d = ∅ and disagrees on A iff A ∈ d.
// DifferenceSetIndex therefore groups conflict edges by difference set and
// treats each group atomically.

#ifndef RETRUST_FD_DIFFERENCE_SET_H_
#define RETRUST_FD_DIFFERENCE_SET_H_

#include <string>
#include <vector>

#include "src/exec/options.h"
#include "src/fd/conflict_graph.h"

namespace retrust {

/// Difference set of a tuple pair: attributes with unequal codes.
AttrSet DiffSetOfPair(const EncodedInstance& inst, TupleId t1, TupleId t2);

/// One group of conflict edges sharing a difference set.
struct DiffSetGroup {
  AttrSet diff;
  std::vector<Edge> edges;

  int64_t frequency() const { return static_cast<int64_t>(edges.size()); }
};

/// How a delta landed on a DifferenceSetIndex: the group-id translation
/// consumers of the canonical group order (violation table, cover memo)
/// need to stay warm, plus blast-radius counters for observability.
struct IndexPatch {
  /// Pre-patch group id -> post-patch group id for groups whose difference
  /// set AND edge list survived the delta untouched; -1 for groups that
  /// gained/lost edges or were dropped. Preserved groups keep their
  /// relative order (the (frequency, diff) sort key is a total order and
  /// their keys did not change), which is what lets cover-memo entries
  /// over preserved groups be remapped instead of recomputed.
  std::vector<int32_t> old_to_new;
  int64_t edges_removed = 0;
  int64_t edges_added = 0;
  int groups_preserved = 0;  ///< old groups with old_to_new[g] >= 0
  int groups_changed = 0;    ///< post-patch groups that are new or changed
};

/// Conflict edges grouped by difference set, ordered by descending edge
/// frequency (ties: smaller attribute mask first) — the order in which the
/// heuristic prefers to pick them.
class DifferenceSetIndex {
 public:
  DifferenceSetIndex() = default;

  /// Builds the index from a conflict graph.
  DifferenceSetIndex(const EncodedInstance& inst, const ConflictGraph& cg);

  /// Sharded variant: per-edge difference sets are computed on `pool`
  /// (nullable = serial) by index, then grouped serially in the graph's
  /// canonical edge order — the index is BIT-IDENTICAL to the serial
  /// overload for any thread count.
  DifferenceSetIndex(const EncodedInstance& inst, const ConflictGraph& cg,
                     exec::ThreadPool* pool);

  /// Restores an index from its serialized groups (src/persist/). The
  /// groups must already be in the canonical (descending frequency,
  /// smaller mask) order a live index produced — snapshots save them in
  /// that order and the loader trusts it (the file checksum guards against
  /// corruption).
  explicit DifferenceSetIndex(std::vector<DiffSetGroup> groups)
      : groups_(std::move(groups)) {}

  /// Incrementally maintains the index after `inst` had a delta applied
  /// (delta.h). `dirty` is the plan's post-delta dirty id set (ascending)
  /// and `remap` its old->new id map; the index must have been built over
  /// the pre-delta instance with the same `sigma`. Surviving clean edges
  /// are kept as-is, only pairs with a dirty endpoint are (re)examined —
  /// O(Δ·n·m) comparisons sharded on `pool` (nullable = serial) — and the
  /// result is BIT-IDENTICAL to BuildDifferenceSetIndex over the
  /// post-delta instance for any thread count (the index is a pure
  /// function of {pair -> difference set}, and the delta only changes
  /// pairs with a dirty endpoint).
  IndexPatch ApplyDelta(const EncodedInstance& inst, const FDSet& sigma,
                        const std::vector<TupleId>& dirty,
                        const std::vector<TupleId>& remap,
                        exec::ThreadPool* pool);

  int size() const { return static_cast<int>(groups_.size()); }
  bool empty() const { return groups_.empty(); }
  const DiffSetGroup& group(int i) const { return groups_[i]; }
  const std::vector<DiffSetGroup>& groups() const { return groups_; }

  /// Indices of groups whose difference set violates at least one FD of
  /// `fds` (i.e. groups still in conflict under a candidate Σ').
  std::vector<int> ViolatingGroups(const FDSet& fds) const;

  std::string ToString(const Schema& schema) const;

 private:
  std::vector<DiffSetGroup> groups_;
};

/// True iff difference set `diff` violates at least one FD in `fds`.
bool DiffSetViolates(AttrSet diff, const FDSet& fds);

/// Builds the conflict graph of (inst, sigma) and its difference-set index
/// with both constructions sharded on a short-lived pool per `eopts`
/// (serial options spin up no pool). The result is BIT-IDENTICAL for any
/// thread count. Shared by the FD-modification search and Algorithm 4's
/// data-repair pass.
DifferenceSetIndex BuildDifferenceSetIndex(const EncodedInstance& inst,
                                           const FDSet& sigma,
                                           const exec::Options& eopts);

}  // namespace retrust

#endif  // RETRUST_FD_DIFFERENCE_SET_H_
