#include "src/fd/violation_table.h"

#include <stdexcept>

#include "src/exec/parallel_for.h"

namespace retrust {

ViolationTable::ViolationTable(const FDSet& sigma,
                               const DifferenceSetIndex& index,
                               exec::ThreadPool* pool)
    : num_fds_(sigma.size()), num_groups_(index.size()) {
  if (num_fds_ > 64) {
    throw std::invalid_argument("ViolationTable supports at most 64 FDs");
  }
  fd_mask_.assign(num_groups_, 0);
  diff_bits_.assign(num_groups_, 0);
  // Sharded per-group incidence: each group writes its own disjoint slot,
  // so the sharded build is trivially identical to the serial one.
  exec::ParallelFor(pool, num_groups_,
                    [&](int64_t begin, int64_t end, int /*chunk*/) {
                      for (int64_t g = begin; g < end; ++g) {
                        AttrSet diff = index.group(static_cast<int>(g)).diff;
                        diff_bits_[g] = diff.bits();
                        uint64_t mask = 0;
                        for (int i = 0; i < num_fds_; ++i) {
                          const FD& fd = sigma.fd(i);
                          if (diff.Contains(fd.rhs) &&
                              !fd.lhs.Intersects(diff)) {
                            mask |= uint64_t{1} << i;
                          }
                        }
                        fd_mask_[g] = mask;
                      }
                    });
  // Serial per-FD candidate assembly in canonical group order.
  cand_groups_.resize(num_fds_);
  cand_mask_.assign(num_fds_, GroupBitset(num_groups_));
  for (int g = 0; g < num_groups_; ++g) {
    uint64_t mask = fd_mask_[g];
    while (mask != 0) {
      int i = std::countr_zero(mask);
      mask &= mask - 1;
      cand_groups_[i].push_back(g);
      cand_mask_[i].Set(g);
    }
  }
}

void ViolationTable::ViolatedGroups(const std::vector<AttrSet>& ext,
                                    GroupBitset* out) const {
  out->Reset(num_groups_);
  for (int i = 0; i < num_fds_; ++i) {
    if (ext[i].Empty()) {
      out->OrWith(cand_mask_[i]);
      continue;
    }
    const uint64_t e = ext[i].bits();
    for (int32_t g : cand_groups_[i]) {
      if ((e & diff_bits_[g]) == 0) out->Set(g);
    }
  }
}

}  // namespace retrust
