#include "src/fd/violation_table.h"

#include <stdexcept>

#include "src/exec/parallel_for.h"

namespace retrust {

namespace {

/// The state-independent incidence of one difference set with Σ:
/// bit i set iff A_i ∈ d ∧ X_i ∩ d = ∅.
uint64_t IncidenceMask(const FDSet& sigma, AttrSet diff) {
  uint64_t mask = 0;
  for (int i = 0; i < sigma.size(); ++i) {
    const FD& fd = sigma.fd(i);
    if (diff.Contains(fd.rhs) && !fd.lhs.Intersects(diff)) {
      mask |= uint64_t{1} << i;
    }
  }
  return mask;
}

}  // namespace

ViolationTable::ViolationTable(const FDSet& sigma,
                               const DifferenceSetIndex& index,
                               exec::ThreadPool* pool)
    : num_fds_(sigma.size()), num_groups_(index.size()) {
  if (num_fds_ > 64) {
    throw std::invalid_argument("ViolationTable supports at most 64 FDs");
  }
  fd_mask_.assign(num_groups_, 0);
  diff_bits_.assign(num_groups_, 0);
  // Sharded per-group incidence: each group writes its own disjoint slot,
  // so the sharded build is trivially identical to the serial one.
  exec::ParallelFor(pool, num_groups_,
                    [&](int64_t begin, int64_t end, int /*chunk*/) {
                      for (int64_t g = begin; g < end; ++g) {
                        AttrSet diff = index.group(static_cast<int>(g)).diff;
                        diff_bits_[g] = diff.bits();
                        fd_mask_[g] = IncidenceMask(sigma, diff);
                      }
                    });
  RebuildCandidates();
}

ViolationTable::ViolationTable(const FDSet& sigma,
                               const DifferenceSetIndex& index,
                               std::vector<uint64_t> fd_mask_rows)
    : num_fds_(sigma.size()), num_groups_(index.size()) {
  if (num_fds_ > 64) {
    throw std::invalid_argument("ViolationTable supports at most 64 FDs");
  }
  if (fd_mask_rows.size() != static_cast<size_t>(num_groups_)) {
    throw std::invalid_argument(
        "restored incidence rows do not match the index's group count");
  }
  fd_mask_ = std::move(fd_mask_rows);
  diff_bits_.resize(num_groups_);
  for (int g = 0; g < num_groups_; ++g) {
    diff_bits_[g] = index.group(g).diff.bits();
  }
  RebuildCandidates();
}

int ViolationTable::ApplyPatch(const FDSet& sigma,
                               const DifferenceSetIndex& index,
                               const std::vector<int32_t>& old_to_new,
                               exec::ThreadPool* pool) {
  // Preserved groups carry their incidence row over (it depends only on
  // the difference set, which "preserved" implies is unchanged).
  std::vector<uint64_t> fd_mask(index.size(), 0);
  std::vector<uint64_t> diff_bits(index.size(), 0);
  std::vector<char> filled(index.size(), 0);
  for (size_t g = 0; g < old_to_new.size(); ++g) {
    int32_t ng = old_to_new[g];
    if (ng < 0) continue;
    fd_mask[ng] = fd_mask_[g];
    diff_bits[ng] = diff_bits_[g];
    filled[ng] = 1;
  }
  int recomputed = 0;
  for (char f : filled) recomputed += f == 0;
  // Changed/new groups recompute into disjoint slots (deterministic for
  // any thread count, like the constructor).
  exec::ParallelFor(pool, index.size(),
                    [&](int64_t begin, int64_t end, int /*chunk*/) {
                      for (int64_t g = begin; g < end; ++g) {
                        if (filled[g]) continue;
                        AttrSet diff = index.group(static_cast<int>(g)).diff;
                        diff_bits[g] = diff.bits();
                        fd_mask[g] = IncidenceMask(sigma, diff);
                      }
                    });
  num_groups_ = index.size();
  fd_mask_ = std::move(fd_mask);
  diff_bits_ = std::move(diff_bits);
  RebuildCandidates();
  return recomputed;
}

void ViolationTable::RebuildCandidates() {
  cand_groups_.assign(num_fds_, {});
  cand_mask_.assign(num_fds_, GroupBitset(num_groups_));
  for (int g = 0; g < num_groups_; ++g) {
    uint64_t mask = fd_mask_[g];
    while (mask != 0) {
      int i = std::countr_zero(mask);
      mask &= mask - 1;
      cand_groups_[i].push_back(g);
      cand_mask_[i].Set(g);
    }
  }
}

void ViolationTable::ViolatedGroups(const std::vector<AttrSet>& ext,
                                    GroupBitset* out) const {
  out->Reset(num_groups_);
  for (int i = 0; i < num_fds_; ++i) {
    if (ext[i].Empty()) {
      out->OrWith(cand_mask_[i]);
      continue;
    }
    const uint64_t e = ext[i].bits();
    for (int32_t g : cand_groups_[i]) {
      if ((e & diff_bits_[g]) == 0) out->Set(g);
    }
  }
}

}  // namespace retrust
