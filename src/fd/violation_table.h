// The group×FD violation incidence table (the δP evaluation pipeline's
// first stage; see DESIGN.md).
//
// Whether difference-set group g violates FD i of a relaxation Σ' factors
// into a state-independent part and a state-dependent part:
//
//   violates(g, i, S)  ⟺  A_i ∈ d_g ∧ X_i ∩ d_g = ∅      (precomputed here)
//                        ∧ Y_i ∩ d_g = ∅                  (two word ops)
//
// where d_g is the group's difference set and Y_i = S.ext[i]. The table
// stores, per group, the mask of FDs whose precomputed part holds plus the
// "deactivating" attribute mask d_g — so "is group g violated under S"
// becomes a handful of bitset tests instead of an FD-set scan, and the
// full violated-group set of a state materializes as a compact GroupBitset
// (the cover memo's cache key).
//
// Layering: the table takes raw extension vectors (std::vector<AttrSet>),
// not SearchState — fd/ sits below repair/; the repair-side DeltaPEvaluator
// adapts.

#ifndef RETRUST_FD_VIOLATION_TABLE_H_
#define RETRUST_FD_VIOLATION_TABLE_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "src/fd/difference_set.h"
#include "src/graph/group_bitset.h"

namespace retrust {

/// Precomputed incidence between difference-set groups and the FDs of one
/// Σ (at most 64 FDs, matching the conflict graph's edge-mask cap). Every
/// const method is thread-safe (the table is immutable after build).
class ViolationTable {
 public:
  ViolationTable() = default;

  /// Builds the incidence table over `index`'s groups. `pool` shards the
  /// per-group incidence computation (nullable = serial); the table is
  /// BIT-IDENTICAL for any thread count — per-group slots are disjoint and
  /// the per-FD candidate assembly runs serially in canonical group order.
  ViolationTable(const FDSet& sigma, const DifferenceSetIndex& index,
                 exec::ThreadPool* pool = nullptr);

  /// Restores a table from its serialized per-group incidence rows
  /// (src/persist/): `fd_mask_rows[g]` is the precomputed FD mask of
  /// index group g, the deactivating attribute masks are re-read from the
  /// index, and the per-FD candidate assembly reruns in canonical order.
  /// Bit-identical to a from-scratch build over the same (Σ, index).
  /// Throws std::invalid_argument when the row count does not match the
  /// index.
  ViolationTable(const FDSet& sigma, const DifferenceSetIndex& index,
                 std::vector<uint64_t> fd_mask_rows);

  /// Incrementally maintains the table after `index` was patched by a
  /// delta (same `sigma` as the build). A group's incidence row is a pure
  /// function of (difference set, Σ), so preserved groups copy their old
  /// rows through `old_to_new` and only changed/new groups recompute
  /// (sharded on `pool`, nullable = serial); the per-FD candidate
  /// assembly reruns in the new canonical order. Bit-identical to a
  /// from-scratch build for any thread count. Returns the number of
  /// groups whose incidence was recomputed. Requires external exclusion
  /// against concurrent readers (the session's version layer provides it).
  int ApplyPatch(const FDSet& sigma, const DifferenceSetIndex& index,
                 const std::vector<int32_t>& old_to_new,
                 exec::ThreadPool* pool = nullptr);

  int num_fds() const { return num_fds_; }
  int num_groups() const { return num_groups_; }

  /// True iff group g is violated under extensions `ext` (`ext.size()`
  /// must equal num_fds()). Identical to the legacy FD-set scan
  ///   ∃i: A_i ∈ d_g ∧ (X_i ∪ Y_i) ∩ d_g = ∅.
  bool GroupViolated(int g, const std::vector<AttrSet>& ext) const {
    uint64_t fds = fd_mask_[g];
    const uint64_t d = diff_bits_[g];
    while (fds != 0) {
      int i = std::countr_zero(fds);
      fds &= fds - 1;
      if ((ext[i].bits() & d) == 0) return true;
    }
    return false;
  }

  /// Fills `out` with the violated-group set under `ext` (resized to
  /// num_groups()). FDs with empty extensions contribute their whole
  /// candidate mask in one OR pass; the rest scan their candidate list.
  void ViolatedGroups(const std::vector<AttrSet>& ext,
                      GroupBitset* out) const;

  /// Groups that can violate FD i regardless of extensions (Y_i = ∅).
  const GroupBitset& candidates(int i) const { return cand_mask_[i]; }

  /// Per-group precomputed FD masks in canonical group order — the
  /// serialization surface of src/persist/ (the deactivating attribute
  /// masks are derivable from the difference-set index and are not saved).
  const std::vector<uint64_t>& fd_masks() const { return fd_mask_; }

 private:
  /// Rebuilds cand_groups_/cand_mask_ from fd_mask_ serially in canonical
  /// group order (shared by the constructor and ApplyPatch).
  void RebuildCandidates();

  int num_fds_ = 0;
  int num_groups_ = 0;
  std::vector<uint64_t> fd_mask_;    // per group: FDs it can violate
  std::vector<uint64_t> diff_bits_;  // per group: d_g's attribute mask
  std::vector<std::vector<int32_t>> cand_groups_;  // per FD, ascending ids
  std::vector<GroupBitset> cand_mask_;             // per FD, same content
};

}  // namespace retrust

#endif  // RETRUST_FD_VIOLATION_TABLE_H_
