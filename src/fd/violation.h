// FD satisfaction checks and violating-pair enumeration over encoded
// instances.
//
// The kernels follow the paper's partition scheme (§6): hash-partition the
// tuples on the FD's LHS codes, sub-partition each class on the RHS code;
// an FD is violated exactly by pairs in the same partition but different
// sub-partitions. Variable codes participate like constants (a variable
// equals only itself), so V-instance semantics hold throughout.

#ifndef RETRUST_FD_VIOLATION_H_
#define RETRUST_FD_VIOLATION_H_

#include <vector>

#include "src/fd/fdset.h"
#include "src/graph/graph.h"
#include "src/relational/dictionary.h"

namespace retrust::exec {
class ThreadPool;
}  // namespace retrust::exec

namespace retrust {

/// True iff `inst` |= `fd`.
bool Satisfies(const EncodedInstance& inst, const FD& fd);

/// True iff `inst` |= every FD in `fds`.
bool Satisfies(const EncodedInstance& inst, const FDSet& fds);

/// All tuple pairs violating `fd` (u < v, lexicographic order). May be
/// quadratic in the size of a violating partition; intended for tests,
/// examples, and conflict-graph construction on realistic workloads.
std::vector<Edge> ViolatingPairs(const EncodedInstance& inst, const FD& fd);

/// Sharded variant: the quadratic pair-emission phase is block-partitioned
/// over the violating LHS classes and run on `pool` (nullable = serial).
/// Per-chunk edge buffers are merged in chunk order and the result is
/// canonically sorted, so the output is BIT-IDENTICAL to the serial
/// overload for any thread count.
std::vector<Edge> ViolatingPairs(const EncodedInstance& inst, const FD& fd,
                                 exec::ThreadPool* pool);

/// Number of tuples involved in at least one violation of `fds`.
int64_t CountViolatingTuples(const EncodedInstance& inst, const FDSet& fds);

}  // namespace retrust

#endif  // RETRUST_FD_VIOLATION_H_
