// Functional dependencies X -> A (single RHS attribute, paper §2).

#ifndef RETRUST_FD_FD_H_
#define RETRUST_FD_FD_H_

#include <string>

#include "src/relational/schema.h"

namespace retrust {

/// A functional dependency X -> A. The paper normalizes every FD to a single
/// right-hand-side attribute.
struct FD {
  AttrSet lhs;
  AttrId rhs = -1;

  FD() = default;
  FD(AttrSet l, AttrId r) : lhs(l), rhs(r) {}

  /// Trivial iff A ∈ X.
  bool IsTrivial() const { return lhs.Contains(rhs); }

  /// True iff a tuple pair whose difference set is `diff` violates this FD:
  /// the pair agrees on X (X ∩ diff = ∅) and disagrees on A (A ∈ diff).
  /// This is the atomicity property behind the gc heuristic (§5.2).
  bool ViolatedByDiffSet(AttrSet diff) const {
    return !lhs.Intersects(diff) && diff.Contains(rhs);
  }

  /// Renders as "A,B->C" using schema names.
  std::string ToString(const Schema& schema) const;
  /// Renders as "{0,1}->2".
  std::string ToString() const;

  /// Parses "A,B->C" against `schema`; throws std::invalid_argument on
  /// unknown attributes or malformed syntax.
  static FD Parse(const std::string& text, const Schema& schema);

  friend bool operator==(const FD& a, const FD& b) {
    return a.lhs == b.lhs && a.rhs == b.rhs;
  }
  friend bool operator<(const FD& a, const FD& b) {
    return a.rhs != b.rhs ? a.rhs < b.rhs : a.lhs < b.lhs;
  }
};

}  // namespace retrust

#endif  // RETRUST_FD_FD_H_
