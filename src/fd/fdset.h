// Sets of FDs with closure/implication reasoning and the LHS-extension
// relaxation the paper's repairs use.
//
// FD-set repairs Σ' relax Σ by appending attributes to LHSs (paper §3.1):
// Σ' = { Y_i X_i -> A_i } for extensions Y_i ⊆ R \ X_i A_i. FDSet keeps the
// positional mapping between Σ and Σ' (|Σ'| = |Σ| with duplicates allowed,
// as the paper assumes).

#ifndef RETRUST_FD_FDSET_H_
#define RETRUST_FD_FDSET_H_

#include <string>
#include <vector>

#include "src/fd/fd.h"

namespace retrust {

/// An ordered list of FDs over one schema.
class FDSet {
 public:
  FDSet() = default;
  explicit FDSet(std::vector<FD> fds) : fds_(std::move(fds)) {}

  /// Parses a list like {"A,B->C", "D->E"}.
  static FDSet Parse(const std::vector<std::string>& texts,
                     const Schema& schema);

  int size() const { return static_cast<int>(fds_.size()); }
  bool empty() const { return fds_.empty(); }
  const FD& fd(int i) const { return fds_[i]; }
  const std::vector<FD>& fds() const { return fds_; }

  void Add(const FD& fd) { fds_.push_back(fd); }

  /// Closure of X under this FD set (Armstrong axioms fixpoint).
  AttrSet Closure(AttrSet x) const;

  /// True iff this FD set logically implies `fd`.
  bool Implies(const FD& fd) const { return Closure(fd.lhs).Contains(fd.rhs); }

  /// True iff no FD is trivial, no FD has an extraneous LHS attribute, and
  /// no FD is implied by the others (the paper's minimality assumption §2).
  bool IsMinimal() const;

  /// Returns a logically equivalent minimal cover (single-RHS form).
  FDSet Minimize() const;

  /// Applies LHS extensions: result[i] = (lhs ∪ ext[i]) -> rhs. Extensions
  /// must avoid the FD's own RHS. This is Δc application (paper §3.1).
  FDSet Extend(const std::vector<AttrSet>& extensions) const;

  /// The extension vector Δc(Σ, Σ') taking *this to `relaxed`
  /// (positional). Throws std::invalid_argument if `relaxed` is not a
  /// positional LHS-extension of *this.
  std::vector<AttrSet> ExtensionsTo(const FDSet& relaxed) const;

  std::string ToString(const Schema& schema) const;

  friend bool operator==(const FDSet& a, const FDSet& b) {
    return a.fds_ == b.fds_;
  }

 private:
  std::vector<FD> fds_;
};

}  // namespace retrust

#endif  // RETRUST_FD_FDSET_H_
