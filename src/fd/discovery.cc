#include "src/fd/discovery.h"

#include <algorithm>
#include <unordered_map>

namespace retrust {
namespace {

// Enumerates all size-k subsets of `attrs` (ids ascending within a subset).
void EnumerateSubsets(const std::vector<AttrId>& attrs, int k, size_t start,
                      AttrSet current, std::vector<AttrSet>* out) {
  if (k == 0) {
    out->push_back(current);
    return;
  }
  for (size_t i = start; i + k <= attrs.size(); ++i) {
    AttrSet next = current;
    next.Add(attrs[i]);
    EnumerateSubsets(attrs, k - 1, i + 1, next, out);
  }
}

}  // namespace

FDSet DiscoverFDs(const EncodedInstance& inst, const DiscoveryOptions& opts) {
  AttrSet cand = opts.candidate_attrs.Empty()
                     ? inst.schema().Universe()
                     : opts.candidate_attrs;
  std::vector<AttrId> attrs = cand.ToVector();
  int n = inst.NumTuples();

  std::vector<FD> found;
  // found_by_rhs[a] = LHS masks of minimal FDs discovered for RHS a.
  std::unordered_map<AttrId, std::vector<AttrSet>> found_by_rhs;

  auto is_minimal_candidate = [&](AttrSet x, AttrId a) {
    auto it = found_by_rhs.find(a);
    if (it == found_by_rhs.end()) return true;
    for (AttrSet y : it->second) {
      if (y.SubsetOf(x)) return false;  // a smaller LHS already works
    }
    return true;
  };

  for (int level = 0; level <= opts.max_lhs; ++level) {
    std::vector<AttrSet> candidates;
    EnumerateSubsets(attrs, level, 0, AttrSet(), &candidates);
    for (AttrSet x : candidates) {
      Partition px = PartitionBy(inst, x);
      if (opts.skip_superkeys && px.num_classes == n && n > 0 &&
          !x.Empty()) {
        continue;  // superkey: all refinements trivial
      }
      for (AttrId a : cand.Minus(x)) {
        if (!is_minimal_candidate(x, a)) continue;
        Partition pxa = Refine(inst, px, a);
        if (px.Error() == pxa.Error()) {
          found.emplace_back(x, a);
          found_by_rhs[a].push_back(x);
        }
      }
    }
  }
  std::sort(found.begin(), found.end());
  return FDSet(std::move(found));
}

}  // namespace retrust
