// Execution options threaded through the repair APIs.
//
// The exec/ subsystem is split in two dependency levels: the primitives
// (options, ThreadPool, ParallelFor) depend on nothing but the standard
// library and are usable from any layer (src/fd/ uses them for sharded
// violation detection); the Sweep scheduler (sweep.h) sits above
// src/repair/. See DESIGN.md for the determinism contract.

#ifndef RETRUST_EXEC_OPTIONS_H_
#define RETRUST_EXEC_OPTIONS_H_

#include <thread>

namespace retrust::exec {

/// How many threads a parallel kernel may use. The contract everywhere in
/// this codebase: results are bit-identical for ANY value of num_threads —
/// parallelism changes wall-clock time, never output.
struct Options {
  /// 1 = serial (no pool is created); 0 = std::thread::hardware_concurrency.
  int num_threads = 1;

  /// The thread count after resolving 0 and clamping to >= 1.
  int ResolvedThreads() const {
    if (num_threads > 0) return num_threads;
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }

  /// True when a pool should be spun up at all.
  bool Parallel() const { return ResolvedThreads() > 1; }
};

}  // namespace retrust::exec

#endif  // RETRUST_EXEC_OPTIONS_H_
