#include "src/exec/thread_pool.h"

#include <cassert>
#include <utility>

namespace retrust::exec {

namespace {
thread_local const ThreadPool* t_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(!shutdown_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::OnWorkerThread() { return t_worker_pool != nullptr; }

const ThreadPool* ThreadPool::CurrentWorkerPool() { return t_worker_pool; }

void ThreadPool::WorkerLoop() {
  t_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    busy_.fetch_add(1, std::memory_order_relaxed);
    task();  // tasks never throw: TaskGroup::Execute catches everything
    busy_.fetch_sub(1, std::memory_order_relaxed);
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

PoolStats ThreadPool::GetStats() const {
  PoolStats stats;
  stats.threads = num_threads();
  stats.busy = busy_.load(std::memory_order_relaxed);
  stats.executed = executed_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.queued = queue_.size();
  }
  return stats;
}

std::unique_ptr<ThreadPool> MakePool(const Options& opts) {
  if (!opts.Parallel()) return nullptr;
  return std::make_unique<ThreadPool>(opts.ResolvedThreads());
}

TaskGroup::~TaskGroup() {
  // A TaskGroup destroyed without Wait() (e.g. during unwinding after Run
  // threw inline) must still not leave tasks running with dangling state.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
}

void TaskGroup::Run(std::function<void()> task) {
  int64_t index = next_index_++;
  // Inline only for SAME-POOL nesting (a worker waiting on its own pool's
  // queue would deadlock); a different pool is a safe fan-out.
  if (pool_ == nullptr || pool_->num_threads() <= 1 ||
      ThreadPool::CurrentWorkerPool() == pool_) {
    Execute(task, index);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  pool_->Submit([this, task = std::move(task), index] {
    Execute(task, index);
    // Notify UNDER the lock: the waiter may destroy this TaskGroup the
    // moment it observes pending_ == 0, so the notify must complete before
    // the lock is released.
    std::lock_guard<std::mutex> lock(mu_);
    --pending_;
    done_cv_.notify_all();
  });
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  if (error_ != nullptr) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    failed_index_ = -1;
    std::rethrow_exception(e);
  }
}

void TaskGroup::Execute(const std::function<void()>& task, int64_t index) {
  try {
    task();
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (failed_index_ < 0 || index < failed_index_) {
      failed_index_ = index;
      error_ = std::current_exception();
    }
  }
}

}  // namespace retrust::exec
