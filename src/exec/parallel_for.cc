#include "src/exec/parallel_for.h"

#include <algorithm>

namespace retrust::exec {

ChunkPlan PlanChunks(int64_t n, const ThreadPool* pool,
                     int chunks_per_thread) {
  ChunkPlan plan;
  plan.n = n;
  if (n <= 0) return plan;  // zero chunks: body never runs
  int threads = pool == nullptr ? 1 : pool->num_threads();
  if (threads <= 1 || ThreadPool::CurrentWorkerPool() == pool) {
    plan.num_chunks = 1;
    return plan;
  }
  if (chunks_per_thread < 1) chunks_per_thread = 1;
  int64_t chunks = static_cast<int64_t>(threads) * chunks_per_thread;
  plan.num_chunks = static_cast<int>(std::min<int64_t>(n, chunks));
  return plan;
}

void ParallelFor(ThreadPool* pool, const ChunkPlan& plan,
                 const std::function<void(int64_t, int64_t, int)>& body) {
  if (plan.num_chunks <= 0) return;
  if (plan.num_chunks == 1 || pool == nullptr || pool->num_threads() <= 1 ||
      ThreadPool::CurrentWorkerPool() == pool) {
    for (int c = 0; c < plan.num_chunks; ++c) {
      body(plan.Begin(c), plan.End(c), c);
    }
    return;
  }
  TaskGroup group(pool);
  for (int c = 0; c < plan.num_chunks; ++c) {
    group.Run([&body, &plan, c] { body(plan.Begin(c), plan.End(c), c); });
  }
  group.Wait();
}

void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t, int64_t, int)>& body) {
  ParallelFor(pool, PlanChunks(n, pool), body);
}

}  // namespace retrust::exec
