// A deliberately simple execution substrate: a fixed set of workers pulling
// from one FIFO queue, plus a TaskGroup for fork/join with deterministic
// exception propagation. No work stealing, no task priorities — determinism
// comes from callers assembling results by task/chunk index, never from
// scheduling order.

#ifndef RETRUST_EXEC_THREAD_POOL_H_
#define RETRUST_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/exec/options.h"

namespace retrust::exec {

/// Point-in-time utilization snapshot of one pool, sampled by the metrics
/// registry probe (src/obs/metrics.h). `busy`/`queued` are instantaneous;
/// `executed` is monotone.
struct PoolStats {
  int threads = 0;        ///< worker count (fixed at construction)
  int busy = 0;           ///< workers currently inside a task
  size_t queued = 0;      ///< tasks waiting in the FIFO
  uint64_t executed = 0;  ///< tasks completed since construction
};

/// A fixed-size pool of worker threads executing submitted closures in FIFO
/// order. Construction spawns the workers; destruction drains nothing —
/// callers must have waited for their tasks (TaskGroup does).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Prefer TaskGroup/ParallelFor over raw Submit.
  void Submit(std::function<void()> task);

  /// True when the calling thread is one of this process's pool workers.
  static bool OnWorkerThread();

  /// The pool whose worker the calling thread is (nullptr off-pool).
  /// ParallelFor and TaskGroup inline a nested parallel section only when
  /// it targets the SAME pool the caller is a worker of — that nesting
  /// would deadlock (the worker would wait on a queue only it can drain).
  /// Targeting a DIFFERENT pool is a fan-out, not a nesting hazard, and
  /// runs parallel: a multi-session server's request workers (pool A)
  /// schedule their sessions' sweeps and deltas on the shared session
  /// pool (pool B). Cross-pool WAITING must stay acyclic — satisfied
  /// here because session-pool tasks never wait on request workers.
  static const ThreadPool* CurrentWorkerPool();

  /// Utilization snapshot (two relaxed atomic loads plus one lock for the
  /// queue depth); safe from any thread.
  PoolStats GetStats() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::atomic<int> busy_{0};
  std::atomic<uint64_t> executed_{0};
  std::vector<std::thread> workers_;
};

/// Creates a pool per `opts`, or nullptr when opts resolve to serial
/// execution. All parallel entry points accept a nullable pool and fall
/// back to serial inline execution on nullptr.
std::unique_ptr<ThreadPool> MakePool(const Options& opts);

/// Fork/join scope: Run() tasks, then Wait() for all of them. If tasks
/// threw, Wait rethrows the exception of the EARLIEST-submitted failing
/// task (deterministic regardless of scheduling). Wait must be called
/// before destruction whenever tasks were submitted.
class TaskGroup {
 public:
  /// `pool` may be null; tasks then run inline in Run().
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submits one task. Runs inline when there is no pool, the pool has a
  /// single worker, or the caller is itself a pool worker (nesting guard).
  void Run(std::function<void()> task);

  /// Blocks until every submitted task finished; rethrows the first (by
  /// submission index) captured exception, if any.
  void Wait();

 private:
  void Execute(const std::function<void()>& task, int64_t index);

  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable done_cv_;
  int64_t pending_ = 0;
  int64_t next_index_ = 0;
  int64_t failed_index_ = -1;
  std::exception_ptr error_;
};

}  // namespace retrust::exec

#endif  // RETRUST_EXEC_THREAD_POOL_H_
