// ParallelFor over index ranges with STATIC chunking.
//
// The chunk layout is a pure function of (n, thread count, chunks_per_thread)
// — never of runtime timing — and every chunk knows its index, so callers
// produce deterministic output by writing into per-chunk buffers (or by
// index) and merging in chunk order. Which worker runs which chunk is the
// only scheduling freedom, and it is unobservable by construction.

#ifndef RETRUST_EXEC_PARALLEL_FOR_H_
#define RETRUST_EXEC_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>

#include "src/exec/thread_pool.h"

namespace retrust::exec {

/// A static partition of [0, n) into num_chunks half-open ranges of
/// near-equal size (difference at most one element).
struct ChunkPlan {
  int64_t n = 0;
  int num_chunks = 0;

  int64_t Begin(int chunk) const { return n * chunk / num_chunks; }
  int64_t End(int chunk) const { return n * (chunk + 1) / num_chunks; }
};

/// Plans chunks for `n` items on `pool` (nullable = serial). Serial or tiny
/// inputs get one chunk; parallel inputs get up to threads*chunks_per_thread
/// chunks (never more than n) so skewed per-item costs still balance.
ChunkPlan PlanChunks(int64_t n, const ThreadPool* pool,
                     int chunks_per_thread = 4);

/// Runs body(begin, end, chunk_index) for every chunk of `plan`. Blocks
/// until all chunks finished; rethrows the exception of the lowest-index
/// failing chunk. `pool` may be null (serial). Nested calls targeting the
/// SAME pool from one of its workers run inline (deadlock guard); calls
/// targeting a different pool fan out normally (see
/// ThreadPool::CurrentWorkerPool).
void ParallelFor(ThreadPool* pool, const ChunkPlan& plan,
                 const std::function<void(int64_t, int64_t, int)>& body);

/// Convenience: plan + run with default chunking.
void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t, int64_t, int)>& body);

}  // namespace retrust::exec

#endif  // RETRUST_EXEC_PARALLEL_FOR_H_
