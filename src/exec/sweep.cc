#include "src/exec/sweep.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "src/util/timer.h"

namespace retrust::exec {

Sweep::Sweep(const FdSearchContext& ctx, const EncodedInstance& inst,
             Options options, ThreadPool* shared_pool)
    : ctx_(ctx),
      inst_(inst),
      options_(options),
      pool_(shared_pool == nullptr ? MakePool(options) : nullptr),
      external_pool_(shared_pool),
      pinned_version_(ctx.version()) {}

void Sweep::CheckVersion(const char* when) const {
  const uint64_t now = ctx_.version();
  if (now != pinned_version_) {
    throw std::logic_error(
        "exec::Sweep " + std::string(when) + ": context version " +
        std::to_string(now) + " != pinned " +
        std::to_string(pinned_version_) +
        " — a delta was applied without Refresh(), or raced this sweep");
  }
}

namespace {

/// Greedy jobs of a mixed sweep run as a FIRST wave so their incumbents
/// can seed the expensive jobs' pruning. Monotonicity argument: a repair
/// feasible at τ_g is feasible at every τ ≥ τ_g (the data-side budget only
/// loosens), so the cheapest greedy distc over jobs with τ_g ≤ τ upper-
/// bounds the optimal distc at τ. The engine prunes only STRICTLY above
/// the cap (engine.cc), so the seeded job can still reach every repair
/// costing ≤ the seed — including the optimum — and exact jobs ignore
/// `initial_upper_bound` entirely, so their results cannot change.
bool IsGreedy(const ModifyFdsOptions& opts) {
  return opts.policy.policy == search::SearchPolicy::kGreedy;
}

/// Best (smallest) admissible seed for a job at `tau`: the min distc over
/// wave-one repairs found at τ_g ≤ tau. 0 = no seed.
double SeedFor(int64_t tau, const std::vector<std::pair<int64_t, double>>&
                                greedy_incumbents) {
  double seed = 0.0;
  for (const auto& [tau_g, distc] : greedy_incumbents) {
    if (tau_g > tau) continue;
    if (seed <= 0.0 || distc < seed) seed = distc;
  }
  return seed;
}

void ApplySeed(ModifyFdsOptions* opts, double seed) {
  if (seed <= 0.0) return;
  double& ub = opts->policy.initial_upper_bound;
  if (ub <= 0.0 || seed < ub) ub = seed;
}

}  // namespace

std::vector<SweepOutcome> Sweep::RunRepairs(
    const std::vector<SweepJob>& jobs) const {
  CheckVersion("start");
  std::vector<SweepOutcome> outcomes(jobs.size());

  std::vector<size_t> greedy_idx, other_idx;
  for (size_t i = 0; i < jobs.size(); ++i) {
    (IsGreedy(jobs[i].opts.search) ? greedy_idx : other_idx).push_back(i);
  }

  auto run_wave = [&](const std::vector<size_t>& wave,
                      const std::vector<double>& seeds) {
    TaskGroup group(pool());
    for (size_t k = 0; k < wave.size(); ++k) {
      const size_t i = wave[k];
      const double seed = seeds.empty() ? 0.0 : seeds[k];
      group.Run([this, &jobs, &outcomes, i, seed] {
        const SweepJob& job = jobs[i];
        RepairOptions opts = job.opts;
        opts.search.exec = Options{};  // jobs are the unit of parallelism
        ApplySeed(&opts.search, seed);
        Timer timer;
        SweepOutcome& out = outcomes[i];
        out.tau = job.tau;
        RepairOutcome run = RunRepair(ctx_, inst_, job.tau, opts);
        out.repair = std::move(run.repair);
        out.stats = run.stats;
        out.termination = run.termination;
        out.seconds = timer.ElapsedSeconds();
      });
    }
    group.Wait();
  };

  if (greedy_idx.empty() || other_idx.empty()) {
    // Uniform-policy sweep: one wave, exactly the pre-seeding behavior.
    std::vector<size_t> all(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) all[i] = i;
    run_wave(all, {});
  } else {
    run_wave(greedy_idx, {});
    std::vector<std::pair<int64_t, double>> incumbents;
    for (size_t i : greedy_idx) {
      if (outcomes[i].repair.has_value()) {
        incumbents.emplace_back(jobs[i].tau, outcomes[i].repair->distc);
      }
    }
    std::vector<double> seeds(other_idx.size());
    for (size_t k = 0; k < other_idx.size(); ++k) {
      seeds[k] = SeedFor(jobs[other_idx[k]].tau, incumbents);
    }
    run_wave(other_idx, seeds);
  }

  CheckVersion("finish");
  return outcomes;
}

std::vector<ModifyFdsResult> Sweep::RunSearches(
    const std::vector<int64_t>& taus, const ModifyFdsOptions& opts) const {
  std::vector<SearchJob> jobs(taus.size());
  for (size_t i = 0; i < taus.size(); ++i) {
    jobs[i].tau = taus[i];
    jobs[i].opts = opts;
  }
  return RunSearches(jobs);
}

std::vector<ModifyFdsResult> Sweep::RunSearches(
    const std::vector<SearchJob>& jobs) const {
  CheckVersion("start");
  std::vector<ModifyFdsResult> results(jobs.size());

  std::vector<size_t> greedy_idx, other_idx;
  for (size_t i = 0; i < jobs.size(); ++i) {
    (IsGreedy(jobs[i].opts) ? greedy_idx : other_idx).push_back(i);
  }

  auto run_wave = [&](const std::vector<size_t>& wave,
                      const std::vector<double>& seeds) {
    TaskGroup group(pool());
    for (size_t k = 0; k < wave.size(); ++k) {
      const size_t i = wave[k];
      const double seed = seeds.empty() ? 0.0 : seeds[k];
      group.Run([this, &jobs, &results, i, seed] {
        ModifyFdsOptions opts = jobs[i].opts;
        opts.exec = Options{};  // jobs are the unit of parallelism
        ApplySeed(&opts, seed);
        results[i] = ModifyFds(ctx_, jobs[i].tau, opts);
      });
    }
    group.Wait();
  };

  if (greedy_idx.empty() || other_idx.empty()) {
    std::vector<size_t> all(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) all[i] = i;
    run_wave(all, {});
  } else {
    run_wave(greedy_idx, {});
    std::vector<std::pair<int64_t, double>> incumbents;
    for (size_t i : greedy_idx) {
      if (results[i].repair.has_value()) {
        incumbents.emplace_back(jobs[i].tau, results[i].repair->distc);
      }
    }
    std::vector<double> seeds(other_idx.size());
    for (size_t k = 0; k < other_idx.size(); ++k) {
      seeds[k] = SeedFor(jobs[other_idx[k]].tau, incumbents);
    }
    run_wave(other_idx, seeds);
  }

  CheckVersion("finish");
  return results;
}

std::vector<int64_t> TauGridFromRelative(const std::vector<double>& taus_r,
                                         int64_t root_delta_p) {
  std::vector<int64_t> taus;
  taus.reserve(taus_r.size());
  for (double tr : taus_r) taus.push_back(TauFromRelative(tr, root_delta_p));
  return taus;
}

}  // namespace retrust::exec
