#include "src/exec/sweep.h"

#include <stdexcept>
#include <string>

#include "src/util/timer.h"

namespace retrust::exec {

Sweep::Sweep(const FdSearchContext& ctx, const EncodedInstance& inst,
             Options options, ThreadPool* shared_pool)
    : ctx_(ctx),
      inst_(inst),
      options_(options),
      pool_(shared_pool == nullptr ? MakePool(options) : nullptr),
      external_pool_(shared_pool),
      pinned_version_(ctx.version()) {}

void Sweep::CheckVersion(const char* when) const {
  const uint64_t now = ctx_.version();
  if (now != pinned_version_) {
    throw std::logic_error(
        "exec::Sweep " + std::string(when) + ": context version " +
        std::to_string(now) + " != pinned " +
        std::to_string(pinned_version_) +
        " — a delta was applied without Refresh(), or raced this sweep");
  }
}

std::vector<SweepOutcome> Sweep::RunRepairs(
    const std::vector<SweepJob>& jobs) const {
  CheckVersion("start");
  std::vector<SweepOutcome> outcomes(jobs.size());
  TaskGroup group(pool());
  for (size_t i = 0; i < jobs.size(); ++i) {
    group.Run([this, &jobs, &outcomes, i] {
      const SweepJob& job = jobs[i];
      RepairOptions opts = job.opts;
      opts.search.exec = Options{};  // jobs are the unit of parallelism
      Timer timer;
      SweepOutcome& out = outcomes[i];
      out.tau = job.tau;
      RepairOutcome run = RunRepair(ctx_, inst_, job.tau, opts);
      out.repair = std::move(run.repair);
      out.stats = run.stats;
      out.termination = run.termination;
      out.seconds = timer.ElapsedSeconds();
    });
  }
  group.Wait();
  CheckVersion("finish");
  return outcomes;
}

std::vector<ModifyFdsResult> Sweep::RunSearches(
    const std::vector<int64_t>& taus, const ModifyFdsOptions& opts) const {
  std::vector<SearchJob> jobs(taus.size());
  for (size_t i = 0; i < taus.size(); ++i) {
    jobs[i].tau = taus[i];
    jobs[i].opts = opts;
  }
  return RunSearches(jobs);
}

std::vector<ModifyFdsResult> Sweep::RunSearches(
    const std::vector<SearchJob>& jobs) const {
  CheckVersion("start");
  std::vector<ModifyFdsResult> results(jobs.size());
  TaskGroup group(pool());
  for (size_t i = 0; i < jobs.size(); ++i) {
    group.Run([this, &jobs, &results, i] {
      ModifyFdsOptions opts = jobs[i].opts;
      opts.exec = Options{};  // jobs are the unit of parallelism
      results[i] = ModifyFds(ctx_, jobs[i].tau, opts);
    });
  }
  group.Wait();
  CheckVersion("finish");
  return results;
}

std::vector<int64_t> TauGridFromRelative(const std::vector<double>& taus_r,
                                         int64_t root_delta_p) {
  std::vector<int64_t> taus;
  taus.reserve(taus_r.size());
  for (double tr : taus_r) taus.push_back(TauFromRelative(tr, root_delta_p));
  return taus;
}

}  // namespace retrust::exec
