// Cooperative cancellation for long-running searches and sweeps.
//
// A CancelToken is a one-way latch: any thread may Cancel() it, and workers
// poll Cancelled() at their loop heads (ModifyFds checks once per popped
// state; every job of an exec::Sweep checks through its own search loop, so
// cancelling a sweep drains the queued jobs as fast as they are picked up —
// no pool work is leaked and no thread is interrupted mid-kernel).
//
// Cancellation is best-effort by design: a search that already holds a
// result when the token fires reports that result. It deliberately breaks
// the bit-identical-output contract of src/exec/ — WHERE the loop is when
// the flag flips depends on wall-clock — which is why the token lives in
// the options a caller opts into, never in any default path.
//
// This header is an exec/ primitive (standard library only) so that
// src/repair/ can poll tokens without depending on the api/ layer above it.

#ifndef RETRUST_EXEC_CANCEL_H_
#define RETRUST_EXEC_CANCEL_H_

#include <atomic>

namespace retrust::exec {

/// One-way cancellation latch shared between a requester and any number of
/// workers. Copying is disabled; share by pointer (the requester owns the
/// token and must keep it alive until every worker observing it returned).
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Idempotent, callable from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once Cancel() was called. Relaxed: polled at loop heads, where
  /// "a beat late" only costs one extra iteration.
  bool Cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace retrust::exec

#endif  // RETRUST_EXEC_CANCEL_H_
