// The τ-sweep scheduler: run many (τ, options) repair jobs concurrently
// over ONE shared FdSearchContext.
//
// The paper's experiments (Figs. 9-12) sweep the trust threshold τ and
// re-run Algorithm 1/2 at every grid point; the context (conflict graph,
// difference-set index, violation table, cover memo, heuristic) is
// τ-independent and therefore shared — in particular all jobs of a sweep
// evaluate through ONE ViolationTable and ONE memoized cover layer, so a
// state visited by several τ jobs pays for its cover once (DESIGN.md,
// "The δP evaluation pipeline"). Each job runs the SERIAL search engine on
// a pool worker (job-level parallelism composes better than nested
// state-level parallelism and keeps every job's result trivially
// deterministic); outcomes are returned in job order regardless of
// completion order.
//
// This header is the top of the exec/ subsystem and depends on src/repair/;
// the primitives it schedules on (thread_pool.h, parallel_for.h) depend on
// nothing and are used as far down as src/fd/. See DESIGN.md.

#ifndef RETRUST_EXEC_SWEEP_H_
#define RETRUST_EXEC_SWEEP_H_

#include <optional>
#include <vector>

#include "src/exec/options.h"
#include "src/exec/thread_pool.h"
#include "src/repair/repair_driver.h"

namespace retrust::exec {

/// One job of a sweep: an end-to-end repair at trust level τ. The job's
/// `opts.search.exec` is overridden to serial — the sweep parallelizes
/// ACROSS jobs, never inside them. Every other search knob rides along
/// per job, including `opts.search.policy`: a sweep can mix exact and
/// anytime/greedy jobs freely (each job runs its own engine loop with its
/// own incumbents/bounds; the shared context and cover memo stay policy-
/// agnostic).
///
/// Mixed-policy sweeps are scheduled POLICY-AWARE: all kGreedy jobs run as
/// a first wave, and each remaining job's `initial_upper_bound` is seeded
/// with the cheapest greedy incumbent found at a τ_g ≤ its own τ (repairs
/// feasible at a tighter τ stay feasible, so the bound is admissible and
/// tightens only the cap, never below the optimum). Exact jobs ignore the
/// seed by engine construction, so their results are bit-identical with
/// and without it; anytime jobs just prune dominated states earlier.
struct SweepJob {
  int64_t tau = 0;
  RepairOptions opts;
};

/// Outcome of one job, in job order. `stats` and `termination` are filled
/// even when no repair exists (budget, deadline, cancellation, or a proven
/// no-goal) — the api/ facade's Status mapping depends on that.
struct SweepOutcome {
  int64_t tau = 0;
  std::optional<Repair> repair;
  SearchStats stats;
  SearchTermination termination = SearchTermination::kCompleted;
  double seconds = 0.0;  ///< wall-clock of this job alone
};

/// One search-only job (Algorithm 2, no data materialization).
struct SearchJob {
  int64_t tau = 0;
  ModifyFdsOptions opts;
};

/// Scheduler over one shared (Σ, I) search context. The context and the
/// instance must outlive the sweep; both are only read (the context's
/// const interface is thread-safe by design). The worker pool is spawned
/// once at construction and reused across Run* calls, so repeated sweeps
/// (grid refinements, benchmark loops) pay no per-call thread churn.
///
/// Snapshot discipline: the sweep pins the context's data version
/// (FdSearchContext::version()) at construction. Every Run* verifies the
/// pin before scheduling AND after draining — so a sweep never starts
/// against a context that was delta-patched since the pin (call Refresh()
/// after an intentional FdSearchContext::ApplyDelta), and a delta that
/// races a running sweep is detected instead of silently mixing pre- and
/// post-delta answers (both cases throw std::logic_error).
class Sweep {
 public:
  /// `shared_pool` (nullable, NOT owned) lets many sweeps — e.g. one per
  /// cached context of one per tenant Session of a multi-tenant server —
  /// schedule on a single process-wide pool instead of each spawning its
  /// own workers. When null, the sweep owns a pool per `options` exactly
  /// as before. A shared pool must outlive every sweep using it.
  Sweep(const FdSearchContext& ctx, const EncodedInstance& inst,
        Options options = {}, ThreadPool* shared_pool = nullptr);

  /// Re-pins the context version after an intentional ApplyDelta.
  /// Requires external exclusion against concurrent Run* calls (the
  /// session's apply lock provides it).
  void Refresh() { pinned_version_ = ctx_.version(); }

  /// The version Run* will insist on.
  uint64_t pinned_version() const { return pinned_version_; }

  /// Runs Algorithm 1 (RepairDataAndFds) for every job concurrently.
  std::vector<SweepOutcome> RunRepairs(const std::vector<SweepJob>& jobs) const;

  /// Runs Algorithm 2 (ModifyFds) at every τ concurrently with shared
  /// search options.
  std::vector<ModifyFdsResult> RunSearches(
      const std::vector<int64_t>& taus,
      const ModifyFdsOptions& opts = {}) const;

  /// Same with per-job options (mode, budgets, cancellation).
  std::vector<ModifyFdsResult> RunSearches(
      const std::vector<SearchJob>& jobs) const;

  const FdSearchContext& context() const { return ctx_; }
  const Options& options() const { return options_; }

 private:
  /// Throws std::logic_error unless the context still carries the pinned
  /// version (`when` names the offending phase in the message).
  void CheckVersion(const char* when) const;

  /// The pool Run* schedules on: the shared one when provided, else the
  /// owned one (null = serial inline execution).
  ThreadPool* pool() const {
    return external_pool_ != nullptr ? external_pool_ : pool_.get();
  }

  const FdSearchContext& ctx_;
  const EncodedInstance& inst_;
  Options options_;
  std::unique_ptr<ThreadPool> pool_;  ///< null when options are serial
  ThreadPool* external_pool_ = nullptr;  ///< not owned; wins over pool_
  uint64_t pinned_version_ = 0;
};

/// Absolute τ grid from relative trust levels τr ∈ [0, 1] against a root
/// bound (convenience for the Figure 9-12 style sweeps).
std::vector<int64_t> TauGridFromRelative(const std::vector<double>& taus_r,
                                         int64_t root_delta_p);

}  // namespace retrust::exec

#endif  // RETRUST_EXEC_SWEEP_H_
