#include "src/persist/snapshot.h"

#include <bit>
#include <cstring>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "src/persist/io.h"
#include "src/util/hash.h"

namespace retrust::persist {

namespace {

// Payload field order (after the 12-byte magic+version prefix):
//   u64 fingerprint, u64 data_stamp, u64 data_version, i64 root_delta_p,
//   u8 weight_model, heuristic{i32 max_diffsets, i64 max_nodes, u8 strict},
//   schema{u32 m; per attr: str name, u8 type},
//   u32 n, per attr dictionary{u64 count; tagged values},
//   codes column-major (m columns of n i32 each, attribute order),
//   encoded next_var (m i32), instance next_var (m i32),
//   sigma{u32 count; per FD: u64 lhs, i32 rhs},
//   index{u32 groups; per group: u64 diff, i64 counted, u64 edges;
//         i32 pairs — counted groups carry zero materialized edges},
//   table rows (one u64 per group),
//   covers{u64 set count; per entry: words + i32 value;
//          u64 seq count; per entry: u64 len, i32 ids, i32 value}.

constexpr uint8_t kValueNull = 0;
constexpr uint8_t kValueInt = 1;
constexpr uint8_t kValueDouble = 2;
constexpr uint8_t kValueString = 3;
constexpr uint8_t kValueVariable = 4;

void WriteValue(ByteWriter* w, const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      w->U8(kValueNull);
      break;
    case Value::Kind::kInt:
      w->U8(kValueInt);
      w->I64(v.AsInt());
      break;
    case Value::Kind::kDouble:
      w->U8(kValueDouble);
      w->F64(v.AsDouble());
      break;
    case Value::Kind::kString:
      w->U8(kValueString);
      w->Str(v.AsString());
      break;
    case Value::Kind::kVariable: {
      VarRef var = v.AsVariable();
      w->U8(kValueVariable);
      w->I32(var.attr);
      w->I32(var.index);
      break;
    }
  }
}

Value ReadValue(ByteReader* r) {
  switch (r->U8()) {
    case kValueNull:
      return Value::Null();
    case kValueInt:
      return Value(r->I64());
    case kValueDouble:
      return Value(r->F64());
    case kValueString:
      return Value(r->Str());
    case kValueVariable: {
      AttrId attr = r->I32();
      int32_t index = r->I32();
      return Value::Variable(attr, index);
    }
    default:
      throw std::invalid_argument("unknown value tag");
  }
}

Status IoError(const std::string& message) {
  return Status::Error(StatusCode::kIoError, message);
}

/// Caps untrusted count fields: a corrupt length can at most name one unit
/// per remaining payload byte, so allocations stay proportional to the
/// actual file size instead of a 64-bit garbage value.
bool PlausibleCount(uint64_t count, const ByteReader& r) {
  return count <= r.remaining();
}

}  // namespace

uint64_t ConfigFingerprint(const FDSet& sigma, uint8_t weight_model,
                           const HeuristicOptions& heuristic) {
  uint64_t seed = 0x534e4150ULL;  // "SNAP"
  for (const FD& fd : sigma.fds()) {
    HashCombine(&seed, fd.lhs.bits());
    HashCombine(&seed, static_cast<uint64_t>(static_cast<uint32_t>(fd.rhs)));
  }
  HashCombine(&seed, weight_model);
  HashCombine(&seed, static_cast<uint64_t>(heuristic.max_diffsets));
  HashCombine(&seed, static_cast<uint64_t>(heuristic.max_nodes));
  HashCombine(&seed, heuristic.strict_leave_check ? 1u : 0u);
  return seed;
}

uint64_t DataStamp(const EncodedInstance& inst) {
  uint64_t seed = 0x5354414dULL;  // "STAM"
  HashCombine(&seed, static_cast<uint64_t>(inst.NumTuples()));
  HashCombine(&seed, static_cast<uint64_t>(inst.NumAttrs()));
  for (AttrId a = 0; a < inst.NumAttrs(); ++a) {
    for (int32_t code : inst.column(a)) {
      HashCombine(&seed, static_cast<uint64_t>(static_cast<uint32_t>(code)));
    }
  }
  for (AttrId a = 0; a < inst.NumAttrs(); ++a) {
    const Dictionary& dict = inst.dictionary(a);
    HashCombine(&seed, static_cast<uint64_t>(dict.size()));
    for (const Value& v : dict.values()) {
      HashCombine(&seed, static_cast<uint64_t>(v.Hash()));
    }
  }
  return seed;
}

Status WriteSnapshotFile(const std::string& path, const SnapshotView& view) {
  const EncodedInstance& inst = *view.encoded;
  const int n = inst.NumTuples();
  const int m = inst.NumAttrs();

  ByteWriter w;
  for (char c : kSnapshotMagic) w.U8(static_cast<uint8_t>(c));
  w.U32(kSnapshotFormatVersion);

  w.U64(view.fingerprint);
  w.U64(view.data_stamp);
  w.U64(view.data_version);
  w.I64(view.root_delta_p);
  w.U8(view.weight_model);
  w.I32(view.heuristic.max_diffsets);
  w.I64(view.heuristic.max_nodes);
  w.U8(view.heuristic.strict_leave_check ? 1 : 0);

  const Schema& schema = inst.schema();
  w.U32(static_cast<uint32_t>(m));
  for (AttrId a = 0; a < m; ++a) {
    w.Str(schema.name(a));
    w.U8(static_cast<uint8_t>(schema.type(a)));
  }

  w.U32(static_cast<uint32_t>(n));
  for (AttrId a = 0; a < m; ++a) {
    const Dictionary& dict = inst.dictionary(a);
    w.U64(static_cast<uint64_t>(dict.size()));
    for (const Value& v : dict.values()) WriteValue(&w, v);
  }
  for (AttrId a = 0; a < m; ++a) {
    for (int32_t code : inst.column(a)) w.I32(code);
  }
  for (int32_t counter : inst.next_var_counters()) w.I32(counter);
  for (int32_t counter : *view.instance_next_var) w.I32(counter);

  w.U32(static_cast<uint32_t>(view.sigma->size()));
  for (const FD& fd : view.sigma->fds()) {
    w.U64(fd.lhs.bits());
    w.I32(fd.rhs);
  }

  w.U32(static_cast<uint32_t>(view.index->size()));
  for (const DiffSetGroup& g : view.index->groups()) {
    w.U64(g.diff.bits());
    w.I64(g.counted);
    // A counted group's edges are a derived cache (lazily materialized for
    // data repair), never part of the snapshot — the bytes stay identical
    // whether or not the session ever materialized them.
    w.U64(g.counted > 0 ? 0 : g.edges.size());
    if (g.counted == 0) {
      for (const Edge& e : g.edges) {
        w.I32(e.u);
        w.I32(e.v);
      }
    }
  }

  for (uint64_t row : view.warm.table_rows) w.U64(row);

  w.U64(view.warm.covers.set_entries.size());
  for (const auto& [key, value] : view.warm.covers.set_entries) {
    for (uint64_t word : key.words()) w.U64(word);
    w.I32(value);
  }
  w.U64(view.warm.covers.seq_entries.size());
  for (const auto& [seq, value] : view.warm.covers.seq_entries) {
    w.U64(seq.size());
    for (int32_t g : seq) w.I32(g);
    w.I32(value);
  }

  w.U32(Crc32(w.buffer().data(), w.size()));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return IoError("cannot open '" + path + "' for writing");
  out.write(w.buffer().data(), static_cast<std::streamsize>(w.size()));
  out.flush();
  if (!out) return IoError("short write to '" + path + "'");
  return Status::Ok();
}

Result<SnapshotData> ReadSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return IoError("cannot open snapshot '" + path + "'");
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return IoError("read failure on snapshot '" + path + "'");

  // Magic and version come before the checksum test so an unsupported
  // version (whose payload layout we cannot parse anyway) reports as
  // kVersionMismatch, not as corruption.
  if (bytes.size() < sizeof(kSnapshotMagic) + sizeof(uint32_t) ||
      std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return IoError("'" + path + "' is not a retrust snapshot");
  }
  ByteReader header(std::string_view(bytes).substr(sizeof(kSnapshotMagic)));
  const uint32_t version = header.U32();
  if (version != kSnapshotFormatVersion) {
    return Status::Error(
        StatusCode::kVersionMismatch,
        "snapshot '" + path + "' has format version " +
            std::to_string(version) + "; this build speaks version " +
            std::to_string(kSnapshotFormatVersion));
  }
  const size_t prefix = sizeof(kSnapshotMagic) + sizeof(uint32_t);
  if (bytes.size() < prefix + sizeof(uint32_t)) {
    return IoError("snapshot '" + path + "' is truncated");
  }
  const size_t body = bytes.size() - sizeof(uint32_t);
  ByteReader footer(std::string_view(bytes).substr(body));
  if (footer.U32() != Crc32(bytes.data(), body)) {
    return IoError("snapshot '" + path +
                   "' failed its checksum (truncated or corrupted)");
  }

  ByteReader r(std::string_view(bytes).substr(prefix, body - prefix));
  SnapshotData data;
  try {
    data.fingerprint = r.U64();
    data.data_stamp = r.U64();
    data.data_version = r.U64();
    data.root_delta_p = r.I64();
    data.weight_model = r.U8();
    data.heuristic.max_diffsets = r.I32();
    data.heuristic.max_nodes = r.I64();
    data.heuristic.strict_leave_check = r.U8() != 0;

    const uint32_t m = r.U32();
    if (m > static_cast<uint32_t>(kMaxAttrs) || !r.ok()) {
      return IoError("snapshot '" + path + "' has an implausible schema");
    }
    std::vector<Attribute> attrs(m);
    for (uint32_t a = 0; a < m; ++a) {
      attrs[a].name = r.Str();
      attrs[a].type = static_cast<AttrType>(r.U8());
    }
    Schema schema(std::move(attrs));

    const uint32_t n = r.U32();
    std::vector<Dictionary> dicts;
    dicts.reserve(m);
    for (uint32_t a = 0; a < m; ++a) {
      const uint64_t count = r.U64();
      if (!PlausibleCount(count, r)) {
        return IoError("snapshot '" + path + "' has an implausible dictionary");
      }
      std::vector<Value> values;
      values.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; ++i) values.push_back(ReadValue(&r));
      dicts.push_back(Dictionary::FromValues(std::move(values)));
    }
    const uint64_t num_codes = static_cast<uint64_t>(n) * m;
    if (!PlausibleCount(num_codes, r)) {
      return IoError("snapshot '" + path + "' has an implausible cardinality");
    }
    std::vector<std::vector<int32_t>> columns(m);
    for (uint32_t a = 0; a < m; ++a) {
      columns[a].resize(n);
      for (int32_t& code : columns[a]) code = r.I32();
    }
    std::vector<int32_t> next_var(m);
    for (int32_t& counter : next_var) counter = r.I32();
    data.instance_next_var.resize(m);
    for (int32_t& counter : data.instance_next_var) counter = r.I32();
    data.encoded =
        EncodedInstance::Restore(std::move(schema), static_cast<int>(n),
                                 std::move(columns), std::move(dicts),
                                 std::move(next_var));

    const uint32_t num_fds = r.U32();
    if (num_fds > 64 || !r.ok()) {
      return IoError("snapshot '" + path + "' has an implausible FD set");
    }
    std::vector<FD> fds(num_fds);
    for (FD& fd : fds) {
      fd.lhs = AttrSet(r.U64());
      fd.rhs = r.I32();
    }
    data.sigma = FDSet(std::move(fds));

    const uint32_t num_groups = r.U32();
    if (!PlausibleCount(num_groups, r)) {
      return IoError("snapshot '" + path + "' has an implausible index");
    }
    std::vector<DiffSetGroup> groups(num_groups);
    for (DiffSetGroup& g : groups) {
      g.diff = AttrSet(r.U64());
      g.counted = r.I64();
      const uint64_t num_edges = r.U64();
      if (!PlausibleCount(num_edges, r) || g.counted < 0 ||
          (g.counted > 0 && num_edges != 0)) {
        return IoError("snapshot '" + path + "' has an implausible edge list");
      }
      g.edges.resize(static_cast<size_t>(num_edges));
      for (Edge& e : g.edges) {
        e.u = r.I32();
        e.v = r.I32();
      }
    }
    data.index = DifferenceSetIndex(std::move(groups));

    data.warm.table_rows.resize(num_groups);
    for (uint64_t& row : data.warm.table_rows) row = r.U64();

    const size_t words_per_key = (static_cast<size_t>(num_groups) + 63) / 64;
    const uint64_t num_set = r.U64();
    if (!PlausibleCount(num_set, r)) {
      return IoError("snapshot '" + path + "' has an implausible cover memo");
    }
    data.warm.covers.set_entries.reserve(static_cast<size_t>(num_set));
    for (uint64_t i = 0; i < num_set; ++i) {
      GroupBitset key(static_cast<int>(num_groups));
      for (size_t word = 0; word < words_per_key; ++word) {
        uint64_t bits = r.U64();
        while (bits != 0) {
          key.Set(static_cast<int>(word * 64) + std::countr_zero(bits));
          bits &= bits - 1;
        }
      }
      const int32_t value = r.I32();
      data.warm.covers.set_entries.emplace_back(std::move(key), value);
    }
    const uint64_t num_seq = r.U64();
    if (!PlausibleCount(num_seq, r)) {
      return IoError("snapshot '" + path + "' has an implausible cover memo");
    }
    data.warm.covers.seq_entries.reserve(static_cast<size_t>(num_seq));
    for (uint64_t i = 0; i < num_seq; ++i) {
      const uint64_t len = r.U64();
      if (!PlausibleCount(len, r)) {
        return IoError("snapshot '" + path + "' has an implausible cover key");
      }
      std::vector<int32_t> seq(static_cast<size_t>(len));
      for (int32_t& g : seq) g = r.I32();
      const int32_t value = r.I32();
      data.warm.covers.seq_entries.emplace_back(std::move(seq), value);
    }
  } catch (const std::exception& e) {
    return IoError("snapshot '" + path + "' is corrupt: " + e.what());
  }
  if (!r.ok() || r.remaining() != 0) {
    return IoError("snapshot '" + path + "' payload has the wrong length");
  }
  // A key's bits beyond the group count would be invisible to the Set loop
  // above only if the file claimed them; Set() already asserts in debug,
  // and a corrupted high bit surfaces through the CRC in practice.
  return data;
}

}  // namespace retrust::persist
