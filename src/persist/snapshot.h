// Versioned, checksummed on-disk snapshots of a warm (Σ, I) context
// bundle — the persistence subsystem's core artifact (DESIGN.md "Snapshot
// format & warm restart").
//
// A snapshot serializes everything a retrust::Session needs to answer
// requests WITHOUT re-running the O(n²) conflict-graph/difference-set
// build: the dictionary-encoded instance (with both fresh-variable
// counters), Σ, the difference-set index, the violation table's incidence
// rows, and the cover memo's cached values. Loading is a linear read plus
// cheap reconstructions (dictionary indexes, candidate lists) — the
// expensive pairwise phase is skipped entirely, and a restored session's
// answers are bit-identical to a from-scratch build at any thread count.
//
// File layout (all integers little-endian):
//
//   [ 0..8)   magic "RTSNAPSH"
//   [ 8..12)  u32 format version (kSnapshotFormatVersion)
//   [12..N-4) payload (see snapshot.cc for the field order)
//   [N-4..N)  u32 CRC-32 over bytes [0, N-4)
//
// Error mapping: not-a-snapshot / truncation / checksum failure → kIoError;
// an unsupported format version → kVersionMismatch (the magic and version
// are checked before the checksum, so a version bump is reported as such
// even though it also changes the CRC input). Fingerprint policy is the
// CALLER's: ReadSnapshotFile returns the stored fingerprint and
// Session::OpenSnapshot compares it against the caller's configuration
// (mismatch → kSchemaMismatch).
//
// The fingerprint deliberately excludes the thread count (unlike the
// Session context-cache key): a snapshot saved on an 8-core box must open
// on a 1-core box — bit-identity across thread counts is a library-wide
// invariant, so the thread count is an execution detail, not identity.

#ifndef RETRUST_PERSIST_SNAPSHOT_H_
#define RETRUST_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/api/status.h"
#include "src/fd/fdset.h"
#include "src/relational/dictionary.h"
#include "src/repair/evaluation.h"
#include "src/repair/heuristic.h"

namespace retrust::persist {

inline constexpr char kSnapshotMagic[8] = {'R', 'T', 'S', 'N',
                                           'A', 'P', 'S', 'H'};
/// Version history: v1 stored row-major cell codes and edge-only
/// difference-set groups; v2 (current) stores column-major codes (one
/// contiguous column per attribute, matching EncodedInstance's SoA layout)
/// and a per-group counted-pair field for full-disagreement groups whose
/// edges are never materialized. v1 files report kVersionMismatch.
inline constexpr uint32_t kSnapshotFormatVersion = 2;

/// The (Σ, weights, heuristic) identity of a snapshot: a session may only
/// adopt a snapshot whose fingerprint matches its own configuration.
/// `weight_model` is the raw WeightModel value (persist/ sits below api/,
/// so the enum is carried as a byte).
uint64_t ConfigFingerprint(const FDSet& sigma, uint8_t weight_model,
                           const HeuristicOptions& heuristic);

/// Content stamp of the dataset (cardinality, codes, dictionaries): pairs
/// a delta journal with the exact base snapshot it extends.
uint64_t DataStamp(const EncodedInstance& inst);

/// Borrowed view of everything WriteSnapshotFile serializes; the pointees
/// must outlive the call. `warm` is held by value because exporting it
/// already copies (CoverMemo::ExportEntries).
struct SnapshotView {
  uint64_t fingerprint = 0;
  uint64_t data_stamp = 0;
  uint64_t data_version = 0;
  int64_t root_delta_p = 0;
  uint8_t weight_model = 0;
  HeuristicOptions heuristic;
  const EncodedInstance* encoded = nullptr;
  const std::vector<int32_t>* instance_next_var = nullptr;
  const FDSet* sigma = nullptr;
  const DifferenceSetIndex* index = nullptr;
  DeltaPEvaluator::WarmState warm;
};

/// Owning result of ReadSnapshotFile: the same parts, reconstructed.
struct SnapshotData {
  uint64_t fingerprint = 0;
  uint64_t data_stamp = 0;
  uint64_t data_version = 0;
  int64_t root_delta_p = 0;
  uint8_t weight_model = 0;
  HeuristicOptions heuristic;
  EncodedInstance encoded;
  std::vector<int32_t> instance_next_var;
  FDSet sigma;
  DifferenceSetIndex index;
  DeltaPEvaluator::WarmState warm;
};

/// Serializes `view` to `path` atomically enough for the service's needs:
/// the bytes are assembled in memory first, so a failed write never leaves
/// a half-written header behind a stale length. kIoError on any failure.
Status WriteSnapshotFile(const std::string& path, const SnapshotView& view);

/// Reads and validates a snapshot. kIoError for unreadable, truncated,
/// bit-flipped, or internally inconsistent files; kVersionMismatch for a
/// format version this build does not speak.
Result<SnapshotData> ReadSnapshotFile(const std::string& path);

}  // namespace retrust::persist

#endif  // RETRUST_PERSIST_SNAPSHOT_H_
