#include "src/persist/io.h"

#include <array>

namespace retrust::persist {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    c = kTable[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace retrust::persist
