// Byte-level primitives of the persistence layer: a CRC-32 checksum and a
// pair of bounds-checked little-endian buffer codecs.
//
// Snapshots and journals are written through ByteWriter (which accumulates
// into one contiguous buffer, so the checksum can be computed over exactly
// the bytes that hit disk) and read through ByteReader, whose reads never
// throw: any out-of-bounds access latches a failure flag and returns
// zeros/empties, and the caller checks ok() once at the end — truncated
// files surface as one clean error instead of a crash.
//
// The encoding is fixed little-endian regardless of host order, so a
// snapshot is a portable artifact, not a memory dump.

#ifndef RETRUST_PERSIST_IO_H_
#define RETRUST_PERSIST_IO_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace retrust::persist {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) of `len` bytes.
uint32_t Crc32(const void* data, size_t len);

/// Append-only little-endian encoder over one growable buffer.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof v); }
  void U64(uint64_t v) { Raw(&v, sizeof v); }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) { U64(std::bit_cast<uint64_t>(v)); }
  void Str(const std::string& s) {
    U64(s.size());
    buf_.append(s);
  }

  const std::string& buffer() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  void Raw(const void* v, size_t n) {
    // Serialize least-significant byte first on any host.
    const auto* p = static_cast<const unsigned char*>(v);
    if constexpr (std::endian::native == std::endian::little) {
      buf_.append(reinterpret_cast<const char*>(p), n);
    } else {
      for (size_t i = n; i-- > 0;) buf_.push_back(static_cast<char>(p[i]));
    }
  }

  std::string buf_;
};

/// Bounds-checked little-endian decoder over a borrowed buffer. Reads past
/// the end latch failed() and return zero values; check ok() after the
/// last read instead of after each one.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool ok() const { return !failed_; }
  size_t remaining() const { return data_.size() - pos_; }

  uint8_t U8() {
    uint8_t v = 0;
    Raw(&v, sizeof v);
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Raw(&v, sizeof v);
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Raw(&v, sizeof v);
    return v;
  }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64() { return std::bit_cast<double>(U64()); }
  std::string Str() {
    uint64_t n = U64();
    // The length prefix itself may be garbage on corrupt input; refuse to
    // allocate more than what is actually left in the buffer.
    if (failed_ || n > remaining()) {
      failed_ = true;
      return {};
    }
    std::string s(data_.substr(pos_, static_cast<size_t>(n)));
    pos_ += static_cast<size_t>(n);
    return s;
  }

 private:
  void Raw(void* v, size_t n) {
    if (failed_ || n > remaining()) {
      failed_ = true;
      std::memset(v, 0, n);
      return;
    }
    auto* p = static_cast<unsigned char*>(v);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(p, data_.data() + pos_, n);
    } else {
      for (size_t i = 0; i < n; ++i) {
        p[n - 1 - i] = static_cast<unsigned char>(data_[pos_ + i]);
      }
    }
    pos_ += n;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace retrust::persist

#endif  // RETRUST_PERSIST_IO_H_
