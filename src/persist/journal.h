// Append-only delta journal: the write-ahead companion of a snapshot.
//
// A journal extends a specific base snapshot with the DeltaBatches applied
// after it was saved. The pairing is explicit in the header: the config
// fingerprint (same Σ/weights/heuristic identity as the snapshot), the
// DataStamp of the base instance, and the base data version. A loader
// replays the batches onto the restored base in order; because every delta
// application in the library is deterministic, the replayed session is
// bit-identical to the one that wrote the journal.
//
// File layout (all integers little-endian):
//
//   [ 0..8)  magic "RTJOURNL"
//   [ 8..12) u32 format version
//   [12..36) header: u64 fingerprint, u64 base_stamp, u64 base_version
//   then zero or more records, each:
//     u32 payload length | payload | u32 CRC-32 of the payload
//
// Records are self-checking, so the file needs no trailing checksum and
// stays appendable. A torn final record (crash mid-append) is tolerated:
// readers stop at the last complete record and JournalWriter::Append
// truncates the tail before continuing. A CRC failure on a COMPLETE record
// is corruption, not a torn write, and fails the read with kIoError.

#ifndef RETRUST_PERSIST_JOURNAL_H_
#define RETRUST_PERSIST_JOURNAL_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/api/status.h"
#include "src/relational/delta.h"

namespace retrust::persist {

inline constexpr char kJournalMagic[8] = {'R', 'T', 'J', 'O',
                                          'U', 'R', 'N', 'L'};
inline constexpr uint32_t kJournalFormatVersion = 1;

/// Identity of the base a journal extends.
struct JournalHeader {
  uint64_t fingerprint = 0;
  uint64_t base_stamp = 0;
  uint64_t base_version = 0;
};

/// Serialized form of one DeltaBatch (a journal record's payload).
/// Exposed for tests; AppendBatch/ReadJournalFile wrap it in framing.
std::string EncodeDeltaBatch(const DeltaBatch& batch);
Result<DeltaBatch> DecodeDeltaBatch(const std::string& payload);

/// A parsed journal: its header and the complete records, in order.
struct JournalContents {
  JournalHeader header;
  std::vector<DeltaBatch> batches;
  /// True when the file ended in a torn (incomplete) record that was
  /// skipped — informational; the complete prefix is still valid.
  bool torn_tail = false;
};

/// Reads and validates a journal. kIoError for unreadable/corrupt files,
/// kVersionMismatch for an unsupported format version.
Result<JournalContents> ReadJournalFile(const std::string& path);

/// Appends DeltaBatch records to one journal file. Not thread-safe; the
/// owner (Session) serializes access under its own lock.
class JournalWriter {
 public:
  /// Creates/truncates `path` and writes a fresh header.
  static Result<std::unique_ptr<JournalWriter>> Create(
      const std::string& path, const JournalHeader& header);

  /// Opens an existing journal for appending. Validates the magic, version
  /// and that its fingerprint matches `expected_fingerprint`; truncates a
  /// torn trailing record. `num_records` reports the complete records
  /// already present so the caller can check version continuity.
  static Result<std::unique_ptr<JournalWriter>> Append(
      const std::string& path, uint64_t expected_fingerprint);

  /// Appends one batch and flushes. kIoError on write failure.
  Status AppendBatch(const DeltaBatch& batch);

  const JournalHeader& header() const { return header_; }
  uint64_t num_records() const { return num_records_; }
  const std::string& path() const { return path_; }

 private:
  JournalWriter(std::string path, JournalHeader header, uint64_t num_records,
                std::ofstream out)
      : path_(std::move(path)),
        header_(header),
        num_records_(num_records),
        out_(std::move(out)) {}

  std::string path_;
  JournalHeader header_;
  uint64_t num_records_ = 0;
  std::ofstream out_;
};

}  // namespace retrust::persist

#endif  // RETRUST_PERSIST_JOURNAL_H_
