#include "src/persist/journal.h"

#include <cstring>
#include <filesystem>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "src/persist/io.h"

namespace retrust::persist {

namespace {

constexpr size_t kPrefixSize = sizeof(kJournalMagic) + sizeof(uint32_t);
constexpr size_t kHeaderSize = 3 * sizeof(uint64_t);

constexpr uint8_t kValueNull = 0;
constexpr uint8_t kValueInt = 1;
constexpr uint8_t kValueDouble = 2;
constexpr uint8_t kValueString = 3;
constexpr uint8_t kValueVariable = 4;

// Duplicated from snapshot.cc rather than shared: the two formats version
// independently, and a change to one codec must not silently change the
// other's bytes.
void WriteValue(ByteWriter* w, const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      w->U8(kValueNull);
      break;
    case Value::Kind::kInt:
      w->U8(kValueInt);
      w->I64(v.AsInt());
      break;
    case Value::Kind::kDouble:
      w->U8(kValueDouble);
      w->F64(v.AsDouble());
      break;
    case Value::Kind::kString:
      w->U8(kValueString);
      w->Str(v.AsString());
      break;
    case Value::Kind::kVariable: {
      VarRef var = v.AsVariable();
      w->U8(kValueVariable);
      w->I32(var.attr);
      w->I32(var.index);
      break;
    }
  }
}

Value ReadValue(ByteReader* r) {
  switch (r->U8()) {
    case kValueNull:
      return Value::Null();
    case kValueInt:
      return Value(r->I64());
    case kValueDouble:
      return Value(r->F64());
    case kValueString:
      return Value(r->Str());
    case kValueVariable: {
      AttrId attr = r->I32();
      int32_t index = r->I32();
      return Value::Variable(attr, index);
    }
    default:
      throw std::invalid_argument("unknown value tag");
  }
}

Status IoError(const std::string& message) {
  return Status::Error(StatusCode::kIoError, message);
}

bool PlausibleCount(uint64_t count, const ByteReader& r) {
  return count <= r.remaining();
}

/// Validates the fixed prefix of journal bytes. Returns the header start
/// offset via `*body`, or an error.
Status CheckPrefix(const std::string& path, const std::string& bytes,
                   JournalHeader* header) {
  if (bytes.size() < kPrefixSize + kHeaderSize ||
      std::memcmp(bytes.data(), kJournalMagic, sizeof(kJournalMagic)) != 0) {
    return IoError("'" + path + "' is not a retrust journal");
  }
  ByteReader r(std::string_view(bytes).substr(sizeof(kJournalMagic)));
  const uint32_t version = r.U32();
  if (version != kJournalFormatVersion) {
    return Status::Error(
        StatusCode::kVersionMismatch,
        "journal '" + path + "' has format version " +
            std::to_string(version) + "; this build speaks version " +
            std::to_string(kJournalFormatVersion));
  }
  header->fingerprint = r.U64();
  header->base_stamp = r.U64();
  header->base_version = r.U64();
  return Status::Ok();
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return IoError("cannot open journal '" + path + "'");
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return IoError("read failure on journal '" + path + "'");
  return bytes;
}

/// Walks the records after the header. On success fills `payloads` with the
/// complete records' payload bytes and reports whether a torn tail was
/// skipped; `*end` is the offset just past the last complete record.
Status ScanRecords(const std::string& path, const std::string& bytes,
                   std::vector<std::string>* payloads, bool* torn_tail,
                   size_t* end) {
  size_t pos = kPrefixSize + kHeaderSize;
  *torn_tail = false;
  while (pos < bytes.size()) {
    const size_t left = bytes.size() - pos;
    if (left < sizeof(uint32_t)) {
      *torn_tail = true;
      break;
    }
    ByteReader len_reader(std::string_view(bytes).substr(pos));
    const uint64_t len = len_reader.U32();
    if (left < sizeof(uint32_t) + len + sizeof(uint32_t)) {
      // The record's frame extends past EOF: a torn append, not corruption.
      *torn_tail = true;
      break;
    }
    const char* payload = bytes.data() + pos + sizeof(uint32_t);
    ByteReader crc_reader(std::string_view(bytes).substr(
        pos + sizeof(uint32_t) + static_cast<size_t>(len)));
    if (crc_reader.U32() != Crc32(payload, static_cast<size_t>(len))) {
      return IoError("journal '" + path + "' record " +
                     std::to_string(payloads->size()) +
                     " failed its checksum");
    }
    payloads->emplace_back(payload, static_cast<size_t>(len));
    pos += sizeof(uint32_t) + static_cast<size_t>(len) + sizeof(uint32_t);
  }
  *end = pos;
  return Status::Ok();
}

}  // namespace

std::string EncodeDeltaBatch(const DeltaBatch& batch) {
  ByteWriter w;
  w.U64(batch.inserts.size());
  for (const Tuple& t : batch.inserts) {
    w.U64(t.size());
    for (const Value& v : t) WriteValue(&w, v);
  }
  w.U64(batch.updates.size());
  for (const CellUpdate& u : batch.updates) {
    w.I32(u.tuple);
    w.I32(u.attr);
    WriteValue(&w, u.value);
  }
  w.U64(batch.deletes.size());
  for (TupleId t : batch.deletes) w.I32(t);
  return w.buffer();
}

Result<DeltaBatch> DecodeDeltaBatch(const std::string& payload) {
  ByteReader r{std::string_view(payload)};
  DeltaBatch batch;
  try {
    const uint64_t num_inserts = r.U64();
    if (!PlausibleCount(num_inserts, r)) {
      return IoError("delta record has an implausible insert count");
    }
    batch.inserts.reserve(static_cast<size_t>(num_inserts));
    for (uint64_t i = 0; i < num_inserts; ++i) {
      const uint64_t arity = r.U64();
      if (!PlausibleCount(arity, r)) {
        return IoError("delta record has an implausible tuple arity");
      }
      Tuple t;
      t.reserve(static_cast<size_t>(arity));
      for (uint64_t a = 0; a < arity; ++a) t.push_back(ReadValue(&r));
      batch.inserts.push_back(std::move(t));
    }
    const uint64_t num_updates = r.U64();
    if (!PlausibleCount(num_updates, r)) {
      return IoError("delta record has an implausible update count");
    }
    batch.updates.reserve(static_cast<size_t>(num_updates));
    for (uint64_t i = 0; i < num_updates; ++i) {
      CellUpdate u;
      u.tuple = r.I32();
      u.attr = r.I32();
      u.value = ReadValue(&r);
      batch.updates.push_back(std::move(u));
    }
    const uint64_t num_deletes = r.U64();
    if (!PlausibleCount(num_deletes, r)) {
      return IoError("delta record has an implausible delete count");
    }
    batch.deletes.resize(static_cast<size_t>(num_deletes));
    for (TupleId& t : batch.deletes) t = r.I32();
  } catch (const std::exception& e) {
    return IoError(std::string("delta record is corrupt: ") + e.what());
  }
  if (!r.ok() || r.remaining() != 0) {
    return IoError("delta record has the wrong length");
  }
  return batch;
}

Result<JournalContents> ReadJournalFile(const std::string& path) {
  auto bytes = ReadWholeFile(path);
  if (!bytes.ok()) return bytes.status();

  JournalContents contents;
  Status prefix = CheckPrefix(path, *bytes, &contents.header);
  if (!prefix.ok()) return prefix;

  std::vector<std::string> payloads;
  size_t end = 0;
  Status scan = ScanRecords(path, *bytes, &payloads, &contents.torn_tail, &end);
  if (!scan.ok()) return scan;

  contents.batches.reserve(payloads.size());
  for (const std::string& payload : payloads) {
    auto batch = DecodeDeltaBatch(payload);
    if (!batch.ok()) {
      return Status::Error(batch.status().code(),
                           "journal '" + path + "' record " +
                               std::to_string(contents.batches.size()) + ": " +
                               batch.status().message());
    }
    contents.batches.push_back(std::move(*batch));
  }
  return contents;
}

Result<std::unique_ptr<JournalWriter>> JournalWriter::Create(
    const std::string& path, const JournalHeader& header) {
  ByteWriter w;
  for (char c : kJournalMagic) w.U8(static_cast<uint8_t>(c));
  w.U32(kJournalFormatVersion);
  w.U64(header.fingerprint);
  w.U64(header.base_stamp);
  w.U64(header.base_version);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return IoError("cannot create journal '" + path + "'");
  out.write(w.buffer().data(), static_cast<std::streamsize>(w.size()));
  out.flush();
  if (!out) return IoError("short write to journal '" + path + "'");
  return std::unique_ptr<JournalWriter>(
      new JournalWriter(path, header, 0, std::move(out)));
}

Result<std::unique_ptr<JournalWriter>> JournalWriter::Append(
    const std::string& path, uint64_t expected_fingerprint) {
  auto bytes = ReadWholeFile(path);
  if (!bytes.ok()) return bytes.status();

  JournalHeader header;
  Status prefix = CheckPrefix(path, *bytes, &header);
  if (!prefix.ok()) return prefix;
  if (header.fingerprint != expected_fingerprint) {
    return Status::Error(
        StatusCode::kSchemaMismatch,
        "journal '" + path +
            "' was written under a different Σ/weights configuration");
  }

  std::vector<std::string> payloads;
  bool torn_tail = false;
  size_t end = 0;
  Status scan = ScanRecords(path, *bytes, &payloads, &torn_tail, &end);
  if (!scan.ok()) return scan;
  if (torn_tail) {
    std::error_code ec;
    std::filesystem::resize_file(path, end, ec);
    if (ec) {
      return IoError("cannot truncate torn record in journal '" + path +
                     "': " + ec.message());
    }
  }

  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) return IoError("cannot open journal '" + path + "' for append");
  return std::unique_ptr<JournalWriter>(new JournalWriter(
      path, header, payloads.size(), std::move(out)));
}

Status JournalWriter::AppendBatch(const DeltaBatch& batch) {
  const std::string payload = EncodeDeltaBatch(batch);
  ByteWriter record;
  record.U32(static_cast<uint32_t>(payload.size()));
  out_.write(record.buffer().data(),
             static_cast<std::streamsize>(record.size()));
  out_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  ByteWriter crc;
  crc.U32(Crc32(payload.data(), payload.size()));
  out_.write(crc.buffer().data(), static_cast<std::streamsize>(crc.size()));
  out_.flush();
  if (!out_) {
    return IoError("short write to journal '" + path_ + "'");
  }
  ++num_records_;
  return Status::Ok();
}

}  // namespace retrust::persist
