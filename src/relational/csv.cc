#include "src/relational/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/util/string_util.h"

namespace retrust {
namespace {

// Parses one CSV record (handles quoted fields, embedded separators and
// doubled quotes). Returns false on EOF with no data.
bool ReadRecord(std::istream& in, std::vector<std::string>* fields) {
  fields->clear();
  std::string field;
  bool in_quotes = false;
  bool any = false;
  int c;
  while ((c = in.get()) != EOF) {
    any = true;
    char ch = static_cast<char>(c);
    if (in_quotes) {
      if (ch == '"') {
        if (in.peek() == '"') {
          field += '"';
          in.get();
        } else {
          in_quotes = false;
        }
      } else {
        field += ch;
      }
    } else if (ch == '"') {
      in_quotes = true;
    } else if (ch == ',') {
      fields->push_back(std::move(field));
      field.clear();
    } else if (ch == '\n') {
      break;
    } else if (ch == '\r') {
      // swallow; \r\n handled by the \n branch next iteration
    } else {
      field += ch;
    }
  }
  if (!any) return false;
  fields->push_back(std::move(field));
  return true;
}

std::string EscapeField(const std::string& s) {
  bool needs_quote = s.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

Instance ReadCsv(std::istream& in) {
  std::vector<std::string> header;
  if (!ReadRecord(in, &header) || header.empty()) {
    throw std::runtime_error("csv: missing header row");
  }
  std::vector<std::vector<std::string>> raw_rows;
  std::vector<std::string> fields;
  while (ReadRecord(in, &fields)) {
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (fields.size() != header.size()) {
      throw std::runtime_error("csv: row arity mismatch");
    }
    raw_rows.push_back(fields);
  }
  // Type inference per column: int64 if every non-empty field parses as
  // int64; else double; else string. Empty fields become NULL.
  int m = static_cast<int>(header.size());
  std::vector<AttrType> types(m, AttrType::kInt);
  for (int a = 0; a < m; ++a) {
    bool all_int = true, all_double = true, any_value = false;
    for (const auto& row : raw_rows) {
      if (row[a].empty()) continue;
      any_value = true;
      int64_t i;
      double d;
      if (!ParseInt64(row[a], &i)) all_int = false;
      if (!ParseDouble(row[a], &d)) all_double = false;
    }
    if (!any_value) {
      types[a] = AttrType::kString;
    } else if (all_int) {
      types[a] = AttrType::kInt;
    } else if (all_double) {
      types[a] = AttrType::kDouble;
    } else {
      types[a] = AttrType::kString;
    }
  }
  std::vector<Attribute> attrs(m);
  for (int a = 0; a < m; ++a) attrs[a] = {header[a], types[a]};
  Instance inst{Schema(std::move(attrs))};
  for (const auto& row : raw_rows) {
    Tuple t(m);
    for (int a = 0; a < m; ++a) {
      if (row[a].empty()) {
        t[a] = Value::Null();
      } else if (types[a] == AttrType::kInt) {
        int64_t v = 0;
        ParseInt64(row[a], &v);
        t[a] = Value(v);
      } else if (types[a] == AttrType::kDouble) {
        double v = 0;
        ParseDouble(row[a], &v);
        t[a] = Value(v);
      } else {
        t[a] = Value(row[a]);
      }
    }
    inst.AddTuple(std::move(t));
  }
  return inst;
}

Instance ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("csv: cannot open " + path);
  return ReadCsv(in);
}

void WriteCsv(const Instance& inst, std::ostream& out) {
  const Schema& schema = inst.schema();
  for (AttrId a = 0; a < schema.NumAttrs(); ++a) {
    if (a > 0) out << ',';
    out << EscapeField(schema.name(a));
  }
  out << '\n';
  for (TupleId t = 0; t < inst.NumTuples(); ++t) {
    for (AttrId a = 0; a < schema.NumAttrs(); ++a) {
      if (a > 0) out << ',';
      const Value& v = inst.At(t, a);
      if (!v.is_null()) out << EscapeField(v.ToString(schema.name(a)));
    }
    out << '\n';
  }
}

void WriteCsvFile(const Instance& inst, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("csv: cannot open " + path);
  WriteCsv(inst, out);
}

}  // namespace retrust
