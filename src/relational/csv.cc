#include "src/relational/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/util/string_util.h"

namespace retrust {
namespace {

// Parses one CSV record (handles quoted fields, embedded separators and
// doubled quotes). Returns false on EOF with no data.
bool ReadRecord(std::istream& in, std::vector<std::string>* fields) {
  fields->clear();
  std::string field;
  bool in_quotes = false;
  bool any = false;
  int c;
  while ((c = in.get()) != EOF) {
    any = true;
    char ch = static_cast<char>(c);
    if (in_quotes) {
      if (ch == '"') {
        if (in.peek() == '"') {
          field += '"';
          in.get();
        } else {
          in_quotes = false;
        }
      } else {
        field += ch;
      }
    } else if (ch == '"') {
      in_quotes = true;
    } else if (ch == ',') {
      fields->push_back(std::move(field));
      field.clear();
    } else if (ch == '\n') {
      break;
    } else if (ch == '\r') {
      // swallow; \r\n handled by the \n branch next iteration
    } else {
      field += ch;
    }
  }
  if (!any) return false;
  fields->push_back(std::move(field));
  return true;
}

std::string EscapeField(const std::string& s) {
  bool needs_quote = s.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

// Per-column type-inference accumulator: int64 if every non-empty field
// parses as int64; else double; else string. A column with no values at
// all is string.
struct ColumnInference {
  bool all_int = true;
  bool all_double = true;
  bool any_value = false;

  void Observe(const std::string& field) {
    if (field.empty()) return;
    any_value = true;
    int64_t i;
    double d;
    if (!ParseInt64(field, &i)) all_int = false;
    if (!ParseDouble(field, &d)) all_double = false;
  }

  AttrType Resolve() const {
    if (!any_value) return AttrType::kString;
    if (all_int) return AttrType::kInt;
    if (all_double) return AttrType::kDouble;
    return AttrType::kString;
  }
};

// One cell under a resolved column type. A non-conforming field throws:
// unreachable when inference and parsing saw the same rows, but
// ReadCsvFile's two passes re-open the file — a row appended in between
// must error, not silently coerce to 0.
Value ParseField(const std::string& field, AttrType type) {
  Value out;
  if (!TryParseCsvField(field, type, &out)) {
    throw std::runtime_error("csv: field '" + field +
                             "' does not parse as the inferred column "
                             "type (file changed between passes?)");
  }
  return out;
}

Schema SchemaFrom(const std::vector<std::string>& header,
                  const std::vector<ColumnInference>& cols) {
  std::vector<Attribute> attrs(header.size());
  for (size_t a = 0; a < header.size(); ++a) {
    attrs[a] = {header[a], cols[a].Resolve()};
  }
  return Schema(std::move(attrs));
}

}  // namespace

bool TryParseCsvField(const std::string& field, AttrType type, Value* out) {
  if (field.empty()) {
    *out = Value::Null();
    return true;
  }
  if (type == AttrType::kInt) {
    int64_t v = 0;
    if (!ParseInt64(field, &v)) return false;
    *out = Value(v);
    return true;
  }
  if (type == AttrType::kDouble) {
    double v = 0;
    if (!ParseDouble(field, &v)) return false;
    *out = Value(v);
    return true;
  }
  *out = Value(field);
  return true;
}

CsvReader::CsvReader(std::istream& in) : in_(in) {
  if (!ReadRecord(in_, &header_) || header_.empty()) {
    throw std::runtime_error("csv: missing header row");
  }
}

bool CsvReader::Next(std::vector<std::string>* fields) {
  while (ReadRecord(in_, fields)) {
    if (fields->size() == 1 && (*fields)[0].empty()) continue;  // blank line
    if (fields->size() != header_.size()) {
      throw std::runtime_error("csv: row arity mismatch");
    }
    return true;
  }
  return false;
}

Instance ReadCsv(std::istream& in) {
  // A generic istream cannot rewind, so the single-stream reader retains
  // the raw rows across the inference pass; ReadCsvFile below streams the
  // file twice instead.
  CsvReader reader(in);
  const int m = reader.num_fields();
  std::vector<std::vector<std::string>> raw_rows;
  std::vector<std::string> fields;
  std::vector<ColumnInference> cols(m);
  while (reader.Next(&fields)) {
    for (int a = 0; a < m; ++a) cols[a].Observe(fields[a]);
    raw_rows.push_back(fields);
  }
  Instance inst{SchemaFrom(reader.header(), cols)};
  for (const auto& row : raw_rows) {
    Tuple t(m);
    for (int a = 0; a < m; ++a) {
      t[a] = ParseField(row[a], inst.schema().type(a));
    }
    inst.AddTuple(std::move(t));
  }
  return inst;
}

Instance ReadCsvFile(const std::string& path) {
  // Pass 1: infer column types without retaining any rows.
  std::ifstream infer_in(path, std::ios::binary);
  if (!infer_in) throw std::runtime_error("csv: cannot open " + path);
  CsvReader infer(infer_in);
  const int m = infer.num_fields();
  std::vector<ColumnInference> cols(m);
  std::vector<std::string> fields;
  while (infer.Next(&fields)) {
    for (int a = 0; a < m; ++a) cols[a].Observe(fields[a]);
  }
  // Pass 2: stream the rows straight into the instance. The inference
  // state is only valid for the pass-1 header — a file whose header
  // changed between the opens must error, not index out of bounds.
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("csv: cannot open " + path);
  CsvReader reader(in);
  if (reader.header() != infer.header()) {
    throw std::runtime_error("csv: header of " + path +
                             " changed between read passes");
  }
  Instance inst{SchemaFrom(reader.header(), cols)};
  while (reader.Next(&fields)) {
    Tuple t(m);
    for (int a = 0; a < m; ++a) {
      t[a] = ParseField(fields[a], inst.schema().type(a));
    }
    inst.AddTuple(std::move(t));
  }
  return inst;
}

void WriteCsv(const Instance& inst, std::ostream& out) {
  const Schema& schema = inst.schema();
  for (AttrId a = 0; a < schema.NumAttrs(); ++a) {
    if (a > 0) out << ',';
    out << EscapeField(schema.name(a));
  }
  out << '\n';
  for (TupleId t = 0; t < inst.NumTuples(); ++t) {
    for (AttrId a = 0; a < schema.NumAttrs(); ++a) {
      if (a > 0) out << ',';
      const Value& v = inst.At(t, a);
      if (!v.is_null()) out << EscapeField(v.ToString(schema.name(a)));
    }
    out << '\n';
  }
}

void WriteCsvFile(const Instance& inst, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("csv: cannot open " + path);
  WriteCsv(inst, out);
}

}  // namespace retrust
