// Typed cell values with V-instance variable semantics (paper Definition 1).
//
// A cell holds either a constant (null / int64 / double / string) or an
// attribute-scoped variable v^A_i. Equality follows the V-instance rules:
//   * constants compare by type and content;
//   * a variable equals another variable iff they have the same attribute
//     and index (the same variable);
//   * a variable never equals a constant (variables instantiate to fresh
//     values outside the attribute's active domain);
//   * distinct variables can never be instantiated to equal values, so
//     distinct variables compare unequal.

#ifndef RETRUST_RELATIONAL_VALUE_H_
#define RETRUST_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "src/relational/attrset.h"

namespace retrust {

/// Identifies variable v^A_i: the i-th fresh variable of attribute A.
struct VarRef {
  AttrId attr = -1;
  int32_t index = -1;

  friend bool operator==(const VarRef& a, const VarRef& b) {
    return a.attr == b.attr && a.index == b.index;
  }
};

/// A single cell value (constant or variable).
class Value {
 public:
  enum class Kind { kNull, kInt, kDouble, kString, kVariable };

  Value() : rep_(std::monostate{}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}
  explicit Value(VarRef v) : rep_(v) {}

  /// The null constant.
  static Value Null() { return Value(); }
  /// The variable v^{attr}_{index}.
  static Value Variable(AttrId attr, int32_t index) {
    return Value(VarRef{attr, index});
  }

  Kind kind() const { return static_cast<Kind>(rep_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_variable() const { return kind() == Kind::kVariable; }
  bool is_constant() const { return !is_variable(); }

  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  VarRef AsVariable() const { return std::get<VarRef>(rep_); }

  /// V-instance equality (see file comment).
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Human-readable rendering; variables render as "?A3" style with the
  /// attribute id, or "?Name3" when a name is supplied.
  std::string ToString() const;
  std::string ToString(const std::string& attr_name) const;

  /// Hash compatible with operator==.
  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string, VarRef> rep_;
};

/// Hasher for unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace retrust

#endif  // RETRUST_RELATIONAL_VALUE_H_
