// AttrSet: a set of attribute ids represented as a 64-bit mask.
//
// The paper's search states, difference sets, and FD left-hand-sides are all
// attribute sets; the whole search layer manipulates them heavily, so the
// representation is a single uint64_t (schemas are capped at 64 attributes;
// the paper's largest relation has 40).

#ifndef RETRUST_RELATIONAL_ATTRSET_H_
#define RETRUST_RELATIONAL_ATTRSET_H_

#include <bit>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace retrust {

/// Attribute index within a schema (position, 0-based).
using AttrId = int;

/// Maximum number of attributes supported by AttrSet.
inline constexpr int kMaxAttrs = 64;

/// An immutable-value set of attribute ids with subset algebra and
/// iteration in increasing id order.
class AttrSet {
 public:
  constexpr AttrSet() : bits_(0) {}
  constexpr explicit AttrSet(uint64_t bits) : bits_(bits) {}
  AttrSet(std::initializer_list<AttrId> ids) : bits_(0) {
    for (AttrId a : ids) Add(a);
  }

  /// The set {a}.
  static constexpr AttrSet Single(AttrId a) { return AttrSet(Bit(a)); }

  /// The set {0, 1, ..., m-1}.
  static constexpr AttrSet Universe(int m) {
    return AttrSet(m >= 64 ? ~uint64_t{0} : ((uint64_t{1} << m) - 1));
  }

  bool Contains(AttrId a) const { return (bits_ & Bit(a)) != 0; }
  bool Empty() const { return bits_ == 0; }
  int Count() const { return std::popcount(bits_); }
  uint64_t bits() const { return bits_; }

  void Add(AttrId a) { bits_ |= Bit(a); }
  void Remove(AttrId a) { bits_ &= ~Bit(a); }

  AttrSet Union(AttrSet o) const { return AttrSet(bits_ | o.bits_); }
  AttrSet Intersect(AttrSet o) const { return AttrSet(bits_ & o.bits_); }
  AttrSet Minus(AttrSet o) const { return AttrSet(bits_ & ~o.bits_); }

  bool SubsetOf(AttrSet o) const { return (bits_ & ~o.bits_) == 0; }
  bool ProperSubsetOf(AttrSet o) const {
    return SubsetOf(o) && bits_ != o.bits_;
  }
  bool Intersects(AttrSet o) const { return (bits_ & o.bits_) != 0; }

  /// Smallest attribute id in the set; -1 when empty.
  AttrId Min() const {
    return bits_ == 0 ? -1 : static_cast<AttrId>(std::countr_zero(bits_));
  }

  /// Largest attribute id in the set; -1 when empty. This is the "greatest
  /// attribute" used by the unique-parent rule of the search tree (Fig. 4b).
  AttrId Max() const {
    return bits_ == 0 ? -1 : 63 - static_cast<AttrId>(std::countl_zero(bits_));
  }

  /// Materializes the ids in increasing order.
  std::vector<AttrId> ToVector() const;

  /// Renders as e.g. "{A,C}" given attribute names, or "{0,2}" without.
  std::string ToString() const;
  std::string ToString(const std::vector<std::string>& names) const;

  friend bool operator==(AttrSet a, AttrSet b) { return a.bits_ == b.bits_; }
  friend bool operator!=(AttrSet a, AttrSet b) { return a.bits_ != b.bits_; }
  /// Arbitrary total order (by mask) so AttrSet can key ordered containers.
  friend bool operator<(AttrSet a, AttrSet b) { return a.bits_ < b.bits_; }

  /// Iterates set bits in increasing order.
  class Iterator {
   public:
    explicit Iterator(uint64_t bits) : bits_(bits) {}
    AttrId operator*() const {
      return static_cast<AttrId>(std::countr_zero(bits_));
    }
    Iterator& operator++() {
      bits_ &= bits_ - 1;
      return *this;
    }
    bool operator!=(const Iterator& o) const { return bits_ != o.bits_; }

   private:
    uint64_t bits_;
  };
  Iterator begin() const { return Iterator(bits_); }
  Iterator end() const { return Iterator(0); }

 private:
  static constexpr uint64_t Bit(AttrId a) {
    assert(a >= 0 && a < kMaxAttrs);
    return uint64_t{1} << a;
  }
  uint64_t bits_;
};

/// Hasher so AttrSet can key unordered containers.
struct AttrSetHash {
  size_t operator()(AttrSet s) const {
    uint64_t x = s.bits();
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

}  // namespace retrust

#endif  // RETRUST_RELATIONAL_ATTRSET_H_
