// Relation schema: ordered attribute names with declared types.

#ifndef RETRUST_RELATIONAL_SCHEMA_H_
#define RETRUST_RELATIONAL_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/relational/attrset.h"

namespace retrust {

/// Declared attribute type (cells may additionally be null or variables).
enum class AttrType { kInt, kDouble, kString };

/// One attribute of a schema.
struct Attribute {
  std::string name;
  AttrType type = AttrType::kString;
};

/// An ordered list of attributes; attribute ids are positions. The attribute
/// order doubles as the total order required by the search tree's
/// unique-parent rule (paper §5.1).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attrs);

  /// Convenience: all-string schema from names.
  static Schema FromNames(const std::vector<std::string>& names);

  int NumAttrs() const { return static_cast<int>(attrs_.size()); }
  const Attribute& attr(AttrId a) const { return attrs_[a]; }
  const std::string& name(AttrId a) const { return attrs_[a].name; }
  AttrType type(AttrId a) const { return attrs_[a].type; }

  /// All attribute names in order.
  std::vector<std::string> Names() const;

  /// Id of the attribute named `name`, or -1.
  AttrId Find(const std::string& name) const;

  /// Resolves a comma-free list of names to an AttrSet; throws
  /// std::invalid_argument on unknown names.
  AttrSet Resolve(const std::vector<std::string>& names) const;

  /// The set of all attributes.
  AttrSet Universe() const { return AttrSet::Universe(NumAttrs()); }

  friend bool operator==(const Schema& a, const Schema& b);

 private:
  std::vector<Attribute> attrs_;
  std::unordered_map<std::string, AttrId> by_name_;
};

}  // namespace retrust

#endif  // RETRUST_RELATIONAL_SCHEMA_H_
