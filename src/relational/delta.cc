#include "src/relational/delta.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace retrust {

DeltaPlan PlanDelta(const DeltaBatch& delta, int num_tuples, int num_attrs) {
  DeltaPlan plan;
  plan.old_num_tuples = num_tuples;

  for (const Tuple& t : delta.inserts) {
    if (static_cast<int>(t.size()) != num_attrs) {
      throw std::invalid_argument(
          "delta insert arity " + std::to_string(t.size()) +
          " does not match the " + std::to_string(num_attrs) +
          "-attribute schema");
    }
  }
  for (const CellUpdate& u : delta.updates) {
    if (u.tuple < 0 || u.tuple >= num_tuples) {
      throw std::invalid_argument("delta update tuple id " +
                                  std::to_string(u.tuple) + " out of range");
    }
    if (u.attr < 0 || u.attr >= num_attrs) {
      throw std::invalid_argument("delta update attribute " +
                                  std::to_string(u.attr) + " out of range");
    }
  }
  std::vector<TupleId> dels = delta.deletes;
  std::sort(dels.begin(), dels.end(), std::greater<TupleId>());
  for (size_t i = 0; i < dels.size(); ++i) {
    if (dels[i] < 0 || dels[i] >= num_tuples) {
      throw std::invalid_argument("delta delete tuple id " +
                                  std::to_string(dels[i]) + " out of range");
    }
    if (i > 0 && dels[i] == dels[i - 1]) {
      throw std::invalid_argument("duplicate delete of tuple id " +
                                  std::to_string(dels[i]));
    }
  }

  // Simulate the swap-removes (descending ids): slot_of tracks where each
  // pre-delta tuple currently lives, owner the reverse.
  std::vector<TupleId> slot_of(num_tuples);
  std::vector<TupleId> owner(num_tuples);
  for (TupleId t = 0; t < num_tuples; ++t) slot_of[t] = owner[t] = t;
  int live = num_tuples;
  for (TupleId d : dels) {
    TupleId hole = slot_of[d];
    TupleId last = owner[live - 1];
    if (hole != live - 1) {
      plan.moves.emplace_back(hole, live - 1);
      owner[hole] = last;
      slot_of[last] = hole;
    }
    slot_of[d] = -1;
    --live;
  }
  plan.remap = std::move(slot_of);

  plan.new_num_tuples = live + static_cast<int>(delta.inserts.size());

  // Dirty = updated survivors + relocated survivors + inserts, in
  // post-delta ids.
  std::vector<char> dirty(plan.new_num_tuples, 0);
  for (const CellUpdate& u : delta.updates) {
    TupleId t = plan.remap[u.tuple];
    if (t >= 0) dirty[t] = 1;
  }
  for (TupleId t = 0; t < num_tuples; ++t) {
    TupleId nt = plan.remap[t];
    if (nt >= 0 && nt != t) dirty[nt] = 1;
  }
  for (int i = 0; i < static_cast<int>(delta.inserts.size()); ++i) {
    dirty[live + i] = 1;
  }
  for (TupleId t = 0; t < plan.new_num_tuples; ++t) {
    if (dirty[t]) plan.dirty.push_back(t);
  }
  return plan;
}

}  // namespace retrust
