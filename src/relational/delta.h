// Tuple-level mutation batches and their canonical application plan.
//
// A DeltaBatch describes inserts, cell updates, and deletes against one
// instance. Application order is fixed so every consumer (Instance,
// EncodedInstance, and the delta-maintained index stack above them) lands
// on the same post-delta layout:
//
//   1. updates, in list order (a later update to the same cell wins),
//      addressed by PRE-delta TupleIds;
//   2. deletes, by PRE-delta TupleIds, with swap-remove semantics: ids are
//      processed in descending order and each hole is filled by the row in
//      the last live slot, so only O(|deletes|) rows move and every
//      untouched tuple keeps its id (the delta's blast radius stays
//      proportional to the delta, which the incremental index maintenance
//      depends on);
//   3. inserts, appended in list order.
//
// PlanDelta resolves a batch into a DeltaPlan — the old->new id remap, the
// explicit row moves, and the set of "dirty" post-delta ids whose content
// is new, changed, or relocated. Derived structures (difference-set index,
// violation table, cover memo) are patched by comparing only dirty tuples
// against the relation: O(Δ·n) instead of the O(n²) full rebuild.

#ifndef RETRUST_RELATIONAL_DELTA_H_
#define RETRUST_RELATIONAL_DELTA_H_

#include <utility>
#include <vector>

#include "src/relational/instance.h"

namespace retrust {

/// One cell assignment t[attr] := value (constants or variables).
struct CellUpdate {
  TupleId tuple = -1;
  AttrId attr = -1;
  Value value;
};

/// A batch of tuple mutations against one instance. Ids refer to the
/// PRE-delta instance; see the application order in the file comment.
struct DeltaBatch {
  std::vector<Tuple> inserts;
  std::vector<CellUpdate> updates;
  std::vector<TupleId> deletes;

  bool Empty() const {
    return inserts.empty() && updates.empty() && deletes.empty();
  }
  size_t size() const {
    return inserts.size() + updates.size() + deletes.size();
  }

  DeltaBatch& Insert(Tuple t) {
    inserts.push_back(std::move(t));
    return *this;
  }
  DeltaBatch& Update(TupleId t, AttrId a, Value v) {
    updates.push_back({t, a, std::move(v)});
    return *this;
  }
  DeltaBatch& Delete(TupleId t) {
    deletes.push_back(t);
    return *this;
  }
};

/// How a DeltaBatch lands on an instance of a given pre-delta shape. The
/// plan is a pure function of (batch, old cardinality), shared by Instance
/// and EncodedInstance so both stay positionally aligned.
struct DeltaPlan {
  int old_num_tuples = 0;
  int new_num_tuples = 0;  ///< post-delta cardinality (after inserts)

  /// Pre-delta id -> post-delta id; -1 for deleted tuples. Tuples not
  /// moved by a swap-remove map to themselves.
  std::vector<TupleId> remap;

  /// Row moves (dst_slot, src_slot) realizing the swap-remove deletes, in
  /// execution order; after the moves the instance truncates to
  /// old_num_tuples - |deletes| rows and appends the inserts.
  std::vector<std::pair<TupleId, TupleId>> moves;

  /// Post-delta ids whose content is new, changed, or relocated — the
  /// delta's blast radius — ascending and deduplicated. Every conflict
  /// edge gained or lost by the delta has an endpoint in this set.
  std::vector<TupleId> dirty;
};

/// Resolves `delta` against a pre-delta instance with `num_tuples` rows and
/// `num_attrs` columns. Throws std::invalid_argument on out-of-range ids,
/// duplicate delete ids, or insert arity mismatches (before anything is
/// applied, so a failed plan never leaves an instance half-mutated).
DeltaPlan PlanDelta(const DeltaBatch& delta, int num_tuples, int num_attrs);

}  // namespace retrust

#endif  // RETRUST_RELATIONAL_DELTA_H_
