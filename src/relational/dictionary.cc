#include "src/relational/dictionary.h"

#include <algorithm>
#include <stdexcept>

#include "src/relational/delta.h"
#include "src/util/hash.h"

namespace retrust {

int32_t Dictionary::Intern(const Value& v) {
  auto it = index_.find(v);
  if (it != index_.end()) return it->second;
  int32_t code = static_cast<int32_t>(values_.size());
  values_.push_back(v);
  index_.emplace(v, code);
  return code;
}

int32_t Dictionary::Lookup(const Value& v) const {
  auto it = index_.find(v);
  return it == index_.end() ? -1 : it->second;
}

Dictionary Dictionary::FromValues(std::vector<Value> values) {
  Dictionary d;
  d.values_ = std::move(values);
  d.index_.reserve(d.values_.size());
  for (size_t i = 0; i < d.values_.size(); ++i) {
    if (d.values_[i].is_variable()) {
      throw std::invalid_argument("dictionary values must be constants");
    }
    auto [it, inserted] =
        d.index_.emplace(d.values_[i], static_cast<int32_t>(i));
    if (!inserted) {
      throw std::invalid_argument("duplicate dictionary value at code " +
                                  std::to_string(i));
    }
  }
  return d;
}

EncodedInstance::EncodedInstance(const Instance& inst)
    : schema_(inst.schema()), n_(inst.NumTuples()), m_(inst.NumAttrs()) {
  cols_.resize(m_);
  for (AttrId a = 0; a < m_; ++a) cols_[a].resize(n_);
  dicts_.resize(m_);
  next_var_.assign(m_, 0);
  for (TupleId t = 0; t < n_; ++t) {
    for (AttrId a = 0; a < m_; ++a) {
      const Value& v = inst.At(t, a);
      int32_t code;
      if (v.is_variable()) {
        int32_t idx = v.AsVariable().index;
        code = VariableCode(idx);
        if (idx + 1 > next_var_[a]) next_var_[a] = idx + 1;
      } else {
        code = dicts_[a].Intern(v);
      }
      cols_[a][t] = code;
    }
  }
}

int32_t EncodedInstance::EncodeValue(const Value& v, AttrId a) {
  if (v.is_variable()) {
    int32_t idx = v.AsVariable().index;
    next_var_[a] = std::max(next_var_[a], idx + 1);
    return VariableCode(idx);
  }
  return dicts_[a].Intern(v);
}

void EncodedInstance::ApplyDelta(const DeltaBatch& delta,
                                 const DeltaPlan& plan) {
  for (const CellUpdate& u : delta.updates) {
    cols_[u.attr][u.tuple] = EncodeValue(u.value, u.attr);
  }
  for (const auto& [dst, src] : plan.moves) {
    for (AttrId a = 0; a < m_; ++a) cols_[a][dst] = cols_[a][src];
  }
  const int live = plan.new_num_tuples - static_cast<int>(delta.inserts.size());
  n_ = plan.new_num_tuples;
  for (AttrId a = 0; a < m_; ++a) cols_[a].resize(n_);
  for (size_t i = 0; i < delta.inserts.size(); ++i) {
    const Tuple& t = delta.inserts[i];
    TupleId row = live + static_cast<TupleId>(i);
    for (AttrId a = 0; a < m_; ++a) {
      cols_[a][row] = EncodeValue(t[a], a);
    }
  }
}

std::vector<int32_t> EncodedInstance::RowMajorCodes() const {
  std::vector<int32_t> out(static_cast<size_t>(n_) * m_);
  for (AttrId a = 0; a < m_; ++a) {
    const int32_t* col = cols_[a].data();
    for (TupleId t = 0; t < n_; ++t) {
      out[static_cast<size_t>(t) * m_ + a] = col[t];
    }
  }
  return out;
}

EncodedInstance EncodedInstance::Restore(
    Schema schema, int num_tuples, std::vector<std::vector<int32_t>> columns,
    std::vector<Dictionary> dicts, std::vector<int32_t> next_var) {
  const int m = schema.NumAttrs();
  if (num_tuples < 0 || columns.size() != static_cast<size_t>(m) ||
      dicts.size() != static_cast<size_t>(m) ||
      next_var.size() != static_cast<size_t>(m)) {
    throw std::invalid_argument("encoded-instance parts do not match shape");
  }
  for (AttrId a = 0; a < m; ++a) {
    if (columns[a].size() != static_cast<size_t>(num_tuples)) {
      throw std::invalid_argument("column length mismatch for attribute " +
                                  std::to_string(a));
    }
    for (const int32_t code : columns[a]) {
      if (IsVariableCode(code) ? VariableIndexOfCode(code) >= next_var[a]
                               : code >= dicts[a].size()) {
        throw std::invalid_argument("cell code out of range for attribute " +
                                    std::to_string(a));
      }
    }
  }
  EncodedInstance out;
  out.schema_ = std::move(schema);
  out.n_ = num_tuples;
  out.m_ = m;
  out.cols_ = std::move(columns);
  out.dicts_ = std::move(dicts);
  out.next_var_ = std::move(next_var);
  return out;
}

int32_t EncodedInstance::SetFreshVariable(TupleId t, AttrId a) {
  int32_t code = NewVariableCode(a);
  SetCode(t, a, code);
  return code;
}

Value EncodedInstance::DecodeCell(TupleId t, AttrId a) const {
  int32_t code = At(t, a);
  if (IsVariableCode(code)) {
    return Value::Variable(a, VariableIndexOfCode(code));
  }
  return dicts_[a].value(code);
}

Instance EncodedInstance::Decode() const {
  Instance out(schema_);
  for (TupleId t = 0; t < n_; ++t) {
    Tuple row(m_);
    for (AttrId a = 0; a < m_; ++a) row[a] = DecodeCell(t, a);
    out.AddTuple(std::move(row));
  }
  return out;
}

int64_t EncodedInstance::CountDistinctProjection(AttrSet attrs) const {
  std::vector<AttrId> cols = attrs.ToVector();
  if (cols.empty()) return n_ > 0 ? 1 : 0;
  std::unordered_set<std::vector<int32_t>, CodeVectorHash> seen;
  seen.reserve(static_cast<size_t>(n_));
  std::vector<int32_t> key(cols.size());
  for (TupleId t = 0; t < n_; ++t) {
    for (size_t i = 0; i < cols.size(); ++i) key[i] = At(t, cols[i]);
    seen.insert(key);
  }
  return static_cast<int64_t>(seen.size());
}

std::vector<CellRef> EncodedInstance::DiffCells(
    const EncodedInstance& other) const {
  if (n_ != other.n_ || m_ != other.m_) {
    throw std::invalid_argument("DiffCells requires same shape");
  }
  std::vector<CellRef> out;
  for (TupleId t = 0; t < n_; ++t) {
    for (AttrId a = 0; a < m_; ++a) {
      if (At(t, a) != other.At(t, a)) out.push_back({t, a});
    }
  }
  return out;
}

}  // namespace retrust
