#include "src/relational/dictionary.h"

#include <stdexcept>

#include "src/util/hash.h"

namespace retrust {

int32_t Dictionary::Intern(const Value& v) {
  auto it = index_.find(v);
  if (it != index_.end()) return it->second;
  int32_t code = static_cast<int32_t>(values_.size());
  values_.push_back(v);
  index_.emplace(v, code);
  return code;
}

int32_t Dictionary::Lookup(const Value& v) const {
  auto it = index_.find(v);
  return it == index_.end() ? -1 : it->second;
}

EncodedInstance::EncodedInstance(const Instance& inst)
    : schema_(inst.schema()), n_(inst.NumTuples()), m_(inst.NumAttrs()) {
  codes_.resize(static_cast<size_t>(n_) * m_);
  dicts_.resize(m_);
  next_var_.assign(m_, 0);
  for (TupleId t = 0; t < n_; ++t) {
    for (AttrId a = 0; a < m_; ++a) {
      const Value& v = inst.At(t, a);
      int32_t code;
      if (v.is_variable()) {
        int32_t idx = v.AsVariable().index;
        code = VariableCode(idx);
        if (idx + 1 > next_var_[a]) next_var_[a] = idx + 1;
      } else {
        code = dicts_[a].Intern(v);
      }
      codes_[Flat(t, a)] = code;
    }
  }
}

int32_t EncodedInstance::SetFreshVariable(TupleId t, AttrId a) {
  int32_t code = NewVariableCode(a);
  SetCode(t, a, code);
  return code;
}

Value EncodedInstance::DecodeCell(TupleId t, AttrId a) const {
  int32_t code = At(t, a);
  if (IsVariableCode(code)) {
    return Value::Variable(a, VariableIndexOfCode(code));
  }
  return dicts_[a].value(code);
}

Instance EncodedInstance::Decode() const {
  Instance out(schema_);
  for (TupleId t = 0; t < n_; ++t) {
    Tuple row(m_);
    for (AttrId a = 0; a < m_; ++a) row[a] = DecodeCell(t, a);
    out.AddTuple(std::move(row));
  }
  return out;
}

int64_t EncodedInstance::CountDistinctProjection(AttrSet attrs) const {
  std::vector<AttrId> cols = attrs.ToVector();
  if (cols.empty()) return n_ > 0 ? 1 : 0;
  std::unordered_set<std::vector<int32_t>, CodeVectorHash> seen;
  seen.reserve(static_cast<size_t>(n_));
  std::vector<int32_t> key(cols.size());
  for (TupleId t = 0; t < n_; ++t) {
    for (size_t i = 0; i < cols.size(); ++i) key[i] = At(t, cols[i]);
    seen.insert(key);
  }
  return static_cast<int64_t>(seen.size());
}

std::vector<CellRef> EncodedInstance::DiffCells(
    const EncodedInstance& other) const {
  if (n_ != other.n_ || m_ != other.m_) {
    throw std::invalid_argument("DiffCells requires same shape");
  }
  std::vector<CellRef> out;
  for (TupleId t = 0; t < n_; ++t) {
    for (AttrId a = 0; a < m_; ++a) {
      if (At(t, a) != other.At(t, a)) out.push_back({t, a});
    }
  }
  return out;
}

}  // namespace retrust
