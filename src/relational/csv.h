// CSV reader/writer for instances. The reader infers attribute types from
// the data (int64 -> double -> string fallback); the first row is a header.

#ifndef RETRUST_RELATIONAL_CSV_H_
#define RETRUST_RELATIONAL_CSV_H_

#include <iosfwd>
#include <string>

#include "src/relational/instance.h"

namespace retrust {

/// Parses CSV text (header + rows, RFC-4180 quoting) into an Instance.
/// Throws std::runtime_error on malformed input.
Instance ReadCsv(std::istream& in);

/// Reads a CSV file. Throws std::runtime_error if the file cannot be opened.
Instance ReadCsvFile(const std::string& path);

/// Writes `inst` (header + rows) as CSV. Variables render as "?Attr<i>".
void WriteCsv(const Instance& inst, std::ostream& out);

/// Writes a CSV file.
void WriteCsvFile(const Instance& inst, const std::string& path);

}  // namespace retrust

#endif  // RETRUST_RELATIONAL_CSV_H_
