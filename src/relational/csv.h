// CSV reader/writer for instances. The reader infers attribute types from
// the data (int64 -> double -> string fallback); the first row is a header.

#ifndef RETRUST_RELATIONAL_CSV_H_
#define RETRUST_RELATIONAL_CSV_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/relational/instance.h"

namespace retrust {

/// Streaming CSV record reader (RFC-4180 quoting): the header is parsed at
/// construction, data records are pulled one at a time — peak transient
/// memory is a single record, which is what lets ReadCsvFile and the
/// csv_repair_tool append path handle files much larger than the raw text.
class CsvReader {
 public:
  /// Reads the header record; throws std::runtime_error when missing.
  explicit CsvReader(std::istream& in);

  const std::vector<std::string>& header() const { return header_; }
  int num_fields() const { return static_cast<int>(header_.size()); }

  /// Reads the next data record into `fields` (blank lines are skipped).
  /// Returns false at end of input; throws std::runtime_error when a
  /// record's arity does not match the header.
  bool Next(std::vector<std::string>* fields);

 private:
  std::istream& in_;
  std::vector<std::string> header_;
};

/// Parses one raw CSV field under a resolved column type: empty fields
/// become NULL, the rest parse as the type. Returns false (leaving *out
/// untouched) when a non-empty field does not conform — the non-throwing
/// companion to the readers, for streaming appenders that map rows onto
/// an existing schema.
bool TryParseCsvField(const std::string& field, AttrType type, Value* out);

/// Parses CSV text (header + rows, RFC-4180 quoting) into an Instance.
/// Throws std::runtime_error on malformed input.
Instance ReadCsv(std::istream& in);

/// Reads a CSV file in two streaming passes — one to infer column types,
/// one to build the rows — so peak memory is the Instance plus one record,
/// never a second raw-text copy of the file. Same result as ReadCsv on the
/// file's contents. Throws std::runtime_error if the file cannot be opened.
Instance ReadCsvFile(const std::string& path);

/// Writes `inst` (header + rows) as CSV. Variables render as "?Attr<i>".
void WriteCsv(const Instance& inst, std::ostream& out);

/// Writes a CSV file.
void WriteCsvFile(const Instance& inst, const std::string& path);

}  // namespace retrust

#endif  // RETRUST_RELATIONAL_CSV_H_
