#include "src/relational/value.h"

#include "src/util/hash.h"

namespace retrust {

bool operator==(const Value& a, const Value& b) {
  if (a.rep_.index() != b.rep_.index()) return false;
  return a.rep_ == b.rep_;
}

std::string Value::ToString() const {
  switch (kind()) {
    case Kind::kNull:
      return "NULL";
    case Kind::kInt:
      return std::to_string(AsInt());
    case Kind::kDouble: {
      std::string s = std::to_string(AsDouble());
      return s;
    }
    case Kind::kString:
      return AsString();
    case Kind::kVariable: {
      VarRef v = AsVariable();
      return "?" + std::to_string(v.attr) + "_" + std::to_string(v.index);
    }
  }
  return "";
}

std::string Value::ToString(const std::string& attr_name) const {
  if (kind() != Kind::kVariable) return ToString();
  VarRef v = AsVariable();
  return "?" + attr_name + std::to_string(v.index);
}

size_t Value::Hash() const {
  uint64_t seed = static_cast<uint64_t>(rep_.index());
  switch (kind()) {
    case Kind::kNull:
      break;
    case Kind::kInt:
      HashCombine(&seed, static_cast<uint64_t>(AsInt()));
      break;
    case Kind::kDouble: {
      double d = AsDouble();
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      HashCombine(&seed, bits);
      break;
    }
    case Kind::kString:
      HashCombine(&seed, std::hash<std::string>{}(AsString()));
      break;
    case Kind::kVariable: {
      VarRef v = AsVariable();
      HashCombine(&seed, static_cast<uint64_t>(v.attr));
      HashCombine(&seed, static_cast<uint64_t>(v.index));
      break;
    }
  }
  return static_cast<size_t>(seed);
}

}  // namespace retrust
