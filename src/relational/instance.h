// Relation instances with V-instance semantics (paper Definition 1).
//
// An Instance is a bag of tuples over a Schema. Cells hold Values, which may
// be attribute-scoped variables; Ground() materializes one representative
// ground instance by instantiating each variable to a fresh constant outside
// the attribute's active domain (distinct variables get distinct constants),
// exactly the paper's instantiation rule.

#ifndef RETRUST_RELATIONAL_INSTANCE_H_
#define RETRUST_RELATIONAL_INSTANCE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/relational/schema.h"
#include "src/relational/value.h"

namespace retrust {

struct DeltaBatch;
struct DeltaPlan;

/// Index of a tuple within an instance.
using TupleId = int32_t;

/// One row; cells are positionally aligned with the schema.
using Tuple = std::vector<Value>;

/// Identifies a cell t[A].
struct CellRef {
  TupleId tuple = -1;
  AttrId attr = -1;

  friend bool operator==(const CellRef& a, const CellRef& b) {
    return a.tuple == b.tuple && a.attr == b.attr;
  }
  friend bool operator<(const CellRef& a, const CellRef& b) {
    return a.tuple != b.tuple ? a.tuple < b.tuple : a.attr < b.attr;
  }
};

/// A (V-)instance of a schema.
class Instance {
 public:
  Instance() = default;
  explicit Instance(Schema schema)
      : schema_(std::move(schema)),
        next_var_index_(schema_.NumAttrs(), 0) {}

  const Schema& schema() const { return schema_; }
  int NumAttrs() const { return schema_.NumAttrs(); }
  int NumTuples() const { return static_cast<int>(rows_.size()); }

  /// Appends a tuple; must have exactly NumAttrs() cells.
  void AddTuple(Tuple t);

  /// Applies a mutation batch in the canonical order (delta.h): updates,
  /// swap-remove deletes, appends. `plan` must come from PlanDelta against
  /// this instance's current shape; all validation happened there.
  void ApplyDelta(const DeltaBatch& delta, const DeltaPlan& plan);

  const Tuple& row(TupleId t) const { return rows_[t]; }
  const Value& At(TupleId t, AttrId a) const { return rows_[t][a]; }
  void Set(TupleId t, AttrId a, Value v) { rows_[t][a] = std::move(v); }

  /// Returns a fresh variable value for attribute `a` (new index each call).
  Value NewVariable(AttrId a) {
    return Value::Variable(a, next_var_index_[a]++);
  }

  /// Per-attribute fresh-variable counters — serialized by src/persist/ so
  /// a restored instance keeps allocating variables where this one stopped
  /// (cell values alone don't determine the counters: a repair may have
  /// consumed indices whose variables were later overwritten).
  const std::vector<int32_t>& next_var_counters() const {
    return next_var_index_;
  }
  void RestoreNextVarCounters(std::vector<int32_t> counters) {
    next_var_index_ = std::move(counters);
  }

  /// Cells whose values differ between *this and `other` (same schema &
  /// cardinality required): the paper's Δd(I, I').
  std::vector<CellRef> DiffCells(const Instance& other) const;

  /// |Δd(I, other)| — the paper's distd.
  int DistdTo(const Instance& other) const {
    return static_cast<int>(DiffCells(other).size());
  }

  /// Replaces every variable with a fresh constant outside the attribute's
  /// active domain; distinct variables map to distinct constants.
  Instance Ground() const;

  /// True if no cell is a variable.
  bool IsGround() const;

  /// Pretty-prints as an aligned table (for examples and debugging).
  std::string ToTable() const;

 private:
  Schema schema_;
  std::vector<Tuple> rows_;
  // Next fresh variable index per attribute.
  std::vector<int32_t> next_var_index_;
};

}  // namespace retrust

#endif  // RETRUST_RELATIONAL_INSTANCE_H_
