#include "src/relational/instance.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "src/relational/delta.h"

namespace retrust {

void Instance::AddTuple(Tuple t) {
  if (static_cast<int>(t.size()) != NumAttrs()) {
    throw std::invalid_argument("tuple arity does not match schema");
  }
  // Keep the per-attribute fresh-variable counters ahead of any variables
  // already present in inserted tuples.
  for (int a = 0; a < NumAttrs(); ++a) {
    if (t[a].is_variable()) {
      next_var_index_[a] = std::max(next_var_index_[a],
                                    t[a].AsVariable().index + 1);
    }
  }
  rows_.push_back(std::move(t));
}

void Instance::ApplyDelta(const DeltaBatch& delta, const DeltaPlan& plan) {
  for (const CellUpdate& u : delta.updates) {
    if (u.value.is_variable()) {
      // Same bookkeeping as AddTuple: keep the fresh-variable counter of
      // the written position ahead of any injected variable index.
      next_var_index_[u.attr] = std::max(next_var_index_[u.attr],
                                         u.value.AsVariable().index + 1);
    }
    rows_[u.tuple][u.attr] = u.value;
  }
  for (const auto& [dst, src] : plan.moves) rows_[dst] = std::move(rows_[src]);
  rows_.resize(static_cast<size_t>(plan.new_num_tuples) -
               delta.inserts.size());
  for (const Tuple& t : delta.inserts) AddTuple(t);
}

std::vector<CellRef> Instance::DiffCells(const Instance& other) const {
  if (NumTuples() != other.NumTuples() || !(schema_ == other.schema_)) {
    throw std::invalid_argument("DiffCells requires same schema/cardinality");
  }
  std::vector<CellRef> out;
  for (TupleId t = 0; t < NumTuples(); ++t) {
    for (AttrId a = 0; a < NumAttrs(); ++a) {
      if (At(t, a) != other.At(t, a)) out.push_back({t, a});
    }
  }
  return out;
}

Instance Instance::Ground() const {
  Instance out(schema_);
  // Per attribute: the set of used string renderings (to stay outside the
  // active domain) and the max int used (for integer attributes).
  std::vector<std::unordered_set<std::string>> used_strings(NumAttrs());
  std::vector<int64_t> max_int(NumAttrs(), 0);
  for (TupleId t = 0; t < NumTuples(); ++t) {
    for (AttrId a = 0; a < NumAttrs(); ++a) {
      const Value& v = At(t, a);
      if (v.kind() == Value::Kind::kInt) {
        max_int[a] = std::max(max_int[a], v.AsInt());
      } else if (v.kind() == Value::Kind::kString) {
        used_strings[a].insert(v.AsString());
      }
    }
  }
  for (TupleId t = 0; t < NumTuples(); ++t) {
    Tuple row = rows_[t];
    for (AttrId a = 0; a < NumAttrs(); ++a) {
      if (!row[a].is_variable()) continue;
      VarRef var = row[a].AsVariable();
      switch (schema_.type(a)) {
        case AttrType::kInt:
          // Fresh, distinct, outside the active domain.
          row[a] = Value(max_int[a] + 1 + var.index);
          break;
        case AttrType::kDouble:
          row[a] = Value(1e18 + static_cast<double>(var.index));
          break;
        case AttrType::kString: {
          std::string s = "_v" + std::to_string(a) + "_" +
                          std::to_string(var.index);
          while (used_strings[a].count(s)) s += "'";
          row[a] = Value(s);
          break;
        }
      }
    }
    out.AddTuple(std::move(row));
  }
  return out;
}

bool Instance::IsGround() const {
  for (TupleId t = 0; t < NumTuples(); ++t) {
    for (AttrId a = 0; a < NumAttrs(); ++a) {
      if (At(t, a).is_variable()) return false;
    }
  }
  return true;
}

std::string Instance::ToTable() const {
  std::vector<size_t> width(NumAttrs());
  std::vector<std::vector<std::string>> cells(NumTuples());
  for (AttrId a = 0; a < NumAttrs(); ++a) width[a] = schema_.name(a).size();
  for (TupleId t = 0; t < NumTuples(); ++t) {
    cells[t].resize(NumAttrs());
    for (AttrId a = 0; a < NumAttrs(); ++a) {
      cells[t][a] = At(t, a).ToString(schema_.name(a));
      width[a] = std::max(width[a], cells[t][a].size());
    }
  }
  auto pad = [](const std::string& s, size_t w) {
    return s + std::string(w - s.size(), ' ');
  };
  std::string out;
  for (AttrId a = 0; a < NumAttrs(); ++a) {
    out += pad(schema_.name(a), width[a]) + (a + 1 < NumAttrs() ? " | " : "\n");
  }
  for (TupleId t = 0; t < NumTuples(); ++t) {
    for (AttrId a = 0; a < NumAttrs(); ++a) {
      out += pad(cells[t][a], width[a]) + (a + 1 < NumAttrs() ? " | " : "\n");
    }
  }
  return out;
}

}  // namespace retrust
