#include "src/relational/attrset.h"

namespace retrust {

std::vector<AttrId> AttrSet::ToVector() const {
  std::vector<AttrId> out;
  out.reserve(Count());
  for (AttrId a : *this) out.push_back(a);
  return out;
}

std::string AttrSet::ToString() const {
  std::string out = "{";
  bool first = true;
  for (AttrId a : *this) {
    if (!first) out += ",";
    out += std::to_string(a);
    first = false;
  }
  out += "}";
  return out;
}

std::string AttrSet::ToString(const std::vector<std::string>& names) const {
  std::string out = "{";
  bool first = true;
  for (AttrId a : *this) {
    if (!first) out += ",";
    if (a < static_cast<int>(names.size())) {
      out += names[a];
    } else {
      out += std::to_string(a);
    }
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace retrust
