#include "src/relational/schema.h"

#include <stdexcept>

namespace retrust {

Schema::Schema(std::vector<Attribute> attrs) : attrs_(std::move(attrs)) {
  if (attrs_.size() > static_cast<size_t>(kMaxAttrs)) {
    throw std::invalid_argument("schema exceeds kMaxAttrs attributes");
  }
  for (size_t i = 0; i < attrs_.size(); ++i) {
    auto [it, inserted] =
        by_name_.emplace(attrs_[i].name, static_cast<AttrId>(i));
    if (!inserted) {
      throw std::invalid_argument("duplicate attribute name: " +
                                  attrs_[i].name);
    }
  }
}

Schema Schema::FromNames(const std::vector<std::string>& names) {
  std::vector<Attribute> attrs;
  attrs.reserve(names.size());
  for (const auto& n : names) attrs.push_back({n, AttrType::kString});
  return Schema(std::move(attrs));
}

std::vector<std::string> Schema::Names() const {
  std::vector<std::string> out;
  out.reserve(attrs_.size());
  for (const auto& a : attrs_) out.push_back(a.name);
  return out;
}

AttrId Schema::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : it->second;
}

AttrSet Schema::Resolve(const std::vector<std::string>& names) const {
  AttrSet out;
  for (const auto& n : names) {
    AttrId a = Find(n);
    if (a < 0) throw std::invalid_argument("unknown attribute: " + n);
    out.Add(a);
  }
  return out;
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.attrs_.size() != b.attrs_.size()) return false;
  for (size_t i = 0; i < a.attrs_.size(); ++i) {
    if (a.attrs_[i].name != b.attrs_[i].name ||
        a.attrs_[i].type != b.attrs_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace retrust
