// Dictionary-encoded instances: the representation all algorithm kernels
// run on.
//
// Each attribute gets a Dictionary mapping constants to dense non-negative
// codes; variables are encoded as negative codes (variable index i maps to
// code -(i+1)). Under this encoding, V-instance cell equality is exactly
// int32 equality:
//   * equal constants share a code;
//   * a variable equals only itself (same negative code);
//   * variables never collide with constants (sign differs).
//
// Storage is column-major (SoA): one contiguous int32_t column per
// attribute. Per-attribute kernels — partitioning, agree/disagree tests,
// the blocked difference-set build — stream a single cache-friendly array
// instead of striding row-major cells; At(t, a) remains the row-oriented
// compatibility accessor for everything else.

#ifndef RETRUST_RELATIONAL_DICTIONARY_H_
#define RETRUST_RELATIONAL_DICTIONARY_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/relational/instance.h"

namespace retrust {

/// Per-attribute constant dictionary (code <-> Value).
class Dictionary {
 public:
  /// Returns the code for `v`, interning it if new. `v` must be a constant.
  int32_t Intern(const Value& v);

  /// Returns the code for `v` or -1 if absent (for lookups; note -1 is never
  /// a constant code).
  int32_t Lookup(const Value& v) const;

  const Value& value(int32_t code) const { return values_[code]; }
  int32_t size() const { return static_cast<int32_t>(values_.size()); }

  /// All interned constants in code order (code i is values()[i]) — the
  /// serialization surface of src/persist/.
  const std::vector<Value>& values() const { return values_; }

  /// Rebuilds a dictionary from a code-ordered constant list (the inverse
  /// of values()); the lookup index is reconstructed. Throws
  /// std::invalid_argument on duplicate or non-constant values.
  static Dictionary FromValues(std::vector<Value> values);

 private:
  std::vector<Value> values_;
  std::unordered_map<Value, int32_t, ValueHash> index_;
};

/// Encodes a variable index as a cell code and back.
inline int32_t VariableCode(int32_t var_index) { return -(var_index + 1); }
inline int32_t VariableIndexOfCode(int32_t code) { return -code - 1; }
inline bool IsVariableCode(int32_t code) { return code < 0; }

/// A dictionary-encoded (V-)instance. Mutable: the repair algorithms edit
/// cells in place (constants from the dictionary, or fresh variables).
class EncodedInstance {
 public:
  EncodedInstance() = default;

  /// Encodes `inst`. Variables keep their indices (as negative codes).
  explicit EncodedInstance(const Instance& inst);

  /// Applies a mutation batch in the canonical order (delta.h), mirroring
  /// Instance::ApplyDelta positionally. Updated and inserted constants
  /// reuse existing dictionary codes (new values are interned, the
  /// dictionaries only ever grow — codes are stable across deltas, so
  /// untouched cells keep their codes and derived structures can be
  /// patched instead of rebuilt). `plan` must come from PlanDelta against
  /// this instance's current shape. O(Δ·m + moved rows) per column set.
  void ApplyDelta(const DeltaBatch& delta, const DeltaPlan& plan);

  const Schema& schema() const { return schema_; }
  int NumTuples() const { return n_; }
  int NumAttrs() const { return m_; }

  int32_t At(TupleId t, AttrId a) const { return cols_[a][t]; }
  void SetCode(TupleId t, AttrId a, int32_t code) { cols_[a][t] = code; }

  /// Sets t[a] to a fresh variable and returns its code.
  int32_t SetFreshVariable(TupleId t, AttrId a);

  /// Returns a fresh variable code for attribute `a` without assigning it.
  int32_t NewVariableCode(AttrId a) { return VariableCode(next_var_[a]++); }

  /// One attribute's column of cell codes, indexed by TupleId — the
  /// streaming surface of the blocked build and of src/persist/.
  const std::vector<int32_t>& column(AttrId a) const { return cols_[a]; }
  /// Raw pointer form of column(): kernels hoist this out of pair loops so
  /// each cell test is a single indexed load (no Flat(t, a) multiply).
  const int32_t* ColumnData(AttrId a) const { return cols_[a].data(); }

  /// Row-major compatibility accessor: materializes the legacy
  /// t*m + a layout (tests, debugging). O(n·m) — not a hot-path surface.
  std::vector<int32_t> RowMajorCodes() const;

  const std::vector<int32_t>& next_var_counters() const { return next_var_; }

  /// Rebuilds an encoded instance from its serialized parts (the inverse
  /// of column()/dictionary()/next_var_counters()): one code vector per
  /// attribute, each of length `num_tuples`. Throws std::invalid_argument
  /// on shape mismatches (columns/dicts/counters not matching the schema
  /// and cardinality).
  static EncodedInstance Restore(Schema schema, int num_tuples,
                                 std::vector<std::vector<int32_t>> columns,
                                 std::vector<Dictionary> dicts,
                                 std::vector<int32_t> next_var);

  /// Decodes one cell back to a Value.
  Value DecodeCell(TupleId t, AttrId a) const;

  /// Decodes the whole instance.
  Instance Decode() const;

  /// Number of constants interned for attribute `a` (from the encoded
  /// snapshot; used by distinct-count weighting).
  int32_t DictionarySize(AttrId a) const { return dicts_[a].size(); }

  const Dictionary& dictionary(AttrId a) const { return dicts_[a]; }

  /// Number of distinct rows of the projection onto `attrs`, scanning the
  /// current cell codes (the paper's F_count(Y) = |π_Y(I)|).
  int64_t CountDistinctProjection(AttrSet attrs) const;

  /// Cells whose codes differ from `other` (same shape required), in
  /// (tuple, attr) order.
  std::vector<CellRef> DiffCells(const EncodedInstance& other) const;

  /// |Δd| against `other`.
  int DistdTo(const EncodedInstance& other) const {
    return static_cast<int>(DiffCells(other).size());
  }

 private:
  /// Encodes one value for attribute `a` (interning constants, keeping
  /// variable indices and the fresh-variable counter consistent).
  int32_t EncodeValue(const Value& v, AttrId a);

  Schema schema_;
  int n_ = 0;
  int m_ = 0;
  std::vector<std::vector<int32_t>> cols_;  ///< cols_[a][t], m_ columns
  std::vector<Dictionary> dicts_;
  std::vector<int32_t> next_var_;
};

}  // namespace retrust

#endif  // RETRUST_RELATIONAL_DICTIONARY_H_
