#include "src/repair/modify_fds.h"

#include "src/exec/thread_pool.h"
#include "src/fd/conflict_graph.h"
#include "src/search/engine.h"

namespace retrust {

FdSearchContext::FdSearchContext(const FDSet& sigma,
                                 const EncodedInstance& inst,
                                 const WeightFunction& weights,
                                 const HeuristicOptions& hopts,
                                 const exec::Options& eopts,
                                 DiffSetBuildMode mode)
    : sigma_(sigma),
      num_tuples_(inst.NumTuples()),
      space_(sigma, inst.schema()),
      index_(BuildDifferenceSetIndex(inst, sigma, eopts, mode,
                                     &build_stats_)),
      evaluator_(std::make_unique<DeltaPEvaluator>(sigma_, index_,
                                                   inst.NumTuples(), eopts)),
      weights_(weights),
      heuristic_(sigma_, space_, weights_, index_, inst.NumTuples(), hopts,
                 evaluator_.get()) {
  // Counted groups materialize their pairs lazily from the instance; bind
  // it now (the evaluator/heuristic constructors never touch edge lists,
  // so binding after the init list is safe).
  index_.BindInstance(&inst);
}

FdSearchContext::FdSearchContext(const FDSet& sigma,
                                 const EncodedInstance& inst,
                                 const WeightFunction& weights,
                                 const HeuristicOptions& hopts,
                                 DifferenceSetIndex index,
                                 DeltaPEvaluator::WarmState warm)
    : sigma_(sigma),
      num_tuples_(inst.NumTuples()),
      space_(sigma, inst.schema()),
      index_(std::move(index)),
      evaluator_(std::make_unique<DeltaPEvaluator>(sigma_, index_,
                                                   inst.NumTuples(),
                                                   std::move(warm))),
      weights_(weights),
      heuristic_(sigma_, space_, weights_, index_, inst.NumTuples(), hopts,
                 evaluator_.get()) {
  index_.BindInstance(&inst);
}

FdSearchContext::DeltaReport FdSearchContext::ApplyDelta(
    const EncodedInstance& inst, const std::vector<TupleId>& dirty,
    const std::vector<TupleId>& remap, const exec::Options& eopts) {
  std::unique_ptr<exec::ThreadPool> pool = exec::MakePool(eopts);
  return ApplyDelta(inst, dirty, remap, pool.get());
}

FdSearchContext::DeltaReport FdSearchContext::ApplyDelta(
    const EncodedInstance& inst, const std::vector<TupleId>& dirty,
    const std::vector<TupleId>& remap, exec::ThreadPool* pool) {
  DeltaReport report;
  if (DiffSetViolates(AttrSet::Universe(inst.NumAttrs()), sigma_)) {
    // Degenerate empty-LHS-FD regime: full-disagreement pairs are conflict
    // edges, so the index may hold (or the delta may create) a counted
    // group, whose pre-delta pair population cannot be patched from the
    // post-delta instance. Rebuild with the blocked builder. The test is
    // on Σ, not on HasCountedGroups(): a delta can create the FIRST
    // full-disagreement pair, and the incremental path would materialize
    // it — diverging from a fresh blocked build.
    auto edge_total = [](const DifferenceSetIndex& idx) {
      int64_t total = 0;
      for (const DiffSetGroup& g : idx.groups()) total += g.frequency();
      return total;
    };
    report.index.old_to_new.assign(index_.size(), -1);
    report.index.edges_removed = edge_total(index_);
    index_ = BuildDifferenceSetIndexBlocked(inst, sigma_, pool,
                                            &build_stats_);
    index_.BindInstance(&inst);
    report.index.edges_added = edge_total(index_);
    report.index.groups_preserved = 0;
    report.index.groups_changed = index_.size();
    // The all -1 map makes the evaluator recompute every incidence row and
    // drop every warm cover — a cold rebind, not a patch. heuristic_ holds
    // a reference to the index_ MEMBER, whose address survives the move
    // assignment above, so it needs no touch-up.
  } else {
    report.index = index_.ApplyDelta(inst, sigma_, dirty, remap, pool);
  }
  report.evaluator = evaluator_->ApplyDelta(
      sigma_, index_, inst.NumTuples(), report.index.old_to_new, pool);
  num_tuples_ = inst.NumTuples();
  heuristic_.SetNumTuples(inst.NumTuples());
  report.version = version_.fetch_add(1, std::memory_order_acq_rel) + 1;
  return report;
}

int64_t FdSearchContext::CoverSize(const SearchState& s,
                                   SearchStats* stats) const {
  // δP pipeline (DESIGN.md): the violation table materializes the groups
  // still violated under s as a group bitset, and the memoized cover layer
  // matches their edges in the canonical group order — bit-identical to
  // the legacy per-group FD-set scan it replaced.
  return evaluator_->CoverSize(s, stats);
}

int64_t FdSearchContext::DeltaP(const SearchState& s,
                                SearchStats* stats) const {
  return alpha() * CoverSize(s, stats);
}

int64_t FdSearchContext::RootDeltaP() const {
  return DeltaP(SearchState::Root(sigma_.size()), nullptr);
}

ModifyFdsResult ModifyFds(const FdSearchContext& ctx, int64_t tau,
                          const ModifyFdsOptions& opts) {
  // The open-list loop lives in the search engine (src/search/engine.cc)
  // since the policy split; the default exact policy is bit-identical to
  // the loop that used to live here.
  return search::RunSearch(ctx, tau, opts);
}

ModifyFdsResult ModifyFds(const FDSet& sigma, const EncodedInstance& inst,
                          int64_t tau, const WeightFunction& weights,
                          const ModifyFdsOptions& opts) {
  FdSearchContext ctx(sigma, inst, weights, opts.heuristic, opts.exec);
  return ModifyFds(ctx, tau, opts);
}

}  // namespace retrust
