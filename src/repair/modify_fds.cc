#include "src/repair/modify_fds.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "src/exec/thread_pool.h"
#include "src/fd/conflict_graph.h"
#include "src/util/timer.h"

namespace retrust {

FdSearchContext::FdSearchContext(const FDSet& sigma,
                                 const EncodedInstance& inst,
                                 const WeightFunction& weights,
                                 const HeuristicOptions& hopts,
                                 const exec::Options& eopts,
                                 DiffSetBuildMode mode)
    : sigma_(sigma),
      num_tuples_(inst.NumTuples()),
      space_(sigma, inst.schema()),
      index_(BuildDifferenceSetIndex(inst, sigma, eopts, mode,
                                     &build_stats_)),
      evaluator_(std::make_unique<DeltaPEvaluator>(sigma_, index_,
                                                   inst.NumTuples(), eopts)),
      weights_(weights),
      heuristic_(sigma_, space_, weights_, index_, inst.NumTuples(), hopts,
                 evaluator_.get()) {
  // Counted groups materialize their pairs lazily from the instance; bind
  // it now (the evaluator/heuristic constructors never touch edge lists,
  // so binding after the init list is safe).
  index_.BindInstance(&inst);
}

FdSearchContext::FdSearchContext(const FDSet& sigma,
                                 const EncodedInstance& inst,
                                 const WeightFunction& weights,
                                 const HeuristicOptions& hopts,
                                 DifferenceSetIndex index,
                                 DeltaPEvaluator::WarmState warm)
    : sigma_(sigma),
      num_tuples_(inst.NumTuples()),
      space_(sigma, inst.schema()),
      index_(std::move(index)),
      evaluator_(std::make_unique<DeltaPEvaluator>(sigma_, index_,
                                                   inst.NumTuples(),
                                                   std::move(warm))),
      weights_(weights),
      heuristic_(sigma_, space_, weights_, index_, inst.NumTuples(), hopts,
                 evaluator_.get()) {
  index_.BindInstance(&inst);
}

FdSearchContext::DeltaReport FdSearchContext::ApplyDelta(
    const EncodedInstance& inst, const std::vector<TupleId>& dirty,
    const std::vector<TupleId>& remap, const exec::Options& eopts) {
  std::unique_ptr<exec::ThreadPool> pool = exec::MakePool(eopts);
  return ApplyDelta(inst, dirty, remap, pool.get());
}

FdSearchContext::DeltaReport FdSearchContext::ApplyDelta(
    const EncodedInstance& inst, const std::vector<TupleId>& dirty,
    const std::vector<TupleId>& remap, exec::ThreadPool* pool) {
  DeltaReport report;
  if (DiffSetViolates(AttrSet::Universe(inst.NumAttrs()), sigma_)) {
    // Degenerate empty-LHS-FD regime: full-disagreement pairs are conflict
    // edges, so the index may hold (or the delta may create) a counted
    // group, whose pre-delta pair population cannot be patched from the
    // post-delta instance. Rebuild with the blocked builder. The test is
    // on Σ, not on HasCountedGroups(): a delta can create the FIRST
    // full-disagreement pair, and the incremental path would materialize
    // it — diverging from a fresh blocked build.
    auto edge_total = [](const DifferenceSetIndex& idx) {
      int64_t total = 0;
      for (const DiffSetGroup& g : idx.groups()) total += g.frequency();
      return total;
    };
    report.index.old_to_new.assign(index_.size(), -1);
    report.index.edges_removed = edge_total(index_);
    index_ = BuildDifferenceSetIndexBlocked(inst, sigma_, pool,
                                            &build_stats_);
    index_.BindInstance(&inst);
    report.index.edges_added = edge_total(index_);
    report.index.groups_preserved = 0;
    report.index.groups_changed = index_.size();
    // The all -1 map makes the evaluator recompute every incidence row and
    // drop every warm cover — a cold rebind, not a patch. heuristic_ holds
    // a reference to the index_ MEMBER, whose address survives the move
    // assignment above, so it needs no touch-up.
  } else {
    report.index = index_.ApplyDelta(inst, sigma_, dirty, remap, pool);
  }
  report.evaluator = evaluator_->ApplyDelta(
      sigma_, index_, inst.NumTuples(), report.index.old_to_new, pool);
  num_tuples_ = inst.NumTuples();
  heuristic_.SetNumTuples(inst.NumTuples());
  report.version = version_.fetch_add(1, std::memory_order_acq_rel) + 1;
  return report;
}

int64_t FdSearchContext::CoverSize(const SearchState& s,
                                   SearchStats* stats) const {
  // δP pipeline (DESIGN.md): the violation table materializes the groups
  // still violated under s as a group bitset, and the memoized cover layer
  // matches their edges in the canonical group order — bit-identical to
  // the legacy per-group FD-set scan it replaced.
  return evaluator_->CoverSize(s, stats);
}

int64_t FdSearchContext::DeltaP(const SearchState& s,
                                SearchStats* stats) const {
  return alpha() * CoverSize(s, stats);
}

int64_t FdSearchContext::RootDeltaP() const {
  return DeltaP(SearchState::Root(sigma_.size()), nullptr);
}

namespace {

// Open-list entry. gc evaluation is LAZY: children are pushed with their
// parent's priority as a lower bound (gc is monotone along tree edges —
// a child's descendants are a subset of its parent's) and get their own
// gc computed only when they reach the top of the heap. This cuts gc
// evaluations from O(states generated) to O(states visited).
struct OpenEntry {
  double priority;   // a lower bound on gc(S); exact once `evaluated`
  double cost;       // cost(S), for tie-breaking
  int64_t seq;       // FIFO tie-break for determinism
  bool evaluated;    // true once priority == gc(S) (A*) / cost(S) (BF)
  SearchState state;

  bool operator<(const OpenEntry& o) const {
    // std::priority_queue is a max-heap; invert.
    if (priority != o.priority) return priority > o.priority;
    if (cost != o.cost) return cost > o.cost;
    return seq > o.seq;
  }
};

// Speculative successor evaluator for the parallel engine.
//
// gc(S) and |C2opt(S)| are pure functions of (state, τ), so evaluating
// them EARLY — at expansion time, for a popped state's LHS-extensions
// concurrently, each child on pooled scratch owned by the context's
// evaluation layer — and handing the memoized values to the unmodified
// lazy search loop later produces the exact serial visit order and result
// for any thread count. Speculation trades extra evaluations (children
// that never reach the top of the heap) for wall-clock parallelism; the
// serial path (no pool) skips it entirely and keeps the lazy O(visited)
// evaluation count.
class SuccessorEvaluator {
 public:
  SuccessorEvaluator(const FdSearchContext& ctx, int64_t tau, bool astar,
                     exec::ThreadPool* pool)
      : ctx_(ctx), tau_(tau), astar_(astar), pool_(pool) {}

  bool active() const { return pool_ != nullptr; }

  /// Evaluates gc (A*) and δP of the flagged children concurrently and
  /// memoizes the values. Stats of the evaluations are merged into `stats`
  /// in child order (deterministic totals).
  void Speculate(const std::vector<SearchState>& children,
                 const std::vector<char>& keep, SearchStats* stats) {
    if (!active() || children.empty()) return;
    std::vector<Entry> results(children.size());
    exec::TaskGroup group(pool_);
    for (size_t i = 0; i < children.size(); ++i) {
      if (!keep[i]) continue;
      const SearchState& child = children[i];
      Entry* out = &results[i];
      group.Run([this, &child, out] {
        if (astar_) {
          out->gc = ctx_.heuristic().Compute(child, tau_, &out->stats);
          if (out->gc == GcHeuristic::kInfinity) return;  // never visited
        }
        out->cover = ctx_.CoverSize(child, &out->stats);
      });
    }
    group.Wait();
    for (size_t i = 0; i < children.size(); ++i) {
      if (!keep[i]) continue;
      stats->Accumulate(results[i].stats);
      results[i].stats = SearchStats{};
      cache_.emplace(children[i], results[i]);
    }
  }

  /// gc(s): memoized value if speculated, computed inline otherwise.
  double Gc(const SearchState& s, SearchStats* stats) {
    auto it = cache_.find(s);
    if (it != cache_.end()) {
      double gc = it->second.gc;
      if (gc == GcHeuristic::kInfinity) cache_.erase(it);  // discarded next
      return gc;
    }
    return ctx_.heuristic().Compute(s, tau_, stats);
  }

  /// |C2opt(s)|: memoized value if speculated, computed inline otherwise.
  int64_t Cover(const SearchState& s, SearchStats* stats) {
    auto it = cache_.find(s);
    if (it != cache_.end() && it->second.cover >= 0) {
      int64_t cover = it->second.cover;
      cache_.erase(it);  // a state is visited at most once
      return cover;
    }
    return ctx_.CoverSize(s, stats);
  }

 private:
  struct Entry {
    double gc = 0.0;
    int64_t cover = -1;
    SearchStats stats;
  };

  const FdSearchContext& ctx_;
  int64_t tau_;
  bool astar_;
  exec::ThreadPool* pool_;
  std::unordered_map<SearchState, Entry, SearchStateHash> cache_;
};

}  // namespace

ModifyFdsResult ModifyFds(const FdSearchContext& ctx, int64_t tau,
                          const ModifyFdsOptions& opts) {
  Timer timer;
  ModifyFdsResult result;
  SearchStats& stats = result.stats;
  const bool astar = opts.mode == SearchMode::kAStar;

  std::unique_ptr<exec::ThreadPool> pool = exec::MakePool(opts.exec);
  SuccessorEvaluator evaluator(ctx, tau, astar, pool.get());

  std::priority_queue<OpenEntry> pq;
  int64_t seq = 0;
  SearchState root = SearchState::Root(ctx.sigma().size());
  pq.push({root.Cost(ctx.weights()), root.Cost(ctx.weights()), seq++,
           !astar, root});
  ++stats.states_generated;

  std::optional<FdRepair> best;
  while (!pq.empty()) {
    // Interruption checks, once per popped state. Cancellation and deadlines
    // are timing-dependent by nature; the default options leave both off and
    // keep the search fully deterministic.
    if (opts.cancel != nullptr && opts.cancel->Cancelled()) {
      result.termination = SearchTermination::kCancelled;
      break;
    }
    if (opts.deadline_seconds > 0 &&
        timer.ElapsedSeconds() > opts.deadline_seconds) {
      result.termination = SearchTermination::kDeadline;
      break;
    }

    OpenEntry top = pq.top();
    pq.pop();

    if (!top.evaluated) {
      // Deferred gc evaluation (A* only); memoized when speculated.
      double gc = evaluator.Gc(top.state, &stats);
      if (gc == GcHeuristic::kInfinity) continue;  // no goal below here
      top.priority = std::max(gc, top.cost);
      top.evaluated = true;
      if (!pq.empty() && pq.top().priority < top.priority) {
        pq.push(std::move(top));  // someone else is cheaper now
        continue;
      }
    }

    ++stats.states_visited;
    if (opts.max_visited > 0 && stats.states_visited > opts.max_visited) {
      result.termination = SearchTermination::kVisitBudget;
      break;
    }

    // Once a goal is known, states that cannot beat (or tie) it are done.
    if (best.has_value()) {
      bool can_tie = opts.tie_break_delta &&
                     top.cost <= best->distc + opts.cost_epsilon;
      if (top.priority > best->distc + opts.cost_epsilon) break;
      if (!can_tie && top.cost > best->distc + opts.cost_epsilon) continue;
    }

    int64_t cover = evaluator.Cover(top.state, &stats);
    int64_t delta_p = ctx.alpha() * cover;
    if (delta_p <= tau) {
      // Goal state.
      double cost = top.state.Cost(ctx.weights());
      if (!best.has_value()) {
        best = FdRepair{top.state, top.state.Apply(ctx.sigma()), cost, cover,
                        delta_p};
        if (!opts.tie_break_delta) break;
        continue;  // keep scanning for equal-cost goals with smaller δP
      }
      if (cost <= best->distc + opts.cost_epsilon &&
          delta_p < best->delta_p) {
        best = FdRepair{top.state, top.state.Apply(ctx.sigma()), cost, cover,
                        delta_p};
      }
      continue;  // children of a goal state only cost more
    }

    // Expand. Children inherit the parent's priority as a lower bound;
    // the ones surviving the bound check are (optionally) evaluated
    // speculatively in parallel before being pushed in canonical order.
    std::vector<SearchState> children = ctx.space().Children(top.state);
    std::vector<double> lower(children.size());
    std::vector<double> child_cost(children.size());
    std::vector<char> keep(children.size(), 1);
    for (size_t i = 0; i < children.size(); ++i) {
      child_cost[i] = children[i].Cost(ctx.weights());
      lower[i] = std::max(top.priority, child_cost[i]);
      if (best.has_value() && lower[i] > best->distc + opts.cost_epsilon) {
        keep[i] = 0;
      }
    }
    evaluator.Speculate(children, keep, &stats);
    for (size_t i = 0; i < children.size(); ++i) {
      if (!keep[i]) continue;
      pq.push({lower[i], child_cost[i], seq++, !astar,
               std::move(children[i])});
      ++stats.states_generated;
    }
  }

  result.repair = std::move(best);
  stats.seconds = timer.ElapsedSeconds();
  return result;
}

ModifyFdsResult ModifyFds(const FDSet& sigma, const EncodedInstance& inst,
                          int64_t tau, const WeightFunction& weights,
                          const ModifyFdsOptions& opts) {
  FdSearchContext ctx(sigma, inst, weights, opts.heuristic, opts.exec);
  return ModifyFds(ctx, tau, opts);
}

}  // namespace retrust
