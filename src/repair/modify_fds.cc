#include "src/repair/modify_fds.h"

#include <algorithm>
#include <queue>

#include "src/fd/conflict_graph.h"
#include "src/util/timer.h"

namespace retrust {

FdSearchContext::FdSearchContext(const FDSet& sigma,
                                 const EncodedInstance& inst,
                                 const WeightFunction& weights,
                                 const HeuristicOptions& hopts)
    : sigma_(sigma),
      num_tuples_(inst.NumTuples()),
      space_(sigma, inst.schema()),
      index_(inst, BuildConflictGraph(inst, sigma)),
      weights_(weights),
      heuristic_(sigma_, space_, weights_, index_, inst.NumTuples(), hopts),
      scratch_(inst.NumTuples()) {}

int64_t FdSearchContext::CoverSize(const SearchState& s,
                                   SearchStats* stats) const {
  if (stats != nullptr) ++stats->vc_computations;
  // Gather edges of groups still violated under s. A difference set d
  // violates FD i of the relaxation iff A_i ∈ d and (X_i ∪ Y_i) ∩ d = ∅ —
  // no FDSet materialization needed. Group order is the index's canonical
  // (frequency-sorted) order, used consistently by all cover computations.
  static thread_local std::vector<Edge> edges;
  edges.clear();
  for (const DiffSetGroup& g : index_.groups()) {
    bool violated = false;
    for (int i = 0; i < sigma_.size() && !violated; ++i) {
      const FD& fd = sigma_.fd(i);
      violated = g.diff.Contains(fd.rhs) &&
                 !fd.lhs.Union(s.ext[i]).Intersects(g.diff);
    }
    if (violated) edges.insert(edges.end(), g.edges.begin(), g.edges.end());
  }
  return scratch_.CoverSize(edges);
}

int64_t FdSearchContext::DeltaP(const SearchState& s,
                                SearchStats* stats) const {
  return alpha() * CoverSize(s, stats);
}

int64_t FdSearchContext::RootDeltaP() const {
  return DeltaP(SearchState::Root(sigma_.size()), nullptr);
}

namespace {

// Open-list entry. gc evaluation is LAZY: children are pushed with their
// parent's priority as a lower bound (gc is monotone along tree edges —
// a child's descendants are a subset of its parent's) and get their own
// gc computed only when they reach the top of the heap. This cuts gc
// evaluations from O(states generated) to O(states visited).
struct OpenEntry {
  double priority;   // a lower bound on gc(S); exact once `evaluated`
  double cost;       // cost(S), for tie-breaking
  int64_t seq;       // FIFO tie-break for determinism
  bool evaluated;    // true once priority == gc(S) (A*) / cost(S) (BF)
  SearchState state;

  bool operator<(const OpenEntry& o) const {
    // std::priority_queue is a max-heap; invert.
    if (priority != o.priority) return priority > o.priority;
    if (cost != o.cost) return cost > o.cost;
    return seq > o.seq;
  }
};

}  // namespace

ModifyFdsResult ModifyFds(const FdSearchContext& ctx, int64_t tau,
                          const ModifyFdsOptions& opts) {
  Timer timer;
  ModifyFdsResult result;
  SearchStats& stats = result.stats;
  const GcHeuristic& h = ctx.heuristic();
  const bool astar = opts.mode == SearchMode::kAStar;

  std::priority_queue<OpenEntry> pq;
  int64_t seq = 0;
  SearchState root = SearchState::Root(ctx.sigma().size());
  pq.push({root.Cost(ctx.weights()), root.Cost(ctx.weights()), seq++,
           !astar, root});
  ++stats.states_generated;

  std::optional<FdRepair> best;
  while (!pq.empty()) {
    OpenEntry top = pq.top();
    pq.pop();

    if (!top.evaluated) {
      // Deferred gc evaluation (A* only).
      double gc = h.Compute(top.state, tau, &stats);
      if (gc == GcHeuristic::kInfinity) continue;  // no goal below here
      top.priority = std::max(gc, top.cost);
      top.evaluated = true;
      if (!pq.empty() && pq.top().priority < top.priority) {
        pq.push(std::move(top));  // someone else is cheaper now
        continue;
      }
    }

    ++stats.states_visited;
    if (opts.max_visited > 0 && stats.states_visited > opts.max_visited) {
      break;
    }

    // Once a goal is known, states that cannot beat (or tie) it are done.
    if (best.has_value()) {
      bool can_tie = opts.tie_break_delta &&
                     top.cost <= best->distc + opts.cost_epsilon;
      if (top.priority > best->distc + opts.cost_epsilon) break;
      if (!can_tie && top.cost > best->distc + opts.cost_epsilon) continue;
    }

    int64_t cover = ctx.CoverSize(top.state, &stats);
    int64_t delta_p = ctx.alpha() * cover;
    if (delta_p <= tau) {
      // Goal state.
      double cost = top.state.Cost(ctx.weights());
      if (!best.has_value()) {
        best = FdRepair{top.state, top.state.Apply(ctx.sigma()), cost, cover,
                        delta_p};
        if (!opts.tie_break_delta) break;
        continue;  // keep scanning for equal-cost goals with smaller δP
      }
      if (cost <= best->distc + opts.cost_epsilon &&
          delta_p < best->delta_p) {
        best = FdRepair{top.state, top.state.Apply(ctx.sigma()), cost, cover,
                        delta_p};
      }
      continue;  // children of a goal state only cost more
    }

    // Expand: children inherit the parent's priority as a lower bound.
    for (SearchState& child : ctx.space().Children(top.state)) {
      double child_cost = child.Cost(ctx.weights());
      double lower = std::max(top.priority, child_cost);
      if (best.has_value() && lower > best->distc + opts.cost_epsilon) {
        continue;
      }
      pq.push({lower, child_cost, seq++, !astar, std::move(child)});
      ++stats.states_generated;
    }
  }

  result.repair = std::move(best);
  stats.seconds = timer.ElapsedSeconds();
  return result;
}

ModifyFdsResult ModifyFds(const FDSet& sigma, const EncodedInstance& inst,
                          int64_t tau, const WeightFunction& weights,
                          const ModifyFdsOptions& opts) {
  FdSearchContext ctx(sigma, inst, weights, opts.heuristic);
  return ModifyFds(ctx, tau, opts);
}

}  // namespace retrust
