// The A* heuristic gc(S) (paper §5.2, Algorithm 3 getDescGoalStates).
//
// gc(S) estimates the cost of the cheapest goal state descending from S:
// a goal state is an extension vector Σ' with δP(Σ', I) = α·|C2opt(Σ', I)|
// ≤ τ. The estimate works on difference-set groups: all conflict edges with
// the same difference set d are resolved atomically — an FD X -> A violated
// by d can be fixed by appending any attribute of d \ {A} to X. The
// recursion either (a) leaves a group unresolved, provided the vertex-cover
// bound over all unresolved edges stays below τ, or (b) resolves it by
// extending the state, branching over the candidate attributes per violated
// FD.
//
// Using only a small subset Ds of the violated groups (largest-frequency
// first, preferring small overlap) keeps the estimate cheap while remaining
// a lower bound (paper Lemma 1). When the recursion budget is exhausted we
// fall back to cost(S), which is always a valid lower bound because the
// cost function is monotone along the extension order.

#ifndef RETRUST_REPAIR_HEURISTIC_H_
#define RETRUST_REPAIR_HEURISTIC_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "src/fd/difference_set.h"
#include "src/graph/vertex_cover.h"
#include "src/repair/state_space.h"

namespace retrust {

/// Tuning knobs for the gc computation.
struct HeuristicOptions {
  /// Maximum number of difference-set groups handed to the recursion
  /// (the paper's "subset of difference sets ... to efficiently compute
  /// gc(S)").
  int max_diffsets = 4;
  /// Safety cap on recursion nodes per gc() call; on exhaustion gc falls
  /// back to cost(S) (still a lower bound).
  int64_t max_nodes = 100000;
  /// The paper's Algorithm 3 line 8 uses a strict '<' when testing whether
  /// a group may stay unresolved, but the goal test (Algorithm 2 line 7)
  /// accepts δP ≤ τ — with '<' the heuristic overestimates exactly at the
  /// δP = τ boundary and breaks admissibility (Lemma 1). The default is
  /// therefore the consistent '<='; set true for the paper's literal rule.
  bool strict_leave_check = false;
};

/// α = min(|R| - 1, |Σ|): the per-tuple change bound (paper §5/§6).
int64_t RepairAlpha(int num_attrs, int num_fds);

class DeltaPEvaluator;

/// Computes gc(S) for states of one (Σ, I) search. Holds references to the
/// FD set, state space, weights and the difference-set index; all must
/// outlive the heuristic. Compute() is const AND thread-safe, so one
/// heuristic instance serves concurrent searches and parallel successor
/// evaluation.
///
/// When constructed with a DeltaPEvaluator (as FdSearchContext does), the
/// group-violation tests and Algorithm 3 covers run through the shared
/// evaluation layer (incidence table + memoized covers, DESIGN.md).
/// Without one, the original per-group FD-set scan is used — kept as the
/// reference path for standalone construction and as the legacy oracle the
/// evaluation layer is tested against; both paths produce bit-identical gc
/// values (tests/evaluator_oracle_test.cc).
class GcHeuristic {
 public:
  GcHeuristic(const FDSet& sigma, const StateSpace& space,
              const WeightFunction& weights, const DifferenceSetIndex& index,
              int num_tuples, HeuristicOptions opts = {},
              const DeltaPEvaluator* evaluator = nullptr);

  int64_t alpha() const { return alpha_; }

  /// Tracks an instance resize after a delta (α is cardinality-independent;
  /// only the legacy scan path's cover scratch sizing uses the count).
  /// Requires external exclusion against concurrent Compute() calls.
  void SetNumTuples(int num_tuples) { num_tuples_ = num_tuples; }

  /// gc(S) under threshold `tau`; +infinity when no goal state descends
  /// from `s` within the inspected difference sets. Never below Cost(s).
  double Compute(const SearchState& s, int64_t tau, SearchStats* stats) const;

  /// Exact-ish variant used as a test oracle: no group-count cap.
  double ComputeUncapped(const SearchState& s, int64_t tau,
                         SearchStats* stats) const;

  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

 private:
  struct RecContext {
    int64_t tau = 0;
    int64_t nodes_left = 0;
    bool budget_exhausted = false;
    SearchStats* stats = nullptr;
    std::vector<int> selected;  // group indices in play
    // Cheapest goal-state cost found so far (branch-and-bound pruning:
    // costs are monotone along extensions, so a partial state at or above
    // this cost cannot lead to a cheaper goal).
    double best_cost = kInfinity;
  };

  double ComputeWithCap(const SearchState& s, int64_t tau, int max_groups,
                        SearchStats* stats) const;

  /// True iff diff-set group `g` violates FD i under extension state `s`.
  bool GroupViolates(int g, const SearchState& s) const;

  /// Recursive core (Algorithm 3). `unresolved` accumulates group ids left
  /// unresolved; `remaining` indexes into ctx->selected.
  void Rec(const SearchState& sc, std::vector<int>& unresolved,
           const std::vector<int>& remaining, RecContext* ctx) const;

  /// Size of a greedy cover over the union of the groups' edges.
  int32_t CoverOfGroups(const std::vector<int>& groups,
                        SearchStats* stats) const;

  const FDSet& sigma_;
  const StateSpace& space_;
  const WeightFunction& weights_;
  const DifferenceSetIndex& index_;
  const DeltaPEvaluator* evaluator_;  ///< null = legacy scan path
  int num_tuples_;
  int64_t alpha_;
  HeuristicOptions opts_;
};

}  // namespace retrust

#endif  // RETRUST_REPAIR_HEURISTIC_H_
