// Computing multiple repairs across a relative-trust range (paper §7,
// Algorithm 6), plus the Sampling-Repair strawman it is compared against in
// Figure 13.
//
// Range-Repair runs one search: whenever a goal state Σh is found at the
// current τ, it is recorded as covering the trust range [δP(Σh, I), τ], τ
// drops to δP(Σh, I) - 1, and the open list's priorities are recomputed
// (gc depends on τ). States already discarded can never become goals for a
// smaller τ, so the single pass enumerates every distinct FD repair in the
// range — reusing all search work across trust levels.

#ifndef RETRUST_REPAIR_MULTI_REPAIR_H_
#define RETRUST_REPAIR_MULTI_REPAIR_H_

#include <vector>

#include "src/repair/modify_fds.h"

namespace retrust {

/// One FD repair found by the range scan, with the τ interval it covers.
struct RangedFdRepair {
  FdRepair repair;
  int64_t tau_lo = 0;  ///< smallest τ this repair serves (= its δP)
  int64_t tau_hi = 0;  ///< largest τ it was discovered for
};

/// Result of a multi-repair run.
struct MultiRepairResult {
  std::vector<RangedFdRepair> repairs;  ///< descending tau_hi order
  SearchStats stats;
};

/// Algorithm 6 (Range-Repair): all distinct minimal FD repairs for
/// τ ∈ [tau_lo, tau_hi].
MultiRepairResult FindRepairsFds(const FdSearchContext& ctx, int64_t tau_lo,
                                 int64_t tau_hi,
                                 const ModifyFdsOptions& opts = {});

/// Sampling-Repair: runs Algorithm 2 independently at τ = tau_hi,
/// tau_hi - step, ... >= tau_lo and deduplicates the results. The
/// straightforward approach Figure 13 compares against.
MultiRepairResult SamplingRepairs(const FdSearchContext& ctx, int64_t tau_lo,
                                  int64_t tau_hi, int64_t step,
                                  const ModifyFdsOptions& opts = {});

}  // namespace retrust

#endif  // RETRUST_REPAIR_MULTI_REPAIR_H_
