#include "src/repair/state.h"

#include "src/util/hash.h"

namespace retrust {

std::string SearchState::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < ext.size(); ++i) {
    if (i > 0) out += ", ";
    out += ext[i].Empty() ? "φ" : ext[i].ToString();
  }
  out += ")";
  return out;
}

std::string SearchState::ToString(const Schema& schema) const {
  std::string out = "(";
  for (size_t i = 0; i < ext.size(); ++i) {
    if (i > 0) out += ", ";
    out += ext[i].Empty() ? "φ" : ext[i].ToString(schema.Names());
  }
  out += ")";
  return out;
}

size_t SearchStateHash::operator()(const SearchState& s) const {
  uint64_t seed = 0x51ed270b8d3c7815ULL;
  for (AttrSet y : s.ext) HashCombine(&seed, y.bits());
  return static_cast<size_t>(seed);
}

}  // namespace retrust
