#include "src/repair/cell_sampler.h"

#include <stdexcept>

#include "src/fd/violation.h"

namespace retrust {

DataRepairResult CellSamplerRepair(const EncodedInstance& inst,
                                   const FDSet& sigma_prime, Rng* rng,
                                   const CellSamplerOptions& opts) {
  DataRepairResult result;
  EncodedInstance repaired = inst;
  int64_t max_fixes = opts.max_fixes > 0
                          ? opts.max_fixes
                          : 50LL * inst.NumTuples() *
                                (sigma_prime.size() + 1);

  int64_t fixes = 0;
  while (fixes < max_fixes) {
    // Collect current violations (pair, FD index). Rebuilding per round is
    // O(|Σ|·(n + E)); rounds are few relative to violations because each
    // round applies one fix per violating pair family.
    std::vector<std::pair<Edge, int>> violations;
    for (int i = 0; i < sigma_prime.size(); ++i) {
      for (const Edge& e : ViolatingPairs(repaired, sigma_prime.fd(i))) {
        violations.emplace_back(e, i);
      }
    }
    if (violations.empty()) break;

    auto [edge, fd_idx] = violations[rng->PickIndex(violations)];
    const FD& fd = sigma_prime.fd(fd_idx);
    // RHS equalization can cascade/oscillate across FDs; variable fixes are
    // monotone progress (a constant cell becomes a variable forever). Past
    // half the budget, force the monotone fix to guarantee termination.
    bool rhs_fix = rng->NextBool(opts.rhs_fix_share);
    if (fixes > max_fixes / 2) rhs_fix = false;
    if (fd.lhs.Empty()) rhs_fix = true;  // no LHS cell to break
    TupleId target = rng->NextBool() ? edge.u : edge.v;
    TupleId other = (target == edge.u) ? edge.v : edge.u;
    if (rhs_fix) {
      // Equalize the RHS: target's A takes the other tuple's value.
      repaired.SetCode(target, fd.rhs, repaired.At(other, fd.rhs));
    } else {
      // Break the LHS agreement with a fresh variable on a random X-attr.
      std::vector<AttrId> lhs = fd.lhs.ToVector();
      AttrId b = lhs[rng->PickIndex(lhs)];
      repaired.SetFreshVariable(target, b);
    }
    ++fixes;
  }

  if (fixes >= max_fixes && !Satisfies(repaired, sigma_prime)) {
    throw std::runtime_error("cell sampler exceeded its fix budget");
  }

  result.changed_cells = inst.DiffCells(repaired);
  result.cover_size = 0;  // not cover-based
  result.change_bound = static_cast<int64_t>(result.changed_cells.size());
  result.repaired = std::move(repaired);
  return result;
}

}  // namespace retrust
