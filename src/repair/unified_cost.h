// Unified-cost data + constraint repair — a re-implementation of the
// baseline the paper compares against (Chiang & Miller, "A unified model
// for data and constraint repair", ICDE 2011; reference [5]).
//
// The defining property of that approach (per the paper's §8.2 and §9) is
// that it aggregates data-change cost and FD-change cost into ONE objective
// with a fixed built-in relative trust, searches a constrained FD space
// (single-attribute LHS additions only), and returns a single repair.
//
// Our re-implementation is a greedy hill-climber over that unified
// objective:
//     score(Σc) = δP(Σc, I) + lambda · distc(Σ, Σc)
// starting at Σc = Σ and repeatedly applying the single-attribute LHS
// append that lowers the score most, stopping at a local minimum; the data
// side is then materialized with Algorithm 4. With informative attribute
// weights (the distinct-count weights the paper uses) FD appends are
// expensive, so the climber rarely modifies FDs — reproducing the paper's
// observation that the unified baseline kept FDs unchanged across its
// experiments (Figure 8).

#ifndef RETRUST_REPAIR_UNIFIED_COST_H_
#define RETRUST_REPAIR_UNIFIED_COST_H_

#include "src/exec/options.h"
#include "src/repair/repair_driver.h"

namespace retrust {

/// Options for the unified-cost baseline.
struct UnifiedCostOptions {
  /// Relative weight of FD changes vs cell changes in the unified score
  /// (the baseline's implicit, fixed trust level).
  double lambda = 1.0;
  /// Restrict to at most one appended attribute per FD (the constrained
  /// space reference [5] searches).
  bool single_attr_per_fd = true;
  uint64_t seed = 1;
  /// Shards the context construction and the data-repair cover build
  /// (results bit-identical for any thread count, see DESIGN.md).
  exec::Options exec;
};

/// Runs the unified-cost baseline; always returns a repair (τ is not a
/// concept here — the trade-off is fixed by lambda).
Repair UnifiedCostRepair(const FDSet& sigma, const EncodedInstance& inst,
                         const WeightFunction& weights,
                         const UnifiedCostOptions& opts = {});

}  // namespace retrust

#endif  // RETRUST_REPAIR_UNIFIED_COST_H_
