// Near-optimal data modification (paper §6, Algorithms 4 and 5).
//
// Given Σ' and I, produces a V-instance I' |= Σ' changing at most
// |C2opt(Σ', I)| · min(|R|-1, |Σ'|) cells — a 2·min(|R|-1, |Σ|)-approximation
// of the minimum (Theorem 3). Tuples outside a 2-approximate vertex cover of
// the conflict graph are kept verbatim; each cover tuple is repaired
// attribute-by-attribute in random order, keeping a cell whenever some
// assignment to the still-free attributes avoids all violations against the
// clean set (Algorithm 5), and overwriting it from the last valid assignment
// otherwise.

#ifndef RETRUST_REPAIR_REPAIR_DATA_H_
#define RETRUST_REPAIR_REPAIR_DATA_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "src/exec/options.h"
#include "src/fd/fdset.h"
#include "src/relational/dictionary.h"
#include "src/util/hash.h"
#include "src/util/rng.h"

namespace retrust {

/// Result of RepairData.
struct DataRepairResult {
  EncodedInstance repaired;          ///< I' |= Σ' (a V-instance)
  std::vector<CellRef> changed_cells;  ///< Δd(I, I')
  int64_t cover_size = 0;            ///< |C2opt(Σ', I)|
  /// The paper's per-repair change bound: cover_size * min(|R|-1, |Σ'|).
  int64_t change_bound = 0;
};

/// Algorithm 4. `rng` drives the random tuple/attribute orders; fix the
/// seed for reproducible repairs. `eopts` shards the conflict-graph and
/// difference-set construction that finds the cover (the repaired
/// instance is BIT-IDENTICAL for any thread count; the chase itself is
/// linear-time, seed-driven, and stays serial).
DataRepairResult RepairData(const EncodedInstance& inst,
                            const FDSet& sigma_prime, Rng* rng,
                            const exec::Options& eopts = {});

namespace internal {

/// Hash index over "clean" tuples, one map per FD: LHS projection codes ->
/// (RHS code, witness tuple). Clean tuples satisfy Σ', so the RHS is unique
/// per key. Exposed for unit tests.
class CleanIndex {
 public:
  CleanIndex(const EncodedInstance& inst, const FDSet& sigma_prime);

  /// Inserts tuple `t` of `inst` into every per-FD map.
  void Insert(const EncodedInstance& inst, TupleId t);

  /// For FD i, looks up the RHS code the clean set forces for the given
  /// LHS key; returns nullopt when the key is absent.
  std::optional<int32_t> ForcedRhs(int fd_index,
                                   const std::vector<int32_t>& lhs_key) const;

  /// Builds the LHS key of FD i for an arbitrary code row accessor.
  template <typename GetCode>
  std::vector<int32_t> MakeKey(int fd_index, GetCode&& get) const {
    std::vector<int32_t> key;
    key.reserve(lhs_cols_[fd_index].size());
    for (AttrId a : lhs_cols_[fd_index]) key.push_back(get(a));
    return key;
  }

  const std::vector<AttrId>& lhs_cols(int fd_index) const {
    return lhs_cols_[fd_index];
  }

 private:
  struct Maps;
  std::vector<std::vector<AttrId>> lhs_cols_;
  std::vector<AttrId> rhs_col_;
  // map per FD: key -> rhs code.
  std::vector<
      std::unordered_map<std::vector<int32_t>, int32_t, CodeVectorHash>>
      maps_;
};

/// Algorithm 5 (Find_Assignment): attempts to complete tuple `t` of `inst`
/// into an assignment `tc` equal to `t` on `fixed` and violating no FD
/// against the clean set. Returns the full code row of `tc` on success,
/// nullopt when impossible. `fixed` is taken by value — the additions the
/// algorithm makes while chasing forced values are local, as in the paper.
std::optional<std::vector<int32_t>> FindAssignment(
    EncodedInstance* inst, TupleId t, AttrSet fixed, const FDSet& sigma_prime,
    const CleanIndex& clean);

}  // namespace internal

}  // namespace retrust

#endif  // RETRUST_REPAIR_REPAIR_DATA_H_
