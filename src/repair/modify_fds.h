// Minimal FD modification for a trust level τ (paper §5, Algorithm 2).
//
// Finds Σ' ∈ S(Σ) with δP(Σ', I) = α·|C2opt(Σ', I)| ≤ τ minimizing
// distc(Σ, Σ'), by searching the LHS-extension tree with A* ordered by the
// gc heuristic (or plain best-first on state cost, the paper's baseline).
//
// The conflict graph of any relaxation Σ' is a subgraph of Σ's conflict
// graph (relaxations only remove violations), so the search precomputes Σ's
// difference-set index once and evaluates every candidate Σ' by filtering
// edge groups — no per-state conflict-graph rebuild.

#ifndef RETRUST_REPAIR_MODIFY_FDS_H_
#define RETRUST_REPAIR_MODIFY_FDS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/exec/cancel.h"
#include "src/exec/options.h"
#include "src/fd/difference_set.h"
#include "src/obs/trace.h"
#include "src/repair/evaluation.h"
#include "src/repair/heuristic.h"
#include "src/repair/state_space.h"
#include "src/search/policy.h"

namespace retrust {

/// Search strategy for the open list.
enum class SearchMode {
  kAStar,      ///< order by gc(S) (Algorithm 2)
  kBestFirst,  ///< order by cost(S) only (paper's baseline, §5.1)
};

/// Options for the FD-modification search.
struct ModifyFdsOptions {
  SearchMode mode = SearchMode::kAStar;
  HeuristicOptions heuristic;
  /// Which engine policy runs the open list (src/search/policy.h): exact
  /// best-first (the default — bit-identical to the pre-engine ModifyFds),
  /// weighted-A* anytime, or greedy descent. The weighting factor, δP-floor
  /// pruning, and initial upper bound only apply to the non-exact policies.
  search::PolicyOptions policy;
  /// Resolve cost ties among goal states by smaller δP (Definition 4's
  /// tie-break on distance to I). Costs within `cost_epsilon` tie.
  bool tie_break_delta = true;
  double cost_epsilon = 1e-9;
  /// Safety cap on popped states (0 = unlimited). Hitting it reports
  /// SearchTermination::kVisitBudget.
  int64_t max_visited = 0;
  /// Wall-clock cap in seconds (0 = none), checked once per popped state.
  /// Expiry reports SearchTermination::kDeadline. Like `cancel`, a deadline
  /// makes the outcome timing-dependent — opt-in only, never a default.
  double deadline_seconds = 0.0;
  /// Cooperative cancellation, polled once per popped state. Not owned;
  /// the caller keeps the token alive for the duration of the search.
  const exec::CancelToken* cancel = nullptr;
  /// Parallel successor evaluation (src/exec/). With more than one thread,
  /// a popped state's LHS-extensions are evaluated speculatively on a
  /// thread pool at expansion time, each child with its own cover scratch;
  /// the search consumes the memoized values in the exact serial order, so
  /// the REPAIR and the visit schedule (states_visited/states_generated)
  /// are BIT-IDENTICAL for any num_threads (see DESIGN.md). The
  /// heuristic_calls/vc_computations counters report actual work done,
  /// which is LARGER under speculation (children that never reach the top
  /// of the open list still get evaluated) — compare those counters across
  /// search modes only at num_threads = 1.
  exec::Options exec;
  /// Per-phase wall-time accumulators (expand/evaluate/cover/bound) for
  /// request tracing. Null (the default) disables instrumentation: the
  /// engine's hot loop then does no clock reads for tracing, and the
  /// search outcome is unaffected either way — timing never feeds back
  /// into the schedule.
  obs::SearchPhaseStats* phase_trace = nullptr;
};

/// One FD repair: the chosen relaxation plus its measurements.
struct FdRepair {
  SearchState state;            ///< Δc(Σ, Σ')
  FDSet sigma_prime;            ///< Σ' = Σ extended by `state`
  double distc = 0.0;           ///< Σ w(Y_i)
  int64_t cover_size = 0;       ///< |C2opt(Σ', I)|
  int64_t delta_p = 0;          ///< α·|C2opt(Σ', I)|
};

/// Why a search loop stopped. Only kCompleted carries the full Algorithm 2
/// guarantee (the repair is cost-minimal, or provably none exists ≤ τ); the
/// other values mean the search was interrupted — `repair` then holds the
/// best goal state found so far, if any.
enum class SearchTermination {
  kCompleted,    ///< open list exhausted or optimality bound closed
  kVisitBudget,  ///< stopped by ModifyFdsOptions::max_visited
  kDeadline,     ///< stopped by ModifyFdsOptions::deadline_seconds
  kCancelled,    ///< stopped by ModifyFdsOptions::cancel
};

/// Result of ModifyFds.
struct ModifyFdsResult {
  std::optional<FdRepair> repair;  ///< empty when no goal state was reached
  SearchStats stats;
  SearchTermination termination = SearchTermination::kCompleted;
  /// Incumbent trajectory: one point per time the best-so-far repair was
  /// set or improved (every policy records it; only the anytime policy
  /// typically has more than one point). Empty when no repair was found.
  std::vector<search::IncumbentPoint> incumbents;
};

/// Precomputed, τ-independent context shared by searches over one (Σ, I):
/// the conflict graph of Σ, its difference-set index, the δP evaluation
/// layer (violation incidence table + memoized covers), state space, and
/// heuristic. Build once, run ModifyFds/FindRepairsFds many times — also
/// concurrently: every const method is thread-safe (pooled scratch owned
/// by the evaluation layer, mutex-guarded memos), which is what
/// exec::Sweep relies on; sweep jobs share the table AND the cover memo.
class FdSearchContext {
 public:
  /// `eopts` shards the difference-set and violation-table construction
  /// (identical output for any thread count). `mode` selects the
  /// difference-set builder: kBlocked (default, sub-quadratic when classes
  /// are small) or kNaive (the legacy conflict-graph pair scan, kept as an
  /// oracle) — both produce BIT-IDENTICAL indexes. The context keeps a
  /// pointer to `inst` (for lazy materialization of counted groups), so
  /// `inst` must outlive the context — already required by ApplyDelta.
  FdSearchContext(const FDSet& sigma, const EncodedInstance& inst,
                  const WeightFunction& weights,
                  const HeuristicOptions& hopts = {},
                  const exec::Options& eopts = {},
                  DiffSetBuildMode mode = DiffSetBuildMode::kBlocked);

  /// Restore construction (src/persist/): adopts a pre-built difference-set
  /// index and the evaluator's warm caches instead of paying the O(n²)
  /// conflict-graph/difference-set build — the whole point of a snapshot.
  /// `index` and `warm` must have been exported from a context over the
  /// SAME (Σ, I); answers are then bit-identical to a fresh build at any
  /// thread count. Throws std::invalid_argument on shape mismatches.
  FdSearchContext(const FDSet& sigma, const EncodedInstance& inst,
                  const WeightFunction& weights,
                  const HeuristicOptions& hopts, DifferenceSetIndex index,
                  DeltaPEvaluator::WarmState warm);

  /// Aggregate of what one delta did to this context's structures.
  struct DeltaReport {
    IndexPatch index;
    DeltaPEvaluator::PatchStats evaluator;
    uint64_t version = 0;  ///< the context version after the patch
  };

  /// Delta-maintains the context after `inst` — the SAME instance this
  /// context was built over — had a DeltaBatch applied in place (delta.h).
  /// `dirty`/`remap` come from the batch's DeltaPlan. The difference-set
  /// index is patched in O(Δ·n) (sharded per `eopts`), the violation
  /// table copies preserved incidence rows, and warm covers over
  /// preserved groups are remapped; every post-delta answer is
  /// BIT-IDENTICAL to a context freshly built over the mutated instance,
  /// for any thread count. Exception: when some FD of Σ has an empty LHS
  /// (the only regime where full-disagreement pairs are conflict edges and
  /// the index may carry a counted group), the pre-delta pair population
  /// is not recoverable from the post-delta instance, so the index is
  /// REBUILT with the blocked builder and all warm covers drop — still
  /// bit-identical to a fresh build, just without the O(Δ·n) shortcut. Bumps version(); in-flight exec::Sweep runs
  /// detect the bump and refuse to mix snapshots. NOT safe against
  /// concurrent const use — callers serialize deltas against queries
  /// (retrust::Session does this with a shared/exclusive lock).
  DeltaReport ApplyDelta(const EncodedInstance& inst,
                         const std::vector<TupleId>& dirty,
                         const std::vector<TupleId>& remap,
                         const exec::Options& eopts = {});

  /// Same on an existing pool (nullable = serial) — lets one Apply reuse
  /// one pool across many cached contexts instead of spawning a pool per
  /// context (Session::Apply's loop).
  DeltaReport ApplyDelta(const EncodedInstance& inst,
                         const std::vector<TupleId>& dirty,
                         const std::vector<TupleId>& remap,
                         exec::ThreadPool* pool);

  /// Monotone data-snapshot version, bumped by every ApplyDelta. Safe to
  /// read concurrently with queries (exec::Sweep polls it).
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  const FDSet& sigma() const { return sigma_; }
  const StateSpace& space() const { return space_; }
  const DifferenceSetIndex& index() const { return index_; }
  /// Phase timings and pair counts of the index build that produced this
  /// context (zeros for the restore constructor — a snapshot restore does
  /// not rebuild). Refreshed when ApplyDelta falls back to a full rebuild.
  const DiffSetBuildStats& build_stats() const { return build_stats_; }
  const DeltaPEvaluator& evaluator() const { return *evaluator_; }
  const GcHeuristic& heuristic() const { return heuristic_; }
  const WeightFunction& weights() const { return weights_; }
  int64_t alpha() const { return heuristic_.alpha(); }
  int num_tuples() const { return num_tuples_; }

  /// |C2opt(Σ', I)| for the relaxation given by `s`: greedy cover over Σ's
  /// conflict edges still violated under `s`, in canonical (u, v) order —
  /// evaluated through the memoized δP pipeline, bit-identical to the
  /// direct scan.
  int64_t CoverSize(const SearchState& s, SearchStats* stats) const;

  /// δP(Σ', I) = α · CoverSize.
  int64_t DeltaP(const SearchState& s, SearchStats* stats) const;

  /// δP(Σ, I) — the root bound; τ = 100% corresponds to this value.
  int64_t RootDeltaP() const;

 private:
  FDSet sigma_;
  int num_tuples_;
  StateSpace space_;
  // Declared before index_: the index initializer writes the stats through
  // a pointer, so the member must already be initialized at that point.
  DiffSetBuildStats build_stats_;
  DifferenceSetIndex index_;
  std::unique_ptr<DeltaPEvaluator> evaluator_;  ///< built over index_
  const WeightFunction& weights_;
  GcHeuristic heuristic_;
  std::atomic<uint64_t> version_{1};
};

/// Algorithm 2: cheapest Σ' with δP(Σ', I) ≤ τ (ties broken by δP when
/// enabled). Returns no repair iff even the fully-extended space cannot
/// reach δP ≤ τ.
ModifyFdsResult ModifyFds(const FdSearchContext& ctx, int64_t tau,
                          const ModifyFdsOptions& opts = {});

/// Convenience overload building a one-shot context.
ModifyFdsResult ModifyFds(const FDSet& sigma, const EncodedInstance& inst,
                          int64_t tau, const WeightFunction& weights,
                          const ModifyFdsOptions& opts = {});

}  // namespace retrust

#endif  // RETRUST_REPAIR_MODIFY_FDS_H_
