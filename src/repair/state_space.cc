#include "src/repair/state_space.h"

#include <cmath>
#include <stdexcept>

namespace retrust {

StateSpace::StateSpace(const FDSet& sigma, const Schema& schema) {
  allowed_.reserve(sigma.size());
  for (const FD& fd : sigma.fds()) {
    AttrSet banned = fd.lhs;
    banned.Add(fd.rhs);
    allowed_.push_back(schema.Universe().Minus(banned));
  }
}

bool StateSpace::Valid(const SearchState& s) const {
  if (s.ext.size() != allowed_.size()) return false;
  for (size_t i = 0; i < allowed_.size(); ++i) {
    if (!s.ext[i].SubsetOf(allowed_[i])) return false;
  }
  return true;
}

SearchState StateSpace::Parent(const SearchState& s) const {
  AttrSet u = s.UnionExt();
  if (u.Empty()) throw std::invalid_argument("root state has no parent");
  AttrId a = u.Max();
  // Last component containing a.
  for (int i = static_cast<int>(s.ext.size()) - 1; i >= 0; --i) {
    if (s.ext[i].Contains(a)) {
      SearchState parent = s;
      parent.ext[i].Remove(a);
      return parent;
    }
  }
  throw std::logic_error("unreachable");
}

std::vector<SearchState> StateSpace::Children(const SearchState& s) const {
  std::vector<SearchState> children;
  AttrSet u = s.UnionExt();
  AttrId max_attr = u.Max();  // -1 when root
  // Last component containing max_attr (only meaningful when not root).
  int last_idx = -1;
  if (max_attr >= 0) {
    for (int i = static_cast<int>(s.ext.size()) - 1; i >= 0; --i) {
      if (s.ext[i].Contains(max_attr)) {
        last_idx = i;
        break;
      }
    }
  }
  for (int i = 0; i < num_fds(); ++i) {
    for (AttrId a : allowed_[i].Minus(s.ext[i])) {
      if (a < max_attr) continue;
      if (a == max_attr && i <= last_idx) continue;
      SearchState child = s;
      child.ext[i].Add(a);
      children.push_back(std::move(child));
    }
  }
  return children;
}

std::vector<SearchState> StateSpace::EnumerateAll() const {
  std::vector<SearchState> all;
  std::vector<SearchState> stack = {SearchState::Root(num_fds())};
  while (!stack.empty()) {
    SearchState s = std::move(stack.back());
    stack.pop_back();
    for (SearchState& c : Children(s)) stack.push_back(std::move(c));
    all.push_back(std::move(s));
  }
  return all;
}

double StateSpace::SpaceSize() const {
  double size = 1.0;
  for (AttrSet a : allowed_) size *= std::pow(2.0, a.Count());
  return size;
}

}  // namespace retrust
