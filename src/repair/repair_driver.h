// Algorithm 1 (Repair_Data_FDs): the end-to-end τ-constrained repair.
//
// Step 1 finds Σ' minimizing distc subject to δP(Σ', I) ≤ τ (Algorithm 2);
// step 2 materializes I' |= Σ' with at most δP cell changes (Algorithm 4).
// The result is a P-approximate τ-constrained repair with
// P = 2·min(|R|-1, |Σ|) (paper Definition 5, Theorem 2).

#ifndef RETRUST_REPAIR_REPAIR_DRIVER_H_
#define RETRUST_REPAIR_REPAIR_DRIVER_H_

#include <optional>

#include "src/repair/modify_fds.h"
#include "src/repair/repair_data.h"

namespace retrust {

/// Options for the end-to-end repair. Parallel execution is configured via
/// `search.exec` (exec::Options{num_threads}); Algorithm 4's data-repair
/// pass stays serial — it is linear-time and seed-driven. Results are
/// bit-identical for any thread count (see DESIGN.md).
struct RepairOptions {
  ModifyFdsOptions search;
  uint64_t seed = 1;  ///< drives Algorithm 4's random orders
};

/// A complete (Σ', I') repair plus measurements.
struct Repair {
  FDSet sigma_prime;
  std::vector<AttrSet> extensions;   ///< Δc(Σ, Σ')
  double distc = 0.0;
  EncodedInstance data;              ///< I' (a V-instance)
  std::vector<CellRef> changed_cells;  ///< Δd(I, I')
  int64_t delta_p = 0;               ///< δP(Σ', I) bound used by the search
  SearchStats stats;
  /// FD-search incumbent trajectory (ModifyFdsResult::incumbents): the
  /// anytime policy's quality-vs-time curve; a single point under exact.
  std::vector<search::IncumbentPoint> incumbents;
};

/// Full outcome of Algorithm 1: the repair when one was found, plus the
/// search stats and the reason the search stopped — available even when no
/// repair exists, which is what the api/ facade's Status mapping needs.
struct RepairOutcome {
  std::optional<Repair> repair;
  SearchStats stats;  ///< step-1 search stats (same as repair->stats)
  SearchTermination termination = SearchTermination::kCompleted;
};

/// Algorithm 1 over a prebuilt search context, reporting the full outcome.
RepairOutcome RunRepair(const FdSearchContext& ctx,
                        const EncodedInstance& inst, int64_t tau,
                        const RepairOptions& opts = {});

/// Algorithm 1. Returns nullopt iff no relaxation of Σ admits a repair with
/// at most τ cell changes (i.e. no goal state exists).
std::optional<Repair> RepairDataAndFds(const FDSet& sigma,
                                       const EncodedInstance& inst,
                                       int64_t tau,
                                       const WeightFunction& weights,
                                       const RepairOptions& opts = {});

/// Same, over a prebuilt search context (reuse across τ values).
std::optional<Repair> RepairDataAndFds(const FdSearchContext& ctx,
                                       const EncodedInstance& inst,
                                       int64_t tau,
                                       const RepairOptions& opts = {});

/// Converts a relative trust level τr ∈ [0, 1] to an absolute τ against the
/// root bound δP(Σ, I) (the paper defines τr against δopt, which is
/// NP-hard; the PTIME bound only rescales the axis — see DESIGN.md).
/// Out-of-range inputs clamp: τr below 0 or NaN maps to 0, above 1 to 1,
/// and a negative root bound is treated as 0. The api/ facade offers
/// CheckedTauFromRelative, which rejects such inputs instead.
int64_t TauFromRelative(double tau_r, int64_t root_delta_p);

}  // namespace retrust

#endif  // RETRUST_REPAIR_REPAIR_DRIVER_H_
