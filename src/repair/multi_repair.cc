#include "src/repair/multi_repair.h"

#include <algorithm>
#include <unordered_set>

#include "src/util/timer.h"

namespace retrust {
namespace {

// Lazy gc evaluation, as in ModifyFds: children carry their parent's
// priority as a lower bound until they surface. After a τ decrease, stale
// evaluated priorities remain valid lower bounds (gc grows as τ shrinks),
// so entries are simply demoted to unevaluated instead of recomputed.
struct OpenEntry {
  double priority;
  double cost;
  int64_t seq;
  bool evaluated;
  SearchState state;
};

struct EntryGreater {
  bool operator()(const OpenEntry& a, const OpenEntry& b) const {
    if (a.priority != b.priority) return a.priority > b.priority;
    if (a.cost != b.cost) return a.cost > b.cost;
    return a.seq > b.seq;
  }
};

}  // namespace

MultiRepairResult FindRepairsFds(const FdSearchContext& ctx, int64_t tau_lo,
                                 int64_t tau_hi,
                                 const ModifyFdsOptions& opts) {
  Timer timer;
  MultiRepairResult result;
  SearchStats& stats = result.stats;
  const GcHeuristic& h = ctx.heuristic();
  const bool astar = opts.mode == SearchMode::kAStar;
  int64_t tau = tau_hi;  // line 2

  std::vector<OpenEntry> open;
  EntryGreater greater;
  int64_t seq = 0;
  SearchState root = SearchState::Root(ctx.sigma().size());
  open.push_back({root.Cost(ctx.weights()), root.Cost(ctx.weights()), seq++,
                  !astar, root});
  ++stats.states_generated;

  while (!open.empty() && tau >= tau_lo) {  // line 4
    std::pop_heap(open.begin(), open.end(), greater);
    OpenEntry top = std::move(open.back());
    open.pop_back();

    if (!top.evaluated) {
      double gc = h.Compute(top.state, tau, &stats);
      if (gc == GcHeuristic::kInfinity) continue;
      top.priority = std::max(gc, top.cost);
      top.evaluated = true;
      if (!open.empty() && open.front().priority < top.priority) {
        open.push_back(std::move(top));
        std::push_heap(open.begin(), open.end(), greater);
        continue;
      }
    }
    ++stats.states_visited;

    int64_t cover = ctx.CoverSize(top.state, &stats);
    int64_t delta_p = ctx.alpha() * cover;
    if (delta_p <= tau) {  // line 8
      FdRepair repair{top.state, top.state.Apply(ctx.sigma()),
                      top.state.Cost(ctx.weights()), cover, delta_p};
      result.repairs.push_back({std::move(repair), delta_p, tau});  // line 9
      tau = delta_p - 1;  // line 10
      if (tau < tau_lo) break;
      // Line 11: gc depends on τ. Evaluated priorities computed for the old
      // (larger) τ are still lower bounds for the new τ, so demote them to
      // unevaluated — they will be re-evaluated lazily when they surface.
      if (astar) {
        for (OpenEntry& e : open) e.evaluated = false;
      }
    }

    // Lines 14-17: expand (goal states too — their descendants may serve
    // smaller τ).
    for (SearchState& child : ctx.space().Children(top.state)) {
      double child_cost = child.Cost(ctx.weights());
      open.push_back({std::max(top.priority, child_cost), child_cost, seq++,
                      !astar, std::move(child)});
      std::push_heap(open.begin(), open.end(), greater);
      ++stats.states_generated;
    }
  }

  stats.seconds = timer.ElapsedSeconds();
  return result;
}

MultiRepairResult SamplingRepairs(const FdSearchContext& ctx, int64_t tau_lo,
                                  int64_t tau_hi, int64_t step,
                                  const ModifyFdsOptions& opts) {
  Timer timer;
  MultiRepairResult result;
  std::unordered_set<SearchState, SearchStateHash> seen;
  if (step <= 0) step = 1;
  for (int64_t tau = tau_hi; tau >= tau_lo; tau -= step) {
    ModifyFdsResult r = ModifyFds(ctx, tau, opts);
    result.stats.Accumulate(r.stats);
    if (!r.repair.has_value()) continue;
    if (seen.insert(r.repair->state).second) {
      int64_t delta_p = r.repair->delta_p;
      result.repairs.push_back({std::move(*r.repair), delta_p, tau});
    }
  }
  result.stats.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace retrust
