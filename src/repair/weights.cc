#include "src/repair/weights.h"

#include <cmath>
#include <unordered_map>

#include "src/util/hash.h"

namespace retrust {

double WeightFunction::Cost(const std::vector<AttrSet>& extensions) const {
  double total = 0.0;
  for (AttrSet y : extensions) total += Weight(y);
  return total;
}

double DistinctCountWeight::Weight(AttrSet y) const {
  if (y.Empty()) return 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(y);
    if (it != cache_.end()) return it->second;
  }
  // Compute outside the lock; a concurrent duplicate computation is benign
  // (both threads insert the same value).
  double w = static_cast<double>(inst_.CountDistinctProjection(y));
  std::lock_guard<std::mutex> lock(mu_);
  cache_.emplace(y, w);
  return w;
}

void DistinctCountWeight::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

double EntropyWeight::Weight(AttrSet y) const {
  if (y.Empty()) return 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(y);
    if (it != cache_.end()) return it->second;
  }
  // Empirical joint entropy of the Y-projection.
  std::vector<AttrId> cols = y.ToVector();
  std::unordered_map<std::vector<int32_t>, int64_t, CodeVectorHash> counts;
  std::vector<int32_t> key(cols.size());
  int n = inst_.NumTuples();
  for (TupleId t = 0; t < n; ++t) {
    for (size_t i = 0; i < cols.size(); ++i) key[i] = inst_.At(t, cols[i]);
    ++counts[key];
  }
  double h = 0.0;
  for (const auto& [k, c] : counts) {
    double p = static_cast<double>(c) / n;
    h -= p * std::log2(p);
  }
  std::lock_guard<std::mutex> lock(mu_);
  cache_.emplace(y, h);
  return h;
}

void EntropyWeight::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

}  // namespace retrust
