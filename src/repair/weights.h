// Weighting functions w(Y) for the FD-distance distc(Σ, Σ') =
// Σ_i w(Y_i), where Y_i is the attribute set appended to the i-th FD's LHS
// (paper §3.1).
//
// Requirements from the paper: w is non-negative and monotone
// (X ⊆ Y ⇒ w(X) ≤ w(Y)), and w(∅) = 0. The paper's experiments use the
// number of distinct values of the appended attribute set in the *initial*
// instance (more informative attributes are more expensive to append);
// weights are frozen against the initial I (§3.1 simplifying assumption),
// which the memoizing implementations here rely on. Under the incremental
// update engine "initial" means "as of the last delta": Session::Apply
// calls Invalidate() after mutating the instance, so memoized projections
// refresh lazily against the post-delta data.

#ifndef RETRUST_REPAIR_WEIGHTS_H_
#define RETRUST_REPAIR_WEIGHTS_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/relational/dictionary.h"

namespace retrust {

/// Interface for monotone extension weights.
class WeightFunction {
 public:
  virtual ~WeightFunction() = default;

  /// w(Y). Must be non-negative, monotone, and 0 for the empty set.
  virtual double Weight(AttrSet y) const = 0;

  /// Drops any memoized state derived from the underlying instance; called
  /// after the instance mutates (Session::Apply). Instance-independent
  /// weights are a no-op. Requires external exclusion against concurrent
  /// Weight() calls.
  virtual void Invalidate() {}

  /// distc contribution of a whole extension vector: Σ_i w(Y_i).
  double Cost(const std::vector<AttrSet>& extensions) const;
};

/// w(Y) = |Y| — the simple cardinality weight.
class CardinalityWeight final : public WeightFunction {
 public:
  double Weight(AttrSet y) const override { return y.Count(); }
};

/// w(Y) = |π_Y(I)| (number of distinct Y-projections in the initial
/// instance), w(∅) = 0 — the paper's experimental choice. Memoized; the
/// memo is mutex-guarded so one weight instance may serve concurrent
/// searches (exec::Sweep, parallel successor evaluation).
class DistinctCountWeight final : public WeightFunction {
 public:
  /// Keeps a reference to `inst`; the instance must outlive the weight.
  explicit DistinctCountWeight(const EncodedInstance& inst) : inst_(inst) {}

  double Weight(AttrSet y) const override;
  void Invalidate() override;

 private:
  const EncodedInstance& inst_;
  mutable std::mutex mu_;
  mutable std::unordered_map<AttrSet, double, AttrSetHash> cache_;
};

/// w(Y) = H(Y), the empirical joint entropy (bits) of the Y-projection in
/// the initial instance; w(∅) = 0. Monotone since H(Y ∪ B) >= H(Y).
class EntropyWeight final : public WeightFunction {
 public:
  explicit EntropyWeight(const EncodedInstance& inst) : inst_(inst) {}

  double Weight(AttrSet y) const override;
  void Invalidate() override;

 private:
  const EncodedInstance& inst_;
  mutable std::mutex mu_;
  mutable std::unordered_map<AttrSet, double, AttrSetHash> cache_;
};

}  // namespace retrust

#endif  // RETRUST_REPAIR_WEIGHTS_H_
