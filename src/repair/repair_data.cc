#include "src/repair/repair_data.h"

#include <algorithm>
#include <stdexcept>

#include "src/fd/conflict_graph.h"
#include "src/fd/difference_set.h"
#include "src/graph/vertex_cover.h"

namespace retrust {
namespace internal {

CleanIndex::CleanIndex(const EncodedInstance& inst, const FDSet& sigma_prime)
    : maps_(sigma_prime.size()) {
  lhs_cols_.reserve(sigma_prime.size());
  rhs_col_.reserve(sigma_prime.size());
  for (const FD& fd : sigma_prime.fds()) {
    lhs_cols_.push_back(fd.lhs.ToVector());
    rhs_col_.push_back(fd.rhs);
  }
  (void)inst;
}

void CleanIndex::Insert(const EncodedInstance& inst, TupleId t) {
  for (size_t i = 0; i < maps_.size(); ++i) {
    std::vector<int32_t> key =
        MakeKey(static_cast<int>(i), [&](AttrId a) { return inst.At(t, a); });
    int32_t rhs = inst.At(t, rhs_col_[i]);
    auto [it, inserted] = maps_[i].emplace(std::move(key), rhs);
    if (!inserted && it->second != rhs) {
      throw std::logic_error("clean set violates Σ' (index corruption)");
    }
  }
}

std::optional<int32_t> CleanIndex::ForcedRhs(
    int fd_index, const std::vector<int32_t>& lhs_key) const {
  const auto& map = maps_[fd_index];
  auto it = map.find(lhs_key);
  if (it == map.end()) return std::nullopt;
  return it->second;
}

std::optional<std::vector<int32_t>> FindAssignment(
    EncodedInstance* inst, TupleId t, AttrSet fixed, const FDSet& sigma_prime,
    const CleanIndex& clean) {
  int m = inst->NumAttrs();
  // Line 1: tc equals t on fixed attributes, fresh variables elsewhere.
  std::vector<int32_t> tc(m);
  for (AttrId a = 0; a < m; ++a) {
    tc[a] = fixed.Contains(a) ? inst->At(t, a) : inst->NewVariableCode(a);
  }
  // Lines 2-9: chase violations against the clean set. Each iteration that
  // finds a violation pins one more attribute, so the loop terminates.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = 0; i < sigma_prime.size(); ++i) {
      const FD& fd = sigma_prime.fd(i);
      if (fd.IsTrivial()) continue;
      std::vector<int32_t> key =
          clean.MakeKey(i, [&](AttrId a) { return tc[a]; });
      std::optional<int32_t> forced = clean.ForcedRhs(i, key);
      if (!forced.has_value() || tc[fd.rhs] == *forced) continue;
      if (fixed.Contains(fd.rhs)) return std::nullopt;  // line 4
      tc[fd.rhs] = *forced;                             // line 6
      fixed.Add(fd.rhs);                                // line 7
      changed = true;
    }
  }
  return tc;
}

}  // namespace internal

DataRepairResult RepairData(const EncodedInstance& inst,
                            const FDSet& sigma_prime, Rng* rng,
                            const exec::Options& eopts) {
  DataRepairResult result;
  // Compute the matching cover over edges in difference-set-group order —
  // the SAME canonical order FdSearchContext::CoverSize uses — so the
  // number of cover tuples here equals the δP/α the search certified
  // against τ (Theorem 2 consistency). The graph/index construction is
  // sharded per eopts; the index is identical for any thread count.
  DifferenceSetIndex index = BuildDifferenceSetIndex(inst, sigma_prime, eopts);
  index.BindInstance(&inst);  // counted groups materialize lazily
  std::vector<int32_t> cover;
  {
    std::vector<char> covered(inst.NumTuples(), 0);
    for (int g = 0; g < index.size(); ++g) {
      for (const Edge& e : index.EdgesForCover(g)) {
        if (!covered[e.u] && !covered[e.v]) {
          covered[e.u] = covered[e.v] = 1;
          cover.push_back(e.u);
          cover.push_back(e.v);
        }
      }
    }
    std::sort(cover.begin(), cover.end());
  }
  result.cover_size = static_cast<int64_t>(cover.size());
  int64_t per_tuple =
      std::min<int64_t>(inst.NumAttrs() - 1, sigma_prime.size());
  result.change_bound = result.cover_size * per_tuple;

  EncodedInstance repaired = inst;  // I' <- I
  std::vector<char> in_cover(inst.NumTuples(), 0);
  for (int32_t t : cover) in_cover[t] = 1;

  // Index the clean tuples (I' \ C2opt).
  internal::CleanIndex clean(repaired, sigma_prime);
  for (TupleId t = 0; t < repaired.NumTuples(); ++t) {
    if (!in_cover[t]) clean.Insert(repaired, t);
  }

  // Process cover tuples in random order (Algorithm 4 line 5).
  std::vector<int32_t> order = cover;
  rng->Shuffle(&order);
  int m = repaired.NumAttrs();
  std::vector<AttrId> attr_order(m);
  for (AttrId a = 0; a < m; ++a) attr_order[a] = a;

  for (int32_t t : order) {
    rng->Shuffle(&attr_order);  // random attribute order for this tuple
    AttrSet fixed;
    fixed.Add(attr_order[0]);  // line 6
    std::optional<std::vector<int32_t>> tc =
        internal::FindAssignment(&repaired, t, fixed, sigma_prime, clean);
    if (!tc.has_value()) {
      // Lemma 2 + Theorem 3: a valid assignment always exists with a single
      // fixed attribute.
      throw std::logic_error("Find_Assignment failed with one fixed attr");
    }
    for (int k = 1; k < m; ++k) {  // lines 8-15
      AttrId a = attr_order[k];
      fixed.Add(a);
      std::optional<std::vector<int32_t>> next =
          internal::FindAssignment(&repaired, t, fixed, sigma_prime, clean);
      if (!next.has_value()) {
        repaired.SetCode(t, a, (*tc)[a]);  // line 11
      } else {
        tc = std::move(next);  // line 13
      }
    }
    in_cover[t] = 0;
    clean.Insert(repaired, t);  // t joins I' \ C2opt for later tuples
  }

  result.changed_cells = inst.DiffCells(repaired);
  result.repaired = std::move(repaired);
  return result;
}

}  // namespace retrust
