// Search states for FD modification: Δc(Σ, Σ') — one LHS-extension
// attribute set per FD of Σ (paper §5.1).

#ifndef RETRUST_REPAIR_STATE_H_
#define RETRUST_REPAIR_STATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fd/fdset.h"
#include "src/repair/weights.h"

namespace retrust {

/// A state of the FD-modification search: the vector of attribute sets
/// appended to the LHSs of Σ's FDs.
struct SearchState {
  std::vector<AttrSet> ext;

  SearchState() = default;
  explicit SearchState(int num_fds) : ext(num_fds) {}
  explicit SearchState(std::vector<AttrSet> e) : ext(std::move(e)) {}

  /// The root state (φ, ..., φ).
  static SearchState Root(int num_fds) { return SearchState(num_fds); }

  bool IsRoot() const {
    for (AttrSet y : ext) {
      if (!y.Empty()) return false;
    }
    return true;
  }

  /// Union of all extension sets.
  AttrSet UnionExt() const {
    AttrSet u;
    for (AttrSet y : ext) u = u.Union(y);
    return u;
  }

  /// Total number of appended attribute slots (Σ |Y_i|).
  int TotalAppended() const {
    int c = 0;
    for (AttrSet y : ext) c += y.Count();
    return c;
  }

  /// Paper's "extends" partial order: ∀i, other.ext[i] ⊆ ext[i].
  bool Extends(const SearchState& other) const {
    for (size_t i = 0; i < ext.size(); ++i) {
      if (!other.ext[i].SubsetOf(ext[i])) return false;
    }
    return true;
  }

  /// Cost distc(Σ, Σ') = Σ w(Y_i).
  double Cost(const WeightFunction& w) const { return w.Cost(ext); }

  /// Σ' = Σ extended by this state.
  FDSet Apply(const FDSet& sigma) const { return sigma.Extend(ext); }

  std::string ToString() const;
  std::string ToString(const Schema& schema) const;

  friend bool operator==(const SearchState& a, const SearchState& b) {
    return a.ext == b.ext;
  }
};

/// Hasher for SearchState.
struct SearchStateHash {
  size_t operator()(const SearchState& s) const;
};

/// Counters reported by the search algorithms (Figures 9-12 plot these).
struct SearchStats {
  int64_t states_visited = 0;    ///< states popped from the open list
  int64_t states_generated = 0;  ///< states pushed onto the open list
  int64_t expansions = 0;        ///< states whose children were generated
  int64_t heuristic_calls = 0;   ///< gc() evaluations
  int64_t vc_computations = 0;   ///< approximate vertex covers computed
  /// Cover evaluations answered by the memoized evaluation layer instead
  /// of recomputed; vc_computations + vc_memo_hits is what the legacy
  /// (pre-memo) path counted as vc_computations.
  int64_t vc_memo_hits = 0;
  /// Subtrees discarded because their δP floor (the engine's admissible
  /// cover lower bound) already exceeded τ — anytime/greedy policies only.
  int64_t lb_prunes = 0;
  /// Times the anytime incumbent was set or improved (the length of
  /// ModifyFdsResult::incumbents for a single search).
  int64_t incumbent_improvements = 0;
  /// Proven bound on repair.distc / optimal at the moment the search
  /// stopped: 1 = proven cost-minimal, w = the anytime guarantee,
  /// 0 = no claim (greedy, or no repair found).
  double suboptimality_bound = 0.0;
  /// Wall-clock until the FIRST τ-feasible repair was held (0 when none
  /// was found) — the anytime policy's headline latency.
  double first_repair_seconds = 0.0;
  double seconds = 0.0;          ///< wall-clock time

  /// Sums the additive counters; the per-search bounds keep their WORST
  /// value across the accumulated searches (max), so a sweep aggregate
  /// never overstates quality or responsiveness.
  void Accumulate(const SearchStats& o) {
    states_visited += o.states_visited;
    states_generated += o.states_generated;
    expansions += o.expansions;
    heuristic_calls += o.heuristic_calls;
    vc_computations += o.vc_computations;
    vc_memo_hits += o.vc_memo_hits;
    lb_prunes += o.lb_prunes;
    incumbent_improvements += o.incumbent_improvements;
    if (o.suboptimality_bound > suboptimality_bound) {
      suboptimality_bound = o.suboptimality_bound;
    }
    if (o.first_repair_seconds > first_repair_seconds) {
      first_repair_seconds = o.first_repair_seconds;
    }
    seconds += o.seconds;
  }
};

}  // namespace retrust

#endif  // RETRUST_REPAIR_STATE_H_
