#include "src/repair/evaluation.h"

#include "src/exec/thread_pool.h"

namespace retrust {

namespace {

// A counted group's slot is null: the memo pulls its (lazily materialized)
// pair list from the index only if a cover scan actually reaches it.
std::vector<const std::vector<Edge>*> GroupEdgeLists(
    const DifferenceSetIndex& index) {
  std::vector<const std::vector<Edge>*> out;
  out.reserve(index.size());
  for (const DiffSetGroup& g : index.groups()) {
    out.push_back(g.counted > 0 ? nullptr : &g.edges);
  }
  return out;
}

// Resolver for the null slots. Captures the index by pointer: the
// evaluator's contract already requires the index to outlive it.
CoverMemo::GroupResolver CountedResolver(const DifferenceSetIndex& index) {
  if (!index.HasCountedGroups()) return nullptr;
  const DifferenceSetIndex* idx = &index;
  return [idx](int g) -> const std::vector<Edge>& {
    return idx->EdgesForCover(g);
  };
}

}  // namespace

DeltaPEvaluator::DeltaPEvaluator(const FDSet& sigma,
                                 const DifferenceSetIndex& index,
                                 int num_tuples, const exec::Options& eopts)
    : memo_(GroupEdgeLists(index), num_tuples, size_t{1} << 20,
            CountedResolver(index)) {
  std::unique_ptr<exec::ThreadPool> pool = exec::MakePool(eopts);
  table_ = ViolationTable(sigma, index, pool.get());
}

DeltaPEvaluator::DeltaPEvaluator(const FDSet& sigma,
                                 const DifferenceSetIndex& index,
                                 int num_tuples, WarmState warm)
    : table_(sigma, index, std::move(warm.table_rows)),
      memo_(GroupEdgeLists(index), num_tuples, size_t{1} << 20,
            CountedResolver(index)) {
  memo_.Preload(std::move(warm.covers));
}

DeltaPEvaluator::WarmState DeltaPEvaluator::ExportWarmState() const {
  WarmState warm;
  warm.table_rows = table_.fd_masks();
  warm.covers = memo_.ExportEntries();
  return warm;
}

DeltaPEvaluator::PatchStats DeltaPEvaluator::ApplyDelta(
    const FDSet& sigma, const DifferenceSetIndex& index, int num_tuples,
    const std::vector<int32_t>& old_to_new, exec::ThreadPool* pool) {
  PatchStats stats;
  stats.table_groups_recomputed =
      table_.ApplyPatch(sigma, index, old_to_new, pool);
  stats.memo = memo_.Rebind(GroupEdgeLists(index), num_tuples, old_to_new,
                            CountedResolver(index));
  return stats;
}

std::vector<int> DeltaPEvaluator::ViolatedGroupIds(
    const SearchState& s) const {
  std::unique_ptr<KeyScratch> key = AcquireKey();
  table_.ViolatedGroups(s.ext, &key->set_key);
  std::vector<int> out;
  out.reserve(static_cast<size_t>(key->set_key.Count()));
  key->set_key.ForEachSet([&](int g) { out.push_back(g); });
  ReleaseKey(std::move(key));
  return out;
}

int32_t DeltaPEvaluator::CoverSize(const SearchState& s,
                                   SearchStats* stats) const {
  std::unique_ptr<KeyScratch> key = AcquireKey();
  table_.ViolatedGroups(s.ext, &key->set_key);
  bool hit = false;
  int32_t size = memo_.CoverSize(key->set_key, &hit);
  ReleaseKey(std::move(key));
  if (stats != nullptr) {
    if (hit) {
      ++stats->vc_memo_hits;
    } else {
      ++stats->vc_computations;
    }
  }
  return size;
}

int32_t DeltaPEvaluator::CoverOfGroups(const std::vector<int>& groups,
                                       SearchStats* stats) const {
  std::unique_ptr<KeyScratch> key = AcquireKey();
  key->seq_key.assign(groups.begin(), groups.end());
  bool hit = false;
  int32_t size = memo_.CoverSizeOrdered(key->seq_key, &hit);
  ReleaseKey(std::move(key));
  if (stats != nullptr) {
    if (hit) {
      ++stats->vc_memo_hits;
    } else {
      ++stats->vc_computations;
    }
  }
  return size;
}

std::unique_ptr<DeltaPEvaluator::KeyScratch> DeltaPEvaluator::AcquireKey()
    const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!key_pool_.empty()) {
      std::unique_ptr<KeyScratch> key = std::move(key_pool_.back());
      key_pool_.pop_back();
      return key;
    }
  }
  return std::make_unique<KeyScratch>();
}

void DeltaPEvaluator::ReleaseKey(std::unique_ptr<KeyScratch> key) const {
  std::lock_guard<std::mutex> lock(mu_);
  key_pool_.push_back(std::move(key));
}

}  // namespace retrust
