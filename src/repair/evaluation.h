// The shared δP evaluation layer: incidence table → group bitset →
// memoized cover (DESIGN.md "The δP evaluation pipeline").
//
// Single source of truth for "which difference-set groups does state S
// violate" and "what does a greedy cover of those groups cost":
// FdSearchContext::CoverSize, the gc heuristic's group tests and
// Algorithm 3 covers, and the unified-cost baseline all evaluate through
// the one DeltaPEvaluator owned by their FdSearchContext — so one
// ViolationTable and one CoverMemo serve every search, and every τ job of
// an exec::Sweep, over a given (Σ, I).
//
// Every method is const and thread-safe, and every result is bit-identical
// to the legacy per-state FD-set scans this layer replaced
// (tests/evaluator_oracle_test.cc enforces the equivalence against
// re-implementations of the legacy path).

#ifndef RETRUST_REPAIR_EVALUATION_H_
#define RETRUST_REPAIR_EVALUATION_H_

#include <memory>
#include <mutex>
#include <vector>

#include "src/exec/options.h"
#include "src/fd/violation_table.h"
#include "src/graph/cover_memo.h"
#include "src/repair/state.h"

namespace retrust {

/// Evaluates δP building blocks for the states of one (Σ, I) search.
class DeltaPEvaluator {
 public:
  /// Builds the violation table (sharded per `eopts`; bit-identical for
  /// any thread count) and an empty cover memo over the index's groups.
  /// `index` must outlive the evaluator (FdSearchContext owns both, index
  /// first).
  DeltaPEvaluator(const FDSet& sigma, const DifferenceSetIndex& index,
                  int num_tuples, const exec::Options& eopts = {});

  /// The evaluator's serialized caches (src/persist/): the violation
  /// table's incidence rows plus the memo's cached covers.
  struct WarmState {
    std::vector<uint64_t> table_rows;
    CoverMemo::SnapshotEntries covers;
  };

  /// Restores an evaluator from a snapshot's warm state: the table is
  /// rebuilt from its saved incidence rows (no per-group recomputation)
  /// and the cover memo is pre-seeded. Answers are bit-identical to a
  /// freshly built evaluator — cached cover values are pure functions of
  /// their keys. Throws std::invalid_argument when `warm.table_rows` does
  /// not match the index.
  DeltaPEvaluator(const FDSet& sigma, const DifferenceSetIndex& index,
                  int num_tuples, WarmState warm);

  /// Exports the warm state a snapshot saves (deterministic byte-for-byte
  /// given the same cache contents).
  WarmState ExportWarmState() const;

  /// What a delta did to the evaluator's caches.
  struct PatchStats {
    int table_groups_recomputed = 0;
    CoverMemo::RebindStats memo;
  };

  /// Incrementally maintains the evaluator after `index` (the SAME index
  /// this evaluator was built over) was patched by a delta: preserved
  /// incidence rows are copied, changed ones recomputed (sharded on
  /// `pool`, nullable = serial), and cached covers over preserved groups
  /// are remapped instead of dropped. Post-patch answers are bit-identical
  /// to a freshly built evaluator. Requires external exclusion against
  /// concurrent queries (the session's version layer provides it).
  PatchStats ApplyDelta(const FDSet& sigma, const DifferenceSetIndex& index,
                        int num_tuples, const std::vector<int32_t>& old_to_new,
                        exec::ThreadPool* pool);

  const ViolationTable& table() const { return table_; }
  const CoverMemo& memo() const { return memo_; }

  /// True iff diff-set group g is violated under `s`.
  bool GroupViolated(int g, const SearchState& s) const {
    return table_.GroupViolated(g, s.ext);
  }

  /// Indices of the groups violated under `s`, ascending.
  std::vector<int> ViolatedGroupIds(const SearchState& s) const;

  /// |C2opt(Σ', I)| for the relaxation `s`: memoized greedy cover of the
  /// violated groups in canonical order. Counts a recomputation in
  /// stats->vc_computations and a memo answer in stats->vc_memo_hits
  /// (their sum is what the legacy path counted as vc_computations).
  int32_t CoverSize(const SearchState& s, SearchStats* stats) const;

  /// Greedy cover over `groups` in the GIVEN order (Algorithm 3
  /// accumulates unresolved groups in selection order, and greedy covers
  /// are order-sensitive); memoized with the order as part of the key.
  int32_t CoverOfGroups(const std::vector<int>& groups,
                        SearchStats* stats) const;

 private:
  /// Pooled per-call key buffers (no process-lifetime thread_local state;
  /// the pool dies with the evaluator).
  struct KeyScratch {
    GroupBitset set_key;
    std::vector<int32_t> seq_key;
  };
  std::unique_ptr<KeyScratch> AcquireKey() const;
  void ReleaseKey(std::unique_ptr<KeyScratch> key) const;

  ViolationTable table_;
  CoverMemo memo_;
  mutable std::mutex mu_;
  mutable std::vector<std::unique_ptr<KeyScratch>> key_pool_;
};

}  // namespace retrust

#endif  // RETRUST_REPAIR_EVALUATION_H_
