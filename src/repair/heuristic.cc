#include "src/repair/heuristic.h"

#include <algorithm>

#include "src/repair/evaluation.h"

namespace retrust {

int64_t RepairAlpha(int num_attrs, int num_fds) {
  return std::min<int64_t>(num_attrs - 1, num_fds);
}

GcHeuristic::GcHeuristic(const FDSet& sigma, const StateSpace& space,
                         const WeightFunction& weights,
                         const DifferenceSetIndex& index, int num_tuples,
                         HeuristicOptions opts,
                         const DeltaPEvaluator* evaluator)
    : sigma_(sigma),
      space_(space),
      weights_(weights),
      index_(index),
      evaluator_(evaluator),
      num_tuples_(num_tuples),
      alpha_(0),
      opts_(opts) {
  // RepairAlpha needs |R|; recover it from the first FD's allowed set:
  // allowed(i) = R \ (X_i ∪ {A_i}), so |R| = |allowed| + |X_i| + 1.
  if (sigma.size() > 0) {
    int num_attrs = space.allowed(0).Count() + sigma.fd(0).lhs.Count() + 1;
    alpha_ = RepairAlpha(num_attrs, sigma.size());
  }
}

bool GcHeuristic::GroupViolates(int g, const SearchState& s) const {
  if (evaluator_ != nullptr) return evaluator_->GroupViolated(g, s);
  // Legacy scan (reference/oracle path).
  AttrSet diff = index_.group(g).diff;
  for (int i = 0; i < sigma_.size(); ++i) {
    const FD& fd = sigma_.fd(i);
    if (!diff.Contains(fd.rhs)) continue;
    if (fd.lhs.Union(s.ext[i]).Intersects(diff)) continue;
    return true;
  }
  return false;
}

int32_t GcHeuristic::CoverOfGroups(const std::vector<int>& groups,
                                   SearchStats* stats) const {
  // The concatenation order (selection order, NOT ascending group index)
  // matters: greedy matching covers are order-sensitive. The memoized path
  // therefore keys on the ordered sequence.
  if (evaluator_ != nullptr) return evaluator_->CoverOfGroups(groups, stats);
  // Legacy scan (reference/oracle path): concatenate edges of the groups
  // in order; greedy matching cover. (Groups are disjoint edge sets by
  // construction. EdgesForCover transparently materializes counted
  // full-disagreement groups.)
  if (stats != nullptr) ++stats->vc_computations;
  std::vector<Edge> edges;
  for (int g : groups) {
    const auto& ge = index_.EdgesForCover(g);
    edges.insert(edges.end(), ge.begin(), ge.end());
  }
  MatchingCoverScratch scratch(num_tuples_);
  return scratch.CoverSize(edges);
}

void GcHeuristic::Rec(const SearchState& sc, std::vector<int>& unresolved,
                      const std::vector<int>& remaining,
                      RecContext* ctx) const {
  if (ctx->budget_exhausted) return;
  if (--ctx->nodes_left <= 0) {
    ctx->budget_exhausted = true;
    return;
  }
  // Branch-and-bound: extensions only grow the (monotone) cost, so a state
  // already at/above the best known goal cost cannot improve the bound.
  double cost = sc.Cost(weights_);
  if (cost >= ctx->best_cost) return;
  if (remaining.empty()) {
    ctx->best_cost = cost;
    return;
  }
  int d = remaining.front();
  std::vector<int> rest(remaining.begin() + 1, remaining.end());

  // A group might already be resolved by extensions made for an earlier
  // group; just move on.
  if (!GroupViolates(d, sc)) {
    Rec(sc, unresolved, rest, ctx);
    return;
  }

  // Option 1: leave d unresolved if the accumulated vertex-cover bound
  // still permits a goal (Algorithm 3 line 8).
  unresolved.push_back(d);
  int64_t bound = alpha_ * CoverOfGroups(unresolved, ctx->stats);
  bool feasible = opts_.strict_leave_check ? bound < ctx->tau
                                           : bound <= ctx->tau;
  if (feasible) {
    Rec(sc, unresolved, rest, ctx);
  }
  unresolved.pop_back();

  // Option 2: resolve d by appending one attribute (from d) to each FD it
  // violates under sc. Enumerate the cross product of candidates.
  AttrSet diff = index_.group(d).diff;
  std::vector<int> violated_fds;
  std::vector<std::vector<AttrId>> candidates;
  for (int i = 0; i < sigma_.size(); ++i) {
    const FD& fd = sigma_.fd(i);
    if (!diff.Contains(fd.rhs)) continue;
    if (fd.lhs.Union(sc.ext[i]).Intersects(diff)) continue;
    AttrSet cands = diff.Intersect(space_.allowed(i)).Minus(sc.ext[i]);
    if (cands.Empty()) return;  // this FD cannot be resolved via extension
    violated_fds.push_back(i);
    candidates.push_back(cands.ToVector());
  }
  // Depth-first cross product over per-FD candidate attributes.
  std::vector<size_t> pick(violated_fds.size(), 0);
  while (true) {
    SearchState next = sc;
    for (size_t k = 0; k < violated_fds.size(); ++k) {
      next.ext[violated_fds[k]].Add(candidates[k][pick[k]]);
    }
    // Drop groups this extension resolves as a side effect (checked lazily
    // at the head of Rec), and recurse.
    Rec(next, unresolved, rest, ctx);
    if (ctx->budget_exhausted) return;
    // Advance the cross-product odometer.
    size_t k = 0;
    while (k < pick.size()) {
      if (++pick[k] < candidates[k].size()) break;
      pick[k] = 0;
      ++k;
    }
    if (k == pick.size()) break;
  }
}

double GcHeuristic::ComputeWithCap(const SearchState& s, int64_t tau,
                                   int max_groups, SearchStats* stats) const {
  if (stats != nullptr) ++stats->heuristic_calls;
  double own_cost = s.Cost(weights_);

  // Groups still violated under s (the table path materializes the set as
  // one bitset pass; the legacy path scans per group).
  std::vector<int> violated;
  if (evaluator_ != nullptr) {
    violated = evaluator_->ViolatedGroupIds(s);
  } else {
    for (int g = 0; g < index_.size(); ++g) {
      if (GroupViolates(g, s)) violated.push_back(g);
    }
  }
  if (violated.empty()) return own_cost;  // s itself is a goal state

  // Select up to max_groups difference sets: frequency order (the index is
  // pre-sorted by descending edge count), preferring pairwise-disjoint
  // difference sets first to keep the bound tight, then filling remaining
  // slots in frequency order.
  std::vector<int> selected;
  AttrSet covered;
  for (int g : violated) {
    if (static_cast<int>(selected.size()) >= max_groups) break;
    if (!index_.group(g).diff.Intersects(covered)) {
      selected.push_back(g);
      covered = covered.Union(index_.group(g).diff);
    }
  }
  for (int g : violated) {
    if (static_cast<int>(selected.size()) >= max_groups) break;
    if (std::find(selected.begin(), selected.end(), g) == selected.end()) {
      selected.push_back(g);
    }
  }

  RecContext ctx;
  ctx.tau = tau;
  ctx.nodes_left = opts_.max_nodes;
  ctx.stats = stats;
  ctx.selected = selected;
  std::vector<int> unresolved;
  Rec(s, unresolved, selected, &ctx);

  if (ctx.best_cost == kInfinity) {
    // No goal state found below this state (within the inspected groups).
    // On budget exhaustion fall back to the always-valid monotone bound.
    return ctx.budget_exhausted ? own_cost : kInfinity;
  }
  return std::max(ctx.best_cost, own_cost);
}

double GcHeuristic::Compute(const SearchState& s, int64_t tau,
                            SearchStats* stats) const {
  return ComputeWithCap(s, tau, opts_.max_diffsets, stats);
}

double GcHeuristic::ComputeUncapped(const SearchState& s, int64_t tau,
                                    SearchStats* stats) const {
  return ComputeWithCap(s, tau, index_.size(), stats);
}

}  // namespace retrust
