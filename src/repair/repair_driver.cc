#include "src/repair/repair_driver.h"

#include <cmath>

namespace retrust {

RepairOutcome RunRepair(const FdSearchContext& ctx,
                        const EncodedInstance& inst, int64_t tau,
                        const RepairOptions& opts) {
  ModifyFdsResult search = ModifyFds(ctx, tau, opts.search);
  RepairOutcome outcome;
  outcome.stats = search.stats;
  outcome.termination = search.termination;
  if (!search.repair.has_value()) return outcome;  // line 5: (φ, φ)

  const FdRepair& fd_repair = *search.repair;
  Rng rng(opts.seed);
  DataRepairResult data =
      RepairData(inst, fd_repair.sigma_prime, &rng, opts.search.exec);

  Repair out;
  out.sigma_prime = fd_repair.sigma_prime;
  out.extensions = fd_repair.state.ext;
  out.distc = fd_repair.distc;
  out.data = std::move(data.repaired);
  out.changed_cells = std::move(data.changed_cells);
  out.delta_p = fd_repair.delta_p;
  out.stats = search.stats;
  out.incumbents = std::move(search.incumbents);
  outcome.repair = std::move(out);
  return outcome;
}

std::optional<Repair> RepairDataAndFds(const FdSearchContext& ctx,
                                       const EncodedInstance& inst,
                                       int64_t tau,
                                       const RepairOptions& opts) {
  return RunRepair(ctx, inst, tau, opts).repair;
}

std::optional<Repair> RepairDataAndFds(const FDSet& sigma,
                                       const EncodedInstance& inst,
                                       int64_t tau,
                                       const WeightFunction& weights,
                                       const RepairOptions& opts) {
  FdSearchContext ctx(sigma, inst, weights, opts.search.heuristic,
                      opts.search.exec);
  return RepairDataAndFds(ctx, inst, tau, opts);
}

int64_t TauFromRelative(double tau_r, int64_t root_delta_p) {
  // !(tau_r > 0) also catches NaN, which would sail through ordered
  // comparisons and llround to an arbitrary τ.
  if (!(tau_r > 0)) tau_r = 0;
  if (tau_r > 1) tau_r = 1;
  if (root_delta_p < 0) root_delta_p = 0;
  return static_cast<int64_t>(
      std::llround(tau_r * static_cast<double>(root_delta_p)));
}

}  // namespace retrust
