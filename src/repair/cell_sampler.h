// Cell-by-cell repair sampling — the style of repair algorithm of
// Beskales, Ilyas & Golab, "Sampling the repairs of functional dependency
// violations under hard constraints" (PVLDB 2010), the paper's
// reference [3]. The paper's §6 algorithm is explicitly "a variant of [3]
// ... we clean the data tuple-by-tuple instead of cell-by-cell"; this
// module provides the cell-by-cell counterpart so the design choice can be
// measured (bench/ablation_data_repair).
//
// The sampler repeatedly picks a violating pair (t1, t2) of some FD X -> A
// and applies one randomly chosen local fix:
//   * equalize the RHS:   t1[A] <- t2[A]   (or t2[A] <- t1[A]), or
//   * break the LHS match: set t1[B] (or t2[B]), B ∈ X, to a fresh
//     variable (the "don't know" repair of [3]'s V-instances).
// Fresh-variable cells never re-match anything, so the process terminates:
// every fix either resolves a pair via RHS equality or permanently turns a
// constant cell into a variable (bounded by n·|R| such events).
//
// Unlike Algorithm 4 (tuple-by-tuple over a vertex cover), this sampler
// carries NO approximation bound on the number of changed cells — exactly
// the gap the paper's Theorem 3 closes.

#ifndef RETRUST_REPAIR_CELL_SAMPLER_H_
#define RETRUST_REPAIR_CELL_SAMPLER_H_

#include "src/repair/repair_data.h"

namespace retrust {

/// Options for the cell sampler.
struct CellSamplerOptions {
  /// Probability of an RHS-equalization fix (vs breaking the LHS match).
  double rhs_fix_share = 0.5;
  /// Safety cap on fix applications; 0 = automatic (50 · n · (|Σ|+1)).
  int64_t max_fixes = 0;
};

/// Repairs `inst` to satisfy `sigma_prime` cell-by-cell; the result's
/// `change_bound` is just the achieved change count (no a-priori bound —
/// see file comment). Deterministic given the Rng seed.
DataRepairResult CellSamplerRepair(const EncodedInstance& inst,
                                   const FDSet& sigma_prime, Rng* rng,
                                   const CellSamplerOptions& opts = {});

}  // namespace retrust

#endif  // RETRUST_REPAIR_CELL_SAMPLER_H_
