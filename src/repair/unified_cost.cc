#include "src/repair/unified_cost.h"

#include "src/fd/conflict_graph.h"
#include "src/graph/vertex_cover.h"
#include "src/util/timer.h"

namespace retrust {
namespace {

// δP(Σc, I) evaluated against the root difference-set index (relaxations of
// Σ only lose conflict edges, so filtering the root groups is exact).
int64_t DeltaPOf(const FdSearchContext& ctx, const SearchState& s,
                 SearchStats* stats) {
  return ctx.DeltaP(s, stats);
}

}  // namespace

Repair UnifiedCostRepair(const FDSet& sigma, const EncodedInstance& inst,
                         const WeightFunction& weights,
                         const UnifiedCostOptions& opts) {
  Timer timer;
  // The greedy descent scores every candidate via ctx.DeltaP, i.e. through
  // the context's shared δP evaluation layer — candidates revisited across
  // descent rounds hit the cover memo instead of recomputing.
  FdSearchContext ctx(sigma, inst, weights, HeuristicOptions{}, opts.exec);
  SearchStats stats;

  SearchState current = SearchState::Root(sigma.size());
  double current_fd_cost = 0.0;
  int64_t current_delta = DeltaPOf(ctx, current, &stats);
  double current_score = static_cast<double>(current_delta);

  // Greedy descent over single-attribute LHS appends.
  bool improved = true;
  while (improved && current_delta > 0) {
    improved = false;
    SearchState best_state = current;
    double best_score = current_score;
    double best_fd_cost = current_fd_cost;
    int64_t best_delta = current_delta;
    for (int i = 0; i < sigma.size(); ++i) {
      if (opts.single_attr_per_fd && !current.ext[i].Empty()) continue;
      for (AttrId a : ctx.space().allowed(i).Minus(current.ext[i])) {
        SearchState cand = current;
        cand.ext[i].Add(a);
        double fd_cost = weights.Cost(cand.ext);
        int64_t delta = DeltaPOf(ctx, cand, &stats);
        double score =
            static_cast<double>(delta) + opts.lambda * fd_cost;
        ++stats.states_visited;
        if (score + 1e-12 < best_score) {
          best_score = score;
          best_state = cand;
          best_fd_cost = fd_cost;
          best_delta = delta;
          improved = true;
        }
      }
    }
    if (improved) {
      current = best_state;
      current_score = best_score;
      current_fd_cost = best_fd_cost;
      current_delta = best_delta;
    }
  }

  FDSet sigma_prime = current.Apply(sigma);
  Rng rng(opts.seed);
  DataRepairResult data = RepairData(inst, sigma_prime, &rng, opts.exec);

  Repair out;
  out.sigma_prime = std::move(sigma_prime);
  out.extensions = current.ext;
  out.distc = current_fd_cost;
  out.data = std::move(data.repaired);
  out.changed_cells = std::move(data.changed_cells);
  out.delta_p = current_delta;
  out.stats = stats;
  out.stats.seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace retrust
