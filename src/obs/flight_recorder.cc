#include "src/obs/flight_recorder.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace retrust::obs {

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendSpan(const TraceSpan& span, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %.6fs", span.seconds());
  out->append(span.name());
  out->append(buf);
  if (span.count() > 1) {
    std::snprintf(buf, sizeof(buf), " x%" PRIu64, span.count());
    out->append(buf);
  }
  out->push_back('\n');
  for (const auto& child : span.children()) {
    AppendSpan(*child, depth + 1, out);
  }
}

}  // namespace

void FlightRecorder::Record(FlightRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    next_ = ring_.size() % capacity_;
    return;
  }
  ring_[next_] = std::move(record);
  next_ = (next_ + 1) % capacity_;
}

std::vector<FlightRecord> FlightRecorder::Recent(size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t available = ring_.size();
  size_t n = (limit == 0 || limit > available) ? available : limit;
  std::vector<FlightRecord> out;
  out.reserve(n);
  // next_ is one past the newest record once the ring wrapped; before
  // that the newest is the vector's back.
  size_t newest = ring_.size() < capacity_ ? ring_.size() : next_;
  for (size_t i = 0; i < n; ++i) {
    newest = (newest + available - 1) % available;
    out.push_back(ring_[newest]);
  }
  return out;
}

uint64_t FlightRecorder::TotalRecorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

bool SlowRequestLog::MaybeLog(const FlightRecord& record,
                              const RequestTrace* trace) {
  if (threshold_seconds_ <= 0.0 ||
      record.total_seconds < threshold_seconds_) {
    return false;
  }
  slow_seen_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const double now = MonotonicSeconds();
    if (last_log_seconds_ >= 0.0 &&
        now - last_log_seconds_ < min_interval_seconds_) {
      return false;
    }
    last_log_seconds_ = now;
  }
  std::string message;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "[retrust] slow request id=%" PRIu64
                " tenant=%s verb=%s status=%s total=%.6fs queue_wait=%.6fs"
                " service=%.6fs\n",
                record.id, record.tenant.c_str(), record.verb.c_str(),
                record.status.c_str(), record.total_seconds,
                record.queue_wait_seconds, record.service_seconds);
  message = buf;
  if (trace != nullptr) message += RenderSpanTree(trace->root);
  std::fputs(message.c_str(), stderr);
  return true;
}

std::string RenderSpanTree(const TraceSpan& root) {
  std::string out;
  AppendSpan(root, 1, &out);
  return out;
}

}  // namespace retrust::obs
