// Per-request tracing: a TraceSpan tree recording where one request spent
// its time as it flowed wire decode → admission → queue wait → worker
// dispatch → Session → search engine.
//
// Tracing is off by default. A request carries a RequestTrace only when
// the caller opted in ("trace": true on the wire), so every disabled-path
// check is a branch on a null pointer and the untraced request does zero
// extra work — the bit-identity invariant (untraced replies byte-identical
// to the pre-observability service) and the ≤5% overhead contract both
// hang off that property.
//
// Span lifecycle is O(1): StartChild appends one node and reads the
// monotonic clock once; Finish reads it again. The tree is built WITHOUT
// locks — a request's spans are only ever touched by the thread currently
// advancing that request (reader thread during decode/admission, worker
// thread during execution), and the queue hand-off orders those accesses.
//
// The search engine runs its hot loop millions of times per request, so
// it does not allocate a span per operation. It accumulates per-phase
// totals (expand/evaluate/cover/bound) into a SearchPhaseStats owned by
// the RequestTrace; the Session converts the totals into one child span
// per phase after the search returns.

#ifndef RETRUST_OBS_TRACE_H_
#define RETRUST_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace retrust::obs {

/// One node of the span tree: a name, a duration, an operation count
/// (1 for plain spans, N for phase-accumulated spans), and children.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Appends a child span started now. The returned pointer stays valid
  /// for the tree's lifetime.
  TraceSpan* StartChild(std::string name) {
    children_.push_back(std::make_unique<TraceSpan>(std::move(name)));
    return children_.back().get();
  }

  /// Stops the clock. Idempotent: the first Finish (or set_seconds) wins.
  void Finish() {
    if (finished_) return;
    seconds_ = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
                   .count();
    finished_ = true;
  }

  /// Records an externally measured duration (e.g. queue wait computed
  /// from submit/dispatch timestamps) instead of the span's own clock.
  void set_seconds(double seconds) {
    seconds_ = seconds;
    finished_ = true;
  }

  void set_count(uint64_t count) { count_ = count; }

  const std::string& name() const { return name_; }
  double seconds() const { return seconds_; }
  uint64_t count() const { return count_; }
  const std::vector<std::unique_ptr<TraceSpan>>& children() const {
    return children_;
  }

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  double seconds_ = 0.0;
  bool finished_ = false;
  uint64_t count_ = 1;
  std::vector<std::unique_ptr<TraceSpan>> children_;
};

/// Per-phase accumulators filled by search::RunSearch when tracing is on
/// (ModifyFdsOptions::phase_trace). Counts are operations, seconds are
/// summed wall time of those operations.
struct SearchPhaseStats {
  uint64_t expand_count = 0;  ///< node expansions (children + speculation)
  double expand_seconds = 0.0;
  uint64_t evaluate_count = 0;  ///< deferred g-cost evaluations
  double evaluate_seconds = 0.0;
  uint64_t cover_count = 0;  ///< vertex-cover computations/lookups
  double cover_seconds = 0.0;
  uint64_t bound_count = 0;  ///< admissible lower-bound evaluations
  double bound_seconds = 0.0;

  bool any() const {
    return expand_count != 0 || evaluate_count != 0 || cover_count != 0 ||
           bound_count != 0;
  }
};

/// The trace carried by one request. Allocated at wire decode (or by an
/// in-process caller), shared by the request object as it is copied into
/// closures, and serialized into the reply once the root is finished.
struct RequestTrace {
  TraceSpan root{"request"};

  /// Set by the server's execute wrapper just before the verb runs, so
  /// Session-level spans nest under "service" when the request went
  /// through the queue and under the root when the Session was called
  /// directly.
  TraceSpan* service = nullptr;

  /// Filled by the search engine via ModifyFdsOptions::phase_trace.
  SearchPhaseStats search_phases;

  /// The span Session-level children should attach to.
  TraceSpan* SessionParent() { return service != nullptr ? service : &root; }
};

/// Converts accumulated phase totals into one child span per non-empty
/// phase under `search_span`.
void AttachSearchPhases(TraceSpan* search_span, const SearchPhaseStats& phases);

/// Scoped phase timer: accumulates elapsed wall time and one count into
/// (seconds, count) on destruction. Constructed only on the traced path.
class PhaseTimer {
 public:
  PhaseTimer(double* seconds, uint64_t* count)
      : seconds_(seconds),
        count_(count),
        start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    *seconds_ += std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start_)
                     .count();
    ++*count_;
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double* seconds_;
  uint64_t* count_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace retrust::obs

#endif  // RETRUST_OBS_TRACE_H_
