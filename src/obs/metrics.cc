#include "src/obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <thread>

namespace retrust::obs {

namespace {

// Doubles print with enough digits to round-trip; integral samples print
// without a fraction so counter lines are stable and diffable.
std::string FormatValue(double value, bool integral) {
  char buf[40];
  if (integral) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64,
                  static_cast<uint64_t>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", value);
  }
  return buf;
}

}  // namespace

int Counter::ShardIndex() {
  // Hash the thread id once per thread; consecutive Add() calls from one
  // thread hit the same padded slot with no contention.
  static thread_local const int slot = static_cast<int>(
      std::hash<std::thread::id>()(std::this_thread::get_id()) %
      static_cast<size_t>(kShards));
  return slot;
}

void Collector::Gauge(const std::string& name, const Labels& labels,
                      double value) {
  samples_.push_back(
      {MetricsRegistry::RenderSeries(name, labels), value, false});
}

void Collector::CounterSample(const std::string& name, const Labels& labels,
                              uint64_t value) {
  samples_.push_back({MetricsRegistry::RenderSeries(name, labels),
                      static_cast<double>(value), true});
}

void Collector::Histogram(const std::string& name, Labels labels,
                          const LatencyHistogram& hist) {
  labels["quantile"] = "0.5";
  samples_.push_back(
      {MetricsRegistry::RenderSeries(name, labels), hist.Percentile(0.5),
       false});
  labels["quantile"] = "0.99";
  samples_.push_back(
      {MetricsRegistry::RenderSeries(name, labels), hist.Percentile(0.99),
       false});
  labels.erase("quantile");
  samples_.push_back({MetricsRegistry::RenderSeries(name + "_count", labels),
                      static_cast<double>(hist.count()), true});
}

MetricsRegistry::Registration& MetricsRegistry::Registration::operator=(
    Registration&& other) noexcept {
  if (this != &other) {
    Release();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

void MetricsRegistry::Registration::Release() {
  if (registry_ != nullptr) {
    registry_->Unregister(id_);
    registry_ = nullptr;
    id_ = 0;
  }
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  const std::string series = RenderSeries(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[series];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

MetricsRegistry::Registration MetricsRegistry::RegisterProbe(
    std::function<void(Collector&)> probe) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_probe_id_++;
  probes_.emplace(id, std::move(probe));
  return Registration(this, id);
}

void MetricsRegistry::Unregister(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  probes_.erase(id);
}

std::vector<std::string> MetricsRegistry::CollectLines() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> lines;
  lines.reserve(counters_.size());
  for (const auto& [series, counter] : counters_) {
    lines.push_back(series + " " +
                    FormatValue(static_cast<double>(counter->Value()), true));
  }
  Collector collector;
  for (const auto& [id, probe] : probes_) probe(collector);
  for (const Collector::Sample& s : collector.samples_) {
    lines.push_back(s.series + " " + FormatValue(s.value, s.integral));
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

std::string MetricsRegistry::ExpositionText() const {
  std::string out;
  for (const std::string& line : CollectLines()) {
    out += line;
    out += '\n';
  }
  return out;
}

size_t MetricsRegistry::SeriesCount() const { return CollectLines().size(); }

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

std::string MetricsRegistry::RenderSeries(const std::string& name,
                                          const Labels& labels) {
  if (labels.empty()) return name;
  std::string out = name;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {  // std::map: sorted by key
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += value;
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace retrust::obs
