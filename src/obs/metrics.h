// Process-wide metrics registry: named counters with sharded recording,
// sampled gauges/histograms supplied by probe callbacks, and a text
// exposition snapshot in the Prometheus line format
// (`name{label="v"} value`, sorted, one series per line).
//
// Two kinds of series coexist:
//
//  * Counter — owned by the registry, get-or-create by (name, labels),
//    bumped directly on hot paths. Recording is a relaxed fetch_add on a
//    cache-line-padded shard picked by thread, so concurrent writers do
//    not bounce one line; reads sum the shards.
//  * Probe — a callback registered with an RAII handle that samples
//    component state (queue depth, pool utilization, cache hit counts,
//    latency quantiles) into a Collector at exposition time. Components
//    keep their own authoritative state; the probe is a read-only view,
//    so registering observability never changes component behavior.
//
// Probe handles unregister under the registry mutex, so a component may
// destroy itself safely after its Registration is gone: no exposition can
// be mid-flight through its callback. Counters are never removed and
// references to them stay valid for the registry's lifetime.

#ifndef RETRUST_OBS_METRICS_H_
#define RETRUST_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/histogram.h"

namespace retrust::obs {

/// Label set of one series; rendered sorted by key, so a given map always
/// produces the same series identity.
using Labels = std::map<std::string, std::string>;

/// Monotonic counter with per-thread sharding. Add() is a relaxed
/// fetch_add on one of kShards cache-line-padded slots; Value() sums
/// them (monotone but not a point-in-time snapshot, which is fine for
/// counters).
class Counter {
 public:
  static constexpr int kShards = 8;

  void Add(uint64_t n = 1) {
    shards_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.value.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  static int ShardIndex();

  std::array<Shard, kShards> shards_{};
};

/// Sink a probe callback writes samples into. One Gauge/CounterSample call
/// emits one exposition line; Histogram expands into quantile series plus
/// a _count series.
class Collector {
 public:
  void Gauge(const std::string& name, const Labels& labels, double value);
  /// A counter whose authoritative value lives in the component (e.g. a
  /// ServerStats atomic) and is only sampled here.
  void CounterSample(const std::string& name, const Labels& labels,
                     uint64_t value);
  /// Emits name{...,quantile="0.5"}, {...,quantile="0.99"}, and
  /// name_count{...}.
  void Histogram(const std::string& name, Labels labels,
                 const LatencyHistogram& hist);

 private:
  friend class MetricsRegistry;
  struct Sample {
    std::string series;  // rendered `name{k="v",...}`
    double value = 0.0;
    bool integral = false;
  };
  std::vector<Sample> samples_;
};

/// Registry of counters and probes. One process-wide instance is reachable
/// via Global(); tests construct their own to avoid cross-talk.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// RAII handle for a registered probe; unregisters on destruction.
  class Registration {
   public:
    Registration() = default;
    Registration(Registration&& other) noexcept { *this = std::move(other); }
    Registration& operator=(Registration&& other) noexcept;
    ~Registration() { Release(); }

    void Release();

   private:
    friend class MetricsRegistry;
    Registration(MetricsRegistry* registry, uint64_t id)
        : registry_(registry), id_(id) {}
    MetricsRegistry* registry_ = nullptr;
    uint64_t id_ = 0;
  };

  /// Get-or-create the counter for (name, labels). The reference stays
  /// valid for the registry's lifetime.
  Counter& GetCounter(const std::string& name, const Labels& labels = {});

  /// Registers a sampling callback run at every ExpositionText(). The
  /// callback must not call back into this registry.
  [[nodiscard]] Registration RegisterProbe(
      std::function<void(Collector&)> probe);

  /// Renders every counter and probe sample as sorted
  /// `name{label="v"} value` lines (trailing newline included when any
  /// series exists).
  std::string ExpositionText() const;

  /// Number of distinct series the last ExpositionText() would emit now.
  size_t SeriesCount() const;

  /// The process-wide registry.
  static MetricsRegistry& Global();

  /// Renders `name{k="v",...}` with labels sorted by key; bare `name`
  /// when labels are empty.
  static std::string RenderSeries(const std::string& name,
                                  const Labels& labels);

 private:
  void Unregister(uint64_t id);
  std::vector<std::string> CollectLines() const;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;  // key: series
  std::map<uint64_t, std::function<void(Collector&)>> probes_;
  uint64_t next_probe_id_ = 1;
};

}  // namespace retrust::obs

#endif  // RETRUST_OBS_METRICS_H_
