#include "src/obs/trace.h"

namespace retrust::obs {

void AttachSearchPhases(TraceSpan* search_span,
                        const SearchPhaseStats& phases) {
  const auto attach = [search_span](const char* name, double seconds,
                                    uint64_t count) {
    if (count == 0) return;
    TraceSpan* span = search_span->StartChild(name);
    span->set_seconds(seconds);
    span->set_count(count);
  };
  attach("expand", phases.expand_seconds, phases.expand_count);
  attach("evaluate", phases.evaluate_seconds, phases.evaluate_count);
  attach("cover", phases.cover_seconds, phases.cover_count);
  attach("bound", phases.bound_seconds, phases.bound_count);
}

}  // namespace retrust::obs
