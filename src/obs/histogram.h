// Fixed log-bucketed latency histogram, promoted out of the service layer
// so the metrics registry (src/obs/metrics.h), the server's stats
// snapshots, and the wire exposition all share one implementation.
//
// The histogram trades precision for a fixed footprint: 64 geometric
// buckets spanning [1 µs, ~200 s] (ratio ≈ 1.38), so recording is O(1),
// snapshots are cheap to copy, and percentiles are read without touching
// the raw samples. Callers provide locking (the Server records under its
// stats mutex).

#ifndef RETRUST_OBS_HISTOGRAM_H_
#define RETRUST_OBS_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

namespace retrust::obs {

/// Fixed-size latency histogram; Percentile reports a bucket upper bound
/// clamped to the maximum recorded value, so p50/p99 are conservative
/// (never under-report) but can never exceed the observed maximum.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(double seconds) {
    ++counts_[BucketOf(seconds)];
    ++total_;
    if (seconds > max_seconds_) max_seconds_ = seconds;
  }

  /// Latency at quantile `q` in [0, 1] (0 when nothing was recorded).
  double Percentile(double q) const {
    if (total_ == 0) return 0.0;
    uint64_t want = static_cast<uint64_t>(std::ceil(q * total_));
    if (want < 1) want = 1;
    uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += counts_[b];
      if (seen >= want) return std::min(UpperBound(b), max_seconds_);
    }
    return std::min(UpperBound(kBuckets - 1), max_seconds_);
  }

  uint64_t count() const { return total_; }
  double max_seconds() const { return max_seconds_; }

 private:
  static constexpr double kMinSeconds = 1e-6;
  static constexpr double kRatio = 1.38;  // 1e-6 * 1.38^63 ≈ 6e2 s

  static int BucketOf(double seconds) {
    if (!(seconds > kMinSeconds)) return 0;  // also catches NaN/negative
    int b = static_cast<int>(std::log(seconds / kMinSeconds) /
                             std::log(kRatio)) +
            1;
    return b >= kBuckets ? kBuckets - 1 : b;
  }

  static double UpperBound(int bucket) {
    return kMinSeconds * std::pow(kRatio, bucket);
  }

  std::array<uint64_t, kBuckets> counts_{};
  uint64_t total_ = 0;
  double max_seconds_ = 0.0;
};

}  // namespace retrust::obs

#endif  // RETRUST_OBS_HISTOGRAM_H_
