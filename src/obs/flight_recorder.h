// Flight recorder: a fixed-size ring buffer of the last N finished request
// records, dumped on demand by the `dump_recent` wire verb, plus a
// rate-limited slow-request log that writes a request's full span tree to
// stderr when its end-to-end time crosses a threshold.
//
// Recording is one mutex-guarded ring-slot write per finished request —
// bounded memory, no allocation after warm-up beyond the record's strings,
// and never on the wire fast path (inline verbs like `stats` do not go
// through the queue and are not recorded).

#ifndef RETRUST_OBS_FLIGHT_RECORDER_H_
#define RETRUST_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace retrust::obs {

/// One finished request, as remembered by the flight recorder.
struct FlightRecord {
  uint64_t id = 0;
  std::string tenant;
  std::string verb;
  std::string status;  ///< "ok" or the terminal status/error label
  double queue_wait_seconds = 0.0;
  double service_seconds = 0.0;
  double total_seconds = 0.0;  ///< submit -> reply
  int64_t search_states_visited = 0;
  uint64_t search_expansions = 0;
  bool traced = false;
};

/// Ring buffer of the most recent records. Thread-safe; Recent() returns
/// newest-first copies.
class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void Record(FlightRecord record);

  /// Up to `limit` most recent records, newest first (0 = all retained).
  std::vector<FlightRecord> Recent(size_t limit = 0) const;

  /// Total records ever written (>= retained count).
  uint64_t TotalRecorded() const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<FlightRecord> ring_;  // grows to capacity_, then wraps
  size_t next_ = 0;                 // ring slot the next record lands in
  uint64_t total_ = 0;
};

/// Rate-limited slow-request stderr log. Threshold <= 0 disables it.
class SlowRequestLog {
 public:
  SlowRequestLog(double threshold_seconds, double min_interval_seconds)
      : threshold_seconds_(threshold_seconds),
        min_interval_seconds_(min_interval_seconds) {}

  /// Logs the record (and its span tree when traced) to stderr if it is
  /// over threshold and the rate limit allows; returns true when logged.
  bool MaybeLog(const FlightRecord& record, const RequestTrace* trace);

  /// Slow requests seen over threshold, logged or suppressed.
  uint64_t SlowSeen() const {
    return slow_seen_.load(std::memory_order_relaxed);
  }

  double threshold_seconds() const { return threshold_seconds_; }

 private:
  const double threshold_seconds_;
  const double min_interval_seconds_;
  std::atomic<uint64_t> slow_seen_{0};
  std::mutex mu_;
  double last_log_seconds_ = -1.0;  // monotonic; -1 = never logged
};

/// Renders a span tree as indented `name seconds [xN]` lines (for the
/// slow-request log and tests).
std::string RenderSpanTree(const TraceSpan& root);

}  // namespace retrust::obs

#endif  // RETRUST_OBS_FLIGHT_RECORDER_H_
