#include "src/service/quota.h"

#include <chrono>

namespace retrust::service {

namespace {

double SteadyNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

QuotaManager::QuotaManager(QuotaLimits defaults,
                           std::function<double()> clock)
    : defaults_(defaults),
      clock_(clock ? std::move(clock) : SteadyNow) {}

void QuotaManager::SetLimits(const std::string& tenant, QuotaLimits limits) {
  std::lock_guard<std::mutex> lock(mu_);
  if (limits.unlimited() && defaults_.unlimited()) {
    // No limit from either source: drop the bucket entirely so unlimited
    // tenants cost nothing per request.
    buckets_.erase(tenant);
    return;
  }
  Bucket& bucket = buckets_[tenant];
  bucket.limits = limits;
  bucket.has_override = true;
  bucket.tokens = limits.unlimited() ? 0.0 : limits.effective_burst();
  bucket.last_refill = Now();
}

QuotaLimits QuotaManager::LimitsFor(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(tenant);
  if (it != buckets_.end() && it->second.has_override) {
    return it->second.limits;
  }
  return defaults_;
}

void QuotaManager::Refill(Bucket* bucket, double now) {
  const double elapsed = now - bucket->last_refill;
  bucket->last_refill = now;
  if (elapsed <= 0.0) return;
  const double cap = bucket->limits.effective_burst();
  bucket->tokens += elapsed * bucket->limits.rate;
  if (bucket->tokens > cap) bucket->tokens = cap;
}

bool QuotaManager::TryAcquire(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    if (defaults_.unlimited()) return true;
    // First sighting of a default-limited tenant: bucket starts FULL and
    // this request spends the first token.
    Bucket bucket;
    bucket.limits = defaults_;
    bucket.tokens = defaults_.effective_burst() - 1.0;
    bucket.last_refill = Now();
    buckets_.emplace(tenant, bucket);
    return true;
  }
  Bucket& bucket = it->second;
  if (bucket.limits.unlimited()) return true;
  Refill(&bucket, Now());
  if (bucket.tokens < 1.0) {
    denied_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  bucket.tokens -= 1.0;
  return true;
}

double QuotaManager::AvailableTokens(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    return defaults_.unlimited() ? 0.0 : defaults_.effective_burst();
  }
  if (it->second.limits.unlimited()) return 0.0;
  Refill(&it->second, Now());
  return it->second.tokens;
}

}  // namespace retrust::service
