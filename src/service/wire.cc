#include "src/service/wire.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <utility>

#include "src/relational/csv.h"

namespace retrust::service {

// ------------------------------------------------------------------ Json

const Json* Json::Get(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double n, std::string* out) {
  if (std::isfinite(n) && n == std::floor(n) && std::fabs(n) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(n));
    *out += buf;
  } else if (std::isfinite(n)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", n);
    *out += buf;
  } else {
    *out += "null";  // JSON has no NaN/Inf
  }
}

void DumpTo(const Json& v, std::string* out) {
  switch (v.type()) {
    case Json::Type::kNull: *out += "null"; break;
    case Json::Type::kBool: *out += v.AsBool() ? "true" : "false"; break;
    case Json::Type::kNumber: AppendNumber(v.AsNumber(), out); break;
    case Json::Type::kString: AppendEscaped(v.AsString(), out); break;
    case Json::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& e : v.AsArray()) {
        if (!first) out->push_back(',');
        first = false;
        DumpTo(e, out);
      }
      out->push_back(']');
      break;
    }
    case Json::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.AsObject()) {
        if (!first) out->push_back(',');
        first = false;
        AppendEscaped(key, out);
        out->push_back(':');
        DumpTo(value, out);
      }
      out->push_back('}');
      break;
    }
  }
}

// ---------------------------------------------------------------- parser

/// Recursive-descent JSON parser over a string. Depth-limited so hostile
/// input cannot overflow the stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> Parse() {
    Json value;
    Status status = ParseValue(&value, 0);
    if (!status.ok()) return status;
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::Error(StatusCode::kInvalidArgument,
                         "json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') return ParseString(out);
    if (c == 't' || c == 'f') return ParseKeyword(out);
    if (c == 'n') return ParseKeyword(out);
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
    return Error(std::string("unexpected character '") + c + "'");
  }

  Status ParseKeyword(Json* out) {
    auto match = [&](const char* kw) {
      size_t n = std::char_traits<char>::length(kw);
      if (text_.compare(pos_, n, kw) == 0) {
        pos_ += n;
        return true;
      }
      return false;
    };
    if (match("true")) {
      *out = Json(true);
      return Status::Ok();
    }
    if (match("false")) {
      *out = Json(false);
      return Status::Ok();
    }
    if (match("null")) {
      *out = Json();
      return Status::Ok();
    }
    return Error("invalid keyword");
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    try {
      size_t used = 0;
      double value = std::stod(text_.substr(start, pos_ - start), &used);
      if (used != pos_ - start) return Error("malformed number");
      *out = Json(value);
      return Status::Ok();
    } catch (const std::exception&) {
      return Error("malformed number");
    }
  }

  Status ParseString(Json* out) {
    std::string s;
    Status status = ParseRawString(&s);
    if (!status.ok()) return status;
    *out = Json(std::move(s));
    return Status::Ok();
  }

  Status ParseRawString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Error("bad \\u escape");
            }
            // UTF-8 encode the BMP code point (surrogate pairs are rare in
            // this protocol; a lone surrogate encodes as-is).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error("bad escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Error("unterminated string");
  }

  Status ParseArray(Json* out, int depth) {
    Consume('[');
    Json::Array array;
    SkipWs();
    if (Consume(']')) {
      *out = Json(std::move(array));
      return Status::Ok();
    }
    for (;;) {
      Json element;
      Status status = ParseValue(&element, depth + 1);
      if (!status.ok()) return status;
      array.push_back(std::move(element));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']'");
    }
    *out = Json(std::move(array));
    return Status::Ok();
  }

  Status ParseObject(Json* out, int depth) {
    Consume('{');
    Json::Object object;
    SkipWs();
    if (Consume('}')) {
      *out = Json(std::move(object));
      return Status::Ok();
    }
    for (;;) {
      SkipWs();
      std::string key;
      Status status = ParseRawString(&key);
      if (!status.ok()) return status;
      SkipWs();
      if (!Consume(':')) return Error("expected ':'");
      Json value;
      status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      object[std::move(key)] = std::move(value);
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}'");
    }
    *out = Json(std::move(object));
    return Status::Ok();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string Json::Dump() const {
  std::string out;
  DumpTo(*this, &out);
  return out;
}

Result<Json> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

// --------------------------------------------------- wire -> api values

namespace {

Status WireError(const std::string& what) {
  return Status::Error(StatusCode::kInvalidArgument, "wire: " + what);
}

const char* TerminationName(SearchTermination t) {
  switch (t) {
    case SearchTermination::kCompleted: return "completed";
    case SearchTermination::kVisitBudget: return "visit_budget";
    case SearchTermination::kDeadline: return "deadline";
    case SearchTermination::kCancelled: return "cancelled";
  }
  return "unknown";
}

}  // namespace

Result<RepairRequest> RepairRequestFromJson(const Json& obj) {
  if (!obj.is_object()) return WireError("request must be an object");
  RepairRequest req;
  const Json* tau = obj.Get("tau");
  const Json* tau_r = obj.Get("tau_r");
  if (tau != nullptr) {
    if (!tau->is_number() || tau->AsInt() < 0 ||
        tau->AsNumber() != std::floor(tau->AsNumber())) {
      return WireError("'tau' must be a non-negative integer");
    }
    req.tau = tau->AsInt();
  } else if (tau_r != nullptr) {
    if (!tau_r->is_number()) return WireError("'tau_r' must be a number");
    req.tau_r = tau_r->AsNumber();
  } else {
    return WireError("repair needs 'tau' or 'tau_r'");
  }
  if (const Json* mode = obj.Get("mode")) {
    if (!mode->is_string()) return WireError("'mode' must be a string");
    if (mode->AsString() == "astar") {
      req.mode = SearchMode::kAStar;
    } else if (mode->AsString() == "best_first") {
      req.mode = SearchMode::kBestFirst;
    } else {
      return WireError("unknown mode '" + mode->AsString() +
                       "' (astar|best_first)");
    }
  }
  if (const Json* policy = obj.Get("policy")) {
    if (!policy->is_string() ||
        !search::ParseSearchPolicy(policy->AsString(), &req.policy)) {
      return WireError("unknown policy (exact|anytime|greedy)");
    }
  }
  if (const Json* weight = obj.Get("weight")) {
    if (!weight->is_number() || weight->AsNumber() < 1.0) {
      return WireError("'weight' must be a number >= 1");
    }
    req.weight = weight->AsNumber();
  }
  if (const Json* ub = obj.Get("upper_bound")) {
    if (!ub->is_number() || ub->AsNumber() < 0.0) {
      return WireError("'upper_bound' must be a non-negative number");
    }
    req.upper_bound = ub->AsNumber();
  }
  if (const Json* seed = obj.Get("seed")) {
    if (!seed->is_number()) return WireError("'seed' must be a number");
    req.seed = static_cast<uint64_t>(seed->AsInt());
  }
  if (const Json* budget = obj.Get("budget")) {
    if (!budget->is_number() || budget->AsInt() < 0) {
      return WireError("'budget' must be a non-negative integer");
    }
    req.budget = budget->AsInt();
  }
  if (const Json* deadline = obj.Get("deadline_seconds")) {
    if (!deadline->is_number()) {
      return WireError("'deadline_seconds' must be a number");
    }
    req.deadline_seconds = deadline->AsNumber();
  }
  if (const Json* trace = obj.Get("trace")) {
    if (!trace->is_bool()) return WireError("'trace' must be a boolean");
    if (trace->AsBool()) req.trace = std::make_shared<obs::RequestTrace>();
  }
  return req;
}

Result<DeltaBatch> DeltaBatchFromJson(const Json& obj, const Schema& schema) {
  if (!obj.is_object()) return WireError("apply_delta must be an object");
  DeltaBatch batch;
  const int num_attrs = schema.NumAttrs();

  auto resolve_attr = [&](const Json& v, AttrId* out) -> Status {
    if (v.is_number()) {
      *out = static_cast<AttrId>(v.AsInt());
    } else if (v.is_string()) {
      *out = -1;
      for (AttrId a = 0; a < num_attrs; ++a) {
        if (schema.name(a) == v.AsString()) {
          *out = a;
          break;
        }
      }
      if (*out < 0) return WireError("unknown attribute '" + v.AsString() + "'");
    } else {
      return WireError("attribute must be a name or an index");
    }
    if (*out < 0 || *out >= num_attrs) return WireError("attribute out of range");
    return Status::Ok();
  };
  auto parse_cell = [&](const std::string& text, AttrId attr,
                        Value* out) -> Status {
    if (!TryParseCsvField(text, schema.type(attr), out)) {
      return WireError("'" + text + "' is not a valid " + schema.name(attr) +
                       " value");
    }
    return Status::Ok();
  };

  if (const Json* inserts = obj.Get("inserts")) {
    if (!inserts->is_array()) return WireError("'inserts' must be an array");
    for (const Json& row : inserts->AsArray()) {
      if (!row.is_array() ||
          row.AsArray().size() != static_cast<size_t>(num_attrs)) {
        return WireError("each insert must be an array of " +
                         std::to_string(num_attrs) + " values");
      }
      Tuple t(num_attrs);
      for (AttrId a = 0; a < num_attrs; ++a) {
        const Json& cell = row.AsArray()[static_cast<size_t>(a)];
        if (!cell.is_string()) {
          return WireError("insert values must be strings (parsed per "
                           "column type)");
        }
        Status status = parse_cell(cell.AsString(), a, &t[a]);
        if (!status.ok()) return status;
      }
      batch.Insert(std::move(t));
    }
  }
  if (const Json* updates = obj.Get("updates")) {
    if (!updates->is_array()) return WireError("'updates' must be an array");
    for (const Json& u : updates->AsArray()) {
      if (!u.is_array() || u.AsArray().size() != 3 ||
          !u.AsArray()[0].is_number() || !u.AsArray()[2].is_string()) {
        return WireError(
            "each update must be [tuple_id, attr, \"value\"]");
      }
      AttrId attr = -1;
      Status status = resolve_attr(u.AsArray()[1], &attr);
      if (!status.ok()) return status;
      Value value;
      status = parse_cell(u.AsArray()[2].AsString(), attr, &value);
      if (!status.ok()) return status;
      batch.Update(static_cast<TupleId>(u.AsArray()[0].AsInt()), attr,
                   std::move(value));
    }
  }
  if (const Json* deletes = obj.Get("deletes")) {
    if (!deletes->is_array()) return WireError("'deletes' must be an array");
    for (const Json& d : deletes->AsArray()) {
      if (!d.is_number()) return WireError("delete ids must be numbers");
      batch.Delete(static_cast<TupleId>(d.AsInt()));
    }
  }
  if (batch.Empty()) {
    return WireError("apply_delta needs 'inserts', 'updates' or 'deletes'");
  }
  return batch;
}

// --------------------------------------------------- api values -> wire

Json ErrorJson(const Status& status) {
  Json::Object obj;
  obj["ok"] = Json(false);
  obj["error"] = Json(StatusCodeName(status.code()));
  obj["message"] = Json(status.message());
  return Json(std::move(obj));
}

Json ToJson(const RepairResponse& response, const Schema& schema) {
  Json::Object obj;
  obj["ok"] = Json(true);
  obj["tau"] = Json(response.tau);
  obj["distc"] = Json(response.repair.distc);
  obj["delta_p"] = Json(response.repair.delta_p);
  obj["seconds"] = Json(response.seconds);
  obj["termination"] = Json(TerminationName(response.termination));
  Json::Array sigma;
  for (const FD& fd : response.repair.sigma_prime.fds()) {
    sigma.push_back(Json(fd.ToString(schema)));
  }
  obj["sigma_prime"] = Json(std::move(sigma));
  Json::Array cells;
  for (const CellRef& c : response.repair.changed_cells) {
    Json::Array cell;
    cell.push_back(Json(static_cast<int64_t>(c.tuple)));
    cell.push_back(Json(schema.name(c.attr)));
    cells.push_back(Json(std::move(cell)));
  }
  obj["cell_changes"] = Json(response.repair.changed_cells.size());
  obj["changed_cells"] = Json(std::move(cells));
  return Json(std::move(obj));
}

Json ToJson(const SearchProbe& probe) {
  Json::Object obj;
  obj["ok"] = Json(true);
  obj["tau"] = Json(probe.tau);
  obj["found"] = Json(probe.result.repair.has_value());
  if (probe.result.repair.has_value()) {
    obj["distc"] = Json(probe.result.repair->distc);
    obj["delta_p"] = Json(probe.result.repair->delta_p);
  }
  obj["states_visited"] = Json(probe.result.stats.states_visited);
  obj["states_generated"] = Json(probe.result.stats.states_generated);
  obj["expansions"] = Json(probe.result.stats.expansions);
  obj["lb_prunes"] = Json(probe.result.stats.lb_prunes);
  obj["incumbent_improvements"] =
      Json(probe.result.stats.incumbent_improvements);
  obj["suboptimality_bound"] = Json(probe.result.stats.suboptimality_bound);
  obj["first_repair_seconds"] = Json(probe.result.stats.first_repair_seconds);
  Json::Array incumbents;
  for (const search::IncumbentPoint& p : probe.result.incumbents) {
    Json::Object point;
    point["seconds"] = Json(p.seconds);
    point["distc"] = Json(p.distc);
    point["delta_p"] = Json(p.delta_p);
    point["states_visited"] = Json(p.states_visited);
    incumbents.push_back(Json(std::move(point)));
  }
  obj["incumbents"] = Json(std::move(incumbents));
  obj["termination"] = Json(TerminationName(probe.result.termination));
  obj["seconds"] = Json(probe.seconds);
  return Json(std::move(obj));
}

Json ToJson(const ApplyStats& stats) {
  Json::Object obj;
  obj["ok"] = Json(true);
  obj["tuples_inserted"] = Json(stats.tuples_inserted);
  obj["tuples_updated"] = Json(stats.tuples_updated);
  obj["tuples_deleted"] = Json(stats.tuples_deleted);
  obj["num_tuples"] = Json(stats.num_tuples);
  obj["data_version"] = Json(stats.data_version);
  obj["contexts_patched"] = Json(stats.contexts_patched);
  obj["groups_preserved"] = Json(stats.groups_preserved);
  obj["groups_changed"] = Json(stats.groups_changed);
  obj["reuse_ratio"] = Json(stats.reuse_ratio());
  obj["seconds"] = Json(stats.seconds);
  return Json(std::move(obj));
}

Json ToJson(const ServerStats& stats) {
  Json::Object obj;
  obj["ok"] = Json(true);
  obj["queue_depth"] = Json(stats.queue_depth);
  obj["in_flight"] = Json(stats.in_flight);
  obj["workers"] = Json(stats.workers);
  obj["submitted"] = Json(stats.submitted);
  obj["completed"] = Json(stats.completed);
  obj["cancelled"] = Json(stats.cancelled);
  obj["expired_in_queue"] = Json(stats.expired_in_queue);
  obj["rejected_queue_full"] = Json(stats.rejected_queue_full);
  obj["rejected_tenant_cap"] = Json(stats.rejected_tenant_cap);
  obj["rejected_deadline"] = Json(stats.rejected_deadline);
  obj["rejected_quota"] = Json(stats.rejected_quota);
  obj["rejected"] = Json(stats.rejected());
  obj["p50_latency_seconds"] = Json(stats.p50_latency_seconds);
  obj["p99_latency_seconds"] = Json(stats.p99_latency_seconds);
  obj["p50_queue_wait_seconds"] = Json(stats.p50_queue_wait_seconds);
  obj["p99_queue_wait_seconds"] = Json(stats.p99_queue_wait_seconds);
  obj["p50_service_seconds"] = Json(stats.p50_service_seconds);
  obj["p99_service_seconds"] = Json(stats.p99_service_seconds);
  obj["search_expansions"] = Json(static_cast<int64_t>(stats.search_expansions));
  obj["search_lb_prunes"] = Json(static_cast<int64_t>(stats.search_lb_prunes));
  obj["search_incumbent_improvements"] =
      Json(static_cast<int64_t>(stats.search_incumbent_improvements));
  return Json(std::move(obj));
}

Json ToJson(const TenantStats& stats) {
  Json::Object obj;
  obj["ok"] = Json(true);
  obj["tenant"] = Json(stats.name);
  obj["loaded"] = Json(stats.loaded);
  obj["queued"] = Json(stats.queued);
  obj["executing"] = Json(stats.executing);
  obj["completed"] = Json(stats.completed);
  if (stats.loaded) {
    obj["data_version"] = Json(stats.data_version);
    obj["root_delta_p"] = Json(stats.root_delta_p);
    obj["num_tuples"] = Json(stats.num_tuples);
    Json::Object cache;
    cache["cached"] = Json(stats.cache.cached);
    cache["hits"] = Json(stats.cache.hits);
    cache["misses"] = Json(stats.cache.misses);
    cache["evictions"] = Json(stats.cache.evictions);
    cache["bytes_estimate"] = Json(stats.cache.bytes_estimate);
    Json::Array contexts;
    for (const CachedContextInfo& info : stats.cache.contexts) {
      Json::Object c;
      c["fingerprint"] = Json(std::to_string(info.fingerprint));  // > 2^53
      c["active"] = Json(info.active);
      c["hits"] = Json(info.hits);
      c["age"] = Json(info.age);
      c["edges"] = Json(info.edges);
      c["bytes_estimate"] = Json(info.bytes_estimate);
      contexts.push_back(Json(std::move(c)));
    }
    cache["contexts"] = Json(std::move(contexts));
    obj["cache"] = Json(std::move(cache));
  }
  return Json(std::move(obj));
}

Json ToJson(const obs::TraceSpan& span) {
  Json::Object obj;
  obj["name"] = Json(span.name());
  obj["seconds"] = Json(span.seconds());
  if (span.count() != 1) obj["count"] = Json(span.count());
  if (!span.children().empty()) {
    Json::Array spans;
    spans.reserve(span.children().size());
    for (const auto& child : span.children()) spans.push_back(ToJson(*child));
    obj["spans"] = Json(std::move(spans));
  }
  return Json(std::move(obj));
}

Json ToJson(const obs::FlightRecord& record) {
  Json::Object obj;
  obj["id"] = Json(record.id);
  obj["tenant"] = Json(record.tenant);
  obj["verb"] = Json(record.verb);
  obj["status"] = Json(record.status);
  obj["queue_wait_seconds"] = Json(record.queue_wait_seconds);
  obj["service_seconds"] = Json(record.service_seconds);
  obj["total_seconds"] = Json(record.total_seconds);
  obj["search_states_visited"] = Json(record.search_states_visited);
  obj["search_expansions"] = Json(record.search_expansions);
  obj["traced"] = Json(record.traced);
  return Json(std::move(obj));
}

}  // namespace retrust::service
