// The wire format of tools/retrust_server: newline-delimited JSON over a
// loopback socket, one request object per line, one response object per
// line. This header is the self-contained JSON layer (value type, parser,
// writer — standard library only, since the container bakes in no JSON
// dependency) plus the converters between wire objects and the api/ and
// service/ value types, shared by the server binary and its tests.
//
// Requests ({"op": ...}):
//   {"op":"load_tenant","tenant":"hosp","csv":"hosp.csv",
//    "fds":["Zip->City"]}                        lazy CSV registration
//   {"op":"repair","tenant":"hosp","tau":3}      Algorithm 1; or "tau_r"
//   {"op":"sweep","tenant":"hosp",
//    "requests":[{"tau":0},{"tau_r":0.5}]}       batched RepairMany
//   {"op":"apply_delta","tenant":"hosp",
//    "inserts":[["a","b","c"]],
//    "updates":[[12,"City","Springfield"]],
//    "deletes":[3,9]}                            Session::Apply
//   {"op":"stats"} / {"op":"stats","tenant":"hosp"}
//   {"op":"load_snapshot_tenant","tenant":"hosp",
//    "snapshot":"hosp.snap"}                      lazy snapshot restore
//   {"op":"save_snapshot","tenant":"hosp",
//    "path":"hosp.snap"}                          consistent-cut snapshot
//   {"op":"unload_tenant","tenant":"hosp"}        release session memory
//   {"op":"metrics"}                              registry exposition text
//   {"op":"dump_recent"} / {...,"limit":20}       flight-recorder dump
//   {"op":"shutdown"}
//
// Optional repair fields: "mode" ("astar"|"best_first"), "seed",
// "budget", "deadline_seconds" (the END-TO-END service deadline), "id"
// (any JSON value, echoed in the response untouched), and "trace" (true =
// the reply carries a "trace" span tree of where the request spent its
// time; absent/false = the reply is byte-identical to the untraced one).
//
// Responses: {"ok":true, ...verb fields...} or
// {"ok":false,"error":"<StatusCodeName>","message":"..."} — plus the
// echoed "id" when the request carried one.

#ifndef RETRUST_SERVICE_WIRE_H_
#define RETRUST_SERVICE_WIRE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/api/session.h"
#include "src/obs/flight_recorder.h"
#include "src/service/stats.h"

namespace retrust::service {

/// A JSON value. Numbers are doubles (every count this protocol carries
/// fits double's 2^53 integer range); objects keep sorted keys so Dump()
/// is deterministic.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}          // NOLINT: implicit
  Json(double n) : type_(Type::kNumber), number_(n) {}    // NOLINT
  Json(int64_t n)                                         // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Json(int n) : type_(Type::kNumber), number_(n) {}       // NOLINT
  Json(uint64_t n)                                        // NOLINT: covers size_t
      : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Json(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT
  Json(Array a) : type_(Type::kArray), array_(std::move(a)) {}  // NOLINT
  Json(Object o) : type_(Type::kObject), object_(std::move(o)) {}  // NOLINT

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  int64_t AsInt() const { return static_cast<int64_t>(number_); }
  const std::string& AsString() const { return string_; }
  const Array& AsArray() const { return array_; }
  const Object& AsObject() const { return object_; }
  Object& MutableObject() { return object_; }

  /// Member lookup on objects; nullptr when absent or not an object.
  const Json* Get(const std::string& key) const;

  /// Compact single-line serialization (sorted keys, escaped strings;
  /// integral numbers print without a fraction).
  std::string Dump() const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// rejected). kInvalidArgument with a position on malformed input.
Result<Json> ParseJson(const std::string& text);

// --- wire <-> api conversions -------------------------------------------

/// Reads the repair fields of a request object ("tau"/"tau_r", "mode",
/// "seed", "budget", "deadline_seconds") into a RepairRequest.
Result<RepairRequest> RepairRequestFromJson(const Json& obj);

/// Reads "inserts" (rows of per-column strings parsed against `schema`'s
/// types), "updates" ([tuple, attr name-or-index, value-string]) and
/// "deletes" (tuple ids) into a DeltaBatch.
Result<DeltaBatch> DeltaBatchFromJson(const Json& obj, const Schema& schema);

/// {"ok":false,"error":code_name,"message":...}.
Json ErrorJson(const Status& status);

Json ToJson(const RepairResponse& response, const Schema& schema);
Json ToJson(const SearchProbe& probe);
Json ToJson(const ApplyStats& stats);
Json ToJson(const ServerStats& stats);
Json ToJson(const TenantStats& stats);
/// {"name":...,"seconds":...,"count":...,"spans":[...children...]} —
/// "count"/"spans" are omitted when 1/empty, so plain spans stay small.
Json ToJson(const obs::TraceSpan& span);
Json ToJson(const obs::FlightRecord& record);

}  // namespace retrust::service

#endif  // RETRUST_SERVICE_WIRE_H_
