#include "src/service/queue.h"

#include <utility>

namespace retrust::service {

Status RequestQueue::Push(std::shared_ptr<PendingRequest> req) {
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) {
    return Status::Error(StatusCode::kCancelled, "server stopped");
  }
  auto [it, inserted] = lanes_.try_emplace(req->tenant);
  Lane& lane = it->second;
  Status admitted = admission_->Admit(req->deadline_seconds, depth_,
                                      lane.Load(), req->tenant);
  if (!admitted.ok()) {
    // A lane created only to be rejected would grow the round-robin ring
    // with a tenant that never had a request admitted.
    if (inserted) lanes_.erase(it);
    return admitted;
  }
  if (inserted) ring_.push_back(req->tenant);
  lane.fifo.push_back(std::move(req));
  ++depth_;
  lock.unlock();
  cv_.notify_one();
  return Status::Ok();
}

int RequestQueue::FindDispatchable() const {
  for (size_t step = 0; step < ring_.size(); ++step) {
    size_t i = (cursor_ + step) % ring_.size();
    auto it = lanes_.find(ring_[i]);
    if (it != lanes_.end() && it->second.HeadDispatchable()) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::shared_ptr<PendingRequest> RequestQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] {
      return shutdown_ || (!paused_ && FindDispatchable() >= 0);
    });
    if (shutdown_) return nullptr;
    int i = FindDispatchable();
    if (i < 0) continue;  // raced another worker to the only ready lane
    Lane& lane = lanes_[ring_[static_cast<size_t>(i)]];
    std::shared_ptr<PendingRequest> req = std::move(lane.fifo.front());
    lane.fifo.pop_front();
    if (req->is_write) {
      lane.executing_write = true;
    } else {
      ++lane.executing_reads;
    }
    --depth_;
    ++in_flight_;
    cursor_ = (static_cast<size_t>(i) + 1) % ring_.size();
    return req;
  }
}

void RequestQueue::OnFinished(const PendingRequest& req) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = lanes_.find(req.tenant);
    if (it != lanes_.end()) {
      if (req.is_write) {
        it->second.executing_write = false;
      } else {
        --it->second.executing_reads;
      }
    }
    --in_flight_;
  }
  // A drained barrier can unblock several queued reads at once.
  cv_.notify_all();
}

void RequestQueue::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void RequestQueue::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void RequestQueue::Shutdown(const Status& status) {
  std::vector<std::shared_ptr<PendingRequest>> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    for (auto& [tenant, lane] : lanes_) {
      for (std::shared_ptr<PendingRequest>& req : lane.fifo) {
        drained.push_back(std::move(req));
      }
      lane.fifo.clear();
    }
    depth_ = 0;
  }
  cv_.notify_all();
  // Complete futures outside the lock: fail() may run arbitrary caller
  // continuations.
  for (const std::shared_ptr<PendingRequest>& req : drained) {
    req->fail(status);
  }
}

size_t RequestQueue::Depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depth_;
}

size_t RequestQueue::InFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

std::pair<size_t, size_t> RequestQueue::LaneLoad(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = lanes_.find(tenant);
  if (it == lanes_.end()) return {0, 0};
  const Lane& lane = it->second;
  return {lane.fifo.size(), static_cast<size_t>(lane.executing_reads) +
                                (lane.executing_write ? 1u : 0u)};
}

}  // namespace retrust::service
