// Tenant catalog of the service layer: name -> retrust::Session, with
// per-tenant SessionOptions and lazy CSV loading.
//
// Two registration styles:
//   * Add(...)    — eager: the dataset is already in memory; the Session
//     opens immediately, so schema/FD errors surface at registration.
//   * AddCsv(...) — lazy: only the (path, Σ, options) spec is stored; the
//     first request that needs the tenant pays the CSV read + context
//     build, and I/O or validation failures surface on THAT request
//     (kIoError/kInvalidFd/...). A failed lazy open is retried on the
//     next use, so a dataset that appears later just works.
//
// Every session is opened with the registry's shared pool injected into
// its SessionOptions (see SessionOptions::shared_pool), so a hundred
// tenants share one set of threads instead of spawning a hundred pools.
//
// Thread safety: all methods are safe to call concurrently. The registry
// mutex guards only the catalog shape; a lazy open runs under the
// tenant's own mutex so one slow CSV read never blocks other tenants.

#ifndef RETRUST_SERVICE_TENANT_REGISTRY_H_
#define RETRUST_SERVICE_TENANT_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/api/session.h"
#include "src/service/stats.h"

namespace retrust::service {

class TenantRegistry {
 public:
  /// `defaults` seed tenants registered without explicit options;
  /// `shared_pool` (nullable, not owned, must outlive the registry) is
  /// injected into every tenant's SessionOptions.
  TenantRegistry(SessionOptions defaults, exec::ThreadPool* shared_pool)
      : defaults_(std::move(defaults)), shared_pool_(shared_pool) {}

  /// Eager registration: opens the Session now. kInvalidArgument when the
  /// name is taken; otherwise whatever Session::Open reports.
  Status Add(const std::string& name, Instance data,
             const std::vector<std::string>& fd_texts,
             std::optional<SessionOptions> opts = std::nullopt);

  /// Lazy registration: stores the spec, defers the CSV read and context
  /// build to the first Get. kInvalidArgument when the name is taken.
  Status AddCsv(const std::string& name, std::string csv_path,
                std::vector<std::string> fd_texts,
                std::optional<SessionOptions> opts = std::nullopt);

  bool Contains(const std::string& name) const;
  std::vector<std::string> Names() const;

  /// The tenant's session, opening a lazy spec on first use.
  /// kInvalidArgument for unknown names; open failures pass through and
  /// leave the spec registered for a retry.
  Result<std::shared_ptr<Session>> Get(const std::string& name);

  /// Session-level stats WITHOUT forcing a lazy open (an unloaded tenant
  /// reports loaded = false and zeros). The queue/execution fields of
  /// TenantStats are the Server's to fill.
  Result<TenantStats> StatsFor(const std::string& name) const;

 private:
  struct Tenant {
    std::string csv_path;  ///< empty once opened / for eager tenants
    std::vector<std::string> fd_texts;
    SessionOptions opts;
    std::shared_ptr<Session> session;  ///< null until opened
    /// Serializes the lazy open of THIS tenant only.
    std::unique_ptr<std::mutex> open_mu = std::make_unique<std::mutex>();
  };

  SessionOptions WithPool(std::optional<SessionOptions> opts) const;

  SessionOptions defaults_;
  exec::ThreadPool* shared_pool_;
  mutable std::mutex mu_;  ///< guards the map and Tenant::session pointers
  std::map<std::string, Tenant> tenants_;
};

}  // namespace retrust::service

#endif  // RETRUST_SERVICE_TENANT_REGISTRY_H_
