// Tenant catalog of the service layer: name -> retrust::Session, with
// per-tenant SessionOptions, lazy loading, and snapshot-backed
// unload/reload.
//
// Three registration styles:
//   * Add(...)        — eager: the dataset is already in memory; the
//     Session opens immediately, so schema/FD errors surface at
//     registration.
//   * AddCsv(...)     — lazy: only the (path, Σ, options) spec is stored;
//     the first request that needs the tenant pays the CSV read + context
//     build, and I/O or validation failures surface on THAT request
//     (kIoError/kInvalidFd/...). A failed lazy open is retried on the
//     next use, so a dataset that appears later just works.
//   * AddSnapshot(...) — lazy like AddCsv, but the first use restores a
//     src/persist/ snapshot (Session::OpenSnapshot): the O(n²) context
//     build is skipped and the warm caches come back with it.
//
// Hot-tenant lifecycle: every loaded tenant keeps a RELOAD SPEC (the CSV
// path it was opened from, or its latest snapshot), so an idle tenant can
// be unloaded — its Session released, memory reclaimed — and transparently
// reloaded by the next request. SaveSnapshot(name, path) writes the
// tenant's current state and makes that snapshot the reload spec. Unload
// refuses tenants whose in-memory state the spec cannot reproduce (deltas
// applied since the spec was taken) unless a snapshot_dir is configured,
// in which case it auto-saves first. With max_loaded_bytes > 0 the
// registry enforces the budget after every load by unloading
// least-recently-used idle tenants — previously idle tenants pinned their
// memory forever.
//
// Every session is opened with the registry's shared pool injected into
// its SessionOptions (see SessionOptions::shared_pool), so a hundred
// tenants share one set of threads instead of spawning a hundred pools.
//
// Thread safety: all methods are safe to call concurrently. The registry
// mutex guards only the catalog shape; a lazy open (and an unload's
// snapshot save) runs under the tenant's own mutex so one slow CSV read
// never blocks other tenants. An unload races benignly with in-flight
// work: executing requests hold the Session by shared_ptr, so the session
// stays alive until they finish — Unload just refuses tenants that are
// visibly busy at the moment of release.

#ifndef RETRUST_SERVICE_TENANT_REGISTRY_H_
#define RETRUST_SERVICE_TENANT_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/api/session.h"
#include "src/service/stats.h"

namespace retrust::service {

class TenantRegistry {
 public:
  /// `defaults` seed tenants registered without explicit options;
  /// `shared_pool` (nullable, not owned, must outlive the registry) is
  /// injected into every tenant's SessionOptions. `snapshot_dir` (may be
  /// empty = disabled) lets Unload auto-save dirty tenants to
  /// "<dir>/<name>.snap"; `max_loaded_bytes` (0 = unbounded) bounds the
  /// estimated memory of loaded sessions, enforced by LRU unload of idle
  /// tenants after each load.
  TenantRegistry(SessionOptions defaults, exec::ThreadPool* shared_pool,
                 std::string snapshot_dir = {}, size_t max_loaded_bytes = 0)
      : defaults_(std::move(defaults)),
        shared_pool_(shared_pool),
        snapshot_dir_(std::move(snapshot_dir)),
        max_loaded_bytes_(max_loaded_bytes) {}

  /// Eager registration: opens the Session now. kInvalidArgument when the
  /// name is taken; otherwise whatever Session::Open reports. Eager
  /// tenants have no reload spec until SaveSnapshot gives them one, so
  /// they are not unloadable before that.
  Status Add(const std::string& name, Instance data,
             const std::vector<std::string>& fd_texts,
             std::optional<SessionOptions> opts = std::nullopt);

  /// Lazy registration: stores the spec, defers the CSV read and context
  /// build to the first Get. kInvalidArgument when the name is taken.
  Status AddCsv(const std::string& name, std::string csv_path,
                std::vector<std::string> fd_texts,
                std::optional<SessionOptions> opts = std::nullopt);

  /// Lazy registration from a snapshot file: the first Get restores it
  /// via Session::OpenSnapshot (fingerprint/corruption errors surface on
  /// that request, and the spec stays for a retry).
  Status AddSnapshot(const std::string& name, std::string snapshot_path,
                     std::optional<SessionOptions> opts = std::nullopt);

  bool Contains(const std::string& name) const;
  std::vector<std::string> Names() const;

  /// The tenant's session, opening/restoring a lazy spec on first use and
  /// then enforcing the byte budget. kInvalidArgument for unknown names;
  /// open failures pass through and leave the spec registered for a retry.
  Result<std::shared_ptr<Session>> Get(const std::string& name);

  /// Saves the tenant's current state to `path` (loading it first if it
  /// is not resident) and records the snapshot as the tenant's reload
  /// spec — after this, Unload can always release it.
  Status SaveSnapshot(const std::string& name, const std::string& path);

  /// Releases the tenant's Session, keeping its reload spec; the next Get
  /// reloads transparently. Not loaded → Ok (idempotent). Refusals:
  /// kOverloaded when requests are executing against it right now;
  /// kInvalidArgument when its state has diverged from its spec (deltas
  /// applied) and no snapshot_dir is configured to auto-save it, or when
  /// it has no reload spec at all. `tolerated_pins` is for callers that
  /// KNOW they hold extra shared_ptr references to the session while
  /// calling (Server's queued unload verb executes with the worker's
  /// resolution pinned): the busy check allows that many beyond the
  /// registry's own.
  Status Unload(const std::string& name, int tolerated_pins = 0);

  /// Session-level stats WITHOUT forcing a lazy open (an unloaded tenant
  /// reports loaded = false and zeros). The queue/execution fields of
  /// TenantStats are the Server's to fill.
  Result<TenantStats> StatsFor(const std::string& name) const;

  /// Estimated bytes of all loaded sessions (the budget's left-hand side).
  size_t LoadedBytes() const;

 private:
  struct Tenant {
    /// Reload spec: at most one of csv_path / snapshot_path is the active
    /// source (snapshot wins when both are set — it is always newer, the
    /// registry only sets it via SaveSnapshot/auto-save). Retained after
    /// open so the tenant stays reloadable.
    std::string csv_path;
    std::string snapshot_path;
    std::vector<std::string> fd_texts;
    SessionOptions opts;
    std::shared_ptr<Session> session;  ///< null until opened / when unloaded
    /// The Session::DataVersion() the reload spec reproduces; a loaded
    /// session with a different version is "dirty" (unload would lose
    /// deltas without an auto-save).
    uint64_t spec_version = 0;
    uint64_t last_used = 0;  ///< LRU ordinal (registry use_clock_)
    size_t bytes = 0;        ///< coarse estimate while loaded, 0 otherwise
    /// Serializes the lazy open/unload of THIS tenant only.
    std::unique_ptr<std::mutex> open_mu = std::make_unique<std::mutex>();
  };

  SessionOptions WithPool(std::optional<SessionOptions> opts) const;
  /// Opens `tenant` from its spec (caller holds tenant->open_mu, NOT mu_).
  Result<std::shared_ptr<Session>> OpenFromSpec(Tenant* tenant);
  /// Unload body; `busy_retries` bounds the brief waits for transient
  /// worker-loop pins (0 = fail fast, for best-effort eviction).
  Status UnloadImpl(const std::string& name, int tolerated_pins,
                    int busy_retries);
  /// LRU-unloads idle tenants (never `keep`) until the budget fits.
  void EnforceBudget(const std::string& keep);

  SessionOptions defaults_;
  exec::ThreadPool* shared_pool_;
  std::string snapshot_dir_;
  size_t max_loaded_bytes_;
  mutable std::mutex mu_;  ///< guards the map and Tenant::session pointers
  std::map<std::string, Tenant> tenants_;
  uint64_t use_clock_ = 0;
};

}  // namespace retrust::service

#endif  // RETRUST_SERVICE_TENANT_REGISTRY_H_
