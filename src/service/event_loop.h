// The event-driven wire front end of tools/retrust_server: one poll(2)
// loop over nonblocking sockets, replacing the thread-per-connection
// accept loop with CONNECTION-LEVEL PIPELINING — many outstanding NDJSON
// requests per connection, decoded incrementally from partial frames,
// dispatched through the async Client verbs into the RequestQueue lanes,
// replies written back IN COMPLETION ORDER and matched by the echoed "id".
//
//            ┌────────────── loop thread (poll) ──────────────┐
//   sockets ─┤ accept / nonblocking read / nonblocking write  │
//            └─ LineDecoder ──▶ per-conn inbox (FIFO strand) ─┘
//                                      │ drained by the reader pool,
//                                      ▼ ONE task per conn at a time
//                            verb dispatch ──▶ Client::*Async ──▶ lanes
//                                      │ done callback (worker thread)
//                                      ▼
//                            conn write queue ──▶ wake loop ──▶ socket
//
// Invariants:
//   * PER-CONNECTION SUBMISSION ORDER — decoded lines enter a per-
//     connection inbox drained by at most one reader task at a time, so
//     requests are submitted to the queue in wire order. Lane FIFO then
//     gives the PR 5 guarantee unchanged: apply_delta stays a barrier and
//     every tenant's responses are bit-identical to serial per-Session
//     execution in submission order, at any worker/connection count —
//     only the ORDER REPLIES APPEAR ON THE WIRE is relaxed (that's the
//     pipelining win), and the echoed "id" restores the correlation.
//   * BACKPRESSURE, NOT BUFFERING — a connection whose write queue
//     exceeds `write_buffer_limit`, or with `max_pipeline_depth` requests
//     outstanding, is removed from the poll read set until it drains; a
//     line longer than `max_line_bytes` is discarded as it streams in and
//     answered with one bounded error reply. Memory per connection is
//     O(limit), never O(what the client sends).
//   * NO THREAD PER REQUEST — the async verbs hold no blocked thread per
//     outstanding request; the only threads are the loop, the small fixed
//     reader pool, and the server's workers.
//
// Shutdown: the `shutdown` verb queues its reply and signals
// WaitForShutdownRequest(); Stop() then stops accepting/reading, keeps
// polling until every write buffer and outstanding request drains (grace-
// bounded), and joins. The Server itself is stopped by the caller AFTER
// the loop, so in-flight replies still find it.

#ifndef RETRUST_SERVICE_EVENT_LOOP_H_
#define RETRUST_SERVICE_EVENT_LOOP_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/api/status.h"
#include "src/exec/thread_pool.h"
#include "src/obs/metrics.h"

namespace retrust::service {

class Server;

/// Incremental NDJSON framer: bytes in, complete lines out, partial
/// frames kept across Feed calls. A line exceeding `max_line_bytes` is
/// DISCARDED as it streams (the decoder keeps only O(max) state) and
/// surfaces once as an `oversized` line so the caller can send exactly one
/// bounded error reply. '\r' before the newline is stripped; empty lines
/// are dropped (keep-alive convention of the old server).
class LineDecoder {
 public:
  struct Line {
    std::string text;
    bool oversized = false;  ///< text is empty; the line blew the cap
  };

  explicit LineDecoder(size_t max_line_bytes) : max_(max_line_bytes) {}

  void Feed(const char* data, size_t n);

  /// Takes the next complete line; false when none is ready.
  bool Pop(Line* out);

  /// Bytes of the current partial frame (tests; bounded by max).
  size_t partial_bytes() const { return partial_.size(); }

 private:
  size_t max_;
  std::string partial_;
  bool discarding_ = false;
  std::deque<Line> ready_;
};

class EventLoop {
 public:
  struct Options {
    int port = 7423;  ///< 0 picks an ephemeral port (read back via port())
    /// Reader pool draining the per-connection inboxes (verb parse +
    /// dispatch; inline verbs like `stats` reply from here). Small and
    /// fixed — concurrency comes from outstanding requests, not threads.
    int reader_threads = 2;
    size_t max_line_bytes = 1 << 20;        ///< per-request frame cap
    size_t write_buffer_limit = 8u << 20;   ///< pause reads above this
    /// Outstanding (dispatched or inboxed, not yet replied) requests per
    /// connection before its reads pause.
    size_t max_pipeline_depth = 256;
    /// How long Stop() keeps polling for pending replies to drain before
    /// closing connections anyway.
    double drain_grace_seconds = 10.0;
  };

  /// `server` is borrowed and must outlive the loop; the caller stops the
  /// SERVER only after stopping the LOOP.
  explicit EventLoop(Server* server);
  EventLoop(Server* server, Options opts);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Binds 127.0.0.1:<port>, starts the loop thread and reader pool.
  Status Start();

  /// The bound port (valid after Start; the ephemeral-port answer).
  int port() const { return port_; }

  /// Blocks until a `shutdown` verb arrived or Stop() was called.
  void WaitForShutdownRequest();

  /// Signals WaitForShutdownRequest (the shutdown verb calls this after
  /// queueing its reply; external callers may too).
  void RequestShutdown();

  /// Graceful stop: no new connections or reads, pending write buffers
  /// and outstanding requests drain (bounded by drain_grace_seconds),
  /// then everything closes and the threads join. Idempotent.
  void Stop();

  /// Live connection count (tests/ops).
  size_t connection_count() const {
    return connection_count_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn;

  /// The self-pipe the reply callbacks use to wake poll(). Shared so a
  /// callback completing after the loop died wakes nothing instead of
  /// writing to a closed fd.
  struct Wake {
    std::mutex mu;
    int write_fd = -1;  ///< -1 once the loop is gone
    void Signal();
  };

  void LoopThread();
  void AcceptNew();
  /// Reads once from `conn`; decodes, queues inbox lines, kicks the
  /// strand. Returns false when the connection should be dropped.
  bool HandleReadable(const std::shared_ptr<Conn>& conn);
  /// Flushes as much of the write buffer as the socket takes. Returns
  /// false on a dead socket.
  bool HandleWritable(const std::shared_ptr<Conn>& conn);
  void CloseConn(const std::shared_ptr<Conn>& conn);
  /// Appends one reply line to the connection's write queue and wakes the
  /// loop. Callable from ANY thread (worker done callbacks included) and
  /// deliberately static: it needs only the Conn and its shared Wake, so a
  /// callback completing after the loop died still runs safely.
  /// `finishes_request` releases one outstanding-pipeline slot.
  static void QueueReply(const std::shared_ptr<Conn>& conn,
                         const std::string& line, bool finishes_request);
  /// Reader-pool task: drains conn->inbox one line at a time until empty.
  void DrainStrand(std::shared_ptr<Conn> conn);
  /// Parses and dispatches one request line (reader thread). Replies are
  /// queued via QueueReply, possibly from a worker thread later.
  void HandleLine(const std::shared_ptr<Conn>& conn, std::string line);

  Server* server_;
  Options opts_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int port_ = 0;
  std::shared_ptr<Wake> wake_;
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> connection_count_{0};

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;

  std::mutex stop_mu_;
  bool stopped_ = false;

  /// Loop-thread-only state: the poll set.
  std::map<int, std::shared_ptr<Conn>> conns_;

  std::unique_ptr<exec::ThreadPool> reader_pool_;
  std::thread loop_thread_;

  /// Per-verb wire counters, resolved once at Start() so the hot line
  /// dispatch never takes the registry lock. Empty when the server runs
  /// without observability.
  std::map<std::string, obs::Counter*> verb_counters_;
};

}  // namespace retrust::service

#endif  // RETRUST_SERVICE_EVENT_LOOP_H_
