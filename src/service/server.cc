#include "src/service/server.h"

#include <algorithm>
#include <utility>

namespace retrust::service {

namespace {

AdmissionController::Options AdmissionOptions(const ServerOptions& opts,
                                              QuotaManager* quota) {
  AdmissionController::Options a;
  a.queue_capacity = opts.queue_capacity;
  a.per_tenant_inflight = opts.per_tenant_inflight;
  a.workers = opts.workers < 1 ? 1 : opts.workers;
  a.quota = quota;
  return a;
}

/// Flight-record status label of a type-erased reply: a Result carries its
/// own status, a sweep reply is labelled by its first non-ok entry.
template <typename X>
const char* ReplyStatusLabel(const Result<X>& reply) {
  return reply.ok() ? "ok" : StatusCodeName(reply.status().code());
}

template <typename X>
const char* ReplyStatusLabel(const std::vector<Result<X>>& replies) {
  for (const Result<X>& reply : replies) {
    if (!reply.ok()) return StatusCodeName(reply.status().code());
  }
  return "ok";
}

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      session_pool_(opts_.session_threads > 1
                        ? std::make_unique<exec::ThreadPool>(
                              opts_.session_threads)
                        : nullptr),
      tenants_(opts_.session_defaults, session_pool_.get(),
               opts_.snapshot_dir, opts_.max_loaded_tenant_bytes),
      quota_(opts_.default_quota, opts_.quota_clock),
      admission_(AdmissionOptions(opts_, &quota_)),
      queue_(&admission_),
      worker_pool_(std::make_unique<exec::ThreadPool>(
          opts_.workers < 1 ? 1 : opts_.workers)) {
  if (opts_.observability) {
    metrics_ = opts_.metrics != nullptr ? opts_.metrics
                                        : &obs::MetricsRegistry::Global();
    recorder_ =
        std::make_unique<obs::FlightRecorder>(opts_.flight_recorder_capacity);
    slow_log_ = std::make_unique<obs::SlowRequestLog>(
        opts_.slow_request_seconds, /*min_interval_seconds=*/1.0);
    metrics_probe_ = metrics_->RegisterProbe(
        [this](obs::Collector& out) { CollectMetrics(out); });
  }
  if (opts_.start_paused) queue_.Pause();
  const int workers = opts_.workers < 1 ? 1 : opts_.workers;
  for (int i = 0; i < workers; ++i) {
    worker_pool_->Submit([this] { WorkerLoop(); });
  }
}

Server::~Server() { Stop(); }

Status Server::LoadTenant(const std::string& name, Instance data,
                          const std::vector<std::string>& fd_texts,
                          std::optional<SessionOptions> opts) {
  return tenants_.Add(name, std::move(data), fd_texts, std::move(opts));
}

Status Server::LoadCsvTenant(const std::string& name, std::string csv_path,
                             std::vector<std::string> fd_texts,
                             std::optional<SessionOptions> opts) {
  return tenants_.AddCsv(name, std::move(csv_path), std::move(fd_texts),
                         std::move(opts));
}

Status Server::LoadSnapshotTenant(const std::string& name,
                                  std::string snapshot_path,
                                  std::optional<SessionOptions> opts) {
  return tenants_.AddSnapshot(name, std::move(snapshot_path),
                              std::move(opts));
}

void Server::Pause() { queue_.Pause(); }

void Server::Resume() { queue_.Resume(); }

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  queue_.Shutdown(Status::Error(StatusCode::kCancelled, "server stopped"));
  {
    // Courtesy cancel for in-flight work so shutdown is prompt; the
    // cooperative token means they finish their current state cleanly.
    std::lock_guard<std::mutex> lock(stats_mu_);
    for (auto& [id, req] : live_) req->cancel.Cancel();
  }
  worker_pool_.reset();  // joins: in-flight requests drain first
}

template <typename T>
uint64_t Server::SubmitAsync(const std::string& tenant, const char* verb,
                             bool is_write, double deadline_seconds,
                             std::shared_ptr<obs::RequestTrace> trace,
                             std::function<T(Session&, PendingRequest&)> run,
                             std::function<T(const Status&)> on_fail,
                             std::function<void(T)> done) {
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  ++submitted_;

  auto reject = [&](Status status) { done(on_fail(status)); };
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (stopped_) {
      reject(Status::Error(StatusCode::kCancelled, "server stopped"));
      return id;
    }
  }
  // Unknown tenants fail fast, before they can occupy a queue slot or
  // grow the fairness ring.
  if (!tenants_.Contains(tenant)) {
    reject(Status::Error(StatusCode::kInvalidArgument,
                         "unknown tenant '" + tenant + "'"));
    return id;
  }

  auto req = std::make_shared<PendingRequest>();
  req->id = id;
  req->tenant = tenant;
  req->is_write = is_write;
  req->verb = verb;
  req->trace = std::move(trace);
  req->deadline_seconds = deadline_seconds;
  req->submitted = std::chrono::steady_clock::now();
  // Both wrappers finish ALL bookkeeping (live_ removal, counters,
  // latency) BEFORE invoking the completion, so a caller that wakes from
  // its callback (or future.get()) observes consistent stats — no "reply
  // arrived but completed counter still says 0" window.
  req->execute = [this, done, run = std::move(run)](
                     Session& session, PendingRequest& pending) {
    const auto exec_start = std::chrono::steady_clock::now();
    const double queue_wait = std::chrono::duration<double>(
                                  exec_start - pending.submitted)
                                  .count();
    if (pending.trace != nullptr) {
      pending.trace->root.StartChild("queue_wait")->set_seconds(queue_wait);
      pending.trace->service = pending.trace->root.StartChild("service");
    }
    T reply = run(session, pending);
    if (pending.trace != nullptr) pending.trace->service->Finish();
    // Two different clocks on purpose: the admission EWMA needs pure
    // SERVICE time (its wait estimate multiplies by queue depth — feeding
    // it end-to-end latency would double-count the queue and shed
    // feasible requests), while the client-facing histogram reports
    // end-to-end submit -> reply latency.
    const double service_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      exec_start)
            .count();
    const double latency = pending.ElapsedSeconds();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      live_.erase(pending.id);
      latency_.Record(latency);
      queue_wait_.Record(queue_wait);
      service_.Record(service_seconds);
      ++completed_by_tenant_[pending.tenant];
    }
    admission_.ObserveLatency(service_seconds);
    ++completed_;
    RecordFlight(pending, ReplyStatusLabel(reply), queue_wait,
                 service_seconds, latency);
    if (pending.release) {
      std::function<void()> release = std::move(pending.release);
      pending.release = nullptr;
      release();
    }
    done(std::move(reply));
  };
  req->fail = [this, done, self = req.get(),
               on_fail = std::move(on_fail)](const Status& status) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      live_.erase(self->id);
    }
    RecordFlight(*self, StatusCodeName(status.code()),
                 /*queue_wait=*/0.0, /*service_seconds=*/0.0,
                 self->ElapsedSeconds());
    if (self->release) {
      std::function<void()> release = std::move(self->release);
      self->release = nullptr;
      release();
    }
    done(on_fail(status));
  };

  // Live BEFORE Push: a worker may pop and finish the request before Push
  // returns, and Cancel must be able to find it the moment the caller
  // holds the id.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    live_[req->id] = req;
  }
  Status admitted = queue_.Push(req);
  if (!admitted.ok()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      live_.erase(req->id);
    }
    req->fail(admitted);  // on_fail was moved into the request
  }
  return id;
}

template <typename T>
Submitted<T> Server::Submit(const std::string& tenant, const char* verb,
                            bool is_write, double deadline_seconds,
                            std::shared_ptr<obs::RequestTrace> trace,
                            std::function<T(Session&, PendingRequest&)> run,
                            std::function<T(const Status&)> on_fail) {
  auto promise = std::make_shared<std::promise<T>>();
  Submitted<T> out;
  out.future = promise->get_future();
  out.id = SubmitAsync<T>(
      tenant, verb, is_write, deadline_seconds, std::move(trace),
      std::move(run), std::move(on_fail),
      [promise](T reply) { promise->set_value(std::move(reply)); });
  return out;
}

void Server::WorkerLoop() {
  while (std::shared_ptr<PendingRequest> req = queue_.Pop()) {
    // The terminal wrapper (execute or fail) releases the lane slot just
    // before completing the future; the request's session work is done by
    // then, so the apply_delta barrier still covers the whole execution.
    req->release = [this, r = req.get()] { queue_.OnFinished(*r); };
    if (req->cancel.Cancelled()) {
      // Cancelled while queued: completed WITHOUT touching a Session — no
      // pool work is ever leaked for it.
      ++cancelled_;
      req->fail(
          Status::Error(StatusCode::kCancelled, "cancelled while queued"));
    } else if (req->DeadlineExpired()) {
      ++expired_;
      req->fail(Status::Error(
          StatusCode::kBudgetExceeded,
          "deadline expired after " + std::to_string(req->ElapsedSeconds()) +
              "s in queue"));
    } else {
      Result<std::shared_ptr<Session>> session = tenants_.Get(req->tenant);
      if (!session.ok()) {
        // A failed lazy open is still a dispatched-and-replied request:
        // count it as completed so the admitted-request counters
        // partition cleanly (stats.h).
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          latency_.Record(req->ElapsedSeconds());
          ++completed_by_tenant_[req->tenant];
        }
        ++completed_;
        req->fail(session.status());
      } else {
        try {
          req->execute(**session, *req);
        } catch (const std::exception& e) {
          // Same terminal accounting as the other dispatched-and-replied
          // paths, so global and per-tenant completed counts reconcile.
          {
            std::lock_guard<std::mutex> lock(stats_mu_);
            latency_.Record(req->ElapsedSeconds());
            ++completed_by_tenant_[req->tenant];
          }
          ++completed_;
          req->fail(Status::Error(StatusCode::kInternal, e.what()));
        }
      }
    }
  }
}

bool Server::Cancel(uint64_t id) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  auto it = live_.find(id);
  if (it == live_.end()) return false;
  it->second->cancel.Cancel();
  return true;
}

ServerStats Server::Stats() const {
  ServerStats stats;
  stats.queue_depth = queue_.Depth();
  stats.in_flight = queue_.InFlight();
  stats.workers = opts_.workers < 1 ? 1 : opts_.workers;
  stats.submitted = submitted_.load();
  stats.cancelled = cancelled_.load();
  stats.expired_in_queue = expired_.load();
  stats.completed = completed_.load();
  admission_.Snapshot(&stats);
  stats.search_expansions = search_expansions_.load();
  stats.search_lb_prunes = search_lb_prunes_.load();
  stats.search_incumbent_improvements = search_incumbents_.load();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats.p50_latency_seconds = latency_.Percentile(0.5);
    stats.p99_latency_seconds = latency_.Percentile(0.99);
    stats.p50_queue_wait_seconds = queue_wait_.Percentile(0.5);
    stats.p99_queue_wait_seconds = queue_wait_.Percentile(0.99);
    stats.p50_service_seconds = service_.Percentile(0.5);
    stats.p99_service_seconds = service_.Percentile(0.99);
  }
  return stats;
}

void Server::RecordSearchStats(const SearchStats& stats,
                               search::SearchPolicy policy,
                               PendingRequest* pending) {
  search_expansions_.fetch_add(static_cast<uint64_t>(stats.expansions),
                               std::memory_order_relaxed);
  search_lb_prunes_.fetch_add(static_cast<uint64_t>(stats.lb_prunes),
                              std::memory_order_relaxed);
  search_incumbents_.fetch_add(
      static_cast<uint64_t>(stats.incumbent_improvements),
      std::memory_order_relaxed);
  const size_t idx = static_cast<size_t>(policy);
  if (idx < policy_search_.size()) {
    PolicySearchAgg& agg = policy_search_[idx];
    agg.requests.fetch_add(1, std::memory_order_relaxed);
    agg.expansions.fetch_add(static_cast<uint64_t>(stats.expansions),
                             std::memory_order_relaxed);
    agg.visited.fetch_add(static_cast<uint64_t>(stats.states_visited),
                          std::memory_order_relaxed);
  }
  if (pending != nullptr) {
    // Accumulate (a sweep calls this once per batch entry) for the
    // request's flight record.
    pending->search_states_visited += stats.states_visited;
    pending->search_expansions += static_cast<uint64_t>(stats.expansions);
  }
}

void Server::RecordFlight(const PendingRequest& req, const char* status_label,
                          double queue_wait, double service_seconds,
                          double total_seconds) {
  if (recorder_ == nullptr) return;
  obs::FlightRecord record;
  record.id = req.id;
  record.tenant = req.tenant;
  record.verb = req.verb;
  record.status = status_label;
  record.queue_wait_seconds = queue_wait;
  record.service_seconds = service_seconds;
  record.total_seconds = total_seconds;
  record.search_states_visited = req.search_states_visited;
  record.search_expansions = req.search_expansions;
  record.traced = req.trace != nullptr;
  slow_log_->MaybeLog(record, req.trace.get());
  recorder_->Record(std::move(record));
}

std::vector<obs::FlightRecord> Server::RecentRequests(size_t limit) const {
  if (recorder_ == nullptr) return {};
  return recorder_->Recent(limit);
}

uint64_t Server::SlowRequestsSeen() const {
  return slow_log_ != nullptr ? slow_log_->SlowSeen() : 0;
}

void Server::CollectMetrics(obs::Collector& out) const {
  // Request flow (service layer). The server's atomics stay authoritative;
  // the probe only samples them, so two servers publishing into the same
  // registry never mix counts into one shared Counter.
  out.CounterSample("retrust_requests_submitted_total", {},
                    submitted_.load(std::memory_order_relaxed));
  out.CounterSample("retrust_requests_completed_total", {},
                    completed_.load(std::memory_order_relaxed));
  out.CounterSample("retrust_requests_cancelled_total", {},
                    cancelled_.load(std::memory_order_relaxed));
  out.CounterSample("retrust_requests_expired_total", {},
                    expired_.load(std::memory_order_relaxed));
  const AdmissionController::RejectionCounts rejected =
      admission_.Rejections();
  out.CounterSample("retrust_requests_rejected_total",
                    {{"reason", "queue_full"}}, rejected.queue_full);
  out.CounterSample("retrust_requests_rejected_total",
                    {{"reason", "tenant_cap"}}, rejected.tenant_cap);
  out.CounterSample("retrust_requests_rejected_total",
                    {{"reason", "deadline"}}, rejected.deadline);
  out.CounterSample("retrust_requests_rejected_total", {{"reason", "quota"}},
                    rejected.quota);
  out.CounterSample("retrust_quota_denials_total", {}, quota_.Denials());
  out.Gauge("retrust_queue_depth", {},
            static_cast<double>(queue_.Depth()));
  out.Gauge("retrust_requests_in_flight", {},
            static_cast<double>(queue_.InFlight()));
  out.Gauge("retrust_admission_latency_ewma_seconds", {},
            admission_.LatencyEwmaSeconds());

  // Exec pools. The request workers park inside WorkerLoop for the whole
  // process lifetime, so their pool's busy count is meaningless — request
  // concurrency is the queue's in-flight gauge above. The shared session
  // pool runs real short tasks and its utilization is genuine.
  out.Gauge("retrust_request_workers", {},
            static_cast<double>(opts_.workers < 1 ? 1 : opts_.workers));
  if (session_pool_ != nullptr) {
    const exec::PoolStats pool = session_pool_->GetStats();
    out.Gauge("retrust_session_pool_threads", {},
              static_cast<double>(pool.threads));
    out.Gauge("retrust_session_pool_busy", {},
              static_cast<double>(pool.busy));
    out.Gauge("retrust_session_pool_queued", {},
              static_cast<double>(pool.queued));
    out.CounterSample("retrust_session_pool_tasks_total", {}, pool.executed);
  }

  // Latency split, as quantile series.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out.Histogram("retrust_request_latency_seconds", {}, latency_);
    out.Histogram("retrust_queue_wait_seconds", {}, queue_wait_);
    out.Histogram("retrust_service_seconds", {}, service_);
  }

  // Search engine aggregates, total and per policy.
  out.CounterSample("retrust_search_expansions_total", {},
                    search_expansions_.load(std::memory_order_relaxed));
  out.CounterSample("retrust_search_lb_prunes_total", {},
                    search_lb_prunes_.load(std::memory_order_relaxed));
  out.CounterSample("retrust_search_incumbents_total", {},
                    search_incumbents_.load(std::memory_order_relaxed));
  for (size_t i = 0; i < policy_search_.size(); ++i) {
    const PolicySearchAgg& agg = policy_search_[i];
    const uint64_t requests = agg.requests.load(std::memory_order_relaxed);
    if (requests == 0) continue;  // don't mint series for unused policies
    const obs::Labels labels = {
        {"policy", search::PolicyName(static_cast<search::SearchPolicy>(i))}};
    out.CounterSample("retrust_search_requests_total", labels, requests);
    out.CounterSample("retrust_search_policy_expansions_total", labels,
                      agg.expansions.load(std::memory_order_relaxed));
    out.CounterSample("retrust_search_policy_visited_total", labels,
                      agg.visited.load(std::memory_order_relaxed));
  }

  // Session layer: context caches summed across loaded tenants (StatsFor
  // never forces a lazy open).
  uint64_t cache_hits = 0, cache_misses = 0, cache_evictions = 0;
  size_t cache_entries = 0, cache_bytes = 0;
  int registered = 0, loaded = 0;
  for (const std::string& name : tenants_.Names()) {
    Result<TenantStats> tenant = tenants_.StatsFor(name);
    if (!tenant.ok()) continue;
    ++registered;
    if (!tenant->loaded) continue;
    ++loaded;
    cache_hits += tenant->cache.hits;
    cache_misses += tenant->cache.misses;
    cache_evictions += tenant->cache.evictions;
    cache_entries += tenant->cache.cached;
    cache_bytes += tenant->cache.bytes_estimate;
  }
  out.Gauge("retrust_tenants_registered", {},
            static_cast<double>(registered));
  out.Gauge("retrust_tenants_loaded", {}, static_cast<double>(loaded));
  out.CounterSample("retrust_context_cache_hits_total", {}, cache_hits);
  out.CounterSample("retrust_context_cache_misses_total", {}, cache_misses);
  out.CounterSample("retrust_context_cache_evictions_total", {},
                    cache_evictions);
  out.Gauge("retrust_context_cache_entries", {},
            static_cast<double>(cache_entries));
  out.Gauge("retrust_context_cache_bytes_estimate", {},
            static_cast<double>(cache_bytes));

  // Flight recorder / slow log (non-null whenever this probe exists).
  out.CounterSample("retrust_flight_records_total", {},
                    recorder_->TotalRecorded());
  out.CounterSample("retrust_slow_requests_total", {}, slow_log_->SlowSeen());
}

Result<TenantStats> Server::TenantStatsFor(const std::string& name) const {
  Result<TenantStats> stats = tenants_.StatsFor(name);
  if (!stats.ok()) return stats;
  auto [queued, executing] = queue_.LaneLoad(name);
  stats->queued = queued;
  stats->executing = executing;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    auto it = completed_by_tenant_.find(name);
    stats->completed = it == completed_by_tenant_.end() ? 0 : it->second;
  }
  return stats;
}

// ---------------------------------------------------------------- Client

namespace {

/// The common reply-from-status factory for Result<T> verbs.
template <typename T>
std::function<Result<T>(const Status&)> FailAsResult() {
  return [](const Status& status) { return Result<T>(status); };
}

Status UserCancelTokenError() {
  return Status::Error(
      StatusCode::kInvalidArgument,
      "RepairRequest::cancel must be null: service requests are "
      "cancelled via Client::Cancel(id)");
}

}  // namespace

namespace {

/// The sync verbs are thin wrappers over the async ones: park the reply in
/// a promise.
template <typename T>
std::pair<Submitted<T>, std::function<void(T)>> PromisedDone() {
  auto promise = std::make_shared<std::promise<T>>();
  Submitted<T> out;
  out.future = promise->get_future();
  return {std::move(out),
          [promise](T reply) { promise->set_value(std::move(reply)); }};
}

}  // namespace

uint64_t Client::RepairAsync(const std::string& tenant,
                             const RepairRequest& req,
                             std::function<void(Result<RepairResponse>)> done) {
  if (req.cancel != nullptr) {
    done(Result<RepairResponse>(UserCancelTokenError()));
    return 0;
  }
  return server_->SubmitAsync<Result<RepairResponse>>(
      tenant, "repair", /*is_write=*/false, req.deadline_seconds, req.trace,
      [req, server = server_](Session& session, PendingRequest& pending) {
        RepairRequest r = req;
        r.deadline_seconds = pending.RemainingDeadline();
        r.cancel = &pending.cancel;
        Result<RepairResponse> response = session.Repair(r);
        if (response.ok()) {
          server->RecordSearchStats(response->repair.stats, req.policy,
                                    &pending);
        }
        return response;
      },
      FailAsResult<RepairResponse>(), std::move(done));
}

uint64_t Client::SearchAsync(const std::string& tenant,
                             const RepairRequest& req,
                             std::function<void(Result<SearchProbe>)> done) {
  if (req.cancel != nullptr) {
    done(Result<SearchProbe>(UserCancelTokenError()));
    return 0;
  }
  return server_->SubmitAsync<Result<SearchProbe>>(
      tenant, "search", /*is_write=*/false, req.deadline_seconds, req.trace,
      [req, server = server_](Session& session, PendingRequest& pending) {
        RepairRequest r = req;
        r.deadline_seconds = pending.RemainingDeadline();
        r.cancel = &pending.cancel;
        Result<SearchProbe> probe = session.Search(r);
        if (probe.ok()) {
          server->RecordSearchStats(probe->result.stats, req.policy,
                                    &pending);
        }
        return probe;
      },
      FailAsResult<SearchProbe>(), std::move(done));
}

uint64_t Client::SweepAsync(
    const std::string& tenant, std::vector<RepairRequest> reqs,
    std::function<void(std::vector<Result<RepairResponse>>)> done) {
  const size_t n = reqs.size();
  return server_->SubmitAsync<std::vector<Result<RepairResponse>>>(
      tenant, "sweep", /*is_write=*/false, /*deadline_seconds=*/0.0,
      /*trace=*/nullptr,
      [reqs = std::move(reqs), server = server_](Session& session,
                                                 PendingRequest& pending) {
        std::vector<RepairRequest> wired = reqs;
        for (RepairRequest& r : wired) r.cancel = &pending.cancel;
        std::vector<Result<RepairResponse>> replies =
            session.RepairMany(wired);
        for (size_t i = 0; i < replies.size(); ++i) {
          if (replies[i].ok()) {
            server->RecordSearchStats(replies[i]->repair.stats,
                                      wired[i].policy, &pending);
          }
        }
        return replies;
      },
      [n](const Status& status) {
        std::vector<Result<RepairResponse>> replies;
        replies.reserve(n);
        for (size_t i = 0; i < n; ++i) replies.emplace_back(status);
        return replies;
      },
      std::move(done));
}

uint64_t Client::ApplyAsync(const std::string& tenant, DeltaBatch delta,
                            std::function<void(Result<ApplyStats>)> done) {
  return server_->SubmitAsync<Result<ApplyStats>>(
      tenant, "apply_delta", /*is_write=*/true, /*deadline_seconds=*/0.0,
      /*trace=*/nullptr,
      [delta = std::move(delta)](Session& session, PendingRequest&) {
        return session.Apply(delta);
      },
      FailAsResult<ApplyStats>(), std::move(done));
}

uint64_t Client::SaveSnapshotAsync(
    const std::string& tenant, std::string path,
    std::function<void(Result<std::string>)> done) {
  // A WRITE so the lane barrier quiesces the tenant first: the file is a
  // consistent cut between everything submitted before and after. The
  // registry call (not a bare Session::SaveSnapshot) also records the
  // snapshot as the tenant's reload spec.
  return server_->SubmitAsync<Result<std::string>>(
      tenant, "save_snapshot", /*is_write=*/true, /*deadline_seconds=*/0.0,
      /*trace=*/nullptr,
      [server = server_, tenant, path = std::move(path)](
          Session&, PendingRequest&) -> Result<std::string> {
        Status saved = server->tenants_.SaveSnapshot(tenant, path);
        if (!saved.ok()) return saved;
        return path;
      },
      FailAsResult<std::string>(), std::move(done));
}

uint64_t Client::UnloadTenantAsync(const std::string& tenant,
                                   std::function<void(Result<bool>)> done) {
  // Also a WRITE: earlier requests drain first, later ones queue behind
  // and trigger the transparent reload. tolerated_pins = 1 because the
  // worker loop executing THIS verb holds the session it resolved.
  return server_->SubmitAsync<Result<bool>>(
      tenant, "unload_tenant", /*is_write=*/true, /*deadline_seconds=*/0.0,
      /*trace=*/nullptr,
      [server = server_, tenant](Session&, PendingRequest&) -> Result<bool> {
        Status unloaded = server->tenants_.Unload(tenant,
                                                  /*tolerated_pins=*/1);
        if (!unloaded.ok()) return unloaded;
        return true;
      },
      FailAsResult<bool>(), std::move(done));
}

Submitted<Result<RepairResponse>> Client::Repair(const std::string& tenant,
                                                 const RepairRequest& req) {
  auto [out, done] = PromisedDone<Result<RepairResponse>>();
  out.id = RepairAsync(tenant, req, std::move(done));
  return std::move(out);
}

Submitted<Result<SearchProbe>> Client::Search(const std::string& tenant,
                                              const RepairRequest& req) {
  auto [out, done] = PromisedDone<Result<SearchProbe>>();
  out.id = SearchAsync(tenant, req, std::move(done));
  return std::move(out);
}

Submitted<std::vector<Result<RepairResponse>>> Client::Sweep(
    const std::string& tenant, std::vector<RepairRequest> reqs) {
  auto [out, done] = PromisedDone<std::vector<Result<RepairResponse>>>();
  out.id = SweepAsync(tenant, std::move(reqs), std::move(done));
  return std::move(out);
}

std::vector<Submitted<Result<RepairResponse>>> Client::RepairBatch(
    const std::string& tenant, std::span<const RepairRequest> reqs) {
  std::vector<Submitted<Result<RepairResponse>>> out;
  out.reserve(reqs.size());
  for (const RepairRequest& req : reqs) out.push_back(Repair(tenant, req));
  return out;
}

Submitted<Result<ApplyStats>> Client::Apply(const std::string& tenant,
                                            DeltaBatch delta) {
  auto [out, done] = PromisedDone<Result<ApplyStats>>();
  out.id = ApplyAsync(tenant, std::move(delta), std::move(done));
  return std::move(out);
}

Submitted<Result<std::string>> Client::SaveSnapshot(const std::string& tenant,
                                                    std::string path) {
  auto [out, done] = PromisedDone<Result<std::string>>();
  out.id = SaveSnapshotAsync(tenant, std::move(path), std::move(done));
  return std::move(out);
}

Submitted<Result<bool>> Client::UnloadTenant(const std::string& tenant) {
  auto [out, done] = PromisedDone<Result<bool>>();
  out.id = UnloadTenantAsync(tenant, std::move(done));
  return std::move(out);
}

bool Client::Cancel(uint64_t id) { return server_->Cancel(id); }

ServerStats Client::Stats() const { return server_->Stats(); }

}  // namespace retrust::service
