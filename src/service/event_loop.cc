#include "src/service/event_loop.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "src/service/quota.h"
#include "src/service/server.h"
#include "src/service/wire.h"

namespace retrust::service {

// --- LineDecoder ---------------------------------------------------------

void LineDecoder::Feed(const char* data, size_t n) {
  size_t pos = 0;
  while (pos < n) {
    const void* nl = std::memchr(data + pos, '\n', n - pos);
    size_t end = nl == nullptr
                     ? n
                     : static_cast<size_t>(static_cast<const char*>(nl) -
                                           data);
    size_t chunk = end - pos;
    if (discarding_) {
      // Swallow the rest of a blown line without buffering it.
      if (nl != nullptr) {
        discarding_ = false;
        Line marker;
        marker.oversized = true;
        ready_.push_back(std::move(marker));
      }
    } else if (partial_.size() + chunk > max_) {
      partial_.clear();
      partial_.shrink_to_fit();
      if (nl != nullptr) {
        Line marker;
        marker.oversized = true;
        ready_.push_back(std::move(marker));
      } else {
        discarding_ = true;  // marker emitted when the newline arrives
      }
    } else {
      partial_.append(data + pos, chunk);
      if (nl != nullptr) {
        if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
        if (!partial_.empty()) {
          Line line;
          line.text = std::move(partial_);
          ready_.push_back(std::move(line));
        }
        partial_.clear();
      }
    }
    pos = nl == nullptr ? n : end + 1;
  }
}

bool LineDecoder::Pop(Line* out) {
  if (ready_.empty()) return false;
  *out = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

// --- EventLoop -----------------------------------------------------------

struct EventLoop::Conn {
  explicit Conn(size_t max_line_bytes) : decoder(max_line_bytes) {}

  int fd = -1;
  LineDecoder decoder;          // loop thread only
  bool read_eof = false;        // loop thread only

  std::mutex mu;                // guards everything below
  std::string write_buf;        // [write_off, size) still pending
  size_t write_off = 0;
  std::deque<std::string> inbox;  // decoded request lines, wire order
  bool strand_active = false;     // a reader task is draining the inbox
  /// Inboxed or dispatched lines whose reply has not been queued yet.
  size_t outstanding = 0;
  bool closed = false;            // fd gone; drop late replies
  std::shared_ptr<Wake> wake;
};

namespace {

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

double MonotoneSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void EventLoop::Wake::Signal() {
  std::lock_guard<std::mutex> lock(mu);
  if (write_fd < 0) return;
  char byte = 1;
  // The pipe being full is fine — poll() is waking up anyway.
  [[maybe_unused]] ssize_t n = ::write(write_fd, &byte, 1);
}

EventLoop::EventLoop(Server* server) : EventLoop(server, Options()) {}

EventLoop::EventLoop(Server* server, Options opts)
    : server_(server), opts_(std::move(opts)) {
  if (opts_.reader_threads < 1) opts_.reader_threads = 1;
  if (opts_.max_pipeline_depth < 1) opts_.max_pipeline_depth = 1;
}

EventLoop::~EventLoop() { Stop(); }

Status EventLoop::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Error(StatusCode::kIoError,
                         std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(opts_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = Status::Error(
        StatusCode::kIoError, std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 256) != 0) {
    Status status = Status::Error(
        StatusCode::kIoError, std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  SetNonBlocking(listen_fd_);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    Status status = Status::Error(
        StatusCode::kIoError, std::string("pipe: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  SetNonBlocking(pipe_fds[0]);
  SetNonBlocking(pipe_fds[1]);
  wake_read_fd_ = pipe_fds[0];
  wake_ = std::make_shared<Wake>();
  wake_->write_fd = pipe_fds[1];

  if (obs::MetricsRegistry* registry = server_->metrics()) {
    // Resolve one counter per known verb up front: line dispatch then bumps
    // a sharded counter without ever touching the registry mutex.
    for (const char* verb :
         {"load_tenant", "repair", "sweep", "apply_delta", "stats",
          "load_snapshot_tenant", "save_snapshot", "unload_tenant",
          "shutdown", "metrics", "dump_recent"}) {
      verb_counters_[verb] = &registry->GetCounter(
          "retrust_wire_requests_total", {{"verb", verb}});
    }
  }

  reader_pool_ = std::make_unique<exec::ThreadPool>(opts_.reader_threads);
  loop_thread_ = std::thread(&EventLoop::LoopThread, this);
  return Status::Ok();
}

void EventLoop::WaitForShutdownRequest() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

void EventLoop::RequestShutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void EventLoop::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  stopping_.store(true);
  RequestShutdown();
  if (wake_ != nullptr) wake_->Signal();
  if (loop_thread_.joinable()) loop_thread_.join();
  // Drains strand tasks the loop queued before it exited; their replies
  // hit closed conns and are dropped.
  reader_pool_.reset();
  if (wake_ != nullptr) {
    std::lock_guard<std::mutex> lock(wake_->mu);
    if (wake_->write_fd >= 0) ::close(wake_->write_fd);
    wake_->write_fd = -1;
  }
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  wake_read_fd_ = -1;
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
}

void EventLoop::LoopThread() {
  std::vector<pollfd> pfds;
  std::vector<std::shared_ptr<Conn>> polled;
  double drain_deadline = 0.0;  // set once stopping is observed
  for (;;) {
    bool stopping = stopping_.load();
    if (stopping && drain_deadline == 0.0) {
      drain_deadline = MonotoneSeconds() + opts_.drain_grace_seconds;
    }

    pfds.clear();
    polled.clear();
    pfds.push_back({wake_read_fd_, POLLIN, 0});
    if (!stopping) pfds.push_back({listen_fd_, POLLIN, 0});
    size_t fixed = pfds.size();

    size_t pending = 0;  // outstanding requests + unflushed reply bytes
    std::vector<std::shared_ptr<Conn>> drained;
    for (auto& entry : conns_) {
      const std::shared_ptr<Conn>& conn = entry.second;
      short events = 0;
      size_t buffered, inflight;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        buffered = conn->write_buf.size() - conn->write_off;
        inflight = conn->outstanding;
        if (buffered > 0) events |= POLLOUT;
      }
      bool paused = buffered >= opts_.write_buffer_limit ||
                    inflight >= opts_.max_pipeline_depth;
      if (!stopping && !conn->read_eof && !paused) events |= POLLIN;
      pending += buffered + inflight;
      if (conn->read_eof && buffered == 0 && inflight == 0) {
        // Half-closed peer with nothing left to deliver.
        drained.push_back(conn);
        continue;
      }
      pfds.push_back({conn->fd, events, 0});
      polled.push_back(conn);
    }
    for (const std::shared_ptr<Conn>& conn : drained) CloseConn(conn);

    if (stopping &&
        (pending == 0 || MonotoneSeconds() >= drain_deadline)) {
      break;
    }

    int timeout_ms = stopping ? 50 : -1;
    int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }

    if (pfds[0].revents != 0) {
      char scratch[256];
      while (::read(wake_read_fd_, scratch, sizeof(scratch)) > 0) {
      }
    }
    if (!stopping && pfds.size() > 1 && pfds[1].fd == listen_fd_ &&
        pfds[1].revents != 0) {
      AcceptNew();
    }
    for (size_t i = fixed; i < pfds.size(); ++i) {
      const std::shared_ptr<Conn>& conn = polled[i - fixed];
      short re = pfds[i].revents;
      if (re == 0) continue;
      bool ok = true;
      if (re & (POLLERR | POLLNVAL)) ok = false;
      if (ok && (re & POLLOUT)) ok = HandleWritable(conn);
      if (ok && (re & (POLLIN | POLLHUP))) ok = HandleReadable(conn);
      if (!ok) CloseConn(conn);
    }
  }

  for (auto& entry : conns_) {
    const std::shared_ptr<Conn>& conn = entry.second;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->closed = true;
    }
    ::close(conn->fd);
  }
  connection_count_.store(0, std::memory_order_relaxed);
  conns_.clear();
}

void EventLoop::AcceptNew() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN / transient — poll fires again
    SetNonBlocking(fd);
    auto conn = std::make_shared<Conn>(opts_.max_line_bytes);
    conn->fd = fd;
    conn->wake = wake_;
    conns_.emplace(fd, std::move(conn));
    connection_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool EventLoop::HandleReadable(const std::shared_ptr<Conn>& conn) {
  char chunk[64 << 10];
  ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
  if (n == 0) {
    conn->read_eof = true;  // half-close: finish pending replies first
    return true;
  }
  if (n < 0) {
    return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
  }
  conn->decoder.Feed(chunk, static_cast<size_t>(n));
  LineDecoder::Line line;
  bool kick = false;
  while (conn->decoder.Pop(&line)) {
    if (line.oversized) {
      // The content was discarded while streaming, so there is no id to
      // echo; one bounded error reply per blown line.
      Json reply = ErrorJson(Status::Error(
          StatusCode::kInvalidArgument,
          "request line exceeds max_line_bytes (" +
              std::to_string(opts_.max_line_bytes) + ")"));
      QueueReply(conn, reply.Dump(), /*finishes_request=*/false);
      continue;
    }
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->inbox.push_back(std::move(line.text));
    ++conn->outstanding;
    if (!conn->strand_active) {
      conn->strand_active = true;
      kick = true;
    }
  }
  if (kick) {
    // Only the loop thread submits reader tasks, and only while the pool
    // is alive — DrainStrand never re-submits itself (it loops instead),
    // so this cannot race pool teardown.
    std::shared_ptr<Conn> ref = conn;
    reader_pool_->Submit([this, ref] { DrainStrand(ref); });
  }
  return true;
}

bool EventLoop::HandleWritable(const std::shared_ptr<Conn>& conn) {
  std::lock_guard<std::mutex> lock(conn->mu);
  while (conn->write_off < conn->write_buf.size()) {
    ssize_t n = ::send(conn->fd, conn->write_buf.data() + conn->write_off,
                       conn->write_buf.size() - conn->write_off,
                       MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      conn->write_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    return false;
  }
  if (conn->write_off == conn->write_buf.size()) {
    conn->write_buf.clear();
    conn->write_off = 0;
  } else if (conn->write_off > (64u << 10)) {
    conn->write_buf.erase(0, conn->write_off);
    conn->write_off = 0;
  }
  return true;
}

void EventLoop::CloseConn(const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
  }
  ::close(conn->fd);
  conns_.erase(conn->fd);
  connection_count_.fetch_sub(1, std::memory_order_relaxed);
}

void EventLoop::QueueReply(const std::shared_ptr<Conn>& conn,
                           const std::string& line, bool finishes_request) {
  bool needs_wake;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (finishes_request && conn->outstanding > 0) --conn->outstanding;
    // Wake the loop only on the empty→non-empty transition (or when the
    // reply is dropped on a closed conn and only the counters moved):
    // while bytes are already pending the loop has POLLOUT armed and will
    // rebuild its view after the flush anyway. Under a reply burst this
    // collapses hundreds of wake+poll cycles into one.
    needs_wake = conn->closed || conn->write_buf.size() == conn->write_off;
    if (!conn->closed) {
      conn->write_buf.append(line);
      conn->write_buf.push_back('\n');
    }
  }
  if (needs_wake) conn->wake->Signal();
}

void EventLoop::DrainStrand(std::shared_ptr<Conn> conn) {
  for (;;) {
    std::string line;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->inbox.empty()) {
        conn->strand_active = false;
        return;
      }
      line = std::move(conn->inbox.front());
      conn->inbox.pop_front();
    }
    HandleLine(conn, std::move(line));
  }
}

void EventLoop::HandleLine(const std::shared_ptr<Conn>& conn,
                           std::string line) {
  // Decode is timed unconditionally (two clock reads per line, noise next
  // to the parse itself) because whether the request asked for a trace is
  // only known AFTER parsing.
  const auto decode_start = std::chrono::steady_clock::now();
  Result<Json> parsed = ParseJson(line);
  const double decode_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    decode_start)
          .count();
  if (!parsed.ok()) {
    QueueReply(conn, ErrorJson(parsed.status()).Dump(),
               /*finishes_request=*/true);
    return;
  }
  const Json& req = *parsed;
  // The optional "id" is echoed verbatim on EVERY reply to a parseable
  // request — op errors included — so pipelining clients never lose the
  // request/response correlation. Replies complete out of submission
  // order, so the id is the ONLY correlation there is.
  std::shared_ptr<Json> id;
  if (const Json* raw = req.Get("id")) id = std::make_shared<Json>(*raw);
  // Capturing conn (not `this`) keeps late worker-thread callbacks safe
  // even once the loop object is gone: QueueReply is conn-local and the
  // shared Wake no-ops after Stop().
  auto reply = [conn, id](Json value) {
    if (id != nullptr) value.MutableObject()["id"] = *id;
    QueueReply(conn, value.Dump(), /*finishes_request=*/true);
  };

  const Json* op = req.Get("op");
  if (op == nullptr || !op->is_string()) {
    reply(ErrorJson(Status::Error(StatusCode::kInvalidArgument,
                                  "request needs a string 'op'")));
    return;
  }
  auto tenant_of = [&req]() -> std::string {
    const Json* tenant = req.Get("tenant");
    return tenant != nullptr && tenant->is_string() ? tenant->AsString() : "";
  };
  const std::string verb = op->AsString();
  if (!verb_counters_.empty()) {
    auto counter = verb_counters_.find(verb);
    if (counter != verb_counters_.end()) counter->second->Add();
  }
  Server& server = *server_;
  Client client = server.client();

  if (verb == "load_tenant") {
    const Json* csv = req.Get("csv");
    const Json* fds = req.Get("fds");
    std::string tenant = tenant_of();
    if (tenant.empty() || csv == nullptr || !csv->is_string() ||
        fds == nullptr || !fds->is_array()) {
      reply(ErrorJson(
          Status::Error(StatusCode::kInvalidArgument,
                        "load_tenant needs 'tenant', 'csv' and 'fds'")));
      return;
    }
    std::vector<std::string> fd_texts;
    for (const Json& fd : fds->AsArray()) {
      if (!fd.is_string()) {
        reply(ErrorJson(Status::Error(StatusCode::kInvalidArgument,
                                      "'fds' must be strings")));
        return;
      }
      fd_texts.push_back(fd.AsString());
    }
    const Json* quota_rate = req.Get("quota_rate");
    const Json* quota_burst = req.Get("quota_burst");
    if ((quota_rate != nullptr && !quota_rate->is_number()) ||
        (quota_burst != nullptr && !quota_burst->is_number())) {
      reply(ErrorJson(
          Status::Error(StatusCode::kInvalidArgument,
                        "'quota_rate' and 'quota_burst' must be numbers")));
      return;
    }
    Status status =
        server.LoadCsvTenant(tenant, csv->AsString(), std::move(fd_texts));
    if (!status.ok()) {
      reply(ErrorJson(status));
      return;
    }
    if (quota_rate != nullptr || quota_burst != nullptr) {
      QuotaLimits limits;
      limits.rate = quota_rate != nullptr ? quota_rate->AsNumber() : 0.0;
      limits.burst = quota_burst != nullptr ? quota_burst->AsNumber() : 0.0;
      server.SetTenantQuota(tenant, limits);
    }
    Json::Object obj;
    obj["ok"] = Json(true);
    obj["tenant"] = Json(tenant);
    reply(Json(std::move(obj)));
    return;
  }

  if (verb == "repair") {
    Result<RepairRequest> repair = RepairRequestFromJson(req);
    if (!repair.ok()) {
      reply(ErrorJson(repair.status()));
      return;
    }
    std::string tenant = tenant_of();
    Server* srv = server_;
    std::shared_ptr<obs::RequestTrace> trace = repair->trace;
    if (trace != nullptr) {
      trace->root.StartChild("decode")->set_seconds(decode_seconds);
    }
    client.RepairAsync(
        tenant, *repair,
        [reply, srv, tenant, trace](Result<RepairResponse> response) {
          // Attached to errors too: a traced request that failed still
          // tells the caller where its time went. The untraced path is
          // untouched — replies stay byte-identical.
          auto with_trace = [&trace](Json value) {
            if (trace != nullptr) {
              trace->root.Finish();
              value.MutableObject()["trace"] = ToJson(trace->root);
            }
            return value;
          };
          if (!response.ok()) {
            reply(with_trace(ErrorJson(response.status())));
            return;
          }
          // The schema reference is safe: the tenant resolved (the
          // repair ran).
          Result<std::shared_ptr<Session>> session = srv->tenants().Get(tenant);
          if (!session.ok()) {
            reply(with_trace(ErrorJson(session.status())));
            return;
          }
          reply(with_trace(ToJson(*response, (*session)->schema())));
        });
    return;
  }

  if (verb == "sweep") {
    const Json* requests = req.Get("requests");
    if (requests == nullptr || !requests->is_array() ||
        requests->AsArray().empty()) {
      reply(ErrorJson(
          Status::Error(StatusCode::kInvalidArgument,
                        "sweep needs a non-empty 'requests' array")));
      return;
    }
    std::vector<RepairRequest> batch;
    for (const Json& r : requests->AsArray()) {
      Result<RepairRequest> repair = RepairRequestFromJson(r);
      if (!repair.ok()) {
        reply(ErrorJson(repair.status()));
        return;
      }
      batch.push_back(*repair);
    }
    std::string tenant = tenant_of();
    Server* srv = server_;
    client.SweepAsync(
        tenant, std::move(batch),
        [reply, srv, tenant](std::vector<Result<RepairResponse>> replies) {
          Result<std::shared_ptr<Session>> session = srv->tenants().Get(tenant);
          Json::Array results;
          for (const Result<RepairResponse>& r : replies) {
            if (r.ok() && session.ok()) {
              results.push_back(ToJson(*r, (*session)->schema()));
            } else {
              results.push_back(
                  ErrorJson(r.ok() ? session.status() : r.status()));
            }
          }
          Json::Object obj;
          obj["ok"] = Json(true);
          obj["results"] = Json(std::move(results));
          reply(Json(std::move(obj)));
        });
    return;
  }

  if (verb == "apply_delta") {
    std::string tenant = tenant_of();
    // The schema is needed to parse the delta's values, so the tenant must
    // resolve first (this is what makes lazy tenants load on first use).
    Result<std::shared_ptr<Session>> session = server.tenants().Get(tenant);
    if (!session.ok()) {
      reply(ErrorJson(session.status()));
      return;
    }
    Result<DeltaBatch> delta = DeltaBatchFromJson(req, (*session)->schema());
    if (!delta.ok()) {
      reply(ErrorJson(delta.status()));
      return;
    }
    client.ApplyAsync(tenant, std::move(*delta),
                      [reply](Result<ApplyStats> stats) {
                        if (!stats.ok()) {
                          reply(ErrorJson(stats.status()));
                          return;
                        }
                        reply(ToJson(*stats));
                      });
    return;
  }

  if (verb == "stats") {
    const Json* tenant = req.Get("tenant");
    if (tenant != nullptr && tenant->is_string()) {
      Result<TenantStats> stats = server.TenantStatsFor(tenant->AsString());
      if (!stats.ok()) {
        reply(ErrorJson(stats.status()));
        return;
      }
      reply(ToJson(*stats));
      return;
    }
    Json stats = ToJson(server.Stats());
    Json::Array tenants;
    for (const std::string& name : server.TenantNames()) {
      tenants.push_back(Json(name));
    }
    stats.MutableObject()["tenants"] = Json(std::move(tenants));
    reply(stats);
    return;
  }

  if (verb == "load_snapshot_tenant") {
    const Json* snapshot = req.Get("snapshot");
    std::string tenant = tenant_of();
    if (tenant.empty() || snapshot == nullptr || !snapshot->is_string()) {
      reply(ErrorJson(Status::Error(
          StatusCode::kInvalidArgument,
          "load_snapshot_tenant needs 'tenant' and 'snapshot'")));
      return;
    }
    Status status = server.LoadSnapshotTenant(tenant, snapshot->AsString());
    if (!status.ok()) {
      reply(ErrorJson(status));
      return;
    }
    Json::Object obj;
    obj["ok"] = Json(true);
    obj["tenant"] = Json(tenant);
    reply(Json(std::move(obj)));
    return;
  }

  if (verb == "save_snapshot") {
    const Json* path = req.Get("path");
    std::string tenant = tenant_of();
    if (tenant.empty() || path == nullptr || !path->is_string()) {
      reply(ErrorJson(
          Status::Error(StatusCode::kInvalidArgument,
                        "save_snapshot needs 'tenant' and 'path'")));
      return;
    }
    client.SaveSnapshotAsync(tenant, path->AsString(),
                             [reply, tenant](Result<std::string> saved) {
                               if (!saved.ok()) {
                                 reply(ErrorJson(saved.status()));
                                 return;
                               }
                               Json::Object obj;
                               obj["ok"] = Json(true);
                               obj["tenant"] = Json(tenant);
                               obj["path"] = Json(*saved);
                               reply(Json(std::move(obj)));
                             });
    return;
  }

  if (verb == "unload_tenant") {
    std::string tenant = tenant_of();
    if (tenant.empty()) {
      reply(ErrorJson(Status::Error(StatusCode::kInvalidArgument,
                                    "unload_tenant needs 'tenant'")));
      return;
    }
    client.UnloadTenantAsync(tenant, [reply, tenant](Result<bool> unloaded) {
      if (!unloaded.ok()) {
        reply(ErrorJson(unloaded.status()));
        return;
      }
      Json::Object obj;
      obj["ok"] = Json(true);
      obj["tenant"] = Json(tenant);
      obj["unloaded"] = Json(true);
      reply(Json(std::move(obj)));
    });
    return;
  }

  if (verb == "metrics") {
    obs::MetricsRegistry* registry = server.metrics();
    if (registry == nullptr) {
      reply(ErrorJson(Status::Error(StatusCode::kInvalidArgument,
                                    "observability is disabled")));
      return;
    }
    Json::Object obj;
    obj["ok"] = Json(true);
    obj["series"] = Json(static_cast<uint64_t>(registry->SeriesCount()));
    obj["text"] = Json(registry->ExpositionText());
    reply(Json(std::move(obj)));
    return;
  }

  if (verb == "dump_recent") {
    size_t limit = 0;
    if (const Json* raw = req.Get("limit")) {
      if (!raw->is_number() || raw->AsInt() < 0) {
        reply(ErrorJson(
            Status::Error(StatusCode::kInvalidArgument,
                          "'limit' must be a non-negative integer")));
        return;
      }
      limit = static_cast<size_t>(raw->AsInt());
    }
    Json::Array records;
    for (const obs::FlightRecord& record : server.RecentRequests(limit)) {
      records.push_back(ToJson(record));
    }
    Json::Object obj;
    obj["ok"] = Json(true);
    obj["records"] = Json(std::move(records));
    reply(Json(std::move(obj)));
    return;
  }

  if (verb == "shutdown") {
    Json::Object obj;
    obj["ok"] = Json(true);
    obj["stopping"] = Json(true);
    reply(Json(std::move(obj)));
    // The reply is already queued ahead of the wake, so it reaches the
    // wire during Stop()'s drain before the connection closes.
    RequestShutdown();
    return;
  }

  reply(ErrorJson(Status::Error(StatusCode::kInvalidArgument,
                                "unknown op '" + verb + "'")));
}

}  // namespace retrust::service
