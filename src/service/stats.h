// Observability types of the service layer: the ServerStats / TenantStats
// snapshots the in-process Client and the `stats` wire verb report. The
// latency histogram they are built from lives in src/obs/histogram.h,
// shared with the process-wide metrics registry; the alias below keeps
// service call sites unchanged.

#ifndef RETRUST_SERVICE_STATS_H_
#define RETRUST_SERVICE_STATS_H_

#include <cstdint>
#include <string>

#include "src/api/session.h"
#include "src/obs/histogram.h"

namespace retrust::service {

using LatencyHistogram = obs::LatencyHistogram;

/// One snapshot of the server's request-flow counters. An admitted
/// request lands in exactly one terminal counter: expired_in_queue,
/// cancelled, or completed (dispatched to a worker and replied —
/// including tenant lazy-open failures and verb errors). Rejected_*
/// count requests turned away at admission, before enqueue; only
/// synchronous pre-admission failures (unknown tenant, stopped server,
/// non-null user cancel token) complete their future outside every
/// terminal counter, so submitted >= rejected() + terminal counters.
struct ServerStats {
  size_t queue_depth = 0;     ///< requests waiting right now
  size_t in_flight = 0;       ///< requests executing right now
  int workers = 0;

  uint64_t submitted = 0;
  uint64_t rejected_queue_full = 0;  ///< kOverloaded: global depth bound
  uint64_t rejected_tenant_cap = 0;  ///< kOverloaded: per-tenant in-flight cap
  uint64_t rejected_deadline = 0;    ///< pre-expired or infeasible deadline
  uint64_t rejected_quota = 0;       ///< kOverloaded: token bucket exhausted
  uint64_t expired_in_queue = 0;     ///< deadline passed while waiting
  uint64_t cancelled = 0;            ///< cancelled before execution started
  uint64_t completed = 0;            ///< executed to a reply

  double p50_latency_seconds = 0.0;  ///< submit -> reply, executed requests
  double p99_latency_seconds = 0.0;

  // End-to-end latency split into its two phases, so overload diagnosis
  // reads straight off the stats verb: a high queue-wait p99 with a flat
  // service p99 means not enough workers (or a flooding tenant); a high
  // service p99 means the requests themselves got slower.
  double p50_queue_wait_seconds = 0.0;  ///< submit -> execution start
  double p99_queue_wait_seconds = 0.0;
  double p50_service_seconds = 0.0;     ///< execution start -> reply built
  double p99_service_seconds = 0.0;

  // Search-engine aggregates across every repair/search/sweep executed by
  // this server (src/search/engine.cc counters, summed per request).
  uint64_t search_expansions = 0;
  uint64_t search_lb_prunes = 0;
  uint64_t search_incumbent_improvements = 0;

  uint64_t rejected() const {
    return rejected_queue_full + rejected_tenant_cap + rejected_deadline +
           rejected_quota;
  }
};

/// Per-tenant snapshot: queue/execution state plus the Session-level
/// observability (data version, root δP, context cache with per-context
/// fingerprints/ages/hit counts) the `stats` wire verb reports.
struct TenantStats {
  std::string name;
  bool loaded = false;  ///< lazy CSV tenants stay unloaded until first use
  size_t queued = 0;
  size_t executing = 0;
  uint64_t completed = 0;

  // Valid only when loaded:
  uint64_t data_version = 0;
  int64_t root_delta_p = 0;
  int num_tuples = 0;
  ContextCacheStats cache;
};

}  // namespace retrust::service

#endif  // RETRUST_SERVICE_STATS_H_
