// Observability types of the service layer: a fixed log-bucketed latency
// histogram plus the ServerStats / TenantStats snapshots the in-process
// Client and the `stats` wire verb report.
//
// The histogram trades precision for a fixed footprint: 64 geometric
// buckets spanning [1 µs, ~200 s] (ratio ≈ 1.38), so recording is O(1),
// snapshots are cheap to copy, and percentiles are read without touching
// the raw samples. Callers provide locking (the Server records under its
// stats mutex).

#ifndef RETRUST_SERVICE_STATS_H_
#define RETRUST_SERVICE_STATS_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <string>

#include "src/api/session.h"

namespace retrust::service {

/// Fixed-size latency histogram; Percentile reports a bucket upper bound,
/// so p50/p99 are conservative (never under-report).
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(double seconds) {
    ++counts_[BucketOf(seconds)];
    ++total_;
  }

  /// Latency at quantile `q` in [0, 1] (0 when nothing was recorded).
  double Percentile(double q) const {
    if (total_ == 0) return 0.0;
    uint64_t want = static_cast<uint64_t>(std::ceil(q * total_));
    if (want < 1) want = 1;
    uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += counts_[b];
      if (seen >= want) return UpperBound(b);
    }
    return UpperBound(kBuckets - 1);
  }

  uint64_t count() const { return total_; }

 private:
  static constexpr double kMinSeconds = 1e-6;
  static constexpr double kRatio = 1.38;  // 1e-6 * 1.38^63 ≈ 6e2 s

  static int BucketOf(double seconds) {
    if (!(seconds > kMinSeconds)) return 0;  // also catches NaN/negative
    int b = static_cast<int>(std::log(seconds / kMinSeconds) /
                             std::log(kRatio)) +
            1;
    return b >= kBuckets ? kBuckets - 1 : b;
  }

  static double UpperBound(int bucket) {
    return kMinSeconds * std::pow(kRatio, bucket);
  }

  std::array<uint64_t, kBuckets> counts_{};
  uint64_t total_ = 0;
};

/// One snapshot of the server's request-flow counters. An admitted
/// request lands in exactly one terminal counter: expired_in_queue,
/// cancelled, or completed (dispatched to a worker and replied —
/// including tenant lazy-open failures and verb errors). Rejected_*
/// count requests turned away at admission, before enqueue; only
/// synchronous pre-admission failures (unknown tenant, stopped server,
/// non-null user cancel token) complete their future outside every
/// terminal counter, so submitted >= rejected() + terminal counters.
struct ServerStats {
  size_t queue_depth = 0;     ///< requests waiting right now
  size_t in_flight = 0;       ///< requests executing right now
  int workers = 0;

  uint64_t submitted = 0;
  uint64_t rejected_queue_full = 0;  ///< kOverloaded: global depth bound
  uint64_t rejected_tenant_cap = 0;  ///< kOverloaded: per-tenant in-flight cap
  uint64_t rejected_deadline = 0;    ///< pre-expired or infeasible deadline
  uint64_t rejected_quota = 0;       ///< kOverloaded: token bucket exhausted
  uint64_t expired_in_queue = 0;     ///< deadline passed while waiting
  uint64_t cancelled = 0;            ///< cancelled before execution started
  uint64_t completed = 0;            ///< executed to a reply

  double p50_latency_seconds = 0.0;  ///< submit -> reply, executed requests
  double p99_latency_seconds = 0.0;

  // End-to-end latency split into its two phases, so overload diagnosis
  // reads straight off the stats verb: a high queue-wait p99 with a flat
  // service p99 means not enough workers (or a flooding tenant); a high
  // service p99 means the requests themselves got slower.
  double p50_queue_wait_seconds = 0.0;  ///< submit -> execution start
  double p99_queue_wait_seconds = 0.0;
  double p50_service_seconds = 0.0;     ///< execution start -> reply built
  double p99_service_seconds = 0.0;

  // Search-engine aggregates across every repair/search/sweep executed by
  // this server (src/search/engine.cc counters, summed per request).
  uint64_t search_expansions = 0;
  uint64_t search_lb_prunes = 0;
  uint64_t search_incumbent_improvements = 0;

  uint64_t rejected() const {
    return rejected_queue_full + rejected_tenant_cap + rejected_deadline +
           rejected_quota;
  }
};

/// Per-tenant snapshot: queue/execution state plus the Session-level
/// observability (data version, root δP, context cache with per-context
/// fingerprints/ages/hit counts) the `stats` wire verb reports.
struct TenantStats {
  std::string name;
  bool loaded = false;  ///< lazy CSV tenants stay unloaded until first use
  size_t queued = 0;
  size_t executing = 0;
  uint64_t completed = 0;

  // Valid only when loaded:
  uint64_t data_version = 0;
  int64_t root_delta_p = 0;
  int num_tuples = 0;
  ContextCacheStats cache;
};

}  // namespace retrust::service

#endif  // RETRUST_SERVICE_STATS_H_
