#include "src/service/tenant_registry.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace retrust::service {

namespace {

/// Coarse resident-memory estimate of a loaded session: the context
/// cache's edge-weighted estimate plus the dataset itself (encoded codes +
/// decoded values; 24 bytes/cell covers both sides for typical data).
/// Precision is not the point — the budget only needs relative ordering
/// between big and small tenants.
size_t EstimateSessionBytes(Session& session) {
  const size_t cells = static_cast<size_t>(session.NumTuples()) *
                       static_cast<size_t>(session.schema().NumAttrs());
  return session.CachedContexts().bytes_estimate + cells * 24;
}

}  // namespace

SessionOptions TenantRegistry::WithPool(
    std::optional<SessionOptions> opts) const {
  SessionOptions resolved = opts.has_value() ? std::move(*opts) : defaults_;
  resolved.shared_pool = shared_pool_;
  return resolved;
}

Status TenantRegistry::Add(const std::string& name, Instance data,
                           const std::vector<std::string>& fd_texts,
                           std::optional<SessionOptions> opts) {
  {
    // Reject duplicates before paying the O(n²) Session build; the
    // post-build try_emplace still settles a registration race.
    std::lock_guard<std::mutex> lock(mu_);
    if (tenants_.count(name) != 0) {
      return Status::Error(StatusCode::kInvalidArgument,
                           "tenant '" + name + "' already registered");
    }
  }
  Result<Session> session =
      Session::Open(std::move(data), fd_texts, WithPool(std::move(opts)));
  if (!session.ok()) return session.status();
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = tenants_.try_emplace(name);
  if (!inserted) {
    return Status::Error(StatusCode::kInvalidArgument,
                         "tenant '" + name + "' already registered");
  }
  it->second.session = std::make_shared<Session>(std::move(*session));
  it->second.spec_version = it->second.session->DataVersion();
  it->second.last_used = ++use_clock_;
  it->second.bytes = EstimateSessionBytes(*it->second.session);
  return Status::Ok();
}

Status TenantRegistry::AddCsv(const std::string& name, std::string csv_path,
                              std::vector<std::string> fd_texts,
                              std::optional<SessionOptions> opts) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = tenants_.try_emplace(name);
  if (!inserted) {
    return Status::Error(StatusCode::kInvalidArgument,
                         "tenant '" + name + "' already registered");
  }
  it->second.csv_path = std::move(csv_path);
  it->second.fd_texts = std::move(fd_texts);
  it->second.opts = WithPool(std::move(opts));
  return Status::Ok();
}

Status TenantRegistry::AddSnapshot(const std::string& name,
                                   std::string snapshot_path,
                                   std::optional<SessionOptions> opts) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = tenants_.try_emplace(name);
  if (!inserted) {
    return Status::Error(StatusCode::kInvalidArgument,
                         "tenant '" + name + "' already registered");
  }
  it->second.snapshot_path = std::move(snapshot_path);
  it->second.opts = WithPool(std::move(opts));
  return Status::Ok();
}

bool TenantRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.count(name) != 0;
}

std::vector<std::string> TenantRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) names.push_back(name);
  return names;
}

Result<std::shared_ptr<Session>> TenantRegistry::OpenFromSpec(Tenant* tenant) {
  // Snapshot wins over CSV: when both are set the snapshot is the newer
  // state (the registry only records one via SaveSnapshot/auto-save).
  Result<Session> session =
      !tenant->snapshot_path.empty()
          ? Session::OpenSnapshot(tenant->snapshot_path, tenant->opts)
          : Session::OpenCsv(tenant->csv_path, tenant->fd_texts,
                             tenant->opts);
  if (!session.ok()) return session.status();  // spec stays; next Get retries
  auto shared = std::make_shared<Session>(std::move(*session));
  std::lock_guard<std::mutex> lock(mu_);
  tenant->session = shared;
  tenant->spec_version = shared->DataVersion();
  tenant->last_used = ++use_clock_;
  tenant->bytes = EstimateSessionBytes(*shared);
  return shared;
}

Result<std::shared_ptr<Session>> TenantRegistry::Get(const std::string& name) {
  Tenant* tenant = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(name);
    if (it == tenants_.end()) {
      return Status::Error(StatusCode::kInvalidArgument,
                           "unknown tenant '" + name + "'");
    }
    if (it->second.session != nullptr) {
      it->second.last_used = ++use_clock_;
      return it->second.session;
    }
    tenant = &it->second;  // stable: tenants are never erased
  }
  if (tenant->csv_path.empty() && tenant->snapshot_path.empty()) {
    // An eager tenant can only reach here unloaded with no spec — which
    // Unload refuses to produce; this guards registry bugs, not users.
    return Status::Error(StatusCode::kInternal,
                         "tenant '" + name + "' has no reload spec");
  }
  // Lazy open under the tenant's own mutex, so a slow CSV read blocks only
  // requests for THIS tenant. The double-check covers the loser of a race.
  std::shared_ptr<Session> shared;
  {
    std::lock_guard<std::mutex> open_lock(*tenant->open_mu);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (tenant->session != nullptr) {
        tenant->last_used = ++use_clock_;
        return tenant->session;
      }
    }
    Result<std::shared_ptr<Session>> opened = OpenFromSpec(tenant);
    if (!opened.ok()) return opened;
    shared = std::move(*opened);
  }
  // Budget enforcement happens outside this tenant's mutex (Unload takes
  // the victim's); the fresh tenant itself is exempt this round.
  EnforceBudget(name);
  return shared;
}

Status TenantRegistry::SaveSnapshot(const std::string& name,
                                    const std::string& path) {
  Result<std::shared_ptr<Session>> session = Get(name);
  if (!session.ok()) return session.status();
  Status saved = (*session)->SaveSnapshot(path);
  if (!saved.ok()) return saved;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    return Status::Error(StatusCode::kInternal,
                         "tenant '" + name + "' vanished during save");
  }
  it->second.snapshot_path = path;
  it->second.spec_version = (*session)->DataVersion();
  return Status::Ok();
}

Status TenantRegistry::Unload(const std::string& name, int tolerated_pins) {
  // A just-finished request's worker may still hold its shared_ptr for a
  // few microseconds after the reply; brief bounded retries make an
  // explicit unload deterministic instead of spuriously "busy".
  return UnloadImpl(name, tolerated_pins, /*busy_retries=*/50);
}

Status TenantRegistry::UnloadImpl(const std::string& name, int tolerated_pins,
                                  int busy_retries) {
  Tenant* tenant = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(name);
    if (it == tenants_.end()) {
      return Status::Error(StatusCode::kInvalidArgument,
                           "unknown tenant '" + name + "'");
    }
    tenant = &it->second;
  }
  // The tenant mutex excludes a concurrent lazy open/reload while we
  // decide; executing requests are not excluded — they hold the session
  // shared_ptr, which the busy check below observes.
  std::lock_guard<std::mutex> open_lock(*tenant->open_mu);
  std::shared_ptr<Session> session;
  bool has_spec = false;
  uint64_t spec_version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    session = tenant->session;
    has_spec = !tenant->csv_path.empty() || !tenant->snapshot_path.empty();
    spec_version = tenant->spec_version;
  }
  if (session == nullptr) return Status::Ok();  // already unloaded
  if (!has_spec && snapshot_dir_.empty()) {
    return Status::Error(
        StatusCode::kInvalidArgument,
        "tenant '" + name +
            "' has no reload spec (eager tenant): save a snapshot first");
  }
  const bool dirty = session->DataVersion() != spec_version || !has_spec;
  if (dirty) {
    if (snapshot_dir_.empty()) {
      return Status::Error(
          StatusCode::kInvalidArgument,
          "tenant '" + name +
              "' has deltas its reload spec cannot reproduce: save a "
              "snapshot first (or configure a snapshot_dir)");
    }
    const std::string path = snapshot_dir_ + "/" + name + ".snap";
    Status saved = session->SaveSnapshot(path);
    if (!saved.ok()) return saved;
    std::lock_guard<std::mutex> lock(mu_);
    tenant->snapshot_path = path;
    tenant->spec_version = session->DataVersion();
  }
  // Busy check at the moment of release: the registry's pointer plus our
  // local copy account for 2, `tolerated_pins` covers references the
  // caller knowingly holds; anything above means an in-flight request
  // (Server::WorkerLoop holds the session while executing).
  const long allowed = 2 + tolerated_pins;
  for (int attempt = 0;; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (tenant->session.use_count() <= allowed) {
        tenant->session.reset();
        tenant->bytes = 0;
        return Status::Ok();
      }
    }
    if (attempt >= busy_retries) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return Status::Error(StatusCode::kOverloaded,
                       "tenant '" + name +
                           "' has requests executing; retry when idle");
}

void TenantRegistry::EnforceBudget(const std::string& keep) {
  if (max_loaded_bytes_ == 0) return;
  std::vector<std::string> tried;
  while (true) {
    std::string victim;
    {
      std::lock_guard<std::mutex> lock(mu_);
      size_t total = 0;
      for (const auto& [n, t] : tenants_) total += t.bytes;
      if (total <= max_loaded_bytes_) return;
      uint64_t victim_age = 0;
      for (const auto& [n, t] : tenants_) {
        if (t.session == nullptr || n == keep) continue;
        if (std::find(tried.begin(), tried.end(), n) != tried.end()) continue;
        // Skip visibly busy tenants (an executing request holds a copy);
        // Unload re-checks at release time anyway.
        if (t.session.use_count() > 1) continue;
        if (victim.empty() || t.last_used < victim_age) {
          victim = n;
          victim_age = t.last_used;
        }
      }
      if (victim.empty()) return;  // nothing idle left to shed
    }
    tried.push_back(victim);
    // Failure (busy race, dirty without snapshot_dir, save error) just
    // moves on to the next candidate; the budget is best-effort, never
    // worth failing (or stalling) a request over — hence zero busy
    // retries here.
    (void)UnloadImpl(victim, /*tolerated_pins=*/0, /*busy_retries=*/0);
  }
}

Result<TenantStats> TenantRegistry::StatsFor(const std::string& name) const {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(name);
    if (it == tenants_.end()) {
      return Status::Error(StatusCode::kInvalidArgument,
                           "unknown tenant '" + name + "'");
    }
    session = it->second.session;
  }
  TenantStats stats;
  stats.name = name;
  if (session != nullptr) {
    stats.loaded = true;
    stats.data_version = session->DataVersion();
    stats.root_delta_p = session->RootDeltaP();
    stats.num_tuples = session->NumTuples();
    stats.cache = session->CachedContexts();
  }
  return stats;
}

size_t TenantRegistry::LoadedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [name, tenant] : tenants_) total += tenant.bytes;
  return total;
}

}  // namespace retrust::service
