#include "src/service/tenant_registry.h"

#include <utility>

namespace retrust::service {

SessionOptions TenantRegistry::WithPool(
    std::optional<SessionOptions> opts) const {
  SessionOptions resolved = opts.has_value() ? std::move(*opts) : defaults_;
  resolved.shared_pool = shared_pool_;
  return resolved;
}

Status TenantRegistry::Add(const std::string& name, Instance data,
                           const std::vector<std::string>& fd_texts,
                           std::optional<SessionOptions> opts) {
  {
    // Reject duplicates before paying the O(n²) Session build; the
    // post-build try_emplace still settles a registration race.
    std::lock_guard<std::mutex> lock(mu_);
    if (tenants_.count(name) != 0) {
      return Status::Error(StatusCode::kInvalidArgument,
                           "tenant '" + name + "' already registered");
    }
  }
  Result<Session> session =
      Session::Open(std::move(data), fd_texts, WithPool(std::move(opts)));
  if (!session.ok()) return session.status();
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = tenants_.try_emplace(name);
  if (!inserted) {
    return Status::Error(StatusCode::kInvalidArgument,
                         "tenant '" + name + "' already registered");
  }
  it->second.session = std::make_shared<Session>(std::move(*session));
  return Status::Ok();
}

Status TenantRegistry::AddCsv(const std::string& name, std::string csv_path,
                              std::vector<std::string> fd_texts,
                              std::optional<SessionOptions> opts) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = tenants_.try_emplace(name);
  if (!inserted) {
    return Status::Error(StatusCode::kInvalidArgument,
                         "tenant '" + name + "' already registered");
  }
  it->second.csv_path = std::move(csv_path);
  it->second.fd_texts = std::move(fd_texts);
  it->second.opts = WithPool(std::move(opts));
  return Status::Ok();
}

bool TenantRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.count(name) != 0;
}

std::vector<std::string> TenantRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) names.push_back(name);
  return names;
}

Result<std::shared_ptr<Session>> TenantRegistry::Get(const std::string& name) {
  Tenant* tenant = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(name);
    if (it == tenants_.end()) {
      return Status::Error(StatusCode::kInvalidArgument,
                           "unknown tenant '" + name + "'");
    }
    if (it->second.session != nullptr) return it->second.session;
    tenant = &it->second;  // stable: tenants are never erased
  }
  // Lazy open under the tenant's own mutex, so a slow CSV read blocks only
  // requests for THIS tenant. The double-check covers the loser of a race.
  std::lock_guard<std::mutex> open_lock(*tenant->open_mu);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tenant->session != nullptr) return tenant->session;
  }
  Result<Session> session =
      Session::OpenCsv(tenant->csv_path, tenant->fd_texts, tenant->opts);
  if (!session.ok()) return session.status();  // spec stays; next Get retries
  auto shared = std::make_shared<Session>(std::move(*session));
  std::lock_guard<std::mutex> lock(mu_);
  tenant->session = shared;
  tenant->csv_path.clear();
  return shared;
}

Result<TenantStats> TenantRegistry::StatsFor(const std::string& name) const {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(name);
    if (it == tenants_.end()) {
      return Status::Error(StatusCode::kInvalidArgument,
                           "unknown tenant '" + name + "'");
    }
    session = it->second.session;
  }
  TenantStats stats;
  stats.name = name;
  if (session != nullptr) {
    stats.loaded = true;
    stats.data_version = session->DataVersion();
    stats.root_delta_p = session->RootDeltaP();
    stats.num_tuples = session->NumTuples();
    stats.cache = session->CachedContexts();
  }
  return stats;
}

}  // namespace retrust::service
