#include "src/service/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/service/event_loop.h"  // LineDecoder

namespace retrust::service {

namespace {

Status IoError(const std::string& what) {
  return Status::Error(StatusCode::kIoError,
                       what + ": " + std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<WireClient>> WireClient::Connect(int port) {
  return Connect(port, Options());
}

Result<std::unique_ptr<WireClient>> WireClient::Connect(int port,
                                                        Options opts) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return IoError("socket");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  // Nonblocking connect bounded by the timeout: a dead endpoint must
  // yield kIoError, never hang the caller in connect(2).
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    Status status = IoError("connect");
    ::close(fd);
    return status;
  }
  if (rc != 0) {
    int timeout_ms =
        static_cast<int>(opts.connect_timeout_seconds * 1000.0 + 0.5);
    pollfd pfd{fd, POLLOUT, 0};
    for (;;) {
      int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready < 0 && errno == EINTR) continue;
      if (ready <= 0) {
        ::close(fd);
        return Status::Error(StatusCode::kIoError,
                             "connect to 127.0.0.1:" + std::to_string(port) +
                                 " timed out");
      }
      break;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      return Status::Error(StatusCode::kIoError,
                           std::string("connect: ") + std::strerror(err));
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking for the reader/writer

  return std::unique_ptr<WireClient>(new WireClient(fd, std::move(opts)));
}

WireClient::WireClient(int fd, Options opts)
    : opts_(std::move(opts)), fd_(fd) {
  reader_ = std::thread(&WireClient::ReaderThread, this);
}

WireClient::~WireClient() {
  Close();
  if (reader_.joinable()) reader_.join();
  ::close(fd_);
}

void WireClient::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    closed_ = true;
  }
  // Wakes the reader out of recv(); it drains already-received replies
  // and then fails whatever is still pending.
  ::shutdown(fd_, SHUT_WR);
}

std::future<Result<Json>> WireClient::Call(Json request) {
  std::promise<Result<Json>> promise;
  std::future<Result<Json>> future = promise.get_future();

  std::string key;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      promise.set_value(
          Status::Error(StatusCode::kIoError, "client is closed"));
      return future;
    }
    if (const Json* id = request.Get("id")) {
      key = id->Dump();
    } else {
      request.MutableObject()["id"] = Json(next_id_++);
      key = request.Get("id")->Dump();
    }
    if (pending_.count(key) != 0) {
      promise.set_value(Status::Error(
          StatusCode::kInvalidArgument,
          "a request with id " + key + " is already in flight"));
      return future;
    }
    pending_.emplace(key, std::move(promise));
  }

  std::string line = request.Dump();
  line.push_back('\n');
  bool sent = true;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    size_t off = 0;
    while (off < line.size()) {
      ssize_t n =
          ::send(fd_, line.data() + off, line.size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<size_t>(n);  // partial writes just continue
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      sent = false;
      break;
    }
  }
  if (!sent) {
    FailAll(Status::Error(StatusCode::kIoError,
                          "connection lost while sending request"));
  }
  return future;
}

void WireClient::ReaderThread() {
  LineDecoder decoder(opts_.max_line_bytes);
  char chunk[64 << 10];
  for (;;) {
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      // Server closed (or the socket died) — every waiting caller gets a
      // clean kIoError instead of a hang.
      FailAll(Status::Error(StatusCode::kIoError,
                            "server closed the connection"));
      return;
    }
    decoder.Feed(chunk, static_cast<size_t>(n));
    LineDecoder::Line line;
    while (decoder.Pop(&line)) {
      if (line.oversized) {
        FailAll(Status::Error(StatusCode::kIoError,
                              "oversized reply frame from server"));
        return;
      }
      Result<Json> reply = ParseJson(line.text);
      if (!reply.ok()) continue;  // not ours to crash on; drop the frame
      const Json* id = reply->Get("id");
      if (id == nullptr) continue;  // unsolicited (e.g. oversized-line error)
      std::promise<Result<Json>> promise;
      bool found = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = pending_.find(id->Dump());
        if (it != pending_.end()) {
          promise = std::move(it->second);
          pending_.erase(it);
          found = true;
        }
      }
      if (found) promise.set_value(std::move(*reply));
    }
  }
}

void WireClient::FailAll(const Status& status) {
  std::map<std::string, std::promise<Result<Json>>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    orphaned.swap(pending_);
  }
  for (auto& entry : orphaned) {
    entry.second.set_value(status);
  }
}

}  // namespace retrust::service
