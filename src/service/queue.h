// The bounded MPMC request queue of the service layer, with two scheduling
// guarantees layered on top of plain FIFO:
//
//   * FAIRNESS ACROSS TENANTS — requests live in per-tenant FIFO lanes and
//     workers drain lanes in round-robin order, so a tenant that floods
//     the queue delays only itself: every other tenant still gets one
//     dispatch per round. (Admission's per-tenant cap bounds how much of
//     the shared queue one tenant can occupy in the first place.)
//
//   * SEQUENTIAL CONSISTENCY PER TENANT — within a lane only the head is
//     dispatchable, reads (repair/search/sweep) may execute concurrently
//     with each other, and a write (apply_delta) is a barrier: it waits
//     until the tenant's in-flight requests drain and blocks the lane
//     while it runs. Combined with Session's shared/exclusive snapshot
//     lock this makes every tenant's response stream deterministic — equal
//     to serial per-Session execution in submission order — for ANY worker
//     count, which is the service-level analogue of the exec/ determinism
//     contract (and what tests/service_oracle_test.cc enforces).
//
// Admission control runs inside Push under the queue lock, so the
// depth/cap check and the enqueue are atomic.

#ifndef RETRUST_SERVICE_QUEUE_H_
#define RETRUST_SERVICE_QUEUE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/api/session.h"
#include "src/exec/cancel.h"
#include "src/obs/trace.h"
#include "src/service/admission.h"

namespace retrust::service {

/// One queued unit of work, type-erased over its verb so the queue and the
/// workers never switch on request kinds: `execute` runs the verb against
/// the tenant's session and completes the caller's future; `fail`
/// completes it with a status without touching any session (cancellation,
/// deadline expiry in queue, shutdown, tenant resolution failure).
struct PendingRequest {
  uint64_t id = 0;
  std::string tenant;
  bool is_write = false;  ///< apply_delta: the per-tenant barrier verb

  /// Verb name for the flight recorder ("repair", "sweep", ...). Always a
  /// string literal, so a plain pointer is safe.
  const char* verb = "";

  /// Per-request trace, null unless the caller opted in. Shared so the
  /// trace outlives the queue entry (the reply callback still reads it
  /// after the request is released).
  std::shared_ptr<obs::RequestTrace> trace;

  /// Search-layer counters of the executed verb, filled by the verb
  /// closure (via Server::RecordSearchStats) for the flight record. Zero
  /// for non-search verbs.
  int64_t search_states_visited = 0;
  uint64_t search_expansions = 0;

  /// End-to-end deadline budget in seconds from submission (0 = none;
  /// negative = pre-expired, rejected at admission). Queue wait counts
  /// against it; the remainder is what the Session-level request gets.
  double deadline_seconds = 0.0;
  std::chrono::steady_clock::time_point submitted{};

  /// Owned by the pending entry and kept alive (shared_ptr) until the
  /// request reaches a terminal state, so a cooperative cancel can never
  /// dangle. Client::Cancel fires it; a worker that pops an already-fired
  /// token fails the request instead of executing it — queued
  /// cancellations never reach a Session or leak pool work.
  exec::CancelToken cancel;

  std::function<void(Session&, PendingRequest&)> execute;
  std::function<void(const Status&)> fail;

  /// Set by the worker right after Pop: releases this request's lane slot
  /// (RequestQueue::OnFinished). The terminal wrappers invoke it exactly
  /// once BEFORE completing the caller's future, so a caller waking from
  /// future.get() never observes the request still counted in_flight.
  /// Unset for requests that were never popped (admission rejections,
  /// shutdown drain). Only the thread driving the request touches it.
  std::function<void()> release;

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         submitted)
        .count();
  }
  /// True when the deadline budget is spent (never for "no deadline").
  bool DeadlineExpired() const {
    return deadline_seconds > 0.0 && ElapsedSeconds() >= deadline_seconds;
  }
  /// What is left of the budget for the Session-level request: the service
  /// deadline minus queue wait, floored at a hair above zero so an almost-
  /// expired request still reports kBudgetExceeded through the normal
  /// search path. 0 = no deadline.
  double RemainingDeadline() const {
    if (deadline_seconds <= 0.0) return 0.0;
    double remaining = deadline_seconds - ElapsedSeconds();
    return remaining > 1e-9 ? remaining : 1e-9;
  }
};

class RequestQueue {
 public:
  explicit RequestQueue(AdmissionController* admission)
      : admission_(admission) {}

  /// Admission-checked enqueue: atomically consults the controller with
  /// the current depth and tenant load, then enqueues on success. A
  /// non-ok return means the request was NOT enqueued (the caller
  /// completes its future with the status).
  Status Push(std::shared_ptr<PendingRequest> req);

  /// Blocks until a request is dispatchable (per the lane rules above),
  /// the queue is unpaused, or Shutdown; returns nullptr on shutdown.
  /// The popped request counts as executing for its lane until
  /// OnFinished; the caller MUST call OnFinished exactly once for it.
  std::shared_ptr<PendingRequest> Pop();

  /// Releases the popped request's lane slot and wakes blocked workers
  /// (a drained write barrier may make several reads dispatchable).
  void OnFinished(const PendingRequest& req);

  /// Pause/Resume gate dispatch (not admission): Pop blocks while paused.
  /// Pausing makes queue states deterministic for tests and gives ops a
  /// maintenance mode where traffic accumulates instead of failing.
  void Pause();
  void Resume();

  /// Fails every queued request with `status`, rejects future pushes, and
  /// wakes every blocked Pop to return nullptr.
  void Shutdown(const Status& status);

  size_t Depth() const;
  size_t InFlight() const;
  /// (queued, executing) for one tenant's lane.
  std::pair<size_t, size_t> LaneLoad(const std::string& tenant) const;

 private:
  struct Lane {
    std::deque<std::shared_ptr<PendingRequest>> fifo;
    int executing_reads = 0;
    bool executing_write = false;

    size_t Load() const {
      return fifo.size() + static_cast<size_t>(executing_reads) +
             (executing_write ? 1u : 0u);
    }
    bool HeadDispatchable() const {
      if (fifo.empty()) return false;
      if (executing_write) return false;  // barrier running: lane blocked
      return !fifo.front()->is_write || executing_reads == 0;
    }
  };

  /// Index into ring_ of the next dispatchable lane, or -1. Caller holds
  /// mu_.
  int FindDispatchable() const;

  AdmissionController* admission_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, Lane> lanes_;
  std::vector<std::string> ring_;  ///< lane keys in first-seen order
  size_t cursor_ = 0;              ///< round-robin position in ring_
  size_t depth_ = 0;               ///< total queued (not executing)
  size_t in_flight_ = 0;           ///< popped but not yet OnFinished
  bool paused_ = false;
  bool shutdown_ = false;
};

}  // namespace retrust::service

#endif  // RETRUST_SERVICE_QUEUE_H_
