// WireClient — a pipelined NDJSON client for tools/retrust_server.
//
// One TCP connection, MANY outstanding requests: Call() stamps a unique
// numeric "id" (unless the caller supplied one), sends the line, and
// returns a future; a reader thread matches reply lines back to their
// futures by the echoed id, so replies may arrive in ANY order. This is
// the client half of the event-driven wire: throughput comes from keeping
// the pipeline full on one connection instead of opening a connection per
// request.
//
// Robustness contract (the part tests poke at):
//   * Connect() uses a nonblocking connect bounded by
//     `connect_timeout_seconds` — a dead or unroutable endpoint yields
//     kIoError, never a hang.
//   * Writes handle EINTR and partial sends.
//   * If the server closes the connection (or any wire error occurs),
//     every in-flight future completes with kIoError immediately — a
//     waiting caller never blocks forever.
//
// Thread-safe: Call() may be invoked from any number of threads.

#ifndef RETRUST_SERVICE_CLIENT_H_
#define RETRUST_SERVICE_CLIENT_H_

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/service/wire.h"

namespace retrust::service {

class WireClient {
 public:
  struct Options {
    double connect_timeout_seconds = 5.0;
    /// Reply frames larger than this fail the connection (a sane server
    /// never sends one; this bounds a runaway peer).
    size_t max_line_bytes = 64u << 20;
  };

  /// Connects to 127.0.0.1:<port>. kIoError on refusal or timeout.
  static Result<std::unique_ptr<WireClient>> Connect(int port, Options opts);
  static Result<std::unique_ptr<WireClient>> Connect(int port);

  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Sends one request object, returns the matched reply. If `request`
  /// carries no "id" a fresh numeric one is stamped (the reply future is
  /// keyed on it either way). The returned future completes with the
  /// server's reply object, or kIoError if the connection dies first.
  std::future<Result<Json>> Call(Json request);

  /// Call + wait. Convenience for request/response call sites.
  Result<Json> CallSync(Json request) { return Call(std::move(request)).get(); }

  /// Half-closes the socket: no further Call()s succeed, the reader
  /// drains what the server already sent, then pending futures fail.
  /// Idempotent; the destructor calls it.
  void Close();

 private:
  WireClient(int fd, Options opts);

  void ReaderThread();
  /// Fails every pending future with `status` and marks the client dead.
  void FailAll(const Status& status);

  Options opts_;
  int fd_;

  std::mutex write_mu_;  // serializes send() across Call() threads

  std::mutex mu_;  // guards the fields below
  bool closed_ = false;
  uint64_t next_id_ = 1;
  /// Pending futures keyed by the id's serialized JSON (ids are arbitrary
  /// JSON values on the wire, so the dump is the canonical key).
  std::map<std::string, std::promise<Result<Json>>> pending_;

  std::thread reader_;
};

}  // namespace retrust::service

#endif  // RETRUST_SERVICE_CLIENT_H_
