#include "src/service/admission.h"

namespace retrust::service {

Status AdmissionController::Admit(double deadline_seconds, size_t queue_depth,
                                  size_t tenant_load,
                                  const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  if (deadline_seconds < 0.0) {
    ++rejected_deadline_;
    return Status::Error(StatusCode::kBudgetExceeded,
                         "deadline already expired at submission");
  }
  if (opts_.quota != nullptr && !opts_.quota->TryAcquire(tenant)) {
    ++rejected_quota_;
    return Status::Error(StatusCode::kOverloaded,
                         "tenant '" + tenant + "' over its rate quota");
  }
  if (opts_.queue_capacity != 0 && queue_depth >= opts_.queue_capacity) {
    ++rejected_queue_full_;
    return Status::Error(StatusCode::kOverloaded,
                         "request queue full (" +
                             std::to_string(queue_depth) + "/" +
                             std::to_string(opts_.queue_capacity) + ")");
  }
  if (opts_.per_tenant_inflight != 0 &&
      tenant_load >= opts_.per_tenant_inflight) {
    ++rejected_tenant_cap_;
    return Status::Error(StatusCode::kOverloaded,
                         "tenant '" + tenant + "' at its in-flight cap (" +
                             std::to_string(opts_.per_tenant_inflight) + ")");
  }
  if (deadline_seconds > 0.0 && have_ewma_) {
    int workers = opts_.workers < 1 ? 1 : opts_.workers;
    double wait = ewma_seconds_ * static_cast<double>(queue_depth) /
                  static_cast<double>(workers);
    if (wait > deadline_seconds) {
      ++rejected_deadline_;
      return Status::Error(
          StatusCode::kOverloaded,
          "deadline infeasible at current load (expected wait " +
              std::to_string(wait) + "s > deadline " +
              std::to_string(deadline_seconds) + "s)");
    }
  }
  return Status::Ok();
}

void AdmissionController::ObserveLatency(double seconds) {
  if (seconds < 0.0) return;
  std::lock_guard<std::mutex> lock(mu_);
  // EWMA with alpha = 1/8: smooth enough to ignore one outlier, fresh
  // enough to track a workload shift within ~10 requests.
  ewma_seconds_ =
      have_ewma_ ? ewma_seconds_ + (seconds - ewma_seconds_) / 8.0 : seconds;
  have_ewma_ = true;
}

double AdmissionController::EstimatedWaitSeconds(size_t queue_depth) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!have_ewma_) return 0.0;
  int workers = opts_.workers < 1 ? 1 : opts_.workers;
  return ewma_seconds_ * static_cast<double>(queue_depth) /
         static_cast<double>(workers);
}

void AdmissionController::Snapshot(ServerStats* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out->rejected_queue_full = rejected_queue_full_;
  out->rejected_tenant_cap = rejected_tenant_cap_;
  out->rejected_deadline = rejected_deadline_;
  out->rejected_quota = rejected_quota_;
}

AdmissionController::RejectionCounts AdmissionController::Rejections() const {
  std::lock_guard<std::mutex> lock(mu_);
  RejectionCounts counts;
  counts.queue_full = rejected_queue_full_;
  counts.tenant_cap = rejected_tenant_cap_;
  counts.deadline = rejected_deadline_;
  counts.quota = rejected_quota_;
  return counts;
}

double AdmissionController::LatencyEwmaSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return have_ewma_ ? ewma_seconds_ : 0.0;
}

}  // namespace retrust::service
