// Per-tenant token-bucket rate quotas: the wire-level throttle IN FRONT of
// admission control. Capacity gates (queue depth, in-flight caps) protect
// the server from aggregate overload; the quota protects OTHER TENANTS
// from one tenant's request RATE — a flooding tenant is shed with
// kOverloaded before its requests ever occupy queue slots or skew the
// admission EWMA, so a quiet tenant's latency never pays for a noisy
// neighbour's burst.
//
// Classic token bucket per tenant: `rate` tokens/second accrue up to
// `burst`; each admitted request spends one token. rate = 0 means
// UNLIMITED (the default — quotas are opt-in per tenant or via the server
// default), so existing deployments and the zero-reject smoke are
// unaffected until a limit is configured. Buckets start FULL: a tenant's
// first `burst` requests always pass, which is what makes small
// deterministic tests possible with a real clock.
//
// The clock is injectable (seconds, monotone) so refill behaviour is unit-
// testable without sleeping; production uses steady_clock.

#ifndef RETRUST_SERVICE_QUOTA_H_
#define RETRUST_SERVICE_QUOTA_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

namespace retrust::service {

/// Rate limits of one tenant (or the server-wide default). rate <= 0 means
/// unlimited; burst <= 0 defaults to max(rate, 1) — one second of refill,
/// at least one request.
struct QuotaLimits {
  double rate = 0.0;   ///< tokens (requests) per second; <= 0 = unlimited
  double burst = 0.0;  ///< bucket capacity; <= 0 = max(rate, 1)

  bool unlimited() const { return rate <= 0.0; }
  double effective_burst() const {
    if (burst > 0.0) return burst;
    return rate > 1.0 ? rate : 1.0;
  }
};

/// Thread-safe registry of per-tenant token buckets. One instance lives in
/// the Server and is consulted by AdmissionController::Admit (under the
/// queue lock via the admission mutex, so acquire-and-enqueue is atomic
/// with respect to the depth checks).
class QuotaManager {
 public:
  /// `clock` returns monotone seconds; null uses steady_clock. Tests
  /// inject a fake to step time deterministically.
  explicit QuotaManager(QuotaLimits defaults = {},
                        std::function<double()> clock = nullptr);

  /// Installs (or clears, with unlimited limits) a tenant override. The
  /// bucket refills from full under the NEW limits: tightening a quota
  /// mid-flight grants at most one fresh burst, never a stale larger one.
  void SetLimits(const std::string& tenant, QuotaLimits limits);

  /// The limits a request for `tenant` is checked against (override if
  /// set, else the default).
  QuotaLimits LimitsFor(const std::string& tenant) const;

  /// Spends one token for `tenant`; false = quota exhausted (the caller
  /// rejects with kOverloaded). Unlimited tenants always pass and keep no
  /// bucket state.
  bool TryAcquire(const std::string& tenant);

  /// Tokens currently available to `tenant` (capped at burst; burst when
  /// unlimited-by-default and no bucket exists). For tests and stats.
  double AvailableTokens(const std::string& tenant) const;

  /// TryAcquire calls that returned false since construction, across all
  /// tenants. Sampled by the metrics registry probe.
  uint64_t Denials() const { return denied_.load(std::memory_order_relaxed); }

 private:
  struct Bucket {
    QuotaLimits limits;
    double tokens = 0.0;
    double last_refill = 0.0;
    bool has_override = false;
  };

  /// Refills `bucket` to `now`. Caller holds mu_.
  static void Refill(Bucket* bucket, double now);

  double Now() const { return clock_(); }

  QuotaLimits defaults_;
  std::function<double()> clock_;
  std::atomic<uint64_t> denied_{0};
  mutable std::mutex mu_;
  mutable std::map<std::string, Bucket> buckets_;
};

}  // namespace retrust::service

#endif  // RETRUST_SERVICE_QUOTA_H_
